module ucmp

go 1.22
