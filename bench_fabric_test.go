package ucmp_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"ucmp/internal/core"
	"ucmp/internal/fabriccache"
	"ucmp/internal/routing"
	"ucmp/internal/topo"
)

// BenchmarkFabricColdVsWarm measures the warm-fabric cache end to end at
// scale (DESIGN.md §15): one cold iteration builds the symmetric path set,
// compiles ToR 0's table, and saves the fabric file; each warm iteration
// mmap-loads and validates it. The cold-s and warm-s metrics are the
// README's "warm fabrics" numbers; the byte-compare keeps the benchmark
// honest about warm == cold. Run with -benchtime 1x: one cold build at
// N=1024 is ~half a minute, and the cache file makes every further
// iteration measure only the warm path.
func BenchmarkFabricColdVsWarm(b *testing.B) {
	for _, n := range []int{512, 1024} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			cfg := topo.Scaled()
			cfg.NumToRs, cfg.Uplinks = n, 8
			fab := topo.MustFabric(cfg, "round-robin", 1)
			params := fabriccache.Params{Alpha: 0.5}
			path := fabriccache.FileName(b.TempDir(), fab, params)

			t0 := time.Now()
			ps := core.BuildPathSet(fab, 0.5)
			table := routing.CompileTable(ps, core.NewFlowAger(ps), 0)
			cold := time.Since(t0).Seconds()
			if err := fabriccache.Save(path, ps, table); err != nil {
				b.Fatal(err)
			}
			want := table.Bytes()

			var warm float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 = time.Now()
				wf, err := fabriccache.Load(path, fab, params, fabriccache.Options{})
				if err != nil {
					b.Fatal(err)
				}
				warm = time.Since(t0).Seconds()
				if !bytes.Equal(wf.Table.Bytes(), want) {
					b.Fatal("warm table differs from cold")
				}
				wf.Close()
			}
			b.ReportMetric(cold, "cold-s")
			b.ReportMetric(warm, "warm-s")
			b.ReportMetric(cold/warm, "speedup")
		})
	}
}
