// Extensions: the §10 / §5.2 follow-up features layered on UCMP —
// congestion-aware path assignment under hotspots, a live α controller
// targeting a core-utilization setpoint, and MPTCP-style subflows striped
// over parallel UCMP paths.
package main

import (
	"fmt"
	"os"

	"ucmp/internal/harness"
	"ucmp/internal/sim"
	"ucmp/internal/transport"
)

func main() {
	base := harness.ScaledConfig(harness.UCMP, transport.DCTCP, "websearch")
	base.Duration = 2 * sim.Millisecond

	rep, _, err := harness.ExtensionCongestion(base)
	check(err)
	fmt.Println(rep)

	rep2, _, err := harness.ExtensionAlphaController(base, 0.06)
	check(err)
	// The full trajectory is long; print the head and tail.
	lines := rep2.Lines
	fmt.Println("== " + rep2.Title + " ==")
	for i, l := range lines {
		if i < 6 || i >= len(lines)-3 {
			fmt.Println(l)
		} else if i == 6 {
			fmt.Println("  ...")
		}
	}
	fmt.Println()

	rep3, _, err := harness.ExtensionMPTCP(base)
	check(err)
	fmt.Println(rep3)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
