// Pathstudy: Fig 5-style offline analytics — group sizes, path diversity
// over the circuit cycle, edge-disjointness, hop-count distributions, and
// the switch-resource footprint the paths compile into (Table 2).
package main

import (
	"fmt"

	"ucmp/internal/analysis"
	"ucmp/internal/core"
	"ucmp/internal/switchres"
	"ucmp/internal/topo"
)

func main() {
	cfg := topo.Scaled()
	cfg.NumToRs, cfg.Uplinks = 32, 4
	fab := topo.MustFabric(cfg, "round-robin", 1)
	ps := core.BuildPathSet(fab, 0.5)

	st := analysis.Analyze(ps)
	fmt.Printf("UCMP paths on a %d-ToR fabric (%d slices/cycle):\n", cfg.NumToRs, fab.Sched.S)
	fmt.Printf("  mean paths per group:      %.2f\n", st.MeanGroupSize)
	fmt.Printf("  multi-path share:          %.1f%%\n", st.MultiPathShare*100)
	fmt.Printf("  edge-disjoint paths:       %.1f%%\n", st.EdgeDisjointShare*100)
	fmt.Printf("  mean unique paths / cycle: %.1f\n", st.MeanPathsPerCycle)
	fmt.Printf("  mean hop count:            %.2f\n", st.MeanHops)

	fmt.Println("\nhop-count distribution:")
	for _, h := range analysis.SortedKeys(st.HopHist) {
		total := 0
		for _, c := range st.HopHist {
			total += c
		}
		fmt.Printf("  %d hops: %5.1f%%\n", h, 100*float64(st.HopHist[h])/float64(total))
	}

	// The same paths compiled into ToR lookup tables (§6.2, Table 2).
	u := switchres.Compute(fab, 0.5, switchres.Sampling{})
	fmt.Println("\nswitch resource footprint:")
	fmt.Printf("  priority queues per port: %d\n", u.QueuesPerPort)
	fmt.Printf("  global flow buckets:      %d (6-bit DSCP allows 64)\n", u.Buckets)
	fmt.Printf("  routing entries per ToR:  %d\n", u.EntriesPerToR)
	fmt.Printf("  SRAM usage:               %.2f%%\n", u.SRAMPct)

	// Path diversity under an alternative random schedule (Fig 16).
	fab2 := topo.MustFabric(cfg, "random", 7)
	st2 := analysis.Analyze(core.BuildPathSet(fab2, 0.5))
	fmt.Println("\nsame fabric, random schedule (Fig 16):")
	fmt.Printf("  mean paths per group: %.2f, edge-disjoint %.1f%%\n",
		st2.MeanGroupSize, st2.EdgeDisjointShare*100)
}
