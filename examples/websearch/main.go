// Websearch: a Fig 6a-style packet-level comparison — UCMP vs VLB vs KSP
// vs Opera under the web search trace, reporting FCT per flow-size bin and
// bandwidth efficiency.
package main

import (
	"fmt"
	"os"

	"ucmp/internal/harness"
	"ucmp/internal/sim"
	"ucmp/internal/transport"
)

func main() {
	base := harness.ScaledConfig(harness.UCMP, transport.DCTCP, "websearch")
	base.Duration = 3 * sim.Millisecond

	schemes := []harness.Scheme{
		{Name: "ucmp+dctcp", Routing: harness.UCMP, Transport: transport.DCTCP},
		{Name: "vlb+rotorlb", Routing: harness.VLB, Transport: transport.DCTCP},
		{Name: "ksp-1+dctcp", Routing: harness.KSP1, Transport: transport.DCTCP},
		{Name: "opera-1+ndp", Routing: harness.Opera1, Transport: transport.NDP},
	}

	rep, results, err := harness.Fig6FCT(base, "websearch", schemes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(rep)
	fmt.Println(harness.Fig6Efficiency(results, "websearch"))

	// The paper's headline: UCMP has the lowest short-flow FCT and the
	// highest bandwidth efficiency.
	best := results[0]
	for _, r := range results[1:] {
		if r.Result.Efficiency > best.Result.Efficiency {
			best = r
		}
	}
	fmt.Printf("highest bandwidth efficiency: %s (%.3f)\n", best.Scheme.Name, best.Result.Efficiency)
}
