// Failover: a Fig 12-style drill — inject ToR, link, and circuit-switch
// failures, classify every affected UCMP path's recovery option, then run
// traffic over a fabric with 5% of its uplink cables physically down.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"ucmp/internal/core"
	"ucmp/internal/failure"
	"ucmp/internal/harness"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
	"ucmp/internal/transport"
)

func main() {
	fab := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	ps := core.BuildPathSet(fab, 0.5)

	fmt.Println("offline recovery classification (Fig 12a-c):")
	for _, tc := range []struct {
		label string
		mk    func() *failure.Scenario
	}{
		{"10% ToRs down", func() *failure.Scenario {
			return failure.NewScenario(fab).FailToRs(0.10, rand.New(rand.NewSource(1)))
		}},
		{"5% links down", func() *failure.Scenario {
			return failure.NewScenario(fab).FailLinks(0.05, rand.New(rand.NewSource(1)))
		}},
		{"1 of 3 switches down", func() *failure.Scenario {
			return failure.NewScenario(fab).FailSwitches(0.3, rand.New(rand.NewSource(1)))
		}},
	} {
		b := failure.Classify(ps, tc.mk())
		fmt.Printf("  %-22s affected %5d/%d  shorter %.2f  same %.2f  longer %.2f  unrecoverable %.3f\n",
			tc.label, b.Affected, b.Total,
			b.Share[failure.Shorter], b.Share[failure.SameLength],
			b.Share[failure.Longer], b.Share[failure.Unrecoverable])
	}

	fmt.Println("\nlive traffic with 5% faulty links (Fig 12d):")
	base := harness.ScaledConfig(harness.UCMP, transport.DCTCP, "websearch")
	base.Duration = 2 * sim.Millisecond
	rep, _, err := harness.Fig12d(base, []float64{0, 0.05})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(rep)
}
