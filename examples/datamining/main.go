// Datamining: a Fig 6b-style run with heavy-tailed flows — UCMP enables
// latency relaxation (§4.3) so long flows spread over relaxed 2-hop paths
// via the RotorLB machinery, while short flows keep regular UCMP paths.
package main

import (
	"fmt"
	"os"

	"ucmp/internal/harness"
	"ucmp/internal/sim"
	"ucmp/internal/transport"
)

func main() {
	base := harness.ScaledConfig(harness.UCMP, transport.NDP, "datamining")
	base.Duration = 3 * sim.Millisecond
	base.MaxFlowSize = 32 << 20

	schemes := []harness.Scheme{
		{Name: "ucmp+ndp (relax)", Routing: harness.UCMP, Transport: transport.NDP, Relax: true},
		{Name: "vlb+rotorlb", Routing: harness.VLB, Transport: transport.NDP},
		{Name: "opera-1", Routing: harness.Opera1, Transport: transport.NDP},
	}

	rep, results, err := harness.Fig6FCT(base, "datamining", schemes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(rep)
	fmt.Println(harness.Fig6Efficiency(results, "datamining"))

	fmt.Println("flow classing under UCMP latency relaxation:")
	fmt.Println("  flows >= 15 MB ride relaxed 2-hop paths (RotorLB machinery);")
	fmt.Println("  shorter flows keep regular minimum-uniform-cost UCMP paths.")
	for _, r := range results {
		fmt.Printf("  %-18s efficiency %.3f, completion %.0f%%\n",
			r.Scheme.Name, r.Result.Efficiency, r.Result.CompletionRate*100)
	}
}
