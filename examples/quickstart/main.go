// Quickstart: build an RDCN fabric, run UCMP offline path calculation, and
// inspect a UCMP group — the 30-second tour of the core API.
package main

import (
	"fmt"

	"ucmp/internal/core"
	"ucmp/internal/topo"
)

func main() {
	// 1. Describe the fabric: 16 ToRs, 3 circuit switches, 50us slices.
	cfg := topo.Scaled()
	fab := topo.MustFabric(cfg, "round-robin", 1)
	fmt.Printf("fabric: %d ToRs, %d circuit switches, %d slices/cycle (%v each)\n",
		cfg.NumToRs, cfg.Uplinks, fab.Sched.S, cfg.SliceDuration)

	// 2. Offline path calculation (§4): one UCMP group per
	//    (src, dst, starting slice), alpha = 0.5.
	ps := core.BuildPathSet(fab, 0.5)
	bound := ps.Calc.Bound
	fmt.Printf("h_max bound: Q=%d (h_slice=%d, h_static=%d, case I=%v)\n",
		bound.Q, bound.HSlice, bound.HStatic, bound.CaseI)

	// 3. Inspect the group for ToR 0 -> ToR 5 starting in slice 2.
	g := ps.Group(2, 0, 5)
	fmt.Printf("\nUCMP group (src=0, dst=5, t_start=2): %d paths\n", g.NumPaths())
	for _, e := range g.Entries {
		for _, p := range e.Paths {
			fmt.Printf("  %d hops, latency %2d slices: %v\n", e.HopCount, e.LatencySlices, p)
		}
	}

	// 4. Online path assignment (§5): uniform cost picks by flow size.
	fmt.Println("\npath assignment by flow size (uniform cost, Eqn. 2):")
	for _, size := range []int64{10 << 10, 1 << 20, 64 << 20} {
		e := g.MinCostEntry(ps.Model, size)
		fmt.Printf("  %8d B -> %d-hop path (latency %d slices, cost %.1f us)\n",
			size, e.HopCount, e.LatencySlices, ps.Model.Cost(e.LatencySlices, e.HopCount, size))
	}

	// 5. Flow aging (§5.1): without knowing sizes, flows start on the
	//    minimum-latency path and step toward fewer hops as they send.
	ager := core.NewFlowAger(ps)
	fmt.Printf("\nflow aging over %d global buckets:\n", ager.NumBuckets())
	for _, sent := range []int64{0, 100 << 10, 10 << 20, 100 << 20} {
		b := ager.Bucket(sent)
		e := ager.EntryForBucket(g, b)
		fmt.Printf("  after %9d B sent -> bucket %2d -> %d-hop path\n", sent, b, e.HopCount)
	}
}
