# Standard checks for the UCMP reproduction. `make check` is what CI (and a
# pre-commit run) should execute: vet, staticcheck (when installed), build,
# the full test suite, and the race detector over the packages with
# intentional concurrency (the parallel offline build in internal/core, the
# engine in internal/sim, and the parallel trial runner in internal/harness)
# plus the wheel/heap differential tests, which are the determinism pin for
# the timing-wheel scheduler.

GO ?= go

.PHONY: check vet staticcheck build test race bench bench-offline bench-netsim bench-pr3 bench-pr4 bench-pr5

check: vet staticcheck build test race

vet:
	$(GO) vet ./...

# staticcheck is optional locally (not vendored; CI installs it): the target
# degrades to a notice when the binary is absent.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/sim/...
	$(GO) test -race -run 'TestTrialReplicationDeterminism|TestWorkerCount|TestDifferentialWheelHeap|TestDifferentialSerialSharded|TestShardableGate' ./internal/harness

# bench regenerates the numbers tracked in results/BENCH_*.json: the offline
# path-set build (results/BENCH_seed.json) and the netsim packet-path
# benchmarks (results/BENCH_pr2.json, results/BENCH_pr3.json). bench-netsim
# pipes through cmd/benchjson, which emits the BENCH_*.json record format on
# stdout while echoing the raw `go test` lines on stderr, so
#
#	make -s bench-netsim > results/BENCH_new.json
#
# refreshes the tracked record in place.
bench: bench-offline bench-netsim

bench-offline:
	$(GO) test -run '^$$' -bench 'BenchmarkOffline_PathSetBuild' -benchmem -benchtime 200x .

bench-netsim:
	$(GO) test -run '^$$' -bench 'BenchmarkSaturation$$|BenchmarkIncast8ToR$$' -benchmem ./internal/netsim | $(GO) run ./cmd/benchjson

# bench-pr3 refreshes the timing-wheel record: it reruns the netsim hot-path
# benchmarks, keeps the raw `go test` lines (benchstat input) in
# results/bench_pr3_raw.txt, and writes results/BENCH_pr3.json with a
# comparison against the recorded pre-wheel baseline on stderr.
bench-pr3:
	GOMAXPROCS=1 $(GO) test -run '^$$' -bench 'BenchmarkSaturation$$|BenchmarkIncast8ToR$$' \
		-benchmem -benchtime 20x ./internal/netsim \
		| tee results/bench_pr3_raw.txt \
		| $(GO) run ./cmd/benchjson -compare results/BENCH_pr2.json \
			-method "GOMAXPROCS=1 make bench-pr3 (timing-wheel scheduler; baseline: results/BENCH_pr2.json)" \
			> results/BENCH_pr3.json

# bench-pr4 refreshes the sharded-engine record: the serial hot-path
# benchmarks (gated at 10% regression against the pre-sharding baseline in
# results/BENCH_pr3.json) plus the 64-ToR permutation in both serial and
# sharded form. GOMAXPROCS is pinned to 1 for run-to-run stability of the
# serial gate; the Saturation64Sharded number under GOMAXPROCS=1 therefore
# measures sharding *overhead*, not speedup — see DESIGN.md §10 for the
# multi-core exhibit. BENCHTIME trades precision for wall clock.
BENCHTIME ?= 20x
bench-pr4:
	GOMAXPROCS=1 $(GO) test -run '^$$' \
		-bench 'BenchmarkSaturation$$|BenchmarkIncast8ToR$$|BenchmarkSaturation64$$|BenchmarkSaturation64Sharded$$' \
		-benchmem -benchtime $(BENCHTIME) ./internal/netsim \
		| tee results/bench_pr4_raw.txt \
		| $(GO) run ./cmd/benchjson -compare results/BENCH_pr3.json -maxregress 0.10 \
			-method "GOMAXPROCS=1 make bench-pr4 (sharded conservative-PDES engine; baseline: results/BENCH_pr3.json; single-core container, so Saturation64Sharded records overhead, not speedup)" \
			> results/BENCH_pr4.json

# bench-pr5 refreshes the fault-injection record: the PR-4 hot-path
# benchmarks rerun with no failure timeline — the zero-cost gate, held to
# 10% regression against results/BENCH_pr4.json because a nil fault state
# must cost one branch — plus SaturationFailover, which prices route
# planning and packet recovery with an active failure schedule (new in this
# record, so it carries no baseline comparison).
bench-pr5:
	GOMAXPROCS=1 $(GO) test -run '^$$' \
		-bench 'BenchmarkSaturation$$|BenchmarkIncast8ToR$$|BenchmarkSaturation64$$|BenchmarkSaturation64Sharded$$|BenchmarkSaturationFailover$$' \
		-benchmem -benchtime $(BENCHTIME) ./internal/netsim \
		| tee results/bench_pr5_raw.txt \
		| $(GO) run ./cmd/benchjson -compare results/BENCH_pr4.json -maxregress 0.10 \
			-method "GOMAXPROCS=1 make bench-pr5 (runtime fault injection; baseline: results/BENCH_pr4.json; empty-timeline hot paths gated at 10%)" \
			> results/BENCH_pr5.json
