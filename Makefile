# Standard checks for the UCMP reproduction. `make check` is what CI (and a
# pre-commit run) should execute: vet, staticcheck (when installed), build,
# the full test suite, and the race detector over the packages with
# intentional concurrency (the parallel offline build in internal/core, the
# engine in internal/sim, and the parallel trial runner in internal/harness)
# plus the wheel/heap differential tests, which are the determinism pin for
# the timing-wheel scheduler.

GO ?= go

.PHONY: check vet staticcheck build test race bench bench-offline bench-netsim bench-pr3 bench-pr4 bench-pr5 bench-pr6 bench-pr7 bench-pr8 bench-pr9 bench-pr10 bench-scaling scale-smoke crash-smoke

check: vet staticcheck build test race

vet:
	$(GO) vet ./...

# staticcheck is optional locally (not vendored; CI installs it): the target
# degrades to a notice when the binary is absent.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/sim/...
	$(GO) test -race -run 'TestCompiledTableBytesSymmetricVsBrute|TestSymmetricFastPathMatchesGroupPath|TestTableSetEviction|TestCompiledTableAgreesWithRouter|TestCongestionCanonicalMatchesBrute|TestCongestionPickZeroAlloc|TestPackedCodecRoundTrip' ./internal/routing
	$(GO) test -race -run 'TestTrialReplicationDeterminism|TestWorkerCount|TestDifferentialWheelHeap|TestDifferentialSerialSharded|TestDifferentialLazyTables|TestDifferentialCongestionSharded|TestDifferentialWarmFabric|TestDifferentialCheckpointResume|TestResumeMissingCheckpoint|TestResumeCorruptionRejected|TestSweepResume|TestRunTrialsPanicRecovery|TestCongestionSteeringChangesOutcome|TestTableCacheCapConfig|TestShardableGate|TestShardsValidation|TestShardedNonDividing64' ./internal/harness

# bench regenerates the numbers tracked in results/BENCH_*.json: the offline
# path-set build (results/BENCH_seed.json) and the netsim packet-path
# benchmarks (results/BENCH_pr2.json, results/BENCH_pr3.json). bench-netsim
# pipes through cmd/benchjson, which emits the BENCH_*.json record format on
# stdout while echoing the raw `go test` lines on stderr, so
#
#	make -s bench-netsim > results/BENCH_new.json
#
# refreshes the tracked record in place.
bench: bench-offline bench-netsim

bench-offline:
	$(GO) test -run '^$$' -bench 'BenchmarkOffline_PathSetBuild' -benchmem -benchtime 200x .

bench-netsim:
	$(GO) test -run '^$$' -bench 'BenchmarkSaturation$$|BenchmarkIncast8ToR$$' -benchmem ./internal/netsim | $(GO) run ./cmd/benchjson

# bench-pr3 refreshes the timing-wheel record: it reruns the netsim hot-path
# benchmarks, keeps the raw `go test` lines (benchstat input) in
# results/bench_pr3_raw.txt, and writes results/BENCH_pr3.json with a
# comparison against the recorded pre-wheel baseline on stderr.
bench-pr3:
	GOMAXPROCS=1 $(GO) test -run '^$$' -bench 'BenchmarkSaturation$$|BenchmarkIncast8ToR$$' \
		-benchmem -benchtime 20x ./internal/netsim \
		| tee results/bench_pr3_raw.txt \
		| $(GO) run ./cmd/benchjson -compare results/BENCH_pr2.json \
			-method "GOMAXPROCS=1 make bench-pr3 (timing-wheel scheduler; baseline: results/BENCH_pr2.json)" \
			> results/BENCH_pr3.json

# bench-pr4 refreshes the sharded-engine record: the serial hot-path
# benchmarks (gated at 10% regression against the pre-sharding baseline in
# results/BENCH_pr3.json) plus the 64-ToR permutation in both serial and
# sharded form. GOMAXPROCS is pinned to 1 for run-to-run stability of the
# serial gate; the Saturation64Sharded number under GOMAXPROCS=1 therefore
# measures sharding *overhead*, not speedup — see DESIGN.md §10 for the
# multi-core exhibit. BENCHTIME trades precision for wall clock.
BENCHTIME ?= 20x
bench-pr4:
	GOMAXPROCS=1 $(GO) test -run '^$$' \
		-bench 'BenchmarkSaturation$$|BenchmarkIncast8ToR$$|BenchmarkSaturation64$$|BenchmarkSaturation64Sharded$$' \
		-benchmem -benchtime $(BENCHTIME) ./internal/netsim \
		| tee results/bench_pr4_raw.txt \
		| $(GO) run ./cmd/benchjson -compare results/BENCH_pr3.json -maxregress 0.10 \
			-method "GOMAXPROCS=1 make bench-pr4 (sharded conservative-PDES engine; baseline: results/BENCH_pr3.json; single-core container, so Saturation64Sharded records overhead, not speedup)" \
			> results/BENCH_pr4.json

# bench-pr5 refreshes the fault-injection record: the PR-4 hot-path
# benchmarks rerun with no failure timeline — the zero-cost gate, held to
# 10% regression against results/BENCH_pr4.json because a nil fault state
# must cost one branch — plus SaturationFailover, which prices route
# planning and packet recovery with an active failure schedule (new in this
# record, so it carries no baseline comparison).
bench-pr5:
	GOMAXPROCS=1 $(GO) test -run '^$$' \
		-bench 'BenchmarkSaturation$$|BenchmarkIncast8ToR$$|BenchmarkSaturation64$$|BenchmarkSaturation64Sharded$$|BenchmarkSaturationFailover$$' \
		-benchmem -benchtime $(BENCHTIME) ./internal/netsim \
		| tee results/bench_pr5_raw.txt \
		| $(GO) run ./cmd/benchjson -compare results/BENCH_pr4.json -maxregress 0.10 \
			-method "GOMAXPROCS=1 make bench-pr5 (runtime fault injection; baseline: results/BENCH_pr4.json; empty-timeline hot paths gated at 10%)" \
			> results/BENCH_pr5.json

# bench-pr6 refreshes the adaptive-window/domain-grouping record in two
# stages that land in one results/BENCH_pr6.json: (1) the serial hot paths
# under GOMAXPROCS=1, gated at 10% regression against results/BENCH_pr5.json
# — the sharded-engine rework must not tax the serial engine; (2) the
# BenchmarkShardScaling sweep (serial reference plus worker counts 1..16)
# with GOMAXPROCS left at the machine's core count, which is the multicore
# speedup exhibit. The sweep benchmarks are new in this record, so the
# comparison prints "(not in baseline)" for them instead of gating. On a
# single-core machine the sweep records overhead, not speedup; the committed
# scaling table comes from the CI bench job, which runs on all cores.
SCALING_BENCHTIME ?= 10x
bench-pr6:
	GOMAXPROCS=1 $(GO) test -run '^$$' \
		-bench 'BenchmarkSaturation$$|BenchmarkIncast8ToR$$|BenchmarkSaturation64$$|BenchmarkSaturation64Sharded$$|BenchmarkSaturationFailover$$' \
		-benchmem -benchtime $(BENCHTIME) ./internal/netsim \
		> results/.pr6_serial.tmp
	$(GO) test -run '^$$' -bench 'BenchmarkShardScaling' \
		-benchmem -benchtime $(SCALING_BENCHTIME) ./internal/netsim \
		> results/.pr6_scaling.tmp
	cat results/.pr6_serial.tmp results/.pr6_scaling.tmp > results/bench_pr6_raw.txt
	rm -f results/.pr6_serial.tmp results/.pr6_scaling.tmp
	$(GO) run ./cmd/benchjson -compare results/BENCH_pr5.json -maxregress 0.10 \
		-method "make bench-pr6 (adaptive windows + domain grouping; serial hot paths at GOMAXPROCS=1 gated 10% vs results/BENCH_pr5.json; BenchmarkShardScaling at full core count)" \
		< results/bench_pr6_raw.txt > results/BENCH_pr6.json

# bench-pr7 refreshes the rotation-symmetry/packed-table record in two
# stages landing in one results/BENCH_pr7.json: (1) the serial hot paths
# under GOMAXPROCS=1, gated at 10% regression against results/BENCH_pr6.json
# — the symmetric build and table rework must not tax the packet path; (2)
# the N ∈ {108, 256, 512, 1024} scaling sweep (`ucmpbench -exp scale`),
# which records offline build time, table compile time, peak heap via
# runtime.MemStats, events/s, and the naive-vs-packed table rows per point.
# The sweep entries are new in this record, so the comparison prints "(not
# in baseline)" for them instead of gating.
bench-pr7:
	GOMAXPROCS=1 $(GO) test -run '^$$' \
		-bench 'BenchmarkSaturation$$|BenchmarkIncast8ToR$$|BenchmarkSaturation64$$|BenchmarkSaturation64Sharded$$|BenchmarkSaturationFailover$$' \
		-benchmem -benchtime $(BENCHTIME) ./internal/netsim \
		> results/.pr7_serial.tmp
	$(GO) run ./cmd/ucmpbench -exp scale -benchfmt > results/.pr7_scale.tmp
	cat results/.pr7_serial.tmp results/.pr7_scale.tmp > results/bench_pr7_raw.txt
	rm -f results/.pr7_serial.tmp results/.pr7_scale.tmp
	$(GO) run ./cmd/benchjson -compare results/BENCH_pr6.json -maxregress 0.10 \
		-method "make bench-pr7 (rotation-symmetry dedup + arena-packed tables; serial hot paths at GOMAXPROCS=1 gated 10% vs results/BENCH_pr6.json; ScaleSweep N=108..1024 at full core count)" \
		< results/bench_pr7_raw.txt > results/BENCH_pr7.json

# bench-pr8 refreshes the congestion-sharding record in two stages landing
# in one results/BENCH_pr8.json: (1) the serial hot paths under GOMAXPROCS=1,
# gated at 10% regression against results/BENCH_pr7.json — the board
# publication hook and the restructured congestion pick must not tax
# congestion-off runs — and (2) the BenchmarkCongestionSharded ladder
# (serial + 1/2/4/8/16 workers over the congestion64 incast-on-permutation
# scenario, steering engaged) with GOMAXPROCS left at the machine's core
# count. The ladder entries are new in this record, so the comparison prints
# "(not in baseline)" for them instead of gating; on a single-core machine
# the ladder records sharding overhead, not speedup — the committed
# >1x-at-4+-workers numbers come from the CI bench job.
bench-pr8:
	GOMAXPROCS=1 $(GO) test -run '^$$' \
		-bench 'BenchmarkSaturation$$|BenchmarkIncast8ToR$$|BenchmarkSaturation64$$|BenchmarkSaturation64Sharded$$|BenchmarkSaturationFailover$$' \
		-benchmem -benchtime $(BENCHTIME) ./internal/netsim \
		> results/.pr8_serial.tmp
	$(GO) test -run '^$$' -bench 'BenchmarkCongestionSharded' \
		-benchmem -benchtime $(SCALING_BENCHTIME) ./internal/netsim \
		> results/.pr8_ladder.tmp
	cat results/.pr8_serial.tmp results/.pr8_ladder.tmp > results/bench_pr8_raw.txt
	rm -f results/.pr8_serial.tmp results/.pr8_ladder.tmp
	$(GO) run ./cmd/benchjson -compare results/BENCH_pr7.json -maxregress 0.10 \
		-method "make bench-pr8 (slice-boundary congestion board; serial hot paths at GOMAXPROCS=1 gated 10% vs results/BENCH_pr7.json; CongestionSharded ladder at full core count)" \
		< results/bench_pr8_raw.txt > results/BENCH_pr8.json

# bench-pr9 refreshes the warm-fabric record in two stages landing in one
# results/BENCH_pr9.json: (1) the serial hot paths under GOMAXPROCS=1, gated
# at 10% regression against results/BENCH_pr8.json — the codec, the
# TableSet LRU, and the cache plumbing must not tax the packet path — and
# (2) BenchmarkFabricColdVsWarm (N=512/1024 at -benchtime 1x), recording the
# cold build, the warm mmap load, and the speedup as custom metrics. The
# cold/warm entries are new in this record, so the comparison prints "(not
# in baseline)" for them instead of gating.
bench-pr9:
	GOMAXPROCS=1 $(GO) test -run '^$$' \
		-bench 'BenchmarkSaturation$$|BenchmarkIncast8ToR$$|BenchmarkSaturation64$$|BenchmarkSaturation64Sharded$$|BenchmarkSaturationFailover$$' \
		-benchmem -benchtime $(BENCHTIME) ./internal/netsim \
		> results/.pr9_serial.tmp
	$(GO) test -run '^$$' -bench 'BenchmarkFabricColdVsWarm' -benchtime 1x . \
		> results/.pr9_fabric.tmp
	cat results/.pr9_serial.tmp results/.pr9_fabric.tmp > results/bench_pr9_raw.txt
	rm -f results/.pr9_serial.tmp results/.pr9_fabric.tmp
	$(GO) run ./cmd/benchjson -compare results/BENCH_pr8.json -maxregress 0.10 \
		-method "make bench-pr9 (warm-fabric cache + circulant Opera; serial hot paths at GOMAXPROCS=1 gated 10% vs results/BENCH_pr8.json; FabricColdVsWarm N=512/1024 at -benchtime 1x)" \
		< results/bench_pr9_raw.txt > results/BENCH_pr9.json

# bench-pr10 refreshes the checkpoint/restore record: the serial hot paths
# rerun with checkpointing off, gated at 10% regression against
# results/BENCH_pr9.json — event tagging and the Attach/Launch split must
# cost (at most) a few words per event on runs that never snapshot.
bench-pr10:
	GOMAXPROCS=1 $(GO) test -run '^$$' \
		-bench 'BenchmarkSaturation$$|BenchmarkIncast8ToR$$|BenchmarkSaturation64$$|BenchmarkSaturation64Sharded$$|BenchmarkSaturationFailover$$' \
		-benchmem -benchtime $(BENCHTIME) ./internal/netsim \
		| tee results/bench_pr10_raw.txt \
		| $(GO) run ./cmd/benchjson -compare results/BENCH_pr9.json -maxregress 0.10 \
			-method "GOMAXPROCS=1 make bench-pr10 (deterministic checkpoint/restore; checkpointing-off serial hot paths gated 10% vs results/BENCH_pr9.json)" \
			> results/BENCH_pr10.json

# crash-smoke is the CI crash-recovery check (DESIGN.md §16): an
# uninterrupted reference run writes its per-flow CSV; the same
# configuration restarts with checkpointing on, is SIGKILLed mid-run, is
# re-invoked with -resume, and the resumed run's per-flow CSV must be
# byte-identical to the reference. The CSV is the comparable artifact —
# stdout carries wall-clock timings. The grep asserts a real resume
# happened (a cold fallback would also produce identical output, but then
# the smoke would not be testing restore).
CRASH_FLAGS = -tors 64 -uplinks 4 -duration 20ms -load 0.6 -seed 42
crash-smoke:
	rm -rf results/.crash_ckpt results/.crash_ref.csv results/.crash_res.csv results/.crash_sim
	$(GO) build -o results/.crash_sim ./cmd/ucmpsim
	./results/.crash_sim $(CRASH_FLAGS) -fctout results/.crash_ref.csv > /dev/null
	-./results/.crash_sim $(CRASH_FLAGS) -checkpoint-dir results/.crash_ckpt -checkpoint-every 1ms -fctout /dev/null > /dev/null 2>&1 & \
	pid=$$!; sleep 4; kill -9 $$pid 2>/dev/null; wait $$pid 2>/dev/null; true
	test -n "$$(ls results/.crash_ckpt)"
	./results/.crash_sim $(CRASH_FLAGS) -checkpoint-dir results/.crash_ckpt -checkpoint-every 1ms -resume \
		-fctout results/.crash_res.csv 2>&1 >/dev/null | tee /dev/stderr | grep -q 'resumed at'
	cmp results/.crash_ref.csv results/.crash_res.csv
	rm -rf results/.crash_ckpt results/.crash_ref.csv results/.crash_res.csv results/.crash_sim

# scale-smoke is the CI wall-clock budget check at the 512-ToR point of the
# scaling sweep: the first pass builds the symmetric path set cold, compiles
# the table, runs the permutation sim, and saves the compiled fabric into
# the cache directory; the second pass must reload it warm (asserted via the
# report's warm column) within a much tighter budget.
scale-smoke:
	rm -rf results/.scale_cache
	timeout 300 $(GO) run ./cmd/ucmpbench -exp scale -scale-ns 512 -fabric-cache results/.scale_cache
	timeout 120 $(GO) run ./cmd/ucmpbench -exp scale -scale-ns 512 -fabric-cache results/.scale_cache | tee /dev/stderr | grep -q '1/1 points loaded warm'
	rm -rf results/.scale_cache

# bench-scaling runs only the multicore sweep, printing raw `go test` lines:
# the quick local answer to "does sharding win on this machine".
bench-scaling:
	$(GO) test -run '^$$' -bench 'BenchmarkShardScaling' \
		-benchmem -benchtime $(SCALING_BENCHTIME) ./internal/netsim
