# Standard checks for the UCMP reproduction. `make check` is what CI (and a
# pre-commit run) should execute: vet, build, the full test suite, and the
# race detector over the packages with intentional concurrency (the parallel
# offline build in internal/core and the engine in internal/sim).

GO ?= go

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/sim/...

# bench reproduces the numbers tracked in results/BENCH_seed.json.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkOffline_PathSetBuild' -benchmem -benchtime 200x .
