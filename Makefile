# Standard checks for the UCMP reproduction. `make check` is what CI (and a
# pre-commit run) should execute: vet, build, the full test suite, and the
# race detector over the packages with intentional concurrency (the parallel
# offline build in internal/core, the engine in internal/sim, and the
# parallel trial runner in internal/harness).

GO ?= go

.PHONY: check vet build test race bench bench-offline bench-netsim

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/sim/...
	$(GO) test -race -run 'TestTrialReplicationDeterminism|TestWorkerCount' ./internal/harness

# bench regenerates the numbers tracked in results/BENCH_*.json: the offline
# path-set build (results/BENCH_seed.json) and the netsim packet-path
# benchmarks (results/BENCH_pr2.json). bench-netsim pipes through
# cmd/benchjson, which emits the BENCH_*.json record format on stdout while
# echoing the raw `go test` lines on stderr, so
#
#	make -s bench-netsim > results/BENCH_new.json
#
# refreshes the tracked record in place.
bench: bench-offline bench-netsim

bench-offline:
	$(GO) test -run '^$$' -bench 'BenchmarkOffline_PathSetBuild' -benchmem -benchtime 200x .

bench-netsim:
	$(GO) test -run '^$$' -bench 'BenchmarkSaturation$$|BenchmarkIncast8ToR$$' -benchmem ./internal/netsim | $(GO) run ./cmd/benchjson
