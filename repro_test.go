// Package-level reproduction tests: the paper's headline claims as
// executable assertions. `go test -run TestPaper .` is the one-command
// answer to "does this repo reproduce the paper's shapes?"
package ucmp_test

import (
	"testing"

	"ucmp/internal/core"
	"ucmp/internal/harness"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
	"ucmp/internal/transport"
)

// TestPaperTable1Exact: the worked uniform-cost example is reproduced to
// the decimal.
func TestPaperTable1Exact(t *testing.T) {
	m := core.CostModel{Alpha: 1, LinkBps: 100e9, SliceMicros: 5}
	if got := m.Cost(12, 1, 1e6); got != 140.0 {
		t.Fatalf("C(1-hop, 1MB) = %v, want 140.0", got)
	}
	if got := m.Cost(1, 4, 1e4); got != 8.2 {
		t.Fatalf("C(4-hop, 10KB) = %v, want 8.2", got)
	}
}

// TestPaperTable3Exact: S and Q(h_max) for the paper's configurations.
func TestPaperTable3Exact(t *testing.T) {
	for _, row := range []struct{ n, d, s int }{
		{108, 6, 5}, {324, 6, 6}, {4320, 24, 4}, {1200, 12, 5},
	} {
		if got := core.SpanSlices(row.n, row.d, core.DefaultUnvisitedThreshold); got != row.s {
			t.Errorf("S(%d,%d) = %d, want %d", row.n, row.d, got, row.s)
		}
	}
}

// TestPaperHeadlineClaims runs UCMP and VLB on the scaled web search
// workload and checks the §1 claims: UCMP's short-flow FCT is at least an
// order of magnitude below VLB's, and its bandwidth efficiency is higher.
func TestPaperHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("packet simulations")
	}
	base := harness.ScaledConfig(harness.UCMP, transport.DCTCP, "websearch")
	base.Duration = 2 * sim.Millisecond
	base.Horizon = 10 * sim.Millisecond
	base.MaxFlowSize = 16 << 20
	schemes := []harness.Scheme{
		{Name: "ucmp", Routing: harness.UCMP, Transport: transport.DCTCP},
		{Name: "vlb", Routing: harness.VLB, Transport: transport.DCTCP},
	}
	_, results, err := harness.Fig6FCT(base, "websearch", schemes)
	if err != nil {
		t.Fatal(err)
	}
	ucmpRes, vlbRes := results[0].Result, results[1].Result
	ucmpP50 := ucmpRes.Collector.Percentile(0.5)
	vlbP50 := vlbRes.Collector.Percentile(0.5)
	if ucmpP50*10 > vlbP50 {
		t.Errorf("UCMP p50 %v not an order of magnitude below VLB %v", ucmpP50, vlbP50)
	}
	if ucmpRes.Efficiency <= vlbRes.Efficiency {
		t.Errorf("UCMP efficiency %.3f not above VLB %.3f", ucmpRes.Efficiency, vlbRes.Efficiency)
	}
	// VLB's 2-hop routing pins its efficiency near 0.5.
	if vlbRes.Efficiency < 0.35 || vlbRes.Efficiency > 0.75 {
		t.Errorf("VLB efficiency %.3f far from 0.5", vlbRes.Efficiency)
	}
	// §6.3: recirculation stays a small fraction even at 40%% load.
	if ucmpRes.ReroutedFrac > 0.25 {
		t.Errorf("rerouted fraction %.3f excessive", ucmpRes.ReroutedFrac)
	}
}

// TestPaperPathShape checks §7.2 on the scaled fabric: small groups with
// high multi-path coverage, mean hops in the low-2s, singleton groups only
// in direct-circuit slices.
func TestPaperPathShape(t *testing.T) {
	fab := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	ps := core.BuildPathSet(fab, 0.5)
	rep, st := harness.Fig5a(ps)
	_ = rep
	if st.MeanGroupSize < 2 || st.MeanGroupSize > 6 {
		t.Errorf("mean group size %.2f outside the paper's band", st.MeanGroupSize)
	}
	if st.MultiPathShare < 0.8 {
		t.Errorf("multi-path share %.2f below the paper's regime", st.MultiPathShare)
	}
	if st.MeanHops < 1.5 || st.MeanHops > 3.2 {
		t.Errorf("mean hops %.2f outside the paper's band (2.32)", st.MeanHops)
	}
	gs, _ := ps.SingleSliceShare()
	// Singleton share equals 1/S on a one-factorized round-robin schedule.
	want := 1.0 / float64(fab.Sched.S)
	if gs < want*0.8 || gs > want*1.2 {
		t.Errorf("singleton share %.3f, want ~%.3f (1/S)", gs, want)
	}
}
