package plot

import (
	"strings"
	"testing"
)

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("length: %q", s)
	}
	rs := []rune(s)
	if rs[0] != '▁' || rs[3] != '█' {
		t.Fatalf("scaling wrong: %q", s)
	}
	// Constant series renders without panicking.
	c := Sparkline([]float64{5, 5, 5})
	if len([]rune(c)) != 3 {
		t.Fatalf("constant: %q", c)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty input")
	}
}

func TestBar(t *testing.T) {
	b := Bar("x", 0.5, 1.0, 10)
	if !strings.Contains(b, "█████") {
		t.Fatalf("half bar: %q", b)
	}
	if !strings.Contains(b, "0.500") {
		t.Fatalf("value missing: %q", b)
	}
	// Overflow clamps.
	b2 := Bar("y", 5, 1, 4)
	if strings.Count(b2, "█") != 4 {
		t.Fatalf("overflow: %q", b2)
	}
	// Zero max.
	b3 := Bar("z", 1, 0, 4)
	if strings.Count(b3, "█") != 0 {
		t.Fatalf("zero max: %q", b3)
	}
}

func TestBarChart(t *testing.T) {
	rows := BarChart([]string{"a", "b"}, []float64{1, 2}, 8)
	if len(rows) != 2 {
		t.Fatal("rows")
	}
	if strings.Count(rows[1], "█") != 8 {
		t.Fatalf("max bar not full: %q", rows[1])
	}
	if strings.Count(rows[0], "█") != 4 {
		t.Fatalf("half bar: %q", rows[0])
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	probs := make([]float64, len(xs))
	for i := range xs {
		probs[i] = float64(i+1) / 10
	}
	rows := CDF(xs, probs, 4, 20)
	if len(rows) != 4 {
		t.Fatalf("rows: %v", rows)
	}
	if !strings.Contains(rows[3], "p100") && !strings.Contains(rows[3], "10.0") {
		t.Fatalf("tail row: %q", rows[3])
	}
	if CDF(nil, nil, 4, 10) != nil {
		t.Fatal("empty input")
	}
}

func TestHistogram(t *testing.T) {
	rows := Histogram(map[int]int{1: 3, 2: 1}, 8)
	if len(rows) != 2 {
		t.Fatal("rows")
	}
	if !strings.HasPrefix(rows[0], "1") || !strings.HasPrefix(rows[1], "2") {
		t.Fatalf("ordering: %v", rows)
	}
	if strings.Count(rows[0], "█") <= strings.Count(rows[1], "█") {
		t.Fatalf("relative sizes: %v", rows)
	}
}
