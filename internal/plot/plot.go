// Package plot renders small ASCII charts for the experiment reports:
// CDF curves (Fig 13-style), horizontal bar charts (Fig 5b/6c-style), and
// sparklines for time series (Fig 7-style). Pure text, no dependencies.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// blocks are eighth-height bar glyphs for sparklines.
var blocks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as unicode block glyphs, scaled to [min,max].
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// Bar renders one labeled horizontal bar scaled against max.
func Bar(label string, value, max float64, width int) string {
	if width < 1 {
		width = 1
	}
	n := 0
	if max > 0 {
		n = int(value / max * float64(width))
	}
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return fmt.Sprintf("%-14s %s%s %.3f", label,
		strings.Repeat("█", n), strings.Repeat("·", width-n), value)
}

// BarChart renders labeled values as horizontal bars, widest = max value.
func BarChart(labels []string, values []float64, width int) []string {
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	out := make([]string, 0, len(values))
	for i, v := range values {
		out = append(out, Bar(labels[i], v, max, width))
	}
	return out
}

// CDF renders a cumulative distribution as rows of (x, prob, bar),
// downsampled to at most `rows` points. xs must be sorted ascending with
// probs in step.
func CDF(xs []float64, probs []float64, rows, width int) []string {
	if len(xs) == 0 {
		return nil
	}
	if rows < 2 {
		rows = 2
	}
	out := make([]string, 0, rows)
	for r := 0; r < rows; r++ {
		target := float64(r+1) / float64(rows)
		i := sort.SearchFloat64s(probs, target)
		if i >= len(xs) {
			i = len(xs) - 1
		}
		n := int(probs[i] * float64(width))
		if n > width {
			n = width
		}
		out = append(out, fmt.Sprintf("p%02.0f %10.1f |%s%s|",
			probs[i]*100, xs[i], strings.Repeat("█", n), strings.Repeat(" ", width-n)))
	}
	return out
}

// Histogram renders integer-keyed counts (e.g. hop histograms) as bars.
func Histogram(hist map[int]int, width int) []string {
	keys := make([]int, 0, len(hist))
	total := 0
	for k, c := range hist {
		keys = append(keys, k)
		total += c
	}
	sort.Ints(keys)
	var out []string
	for _, k := range keys {
		share := 0.0
		if total > 0 {
			share = float64(hist[k]) / float64(total)
		}
		out = append(out, Bar(fmt.Sprintf("%d", k), share, 1.0, width))
	}
	return out
}
