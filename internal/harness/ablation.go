package harness

import (
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
	"ucmp/internal/transport"
)

// AblationPolicy isolates the uniform-cost policy (§3.1): full UCMP versus
// pinning all traffic to the minimum-latency path (ignoring the hop-count
// term) or to the fewest-hop path (ignoring the latency term). The paper
// argues the cost metric must unify both; this quantifies what each half
// alone loses.
func AblationPolicy(base SimConfig) (*Report, []*Result, error) {
	base.Workload = "websearch"
	base.Routing = UCMP
	base.Transport = transport.DCTCP
	variants := []struct {
		name string
		pin  string
	}{
		{"uniform cost (full UCMP)", ""},
		{"latency-only (pin min-latency)", "min-latency"},
		{"hops-only (pin fewest hops)", "fewest-hops"},
	}
	r := &Report{Title: "Ablation: uniform cost vs its latency-only / hops-only halves"}
	r.Addf("%-32s %-10s %-10s %-12s %-9s", "policy", "<=10KB", ">1MB", "efficiency", "complete")
	var out []*Result
	for _, v := range variants {
		cfg := base
		cfg.PinPolicy = v.pin
		res, err := Run(cfg)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, res)
		bins := coarseBins(res.Collector)
		r.Addf("%-32s %-10s %-10s %-12.3f %-9.2f",
			v.name, fmtT(bins[0]), fmtT(bins[3]), res.Efficiency, res.CompletionRate)
	}
	r.Addf("(expected: latency-only wins short-flow FCT but wastes bandwidth;")
	r.Addf(" hops-only maximizes efficiency but inflates short-flow FCT;")
	r.Addf(" uniform cost holds both ends simultaneously)")
	return r, out, nil
}

// AblationParallel isolates the ECMP-style spreading over tied parallel
// paths (§5.1): keeping up to 4 ties versus exactly one path per hop count.
func AblationParallel(base SimConfig) (*Report, []*Result, error) {
	base.Workload = "websearch"
	base.Routing = UCMP
	base.Transport = transport.DCTCP
	if base.SampleEvery == 0 {
		base.SampleEvery = 500 * sim.Microsecond
	}
	r := &Report{Title: "Ablation: parallel-path tie spreading"}
	r.Addf("%-24s %-12s %-12s %-10s", "variant", "Jain load", "efficiency", "<=10KB")
	var out []*Result
	for _, v := range []struct {
		name string
		cap  int
	}{{"up to 4 tied paths", 0}, {"single path per entry", 1}} {
		cfg := base
		cfg.MaxParallel = v.cap
		res, err := Run(cfg)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, res)
		bins := coarseBins(res.Collector)
		jain := res.Collector.MeanUtil(1, func(s netsim.Sample) float64 { return s.JainLoadIndex })
		r.Addf("%-24s %-12.3f %-12.3f %-10s", v.name, jain, res.Efficiency, fmtT(bins[0]))
	}
	return r, out, nil
}

// AblationSchedule isolates the expander-shuffled factorization (DESIGN.md):
// grouping consecutive circle-method matchings roughly doubles h_static,
// which inflates h_max and path latencies. This is an offline comparison.
func AblationSchedule(n, d int) *Report {
	r := &Report{Title: "Ablation: matching grouping vs slice-graph diameter"}
	shuffled := maxDiameterOf(n, d, true)
	consecutive := maxDiameterOf(n, d, false)
	r.Addf("%-28s h_static", "grouping")
	r.Addf("%-28s %d", "expander-shuffled (default)", shuffled)
	r.Addf("%-28s %d", "consecutive circle rounds", consecutive)
	if consecutive > shuffled {
		r.Addf("(shuffling wins: smaller diameter -> tighter Q(h_max) -> shorter paths)")
	}
	return r
}

// maxDiameterOf computes the max per-slice diameter when d matchings are
// grouped per slice, either from the expander-shuffled factorization or
// from consecutive circle-method rounds.
func maxDiameterOf(n, d int, shuffled bool) int {
	var rounds []topo.Matching
	if shuffled {
		rounds = topo.ExpanderFactorization(n)
	} else {
		rounds = topo.OneFactorization(n)
	}
	slices := (len(rounds) + d - 1) / d
	max := 0
	for sl := 0; sl < slices; sl++ {
		g := &topo.Graph{N: n, Adj: make([][]int, n)}
		for sw := 0; sw < d; sw++ {
			m := rounds[(sl*d+sw)%len(rounds)]
			for i := 0; i < n; i++ {
				g.Adj[i] = append(g.Adj[i], m[i])
			}
		}
		dd := g.Diameter()
		if dd < 0 {
			dd = n
		}
		if dd > max {
			max = dd
		}
	}
	return max
}
