package harness

import (
	"sync"

	"ucmp/internal/sim"
)

// CollectSchedStats enables scheduler-internals aggregation across runs
// (pending high-water mark, wheel cascades, timer cancels). Off by default;
// cmd/ucmpbench flips it with -schedstats.
var CollectSchedStats = false

var (
	schedMu  sync.Mutex
	schedAgg sim.SchedStats
)

// recordSchedStats folds one engine's scheduler internals into the
// aggregate: counters sum across runs, the high-water mark takes the max.
func recordSchedStats(eng *sim.Engine) {
	if !CollectSchedStats {
		return
	}
	s := eng.SchedStats()
	schedMu.Lock()
	if s.PendingHighWater > schedAgg.PendingHighWater {
		schedAgg.PendingHighWater = s.PendingHighWater
	}
	schedAgg.Cascades += s.Cascades
	schedAgg.OverflowPushes += s.OverflowPushes
	schedAgg.Cancels += s.Cancels
	schedAgg.DeadPops += s.DeadPops
	schedAgg.Chases += s.Chases
	schedMu.Unlock()
}

// TakeSchedStats returns the scheduler internals aggregated since the
// previous call and resets the aggregate.
func TakeSchedStats() sim.SchedStats {
	schedMu.Lock()
	s := schedAgg
	schedAgg = sim.SchedStats{}
	schedMu.Unlock()
	return s
}
