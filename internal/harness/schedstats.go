package harness

import (
	"sync"

	"ucmp/internal/sim"
)

// CollectSchedStats enables scheduler-internals aggregation across runs
// (pending high-water mark, wheel cascades, timer cancels, shard barrier
// traffic). Off by default; cmd/ucmpbench flips it with -schedstats.
var CollectSchedStats = false

var (
	schedMu    sync.Mutex
	schedAgg   sim.SchedStats
	shardAgg   sim.ShardStats
	shardNotes []string
)

// recordSchedStats folds one run's scheduler internals into the aggregate:
// counters sum across runs, the high-water mark takes the max. It takes a
// stats value (not an engine) so serial runs pass eng.SchedStats() and
// sharded runs pass the ShardedEngine's cross-domain aggregate.
func recordSchedStats(s sim.SchedStats) {
	if !CollectSchedStats {
		return
	}
	schedMu.Lock()
	if s.PendingHighWater > schedAgg.PendingHighWater {
		schedAgg.PendingHighWater = s.PendingHighWater
	}
	schedAgg.Cascades += s.Cascades
	schedAgg.OverflowPushes += s.OverflowPushes
	schedAgg.Cancels += s.Cancels
	schedAgg.DeadPops += s.DeadPops
	schedAgg.Chases += s.Chases
	schedMu.Unlock()
}

// recordShardStats folds one sharded run's barrier/mailbox counters into
// the aggregate.
func recordShardStats(s sim.ShardStats) {
	if !CollectSchedStats {
		return
	}
	schedMu.Lock()
	shardAgg.Windows += s.Windows
	shardAgg.Barriers += s.Barriers
	shardAgg.CrossEvents += s.CrossEvents
	shardAgg.MergeBatches += s.MergeBatches
	if s.MailboxHighWater > shardAgg.MailboxHighWater {
		shardAgg.MailboxHighWater = s.MailboxHighWater
	}
	schedMu.Unlock()
}

// TakeSchedStats returns the scheduler internals aggregated since the
// previous call and resets the aggregate.
func TakeSchedStats() sim.SchedStats {
	schedMu.Lock()
	s := schedAgg
	schedAgg = sim.SchedStats{}
	schedMu.Unlock()
	return s
}

// recordShardNote remembers a serial-fallback reason so CLI callers can
// surface it (Result.ShardNote is per-run; exhibits aggregate many runs).
// Unlike the stats above it is not gated on CollectSchedStats: a sharded
// run silently degrading to serial is something the caller asked for and
// didn't get. Duplicate reasons collapse to one note.
func recordShardNote(note string) {
	schedMu.Lock()
	for _, n := range shardNotes {
		if n == note {
			schedMu.Unlock()
			return
		}
	}
	shardNotes = append(shardNotes, note)
	schedMu.Unlock()
}

// TakeShardNotes returns the distinct serial-fallback notes recorded since
// the previous call and resets the list.
func TakeShardNotes() []string {
	schedMu.Lock()
	notes := shardNotes
	shardNotes = nil
	schedMu.Unlock()
	return notes
}

// TakeShardStats returns the sharded-engine counters aggregated since the
// previous call and resets the aggregate.
func TakeShardStats() sim.ShardStats {
	schedMu.Lock()
	s := shardAgg
	shardAgg = sim.ShardStats{}
	schedMu.Unlock()
	return s
}
