package harness

import (
	"testing"

	"ucmp/internal/failure"
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
	"ucmp/internal/transport"
)

// congestionCase is one §14 differential scenario: congestion-aware UCMP
// planning against the slice-boundary backlog board must produce
// byte-identical results on the serial and sharded engines. mustSteer marks
// scenarios built to guarantee the steering actually engages, so the
// differential cannot pass vacuously with the congestion machinery idle.
type congestionCase struct {
	shardedCase
	mustSteer bool
}

func congestionCases() []congestionCase {
	// Incast onto ToR 0 from every other host on an 8-ToR fabric: a
	// different topology and deterministic flow set for the differential.
	// (DCTCP keeps the source calendars drained at boundaries here, so this
	// case exercises the engaged-check-but-no-steer path.)
	incastTopo := topo.Scaled()
	incastTopo.NumToRs = 8
	incastCfg := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	incastCfg.Workload = ""
	incastCfg.Topo = incastTopo
	incastCfg.CongestionAware = true
	incastCfg.CongestionThreshold = 2
	incastCfg.Horizon = 400 * sim.Millisecond
	incast := congestionCase{
		shardedCase: shardedCase{
			name: "congestion-incast8", cfg: incastCfg,
			flows: func() []*netsim.Flow {
				var flows []*netsim.Flow
				for h := incastTopo.HostsPerToR; h < incastTopo.NumHosts(); h++ {
					flows = append(flows, netsim.NewFlow(int64(h), h, 0, 128<<10, 0))
				}
				return flows
			},
		},
	}

	// Hotspot-skewed Poisson web search: overlapping randomized flows keep
	// calendar queues populated at boundaries, so with a low threshold the
	// steering is guaranteed to engage (thousands of steered picks).
	hot := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	hot.CongestionAware = true
	hot.CongestionThreshold = 2
	hot.Hotspot = 0.5
	hot.Load = 0.7
	hot.Duration = sim.Millisecond
	hot.Seed = 41

	// Runtime faults whose epochs land exactly on slice boundaries
	// (multiples of the 50µs Scaled slice): the boundary instant then
	// carries a board publication AND an epoch flip, and plans fed by both
	// must still agree byte for byte across engines.
	faulty := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	faulty.CongestionAware = true
	faulty.CongestionThreshold = 2
	faulty.Duration = sim.Millisecond
	faulty.Seed = 42
	faulty.Failures = failure.NewTimeline().
		LinkDown(200*sim.Microsecond, 3, 1).
		SwitchDown(400*sim.Microsecond, 2).
		SwitchUp(800*sim.Microsecond, 2).
		LinkUp(950*sim.Microsecond, 3, 1)

	return []congestionCase{
		incast,
		{shardedCase: shardedCase{name: "congestion-hotspot-poisson", cfg: hot}, mustSteer: true},
		{shardedCase: shardedCase{name: "congestion-failure-epochs", cfg: faulty}},
	}
}

// TestDifferentialCongestionSharded requires the sharded engine to
// reproduce serial congestion-aware runs byte for byte, across a dividing
// shard count, a non-dividing one, and one worker per ToR — and requires
// the steering to have engaged where the scenario guarantees it.
func TestDifferentialCongestionSharded(t *testing.T) {
	for _, tc := range congestionCases() {
		t.Run(tc.name, func(t *testing.T) {
			run := func(shards int) *Result {
				cfg := tc.cfg
				cfg.Shards = shards
				if tc.flows != nil {
					cfg.Flows = tc.flows()
				}
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if shards > 1 && !res.Sharded {
					t.Fatalf("Shards=%d did not run sharded (note %q)", shards, res.ShardNote)
				}
				return res
			}
			serialRes := run(0)
			if tc.mustSteer && serialRes.Counters.CongestionSteered == 0 {
				t.Fatal("congestion steering never engaged; the differential is vacuous")
			}
			serial := fingerprintCore(serialRes)
			for _, shards := range []int{2, 5, tc.cfg.Topo.NumToRs} { // 5 divides neither ToR count
				if got := fingerprintCore(run(shards)); got != serial {
					t.Fatalf("congestion-aware sharded(shards=%d) diverges from serial:\n--- serial ---\n%s\n--- sharded ---\n%s",
						shards, serial, got)
				}
			}
		})
	}
}

// TestCongestionSteeringChangesOutcome pins that the knob is live: the
// guaranteed-engagement scenario steers packets (CongestionSteered > 0) and
// its results differ from the identical config with steering off, while the
// steering-off run never increments the counter.
func TestCongestionSteeringChangesOutcome(t *testing.T) {
	var tc congestionCase
	for _, c := range congestionCases() {
		if c.mustSteer {
			tc = c
			break
		}
	}
	aware := tc.cfg
	awareRes, err := Run(aware)
	if err != nil {
		t.Fatal(err)
	}
	if awareRes.Counters.CongestionSteered == 0 {
		t.Fatal("congestion-aware hotspot run never steered")
	}

	unaware := tc.cfg
	unaware.CongestionAware = false
	unawareRes, err := Run(unaware)
	if err != nil {
		t.Fatal(err)
	}
	if unawareRes.Counters.CongestionSteered != 0 {
		t.Fatalf("steering-off run recorded %d steered packets", unawareRes.Counters.CongestionSteered)
	}
	if fingerprintCore(awareRes) == fingerprintCore(unawareRes) {
		t.Fatal("congestion-aware run is byte-identical to the unaware run; steering had no effect")
	}
}

// TestTableCacheCapConfig pins the TableCacheCap contract: negative caps
// (and negative congestion thresholds) are rejected, and a cache squeezed
// far below the ToR count still plans bit-identically to the default cap —
// eviction and recompilation must not change results.
func TestTableCacheCapConfig(t *testing.T) {
	base := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	base.Duration = 200 * sim.Microsecond
	base.UseTables = true

	neg := base
	neg.TableCacheCap = -1
	if _, err := Run(neg); err == nil {
		t.Fatal("Run accepted TableCacheCap=-1")
	}
	negThr := base
	negThr.CongestionThreshold = -5
	if _, err := Run(negThr); err == nil {
		t.Fatal("Run accepted CongestionThreshold=-5")
	}

	def, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	tiny := base
	tiny.TableCacheCap = 2
	tinyRes, err := Run(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprintCore(tinyRes), fingerprintCore(def); got != want {
		t.Fatalf("TableCacheCap=2 diverges from the default cap:\n--- default ---\n%s\n--- cap 2 ---\n%s", want, got)
	}
}
