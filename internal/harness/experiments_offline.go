package harness

import (
	"fmt"
	"math/rand"

	"ucmp/internal/analysis"
	"ucmp/internal/core"
	"ucmp/internal/failure"
	"ucmp/internal/sim"
	"ucmp/internal/switchres"
	"ucmp/internal/topo"
)

// newLinkFailures builds the Fig 12d link-failure scenario.
func newLinkFailures(f *topo.Fabric, frac float64, seed int64) *failure.Scenario {
	return failure.NewScenario(f).FailLinks(frac, rand.New(rand.NewSource(seed)))
}

// Table1 reproduces the §5.1 worked uniform-cost example.
func Table1() *Report {
	m := core.CostModel{Alpha: 1, LinkBps: 100e9, SliceMicros: 5}
	rows := []struct {
		hops int
		lat  int64
	}{{1, 12}, {2, 3}, {3, 2}, {4, 1}}
	sizes := []int64{1e6, 1e5, 1e4}
	r := &Report{Title: "Table 1: uniform cost C(p,f) in us (alpha=1, B=100Gbps)"}
	r.Addf("%-8s %-12s %-14s %-14s %-14s", "hop(p)", "latency(us)", "C(p,1MB)", "C(p,100KB)", "C(p,10KB)")
	for _, row := range rows {
		r.Addf("%-8d %-12.0f %-14.1f %-14.1f %-14.1f",
			row.hops, m.LatencyMicros(row.lat),
			m.Cost(row.lat, row.hops, sizes[0]),
			m.Cost(row.lat, row.hops, sizes[1]),
			m.Cost(row.lat, row.hops, sizes[2]))
	}
	g := &core.Group{Entries: []core.Entry{
		{HopCount: 1, LatencySlices: 12},
		{HopCount: 2, LatencySlices: 3},
		{HopCount: 3, LatencySlices: 2},
		{HopCount: 4, LatencySlices: 1},
	}}
	g.BuildBuckets(m)
	for _, s := range sizes {
		e := g.MinCostEntry(m, s)
		r.Addf("min-cost path for %8d B: %d hops (latency %d slices)", s, e.HopCount, e.LatencySlices)
	}
	return r
}

// Table2Row is one switch-resource configuration.
type Table2Row struct{ N, D int }

// Table2Scales are the paper's four configurations.
var Table2Scales = []Table2Row{{108, 6}, {324, 12}, {768, 24}, {1024, 32}}

// Table2 reproduces the hardware resource usage table (§8, Table 2), with
// both the naive per-bucket entry count and the bucket-range-collapsed one.
// On rotation-symmetric schedules (the power-of-two scales) the collapsed
// and packed-SRAM columns come from an actual compiled source-routing table
// rather than the sampled model.
func Table2(scales []Table2Row) (*Report, []switchres.Usage) {
	r := &Report{Title: "Table 2: switch resource usage per RDCN scale"}
	r.Addf("%-12s %-9s %-9s %-13s %-13s %-8s", "(N,d)", "#Q/port", "#Buckets", "#Naive/ToR", "#Entries/ToR", "SRAM")
	var rows []switchres.Usage
	for _, sc := range scales {
		cfg := topo.PaperDefault()
		cfg.NumToRs, cfg.Uplinks, cfg.HostsPerToR = sc.N, sc.D, sc.D
		fab := topo.MustFabric(cfg, "round-robin", 1)
		var u switchres.Usage
		if fab.Sched.Rotation() {
			u = switchres.ComputeExact(fab, 0.5, switchres.Sampling{})
		} else {
			u = switchres.Compute(fab, 0.5, switchres.Sampling{})
		}
		rows = append(rows, u)
		entries, sram, note := u.EntriesPerToR, u.SRAMPct, ""
		if u.Exact {
			entries, sram, note = u.PackedEntriesPerToR, u.PackedSRAMPct, " (exact)"
		}
		r.Addf("(%d, %d)%*s %-9d %-9d %-13d %-13d %.2f%%%s",
			sc.N, sc.D, 11-len2(sc.N, sc.D), "", u.QueuesPerPort, u.Buckets,
			u.NaiveEntriesPerToR, entries, sram, note)
	}
	return r, rows
}

func len2(n, d int) int {
	c := 4 // parens, comma, space
	for x := n; x > 0; x /= 10 {
		c++
	}
	for x := d; x > 0; x /= 10 {
		c++
	}
	return c
}

// Table3Row is one h_max bound configuration.
type Table3Row struct {
	SliceUs int
	N, D    int
}

// Table3Scales are the paper's six rows (Appendix B, Table 3).
var Table3Scales = []Table3Row{
	{1, 108, 6}, {1, 324, 6}, {2, 108, 6}, {2, 4320, 24}, {5, 1200, 12}, {10, 4320, 24},
}

// Table3 reproduces the Q(h_max) upper bounds.
func Table3(rows []Table3Row) *Report {
	r := &Report{Title: "Table 3: upper bounds of h_max"}
	r.Addf("%-10s %-12s %-8s %-9s %-6s %-4s %-8s", "slice", "(N,d)", "hslice", "hstatic", "case", "S", "Q(hmax)")
	for _, row := range rows {
		cfg := topo.PaperDefault()
		cfg.NumToRs, cfg.Uplinks = row.N, row.D
		cfg.SliceDuration = sim.Time(row.SliceUs) * sim.Microsecond
		hslice := cfg.HopsPerSlice()
		var hstatic int
		if row.N <= 1200 {
			sched := topo.RoundRobin(row.N, row.D)
			b := core.BoundHmax(cfg, sched)
			hstatic = b.HStatic
		} else {
			hstatic = core.HStaticSampled(row.N, row.D, 4, 1)
		}
		caseName := "I"
		s := 0
		q := hstatic
		if hslice < hstatic {
			caseName = "II"
			s = core.SpanSlices(row.N, row.D, core.DefaultUnvisitedThreshold)
			q = hslice * s
		}
		r.Addf("%-10s (%d,%d)%*s %-8d %-9d %-6s %-4d %-8d",
			sim.Time(row.SliceUs)*sim.Microsecond, row.N, row.D, 12-len2(row.N, row.D)+2, "",
			hslice, hstatic, caseName, s, q)
	}
	return r
}

// Fig5a reports UCMP path counts, diversity, and edge-disjointness.
func Fig5a(ps *core.PathSet) (*Report, analysis.PathStats) {
	st := analysis.Analyze(ps)
	r := &Report{Title: "Fig 5a: UCMP path numbers (" + ps.F.Sched.Kind + " schedule)"}
	r.Addf("mean paths per group:      %.2f (paper: 3.2)", st.MeanGroupSize)
	r.Addf("multi-path share:          %.1f%% (paper: 94.4%%)", st.MultiPathShare*100)
	r.Addf("edge-disjoint paths:       %.1f%% (paper: 93.2%%)", st.EdgeDisjointShare*100)
	r.Addf("mean unique paths / cycle: %.1f (paper: 47.9)", st.MeanPathsPerCycle)
	r.Addf("group size histogram:")
	for _, k := range analysis.SortedKeys(st.GroupSizes) {
		r.Addf("  %2d paths: %d groups", k, st.GroupSizes[k])
	}
	return r, st
}

// Fig16 is Fig5a under a randomly generated schedule.
func Fig16(cfg topo.Config, seed int64) (*Report, analysis.PathStats) {
	fab := topo.MustFabric(cfg, "random", seed)
	ps := core.BuildPathSet(fab, 0.5)
	rep, st := Fig5a(ps)
	rep.Title = "Fig 16: UCMP path numbers under a random schedule"
	return rep, st
}

// Fig5b compares hop-count distributions: UCMP vs Opera(k=1,5) and
// KSP(k=1,5). sampleEvery subsamples baseline slices to bound Yen cost.
func Fig5b(ps *core.PathSet, sampleEvery int) (*Report, []analysis.HopDist) {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	ucmpDist := analysis.NewHopDist("ucmp", analysisHist(ps))

	cfg := ps.F.Config
	rr := ps.F.Sched
	operaSched := topo.Opera(cfg.NumToRs, cfg.Uplinks)

	dists := []analysis.HopDist{ucmpDist}
	for _, spec := range []struct {
		name   string
		sched  *topo.Schedule
		stable bool
		k      int
	}{
		{"opera-1", operaSched, true, 1},
		{"opera-5", operaSched, true, 5},
		{"ksp-1", rr, false, 1},
		{"ksp-5", rr, false, 5},
	} {
		hist := make(map[int]int)
		for sl := 0; sl < spec.sched.S; sl += sampleEvery {
			var g *topo.Graph
			if spec.stable {
				g = spec.sched.StableSliceGraph(sl)
			} else {
				g = spec.sched.SliceGraph(sl)
			}
			for src := 0; src < spec.sched.N; src++ {
				for dst := 0; dst < spec.sched.N; dst++ {
					if src == dst {
						continue
					}
					for _, nodes := range g.KShortestPaths(src, dst, spec.k) {
						hist[len(nodes)-1]++
					}
				}
			}
		}
		dists = append(dists, analysis.NewHopDist(spec.name, hist))
	}

	r := &Report{Title: "Fig 5b: hop count distribution by routing scheme"}
	r.Addf("%-10s %-7s %-7s %-7s %-7s %-7s %-7s", "scheme", "1hop", "2hop", "3hop", "4hop", ">=5hop", "mean")
	for _, d := range dists {
		over := 0.0
		for h, s := range d.Share {
			if h >= 5 {
				over += s
			}
		}
		r.Addf("%-10s %-7.3f %-7.3f %-7.3f %-7.3f %-7.3f %-7.2f",
			d.Name, d.Share[1], d.Share[2], d.Share[3], d.Share[4], over, d.Mean)
	}
	r.Addf("(paper means: UCMP 2.32, KSP-1 2.80, KSP-5 3.61, Opera-1 3.11, Opera-5 4.45)")
	return r, dists
}

func analysisHist(ps *core.PathSet) map[int]int {
	st := analysis.Analyze(ps)
	return st.HopHist
}

// Fig12abc classifies UCMP recovery options under ToR, link, and circuit
// switch failures.
func Fig12abc(ps *core.PathSet, seed int64) (*Report, map[string][]failure.Breakdown) {
	r := &Report{Title: "Fig 12a-c: UCMP recovery under failures"}
	out := make(map[string][]failure.Breakdown)
	run := func(label string, fracs []float64, apply func(sc *failure.Scenario, frac float64, rng *rand.Rand)) {
		r.Addf("%s failures:", label)
		r.Addf("  %-7s %-9s %-9s %-12s %-9s %-14s", "frac", "affected", "shorter", "same-length", "longer", "unrecoverable")
		for _, frac := range fracs {
			sc := failure.NewScenario(ps.F)
			apply(sc, frac, rand.New(rand.NewSource(seed)))
			b := failure.Classify(ps, sc)
			out[label] = append(out[label], b)
			r.Addf("  %-7.3f %-9d %-9.3f %-12.3f %-9.3f %-14.3f",
				frac, b.Affected, b.Share[failure.Shorter], b.Share[failure.SameLength],
				b.Share[failure.Longer], b.Share[failure.Unrecoverable])
		}
	}
	run("ToR", []float64{0.02, 0.05, 0.10}, func(sc *failure.Scenario, f float64, rng *rand.Rand) { sc.FailToRs(f, rng) })
	run("link", []float64{0.02, 0.05, 0.10}, func(sc *failure.Scenario, f float64, rng *rand.Rand) { sc.FailLinks(f, rng) })
	d := float64(ps.F.Sched.D)
	run("switch", []float64{1 / d, 2 / d}, func(sc *failure.Scenario, f float64, rng *rand.Rand) { sc.FailSwitches(f, rng) })
	return r, out
}

// Fig14 prints P(unvisited ToRs) across topology scales.
func Fig14() (*Report, map[[2]int][]float64) {
	scales := [][2]int{{108, 6}, {324, 6}, {324, 12}, {1200, 12}, {1200, 24}, {4320, 24}}
	r := &Report{Title: "Fig 14: P(unvisited ToRs) vs time slices c"}
	out := make(map[[2]int][]float64)
	header := "  c:"
	for c := 1; c <= 6; c++ {
		header += "        " + string(rune('0'+c))
	}
	r.Lines = append(r.Lines, header)
	for _, s := range scales {
		row := make([]float64, 0, 6)
		line := ""
		for c := 1; c <= 6; c++ {
			p := core.PUnvisited(s[0], s[1], c)
			row = append(row, p)
			line += formatProb(p)
		}
		out[s] = row
		r.Addf("(%4d,%2d) %s", s[0], s[1], line)
	}
	return r, out
}

func formatProb(p float64) string {
	switch {
	case p > 1e-4:
		return "  " + trimFloat(p)
	default:
		return "  " + trimExp(p)
	}
}

func trimFloat(p float64) string { return fmt.Sprintf("%7.4f", p) }
func trimExp(p float64) string   { return fmt.Sprintf("%7.0e", p) }
