package harness

import (
	"fmt"
	"os"
	"sync"

	"ucmp/internal/core"
	"ucmp/internal/fabriccache"
	"ucmp/internal/routing"
	"ucmp/internal/topo"
)

// Warm-fabric plumbing (DESIGN.md §15). Loaded fabric handles are cached
// process-wide, keyed by cache file path (which itself embeds the schedule
// fingerprint and build parameters), so all trials of a sweep share one
// mmap'd path set. Handles are never Closed: the table arrays alias the
// mapping and the map retains every loaded fabric for the process lifetime —
// read-only mappings cost address space, not dirty memory, and the set of
// distinct fabrics per process is small.
var warmFabrics struct {
	sync.Mutex
	m map[string]*fabriccache.Fabric
}

// warmPathSet returns the compiled path set for cfg's fabric, plus ToR 0's
// compiled table when one came from the fabric cache (nil otherwise — the
// caller compiles tables lazily as usual), and whether the result was warm
// (served without an offline build). With FabricCacheDir unset, or for
// schedules with no canonical form, it simply builds cold. Otherwise it
// serves from the in-process cache, then from the cache file, and only then
// builds cold — saving the result (best-effort) so the next process starts
// warm. Warm and cold results are byte-identical by construction: the codec
// round-trips the canonical arena exactly, and the differential tests pin
// it.
func warmPathSet(fab *topo.Fabric, cfg SimConfig) (*core.PathSet, *routing.CompiledTable, bool) {
	if cfg.FabricCacheDir == "" || !fab.Sched.Rotation() {
		return core.BuildPathSetWith(fab, cfg.Alpha, cfg.MaxParallel), nil, false
	}
	params := fabriccache.Params{Alpha: cfg.Alpha, MaxParallel: cfg.MaxParallel}
	path := fabriccache.FileName(cfg.FabricCacheDir, fab, params)

	warmFabrics.Lock()
	defer warmFabrics.Unlock()
	if warmFabrics.m == nil {
		warmFabrics.m = make(map[string]*fabriccache.Fabric)
	}
	if wf, ok := warmFabrics.m[path]; ok {
		return wf.PS, wf.Table, true
	}
	if wf, err := fabriccache.Load(path, fab, params, fabriccache.Options{}); err == nil {
		warmFabrics.m[path] = wf
		return wf.PS, wf.Table, true
	}
	// Missing, stale, or corrupted file: rebuild and overwrite.
	ps := core.BuildPathSetWith(fab, cfg.Alpha, cfg.MaxParallel)
	if !ps.Symmetric() {
		return ps, nil, false
	}
	table := routing.CompileTable(ps, core.NewFlowAger(ps), 0)
	// Best-effort: a full disk or read-only cache dir degrades to cold
	// builds with a warning, not errors — the cold result is still correct.
	if err := fabriccache.Save(path, ps, table); err != nil {
		fmt.Fprintf(os.Stderr, "harness: fabric cache not written: %v\n", err)
	}
	warmFabrics.m[path] = &fabriccache.Fabric{PS: ps, Table: table}
	return ps, table, false
}
