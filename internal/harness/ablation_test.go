package harness

import "testing"

func TestAblationPolicy(t *testing.T) {
	rep, out, err := AblationPolicy(quickBase())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatal("missing variants")
	}
	full, latOnly, hopsOnly := out[0], out[1], out[2]
	// hops-only must not beat full UCMP's efficiency by definition... it can
	// equal it; latency-only must not exceed full's efficiency.
	if latOnly.Efficiency > full.Efficiency+0.02 {
		t.Errorf("latency-only efficiency %.3f above full %.3f", latOnly.Efficiency, full.Efficiency)
	}
	if hopsOnly.Efficiency+0.02 < full.Efficiency {
		t.Errorf("hops-only efficiency %.3f below full %.3f", hopsOnly.Efficiency, full.Efficiency)
	}
	_ = rep.String()
}

func TestAblationParallel(t *testing.T) {
	rep, out, err := AblationParallel(quickBase())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatal("missing variants")
	}
	_ = rep.String()
}

func TestAblationSchedule(t *testing.T) {
	rep := AblationSchedule(108, 6)
	if len(rep.Lines) < 3 {
		t.Fatal("missing rows")
	}
	_ = rep.String()
}
