package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ucmp/internal/failure"
	"ucmp/internal/sim"
	"ucmp/internal/transport"
)

// ckptCase is one checkpoint/resume differential configuration.
type ckptCase struct {
	name  string
	cfg   SimConfig
	every func(slice sim.Time) sim.Time // checkpoint cadence from the slice length
}

// midSlice lands checkpoint instants strictly inside a slice; onBoundary
// lands them exactly on slice starts. Both must restore bit-identically.
func midSlice(slice sim.Time) sim.Time  { return 10*slice + slice/3 }
func onBoundary(slice sim.Time) sim.Time { return 16 * slice }

func ckptCases() []ckptCase {
	dctcp := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	ndp := ScaledConfig(UCMP, transport.NDP, "websearch")
	rotor := ScaledConfig(VLB, transport.Rotor, "datamining")

	failing := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	// A ToR dies before the checkpoint instants and never recovers: the
	// restored run must keep it dead (the failure schedule is re-derived
	// from time, not snapshotted).
	failing.Failures = failure.NewTimeline().TorDown(300*sim.Microsecond, 3)
	failing.SampleEvery = 200 * sim.Microsecond

	shardedCfg := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	shardedCfg.Shards = 4

	shardedRotor := ScaledConfig(VLB, transport.Rotor, "datamining")
	shardedRotor.Shards = 4
	shardedRotor.Failures = failure.NewTimeline().TorDown(300*sim.Microsecond, 5)
	shardedRotor.SampleEvery = 200 * sim.Microsecond

	cases := []ckptCase{
		{"serial-ucmp-dctcp-midslice", dctcp, midSlice},
		{"serial-ucmp-ndp-boundary", ndp, onBoundary},
		{"serial-vlb-rotor", rotor, midSlice},
		{"serial-ucmp-dctcp-failure", failing, midSlice},
		{"sharded-ucmp-dctcp", shardedCfg, midSlice},
		{"sharded-vlb-rotor-failure", shardedRotor, onBoundary},
	}
	for i := range cases {
		cases[i].cfg.Duration = sim.Millisecond
		cases[i].cfg.Seed = int64(31 + i)
	}
	return cases
}

// ckptFingerprint excludes Events for sharded runs (window advancement
// differs across worker schedules only in idle-domain bookkeeping, never in
// model state; the sharded differential tests make the same exclusion) and
// includes collector output so restored metrics state is covered too.
func ckptFingerprint(t *testing.T, r *Result) string {
	t.Helper()
	out := fingerprint(r)
	if r.Sharded {
		lines := strings.SplitN(out, "\n", 3)
		out = lines[0] + "\n" + lines[2]
	}
	out += "\nsamples:"
	for _, s := range r.Collector.Samples {
		out += fmt.Sprintf(" %d/%.12f/%.12f/%.12f/%.12f/%.12f",
			int64(s.At), s.TorToHostUtil, s.HostToTorUtil, s.TorToTorUtil, s.JainQueueIndex, s.JainLoadIndex)
	}
	out += "\nrecords:"
	for _, fr := range r.Collector.Flows {
		out += fmt.Sprintf(" %d:%d:%v:%v", fr.Size, int64(fr.FCT), fr.Rotor, fr.Priority)
	}
	return out
}

// TestDifferentialCheckpointResume is the headline guarantee: for serial
// and sharded engines, with and without an active failure timeline,
//
//	fingerprint(run 0→T)
//	  == fingerprint(run 0→T with checkpointing on)
//	  == fingerprint(restore last checkpoint → run t→T)
func TestDifferentialCheckpointResume(t *testing.T) {
	for _, tc := range ckptCases() {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			every := tc.every(tc.cfg.Topo.SliceDuration)

			plain, err := Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := ckptFingerprint(t, plain)

			ck := tc.cfg
			ck.CheckpointDir = dir
			ck.CheckpointEvery = every
			ckres, err := Run(ck)
			if err != nil {
				t.Fatal(err)
			}
			if got := ckptFingerprint(t, ckres); got != want {
				t.Fatalf("checkpointing perturbed the run:\n--- plain ---\n%s\n--- checkpointing ---\n%s", want, got)
			}

			rs := ck
			rs.Resume = true
			rsres, err := Run(rs)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(rsres.ResumeNote, "resumed at") {
				t.Fatalf("expected a resume, got note %q", rsres.ResumeNote)
			}
			if got := ckptFingerprint(t, rsres); got != want {
				t.Fatalf("resume diverged:\n--- plain ---\n%s\n--- resumed ---\n%s", want, got)
			}
		})
	}
}

// TestResumeMissingCheckpoint: Resume without a checkpoint on disk degrades
// to a cold run with the reason recorded, and identical results.
func TestResumeMissingCheckpoint(t *testing.T) {
	cfg := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	cfg.Duration = sim.Millisecond
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = 500 * sim.Microsecond
	cfg.Resume = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.ResumeNote, "cold run") {
		t.Fatalf("expected a cold-run note, got %q", res.ResumeNote)
	}
	if fingerprint(res) != fingerprint(plain) {
		t.Fatal("cold fallback diverged from a plain run")
	}
}

// TestResumeCorruptionRejected flips single bytes across the whole
// checkpoint file — header, every section, checksums — and requires each
// corruption to be rejected with a clean cold fallback whose result is
// identical to an uninterrupted run.
func TestResumeCorruptionRejected(t *testing.T) {
	cfg := ScaledConfig(UCMP, transport.NDP, "websearch")
	cfg.Duration = sim.Millisecond
	cfg.SampleEvery = 250 * sim.Microsecond
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(plain)

	dir := t.TempDir()
	ck := cfg
	ck.CheckpointDir = dir
	ck.CheckpointEvery = 400 * sim.Microsecond
	if _, err := Run(ck); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("want exactly one checkpoint file, got %v (%v)", ents, err)
	}
	path := filepath.Join(dir, ents[0].Name())
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	rs := ck
	rs.Resume = true
	// One flip inside the header, then one inside each stretch of the
	// payload (sections are contiguous, so stepping through the file hits
	// every section at least once).
	offsets := []int{9}
	step := (len(orig) - 40) / 12
	if step < 1 {
		step = 1
	}
	for off := 40; off < len(orig); off += step {
		offsets = append(offsets, off)
	}
	for _, off := range offsets {
		bad := append([]byte(nil), orig...)
		bad[off] ^= 0x20
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Run(rs)
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if !strings.Contains(res.ResumeNote, "cold run") {
			t.Fatalf("offset %d: corruption not rejected, note %q", off, res.ResumeNote)
		}
		if fingerprint(res) != want {
			t.Fatalf("offset %d: cold fallback diverged", off)
		}
	}
}
