package harness

import (
	"testing"

	"ucmp/internal/failure"
	"ucmp/internal/sim"
	"ucmp/internal/transport"
)

// TestRunFailureRecoveryMatchesOfflineClassify is the PR's acceptance test:
// a packet-level link-failure run must produce a nonzero per-class recovery
// breakdown, and each in-group class the router actually used online must be
// reachable in the offline §5.3 classification of the same scenario (same
// PathSet, same failed elements). The implication only runs one way — the
// offline walk covers every path while the run only touches paths carrying
// traffic.
func TestRunFailureRecoveryMatchesOfflineClassify(t *testing.T) {
	cfg := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	cfg.Duration = 2 * sim.Millisecond
	cfg.Seed = 5

	fab, err := newFabricFor(cfg, cfg.Topo)
	if err != nil {
		t.Fatal(err)
	}
	sc := newLinkFailures(fab, 0.1, cfg.Seed)
	cfg.Failures = failure.FromScenario(sc, cfg.Duration/4, -1)
	off := failure.Classify(buildPathSetFor(fab, cfg), sc)
	if off.Affected == 0 {
		t.Fatal("offline scenario affected nothing; the test is vacuous")
	}

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Recovery
	if rec.Total() == 0 {
		t.Fatal("no online recovery activity despite 10% of cables failing mid-run")
	}
	if rec.Recovered() == 0 {
		t.Fatal("every recovery attempt failed on a mildly-degraded fabric")
	}
	type classPair struct {
		name   string
		online int64
		off    failure.Recovery
	}
	for _, p := range []classPair{
		{"same-length", rec.SameLength, failure.SameLength},
		{"shorter", rec.Shorter, failure.Shorter},
		{"longer", rec.Longer, failure.Longer},
	} {
		if p.online > 0 && off.Share[p.off] == 0 {
			t.Errorf("online used %s recovery %d times but offline Classify found no %s-recoverable path",
				p.name, p.online, p.name)
		}
	}
	// The shares view must be a proper distribution over Total.
	var sum float64
	for _, s := range rec.BreakdownShares() {
		if s < 0 || s > 1 {
			t.Fatalf("online share out of range: %v", rec.BreakdownShares())
		}
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("online shares sum to %v", sum)
	}
	if res.CompletionRate == 0 {
		t.Fatal("nothing completed under a 10% cable outage")
	}
}
