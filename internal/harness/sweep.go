// Sweep bookkeeping (DESIGN.md §16): per-trial checkpoints let one killed
// simulation resume mid-run, but a sweep that dies between trials would
// still re-run everything it had already finished. The sweep book closes
// that gap — a small checksummed file in the checkpoint directory recording
// the summary line of every completed trial, rewritten atomically after
// each completion. A resumed sweep restores recorded trials from the book
// (byte-identical summary output) and only simulates the remainder.
package harness

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ucmp/internal/checkpoint"
	"ucmp/internal/metrics"
)

// trialKey identifies one trial inside the book: the trial name plus the
// full configKey, so a renamed or reconfigured trial never restores a stale
// line.
func trialKey(t Trial) string {
	return t.Name + "|" + configKey(t.Cfg, t.Cfg.Flows)
}

// sweepBook tracks completed trials of one sweep. A nil book (no checkpoint
// directory configured) is valid and inert.
type sweepBook struct {
	path   string
	resume bool

	mu   sync.Mutex
	done map[string]string // trialKey -> recorded summary line
}

// openSweepBook builds the book for a trial matrix. The book file is named
// by a digest of every trial key, so two different sweeps sharing one
// checkpoint directory keep separate books. With Resume set on the trials,
// any existing book is loaded; load failures (missing file, corruption,
// version drift) degrade to an empty book and a full re-run.
func openSweepBook(trials []Trial) *sweepBook {
	if len(trials) == 0 || trials[0].Cfg.CheckpointDir == "" {
		return nil
	}
	h := fnv.New64a()
	for _, t := range trials {
		io.WriteString(h, trialKey(t))
		io.WriteString(h, ";")
	}
	b := &sweepBook{
		path:   filepath.Join(trials[0].Cfg.CheckpointDir, fmt.Sprintf("sweep-%016x.ucmpswp", h.Sum64())),
		resume: trials[0].Cfg.Resume,
		done:   make(map[string]string),
	}
	if b.resume {
		b.load()
	}
	return b
}

func (b *sweepBook) load() {
	f, err := checkpoint.Load(b.path)
	if err != nil {
		return
	}
	dec, err := f.Section("sweep")
	if err != nil {
		return
	}
	n := dec.Len()
	loaded := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := dec.Str()
		loaded[k] = dec.Str()
	}
	if dec.Err() != nil {
		return
	}
	b.done = loaded
}

// restore returns the recorded Result for a completed trial, or nil if the
// trial must run. Only consulted when the sweep asked to resume.
func (b *sweepBook) restore(t Trial) *Result {
	if b == nil || !b.resume {
		return nil
	}
	b.mu.Lock()
	line, ok := b.done[trialKey(t)]
	b.mu.Unlock()
	if !ok {
		return nil
	}
	return &Result{
		Config:     t.Cfg,
		Collector:  &metrics.Collector{},
		SweepLine:  line,
		ResumeNote: "restored from sweep book",
	}
}

// record stores a completed trial's summary line and rewrites the book
// atomically. Write failures degrade to a stderr warning: losing the book
// costs a future resume some re-runs, never the current sweep.
func (b *sweepBook) record(t Trial, r *Result) {
	if b == nil {
		return
	}
	line := summaryLine(t, r)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.done[trialKey(t)] = line
	keys := make([]string, 0, len(b.done))
	for k := range b.done {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w := checkpoint.NewWriter()
	enc := w.Section("sweep")
	enc.Len(len(keys))
	for _, k := range keys {
		enc.Str(k)
		enc.Str(b.done[k])
	}
	if err := w.Save(b.path); err != nil {
		fmt.Fprintf(os.Stderr, "harness: sweep book not written: %v\n", err)
	}
}
