package harness

import (
	"strings"
	"testing"

	"ucmp/internal/core"
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
	"ucmp/internal/transport"
)

// quickBase returns a very small run for test speed.
func quickBase() SimConfig {
	cfg := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	cfg.Duration = 1 * sim.Millisecond
	cfg.Horizon = 6 * sim.Millisecond
	cfg.MaxFlowSize = 8 << 20
	return cfg
}

func TestRunBasic(t *testing.T) {
	res, err := Run(quickBase())
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched == 0 {
		t.Fatal("no flows generated")
	}
	if res.CompletionRate < 0.8 {
		t.Fatalf("completion rate %.2f too low (drops=%d)", res.CompletionRate, res.Counters.DroppedPackets)
	}
	if res.Efficiency <= 0 || res.Efficiency > 1 {
		t.Fatalf("efficiency %v out of range", res.Efficiency)
	}
}

func TestRunUnknownRouting(t *testing.T) {
	cfg := quickBase()
	cfg.Routing = "bogus"
	if _, err := Run(cfg); err == nil {
		t.Fatal("bogus routing accepted")
	}
	cfg = quickBase()
	cfg.Workload = "bogus"
	if _, err := Run(cfg); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

func TestTable1Report(t *testing.T) {
	r := Table1()
	s := r.String()
	for _, want := range []string{"140.0", "68.0", "60.8", "325.0", "8.2", "min-cost"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table 1 report missing %q:\n%s", want, s)
		}
	}
}

func TestTable3Report(t *testing.T) {
	r := Table3([]Table3Row{{1, 108, 6}, {1, 324, 6}})
	s := r.String()
	if !strings.Contains(s, "II") {
		t.Fatalf("expected case II rows:\n%s", s)
	}
	// (1us, 108, 6) -> S=5, Q=5 per the paper.
	if !strings.Contains(s, "5") {
		t.Fatalf("missing S/Q values:\n%s", s)
	}
}

func TestTable2Scaled(t *testing.T) {
	rep, rows := Table2([]Table2Row{{108, 6}})
	if len(rows) != 1 {
		t.Fatal("missing row")
	}
	u := rows[0]
	if u.QueuesPerPort != 18 {
		t.Fatalf("queues/port=%d, want 18", u.QueuesPerPort)
	}
	if u.Buckets < 5 || u.Buckets > 64 {
		t.Fatalf("buckets=%d out of DSCP-plausible range", u.Buckets)
	}
	if u.EntriesPerToR < 2000 || u.EntriesPerToR > 40000 {
		t.Fatalf("entries/ToR=%d implausible (paper: 9.5K)", u.EntriesPerToR)
	}
	if u.SRAMPct <= 0 || u.SRAMPct > 10 {
		t.Fatalf("SRAM%%=%v implausible", u.SRAMPct)
	}
	_ = rep.String()
}

func TestFig5aScaled(t *testing.T) {
	fab := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	ps := core.BuildPathSet(fab, 0.5)
	rep, st := Fig5a(ps)
	if st.MeanGroupSize < 1.5 {
		t.Fatalf("mean group size %.2f too small", st.MeanGroupSize)
	}
	if st.MultiPathShare < 0.5 {
		t.Fatalf("multi-path share %.2f too small", st.MultiPathShare)
	}
	if st.EdgeDisjointShare < 0.5 {
		t.Fatalf("edge-disjoint share %.2f too small", st.EdgeDisjointShare)
	}
	_ = rep.String()
}

func TestFig5bScaled(t *testing.T) {
	fab := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	ps := core.BuildPathSet(fab, 0.5)
	rep, dists := Fig5b(ps, 1)
	if len(dists) != 5 {
		t.Fatalf("want 5 schemes, got %d", len(dists))
	}
	byName := map[string]float64{}
	for _, d := range dists {
		byName[d.Name] = d.Mean
	}
	// Paper shape: UCMP has the lowest mean hop count; k=5 exceeds k=1;
	// Opera exceeds KSP at the same k.
	if byName["ucmp"] > byName["ksp-1"] {
		t.Errorf("UCMP mean hops %.2f above KSP-1 %.2f", byName["ucmp"], byName["ksp-1"])
	}
	if byName["ksp-5"] < byName["ksp-1"] {
		t.Errorf("KSP-5 hops %.2f below KSP-1 %.2f", byName["ksp-5"], byName["ksp-1"])
	}
	if byName["opera-1"] < byName["ksp-1"] {
		t.Errorf("Opera-1 hops %.2f below KSP-1 %.2f", byName["opera-1"], byName["ksp-1"])
	}
	_ = rep.String()
}

func TestFig12abcScaled(t *testing.T) {
	fab := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	ps := core.BuildPathSet(fab, 0.5)
	rep, out := Fig12abc(ps, 1)
	for label, rows := range out {
		for _, b := range rows {
			if b.Affected == 0 {
				t.Errorf("%s: no affected paths", label)
			}
			total := b.Share[0] + b.Share[1] + b.Share[2] + b.Share[3]
			if total < 0.999 || total > 1.001 {
				t.Errorf("%s: shares sum to %v", label, total)
			}
		}
	}
	_ = rep.String()
}

func TestFig14Probabilities(t *testing.T) {
	rep, out := Fig14()
	row := out[[2]int{108, 6}]
	if len(row) != 6 {
		t.Fatal("want 6 c values")
	}
	// Monotone decreasing, and below 1e-10 by c=5 (S=5 for (108,6)).
	for i := 1; i < len(row); i++ {
		if row[i] > row[i-1] {
			t.Fatalf("P not decreasing: %v", row)
		}
	}
	if row[4] >= core.DefaultUnvisitedThreshold {
		t.Fatalf("P(c=5)=%v not below threshold", row[4])
	}
	if row[3] < core.DefaultUnvisitedThreshold {
		t.Fatalf("P(c=4)=%v already below threshold; S would be 4", row[3])
	}
	_ = rep.String()
}

func TestFig6QuickPair(t *testing.T) {
	base := quickBase()
	schemes := []Scheme{
		{"ucmp+dctcp", UCMP, transport.DCTCP, false},
		{"vlb", VLB, transport.DCTCP, false},
	}
	rep, results, err := Fig6FCT(base, "websearch", schemes)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatal("missing results")
	}
	eff := Fig6Efficiency(results, "websearch")
	if !strings.Contains(eff.String(), "vlb") {
		t.Fatal("efficiency report missing scheme")
	}
	// Paper shape: UCMP beats VLB on bandwidth efficiency for web search.
	if results[0].Result.Efficiency <= results[1].Result.Efficiency {
		t.Errorf("UCMP efficiency %.3f not above VLB %.3f",
			results[0].Result.Efficiency, results[1].Result.Efficiency)
	}
	_ = rep.String()
}

func TestFig8Quick(t *testing.T) {
	rep, out, err := Fig8Bucketing(quickBase())
	if err != nil {
		t.Fatal(err)
	}
	if out[0] == nil || out[1] == nil {
		t.Fatal("missing variants")
	}
	_ = rep.String()
}

func TestFig10Quick(t *testing.T) {
	rep, out, err := Fig10Alpha(quickBase(), []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatal("missing alphas")
	}
	_ = rep.String()
}

func TestFig12dQuick(t *testing.T) {
	rep, out, err := Fig12d(quickBase(), []float64{0.0, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Connectivity preserved under 5% link failures (paper claim).
	if out[1].CompletionRate < 0.7 {
		t.Fatalf("completion under 5%% link failures: %.2f", out[1].CompletionRate)
	}
	_ = rep.String()
}

func TestFig9ReconfDegradation(t *testing.T) {
	rep, out, err := Fig9Reconf(quickBase(), []sim.Time{10 * sim.Nanosecond, 10 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatal("missing delays")
	}
	// A 20% duty-cycle loss must not IMPROVE p50 FCT dramatically.
	p50a := out[0].Collector.Percentile(0.5)
	p50b := out[1].Collector.Percentile(0.5)
	if p50b*3 < p50a {
		t.Errorf("10us reconf p50 %v implausibly better than 10ns %v", p50b, p50a)
	}
	_ = rep.String()
}

func TestFig11SliceSweep(t *testing.T) {
	rep, out, err := Fig11Slice(quickBase(), []sim.Time{50 * sim.Microsecond, 300 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	// Longer slices raise short-flow FCT (more circuit waiting, Fig 11b).
	shortA := coarseBins(out[0].Collector)[0]
	shortB := coarseBins(out[1].Collector)[0]
	if shortB < shortA {
		t.Errorf("300us slice short-flow FCT %v below 50us %v", shortB, shortA)
	}
	_ = rep.String()
}

func TestFig7UtilizationOrdering(t *testing.T) {
	schemes := []Scheme{
		{Name: "ucmp", Routing: UCMP, Transport: transport.DCTCP},
		{Name: "vlb", Routing: VLB, Transport: transport.DCTCP},
	}
	rep, results, err := Fig7LinkUtil(quickBase(), "websearch", schemes)
	if err != nil {
		t.Fatal(err)
	}
	// VLB's 2-hop routing must load the core at least as much as UCMP
	// relative to delivered traffic: core/host ratio higher for VLB.
	ratio := func(r *Result) float64 {
		host := r.Collector.MeanUtil(1, func(s netsim.Sample) float64 { return s.TorToHostUtil })
		core := r.Collector.MeanUtil(1, func(s netsim.Sample) float64 { return s.TorToTorUtil })
		if host == 0 {
			return 0
		}
		return core / host
	}
	if ratio(results[1].Result) < ratio(results[0].Result) {
		t.Errorf("VLB core/host ratio %.2f below UCMP %.2f",
			ratio(results[1].Result), ratio(results[0].Result))
	}
	_ = rep.String()
}

func TestFig15Runner(t *testing.T) {
	schemes := []Scheme{{Name: "ucmp", Routing: UCMP, Transport: transport.DCTCP}}
	rep, results, err := Fig15LoadBalance(quickBase(), schemes)
	if err != nil {
		t.Fatal(err)
	}
	j := results[0].Result.JainCumulative
	if j <= 0 || j > 1.0001 {
		t.Fatalf("Jain %v out of range", j)
	}
	_ = rep.String()
}

func TestRunWithHotspot(t *testing.T) {
	cfg := quickBase()
	cfg.Hotspot = 0.6
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched == 0 {
		t.Fatal("no flows")
	}
}

func TestRunBadPinPolicy(t *testing.T) {
	cfg := quickBase()
	cfg.PinPolicy = "nonsense"
	if _, err := Run(cfg); err == nil {
		t.Fatal("bad pin policy accepted")
	}
}

func TestScheduleFor(t *testing.T) {
	if ScheduleFor(Opera1) != "opera" || ScheduleFor(Opera5) != "opera" {
		t.Fatal("opera schedule")
	}
	if ScheduleFor(UCMP) != "round-robin" || ScheduleFor(VLB) != "round-robin" {
		t.Fatal("default schedule")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{Title: "x"}
	r.Addf("a %d", 1)
	s := r.String()
	if !strings.Contains(s, "== x ==") || !strings.Contains(s, "a 1") {
		t.Fatalf("rendering: %q", s)
	}
}
