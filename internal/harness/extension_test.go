package harness

import (
	"testing"
)

func TestExtensionCongestion(t *testing.T) {
	base := quickBase()
	rep, out, err := ExtensionCongestion(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatal("missing variants")
	}
	plain, aware := out[0], out[1]
	// The congestion-aware variant must not be worse on p99 by a large
	// factor; under hotspots it is expected to help.
	if aware.Collector.Percentile(0.99) > plain.Collector.Percentile(0.99)*3 {
		t.Errorf("congestion-aware p99 %v vastly worse than plain %v",
			aware.Collector.Percentile(0.99), plain.Collector.Percentile(0.99))
	}
	if aware.CompletionRate < plain.CompletionRate-0.1 {
		t.Errorf("congestion-aware completion %v regressed vs %v",
			aware.CompletionRate, plain.CompletionRate)
	}
	_ = rep.String()
}

func TestExtensionMPTCP(t *testing.T) {
	rep, out, err := ExtensionMPTCP(quickBase())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatal("missing variants")
	}
	for _, res := range out {
		if res.CompletionRate < 0.6 {
			t.Errorf("completion %.2f too low", res.CompletionRate)
		}
	}
	_ = rep.String()
}

func TestExtensionAlphaController(t *testing.T) {
	base := quickBase()
	base.Horizon = 8_000_000 // 8ms
	rep, res, err := ExtensionAlphaController(base, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched == 0 {
		t.Fatal("no flows")
	}
	if len(res.Collector.Samples) < 4 {
		t.Fatalf("controller ticked only %d times", len(res.Collector.Samples))
	}
	_ = rep.String()
}
