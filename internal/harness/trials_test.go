package harness

import (
	"fmt"
	"strings"
	"testing"

	"ucmp/internal/sim"
	"ucmp/internal/transport"
)

func sweepForTest() (SimConfig, []Trial) {
	base := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	base.Duration = sim.Millisecond
	base.Seed = 7
	return base, SweepLoad(base, []RoutingKind{UCMP, VLB}, []float64{0.1, 0.3})
}

// The determinism contract of the trial runner: the aggregated output of a
// parallel execution is byte-identical to the serial one.
func TestTrialReplicationDeterminism(t *testing.T) {
	_, trials := sweepForTest()
	runWith := func(par bool, workers int) string {
		oldP, oldW := Parallel, Workers
		Parallel, Workers = par, workers
		defer func() { Parallel, Workers = oldP, oldW }()
		res, err := RunTrials(trials)
		if err != nil {
			t.Fatal(err)
		}
		return SummarizeTrials(trials, res)
	}
	serial := runWith(false, 0)
	parallel := runWith(true, 3)
	if serial != parallel {
		t.Fatalf("parallel trial output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "ucmp/load=0.10") || !strings.Contains(serial, "vlb/load=0.30") {
		t.Fatalf("summary missing expected trials:\n%s", serial)
	}
	for _, line := range strings.Split(strings.TrimSpace(serial), "\n") {
		if strings.Contains(line, "completion=0.0000") {
			t.Fatalf("trial completed no flows: %s", line)
		}
	}
}

// Derived seeds depend only on the trial's index, never on execution order,
// and never collide within a sweep.
func TestSweepLoadSeeds(t *testing.T) {
	base, trials := sweepForTest()
	seen := map[int64]string{}
	for i, tr := range trials {
		want := base.Seed + int64(i)*seedStride
		if tr.Cfg.Seed != want {
			t.Fatalf("trial %d (%s) seed %d, want %d", i, tr.Name, tr.Cfg.Seed, want)
		}
		if prev, dup := seen[tr.Cfg.Seed]; dup {
			t.Fatalf("seed %d shared by %s and %s", tr.Cfg.Seed, prev, tr.Name)
		}
		seen[tr.Cfg.Seed] = tr.Name
	}
	if len(trials) != 4 {
		t.Fatalf("expected 2 schemes x 2 loads = 4 trials, got %d", len(trials))
	}
}

// The pool honors the Workers bound and still covers every index.
func TestWorkerCount(t *testing.T) {
	oldW := Workers
	defer func() { Workers = oldW }()
	Workers = 2
	if got := workerCount(8); got != 2 {
		t.Fatalf("workerCount(8) with Workers=2: %d", got)
	}
	if got := workerCount(1); got != 1 {
		t.Fatalf("workerCount(1): %d", got)
	}
	Workers = 0
	if got := workerCount(1); got != 1 {
		t.Fatalf("workerCount(1) unbounded: %d", got)
	}
}

// A panicking trial degrades to a PANIC line carrying its derived seed and
// stack; every other trial still completes (the injected bogus transport
// panics inside the simulation build).
func TestRunTrialsPanicRecovery(t *testing.T) {
	_, trials := sweepForTest()
	trials[1].Cfg.Transport = "bogus"
	res, err := RunTrials(trials)
	if err != nil {
		t.Fatal(err)
	}
	if res[1].TrialPanic == "" {
		t.Fatal("injected panic was not recorded")
	}
	if want := fmt.Sprintf("seed %d", trials[1].Cfg.Seed); !strings.Contains(res[1].TrialPanic, want) {
		t.Fatalf("panic record missing derived seed %q:\n%s", want, res[1].TrialPanic)
	}
	if !strings.Contains(res[1].TrialPanic, "goroutine") {
		t.Fatalf("panic record missing stack:\n%s", res[1].TrialPanic)
	}
	for i, r := range res {
		if i == 1 {
			continue
		}
		if r == nil || r.TrialPanic != "" || len(r.Collector.Flows) == 0 {
			t.Fatalf("trial %d did not survive the neighboring panic: %+v", i, r)
		}
	}
	sum := SummarizeTrials(trials, res)
	if !strings.Contains(sum, "PANIC") {
		t.Fatalf("summary missing PANIC line:\n%s", sum)
	}
	if got := strings.Count(sum, "\n"); got != len(trials) {
		t.Fatalf("summary has %d lines, want %d:\n%s", got, len(trials), sum)
	}
}

// A killed sweep restarts mid-sweep: trials recorded in the sweep book are
// restored without re-running, the rest simulate, and the aggregated output
// is byte-identical to an uninterrupted sweep.
func TestSweepResume(t *testing.T) {
	_, plain := sweepForTest()
	plainRes, err := RunTrials(plain)
	if err != nil {
		t.Fatal(err)
	}
	want := SummarizeTrials(plain, plainRes)

	dir := t.TempDir()
	_, trials := sweepForTest()
	for i := range trials {
		trials[i].Cfg.CheckpointDir = dir
		trials[i].Cfg.Resume = true
	}
	// Simulate a sweep killed after two trials: complete them by hand into
	// the book the resumed sweep will open.
	book := openSweepBook(trials)
	for i := 0; i < 2; i++ {
		r, err := runTrial(trials[i])
		if err != nil {
			t.Fatal(err)
		}
		book.record(trials[i], r)
	}

	res, err := RunTrials(trials)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		restored := r.SweepLine != ""
		if i < 2 && !restored {
			t.Fatalf("trial %d re-ran instead of restoring from the sweep book", i)
		}
		if i >= 2 && restored {
			t.Fatalf("trial %d restored from a book that never recorded it", i)
		}
	}
	if got := SummarizeTrials(trials, res); got != want {
		t.Fatalf("resumed sweep diverged:\n--- uninterrupted ---\n%s--- resumed ---\n%s", want, got)
	}

	// A second resume restores everything.
	res2, err := RunTrials(trials)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res2 {
		if r.SweepLine == "" {
			t.Fatalf("trial %d re-ran on a fully-recorded sweep", i)
		}
	}
	if got := SummarizeTrials(trials, res2); got != want {
		t.Fatal("fully-restored sweep summary diverged")
	}
}
