package harness

import (
	"strings"
	"testing"

	"ucmp/internal/sim"
	"ucmp/internal/transport"
)

func sweepForTest() (SimConfig, []Trial) {
	base := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	base.Duration = sim.Millisecond
	base.Seed = 7
	return base, SweepLoad(base, []RoutingKind{UCMP, VLB}, []float64{0.1, 0.3})
}

// The determinism contract of the trial runner: the aggregated output of a
// parallel execution is byte-identical to the serial one.
func TestTrialReplicationDeterminism(t *testing.T) {
	_, trials := sweepForTest()
	runWith := func(par bool, workers int) string {
		oldP, oldW := Parallel, Workers
		Parallel, Workers = par, workers
		defer func() { Parallel, Workers = oldP, oldW }()
		res, err := RunTrials(trials)
		if err != nil {
			t.Fatal(err)
		}
		return SummarizeTrials(trials, res)
	}
	serial := runWith(false, 0)
	parallel := runWith(true, 3)
	if serial != parallel {
		t.Fatalf("parallel trial output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "ucmp/load=0.10") || !strings.Contains(serial, "vlb/load=0.30") {
		t.Fatalf("summary missing expected trials:\n%s", serial)
	}
	for _, line := range strings.Split(strings.TrimSpace(serial), "\n") {
		if strings.Contains(line, "completion=0.0000") {
			t.Fatalf("trial completed no flows: %s", line)
		}
	}
}

// Derived seeds depend only on the trial's index, never on execution order,
// and never collide within a sweep.
func TestSweepLoadSeeds(t *testing.T) {
	base, trials := sweepForTest()
	seen := map[int64]string{}
	for i, tr := range trials {
		want := base.Seed + int64(i)*seedStride
		if tr.Cfg.Seed != want {
			t.Fatalf("trial %d (%s) seed %d, want %d", i, tr.Name, tr.Cfg.Seed, want)
		}
		if prev, dup := seen[tr.Cfg.Seed]; dup {
			t.Fatalf("seed %d shared by %s and %s", tr.Cfg.Seed, prev, tr.Name)
		}
		seen[tr.Cfg.Seed] = tr.Name
	}
	if len(trials) != 4 {
		t.Fatalf("expected 2 schemes x 2 loads = 4 trials, got %d", len(trials))
	}
}

// The pool honors the Workers bound and still covers every index.
func TestWorkerCount(t *testing.T) {
	oldW := Workers
	defer func() { Workers = oldW }()
	Workers = 2
	if got := workerCount(8); got != 2 {
		t.Fatalf("workerCount(8) with Workers=2: %d", got)
	}
	if got := workerCount(1); got != 1 {
		t.Fatalf("workerCount(1): %d", got)
	}
	Workers = 0
	if got := workerCount(1); got != 1 {
		t.Fatalf("workerCount(1) unbounded: %d", got)
	}
}
