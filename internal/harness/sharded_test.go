package harness

import (
	"fmt"
	"sort"
	"testing"

	"ucmp/internal/failure"
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
	"ucmp/internal/transport"
)

// fingerprintCore is fingerprint minus the event count: a sharded run
// executes one slice-boundary event per domain per slice where the serial
// run executes one total, so event counts legitimately differ while every
// simulation observable — counters, fairness, efficiency, and the per-flow
// byte/FCT trace — must stay byte-identical.
func fingerprintCore(r *Result) string {
	out := fmt.Sprintf("counters=%+v\njain=%.12f\nefficiency=%.12f\nlaunched=%d\n",
		r.Counters, r.JainCumulative, r.Efficiency, r.Launched)
	fl := append(r.Flows[:0:0], r.Flows...)
	sort.Slice(fl, func(i, j int) bool { return fl[i].ID < fl[j].ID })
	for _, f := range fl {
		out += fmt.Sprintf("flow %d: sent=%d delivered=%d finished=%v at=%d\n",
			f.ID, f.BytesSent, f.BytesDelivered, f.Finished, int64(f.FinishedAt))
	}
	return out
}

// shardedCase is one differential scenario. Explicit flows are built fresh
// per run through the factory — Flow objects are mutated by a run and must
// never be shared between the serial and sharded executions.
type shardedCase struct {
	name  string
	cfg   SimConfig
	flows func() []*netsim.Flow
}

func shardedCases() []shardedCase {
	// The two committed benchmark scenarios, end to end.
	satCfg := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	satCfg.Workload = ""
	satCfg.Horizon = 200 * sim.Millisecond
	sat := shardedCase{
		name: "saturation", cfg: satCfg,
		flows: func() []*netsim.Flow { return []*netsim.Flow{netsim.NewFlow(1, 0, 3, 2<<20, 0)} },
	}

	incastTopo := topo.Scaled()
	incastTopo.NumToRs = 8
	incastCfg := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	incastCfg.Workload = ""
	incastCfg.Topo = incastTopo
	incastCfg.Horizon = 400 * sim.Millisecond
	incast := shardedCase{
		name: "incast8tor", cfg: incastCfg,
		flows: func() []*netsim.Flow {
			var flows []*netsim.Flow
			for h := incastTopo.HostsPerToR; h < incastTopo.NumHosts(); h++ {
				flows = append(flows, netsim.NewFlow(int64(h), h, 0, 128<<10, 0))
			}
			return flows
		},
	}

	// Randomized Poisson workloads over both shardable transports; the
	// workload generator rebuilds identical flow sets from the seed, so no
	// factory is needed.
	dctcp := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	dctcp.Duration = sim.Millisecond
	dctcp.Seed = 21
	ndp := ScaledConfig(UCMP, transport.NDP, "websearch")
	ndp.Duration = sim.Millisecond
	ndp.Seed = 22
	ksp := ScaledConfig(KSP5, transport.DCTCP, "datamining")
	ksp.Duration = sim.Millisecond
	ksp.Seed = 23

	// Runtime fault injection mid-run: cable and switch failures strike and
	// partially repair, exercising epoch transitions, parked-packet expiry,
	// and online §5.3 recovery under the sharded engine. The recovery
	// counters and reroute-wait histogram ride in fingerprintCore's %+v of
	// Counters, so any serial/sharded divergence in fault handling fails the
	// differential, not just the FCT trace.
	faulty := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	faulty.Duration = sim.Millisecond
	faulty.Seed = 24
	faulty.Failures = failure.NewTimeline().
		LinkDown(200*sim.Microsecond, 3, 1).
		LinkDown(200*sim.Microsecond, 5, 0).
		SwitchDown(300*sim.Microsecond, 2).
		SwitchUp(700*sim.Microsecond, 2).
		LinkUp(900*sim.Microsecond, 3, 1)

	return []shardedCase{
		sat,
		incast,
		{name: "ucmp-dctcp-websearch", cfg: dctcp},
		{name: "ucmp-ndp-websearch", cfg: ndp},
		{name: "ksp5-dctcp-datamining", cfg: ksp},
		{name: "ucmp-dctcp-failures", cfg: faulty},
	}
}

// TestDifferentialSerialSharded requires the conservative-PDES engine to
// reproduce the serial engine's results byte for byte, across worker counts
// and both scheduler queue implementations.
func TestDifferentialSerialSharded(t *testing.T) {
	for _, tc := range shardedCases() {
		t.Run(tc.name, func(t *testing.T) {
			run := func(shards int, queue sim.QueueKind) string {
				cfg := tc.cfg
				cfg.Shards = shards
				cfg.Queue = queue
				if tc.flows != nil {
					cfg.Flows = tc.flows()
				}
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if shards > 1 && !res.Sharded {
					t.Fatalf("Shards=%d did not run sharded", shards)
				}
				return fingerprintCore(res)
			}
			serial := run(0, sim.QueueWheel)
			for _, v := range []struct {
				shards int
				queue  sim.QueueKind
			}{
				{2, sim.QueueWheel},
				{tc.cfg.Topo.NumToRs, sim.QueueWheel},
				{3, sim.QueueHeap},
			} {
				got := run(v.shards, v.queue)
				if got != serial {
					t.Fatalf("sharded(shards=%d,queue=%v) diverges from serial:\n--- serial ---\n%s\n--- sharded ---\n%s",
						v.shards, v.queue, serial, got)
				}
			}
		})
	}
}

// TestShardableGate pins the configurations the sharded engine must refuse;
// Run falls back to serial for them and reports it.
func TestShardableGate(t *testing.T) {
	bad := []SimConfig{
		ScaledConfig(VLB, transport.Rotor, "websearch"),
		ScaledConfig(Opera1, transport.NDP, "websearch"),
		ScaledConfig(Opera5, transport.NDP, "websearch"),
		func() SimConfig { c := ScaledConfig(UCMP, transport.DCTCP, "websearch"); c.Relax = true; return c }(),
		func() SimConfig {
			c := ScaledConfig(UCMP, transport.DCTCP, "websearch")
			c.CongestionAware = true
			return c
		}(),
	}
	for _, cfg := range bad {
		if err := Shardable(cfg); err == nil {
			t.Fatalf("Shardable accepted %v/%v relax=%v ca=%v", cfg.Routing, cfg.Transport, cfg.Relax, cfg.CongestionAware)
		}
		cfg.Duration = sim.Millisecond
		cfg.Shards = 4
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sharded {
			t.Fatalf("unshardable config %v/%v ran sharded", cfg.Routing, cfg.Transport)
		}
	}
	if err := Shardable(ScaledConfig(UCMP, transport.DCTCP, "websearch")); err != nil {
		t.Fatalf("Shardable rejected the baseline config: %v", err)
	}
}
