package harness

import (
	"fmt"
	"sort"
	"testing"

	"ucmp/internal/failure"
	"ucmp/internal/netsim"
	"ucmp/internal/routing"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
	"ucmp/internal/transport"
)

// fingerprintCore is fingerprint minus the event count: a sharded run
// executes one slice-boundary event per domain per slice where the serial
// run executes one total, so event counts legitimately differ while every
// simulation observable — counters, fairness, efficiency, and the per-flow
// byte/FCT trace — must stay byte-identical.
func fingerprintCore(r *Result) string {
	out := fmt.Sprintf("counters=%+v\njain=%.12f\nefficiency=%.12f\nlaunched=%d\n",
		r.Counters, r.JainCumulative, r.Efficiency, r.Launched)
	fl := append(r.Flows[:0:0], r.Flows...)
	sort.Slice(fl, func(i, j int) bool { return fl[i].ID < fl[j].ID })
	for _, f := range fl {
		out += fmt.Sprintf("flow %d: sent=%d delivered=%d finished=%v at=%d\n",
			f.ID, f.BytesSent, f.BytesDelivered, f.Finished, int64(f.FinishedAt))
	}
	return out
}

// shardedCase is one differential scenario. Explicit flows are built fresh
// per run through the factory — Flow objects are mutated by a run and must
// never be shared between the serial and sharded executions.
type shardedCase struct {
	name  string
	cfg   SimConfig
	flows func() []*netsim.Flow
}

func shardedCases() []shardedCase {
	// The two committed benchmark scenarios, end to end.
	satCfg := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	satCfg.Workload = ""
	satCfg.Horizon = 200 * sim.Millisecond
	sat := shardedCase{
		name: "saturation", cfg: satCfg,
		flows: func() []*netsim.Flow { return []*netsim.Flow{netsim.NewFlow(1, 0, 3, 2<<20, 0)} },
	}

	incastTopo := topo.Scaled()
	incastTopo.NumToRs = 8
	incastCfg := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	incastCfg.Workload = ""
	incastCfg.Topo = incastTopo
	incastCfg.Horizon = 400 * sim.Millisecond
	incast := shardedCase{
		name: "incast8tor", cfg: incastCfg,
		flows: func() []*netsim.Flow {
			var flows []*netsim.Flow
			for h := incastTopo.HostsPerToR; h < incastTopo.NumHosts(); h++ {
				flows = append(flows, netsim.NewFlow(int64(h), h, 0, 128<<10, 0))
			}
			return flows
		},
	}

	// Randomized Poisson workloads over both shardable transports; the
	// workload generator rebuilds identical flow sets from the seed, so no
	// factory is needed.
	dctcp := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	dctcp.Duration = sim.Millisecond
	dctcp.Seed = 21
	ndp := ScaledConfig(UCMP, transport.NDP, "websearch")
	ndp.Duration = sim.Millisecond
	ndp.Seed = 22
	ksp := ScaledConfig(KSP5, transport.DCTCP, "datamining")
	ksp.Duration = sim.Millisecond
	ksp.Seed = 23

	// Runtime fault injection mid-run: cable and switch failures strike and
	// partially repair, exercising epoch transitions, parked-packet expiry,
	// and online §5.3 recovery under the sharded engine. The recovery
	// counters and reroute-wait histogram ride in fingerprintCore's %+v of
	// Counters, so any serial/sharded divergence in fault handling fails the
	// differential, not just the FCT trace.
	faulty := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	faulty.Duration = sim.Millisecond
	faulty.Seed = 24
	faulty.Failures = failure.NewTimeline().
		LinkDown(200*sim.Microsecond, 3, 1).
		LinkDown(200*sim.Microsecond, 5, 0).
		SwitchDown(300*sim.Microsecond, 2).
		SwitchUp(700*sim.Microsecond, 2).
		LinkUp(900*sim.Microsecond, 3, 1)

	// The rotor-class baselines, shardable since the slice-boundary backlog
	// exchange (§12): every VLB data packet is RotorLB traffic, so this
	// exercises VOQ drains, indirection capped by the published board, and
	// the receiver-side downlink staging under the sharded engine.
	vlb := ScaledConfig(VLB, transport.Rotor, "websearch")
	vlb.Duration = sim.Millisecond
	vlb.Seed = 25

	// Opera couples both planes: explicit flows straddle the 15 MB cutoff so
	// the run carries source-routed NDP traffic and rotor-class bulk at once.
	operaCfg := ScaledConfig(Opera5, transport.NDP, "websearch")
	operaCfg.Workload = ""
	operaCfg.Horizon = 4 * sim.Millisecond
	opera := shardedCase{
		name: "opera5-mixed", cfg: operaCfg,
		flows: func() []*netsim.Flow {
			flows := []*netsim.Flow{
				netsim.NewFlow(1, 0, 9, routing.FlowCutoff15MB, 0), // rotor-class bulk
			}
			for h := 1; h < 8; h++ {
				src := h * operaCfg.Topo.HostsPerToR
				flows = append(flows, netsim.NewFlow(int64(h+1), src, (src+17)%operaCfg.Topo.NumHosts(), 256<<10, 0))
			}
			return flows
		},
	}

	return []shardedCase{
		sat,
		incast,
		{name: "ucmp-dctcp-websearch", cfg: dctcp},
		{name: "ucmp-ndp-websearch", cfg: ndp},
		{name: "ksp5-dctcp-datamining", cfg: ksp},
		{name: "ucmp-dctcp-failures", cfg: faulty},
		{name: "vlb-rotor-websearch", cfg: vlb},
		opera,
	}
}

// TestDifferentialSerialSharded requires the conservative-PDES engine to
// reproduce the serial engine's results byte for byte, across worker counts
// and both scheduler queue implementations.
func TestDifferentialSerialSharded(t *testing.T) {
	for _, tc := range shardedCases() {
		t.Run(tc.name, func(t *testing.T) {
			run := func(shards int, queue sim.QueueKind) string {
				cfg := tc.cfg
				cfg.Shards = shards
				cfg.Queue = queue
				if tc.flows != nil {
					cfg.Flows = tc.flows()
				}
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if shards > 1 && !res.Sharded {
					t.Fatalf("Shards=%d did not run sharded", shards)
				}
				return fingerprintCore(res)
			}
			serial := run(0, sim.QueueWheel)
			for _, v := range []struct {
				shards int
				queue  sim.QueueKind
			}{
				{2, sim.QueueWheel},
				{tc.cfg.Topo.NumToRs, sim.QueueWheel},
				{5, sim.QueueWheel}, // non-dividing grouping: blocks of 4,3,3,3,3 domains
				{3, sim.QueueHeap},
			} {
				got := run(v.shards, v.queue)
				if got != serial {
					t.Fatalf("sharded(shards=%d,queue=%v) diverges from serial:\n--- serial ---\n%s\n--- sharded ---\n%s",
						v.shards, v.queue, serial, got)
				}
			}
		})
	}
}

// TestDifferentialLazyTables runs UCMP with lazy compiled-table routing on:
// the table plans must be bit-identical to group-lookup plans, so the
// fingerprint must match the plain serial run, and the sharded engine (whose
// workers race table materialization through the TableSet mutex) must match
// both. The 64-ToR case runs on a rotation-symmetric fabric, so it also
// covers tables compiled from canonical groups; the workload case covers the
// brute-force build.
func TestDifferentialLazyTables(t *testing.T) {
	ring := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	ring.Workload = ""
	ring.Topo.NumToRs = 64
	ring.Topo.Uplinks = 4
	ring.Horizon = 6 * sim.Millisecond
	ringFlows := func() []*netsim.Flow {
		var fl []*netsim.Flow
		for tor := 0; tor < ring.Topo.NumToRs; tor++ {
			src := tor * ring.Topo.HostsPerToR
			dst := ((tor + 1) % ring.Topo.NumToRs) * ring.Topo.HostsPerToR
			fl = append(fl, netsim.NewFlow(int64(tor+1), src, dst, 64<<10, 0))
		}
		return fl
	}

	poisson := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	poisson.Duration = sim.Millisecond
	poisson.Seed = 31

	cases := []shardedCase{
		{name: "sym64-ring", cfg: ring, flows: ringFlows},
		{name: "poisson-16", cfg: poisson},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(useTables bool, shards int) string {
				cfg := tc.cfg
				cfg.UseTables = useTables
				cfg.Shards = shards
				if tc.flows != nil {
					cfg.Flows = tc.flows()
				}
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if shards > 1 && !res.Sharded {
					t.Fatalf("Shards=%d did not run sharded", shards)
				}
				return fingerprintCore(res)
			}
			plain := run(false, 0)
			if got := run(true, 0); got != plain {
				t.Fatalf("serial lazy-table run diverges from group lookups:\n--- groups ---\n%s\n--- tables ---\n%s", plain, got)
			}
			if got := run(true, 5); got != plain {
				t.Fatalf("sharded lazy-table run diverges from serial:\n--- serial ---\n%s\n--- sharded ---\n%s", plain, got)
			}
		})
	}
}

// TestShardableGate pins both sides of the gate: the rotor-class baselines
// (VLB, Opera, RotorLB transport) and congestion-aware UCMP (on the
// slice-boundary backlog board, §14) pass it whenever the slice duration
// covers the lookahead window, while latency relaxation and a
// pathologically short slice are still refused — Run falls back to serial
// for those and records why in Result.ShardNote.
func TestShardableGate(t *testing.T) {
	congestion := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	congestion.CongestionAware = true
	good := []SimConfig{
		ScaledConfig(UCMP, transport.DCTCP, "websearch"),
		ScaledConfig(VLB, transport.Rotor, "websearch"),
		ScaledConfig(Opera1, transport.NDP, "websearch"),
		ScaledConfig(Opera5, transport.NDP, "websearch"),
		congestion,
	}
	for _, cfg := range good {
		if err := Shardable(cfg); err != nil {
			t.Fatalf("Shardable rejected %v/%v: %v", cfg.Routing, cfg.Transport, err)
		}
		cfg.Duration = 200 * sim.Microsecond
		cfg.Shards = 4
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Sharded {
			t.Fatalf("shardable config %v/%v fell back to serial", cfg.Routing, cfg.Transport)
		}
	}

	// A config whose slice is shorter than the lookahead window would let a
	// slice-boundary exchange race; the gate must refuse it for both
	// boundary-exchange users (rotor traffic and the congestion board).
	shortSlice := ScaledConfig(VLB, transport.Rotor, "websearch")
	shortSlice.Topo.SliceDuration = shortSlice.Topo.PropDelay / 2
	shortCongestion := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	shortCongestion.CongestionAware = true
	shortCongestion.Topo.SliceDuration = shortCongestion.Topo.PropDelay / 2

	bad := []SimConfig{
		shortSlice,
		shortCongestion,
		func() SimConfig { c := ScaledConfig(UCMP, transport.DCTCP, "websearch"); c.Relax = true; return c }(),
	}
	for _, cfg := range bad {
		if err := Shardable(cfg); err == nil {
			t.Fatalf("Shardable accepted %v/%v relax=%v ca=%v", cfg.Routing, cfg.Transport, cfg.Relax, cfg.CongestionAware)
		}
		cfg.Duration = 100 * sim.Microsecond
		cfg.Shards = 4
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sharded {
			t.Fatalf("unshardable config %v/%v ran sharded", cfg.Routing, cfg.Transport)
		}
		if res.ShardNote == "" {
			t.Fatalf("serial fallback of %v/%v carries no ShardNote", cfg.Routing, cfg.Transport)
		}
	}
}

// TestShardsValidation pins the Shards-field contract: negative counts are
// an error, counts above the domain count clamp with a recorded note, and
// the effective shard count always lands in Result.Shards.
func TestShardsValidation(t *testing.T) {
	base := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	base.Duration = 100 * sim.Microsecond

	neg := base
	neg.Shards = -1
	if _, err := Run(neg); err == nil {
		t.Fatal("Run accepted Shards=-1")
	}

	big := base
	big.Shards = 10 * base.Topo.NumToRs
	res, err := Run(big)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sharded || res.Shards != base.Topo.NumToRs {
		t.Fatalf("Shards=%d: sharded=%v shards=%d, want clamp to %d",
			big.Shards, res.Sharded, res.Shards, base.Topo.NumToRs)
	}
	if res.ShardNote == "" {
		t.Fatal("clamped run carries no ShardNote")
	}

	serial := base
	res, err = Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sharded || res.Shards != 1 || res.ShardNote != "" {
		t.Fatalf("serial run: sharded=%v shards=%d note=%q, want 1 shard, no note",
			res.Sharded, res.Shards, res.ShardNote)
	}

	four := base
	four.Shards = 4
	res, err = Run(four)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sharded || res.Shards != 4 || res.ShardNote != "" {
		t.Fatalf("Shards=4 run: sharded=%v shards=%d note=%q", res.Sharded, res.Shards, res.ShardNote)
	}
}

// TestShardedNonDividing64 is the domain-grouping differential at scale: a
// 64-ToR ring permutation run serial and on shard counts that do not divide
// the domain count, so the contiguous blocks are uneven (e.g. 64 on 7
// shards: blocks of 10 and 9 domains) and work stealing crosses block
// boundaries.
func TestShardedNonDividing64(t *testing.T) {
	cfg := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	cfg.Workload = ""
	cfg.Topo.NumToRs = 64
	cfg.Topo.Uplinks = 4
	cfg.Horizon = 30 * sim.Millisecond
	mkFlows := func() []*netsim.Flow {
		var fl []*netsim.Flow
		for tor := 0; tor < cfg.Topo.NumToRs; tor++ {
			src := tor * cfg.Topo.HostsPerToR
			dst := ((tor + 1) % cfg.Topo.NumToRs) * cfg.Topo.HostsPerToR
			fl = append(fl, netsim.NewFlow(int64(tor+1), src, dst, 256<<10, 0))
		}
		return fl
	}
	run := func(shards int) string {
		c := cfg
		c.Shards = shards
		c.Flows = mkFlows()
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if shards > 1 && (!res.Sharded || res.Shards != shards) {
			t.Fatalf("Shards=%d ran with sharded=%v shards=%d", shards, res.Sharded, res.Shards)
		}
		return fingerprintCore(res)
	}
	serial := run(0)
	for _, shards := range []int{3, 5, 7} {
		if got := run(shards); got != serial {
			t.Fatalf("64 ToRs on %d shards diverges from serial:\n--- serial ---\n%s\n--- sharded ---\n%s",
				shards, serial, got)
		}
	}
}
