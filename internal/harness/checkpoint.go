// Checkpoint orchestration (DESIGN.md §16): the harness decides when to
// snapshot (segmented serial runs, coordinator globals on the sharded
// engine), what identifies a checkpoint (configKey), and how a resume
// rebuilds the model — attach every flow cold, replay the recorded state
// and events into it, re-arm the coordinator-side chains the snapshot
// cannot capture — falling back to a clean cold run on any validation
// failure.
package harness

import (
	"fmt"
	"hash/fnv"
	"os"
	"strings"

	"ucmp/internal/checkpoint"
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
)

// configKey renders every SimConfig field that shapes simulation state into
// a string: it names the checkpoint file and is stored inside it, so a
// resume under a different configuration is rejected instead of silently
// diverging. Checkpointing knobs themselves are excluded — snapshots are
// bit-identical regardless of when (or whether) they are taken, so changing
// the cadence between crash and resume is legal.
func configKey(cfg SimConfig, flows []*netsim.Flow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "topo=%+v sched=%q routing=%q transport=%q alpha=%v relax=%v ",
		cfg.Topo, cfg.ScheduleKind, cfg.Routing, cfg.Transport, cfg.Alpha, cfg.Relax)
	fmt.Fprintf(&b, "wl=%q load=%v maxsize=%d dur=%d horizon=%d sample=%d seed=%d ",
		cfg.Workload, cfg.Load, cfg.MaxFlowSize, cfg.Duration, cfg.Horizon, cfg.SampleEvery, cfg.Seed)
	fmt.Fprintf(&b, "afs=%v pin=%q maxpar=%d tables=%v tcap=%d cong=%v cthr=%d hot=%v ",
		cfg.AccurateFlowSize, cfg.PinPolicy, cfg.MaxParallel, cfg.UseTables, cfg.TableCacheCap,
		cfg.CongestionAware, cfg.CongestionThreshold, cfg.Hotspot)
	fmt.Fprintf(&b, "failfrac=%v queue=%v shards=%d ", cfg.LinkFailFrac, cfg.Queue, cfg.Shards)
	if !cfg.Failures.Empty() {
		fmt.Fprintf(&b, "failures=%+v ", cfg.Failures.Events())
	}
	// The workload is regenerated deterministically from the fields above;
	// explicitly provided flows are digested so a different hand-built list
	// cannot restore against this state.
	if cfg.Flows != nil {
		h := fnv.New64a()
		for _, f := range flows {
			fmt.Fprintf(h, "%d/%d/%d/%d/%d/%v/%v;", f.ID, f.SrcHost, f.DstHost, f.Size, f.Arrival, f.Priority, f.Child)
		}
		fmt.Fprintf(&b, "flows=%d:%016x ", len(flows), h.Sum64())
	}
	return b.String()
}

// writeCheckpoint snapshots the full simulation into the configuration's
// checkpoint file, atomically replacing the previous snapshot. Failures
// (full disk, read-only directory, an unserializable model) degrade to a
// stderr warning — losing a checkpoint must never kill the run it protects.
func (st *simState) writeCheckpoint(key string) {
	w := checkpoint.NewWriter()
	w.Section("config").Str(key)
	if err := st.net.Snapshot(w); err != nil {
		fmt.Fprintf(os.Stderr, "harness: checkpoint skipped: %v\n", err)
		return
	}
	if err := st.stack.Snapshot(w); err != nil {
		fmt.Fprintf(os.Stderr, "harness: checkpoint skipped: %v\n", err)
		return
	}
	st.col.Snapshot(w)
	path := checkpoint.FileName(st.cfg.CheckpointDir, key)
	if err := w.Save(path); err != nil {
		fmt.Fprintf(os.Stderr, "harness: checkpoint not written: %v\n", err)
	}
}

// armCheckpoints schedules the sharded checkpoint chain: one coordinator
// global per CheckpointEvery multiple. Globals run between windows with all
// workers parked, so the snapshot — after draining the mailboxes — sees a
// consistent fabric without perturbing the run.
func (st *simState) armCheckpoints(key string) {
	every := st.cfg.CheckpointEvery
	var arm func(t sim.Time)
	arm = func(t sim.Time) {
		st.sh.Global(t, func() {
			st.writeCheckpoint(key)
			if next := t + every; next < st.horizon {
				arm(next)
			}
		})
	}
	if first := (st.sh.GlobalNow()/every + 1) * every; first < st.horizon {
		arm(first)
	}
}

// restoreCheckpoint loads the configuration's checkpoint into a simState
// built with forRestore=true and returns the restored instant. On error the
// network is partially mutated and undefined: the caller must discard this
// simState and build a fresh one for a cold run.
func (st *simState) restoreCheckpoint() (sim.Time, error) {
	key := configKey(st.cfg, st.flows)
	f, err := checkpoint.Load(checkpoint.FileName(st.cfg.CheckpointDir, key))
	if err != nil {
		return 0, err
	}
	cd, err := f.Section("config")
	if err != nil {
		return 0, err
	}
	if k := cd.Str(); k != key || cd.Err() != nil {
		return 0, fmt.Errorf("checkpoint: config key mismatch (file %.60q..., want %.60q...)", k, key)
	}
	// Event replay dispatch: netsim hands foreign kinds here; the sampling
	// tick belongs to the collector, everything else to the transport.
	var sampler netsim.RestoreExt
	if st.cfg.SampleEvery > 0 && !st.sharded {
		sampler = st.col.SamplingRestorer(st.net, st.cfg.SampleEvery, st.horizon)
	}
	ext := func(eng *sim.Engine, at sim.Time, tag sim.EventTag, timer, armed bool, deadline sim.Time) error {
		if tag.Kind == checkpoint.KindSample {
			if sampler == nil {
				return fmt.Errorf("checkpoint: sampling tick recorded but sampling is off")
			}
			return sampler(eng, at, tag, timer, armed, deadline)
		}
		return st.stack.RestoreEvent(eng, at, tag, timer, armed, deadline)
	}
	if err := st.net.RestoreFrom(f, ext); err != nil {
		return 0, err
	}
	if err := st.stack.RestoreState(f); err != nil {
		return 0, err
	}
	if err := st.col.RestoreState(f); err != nil {
		return 0, err
	}
	if err := st.stack.ReparkRotorWaiters(); err != nil {
		return 0, err
	}
	if st.sharded {
		// Coordinator globals are not part of any domain's event queue, so
		// the sampling chain is re-derived rather than replayed; the further
		// checkpoint chain is re-armed by run().
		if st.cfg.SampleEvery > 0 {
			st.col.ResumeSamplingSharded(st.net, st.sh, st.cfg.SampleEvery, st.horizon)
		}
		return st.sh.GlobalNow(), nil
	}
	return st.eng.Now(), nil
}
