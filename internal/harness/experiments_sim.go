package harness

import (
	"ucmp/internal/metrics"
	"ucmp/internal/netsim"
	"ucmp/internal/plot"
	"ucmp/internal/sim"
	"ucmp/internal/transport"
)

// Scheme pairs a routing kind with its paper transport (§7.1).
type Scheme struct {
	Name      string
	Routing   RoutingKind
	Transport transport.Kind
	Relax     bool
}

// Fig6Schemes are the seven curves of Fig 6.
func Fig6Schemes(dataMining bool) []Scheme {
	return []Scheme{
		{"ucmp+dctcp", UCMP, transport.DCTCP, dataMining},
		{"ucmp+ndp", UCMP, transport.NDP, dataMining},
		{"vlb", VLB, transport.DCTCP, false}, // rotor-class carries all data
		{"ksp-1+dctcp", KSP1, transport.DCTCP, false},
		{"ksp-5+dctcp", KSP5, transport.DCTCP, false},
		{"opera-1+ndp", Opera1, transport.NDP, false},
		{"opera-5+ndp", Opera5, transport.NDP, false},
	}
}

// SchemeResult couples a scheme with its run result.
type SchemeResult struct {
	Scheme Scheme
	Result *Result
}

// RunSchemes executes one run per scheme over a base config. Schemes are
// independent simulations; with Parallel set they run concurrently, each
// filling its preassigned result slot.
func RunSchemes(base SimConfig, schemes []Scheme) ([]SchemeResult, error) {
	out := make([]SchemeResult, len(schemes))
	err := forEach(len(schemes), func(i int) error {
		sc := schemes[i]
		cfg := base
		cfg.Routing = sc.Routing
		cfg.Transport = sc.Transport
		cfg.Relax = sc.Relax
		cfg.ScheduleKind = ScheduleFor(sc.Routing)
		res, err := Run(cfg)
		if err != nil {
			return err
		}
		out[i] = SchemeResult{Scheme: sc, Result: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig6FCT runs the FCT comparison (Fig 6a web search / 6b data mining).
func Fig6FCT(base SimConfig, wl string, schemes []Scheme) (*Report, []SchemeResult, error) {
	base.Workload = wl
	results, err := RunSchemes(base, schemes)
	if err != nil {
		return nil, nil, err
	}
	r := &Report{Title: "Fig 6 FCT vs flow size, " + wl + " (avg FCT per size bin)"}
	r.Addf("%-14s %-10s %-10s %-10s %-10s %-9s %-7s", "scheme", "<=10KB", "<=100KB", "<=1MB", ">1MB", "complete", "reroute")
	for _, sr := range results {
		bins := coarseBins(sr.Result.Collector)
		r.Addf("%-14s %-10s %-10s %-10s %-10s %-9.2f %-7.4f",
			sr.Scheme.Name, fmtT(bins[0]), fmtT(bins[1]), fmtT(bins[2]), fmtT(bins[3]),
			sr.Result.CompletionRate, sr.Result.ReroutedFrac)
	}
	return r, results, nil
}

// coarseBins averages FCT within 4 coarse size classes.
func coarseBins(c *metrics.Collector) [4]sim.Time {
	edges := []int64{0, 10 << 10, 100 << 10, 1 << 20, 1 << 62}
	var sums [4]sim.Time
	var counts [4]int
	for _, fr := range c.Flows {
		for i := 0; i < 4; i++ {
			if fr.Size > edges[i] && fr.Size <= edges[i+1] {
				sums[i] += fr.FCT
				counts[i]++
				break
			}
		}
	}
	var out [4]sim.Time
	for i := range out {
		if counts[i] > 0 {
			out[i] = sums[i] / sim.Time(counts[i])
		}
	}
	return out
}

func fmtT(t sim.Time) string {
	if t == 0 {
		return "-"
	}
	return t.String()
}

// Fig6Efficiency reports bandwidth efficiency per scheme (Fig 6c/6d).
func Fig6Efficiency(results []SchemeResult, wl string) *Report {
	r := &Report{Title: "Fig 6 bandwidth efficiency, " + wl}
	r.Addf("%-14s %-12s", "scheme", "efficiency")
	for _, sr := range results {
		r.Addf("%-14s %-12.3f", sr.Scheme.Name, sr.Result.Efficiency)
	}
	r.Addf("(1.0 = every byte crosses one ToR-ToR hop; VLB sits near 0.5)")
	labels := make([]string, len(results))
	values := make([]float64, len(results))
	for i, sr := range results {
		labels[i], values[i] = sr.Scheme.Name, sr.Result.Efficiency
	}
	for _, line := range plot.BarChart(labels, values, 28) {
		r.Addf("%s", line)
	}
	return r
}

// Fig7LinkUtil reports mean link utilizations over time per scheme
// (Fig 7 web search; Fig 17 data mining).
func Fig7LinkUtil(base SimConfig, wl string, schemes []Scheme) (*Report, []SchemeResult, error) {
	base.Workload = wl
	if base.SampleEvery == 0 {
		base.SampleEvery = 500 * sim.Microsecond
	}
	results, err := RunSchemes(base, schemes)
	if err != nil {
		return nil, nil, err
	}
	r := &Report{Title: "Fig 7/17 mean link utilization, " + wl}
	r.Addf("%-14s %-14s %-14s %s", "scheme", "ToR-to-host", "ToR-to-ToR", "core util over time")
	for _, sr := range results {
		col := sr.Result.Collector
		series := make([]float64, 0, len(col.Samples))
		for _, s := range col.Samples {
			series = append(series, s.TorToTorUtil)
		}
		r.Addf("%-14s %-14.3f %-14.3f %s",
			sr.Scheme.Name,
			col.MeanUtil(1, func(s netsim.Sample) float64 { return s.TorToHostUtil }),
			col.MeanUtil(1, func(s netsim.Sample) float64 { return s.TorToTorUtil }),
			plot.Sparkline(series))
	}
	return r, results, nil
}

// Fig8Bucketing compares flow bucketing against accurate flow size stamping.
func Fig8Bucketing(base SimConfig) (*Report, [2]*Result, error) {
	base.Workload = "websearch"
	base.Routing = UCMP
	base.Transport = transport.DCTCP
	variants := []bool{true, false}
	var out [2]*Result
	if err := forEach(len(variants), func(i int) error {
		cfg := base
		cfg.AccurateFlowSize = variants[i]
		res, err := Run(cfg)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	}); err != nil {
		return nil, out, err
	}
	r := &Report{Title: "Fig 8: accurate flow size vs flow bucketing (UCMP+DCTCP, web search)"}
	r.Addf("%-18s %-10s %-10s %-10s %-10s %-8s", "variant", "<=10KB", "<=100KB", "<=1MB", ">1MB", "p99")
	for i, res := range out {
		name := "flow bucketing"
		if variants[i] {
			name = "accurate size"
		}
		bins := coarseBins(res.Collector)
		r.Addf("%-18s %-10s %-10s %-10s %-10s %-8s",
			name, fmtT(bins[0]), fmtT(bins[1]), fmtT(bins[2]), fmtT(bins[3]),
			res.Collector.Percentile(0.99))
	}
	return r, out, nil
}

// Fig9Reconf sweeps the reconfiguration delay.
func Fig9Reconf(base SimConfig, delays []sim.Time) (*Report, []*Result, error) {
	base.Workload = "websearch"
	base.Routing = UCMP
	base.Transport = transport.DCTCP
	out := make([]*Result, len(delays))
	if err := forEach(len(delays), func(i int) error {
		cfg := base
		cfg.Topo.ReconfDelay = delays[i]
		res, err := Run(cfg)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	}); err != nil {
		return nil, nil, err
	}
	r := &Report{Title: "Fig 9: FCT under reconfiguration delays (UCMP+DCTCP)"}
	r.Addf("%-10s %-10s %-10s %-10s %-10s %-10s", "reconf", "duty", "<=10KB", "<=100KB", "<=1MB", ">1MB")
	for _, res := range out {
		bins := coarseBins(res.Collector)
		r.Addf("%-10s %-10.3f %-10s %-10s %-10s %-10s",
			res.Config.Topo.ReconfDelay, res.Config.Topo.DutyCycle(),
			fmtT(bins[0]), fmtT(bins[1]), fmtT(bins[2]), fmtT(bins[3]))
	}
	return r, out, nil
}

// Fig10Alpha sweeps the weight factor α (Fig 10a/10b).
func Fig10Alpha(base SimConfig, alphas []float64) (*Report, []*Result, error) {
	base.Workload = "websearch"
	base.Routing = UCMP
	base.Transport = transport.DCTCP
	if base.SampleEvery == 0 {
		base.SampleEvery = 500 * sim.Microsecond
	}
	out := make([]*Result, len(alphas))
	if err := forEach(len(alphas), func(i int) error {
		cfg := base
		cfg.Alpha = alphas[i]
		res, err := Run(cfg)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	}); err != nil {
		return nil, nil, err
	}
	r := &Report{Title: "Fig 10: weight factor alpha (UCMP+DCTCP, web search)"}
	r.Addf("%-7s %-14s %-12s %-10s %-10s %-10s", "alpha", "ToR-ToR util", "efficiency", "<=10KB", "<=100KB", ">1MB")
	for _, res := range out {
		bins := coarseBins(res.Collector)
		util := res.Collector.MeanUtil(1, func(s netsim.Sample) float64 { return s.TorToTorUtil })
		r.Addf("%-7.2f %-14.3f %-12.3f %-10s %-10s %-10s",
			res.Config.Alpha, util, res.Efficiency, fmtT(bins[0]), fmtT(bins[1]), fmtT(bins[3]))
	}
	r.Addf("(larger alpha -> shorter paths -> lower core utilization, Fig 10a)")
	return r, out, nil
}

// Fig11Slice sweeps the time slice duration (Fig 11a/11b).
func Fig11Slice(base SimConfig, durs []sim.Time) (*Report, []*Result, error) {
	base.Workload = "websearch"
	base.Routing = UCMP
	base.Transport = transport.DCTCP
	out := make([]*Result, len(durs))
	if err := forEach(len(durs), func(i int) error {
		cfg := base
		cfg.Topo.SliceDuration = durs[i]
		res, err := Run(cfg)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	}); err != nil {
		return nil, nil, err
	}
	r := &Report{Title: "Fig 11: time slice duration (UCMP+DCTCP, web search)"}
	r.Addf("%-10s %-12s %-10s %-10s %-10s %-8s", "slice", "efficiency", "<=10KB", "<=100KB", ">1MB", "reroute")
	for _, res := range out {
		bins := coarseBins(res.Collector)
		r.Addf("%-10s %-12.3f %-10s %-10s %-10s %-8.4f",
			res.Config.Topo.SliceDuration, res.Efficiency,
			fmtT(bins[0]), fmtT(bins[1]), fmtT(bins[3]), res.ReroutedFrac)
	}
	return r, out, nil
}

// Fig12d runs UCMP under physical link failures.
func Fig12d(base SimConfig, fracs []float64) (*Report, []*Result, error) {
	base.Workload = "websearch"
	base.Routing = UCMP
	base.Transport = transport.DCTCP
	out := make([]*Result, len(fracs))
	if err := forEach(len(fracs), func(i int) error {
		cfg := base
		cfg.LinkFailFrac = fracs[i]
		res, err := Run(cfg)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	}); err != nil {
		return nil, nil, err
	}
	r := &Report{Title: "Fig 12d: FCT under faulty links (UCMP+DCTCP, web search)"}
	r.Addf("%-8s %-10s %-10s %-10s %-10s %-9s", "faulty", "<=10KB", "<=100KB", "<=1MB", ">1MB", "complete")
	for _, res := range out {
		bins := coarseBins(res.Collector)
		r.Addf("%-8.2f %-10s %-10s %-10s %-10s %-9.2f",
			res.Config.LinkFailFrac, fmtT(bins[0]), fmtT(bins[1]), fmtT(bins[2]), fmtT(bins[3]),
			res.CompletionRate)
	}
	return r, out, nil
}

// Fig15LoadBalance reports the Jain load-balance metric per scheme.
func Fig15LoadBalance(base SimConfig, schemes []Scheme) (*Report, []SchemeResult, error) {
	base.Workload = "websearch"
	if base.SampleEvery == 0 {
		base.SampleEvery = 500 * sim.Microsecond
	}
	results, err := RunSchemes(base, schemes)
	if err != nil {
		return nil, nil, err
	}
	r := &Report{Title: "Fig 15: Jain load-balance metric (web search)"}
	r.Addf("%-14s %-12s %-14s", "scheme", "whole-run", "per-window")
	for _, sr := range results {
		r.Addf("%-14s %-12.3f %-14.3f", sr.Scheme.Name,
			sr.Result.JainCumulative,
			sr.Result.Collector.MeanUtil(1, func(s netsim.Sample) float64 { return s.JainLoadIndex }))
	}
	r.Addf("(1.0 = perfectly balanced; paper: VLB ~1.0, UCMP ~0.9)")
	return r, results, nil
}
