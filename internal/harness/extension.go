package harness

import (
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
	"ucmp/internal/transport"
)

// ExtensionCongestion evaluates the §10 congestion-aware extension under a
// hotspot-skewed web search workload: plain UCMP versus UCMP that steers
// around congested calendar queues within one bucket of uniform-cost
// slack.
func ExtensionCongestion(base SimConfig) (*Report, []*Result, error) {
	base.Workload = "websearch"
	base.Routing = UCMP
	base.Transport = transport.DCTCP
	if base.Hotspot == 0 {
		base.Hotspot = 0.5
	}
	r := &Report{Title: "Extension (§10): congestion-aware path assignment under hotspots"}
	r.Addf("%-22s %-10s %-10s %-10s %-9s %-8s", "variant", "<=10KB", "<=100KB", "p99", "complete", "reroute")
	var out []*Result
	for _, v := range []struct {
		name  string
		aware bool
	}{{"uniform cost only", false}, {"congestion-aware", true}} {
		cfg := base
		cfg.CongestionAware = v.aware
		res, err := Run(cfg)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, res)
		bins := coarseBins(res.Collector)
		r.Addf("%-22s %-10s %-10s %-10s %-9.2f %-8.4f",
			v.name, fmtT(bins[0]), fmtT(bins[1]), res.Collector.Percentile(0.99),
			res.CompletionRate, res.ReroutedFrac)
	}
	r.Addf("(steering within one bucket of slack relieves hot calendar queues)")
	return r, out, nil
}

// ExtensionAlphaController runs UCMP with a live proportional controller
// driving α toward a target ToR-to-ToR utilization and reports the
// trajectory.
func ExtensionAlphaController(base SimConfig, targetUtil float64) (*Report, *Result, error) {
	base.Workload = "websearch"
	base.Routing = UCMP
	base.Transport = transport.DCTCP
	if base.SampleEvery == 0 {
		base.SampleEvery = 500 * sim.Microsecond
	}
	// The controller needs live access: replicate harness.Run wiring with
	// a control loop layered on top.
	res, trace, err := runWithAlphaController(base, targetUtil)
	if err != nil {
		return nil, nil, err
	}
	r := &Report{Title: "Extension (§5.2): live alpha controller"}
	r.Addf("target ToR-to-ToR utilization: %.2f", targetUtil)
	r.Addf("%-12s %-8s %-12s", "time", "alpha", "core util")
	for _, tr := range trace {
		r.Addf("%-12s %-8.3f %-12.3f", tr.at, tr.alpha, tr.util)
	}
	final := res.Collector.MeanUtil(len(res.Collector.Samples)/2, func(s netsim.Sample) float64 { return s.TorToTorUtil })
	r.Addf("second-half mean core utilization: %.3f", final)
	return r, res, nil
}

// ExtensionMPTCP compares single-path DCTCP with the MPTCP-style striped
// transport over UCMP's parallel paths (§10: "an adoption of MPTCP-like
// transport could benefit performance").
func ExtensionMPTCP(base SimConfig) (*Report, []*Result, error) {
	base.Workload = "websearch"
	base.Routing = UCMP
	r := &Report{Title: "Extension (§10): MPTCP-style subflows over parallel UCMP paths"}
	r.Addf("%-14s %-10s %-10s %-10s %-12s", "transport", "<=100KB", "<=1MB", ">1MB", "efficiency")
	var out []*Result
	for _, k := range []transport.Kind{transport.DCTCP, transport.MPTCP} {
		cfg := base
		cfg.Transport = k
		res, err := Run(cfg)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, res)
		bins := coarseBins(res.Collector)
		r.Addf("%-14s %-10s %-10s %-10s %-12.3f",
			string(k), fmtT(bins[1]), fmtT(bins[2]), fmtT(bins[3]), res.Efficiency)
	}
	return r, out, nil
}

type alphaTracePoint struct {
	at    sim.Time
	alpha float64
	util  float64
}

// runWithAlphaController is harness.Run with a proportional α controller
// ticking during the simulation. Because bucket thresholds are α-free
// (Eqn. 4), retuning only updates the host-side aging map — exactly the
// paper's "broadcast new values of α to the hosts".
func runWithAlphaController(cfg SimConfig, target float64) (*Result, []alphaTracePoint, error) {
	cfg.Routing = UCMP
	base := cfg
	base.SampleEvery = 0 // sampling is driven by the controller below

	fabCfg := base.Topo
	fab, err := newFabricFor(base, fabCfg)
	if err != nil {
		return nil, nil, err
	}
	eng := sim.NewEngineQueue(base.Queue)
	ps := buildPathSetFor(fab, base)
	router := newUCMPFor(ps, base)
	qs := transport.QueueSpec(base.Transport)
	net := netsim.New(eng, fab, router, qs, qs, netsim.DefaultRotor())
	net.Stamper = router.StampBucket
	net.Start()

	flows := generateFlows(base)
	col := newCollector(net, len(flows))
	stack := transport.NewStack(net, base.Transport)
	for _, f := range flows {
		stack.Launch(f)
	}

	horizon := base.Horizon
	if horizon == 0 {
		horizon = 4 * base.Duration
	}

	var trace []alphaTracePoint
	var prev *netsim.Sample
	alpha := base.Alpha
	const gain = 3.0
	tick := 500 * sim.Microsecond
	var control func()
	control = func() {
		s := net.TakeSample(prev)
		col.Samples = append(col.Samples, s)
		prev = &col.Samples[len(col.Samples)-1]
		// Proportional step: utilization above target -> raise α ->
		// shorter paths -> less core load.
		alpha += gain * (s.TorToTorUtil - target)
		alpha = clampF(alpha, 0.05, 3.0)
		router.Ager.SetAlpha(alpha)
		ps.SetAlpha(alpha)
		trace = append(trace, alphaTracePoint{at: eng.Now(), alpha: alpha, util: s.TorToTorUtil})
		if eng.Now()+tick <= horizon {
			eng.After(tick, control)
		}
	}
	eng.After(tick, control)
	eng.Run(horizon)
	recordSchedStats(eng.SchedStats())

	return &Result{
		Config:         base,
		Collector:      col,
		Counters:       net.Counters,
		Efficiency:     net.BandwidthEfficiency(),
		ReroutedFrac:   net.ReroutedFraction(),
		CompletionRate: col.CompletionRate(),
		Launched:       len(flows),
		JainCumulative: net.JainCumulative(),
		Flows:          net.Flows(),
	}, trace, nil
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
