package harness

import (
	"fmt"
	"strings"
)

// Report is a printable experiment result: the harness regenerates each
// paper table/figure as rows of text plus the raw series for programmatic
// checks.
type Report struct {
	Title string
	Lines []string
}

// Addf appends a formatted row.
func (r *Report) Addf(format string, args ...interface{}) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString("== " + r.Title + " ==\n")
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
