package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel enables concurrent execution of independent runs inside the
// experiment drivers (one scheme or sweep point per goroutine, bounded by
// GOMAXPROCS). Each run builds its own fabric, path set, engine and
// collector, so runs share no mutable state; results land in preassigned
// slots and reports are rendered only after every run finishes, making the
// output byte-identical to the serial order. Off by default — cmd/ucmpbench
// flips it with -parallel.
var Parallel = false

// Workers bounds the worker pool used when Parallel is set. Zero (the
// default) means GOMAXPROCS. cmd/ucmpbench exposes it as -workers.
var Workers = 0

// workerCount resolves the pool size for n independent units of work.
func workerCount(n int) int {
	w := Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// forEach invokes fn(0..n-1), concurrently when Parallel is set. Every index
// runs even if an earlier one fails (errors land in per-index slots); the
// error reported is the one from the lowest index, matching what a serial
// fail-fast loop would surface.
func forEach(n int, fn func(i int) error) error {
	if !Parallel || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	workers := workerCount(n)
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// eventsProcessed accumulates simulation events across every Run since the
// last TakeEvents, for throughput reporting (events/sec per exhibit).
var eventsProcessed atomic.Uint64

// TakeEvents returns the number of simulation events processed since the
// previous call and resets the counter.
func TakeEvents() uint64 { return eventsProcessed.Swap(0) }
