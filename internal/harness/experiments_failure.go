package harness

import (
	"math/rand"

	"ucmp/internal/failure"
	"ucmp/internal/sim"
	"ucmp/internal/transport"
)

// BuildFailureTimeline samples a failure scenario on the config's fabric —
// the given fractions of ToRs, uplink cables, and circuit switches, drawn
// from cfg.Seed — and scripts it to go down at `down` and, when `repair` is
// non-negative, come back at `repair`. It is the declarative front end the
// CLIs use for SimConfig.Failures.
func BuildFailureTimeline(cfg SimConfig, torFrac, linkFrac, switchFrac float64, down, repair sim.Time) (*failure.Timeline, error) {
	fab, err := newFabricFor(cfg, cfg.Topo)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sc := failure.NewScenario(fab).
		FailToRs(torFrac, rng).
		FailLinks(linkFrac, rng).
		FailSwitches(switchFrac, rng)
	return failure.FromScenario(sc, down, repair), nil
}

// FailureSweep is the runtime companion of Fig 12: for each link-failure
// fraction it injects the sampled cables as runtime faults a quarter into
// the traffic window (no repair), runs the packet simulation with online
// §5.3 recovery, and reports the per-class recovery breakdown next to the
// offline failure.Classify shares for the same scenario, the
// time-to-reroute tail, and the FCT degradation.
func FailureSweep(base SimConfig, fracs []float64) (*Report, []*Result, error) {
	base.Workload = "websearch"
	base.Routing = UCMP
	base.Transport = transport.DCTCP
	failAt := base.Duration / 4
	out := make([]*Result, len(fracs))
	off := make([]failure.Breakdown, len(fracs))
	if err := forEach(len(fracs), func(i int) error {
		cfg := base
		if fracs[i] > 0 {
			fab, err := newFabricFor(cfg, cfg.Topo)
			if err != nil {
				return err
			}
			sc := newLinkFailures(fab, fracs[i], cfg.Seed)
			cfg.Failures = failure.FromScenario(sc, failAt, -1)
			off[i] = failure.Classify(buildPathSetFor(fab, cfg), sc)
		}
		res, err := Run(cfg)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	}); err != nil {
		return nil, nil, err
	}

	r := &Report{Title: "Failure sweep: runtime link failures injected at duration/4 (UCMP+DCTCP, web search)"}
	r.Addf("%-8s %-52s %-26s %-10s", "faulty", "online recovery (data-packet plans)", "offline Classify shares", "p99 wait")
	for i, res := range out {
		rec := res.Recovery
		r.Addf("%-8.2f same=%-6d short=%-5d long=%-5d backup=%-5d failed=%-4d sh/same/lo/un=%.2f/%.2f/%.2f/%.2f   %-10s",
			fracs[i], rec.SameLength, rec.Shorter, rec.Longer, rec.Backup, rec.Failed,
			off[i].Share[failure.Shorter], off[i].Share[failure.SameLength],
			off[i].Share[failure.Longer], off[i].Share[failure.Unrecoverable],
			fmtT(rec.WaitPercentile(0.99)))
	}
	r.Addf("")
	r.Addf("%-8s %-10s %-10s %-10s %-10s %-9s %-8s", "faulty", "<=10KB", "<=100KB", "<=1MB", ">1MB", "complete", "drops")
	for i, res := range out {
		bins := coarseBins(res.Collector)
		r.Addf("%-8.2f %-10s %-10s %-10s %-10s %-9.2f %-8d",
			fracs[i], fmtT(bins[0]), fmtT(bins[1]), fmtT(bins[2]), fmtT(bins[3]),
			res.CompletionRate, res.Counters.DroppedPackets)
	}
	return r, out, nil
}
