// Package harness wires fabric + schedule + router + transport + workload
// into runnable experiments, one per table and figure of the paper's
// evaluation (§7, §8, appendices). cmd/ucmpbench and the repository's
// bench_test.go are thin wrappers over this package.
package harness

import (
	"fmt"

	"ucmp/internal/core"
	"ucmp/internal/failure"
	"ucmp/internal/metrics"
	"ucmp/internal/netsim"
	"ucmp/internal/routing"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
	"ucmp/internal/transport"
	"ucmp/internal/workload"
)

// RoutingKind names a routing scheme under test.
type RoutingKind string

const (
	UCMP   RoutingKind = "ucmp"
	VLB    RoutingKind = "vlb"
	KSP1   RoutingKind = "ksp1"
	KSP5   RoutingKind = "ksp5"
	Opera1 RoutingKind = "opera1"
	Opera5 RoutingKind = "opera5"
)

// ScheduleFor returns the schedule kind a routing scheme requires (§7.1:
// Opera uses its native staggered schedule; the rest use the fully
// reconfigurable one).
func ScheduleFor(r RoutingKind) string {
	if r == Opera1 || r == Opera5 {
		return "opera"
	}
	return "round-robin"
}

// SimConfig describes one packet-level simulation run.
type SimConfig struct {
	Topo         topo.Config
	ScheduleKind string // empty: derived from Routing
	Routing      RoutingKind
	Transport    transport.Kind
	Alpha        float64
	Relax        bool // UCMP latency relaxation (§4.3)

	// Workload selects the Poisson trace ("websearch"/"datamining");
	// ignored when Flows is set explicitly.
	Workload    string
	Load        float64
	MaxFlowSize int64 // clip sampled sizes (scaled runs); 0 = no clip
	Duration    sim.Time
	Flows       []*netsim.Flow

	Horizon     sim.Time // 0: Duration * 4
	SampleEvery sim.Time // 0: no sampling
	Seed        int64

	// AccurateFlowSize stamps buckets from the true flow size instead of
	// flow aging (the Fig 8 comparison).
	AccurateFlowSize bool

	// PinPolicy ablates the uniform-cost policy: "min-latency" pins every
	// UCMP decision to the globally minimum-latency path (bucket 0),
	// "fewest-hops" to the fewest-hop path. Empty = normal uniform cost.
	PinPolicy string

	// MaxParallel caps the tied parallel paths kept per group entry; 0
	// keeps the default (4). 1 ablates ECMP-style tie spreading.
	MaxParallel int

	// FabricCacheDir, when set, persists compiled UCMP fabrics — the
	// symmetric path set and ToR 0's compiled table — as mmap-able files in
	// that directory (DESIGN.md §15) and serves subsequent runs of the same
	// fabric + parameters from them instead of rebuilding. Loaded fabrics
	// are additionally cached in-process, so repeated runs inside one
	// process (trials, sweeps) share a single warm path set. Plans are
	// byte-identical warm vs cold; a stale, foreign, or corrupted file is
	// rebuilt and overwritten. Ignored for non-symmetric schedules and
	// non-UCMP routing.
	FabricCacheDir string

	// UseTables routes UCMP traffic through lazily compiled per-ToR
	// source-routing tables (§6.2) instead of direct group lookups. Plans
	// are bit-identical; the knob exercises the switch-SRAM artifact end to
	// end and bounds memory via the table cache. Ignored for non-UCMP
	// routing.
	UseTables bool
	// TableCacheCap bounds how many per-ToR tables the UseTables cache
	// keeps materialized at once (FIFO eviction). 0 keeps the default
	// (routing.DefaultTableCap); negative values are rejected. Ignored
	// unless UseTables is set.
	TableCacheCap int

	// CongestionAware enables the §10 extension: online assignment steers
	// around congested calendar queues within one bucket of slack, reading
	// the slice-boundary backlog board (DESIGN.md §14).
	CongestionAware bool
	// CongestionThreshold overrides the backlog (data packets parked in the
	// target calendar queue, as of the last slice boundary) at which
	// steering engages. 0 keeps the default of 32; negative values are
	// rejected. Ignored unless CongestionAware is set.
	CongestionThreshold int
	// Hotspot skews that probability mass of flows onto a few hot hosts.
	Hotspot float64

	// LinkFailFrac fails that fraction of ToR-uplink cables physically and
	// in the UCMP health checks from t=0 for the whole run (Fig 12d). It
	// compiles into the same failure timeline as Failures.
	LinkFailFrac float64

	// Failures scripts runtime faults: ToRs, cables, and circuit switches
	// going down (and optionally back up) at fixed simulation times. The
	// script compiles to an immutable epoch schedule consulted by the
	// fabric and by UCMP's §5.3 online recovery; it composes with
	// LinkFailFrac and is fully shardable (DESIGN.md §11). The timeline is
	// not mutated and may be shared between configs.
	Failures *failure.Timeline

	// Queue selects the event-scheduler implementation (zero value: the
	// timing wheel). The heap option exists for differential testing.
	Queue sim.QueueKind

	// Shards > 1 opts into the conservative-PDES engine: one lookahead
	// domain per ToR, advanced by that many parallel workers. Negative
	// values are rejected; values above the ToR count are clamped to it
	// (domains cannot outnumber ToRs) with the clamp recorded in
	// Result.ShardNote. Configurations Shardable rejects fall back to the
	// serial engine with the rejection recorded in Result.ShardNote;
	// Result.Sharded and Result.Shards report which engine ran and how
	// wide. 0 or 1 selects the serial engine.
	Shards int

	// CheckpointDir, together with CheckpointEvery > 0, writes a full
	// simulation snapshot (DESIGN.md §16) at every multiple of
	// CheckpointEvery, one file per distinct configuration, overwritten in
	// place with the atomic temp+rename discipline. Checkpoint instants do
	// not perturb the run: a checkpointing run is bit-identical to a plain
	// one. A failed write degrades to a stderr warning; the run continues.
	CheckpointDir   string
	CheckpointEvery sim.Time

	// Resume, with CheckpointDir set, restores the configuration's
	// checkpoint before running and continues from its instant — the
	// combined run is bit-identical to an uninterrupted one. A missing,
	// corrupted, version-mismatched, or foreign-config checkpoint falls
	// back to a clean cold run, recorded in Result.ResumeNote.
	Resume bool
}

// Shardable reports whether a configuration can run on the sharded engine,
// or an error naming the first obstacle. UCMP latency relaxation consults
// fabric-wide backlog synchronously — a zero-lookahead cross-domain read the
// bulk-synchronous windows cannot order deterministically. Traffic that
// exchanges state at slice boundaries instead — rotor-class traffic (VLB
// routing, Opera's rotor fallback, the rotor transport) via the backlog
// exchange of DESIGN.md §12, and congestion-aware UCMP via the boundary
// backlog board of DESIGN.md §14 — shards, but requires slices at least one
// lookahead window long so no boundary write shares an engine window with a
// read. That holds for every realistic fabric (microsecond slices vs
// sub-microsecond lookahead) but is checked here for pathological
// configurations.
func Shardable(cfg SimConfig) error {
	if cfg.Relax {
		return fmt.Errorf("harness: UCMP latency relaxation is not shardable")
	}
	boundaryClass := cfg.Routing == VLB || cfg.Routing == Opera1 || cfg.Routing == Opera5 ||
		cfg.Transport == transport.Rotor ||
		(cfg.CongestionAware && cfg.Routing == UCMP)
	if boundaryClass && cfg.Topo.LinkBps > 0 {
		la := cfg.Topo.PropDelay + cfg.Topo.UplinkSerialization(netsim.HeaderBytes)
		if cfg.Topo.SliceDuration < la {
			return fmt.Errorf("harness: slice duration %v below the %v lookahead; the slice-boundary exchange cannot shard",
				cfg.Topo.SliceDuration, la)
		}
	}
	return nil
}

// ScaledConfig is the default fast configuration for one run.
func ScaledConfig(r RoutingKind, t transport.Kind, wl string) SimConfig {
	return SimConfig{
		Topo:        topo.Scaled(),
		Routing:     r,
		Transport:   t,
		Alpha:       0.5,
		Workload:    wl,
		Load:        0.4,
		MaxFlowSize: 64 << 20,
		Duration:    4 * sim.Millisecond,
		Seed:        1,
	}
}

// Result aggregates a run's measurements.
type Result struct {
	Config         SimConfig
	Collector      *metrics.Collector
	Counters       netsim.Counters
	Efficiency     float64
	ReroutedFrac   float64
	CompletionRate float64
	Launched       int
	// Events is the number of discrete events the engine executed for this
	// run (throughput denominator for events/sec reporting).
	Events uint64
	// Sharded reports whether the run executed on the conservative-PDES
	// engine (false when cfg.Shards was set but Shardable rejected the
	// configuration).
	Sharded bool
	// Shards is the effective worker count: the engine's worker count for a
	// sharded run (after clamping), 1 for a serial run.
	Shards int
	// ShardNote records shard-count adjustments (e.g. a clamp to the ToR
	// count); empty when the requested count was used as-is.
	ShardNote string
	// JainCumulative is the whole-run Jain fairness over per-uplink-port
	// bytes (Fig 15).
	JainCumulative float64
	// Flows are the run's flows (MPTCP subflows included), for trace
	// export.
	Flows []*netsim.Flow
	// Recovery is the §5.3 online-recovery summary (all-zero when no
	// failures were configured).
	Recovery metrics.RecoveryStats
	// ResumeNote records checkpoint/resume outcomes: the restored instant
	// on a successful resume, why a requested resume fell back to a cold
	// run, or why checkpoint writing was disabled. Empty for plain runs.
	ResumeNote string
	// TrialPanic, set by RunTrials, records a panic (message and stack)
	// that aborted this trial; the zero-value Result fields accompany it.
	TrialPanic string
	// SweepLine, set by RunTrials when a resumed sweep finds this trial
	// already completed in the sweep book, is the trial's recorded summary
	// line. The simulation was not re-run: the other fields are zero apart
	// from Config, Collector, and ResumeNote.
	SweepLine string
}

// Bins groups the run's FCTs with the default flow-size bins.
func (r *Result) Bins() []metrics.BinStat { return r.Collector.BySize(metrics.DefaultBins()) }

// simState is one fully wired simulation: engines, network, transport
// stack, collector, and workload, ready to run (cold) or to restore a
// checkpoint into (resume).
type simState struct {
	cfg       SimConfig
	eng       *sim.Engine
	sh        *sim.ShardedEngine
	net       *netsim.Network
	stack     *transport.Stack
	col       *metrics.Collector
	flows     []*netsim.Flow
	sharded   bool
	shards    int
	shardNote string
	horizon   sim.Time
}

// Run executes the simulation.
func Run(cfg SimConfig) (*Result, error) {
	var st *simState
	var resumeNote string
	resumed := false
	if cfg.Resume {
		if cfg.CheckpointDir == "" {
			resumeNote = "cold run: Resume set without CheckpointDir"
		} else {
			rst, err := buildSim(cfg, true)
			if err != nil {
				return nil, err
			}
			at, rerr := rst.restoreCheckpoint()
			if rerr != nil {
				// The half-restored network is undefined; discard it and
				// fall through to a clean cold build.
				resumeNote = fmt.Sprintf("cold run: %v", rerr)
			} else {
				st = rst
				resumed = true
				resumeNote = fmt.Sprintf("resumed at %v", at)
			}
		}
	}
	if st == nil {
		var err error
		st, err = buildSim(cfg, false)
		if err != nil {
			return nil, err
		}
	}
	res := st.run(resumed)
	if res.ResumeNote == "" {
		res.ResumeNote = resumeNote
	} else if resumeNote != "" {
		res.ResumeNote = resumeNote + "; " + res.ResumeNote
	}
	return res, nil
}

// buildSim wires a simulation. With forRestore set, flows are attached but
// not scheduled and the slice-boundary clock is not armed: every pending
// event then comes from the checkpoint replay in restoreCheckpoint.
func buildSim(cfg SimConfig, forRestore bool) (*simState, error) {
	schedKind := cfg.ScheduleKind
	if schedKind == "" {
		schedKind = ScheduleFor(cfg.Routing)
	}
	fab, err := topo.NewFabric(cfg.Topo, schedKind, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("harness: Shards=%d is negative", cfg.Shards)
	}
	if cfg.TableCacheCap < 0 {
		return nil, fmt.Errorf("harness: TableCacheCap=%d is negative", cfg.TableCacheCap)
	}
	if cfg.CongestionThreshold < 0 {
		return nil, fmt.Errorf("harness: CongestionThreshold=%d is negative", cfg.CongestionThreshold)
	}
	shards := cfg.Shards
	var shardNote string
	if shards > fab.NumToRs {
		shardNote = fmt.Sprintf("Shards=%d clamped to the %d-ToR domain count", cfg.Shards, fab.NumToRs)
		shards = fab.NumToRs
	}
	sharded := false
	if shards > 1 {
		if err := Shardable(cfg); err != nil {
			shardNote = fmt.Sprintf("serial fallback: %v", err)
			recordShardNote(shardNote)
		} else {
			sharded = true
		}
	}
	var eng *sim.Engine
	var sh *sim.ShardedEngine
	if sharded {
		sh = sim.NewShardedEngine(fab.NumToRs, shards, netsim.ShardLookahead(fab), cfg.Queue)
	} else {
		eng = sim.NewEngineQueue(cfg.Queue)
		shards = 1
	}

	var router netsim.Router
	var ucmpRouter *routing.UCMP
	switch cfg.Routing {
	case UCMP:
		ps, warmTable, _ := warmPathSet(fab, cfg)
		ucmpRouter = routing.NewUCMP(ps)
		ucmpRouter.Relax = cfg.Relax
		if cfg.UseTables {
			ucmpRouter.EnableTables(cfg.TableCacheCap)
			if warmTable != nil {
				ucmpRouter.Tables.Preload(0, warmTable)
			}
		}
		switch cfg.PinPolicy {
		case "":
		case "min-latency":
			ucmpRouter.ForceBucket = 0
		case "fewest-hops":
			ucmpRouter.ForceBucket = ucmpRouter.Ager.NumBuckets() - 1
		default:
			return nil, fmt.Errorf("harness: unknown pin policy %q", cfg.PinPolicy)
		}
		router = ucmpRouter
	case VLB:
		router = routing.NewVLB(fab)
	case KSP1:
		router = routing.NewKSP(fab, 1)
	case KSP5:
		router = routing.NewKSP(fab, 5)
	case Opera1:
		router = routing.NewOpera(fab, 1)
	case Opera5:
		router = routing.NewOpera(fab, 5)
	default:
		return nil, fmt.Errorf("harness: unknown routing %q", cfg.Routing)
	}

	qs := transport.QueueSpec(cfg.Transport)
	var net *netsim.Network
	if sharded {
		net = netsim.NewSharded(sh, fab, router, qs, qs, netsim.DefaultRotor())
	} else {
		net = netsim.New(eng, fab, router, qs, qs, netsim.DefaultRotor())
	}

	if ucmpRouter != nil && cfg.CongestionAware {
		net.EnableCongestionBoard()
		ucmpRouter.Backlog = net.CongestionBacklog
		ucmpRouter.CongestionThreshold = cfg.CongestionThreshold
		if ucmpRouter.CongestionThreshold == 0 {
			ucmpRouter.CongestionThreshold = 32
		}
	}
	if ucmpRouter != nil {
		if cfg.AccurateFlowSize {
			ager := ucmpRouter.Ager
			net.Stamper = func(p *netsim.Packet) {
				if p.Flow != nil && p.Type == netsim.Data {
					p.Bucket = ager.Bucket(p.Flow.Size)
				}
			}
		} else {
			net.Stamper = ucmpRouter.StampBucket
		}
	}

	if fsched := compileFailures(cfg, fab); fsched != nil {
		net.Faults = fsched
		if ucmpRouter != nil {
			ucmpRouter.Health = fsched
		}
	}

	if !forRestore {
		net.Start()
	}

	flows := cfg.Flows
	if flows == nil {
		dist, err := distByName(cfg.Workload)
		if err != nil {
			return nil, err
		}
		flows = workload.Generate(workload.PoissonConfig{
			Dist:        dist,
			NumHosts:    cfg.Topo.NumHosts(),
			LinkBps:     cfg.Topo.LinkBps,
			Load:        cfg.Load,
			Duration:    cfg.Duration,
			Seed:        cfg.Seed,
			HostsPerToR: cfg.Topo.HostsPerToR,
			MaxFlowSize: cfg.MaxFlowSize,
			Hotspot:     cfg.Hotspot,
		})
	}

	col := &metrics.Collector{}
	col.Hook(net)
	col.CountLaunched(len(flows))

	stack := transport.NewStack(net, cfg.Transport)
	for _, f := range flows {
		if forRestore {
			stack.Attach(f)
		} else {
			stack.Launch(f)
		}
	}

	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = 4 * cfg.Duration
		if horizon == 0 {
			horizon = 20 * sim.Millisecond
		}
	}
	return &simState{
		cfg: cfg, eng: eng, sh: sh, net: net, stack: stack, col: col,
		flows: flows, sharded: sharded, shards: shards, shardNote: shardNote,
		horizon: horizon,
	}, nil
}

// run executes the wired simulation to its horizon — writing checkpoints
// along the way when configured — and aggregates the result. resumed tells
// it the sampling chains were restored rather than needing a cold arm.
func (st *simState) run(resumed bool) *Result {
	cfg := st.cfg
	ckptKey, ckptNote := "", ""
	if cfg.CheckpointDir != "" && cfg.CheckpointEvery > 0 {
		if cfg.Transport == transport.MPTCP {
			ckptNote = "checkpointing disabled: mptcp transport is not serializable"
		} else {
			ckptKey = configKey(cfg, st.flows)
		}
	}
	var events uint64
	if st.sharded {
		if cfg.SampleEvery > 0 && !resumed {
			st.col.StartSamplingSharded(st.net, st.sh, cfg.SampleEvery, st.horizon)
		}
		if ckptKey != "" {
			st.armCheckpoints(ckptKey)
		}
		st.sh.Run(st.horizon)
		st.net.FinalizeSharded()
		events = st.sh.Processed()
		recordSchedStats(st.sh.SchedStats())
		recordShardStats(st.sh.Stats())
	} else {
		if cfg.SampleEvery > 0 && !resumed {
			st.col.StartSampling(st.net, cfg.SampleEvery, st.horizon)
		}
		if ckptKey != "" {
			// Segmented run: stop at each checkpoint instant with the event
			// queue intact and snapshot. No checkpoint event ever enters the
			// engine, so the run is bit-identical to an unsegmented one.
			every := cfg.CheckpointEvery
			for t := (st.eng.Now()/every + 1) * every; t < st.horizon; t += every {
				st.eng.Run(t)
				st.writeCheckpoint(ckptKey)
			}
		}
		st.eng.Run(st.horizon)
		events = st.eng.Processed()
		recordSchedStats(st.eng.SchedStats())
	}
	eventsProcessed.Add(events)

	return &Result{
		Config:         cfg,
		Collector:      st.col,
		Counters:       st.net.Counters,
		Efficiency:     st.net.BandwidthEfficiency(),
		ReroutedFrac:   st.net.ReroutedFraction(),
		CompletionRate: st.col.CompletionRate(),
		Launched:       len(st.flows),
		Events:         events,
		Sharded:        st.sharded,
		Shards:         st.shards,
		ShardNote:      st.shardNote,
		JainCumulative: st.net.JainCumulative(),
		Flows:          st.net.Flows(),
		Recovery:       metrics.Recovery(st.net.Counters),
		ResumeNote:     ckptNote,
	}
}

// compileFailures folds the config's fault knobs — the static LinkFailFrac
// scenario (down from t=0, never repaired) and the explicit Failures
// timeline — into one compiled schedule, or nil when no faults are
// configured (the zero-cost default: the fabric never consults a schedule).
func compileFailures(cfg SimConfig, fab *topo.Fabric) *failure.Schedule {
	static := cfg.LinkFailFrac > 0
	scripted := !cfg.Failures.Empty()
	if !static && !scripted {
		return nil
	}
	tl := failure.NewTimeline()
	if static {
		tl.Merge(failure.FromScenario(newLinkFailures(fab, cfg.LinkFailFrac, cfg.Seed), 0, -1))
	}
	if scripted {
		tl.Merge(cfg.Failures)
	}
	return tl.Compile(fab)
}

// Shared wiring helpers, used by Run and by the extension runners.

func newFabricFor(cfg SimConfig, topoCfg topo.Config) (*topo.Fabric, error) {
	kind := cfg.ScheduleKind
	if kind == "" {
		kind = ScheduleFor(cfg.Routing)
	}
	return topo.NewFabric(topoCfg, kind, cfg.Seed)
}

func buildPathSetFor(fab *topo.Fabric, cfg SimConfig) *core.PathSet {
	ps, _, _ := warmPathSet(fab, cfg)
	return ps
}

func newUCMPFor(ps *core.PathSet, cfg SimConfig) *routing.UCMP {
	u := routing.NewUCMP(ps)
	u.Relax = cfg.Relax
	return u
}

func generateFlows(cfg SimConfig) []*netsim.Flow {
	if cfg.Flows != nil {
		return cfg.Flows
	}
	dist, err := distByName(cfg.Workload)
	if err != nil {
		panic(err)
	}
	return workload.Generate(workload.PoissonConfig{
		Dist:        dist,
		NumHosts:    cfg.Topo.NumHosts(),
		LinkBps:     cfg.Topo.LinkBps,
		Load:        cfg.Load,
		Duration:    cfg.Duration,
		Seed:        cfg.Seed,
		HostsPerToR: cfg.Topo.HostsPerToR,
		MaxFlowSize: cfg.MaxFlowSize,
		Hotspot:     cfg.Hotspot,
	})
}

func newCollector(net *netsim.Network, launched int) *metrics.Collector {
	col := &metrics.Collector{}
	col.Hook(net)
	col.CountLaunched(launched)
	return col
}

func distByName(name string) (*workload.Dist, error) {
	switch name {
	case "websearch":
		return workload.WebSearch(), nil
	case "datamining":
		return workload.DataMining(), nil
	default:
		return nil, fmt.Errorf("harness: unknown workload %q", name)
	}
}
