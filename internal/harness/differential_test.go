package harness

import (
	"fmt"
	"sort"
	"testing"

	"ucmp/internal/sim"
	"ucmp/internal/transport"
)

// fingerprint renders everything observable about a run — per-flow FCT
// trace, the full counter set (packet-conservation ledger included),
// event count, and fairness — as one string, so wheel/heap equivalence is
// a bytewise comparison.
func fingerprint(r *Result) string {
	out := fmt.Sprintf("counters=%+v\nevents=%d\njain=%.12f\nefficiency=%.12f\nlaunched=%d\n",
		r.Counters, r.Events, r.JainCumulative, r.Efficiency, r.Launched)
	fl := append(r.Flows[:0:0], r.Flows...)
	sort.Slice(fl, func(i, j int) bool { return fl[i].ID < fl[j].ID })
	for _, f := range fl {
		out += fmt.Sprintf("flow %d: sent=%d delivered=%d finished=%v at=%d\n",
			f.ID, f.BytesSent, f.BytesDelivered, f.Finished, int64(f.FinishedAt))
	}
	return out
}

// TestDifferentialWheelHeap runs full packet-level simulations across
// schemes and transports on both scheduler implementations and requires
// byte-identical results. Transport timers (TCP RTO, NDP repair/pacer)
// exercise the cancelable-timer path; the link-failure config exercises
// rerouting; RotorLB exercises the uplink wake timer under backpressure.
func TestDifferentialWheelHeap(t *testing.T) {
	cases := []struct {
		name string
		cfg  SimConfig
	}{
		{"ucmp-dctcp", ScaledConfig(UCMP, transport.DCTCP, "websearch")},
		{"ucmp-ndp", ScaledConfig(UCMP, transport.NDP, "websearch")},
		{"vlb-rotor", ScaledConfig(VLB, transport.Rotor, "datamining")},
		{"ksp5-dctcp", ScaledConfig(KSP5, transport.DCTCP, "websearch")},
	}
	// Keep runs short: determinism, not statistics, is under test.
	for i := range cases {
		cases[i].cfg.Duration = sim.Millisecond
		cases[i].cfg.Seed = int64(7 + i)
	}
	// A failure scenario forces backup paths and retransmission timers.
	failing := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	failing.Duration = sim.Millisecond
	failing.Seed = 11
	failing.LinkFailFrac = 0.15
	cases = append(cases, struct {
		name string
		cfg  SimConfig
	}{"ucmp-dctcp-failures", failing})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wcfg := tc.cfg
			wcfg.Queue = sim.QueueWheel
			wres, err := Run(wcfg)
			if err != nil {
				t.Fatal(err)
			}
			hcfg := tc.cfg
			hcfg.Queue = sim.QueueHeap
			hres, err := Run(hcfg)
			if err != nil {
				t.Fatal(err)
			}
			wfp, hfp := fingerprint(wres), fingerprint(hres)
			if wfp != hfp {
				t.Fatalf("wheel and heap diverge:\n--- wheel ---\n%s\n--- heap ---\n%s", wfp, hfp)
			}
		})
	}
}
