package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"ucmp/internal/netsim"
	"ucmp/internal/sim"
	"ucmp/internal/switchres"
	"ucmp/internal/topo"
	"ucmp/internal/transport"
)

// ScalePoint is one fabric size of the scaling sweep: offline build,
// table compile, and an end-to-end permutation simulation, with wall-clock
// and peak-memory accounting per phase. It is the record behind
// results/BENCH_pr7.json and the README's "scaling to 1024 ToRs" table.
type ScalePoint struct {
	N, D int

	// Symmetric reports whether the rotation-symmetric canonical build ran;
	// CanonRows/CanonUnique are its S·(N-1) spine size and the interned
	// group count after content dedup (zero for brute-force builds).
	Symmetric   bool
	CanonRows   int
	CanonUnique int

	// Warm reports that the path set came from the warm-fabric cache (file
	// or in-process) rather than an offline build — BuildSec is then the
	// load time.
	Warm bool

	// Phase wall clocks. SimSec covers the whole Run, including the
	// router's own path-set build.
	BuildSec   float64
	CompileSec float64
	SimSec     float64

	// Peak heap accounting over the whole point (runtime.MemStats sampled
	// concurrently): the high-water live heap and the OS-reserved bytes.
	PeakHeapBytes uint64
	PeakSysBytes  uint64

	// Compiled-table footprint for one source ToR.
	NaiveRows   int
	PackedRows  int
	PackedBytes int

	// Permutation run outcome.
	Flows        int
	Finished     int
	Events       uint64
	EventsPerSec float64
}

// memSampler polls runtime.MemStats and keeps the high-water marks. Each
// ReadMemStats stops the world briefly, so the poll period is coarse.
type memSampler struct {
	mu       sync.Mutex
	peakHeap uint64
	peakSys  uint64
	stop     chan struct{}
	done     chan struct{}
}

func startMemSampler(every time.Duration) *memSampler {
	s := &memSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			s.sample()
			select {
			case <-s.stop:
				return
			case <-t.C:
			}
		}
	}()
	return s
}

func (s *memSampler) sample() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.mu.Lock()
	if m.HeapAlloc > s.peakHeap {
		s.peakHeap = m.HeapAlloc
	}
	if m.Sys > s.peakSys {
		s.peakSys = m.Sys
	}
	s.mu.Unlock()
}

// halt takes a final sample and returns the high-water marks.
func (s *memSampler) halt() (peakHeap, peakSys uint64) {
	close(s.stop)
	<-s.done
	s.sample()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peakHeap, s.peakSys
}

// ScaleConfig tunes the sweep.
type ScaleConfig struct {
	Ns       []int    // fabric sizes; nil: DefaultScaleNs
	D        int      // uplinks per ToR; 0: 8
	FlowSize int64    // bytes per permutation flow; 0: 64 KiB
	Horizon  sim.Time // sim horizon; 0: 20 ms
	Seed     int64
	// CacheDir enables the warm-fabric cache (SimConfig.FabricCacheDir):
	// each point's path set is loaded from a compiled-fabric file when one
	// matches, built-and-saved otherwise, and shared with the point's
	// simulation run instead of being built twice.
	CacheDir string
}

// DefaultScaleNs are the sweep's fabric sizes: the paper scale plus the
// power-of-two ladder to the 1024-ToR north star. 108 is not a power of
// two, so it exercises the brute-force fallback; the rest take the
// rotation-symmetric canonical build.
var DefaultScaleNs = []int{108, 256, 512, 1024}

// ScaleSweep measures offline build, table compile, and an end-to-end
// permutation simulation at each fabric size.
func ScaleSweep(cfg ScaleConfig) (*Report, []ScalePoint, error) {
	ns := cfg.Ns
	if ns == nil {
		ns = DefaultScaleNs
	}
	d := cfg.D
	if d == 0 {
		d = 8
	}
	flowSize := cfg.FlowSize
	if flowSize == 0 {
		flowSize = 64 << 10
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = 20 * sim.Millisecond
	}

	r := &Report{Title: fmt.Sprintf("Scaling sweep: permutation run, d=%d, %d KiB flows", d, flowSize>>10)}
	r.Addf("%-7s %-5s %-9s %-9s %-8s %-8s %-9s %-10s %-10s %-11s %-9s",
		"N", "sym", "build(s)", "canon", "compile", "sim(s)", "events", "events/s", "rows", "packed(KB)", "peak(MB)")
	var points []ScalePoint
	for _, n := range ns {
		p, err := scalePoint(n, d, flowSize, horizon, cfg.Seed, cfg.CacheDir)
		if err != nil {
			return nil, nil, fmt.Errorf("scale N=%d: %w", n, err)
		}
		points = append(points, p)
		canon := "-"
		if p.Symmetric {
			canon = fmt.Sprintf("%d/%d", p.CanonUnique, p.CanonRows)
		}
		build := fmt.Sprintf("%.2f", p.BuildSec)
		if p.Warm {
			build += "*" // warm: loaded from the fabric cache, not built
		}
		r.Addf("%-7d %-5v %-9s %-9s %-8.2f %-8.2f %-9d %-10.0f %-10s %-11d %-9.0f",
			p.N, p.Symmetric, build, canon, p.CompileSec, p.SimSec, p.Events, p.EventsPerSec,
			fmt.Sprintf("%d/%d", p.PackedRows, p.NaiveRows), p.PackedBytes>>10, float64(p.PeakHeapBytes)/(1<<20))
	}
	if cfg.CacheDir != "" {
		warm := 0
		for _, p := range points {
			if p.Warm {
				warm++
			}
		}
		r.Addf("warm-fabric cache %s: %d/%d points loaded warm (*)", cfg.CacheDir, warm, len(points))
	}
	return r, points, nil
}

func scalePoint(n, d int, flowSize int64, horizon sim.Time, seed int64, cacheDir string) (ScalePoint, error) {
	tc := topo.Scaled()
	tc.NumToRs, tc.Uplinks = n, d
	fab, err := topo.NewFabric(tc, "round-robin", seed)
	if err != nil {
		return ScalePoint{}, err
	}
	p := ScalePoint{N: n, D: d, Symmetric: fab.Sched.Rotation()}

	sampler := startMemSampler(50 * time.Millisecond)

	sc := SimConfig{
		Topo:           tc,
		Routing:        UCMP,
		Transport:      transport.DCTCP,
		Alpha:          0.5,
		Horizon:        horizon,
		Seed:           seed,
		FabricCacheDir: cacheDir,
	}

	// With a cache dir this loads (or builds-and-saves) once; the point's
	// simulation run then reuses the same warm path set through the
	// process-wide cache instead of building a second copy.
	t0 := time.Now()
	ps, _, warm := warmPathSet(fab, sc)
	p.BuildSec = time.Since(t0).Seconds()
	p.Warm = warm
	p.CanonRows, p.CanonUnique = ps.CanonStats()

	t0 = time.Now()
	p.NaiveRows, p.PackedRows, p.PackedBytes = switchres.ExactTable(ps, 0)
	p.CompileSec = time.Since(t0).Seconds()
	var flows []*netsim.Flow
	for tor := 0; tor < n; tor++ {
		src := tor * tc.HostsPerToR
		dst := ((tor + 1) % n) * tc.HostsPerToR
		flows = append(flows, netsim.NewFlow(int64(tor+1), src, dst, flowSize, 0))
	}
	sc.Flows = flows
	p.Flows = len(flows)

	t0 = time.Now()
	res, err := Run(sc)
	if err != nil {
		return ScalePoint{}, err
	}
	p.SimSec = time.Since(t0).Seconds()
	p.Events = res.Events
	if p.SimSec > 0 {
		p.EventsPerSec = float64(res.Events) / p.SimSec
	}
	for _, f := range res.Flows {
		if f.Finished {
			p.Finished++
		}
	}
	p.PeakHeapBytes, p.PeakSysBytes = sampler.halt()
	return p, nil
}

// BenchLines renders the sweep points in `go test -bench` result format, so
// cmd/benchjson folds them into the tracked results/BENCH_*.json records
// alongside the hot-path benchmarks (custom columns land in "metrics").
func BenchLines(points []ScalePoint) []string {
	var out []string
	for _, p := range points {
		total := p.BuildSec + p.CompileSec + p.SimSec
		sym := 0
		if p.Symmetric {
			sym = 1
		}
		dedup := 0.0
		if p.CanonRows > 0 {
			dedup = float64(p.CanonUnique) / float64(p.CanonRows)
		}
		warm := 0
		if p.Warm {
			warm = 1
		}
		out = append(out, fmt.Sprintf(
			"BenchmarkScaleSweep/N=%d 1 %d ns/op %.3f build-s %.3f compile-s %.3f sim-s %.1f peak-heap-MB %.1f peak-sys-MB %.0f events/s %d packed-rows %d naive-rows %d sym %d warm %.4f canon-dedup",
			p.N, int64(total*1e9), p.BuildSec, p.CompileSec, p.SimSec,
			float64(p.PeakHeapBytes)/(1<<20), float64(p.PeakSysBytes)/(1<<20),
			p.EventsPerSec, p.PackedRows, p.NaiveRows, sym, warm, dedup))
	}
	return out
}
