package harness

import (
	"fmt"
	"strings"
)

// Trial is one fully-specified simulation run inside a trial matrix — a
// (scheme, load point) pair with its own derived seed. Trials share no
// mutable state: each Run builds its own fabric, engine, network and
// collector, which is what makes the fan-out below safe.
type Trial struct {
	Name string
	Cfg  SimConfig
}

// seedStride separates the derived seeds of consecutive trials so their
// workload RNG streams do not overlap for any realistic flow count.
const seedStride = 1_000_003

// SweepLoad builds the scheme × load trial matrix with deterministic derived
// seeds: trial i uses base.Seed + i*seedStride regardless of execution
// order, so serial and parallel executions simulate identical workloads.
func SweepLoad(base SimConfig, schemes []RoutingKind, loads []float64) []Trial {
	trials := make([]Trial, 0, len(schemes)*len(loads))
	for _, s := range schemes {
		for _, l := range loads {
			cfg := base
			cfg.Routing = s
			cfg.ScheduleKind = "" // derive from the scheme
			cfg.Load = l
			cfg.Seed = base.Seed + int64(len(trials))*seedStride
			trials = append(trials, Trial{
				Name: fmt.Sprintf("%s/load=%.2f", s, l),
				Cfg:  cfg,
			})
		}
	}
	return trials
}

// RunTrials executes the trials — serially, or over the bounded worker pool
// when Parallel is set — and returns results in input order. Because every
// result lands in its preassigned slot and aggregation happens only after
// all trials finish, anything rendered from the returned slice is
// byte-identical between serial and parallel execution (pinned by
// TestTrialReplicationDeterminism).
func RunTrials(trials []Trial) ([]*Result, error) {
	out := make([]*Result, len(trials))
	err := forEach(len(trials), func(i int) error {
		r, err := Run(trials[i].Cfg)
		if err != nil {
			return fmt.Errorf("trial %s: %w", trials[i].Name, err)
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SummarizeTrials renders one line per trial with the aggregates the sweep
// reports; it is the canonical aggregated output the determinism contract is
// defined over.
func SummarizeTrials(trials []Trial, results []*Result) string {
	var b strings.Builder
	for i, r := range results {
		fmt.Fprintf(&b,
			"%-24s completion=%.4f eff=%.4f rerouted=%.5f p50=%s p99=%s injected=%d delivered=%d dropped=%d\n",
			trials[i].Name,
			r.CompletionRate,
			r.Efficiency,
			r.ReroutedFrac,
			r.Collector.Percentile(0.50),
			r.Collector.Percentile(0.99),
			r.Counters.DataInjected,
			r.Counters.DataDelivered,
			r.Counters.DataDropped,
		)
	}
	return b.String()
}
