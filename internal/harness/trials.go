package harness

import (
	"fmt"
	"runtime/debug"
	"strings"

	"ucmp/internal/metrics"
)

// Trial is one fully-specified simulation run inside a trial matrix — a
// (scheme, load point) pair with its own derived seed. Trials share no
// mutable state: each Run builds its own fabric, engine, network and
// collector, which is what makes the fan-out below safe.
type Trial struct {
	Name string
	Cfg  SimConfig
}

// seedStride separates the derived seeds of consecutive trials so their
// workload RNG streams do not overlap for any realistic flow count.
const seedStride = 1_000_003

// SweepLoad builds the scheme × load trial matrix with deterministic derived
// seeds: trial i uses base.Seed + i*seedStride regardless of execution
// order, so serial and parallel executions simulate identical workloads.
func SweepLoad(base SimConfig, schemes []RoutingKind, loads []float64) []Trial {
	trials := make([]Trial, 0, len(schemes)*len(loads))
	for _, s := range schemes {
		for _, l := range loads {
			cfg := base
			cfg.Routing = s
			cfg.ScheduleKind = "" // derive from the scheme
			cfg.Load = l
			cfg.Seed = base.Seed + int64(len(trials))*seedStride
			trials = append(trials, Trial{
				Name: fmt.Sprintf("%s/load=%.2f", s, l),
				Cfg:  cfg,
			})
		}
	}
	return trials
}

// runTrial executes one trial, converting a panic anywhere inside the
// simulation into a Result carrying the panic message, the trial's derived
// seed, and the stack — so one broken trial degrades that line of the sweep
// instead of killing every other worker's progress.
func runTrial(t Trial) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res = &Result{
				Config:     t.Cfg,
				Collector:  &metrics.Collector{},
				TrialPanic: fmt.Sprintf("panic (seed %d): %v\n%s", t.Cfg.Seed, p, debug.Stack()),
			}
			err = nil
		}
	}()
	return Run(t.Cfg)
}

// RunTrials executes the trials — serially, or over the bounded worker pool
// when Parallel is set — and returns results in input order. Because every
// result lands in its preassigned slot and aggregation happens only after
// all trials finish, anything rendered from the returned slice is
// byte-identical between serial and parallel execution (pinned by
// TestTrialReplicationDeterminism).
//
// A panicking trial does not abort the sweep: its slot carries
// Result.TrialPanic and the remaining trials complete normally.
//
// When the trials carry a CheckpointDir, RunTrials additionally keeps a
// sweep book in that directory recording the summary line of every
// completed trial; with Resume set, trials already present in the book are
// restored from it (Result.SweepLine) instead of re-running, so a killed
// sweep restarts mid-sweep instead of from scratch.
func RunTrials(trials []Trial) ([]*Result, error) {
	book := openSweepBook(trials)
	out := make([]*Result, len(trials))
	err := forEach(len(trials), func(i int) error {
		if r := book.restore(trials[i]); r != nil {
			out[i] = r
			return nil
		}
		r, err := runTrial(trials[i])
		if err != nil {
			return fmt.Errorf("trial %s: %w", trials[i].Name, err)
		}
		out[i] = r
		if r.TrialPanic == "" {
			// Panicked trials stay out of the book so a resumed sweep
			// retries them instead of replaying the failure line.
			book.record(trials[i], r)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// summaryLine renders the aggregate line for one finished trial; it is the
// unit the sweep book stores, so a restored trial reprints byte-identically.
func summaryLine(t Trial, r *Result) string {
	if r.SweepLine != "" {
		return r.SweepLine
	}
	if r.TrialPanic != "" {
		msg, _, _ := strings.Cut(r.TrialPanic, "\n")
		return fmt.Sprintf("%-24s PANIC %s\n", t.Name, msg)
	}
	return fmt.Sprintf(
		"%-24s completion=%.4f eff=%.4f rerouted=%.5f p50=%s p99=%s injected=%d delivered=%d dropped=%d\n",
		t.Name,
		r.CompletionRate,
		r.Efficiency,
		r.ReroutedFrac,
		r.Collector.Percentile(0.50),
		r.Collector.Percentile(0.99),
		r.Counters.DataInjected,
		r.Counters.DataDelivered,
		r.Counters.DataDropped,
	)
}

// SummarizeTrials renders one line per trial with the aggregates the sweep
// reports; it is the canonical aggregated output the determinism contract is
// defined over.
func SummarizeTrials(trials []Trial, results []*Result) string {
	var b strings.Builder
	for i, r := range results {
		b.WriteString(summaryLine(trials[i], r))
	}
	return b.String()
}
