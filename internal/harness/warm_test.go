package harness

import (
	"bytes"
	"os"
	"testing"

	"ucmp/internal/core"
	"ucmp/internal/fabriccache"
	"ucmp/internal/routing"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
	"ucmp/internal/transport"
)

func warmCachePathFor(t *testing.T, fab *topo.Fabric, cfg SimConfig) string {
	t.Helper()
	path := fabriccache.FileName(cfg.FabricCacheDir,
		fab, fabriccache.Params{Alpha: cfg.Alpha, MaxParallel: cfg.MaxParallel})
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache file not written: %v", err)
	}
	return path
}

func corruptFile(t *testing.T, path string) {
	t.Helper()
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0x20
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
}

// dropWarmFabrics empties the process-wide warm cache so the next run must
// go back to the cache file (the mmap load path). Handles are deliberately
// not Closed: decoded tables may alias their mappings, and leaked read-only
// mappings are harmless in a test process.
func dropWarmFabrics() {
	warmFabrics.Lock()
	warmFabrics.m = nil
	warmFabrics.Unlock()
}

// TestDifferentialWarmFabric is the warm-vs-cold determinism pin: a run
// served from a fabric cache file — the mmap'd path set and the preloaded
// ToR-0 table — produces byte-identical results (and byte-identical
// compiled tables) to the cold build, and still agrees between the serial
// and sharded engines.
func TestDifferentialWarmFabric(t *testing.T) {
	dir := t.TempDir()
	base := ScaledConfig(UCMP, transport.DCTCP, "websearch")
	// The scaled default is (16, 3); d must be even for the round-robin
	// schedule to carry the rotation witness the canonical form needs.
	base.Topo.Uplinks = 4
	base.Duration = sim.Millisecond
	base.Seed = 21
	base.UseTables = true

	coldRes, err := Run(base) // no cache dir: the reference cold run
	if err != nil {
		t.Fatal(err)
	}
	coldFP := fingerprint(coldRes)

	populate := base
	populate.FabricCacheDir = dir
	popRes, err := Run(populate) // cold build + save
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(popRes) != coldFP {
		t.Fatal("populating run diverges from the cold run")
	}

	dropWarmFabrics() // force the next run through the file, not the map
	warmRes, err := Run(populate)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(warmRes) != coldFP {
		t.Fatalf("warm run diverges from cold:\n--- cold ---\n%s\n--- warm ---\n%s",
			coldFP, fingerprint(warmRes))
	}

	// The loaded table must be byte-identical to one compiled cold.
	fab := topo.MustFabric(base.Topo, ScheduleFor(base.Routing), base.Seed)
	ps, warmTable, warm := warmPathSet(fab, populate)
	if !warm || warmTable == nil {
		t.Fatal("fabric not served warm after a cached run")
	}
	coldPS := core.BuildPathSetWith(fab, base.Alpha, base.MaxParallel)
	coldTable := routing.CompileTable(coldPS, core.NewFlowAger(coldPS), 0)
	if !bytes.Equal(warmTable.Bytes(), coldTable.Bytes()) {
		t.Fatal("loaded ToR-0 table differs from a cold compile")
	}
	for _, tor := range []int{1, 7} {
		w := routing.CompileTable(ps, core.NewFlowAger(ps), tor)
		c := routing.CompileTable(coldPS, core.NewFlowAger(coldPS), tor)
		if !bytes.Equal(w.Bytes(), c.Bytes()) {
			t.Fatalf("table for ToR %d compiled from the warm path set differs", tor)
		}
	}

	// Serial vs sharded with warm tables: the engines must still agree on
	// every simulation observable (fingerprintCore — event counts
	// legitimately differ between the engines).
	sharded := populate
	sharded.Shards = 4
	shRes, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !shRes.Sharded {
		t.Fatalf("sharded run fell back to serial: %s", shRes.ShardNote)
	}
	if fingerprintCore(shRes) != fingerprintCore(coldRes) {
		t.Fatalf("sharded warm run diverges from cold:\n--- cold ---\n%s\n--- sharded ---\n%s",
			fingerprintCore(coldRes), fingerprintCore(shRes))
	}

	// A corrupted cache file must be rebuilt, not served.
	dropWarmFabrics()
	path := warmCachePathFor(t, fab, populate)
	corruptFile(t, path)
	reRes, err := Run(populate)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(reRes) != coldFP {
		t.Fatal("run after cache corruption diverges from cold")
	}
	dropWarmFabrics()
	if _, _, warm := warmPathSet(fab, populate); !warm {
		t.Fatal("rebuild did not overwrite the corrupted cache file")
	}
}
