package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestDifferentialWheelHeap drives the wheel and the reference heap with an
// identical randomized event script — same-instant bursts, nested
// scheduling, far-future events past the wheel horizon, and timer
// create/reset/cancel churn — and requires byte-identical firing traces and
// engine state at a sequence of Run horizons. This is the package-level pin
// for the (at, seq) equivalence contract; internal/harness runs the same
// comparison over full simulations.
func TestDifferentialWheelHeap(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			wheelTrace := runScript(t, QueueWheel, seed)
			heapTrace := runScript(t, QueueHeap, seed)
			if len(wheelTrace) != len(heapTrace) {
				t.Fatalf("trace lengths differ: wheel=%d heap=%d", len(wheelTrace), len(heapTrace))
			}
			for i := range wheelTrace {
				if wheelTrace[i] != heapTrace[i] {
					t.Fatalf("traces diverge at %d:\n  wheel: %s\n  heap:  %s",
						i, wheelTrace[i], heapTrace[i])
				}
			}
		})
	}
}

// runScript replays a deterministic pseudo-random workload on an engine of
// the given kind and returns the observable trace.
func runScript(t *testing.T, kind QueueKind, seed int64) []string {
	t.Helper()
	e := NewEngineQueue(kind)
	rng := rand.New(rand.NewSource(seed))
	var trace []string
	id := 0

	var timers []*Timer
	var schedule func(depth int)
	schedule = func(depth int) {
		id++
		myID := id
		switch rng.Intn(10) {
		case 0: // far-future event, beyond the wheel horizon (+ up to ~8s)
			at := e.Now() + Time(rng.Int63n(8*int64(Second)))
			e.At(at, func() { trace = append(trace, fmt.Sprintf("far %d @%d", myID, e.Now())) })
		case 1, 2: // cancelable timer
			at := e.Now() + Time(rng.Int63n(int64(Millisecond)))
			tm := e.AtCancelable(at, func() {
				trace = append(trace, fmt.Sprintf("timer %d @%d", myID, e.Now()))
			})
			timers = append(timers, tm)
		case 3: // same-instant burst
			for j := 0; j < 1+rng.Intn(4); j++ {
				id++
				burstID := id
				at := e.Now() + Time(rng.Int63n(1000))
				e.At(at, func() { trace = append(trace, fmt.Sprintf("burst %d @%d", burstID, e.Now())) })
			}
		default: // near-future event, possibly nesting more work
			at := e.Now() + Time(rng.Int63n(100*int64(Microsecond)))
			e.At(at, func() {
				trace = append(trace, fmt.Sprintf("ev %d @%d", myID, e.Now()))
				if depth > 0 && rng.Intn(3) == 0 {
					schedule(depth - 1)
				}
				// Churn a random live timer from inside the run.
				if len(timers) > 0 {
					tm := timers[rng.Intn(len(timers))]
					switch rng.Intn(3) {
					case 0:
						tm.Cancel()
					case 1:
						tm.Reset(e.Now() + Time(rng.Int63n(int64(Millisecond))))
					case 2:
						tm.Reset(e.Now() + Time(rng.Int63n(int64(Microsecond))))
					}
				}
			})
		}
	}

	for i := 0; i < 300; i++ {
		schedule(3)
	}
	// Drain in segments so horizon probes (popLE bounded by `until`) are
	// exercised, then finish with RunAll to flush the far-future overflow.
	horizon := Time(0)
	for seg := 0; seg < 8; seg++ {
		horizon += Time(rng.Int63n(int64(Millisecond)))
		e.Run(horizon)
		trace = append(trace, fmt.Sprintf("seg now=%d pending=%d processed=%d",
			e.Now(), e.Pending(), e.Processed()))
	}
	e.RunAll()
	trace = append(trace, fmt.Sprintf("end now=%d pending=%d processed=%d",
		e.Now(), e.Pending(), e.Processed()))
	return trace
}

// TestOverflowSameTimeSeqOrder pins the trickiest wheel case: an event that
// sat in the overflow heap and one inserted directly after migration, at the
// same instant, must still fire in seq order.
func TestOverflowSameTimeSeqOrder(t *testing.T) {
	e := NewEngine()
	far := 6 * Second // beyond the 2^32 ns wheel horizon
	var got []int
	e.At(far, func() { got = append(got, 1) }) // via overflow heap
	e.At(1, func() {
		// Runs at t=1; far is still in overflow. Schedule a second event at
		// the same far instant — it also lands in overflow, after the first.
		e.At(far, func() { got = append(got, 2) })
	})
	e.RunAll()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got=%v, want [1 2]", got)
	}
	if e.Now() != far {
		t.Fatalf("now=%v, want %v", e.Now(), far)
	}
}

// TestWheelZeroAllocSteadyState verifies that steady-state scheduling on the
// wheel — pre-bound fn1 events and timer resets at stable depths — does not
// allocate once the node arena has warmed up.
func TestWheelZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	var pump func(any)
	pump = func(arg any) {
		if e.Now() < Millisecond {
			e.At1(e.Now()+100, pump, arg)
		}
	}
	tm := e.NewTimer(func() {})
	// Warm up the arena.
	e.At1(0, pump, &struct{}{})
	e.Run(100 * Microsecond)
	allocs := testing.AllocsPerRun(100, func() {
		tm.Reset(e.Now() + 500)
		e.Run(e.Now() + 100)
	})
	if allocs != 0 {
		t.Fatalf("steady-state scheduling allocates %v per run, want 0", allocs)
	}
}
