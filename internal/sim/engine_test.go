package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsInOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %v, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: got[%d]=%d", i, v)
		}
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(100, func() { fired++ })
	end := e.Run(50)
	if fired != 1 {
		t.Fatalf("fired=%d, want 1", fired)
	}
	if end != 50 || e.Now() != 50 {
		t.Fatalf("horizon time = %v, want 50", end)
	}
	e.Run(200)
	if fired != 2 {
		t.Fatalf("fired=%d after second run, want 2", fired)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []Time
	var tick func()
	tick = func() {
		trace = append(trace, e.Now())
		if e.Now() < 50 {
			e.After(10, tick)
		}
	}
	e.At(0, tick)
	e.RunAll()
	if len(trace) != 6 {
		t.Fatalf("trace = %v, want 6 ticks", trace)
	}
	for i, tm := range trace {
		if tm != Time(i*10) {
			t.Fatalf("tick %d at %v, want %v", i, tm, Time(i*10))
		}
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.RunAll()
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++; e.Stop() })
	e.At(20, func() { fired++ })
	e.Run(100)
	if fired != 1 {
		t.Fatalf("fired=%d, want 1 (Stop should halt the loop)", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending=%d, want 1", e.Pending())
	}
}

// Property: for any set of timestamps, the engine executes callbacks in
// non-decreasing time order and ends at the max timestamp.
func TestEngineOrderProperty(t *testing.T) {
	prop := func(stamps []uint16) bool {
		if len(stamps) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, s := range stamps {
			at := Time(s)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.RunAll()
		if len(fired) != len(stamps) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		want := make([]int64, len(stamps))
		for i, s := range stamps {
			want[i] = int64(s)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if int64(fired[i]) != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if (2 * Second).Seconds() != 2.0 {
		t.Error("Seconds conversion wrong")
	}
	if (5 * Microsecond).Micros() != 5.0 {
		t.Error("Micros conversion wrong")
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), func() {})
		}
		e.RunAll()
	}
}

// TestEnginePushDuringPopStress interleaves heavy same-instant scheduling
// with callbacks that schedule more work while the queue is being drained —
// the access pattern both schedulers must survive. The observed execution
// order is checked against the (at, seq) contract: times never decrease,
// and within one instant events fire in scheduling order.
func TestEnginePushDuringPopStress(t *testing.T) {
	for _, kind := range []QueueKind{QueueWheel, QueueHeap} {
		t.Run(queueName(kind), func(t *testing.T) { pushDuringPopStress(t, kind) })
	}
}

func queueName(kind QueueKind) string {
	if kind == QueueHeap {
		return "heap"
	}
	return "wheel"
}

func pushDuringPopStress(t *testing.T, kind QueueKind) {
	e := NewEngineQueue(kind)
	rng := rand.New(rand.NewSource(42))
	type obs struct {
		at  Time
		tag int
	}
	var fired []obs
	tag := 0
	var spawn func(at Time, depth int)
	spawn = func(at Time, depth int) {
		tag++
		myTag := tag
		myAt := at
		e.At(myAt, func() {
			fired = append(fired, obs{myAt, myTag})
			if depth > 0 {
				// Re-schedule from inside the pop loop: same instant, a
				// random near future, and a clustered far slot.
				spawn(e.Now(), depth-1)
				spawn(e.Now()+Time(rng.Intn(5)), depth-1)
				spawn(e.Now()+50, depth-1)
			}
		})
	}
	for i := 0; i < 200; i++ {
		spawn(Time(rng.Intn(20)), 2)
	}
	e.RunAll()
	if len(fired) == 0 || uint64(len(fired)) != e.Processed() {
		t.Fatalf("fired=%d processed=%d", len(fired), e.Processed())
	}
	for i := 1; i < len(fired); i++ {
		if fired[i].at < fired[i-1].at {
			t.Fatalf("time went backwards at %d: %v after %v", i, fired[i], fired[i-1])
		}
		if fired[i].at == fired[i-1].at && fired[i].tag < fired[i-1].tag {
			t.Fatalf("FIFO violated at %d: tag %d after %d at %v",
				i, fired[i].tag, fired[i-1].tag, fired[i].at)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("pending=%d after RunAll", e.Pending())
	}
}
