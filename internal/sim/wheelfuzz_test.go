package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestWheelBoundaryFuzz stresses the timing wheel exactly where placement
// changes shape: offsets on and adjacent to every level boundary (4096 ns,
// 2^20 ns, 2^28 ns) and the 2^36 ns ≈ 69 s horizon (overflow-heap parking
// and migration), scheduled from randomized cursor positions, mixed with
// same-instant bursts. The heap engine is the oracle: firing traces, the
// engine end state, and every intermediate NextAt probe must match, which
// also pins the non-mutating peekMin across cascade/migration states.
func TestWheelBoundaryFuzz(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			wheel := runBoundaryScript(QueueWheel, seed)
			heap := runBoundaryScript(QueueHeap, seed)
			if len(wheel) != len(heap) {
				t.Fatalf("trace lengths differ: wheel=%d heap=%d", len(wheel), len(heap))
			}
			for i := range wheel {
				if wheel[i] != heap[i] {
					t.Fatalf("traces diverge at %d:\n  wheel: %s\n  heap:  %s", i, wheel[i], heap[i])
				}
			}
		})
	}
}

// runBoundaryScript schedules boundary-straddling batches from varied
// cursor offsets and drains with interleaved horizon probes. Event ids are
// assigned in scheduling order, so within one instant the trace must list
// ids ascending — checked directly, in addition to the differential
// comparison.
func runBoundaryScript(kind QueueKind, seed int64) []string {
	e := NewEngineQueue(kind)
	rng := rand.New(rand.NewSource(seed))
	var trace []string
	id := 0
	lastAt, lastID := Time(-1), -1
	sched := func(at Time) {
		if at < e.Now() {
			return
		}
		id++
		my := id
		e.At(at, func() {
			now := e.Now()
			if now < lastAt || (now == lastAt && my < lastID) {
				trace = append(trace, fmt.Sprintf("ORDER VIOLATION %d@%d after %d@%d", my, now, lastID, lastAt))
			}
			lastAt, lastID = now, my
			trace = append(trace, fmt.Sprintf("%d@%d", my, now))
		})
	}

	boundaries := []Time{
		1 << l0Bits,                 // level 0 -> 1
		1 << (l0Bits + wheelBits),   // level 1 -> 2
		1 << (l0Bits + 2*wheelBits), // level 2 -> 3
		1 << horizonBits,            // wheel horizon -> overflow heap
	}
	for round := 0; round < 25; round++ {
		// Park the cursor at an arbitrary sub-slot offset before inserting.
		e.Run(e.Now() + Time(rng.Int63n(int64(Millisecond))))
		now := e.Now()
		for _, b := range boundaries {
			for _, d := range []Time{-1, 0, 1} {
				sched(now + b + d)
			}
		}
		// Same-instant burst straddling a random boundary.
		at := now + boundaries[rng.Intn(len(boundaries))] + Time(rng.Int63n(3)) - 1
		for j := 0; j < 3; j++ {
			sched(at)
		}
		// A few unstructured events to vary slot occupancy.
		for j := 0; j < 4; j++ {
			sched(now + Time(rng.Int63n(int64(2*Second))))
		}
		// Horizon probe (peekMin on the wheel, heap[0] on the heap).
		if at, ok := e.NextAt(); ok {
			trace = append(trace, fmt.Sprintf("next=%d", int64(at)))
		} else {
			trace = append(trace, "next=none")
		}
		// Partial drains exercise limit-bounded cascades and migrations.
		if round%3 == 2 {
			e.Run(e.Now() + boundaries[rng.Intn(len(boundaries))] + Time(rng.Int63n(5)) - 2)
			trace = append(trace, fmt.Sprintf("seg now=%d pending=%d processed=%d",
				e.Now(), e.Pending(), e.Processed()))
			if at, ok := e.NextAt(); ok {
				trace = append(trace, fmt.Sprintf("next=%d", int64(at)))
			}
		}
	}
	e.RunAll()
	trace = append(trace, fmt.Sprintf("end now=%d pending=%d processed=%d",
		e.Now(), e.Pending(), e.Processed()))
	return trace
}

// TestWheelPeekMinExact pins peekMin against a draining oracle in targeted
// shapes: min in level 0, min only reachable through an upper-level slot
// walk (same slot, different times), and min in the overflow heap.
func TestWheelPeekMinExact(t *testing.T) {
	e := NewEngine()
	check := func(want Time) {
		t.Helper()
		got, ok := e.NextAt()
		if !ok || got != want {
			t.Fatalf("NextAt = %v,%v, want %v", got, ok, want)
		}
	}
	// Level 0.
	e.At(5, func() {})
	check(5)
	// Upper level: two events in the same level-1 slot; the later scheduled
	// earlier, so the slot list head is not the minimum.
	e2 := NewEngine()
	e2.At(1<<l0Bits+900, func() {})
	e2.At(1<<l0Bits+100, func() {})
	if got, ok := e2.NextAt(); !ok || got != 1<<l0Bits+100 {
		t.Fatalf("upper-level NextAt = %v,%v, want %v", got, ok, Time(1<<l0Bits+100))
	}
	// Overflow only.
	e3 := NewEngine()
	far := Time(1)<<horizonBits + 12345
	e3.At(far, func() {})
	if got, ok := e3.NextAt(); !ok || got != far {
		t.Fatalf("overflow NextAt = %v,%v, want %v", got, ok, far)
	}
	// Empty.
	e4 := NewEngine()
	if _, ok := e4.NextAt(); ok {
		t.Fatal("NextAt on empty engine reported an event")
	}
	// peekMin must not mutate: draining after the probe still fires in order.
	var got []Time
	e2.At(3, func() { got = append(got, e2.Now()) })
	e2.RunAll()
	if e2.Processed() != 3 {
		t.Fatalf("processed %d, want 3", e2.Processed())
	}
}
