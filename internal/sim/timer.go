package sim

// Timer is a cancelable, resettable one-shot timer bound to an Engine.
// Allocate one per long-lived deadline (a flow's RTO, a pacer's next send)
// and Reset it as the deadline moves: steady-state rearming neither
// allocates nor eagerly removes anything from the scheduler.
//
// Cancellation contract (lazy deletion): Cancel and Reset never remove the
// queued engine event. A stale occurrence is discarded when it surfaces —
// its generation no longer matches (an earlier Reset superseded it) or the
// timer is disarmed. A deadline that only moved later keeps its single
// queued event, which "chases" the deadline when it surfaces: it re-arms
// itself at the current deadline instead of firing. A timer therefore has
// at most one live-generation event queued at any time, and Reset sequences
// that only push the deadline out (TCP RTO on every ACK) enqueue nothing.
type Timer struct {
	eng *Engine
	fn  func()
	tag EventTag // checkpoint identity; Kind 0 blocks snapshots while queued

	gen      uint64 // bumped to lazily invalidate the queued event
	at       Time   // current deadline, meaningful while armed
	queuedAt Time   // when the live-generation queued event surfaces
	armed    bool   // fn will run at `at` unless canceled or reset
	queued   bool   // a live-generation engine event is outstanding
}

// NewTimer returns an unarmed timer that runs fn when it fires. The
// callback is fixed for the timer's lifetime; arm it with Reset.
func (e *Engine) NewTimer(fn func()) *Timer { return &Timer{eng: e, fn: fn} }

// NewTimerTag returns an unarmed timer carrying a checkpoint tag, so a
// snapshot taken while an occurrence is queued can name it.
func (e *Engine) NewTimerTag(tag EventTag, fn func()) *Timer {
	return &Timer{eng: e, fn: fn, tag: tag}
}

// RestoreOccurrence re-queues the timer's checkpointed occurrence on a
// freshly built engine: the event surfaces at queuedAt, the deadline is
// `deadline`, and the armed flag is restored as recorded — a canceled-but-
// queued occurrence comes back exactly as it was, so a later Reset
// chase-reuses it with the same relative ordering as the uninterrupted run.
// Must be called at most once per timer, in the checkpoint's event order.
func (tm *Timer) RestoreOccurrence(queuedAt, deadline Time, armed bool) {
	e := tm.eng
	tm.at = deadline
	tm.armed = armed
	tm.queued, tm.queuedAt = true, queuedAt
	e.seq++
	e.push(event{at: queuedAt, seq: e.seq, tgen: tm.gen, arg: tm})
}

// AtCancelable schedules fn at absolute time t and returns the controlling
// Timer. Equivalent to NewTimer followed by Reset(t).
func (e *Engine) AtCancelable(t Time, fn func()) *Timer {
	tm := e.NewTimer(fn)
	tm.Reset(t)
	return tm
}

// Armed reports whether the timer currently has a deadline set.
func (tm *Timer) Armed() bool { return tm.armed }

// When returns the current deadline; meaningful only while Armed.
func (tm *Timer) When() Time { return tm.at }

// Reset arms (or re-arms) the timer to fire at absolute time at. Resetting
// to a later deadline reuses the queued event; resetting earlier lazily
// invalidates it and queues a new one.
func (tm *Timer) Reset(at Time) {
	e := tm.eng
	if at < e.now {
		panic("sim: Timer.Reset before now")
	}
	tm.at = at
	tm.armed = true
	if tm.queued {
		if at >= tm.queuedAt {
			return // the queued event will chase the moved deadline
		}
		tm.gen++ // lazy-delete the queued later event
	}
	e.seq++
	e.push(event{at: at, seq: e.seq, tgen: tm.gen, arg: tm})
	tm.queued, tm.queuedAt = true, at
}

// Cancel disarms the timer; the queued event, if any, is lazily discarded.
// Canceling an unarmed timer is a no-op. The timer stays reusable: a later
// Reset re-arms it.
func (tm *Timer) Cancel() {
	if tm.armed {
		tm.armed = false
		tm.eng.stats.Cancels++
	}
}

// fire handles a surfaced timer event scheduled under generation gen. It
// reports whether the callback ran.
func (tm *Timer) fire(gen uint64) bool {
	e := tm.eng
	if gen != tm.gen || !tm.armed {
		if gen == tm.gen {
			tm.queued = false
		}
		e.stats.DeadPops++
		return false
	}
	if e.now < tm.at {
		// The deadline slid later since this occurrence was queued: chase.
		e.stats.Chases++
		e.seq++
		e.push(event{at: tm.at, seq: e.seq, tgen: tm.gen, arg: tm})
		tm.queuedAt = tm.at
		return false
	}
	tm.armed, tm.queued = false, false
	tm.fn()
	return true
}
