package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// The serial-vs-sharded differential model: a set of lanes (one per
// domain), each with its own rng, trace, and cancelable timer. Lane
// handlers only touch their own lane's state and only draw from their own
// rng, so per-lane draw sequences are identical whenever per-lane event
// order is — which is exactly what the sharded engine promises.
//
// Serial-vs-sharded equality needs same-instant cross-lane ties to be
// ordered identically, and the serial engine orders them by global seq
// while the sharded merge orders them by (at, born, src, seq). The lattice
// construction makes the two agree structurally: with M = 2·lanes, lane
// i's intra-lane events run at times ≡ 2i (mod M) and cross events INTO
// lane d land at times ≡ 2d+1 (mod M). Then (a) a cross arrival can never
// tie with an intra-lane event, and (b) two cross arrivals into the same
// lane at the same instant were necessarily born at different times
// (different source lanes occupy disjoint residues), so serial seq order
// equals born order equals the sharded merge order. The worker-count test
// below drops the lattice: any two sharded runs agree regardless of ties.
type shModel struct {
	lanes  []*shLane
	engOf  func(i int) *Engine
	send   func(src, dst int, at Time, fn func(any), arg any)
	window Time
	mod    Time // 0: no lattice alignment
}

type shLane struct {
	m         *shModel
	id        int
	rng       *rand.Rand
	trace     []string
	remaining int
	timer     *Timer
	onCrossFn func(any)
}

// alignTo bumps t to the smallest t' >= t with t' ≡ res (mod m.mod).
func (m *shModel) alignTo(t, res Time) Time {
	if m.mod == 0 {
		return t
	}
	return t + (res-t%m.mod+m.mod)%m.mod
}

func (l *shLane) now() Time { return l.m.engOf(l.id).Now() }

func (l *shLane) scheduleLocal(at Time) {
	l.m.engOf(l.id).At(at, func() {
		l.trace = append(l.trace, fmt.Sprintf("L@%d", l.now()))
		l.step()
	})
}

func (l *shLane) onCross(a any) {
	l.trace = append(l.trace, fmt.Sprintf("X%d@%d", a.(int), l.now()))
	l.step()
}

func (l *shLane) onTimer() {
	l.trace = append(l.trace, fmt.Sprintf("T@%d", l.now()))
	l.step()
}

// step is the lane's randomized behavior, run from every event handler.
func (l *shLane) step() {
	now := l.now()
	m := l.m
	for k := l.rng.Intn(3); k > 0 && l.remaining > 0; k-- {
		l.remaining--
		switch l.rng.Intn(5) {
		case 0, 1: // cross send with lookahead
			d := l.rng.Intn(len(m.lanes))
			at := m.alignTo(now+m.window+Time(l.rng.Int63n(4*int64(m.window))), Time(2*d+1))
			if d == l.id {
				m.engOf(l.id).At1(at, m.lanes[d].onCrossFn, l.id)
			} else {
				m.send(l.id, d, at, m.lanes[d].onCrossFn, l.id)
			}
		case 2: // timer churn: reset or cancel the lane timer
			if l.rng.Intn(4) == 0 {
				l.timer.Cancel()
			} else {
				l.timer.Reset(m.alignTo(now+Time(l.rng.Int63n(6*int64(m.window))), Time(2*l.id)))
			}
		default: // intra-lane event, any delay (below the window included)
			l.scheduleLocal(m.alignTo(now+Time(l.rng.Int63n(3*int64(m.window))), Time(2*l.id)))
		}
	}
}

// seedModel builds lanes and their initial events.
func seedModel(m *shModel, lanes int, seed int64, perLane int) {
	m.lanes = make([]*shLane, lanes)
	for i := range m.lanes {
		l := &shLane{m: m, id: i, rng: rand.New(rand.NewSource(seed*1000 + int64(i))), remaining: perLane}
		l.onCrossFn = l.onCross
		l.timer = m.engOf(i).NewTimer(l.onTimer)
		m.lanes[i] = l
		for k := 0; k < 4; k++ {
			l.scheduleLocal(m.alignTo(Time(l.rng.Int63n(8*int64(m.window))), Time(2*i)))
		}
	}
}

// runLatticeSerial runs the lattice model on one serial Engine.
func runLatticeSerial(kind QueueKind, lanes int, seed int64, window Time, horizons []Time) ([][]string, uint64) {
	e := NewEngineQueue(kind)
	m := &shModel{
		engOf:  func(int) *Engine { return e },
		send:   func(_, _ int, at Time, fn func(any), arg any) { e.At1(at, fn, arg) },
		window: window,
		mod:    Time(2 * lanes),
	}
	seedModel(m, lanes, seed, 60)
	for _, h := range horizons {
		e.Run(h)
	}
	return tracesOf(m), e.Processed()
}

// runLatticeSharded runs the same model on a ShardedEngine, one lane per
// domain.
func runLatticeSharded(kind QueueKind, lanes, workers int, seed int64, window Time, horizons []Time, lattice bool) ([][]string, uint64) {
	tr, n, _ := runLatticeShardedSteal(kind, lanes, workers, seed, window, horizons, lattice, true)
	return tr, n
}

func runLatticeShardedSteal(kind QueueKind, lanes, workers int, seed int64, window Time, horizons []Time, lattice, steal bool) ([][]string, uint64, ShardStats) {
	sh := NewShardedEngine(lanes, workers, window, kind)
	sh.SetStealing(steal)
	m := &shModel{
		engOf:  sh.Domain,
		send:   sh.Send,
		window: window,
	}
	if lattice {
		m.mod = Time(2 * lanes)
	}
	seedModel(m, lanes, seed, 60)
	for _, h := range horizons {
		sh.Run(h)
	}
	return tracesOf(m), sh.Processed(), sh.Stats()
}

func tracesOf(m *shModel) [][]string {
	out := make([][]string, len(m.lanes))
	for i, l := range m.lanes {
		out[i] = l.trace
	}
	return out
}

func compareTraces(t *testing.T, name string, want, got [][]string) {
	t.Helper()
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("%s: lane %d trace lengths differ: %d vs %d", name, i, len(want[i]), len(got[i]))
		}
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("%s: lane %d diverges at %d: %q vs %q", name, i, j, want[i][j], got[i][j])
			}
		}
	}
}

// TestDifferentialSerialSharded pins the tentpole determinism claim at the
// engine level: the lattice model produces byte-identical per-lane traces
// on the serial engine and on the sharded engine, across worker counts and
// both queue kinds.
func TestDifferentialSerialSharded(t *testing.T) {
	const lanes = 5
	const window = Time(1000)
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			hrng := rand.New(rand.NewSource(seed + 77))
			horizons := make([]Time, 0, 7)
			h := Time(0)
			for i := 0; i < 6; i++ {
				h += Time(hrng.Int63n(20 * int64(window)))
				horizons = append(horizons, h)
			}
			horizons = append(horizons, h+Second)

			serialTr, serialN := runLatticeSerial(QueueWheel, lanes, seed, window, horizons)
			heapTr, heapN := runLatticeSerial(QueueHeap, lanes, seed, window, horizons)
			compareTraces(t, "serial wheel vs heap", serialTr, heapTr)
			if serialN != heapN {
				t.Fatalf("serial processed: wheel=%d heap=%d", serialN, heapN)
			}
			for _, workers := range []int{1, 2, 3, lanes} {
				for _, kind := range []QueueKind{QueueWheel, QueueHeap} {
					tr, n := runLatticeSharded(kind, lanes, workers, seed, window, horizons, true)
					name := fmt.Sprintf("sharded workers=%d kind=%d", workers, kind)
					compareTraces(t, name, serialTr, tr)
					if n != serialN {
						t.Fatalf("%s: processed %d, serial %d", name, n, serialN)
					}
				}
			}
		})
	}
}

// TestShardedWorkerCountDeterminism drops the lattice alignment (arbitrary
// cross-domain tie patterns) and requires any two sharded runs to agree
// regardless of worker count: the (at, born, src, seq) merge order is a
// total order independent of scheduling.
func TestShardedWorkerCountDeterminism(t *testing.T) {
	const lanes = 6
	const window = Time(777)
	for seed := int64(1); seed <= 8; seed++ {
		horizons := []Time{5 * window, 40 * window, Second}
		base, baseN := runLatticeSharded(QueueWheel, lanes, 1, seed, window, horizons, false)
		for _, workers := range []int{2, 3, lanes} {
			tr, n := runLatticeSharded(QueueWheel, lanes, workers, seed, window, horizons, false)
			compareTraces(t, fmt.Sprintf("seed %d workers 1 vs %d", seed, workers), base, tr)
			if n != baseN {
				t.Fatalf("seed %d: processed differs: %d vs %d", seed, baseN, n)
			}
		}
	}
}

// TestShardedGlobalEvents pins the Global contract: callbacks run between
// windows at exactly their timestamp, never straddled by a window (every
// domain has advanced to just short of the global when it fires), and the
// coordinator clock lands on the horizon afterwards.
func TestShardedGlobalEvents(t *testing.T) {
	sh := NewShardedEngine(3, 2, 100, QueueWheel)
	var fired []Time
	// Domain traffic past the global instants, including cross sends.
	for d := 0; d < 3; d++ {
		d := d
		sh.Domain(d).At(0, func() {
			var tick func()
			tick = func() {
				e := sh.Domain(d)
				if e.Now() >= 2000 {
					return
				}
				dst := (d + 1) % 3
				sh.Send(d, dst, e.Now()+150, func(any) {}, nil)
				e.After(40, tick)
			}
			tick()
		})
	}
	for _, at := range []Time{500, 500, 1250} {
		at := at
		sh.Global(at, func() {
			if sh.GlobalNow() != at {
				t.Fatalf("global clock %v, want %v", sh.GlobalNow(), at)
			}
			for i := 0; i < sh.Domains(); i++ {
				if n := sh.Domain(i).Now(); n >= at {
					t.Fatalf("domain %d at %v not strictly before global %v", i, n, at)
				}
			}
			fired = append(fired, at)
		})
	}
	end := sh.Run(3000)
	if end != 3000 || sh.GlobalNow() != 3000 {
		t.Fatalf("run ended at %v (global clock %v), want 3000", end, sh.GlobalNow())
	}
	want := []Time{500, 500, 1250}
	if len(fired) != len(want) {
		t.Fatalf("globals fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("globals fired %v, want %v", fired, want)
		}
	}
	st := sh.Stats()
	if st.Windows == 0 || st.CrossEvents == 0 {
		t.Fatalf("expected windows and cross events, got %+v", st)
	}
}

// TestShardedAdaptiveWindow pins the adaptive extension: with purely
// domain-local traffic no round ever produces a cross-domain send, so the
// coordinator keeps widening the window and the barrier count falls far
// below two-per-base-window. A global event mid-run caps the extension: it
// must still fire at its exact timestamp with every domain strictly before
// it, and a horizon that is not a multiple of the window must land exactly.
func TestShardedAdaptiveWindow(t *testing.T) {
	const window = Time(100)
	const horizon = Time(123_457) // deliberately not window-aligned
	sh := NewShardedEngine(4, 2, window, QueueWheel)
	ticks := make([]int, 4)
	for d := 0; d < 4; d++ {
		d := d
		var tick func()
		tick = func() {
			ticks[d]++
			if e := sh.Domain(d); e.Now() < horizon-50 {
				e.After(40, tick)
			}
		}
		sh.Domain(d).At(0, func() { tick() })
	}
	globalFired := false
	sh.Global(60_000, func() {
		if sh.GlobalNow() != 60_000 {
			t.Errorf("global clock %v, want 60000", sh.GlobalNow())
		}
		for i := 0; i < sh.Domains(); i++ {
			if n := sh.Domain(i).Now(); n >= 60_000 {
				t.Errorf("domain %d at %v not strictly before the global", i, n)
			}
		}
		globalFired = true
	})
	if end := sh.Run(horizon); end != horizon {
		t.Fatalf("run ended at %v, want %v", end, horizon)
	}
	if !globalFired {
		t.Fatal("global event never fired")
	}
	for d, n := range ticks {
		if n == 0 {
			t.Fatalf("domain %d ran no events", d)
		}
	}
	st := sh.Stats()
	if st.Extensions == 0 {
		t.Fatalf("local-only traffic produced no window extensions: %+v", st)
	}
	// Without extensions the run costs 2 barriers per base window; with them
	// most windows collapse into extension rounds at 1 barrier each.
	naive := 2 * uint64(horizon/window)
	if st.Barriers >= naive {
		t.Fatalf("adaptive windows did not reduce barriers: %d >= naive %d (%+v)", st.Barriers, naive, st)
	}
	if st.CrossEvents != 0 {
		t.Fatalf("local-only traffic counted %d cross events", st.CrossEvents)
	}
}

// TestShardedStealingEquivalence pins the SetStealing contract: work
// stealing changes which worker runs a domain, never what the domain
// computes — traces and event counts match with stealing on and off, and
// the adaptive-extension verdict (a function of the model, not of
// scheduling) matches too.
func TestShardedStealingEquivalence(t *testing.T) {
	const lanes = 6
	const window = Time(777)
	horizons := []Time{5 * window, 40 * window, Second}
	for seed := int64(1); seed <= 4; seed++ {
		on, onN, onSt := runLatticeShardedSteal(QueueWheel, lanes, 3, seed, window, horizons, false, true)
		off, offN, offSt := runLatticeShardedSteal(QueueWheel, lanes, 3, seed, window, horizons, false, false)
		compareTraces(t, fmt.Sprintf("seed %d stealing on vs off", seed), on, off)
		if onN != offN {
			t.Fatalf("seed %d: processed differs: %d vs %d", seed, onN, offN)
		}
		if offSt.Steals != 0 {
			t.Fatalf("seed %d: stealing off recorded %d steals", seed, offSt.Steals)
		}
		if onSt.Windows != offSt.Windows || onSt.Extensions != offSt.Extensions || onSt.CrossEvents != offSt.CrossEvents {
			t.Fatalf("seed %d: deterministic stats diverge: on=%+v off=%+v", seed, onSt, offSt)
		}
	}
}

// TestShardedSendLookaheadPanics pins the lookahead contract.
func TestShardedSendLookaheadPanics(t *testing.T) {
	sh := NewShardedEngine(2, 1, 1000, QueueWheel)
	sh.Domain(0).At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("Send inside the lookahead window did not panic")
			}
		}()
		sh.Send(0, 1, 999, func(any) {}, nil)
	})
	sh.Run(10)
}
