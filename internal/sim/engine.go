// Package sim provides a deterministic discrete-event simulation engine with
// nanosecond resolution. It is the foundation of the packet-level RDCN
// simulator: every link transmission, queue drain, circuit reconfiguration,
// and transport timer is an event scheduled on an Engine.
//
// Determinism: events scheduled for the same instant fire in the order they
// were scheduled (FIFO tie-breaking via a monotonic sequence number), so a
// simulation run is reproducible bit-for-bit given the same inputs and seed.
//
// Two scheduler implementations back an Engine: a hierarchical timing wheel
// (the default — amortized O(1) schedule/pop, see wheel.go) and the
// reference binary heap (heap.go), kept behind NewEngineQueue for
// differential testing. Both honor the same (at, seq) contract, pinned by
// the randomized differential tests in this package and in
// internal/harness.
package sim

import (
	"fmt"
)

// Time is a simulated instant in nanoseconds since the start of the run.
type Time int64

// maxTime is the RunAll horizon: later than any schedulable event.
const maxTime = Time(1<<63 - 1)

// Duration aliases for readable configuration.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as a float64 number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// event is a scheduled callback: a plain closure (fn), a pre-bound handler
// with an argument (fn1/arg), or a cancelable timer occurrence (arg holds
// the *Timer, tgen the timer generation it was scheduled under). The
// two-field form exists for the packet hot path: a port can schedule
// "deliver packet p" with a function value created once at construction
// time, so the steady-state event loop allocates nothing (a *Packet stored
// in an interface does not escape to the heap).
type event struct {
	at   Time
	seq  uint64
	tgen uint64
	fn   func()
	fn1  func(any)
	arg  any
	tag  EventTag
}

// EventTag is a pure-data description of what a scheduled closure does, so a
// checkpoint can re-encode pending events as descriptors and rebuild the
// closures on restore. Kind 0 means untagged: the event works normally but a
// checkpoint that finds one pending refuses to snapshot (it cannot promise to
// rebuild a closure it cannot name). A and B are model-defined operands
// (component ids); any richer payload (a packet) travels through the event's
// arg and is serialized by the owning layer.
type EventTag struct {
	Kind uint8
	A, B int32
}

// EventDesc is one pending event re-encoded for a checkpoint: the closure is
// gone, only its tag, firing time, and argument remain. For timer events the
// descriptor captures the full occurrence — when the queued event surfaces
// (At), the timer's current deadline, and whether it is armed — so a restore
// reproduces the lazy-deletion state machine exactly (a canceled-but-queued
// occurrence must survive so a later Reset chase-reuses it just as the
// uninterrupted run would).
type EventDesc struct {
	At  Time
	Tag EventTag
	Arg any // fn1 argument (nil for plain closures and timers)

	Timer    bool
	Armed    bool // timer armed flag at snapshot time
	Deadline Time // timer deadline (fires then if armed), when Timer
}

// QueueKind selects the scheduler implementation backing an Engine.
type QueueKind int

const (
	// QueueWheel is the hierarchical timing wheel (default): amortized
	// O(1) schedule/pop with zero steady-state allocations.
	QueueWheel QueueKind = iota
	// QueueHeap is the reference binary heap, kept for differential
	// testing and as a fallback.
	QueueHeap
)

// SchedStats exposes scheduler internals for throughput diagnostics
// (cmd/ucmpbench -schedstats).
type SchedStats struct {
	// PendingHighWater is the maximum number of queued events observed.
	PendingHighWater int
	// Cascades counts events re-distributed from a higher wheel level into
	// a lower one (zero on the heap engine).
	Cascades uint64
	// OverflowPushes counts events scheduled beyond the wheel horizon into
	// the overflow heap (zero on the heap engine).
	OverflowPushes uint64
	// Cancels counts Timer.Cancel calls that disarmed a live timer.
	Cancels uint64
	// DeadPops counts queued timer events discarded by lazy deletion
	// (canceled or superseded by an earlier Reset).
	DeadPops uint64
	// Chases counts timer events that surfaced before their slid deadline
	// and re-armed themselves at the new one.
	Chases uint64
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; a simulation is a sequential program over virtual time.
type Engine struct {
	now   Time
	seq   uint64
	wheel *timingWheel // nil when the heap backs the engine
	heap  eventHeap
	// processed counts events executed, exposed for tests and throughput
	// reporting. Lazily-deleted timer events do not count: no callback ran.
	processed uint64
	stopped   bool
	stats     SchedStats
}

// NewEngine returns an engine positioned at time zero, backed by the
// timing wheel.
func NewEngine() *Engine { return NewEngineQueue(QueueWheel) }

// NewEngineQueue returns an engine backed by the given scheduler.
func NewEngineQueue(kind QueueKind) *Engine {
	e := &Engine{}
	if kind == QueueHeap {
		e.heap = make(eventHeap, 0, 1024)
	} else {
		e.wheel = newTimingWheel()
	}
	return e
}

// Queue reports which scheduler backs the engine.
func (e *Engine) Queue() QueueKind {
	if e.wheel != nil {
		return QueueWheel
	}
	return QueueHeap
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting in the queue, including
// lazily-deleted timer events that have not surfaced yet.
func (e *Engine) Pending() int {
	if e.wheel != nil {
		return e.wheel.size
	}
	return len(e.heap)
}

// SchedStats returns scheduler internals accumulated since construction.
func (e *Engine) SchedStats() SchedStats {
	s := e.stats
	if e.wheel != nil {
		s.Cascades = e.wheel.cascades
		s.OverflowPushes = e.wheel.overflowPushes
	}
	return s
}

// NextAt returns the time of the earliest pending event without removing
// it, and false when the queue is empty. Lazily-deleted timer events count:
// they still occupy the queue and bound how far the engine must run to
// drain it. The probe never mutates the queue, so the sharded coordinator
// can call it on idle domains between windows.
func (e *Engine) NextAt() (Time, bool) {
	if e.wheel != nil {
		return e.wheel.peekMin()
	}
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].at, true
}

// push inserts an event into whichever queue backs the engine.
func (e *Engine) push(ev event) {
	if e.wheel != nil {
		e.wheel.push(ev)
	} else {
		e.heap.push(ev)
	}
	if p := e.Pending(); p > e.stats.PendingHighWater {
		e.stats.PendingHighWater = p
	}
}

// popLE removes and returns the minimum event if its time is <= limit.
func (e *Engine) popLE(limit Time) (event, bool) {
	if e.wheel != nil {
		return e.wheel.popLE(limit)
	}
	if len(e.heap) == 0 || e.heap[0].at > limit {
		return event{}, false
	}
	return e.heap.pop(), true
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a logic error in a discrete-event model.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// At1 schedules fn(arg) at absolute time t. Unlike At with a capturing
// closure, a pre-bound fn plus a pointer-typed arg schedules without
// allocating, which is what the per-packet hot path uses.
func (e *Engine) At1(t Time, fn func(any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn1: fn, arg: arg})
}

// After1 schedules fn(arg) d nanoseconds from now.
func (e *Engine) After1(d Time, fn func(any), arg any) { e.At1(e.now+d, fn, arg) }

// AtTag schedules fn at absolute time t with a checkpoint tag describing it.
func (e *Engine) AtTag(t Time, tag EventTag, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn, tag: tag})
}

// At1Tag schedules fn(arg) at absolute time t with a checkpoint tag.
func (e *Engine) At1Tag(t Time, tag EventTag, fn func(any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn1: fn, arg: arg, tag: tag})
}

// SnapshotEvents drains the queue, re-encodes every pending event as an
// EventDesc in (at, seq) order, and rebuilds the queue so the continuing run
// is untouched. Dead timer occurrences (generation superseded by a Reset)
// are re-queued but produce no descriptor: on a restored engine the timers
// start at generation zero with at most one live occurrence each, and the
// only divergence is the DeadPops diagnostic counter.
//
// An untagged pending event (or timer) makes the snapshot unusable — the
// restore side could not rebuild its closure — so an error is returned; the
// queue is still rebuilt and the engine remains fully usable.
func (e *Engine) SnapshotEvents() ([]EventDesc, error) {
	drained := make([]event, 0, e.Pending())
	for {
		ev, ok := e.popLE(maxTime)
		if !ok {
			break
		}
		drained = append(drained, ev)
	}
	descs := make([]EventDesc, 0, len(drained))
	var err error
	for i := range drained {
		ev := &drained[i]
		switch {
		case ev.fn != nil, ev.fn1 != nil:
			if ev.tag.Kind == 0 && err == nil {
				err = fmt.Errorf("sim: untagged pending event at %v cannot be checkpointed", ev.at)
			}
			descs = append(descs, EventDesc{At: ev.at, Tag: ev.tag, Arg: ev.arg})
		default:
			tm := ev.arg.(*Timer)
			if ev.tgen != tm.gen {
				continue // lazily-deleted occurrence: never fires a callback
			}
			if tm.tag.Kind == 0 && err == nil {
				err = fmt.Errorf("sim: untagged pending timer at %v cannot be checkpointed", ev.at)
			}
			descs = append(descs, EventDesc{
				At: ev.at, Tag: tm.tag,
				Timer: true, Armed: tm.armed, Deadline: tm.at,
			})
		}
	}
	// Rebuild the queue for the continuing run: every drained event goes
	// back verbatim — original seqs and generations, dead occurrences
	// included (a timer's queued bookkeeping depends on its occurrence
	// eventually surfacing). Re-pushing in (at, seq) order preserves pop
	// order on both backends; only cascade/high-water diagnostics shift.
	if e.wheel != nil {
		fresh := newTimingWheel()
		fresh.cascades = e.wheel.cascades
		fresh.overflowPushes = e.wheel.overflowPushes
		e.wheel = fresh
	} else {
		e.heap = e.heap[:0]
	}
	for i := range drained {
		e.push(drained[i])
	}
	return descs, err
}

// Restore positions a freshly built engine at a checkpoint's virtual time
// and processed-event count. Pending events are replayed separately by the
// owning layers (via the tagged scheduling calls and Timer.RestoreOccurrence),
// receiving fresh sequence numbers in recorded (at, seq) order — which
// preserves same-instant tie-breaking exactly, since all post-restore
// scheduling gets strictly higher sequence numbers, just as it would have in
// the uninterrupted run.
func (e *Engine) Restore(now Time, processed uint64) {
	e.now = now
	e.processed = processed
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// dispatch runs the event's callback, reporting whether one actually ran
// (lazily-deleted timer events surface here and are discarded).
func (e *Engine) dispatch(ev *event) bool {
	if ev.fn != nil {
		ev.fn()
		return true
	}
	if ev.fn1 != nil {
		ev.fn1(ev.arg)
		return true
	}
	return ev.arg.(*Timer).fire(ev.tgen)
}

// Run executes events in timestamp order until the queue is empty or the
// next event is strictly after `until`. It returns the virtual time reached:
// `until` if the horizon was hit, otherwise the time of the last event.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for e.Pending() > 0 && !e.stopped {
		ev, ok := e.popLE(until)
		if !ok {
			e.now = until
			return e.now
		}
		e.now = ev.at
		if e.dispatch(&ev) {
			e.processed++
		}
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	return e.now
}

// RunAll executes every pending event regardless of horizon.
func (e *Engine) RunAll() Time {
	e.stopped = false
	for e.Pending() > 0 && !e.stopped {
		ev, ok := e.popLE(maxTime)
		if !ok {
			break
		}
		e.now = ev.at
		if e.dispatch(&ev) {
			e.processed++
		}
	}
	return e.now
}
