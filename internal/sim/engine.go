// Package sim provides a deterministic discrete-event simulation engine with
// nanosecond resolution. It is the foundation of the packet-level RDCN
// simulator: every link transmission, queue drain, circuit reconfiguration,
// and transport timer is an event scheduled on an Engine.
//
// Determinism: events scheduled for the same instant fire in the order they
// were scheduled (FIFO tie-breaking via a monotonic sequence number), so a
// simulation run is reproducible bit-for-bit given the same inputs and seed.
package sim

import (
	"fmt"
)

// Time is a simulated instant in nanoseconds since the start of the run.
type Time int64

// Duration aliases for readable configuration.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as a float64 number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// event is a scheduled callback: either a plain closure (fn) or a
// pre-bound handler with an argument (fn1/arg). The two-field form exists
// for the packet hot path: a port can schedule "deliver packet p" with a
// function value created once at construction time, so the steady-state
// event loop allocates nothing (a *Packet stored in an interface does not
// escape to the heap).
type event struct {
	at  Time
	seq uint64
	fn  func()
	fn1 func(any)
	arg any
}

// call dispatches the event's callback.
func (ev *event) call() {
	if ev.fn1 != nil {
		ev.fn1(ev.arg)
		return
	}
	ev.fn()
}

// eventHeap is a typed min-heap ordered by (at, seq). It hand-rolls sift-up
// and sift-down instead of using container/heap: the interface{}-based API
// boxes every event on push (one heap allocation per scheduled event) and
// pays dynamic dispatch per comparison, which dominated the event-loop
// profile. The typed version schedules with zero allocations once the
// backing array has grown to the simulation's high-water mark.
type eventHeap []event

// less orders events by time, then by scheduling order (FIFO tie-break).
func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push inserts ev, restoring the heap invariant by sifting it up.
func (h *eventHeap) push(ev event) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

// pop removes and returns the minimum event. The vacated tail slot is
// cleared so the heap does not pin the popped callback's closure.
func (h *eventHeap) pop() event {
	q := *h
	n := len(q) - 1
	ev := q[0]
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	*h = q
	// Sift the relocated tail element down to its place.
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return ev
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; a simulation is a sequential program over virtual time.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	// processed counts events executed, exposed for tests and throughput
	// reporting.
	processed uint64
	stopped   bool
}

// NewEngine returns an engine positioned at time zero.
func NewEngine() *Engine {
	return &Engine{events: make(eventHeap, 0, 1024)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a logic error in a discrete-event model.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// At1 schedules fn(arg) at absolute time t. Unlike At with a capturing
// closure, a pre-bound fn plus a pointer-typed arg schedules without
// allocating, which is what the per-packet hot path uses.
func (e *Engine) At1(t Time, fn func(any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, fn1: fn, arg: arg})
}

// After1 schedules fn(arg) d nanoseconds from now.
func (e *Engine) After1(d Time, fn func(any), arg any) { e.At1(e.now+d, fn, arg) }

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty or the
// next event is strictly after `until`. It returns the virtual time reached:
// `until` if the horizon was hit, otherwise the time of the last event.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > until {
			e.now = until
			return e.now
		}
		ev := e.events.pop()
		e.now = ev.at
		e.processed++
		ev.call()
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	return e.now
}

// RunAll executes every pending event regardless of horizon.
func (e *Engine) RunAll() Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := e.events.pop()
		e.now = ev.at
		e.processed++
		ev.call()
	}
	return e.now
}
