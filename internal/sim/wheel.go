package sim

import "math/bits"

// timingWheel is a hierarchical timing wheel in the Linux-kernel/Netty
// style, with a widened ground level tuned for packet simulation: level 0
// has l0Slots single-nanosecond slots (a 4.1 µs window — wide enough that
// serialization, propagation and queue-drain events insert directly with no
// cascading), and three 256-slot upper levels covering 2^l0Bits·256^l ns
// each. The horizon is 2^36 ns ≈ 69 s past the cursor; farther events park
// in an overflow (at, seq) heap and migrate in when the cursor reaches
// their window.
//
// Determinism. An event at absolute time t goes to the level of the
// highest bit-group (level-0 bits, else byte) in which t differs from the
// wheel cursor `cur`, into the slot indexed by t's value in that group.
// This placement gives two invariants that make slot FIFO order equal
// (at, seq) order:
//
//  1. Single-prefix slots: all events in a slot at level l share the value
//     of t >> shift(l+1). In particular every event in a level-0 slot has
//     the same absolute time. (Two times with equal group l but different
//     higher bits cannot coexist: the cursor never passes a pending event,
//     so when the later one was inserted its higher bits matched the
//     cursor's, which still bounded the earlier one.)
//  2. Cascade-before-insert: an upper slot is cascaded into lower levels
//     exactly when the cursor enters its window, and any direct insertion
//     of a time in that window can only happen afterwards (the placement
//     rule sends it to a higher level until then). Appends therefore occur
//     in ascending seq order, and popping slot heads yields (at, seq)
//     order.
//
// Scheduling and popping are amortized O(1): insertion is a bitmap-set and
// a list append; level-0 scans go through a one-word summary bitmap (64
// slot-words, one summary bit each), and an event cascades at most
// upLevels times over its lifetime — and in the common near-future case,
// never. Slot lists are intrusive singly-linked lists over a pooled node
// arena with a free list, so steady-state scheduling allocates nothing
// once the arena has grown to the simulation's high-water mark.
const (
	l0Bits  = 12
	l0Slots = 1 << l0Bits // 4096 ns ground window
	l0Mask  = l0Slots - 1
	l0Words = l0Slots / 64

	wheelBits  = 8
	wheelSlots = 1 << wheelBits // 256 slots per upper level
	wheelMask  = wheelSlots - 1
	wheelWords = wheelSlots / 64
	upLevels   = 3

	horizonBits = l0Bits + upLevels*wheelBits // 36: ~69 s
)

// wslot is one slot's list: head/tail indices into the node arena, -1 empty.
type wslot struct {
	head, tail int32
}

// wnode is one queued event plus its intrusive list link (also reused as
// the free-list link).
type wnode struct {
	ev   event
	next int32
}

type timingWheel struct {
	// cur is the wheel cursor: never ahead of the earliest pending event,
	// and never behind the engine's committed virtual time at a point where
	// an insertion can happen. All wheel-resident events share cur's
	// top-level window; everything later sits in overflow.
	cur  Time
	size int // pending events, overflow included

	slots0 [l0Slots]wslot
	occ0   [l0Words]uint64
	sum0   uint64 // bit w set <=> occ0[w] != 0

	slots [upLevels][wheelSlots]wslot
	occ   [upLevels][wheelWords]uint64

	nodes []wnode
	free  int32 // free-list head, -1 when empty

	overflow eventHeap

	// stats
	cascades       uint64
	overflowPushes uint64
}

func newTimingWheel() *timingWheel {
	w := &timingWheel{free: -1}
	for s := range w.slots0 {
		w.slots0[s] = wslot{head: -1, tail: -1}
	}
	for l := range w.slots {
		for s := range w.slots[l] {
			w.slots[l][s] = wslot{head: -1, tail: -1}
		}
	}
	w.nodes = make([]wnode, 0, 1024)
	return w
}

// alloc takes a node from the free list, growing the arena if needed.
func (w *timingWheel) alloc() int32 {
	if n := w.free; n >= 0 {
		w.free = w.nodes[n].next
		return n
	}
	w.nodes = append(w.nodes, wnode{})
	return int32(len(w.nodes) - 1)
}

// release clears the node (so it does not pin the callback's closure or
// argument) and returns it to the free list.
func (w *timingWheel) release(n int32) {
	w.nodes[n] = wnode{ev: event{}, next: w.free}
	w.free = n
}

// placeNode links node n into the slot its event time selects relative to
// the current cursor. The caller guarantees ev.at is within the wheel
// horizon (same top-level window as cur).
func (w *timingWheel) placeNode(n int32) {
	t := w.nodes[n].ev.at
	d := uint64(t ^ w.cur)
	w.nodes[n].next = -1
	if d < l0Slots {
		slot := int(uint64(t)) & l0Mask
		sl := &w.slots0[slot]
		if sl.tail >= 0 {
			w.nodes[sl.tail].next = n
		} else {
			sl.head = n
			w.occ0[slot>>6] |= 1 << (uint(slot) & 63)
			w.sum0 |= 1 << (uint(slot) >> 6)
		}
		sl.tail = n
		return
	}
	level := (bits.Len64(d) - l0Bits - 1) >> 3
	slot := int(uint64(t)>>(l0Bits+level*wheelBits)) & wheelMask
	sl := &w.slots[level][slot]
	if sl.tail >= 0 {
		w.nodes[sl.tail].next = n
	} else {
		sl.head = n
		w.occ[level][slot>>6] |= 1 << (uint(slot) & 63)
	}
	sl.tail = n
}

// push inserts an event. The engine guarantees ev.at >= engine.now >= cur.
func (w *timingWheel) push(ev event) {
	w.size++
	if uint64(ev.at^w.cur) >= 1<<horizonBits {
		w.overflow.push(ev)
		w.overflowPushes++
		return
	}
	n := w.alloc()
	w.nodes[n].ev = ev
	w.placeNode(n)
}

// scan0 returns the first occupied level-0 slot index >= from, going
// through the summary bitmap so an empty ground level costs two words.
func (w *timingWheel) scan0(from int) (int, bool) {
	word := from >> 6
	if m := w.occ0[word] &^ (1<<(uint(from)&63) - 1); m != 0 {
		return word<<6 + bits.TrailingZeros64(m), true
	}
	rest := w.sum0 &^ (uint64(1)<<uint(word+1) - 1)
	if rest == 0 {
		return 0, false
	}
	word = bits.TrailingZeros64(rest)
	return word<<6 + bits.TrailingZeros64(w.occ0[word]), true
}

// scanUp returns the first occupied slot index >= from at upper level l.
func (w *timingWheel) scanUp(l, from int) (int, bool) {
	if from >= wheelSlots {
		return 0, false
	}
	word := from >> 6
	m := w.occ[l][word] &^ (1<<(uint(from)&63) - 1)
	for {
		if m != 0 {
			return word<<6 + bits.TrailingZeros64(m), true
		}
		word++
		if word >= wheelWords {
			return 0, false
		}
		m = w.occ[l][word]
	}
}

// cascade redistributes an upper level/slot list into lower levels. The
// caller has just advanced cur to the slot's window base, so every event
// lands strictly below level l.
func (w *timingWheel) cascade(l, slot int) {
	sl := &w.slots[l][slot]
	n := sl.head
	sl.head, sl.tail = -1, -1
	w.occ[l][slot>>6] &^= 1 << (uint(slot) & 63)
	for n >= 0 {
		next := w.nodes[n].next
		w.placeNode(n)
		w.cascades++
		n = next
	}
}

// migrate moves the overflow events of the next top-level window into the
// wheels. Only called when every wheel level is empty, so list order in
// the target slots is exactly the (at, seq) order the heap pops in.
func (w *timingWheel) migrate() {
	h := w.overflow[0].at
	if base := h &^ Time(l0Mask); base > w.cur {
		w.cur = base
	}
	win := uint64(h) >> horizonBits
	for len(w.overflow) > 0 && uint64(w.overflow[0].at)>>horizonBits == win {
		n := w.alloc()
		w.nodes[n].ev = w.overflow.pop()
		w.placeNode(n)
	}
}

// peekMin returns the time of the earliest pending event without mutating
// any wheel state — no cursor advance, no cascading, no overflow
// migration. The sharded coordinator probes domains with it between
// windows; a mutating probe (popLE at a far horizon) could advance the
// cursor past events merged in later and break the "cursor never passes a
// pending event" invariant.
//
// Why the first occupied slot at the lowest occupied upper level holds the
// global minimum: every wheel event matches the cursor in all bit groups
// above its level and exceeds the cursor's value in its own group (the
// cursor never passes a pending event). Comparing a level-l event with a
// level-(l+1) event, both match cur above group l+1; the level-l event
// equals cur in group l+1 while the level-(l+1) event exceeds it — so any
// lower-level event is earlier. Within one level, the slot index is the
// group value, so the first occupied slot ahead of the cursor bounds all
// others; events inside one slot differ only below the group, hence the
// list walk for the exact minimum. Overflow events live in a later
// top-level window than everything wheel-resident.
func (w *timingWheel) peekMin() (Time, bool) {
	if w.size == 0 {
		return 0, false
	}
	if s, ok := w.scan0(int(uint64(w.cur)) & l0Mask); ok {
		return w.cur&^Time(l0Mask) | Time(s), true
	}
	for l := 0; l < upLevels; l++ {
		shift := uint(l0Bits + l*wheelBits)
		idx := int(uint64(w.cur)>>shift) & wheelMask
		s, ok := w.scanUp(l, idx+1)
		if !ok {
			continue
		}
		min := maxTime
		for n := w.slots[l][s].head; n >= 0; n = w.nodes[n].next {
			if at := w.nodes[n].ev.at; at < min {
				min = at
			}
		}
		return min, true
	}
	return w.overflow[0].at, true
}

// popLE removes and returns the earliest event if its time is <= limit.
// Cursor advancement (and with it cascading/migration) is bounded by
// limit, so a horizon probe never moves the cursor past the engine's
// committed time.
func (w *timingWheel) popLE(limit Time) (event, bool) {
	if w.size == 0 {
		return event{}, false
	}
	for {
		// Level 0 slots hold exact times: the first occupied slot at or
		// after the cursor offset is the global minimum.
		if s, ok := w.scan0(int(uint64(w.cur)) & l0Mask); ok {
			at := w.cur&^Time(l0Mask) | Time(s)
			if at > limit {
				return event{}, false
			}
			sl := &w.slots0[s]
			n := sl.head
			ev := w.nodes[n].ev
			sl.head = w.nodes[n].next
			if sl.head < 0 {
				sl.tail = -1
				if w.occ0[s>>6] &^= 1 << (uint(s) & 63); w.occ0[s>>6] == 0 {
					w.sum0 &^= 1 << (uint(s) >> 6)
				}
			}
			w.release(n)
			w.size--
			w.cur = at
			return ev, true
		}
		// Upper levels: cascade the next occupied slot ahead of the
		// cursor. Slots at or before the cursor's index are necessarily
		// empty (their windows are in the past or already cascaded).
		advanced := false
		for l := 0; l < upLevels; l++ {
			shift := uint(l0Bits + l*wheelBits)
			idx := int(uint64(w.cur)>>shift) & wheelMask
			s, ok := w.scanUp(l, idx+1)
			if !ok {
				continue
			}
			base := w.cur&^(Time(1)<<(shift+wheelBits)-1) | Time(s)<<shift
			if base > limit {
				return event{}, false
			}
			w.cur = base
			w.cascade(l, s)
			advanced = true
			break
		}
		if advanced {
			continue
		}
		// Wheels exhausted: the overflow heap holds the next window.
		if len(w.overflow) == 0 {
			return event{}, false
		}
		if w.overflow[0].at > limit {
			return event{}, false
		}
		w.migrate()
	}
}
