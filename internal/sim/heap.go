package sim

// eventHeap is a typed min-heap ordered by (at, seq). It hand-rolls sift-up
// and sift-down instead of using container/heap: the interface{}-based API
// boxes every event on push (one heap allocation per scheduled event) and
// pays dynamic dispatch per comparison. It remains the engine's reference
// scheduler (NewEngineQueue(QueueHeap)) — the differential tests pin the
// timing wheel against it — and doubles as the wheel's overflow store for
// events beyond the wheel horizon.
type eventHeap []event

// less orders events by time, then by scheduling order (FIFO tie-break).
func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push inserts ev, restoring the heap invariant by sifting it up.
func (h *eventHeap) push(ev event) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

// pop removes and returns the minimum event. The vacated tail slot is
// cleared so the heap does not pin the popped callback's closure.
func (h *eventHeap) pop() event {
	q := *h
	n := len(q) - 1
	ev := q[0]
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	*h = q
	// Sift the relocated tail element down to its place.
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return ev
}
