package sim

import "testing"

func timerEngines(t *testing.T, f func(t *testing.T, e *Engine)) {
	t.Helper()
	for _, kind := range []QueueKind{QueueWheel, QueueHeap} {
		t.Run(queueName(kind), func(t *testing.T) { f(t, NewEngineQueue(kind)) })
	}
}

func TestTimerFires(t *testing.T) {
	timerEngines(t, func(t *testing.T, e *Engine) {
		fired := 0
		tm := e.AtCancelable(100, func() { fired++ })
		if !tm.Armed() || tm.When() != 100 {
			t.Fatalf("armed=%v when=%v, want true/100", tm.Armed(), tm.When())
		}
		e.RunAll()
		if fired != 1 || e.Now() != 100 || tm.Armed() {
			t.Fatalf("fired=%d now=%v armed=%v", fired, e.Now(), tm.Armed())
		}
		if e.Processed() != 1 {
			t.Fatalf("processed=%d, want 1", e.Processed())
		}
	})
}

func TestTimerCancel(t *testing.T) {
	timerEngines(t, func(t *testing.T, e *Engine) {
		fired := 0
		tm := e.AtCancelable(100, func() { fired++ })
		tm.Cancel()
		if tm.Armed() {
			t.Fatal("armed after Cancel")
		}
		e.RunAll()
		if fired != 0 {
			t.Fatalf("canceled timer fired %d times", fired)
		}
		// The lazily-deleted event surfaced but did not count as processed.
		if e.Processed() != 0 {
			t.Fatalf("processed=%d, want 0", e.Processed())
		}
		st := e.SchedStats()
		if st.Cancels != 1 || st.DeadPops != 1 {
			t.Fatalf("cancels=%d deadpops=%d, want 1/1", st.Cancels, st.DeadPops)
		}
	})
}

func TestTimerResetLaterChases(t *testing.T) {
	timerEngines(t, func(t *testing.T, e *Engine) {
		var firedAt Time = -1
		tm := e.AtCancelable(100, func() { firedAt = e.Now() })
		// Slide the deadline out repeatedly: no new events should be queued.
		tm.Reset(200)
		tm.Reset(300)
		if e.Pending() != 1 {
			t.Fatalf("pending=%d after sliding resets, want 1", e.Pending())
		}
		e.RunAll()
		if firedAt != 300 || e.Now() != 300 {
			t.Fatalf("firedAt=%v now=%v, want 300", firedAt, e.Now())
		}
		if st := e.SchedStats(); st.Chases != 1 {
			t.Fatalf("chases=%d, want 1 (single re-arm at surface time)", st.Chases)
		}
	})
}

func TestTimerResetEarlier(t *testing.T) {
	timerEngines(t, func(t *testing.T, e *Engine) {
		var fired []Time
		tm := e.AtCancelable(300, func() { fired = append(fired, e.Now()) })
		tm.Reset(100)
		if e.Pending() != 2 {
			t.Fatalf("pending=%d, want 2 (old event lazily deleted)", e.Pending())
		}
		e.RunAll()
		if len(fired) != 1 || fired[0] != 100 {
			t.Fatalf("fired=%v, want [100]", fired)
		}
		if st := e.SchedStats(); st.DeadPops != 1 {
			t.Fatalf("deadpops=%d, want 1", st.DeadPops)
		}
	})
}

func TestTimerCancelThenResetSameTime(t *testing.T) {
	timerEngines(t, func(t *testing.T, e *Engine) {
		fired := 0
		tm := e.AtCancelable(100, func() { fired++ })
		tm.Cancel()
		tm.Reset(100)
		e.RunAll()
		if fired != 1 {
			t.Fatalf("fired=%d, want exactly 1", fired)
		}
	})
}

func TestTimerRearmAfterFire(t *testing.T) {
	timerEngines(t, func(t *testing.T, e *Engine) {
		var fired []Time
		var tm *Timer
		tm = e.NewTimer(func() {
			fired = append(fired, e.Now())
			if e.Now() < 300 {
				tm.Reset(e.Now() + 100)
			}
		})
		tm.Reset(100)
		e.RunAll()
		want := []Time{100, 200, 300}
		if len(fired) != len(want) {
			t.Fatalf("fired=%v, want %v", fired, want)
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("fired=%v, want %v", fired, want)
			}
		}
	})
}

func TestTimerResetInPastPanics(t *testing.T) {
	timerEngines(t, func(t *testing.T, e *Engine) {
		tm := e.NewTimer(func() {})
		e.At(100, func() {
			defer func() {
				if recover() == nil {
					t.Error("Reset in the past did not panic")
				}
			}()
			tm.Reset(50)
		})
		e.RunAll()
	})
}

// A slid deadline must not fire early even when the original occurrence
// surfaces mid-run at an instant where other events execute.
func TestTimerChaseOrdering(t *testing.T) {
	timerEngines(t, func(t *testing.T, e *Engine) {
		var trace []string
		var tm *Timer
		e.At(100, func() { trace = append(trace, "ev100"); tm.Reset(150) })
		tm = e.AtCancelable(100, func() { trace = append(trace, "timer") })
		e.At(150, func() { trace = append(trace, "ev150") })
		e.RunAll()
		// ev100 slides the deadline before the timer's occurrence surfaces;
		// the timer chases to 150 and fires after ev150 (its chase event is
		// scheduled later).
		want := []string{"ev100", "ev150", "timer"}
		if len(trace) != len(want) {
			t.Fatalf("trace=%v, want %v", trace, want)
		}
		for i := range want {
			if trace[i] != want[i] {
				t.Fatalf("trace=%v, want %v", trace, want)
			}
		}
	})
}
