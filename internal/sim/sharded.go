package sim

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// ShardedEngine is a conservative parallel discrete-event engine: a fixed
// set of Engine domains advanced concurrently in bulk-synchronous windows.
// The caller partitions the model so that every event either stays inside
// one domain (scheduled on that domain's Engine as usual) or crosses
// domains with at least `window` nanoseconds of lookahead, in which case it
// goes through Send and a per-(src,dst) mailbox.
//
// Domains are grouped onto workers: worker w statically owns the contiguous
// block [w·D/W, (w+1)·D/W) and claims its domains through an atomic cursor,
// so idle workers steal leftover domains from other blocks inside the same
// window. Which worker runs a domain never affects the outcome — domain
// execution within a window is independent and the merge order below is a
// total order — so stealing keeps determinism for free.
//
// One window executes [W, W+window) where W is the global next-event time,
// so idle stretches are skipped in one step. Within the window every domain
// runs its own events on its own timing wheel with no synchronization;
// cross-domain sends are buffered. At the barrier the buffered sends are
// merged into the destination wheels in (at, born, src, seq) order — a
// total order independent of worker count and scheduling, which makes a
// sharded run bit-for-bit reproducible and, for models whose same-instant
// cross-domain events are ordered the same way serially (see DESIGN.md
// §10), identical to the serial engine.
//
// Windows adapt: when a window executes events but buffers no cross-domain
// send, the workers extend it by another `window` nanoseconds without
// returning to the coordinator — one barrier per extension instead of a
// full coordinator round (next-event scan, publish, merge decision). The
// decision is taken inside the barrier by the last arriving worker (the
// barrier "fold"), so every participant observes the same verdict and the
// extension is deterministic.
//
// Safety argument: an event executing at te ∈ [W, W+window) can only
// schedule cross-domain work at te+window or later, which is ≥ W+window —
// strictly after the window every domain is concurrently executing. So no
// domain can receive a cross-domain event for the window it is currently
// running, and merging at the barrier preserves timestamp order. Each
// extension re-applies the same argument to [lim+1, lim+window]: a send
// from the extension round lands strictly after it, and a round that sends
// stops further extension, so no executed frontier ever passes a buffered
// event.
type ShardedEngine struct {
	doms    []*Engine
	window  Time
	workers int

	// out[src][dst] buffers cross-domain events produced by domain src for
	// domain dst during the current window. Only the worker running src
	// touches it during the run phase; only the worker merging dst drains it
	// during the merge phase (phases are barrier-separated).
	out     [][][]xevent
	scratch [][]xevent // per-dst merge buffer, reused across windows
	seqs    []uint64   // per-src cross-send sequence (monotonic over the run)

	// Per-domain send bookkeeping for the window just run: how many events
	// the domain emitted and the earliest timestamp among them. The
	// coordinator folds these into pendingCross/crossMin between windows.
	sent    []uint64
	minSent []Time

	// Static domain blocks and claim cursors: worker w owns domains
	// [base[w], base[w+1]); cur[w] is the block's claim cursor, reset inside
	// barrier folds (or by the coordinator while workers are parked).
	base  []int
	cur   []padCursor
	steal bool

	// Published by the coordinator before barrier A, read by workers after.
	lim       Time
	maxLim    Time // extension ceiling: min(until, next global - 1)
	needMerge bool
	exit      bool

	// Sub-round flags: set by workers during a run round, consumed and reset
	// by the extension fold with every other participant parked at the
	// barrier.
	roundSent atomic.Uint32
	roundRan  atomic.Uint32
	extend    bool // fold verdict, read by all participants after release

	bar barrier

	// Coordinator-only state.
	pendingCross uint64
	crossMin     Time
	running      bool
	globalNow    Time
	globals      []globalEvent
	gseq         uint64

	// Per-worker stats slots (one per worker to avoid write sharing on the
	// hot path; folded into the totals by Stats).
	mergeBatches []uint64
	mergeHW      []int
	steals       []uint64

	stats ShardStats
}

// padCursor is a cache-line padded atomic claim cursor (one per worker
// block); padding keeps concurrent claims from false-sharing.
type padCursor struct {
	next atomic.Int64
	_    [56]byte
}

// serialMergeMax is the mailbox batch size up to which the coordinator
// merges alone between windows (workers stay parked, saving a barrier);
// larger batches use the parallel merge phase.
const serialMergeMax = 256

// xevent is one cross-domain event in a mailbox. born is the sender's
// virtual time at Send; together with (src, seq) it extends the timestamp
// into the total merge order.
type xevent struct {
	at   Time
	born Time
	src  int32
	seq  uint64
	fn1  func(any)
	arg  any
	tag  EventTag
}

// globalEvent is a coordinator-run callback (see Global).
type globalEvent struct {
	at  Time
	seq uint64
	fn  func()
}

// ShardStats exposes the parallel engine's internals for throughput
// diagnostics (cmd/ucmpbench -schedstats with -shards). All fields except
// Steals are deterministic for a given model; Steals depends on runtime
// scheduling.
type ShardStats struct {
	// Windows is the number of bulk-synchronous windows executed.
	Windows uint64
	// Barriers counts barrier crossings: two per window (publish + run),
	// plus one per extension round, plus one when a parallel merge ran.
	Barriers uint64
	// Extensions counts adaptive window extensions (run rounds executed
	// beyond the first without a coordinator round).
	Extensions uint64
	// CrossEvents counts events routed through the mailboxes.
	CrossEvents uint64
	// MergeBatches counts non-empty per-destination merge batches.
	MergeBatches uint64
	// SerialMerges counts windows whose mailbox batch was small enough for
	// the coordinator to merge alone (no parallel merge phase or barrier).
	SerialMerges uint64
	// MailboxHighWater is the largest single merge batch observed.
	MailboxHighWater int
	// Steals counts domains run by a worker outside its static block. Not
	// deterministic — it reflects OS scheduling, not the model.
	Steals uint64
}

// NewShardedEngine builds a parallel engine with `domains` independent
// Engine instances (each backed by the given queue kind), run by `workers`
// goroutines (clamped to [1, domains]) in windows of `window` nanoseconds.
// The window must be a lower bound on the latency of every cross-domain
// event: Send panics when violated.
func NewShardedEngine(domains, workers int, window Time, kind QueueKind) *ShardedEngine {
	if domains < 1 {
		panic("sim: sharded engine needs at least one domain")
	}
	if window < 1 {
		panic("sim: sharded window must be at least 1ns")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > domains {
		workers = domains
	}
	s := &ShardedEngine{
		doms:         make([]*Engine, domains),
		window:       window,
		workers:      workers,
		out:          make([][][]xevent, domains),
		scratch:      make([][]xevent, domains),
		seqs:         make([]uint64, domains),
		sent:         make([]uint64, domains),
		minSent:      make([]Time, domains),
		base:         make([]int, workers+1),
		cur:          make([]padCursor, workers),
		steal:        true,
		crossMin:     maxTime,
		mergeBatches: make([]uint64, workers),
		mergeHW:      make([]int, workers),
		steals:       make([]uint64, workers),
	}
	for i := range s.doms {
		s.doms[i] = NewEngineQueue(kind)
		s.out[i] = make([][]xevent, domains)
	}
	for w := 0; w <= workers; w++ {
		s.base[w] = w * domains / workers
	}
	s.bar.init(workers)
	return s
}

// Domains returns the number of domains.
func (s *ShardedEngine) Domains() int { return len(s.doms) }

// Domain returns domain i's Engine. Before Run (model construction) it may
// be used freely; during Run only events executing inside domain i may
// touch it.
func (s *ShardedEngine) Domain(i int) *Engine { return s.doms[i] }

// Window returns the lookahead window in nanoseconds.
func (s *ShardedEngine) Window() Time { return s.window }

// Workers returns the number of worker goroutines Run uses.
func (s *ShardedEngine) Workers() int { return s.workers }

// SetStealing toggles cross-block work stealing (on by default). With it
// off, each worker runs exactly its static block — useful to isolate
// stealing in benchmarks; results are identical either way.
func (s *ShardedEngine) SetStealing(on bool) { s.steal = on }

// Send schedules fn(arg) at absolute time `at` in domain dst, from an event
// currently executing in domain src. It must satisfy the lookahead
// contract: at >= src's current time + window.
func (s *ShardedEngine) Send(src, dst int, at Time, fn func(any), arg any) {
	s.SendTag(src, dst, at, EventTag{}, fn, arg)
}

// SendTag is Send with a checkpoint tag: the tag rides the mailbox and lands
// on the destination-engine event at merge time, so a snapshot taken after
// the merge can name it.
func (s *ShardedEngine) SendTag(src, dst int, at Time, tag EventTag, fn func(any), arg any) {
	d := s.doms[src]
	if at < d.now+s.window {
		panic(fmt.Sprintf("sim: cross-domain send at %v violates lookahead (now %v + window %v)",
			at, d.now, s.window))
	}
	s.seqs[src]++
	s.out[src][dst] = append(s.out[src][dst], xevent{
		at: at, born: d.now, src: int32(src), seq: s.seqs[src], fn1: fn, arg: arg, tag: tag,
	})
	s.sent[src]++
	if at < s.minSent[src] {
		s.minSent[src] = at
	}
}

// FlushMailboxes merges every buffered cross-domain event into its
// destination engine immediately. Only valid from a Global callback (all
// workers parked). The flush is exactly the merge the next window would have
// performed: between a global and the next window's merge decision no domain
// runs and nothing else assigns destination-engine sequence numbers, so the
// batch, its canonical (at, born, src, seq) order, and the sequence numbers
// the destination engines hand out are identical either way — which is what
// lets a checkpoint global drain the mailboxes and snapshot per-domain
// queues without perturbing the run.
func (s *ShardedEngine) FlushMailboxes() {
	if s.pendingCross == 0 {
		return
	}
	s.stats.CrossEvents += s.pendingCross
	s.mergeRange(0, 0, len(s.doms))
	s.stats.SerialMerges++
	s.pendingCross = 0
	s.crossMin = maxTime
}

// RestoreGlobalNow positions a freshly built sharded engine's coordinator
// clock at a checkpoint's instant, so re-armed globals (sampling, further
// checkpoints) pass the not-before-now check.
func (s *ShardedEngine) RestoreGlobalNow(t Time) { s.globalNow = t }

// Global schedules fn at absolute time `at` on the coordinator, outside any
// domain. Global callbacks run between windows with every worker parked at
// the barrier, so they may read (and carefully write) cross-domain state —
// the harness uses them for fabric-wide sampling. Windows never straddle a
// global's timestamp, and adaptive extension never crosses one. Global may
// be called before Run or from within a global callback, not from domain
// events.
func (s *ShardedEngine) Global(at Time, fn func()) {
	if at < s.globalNow {
		panic(fmt.Sprintf("sim: scheduling global event at %v before now %v", at, s.globalNow))
	}
	s.gseq++
	s.globals = append(s.globals, globalEvent{at: at, seq: s.gseq, fn: fn})
}

// GlobalNow returns the coordinator's virtual time: the timestamp of the
// running global callback, or the horizon reached by the last Run.
func (s *ShardedEngine) GlobalNow() Time { return s.globalNow }

// Processed sums the events executed across all domains.
func (s *ShardedEngine) Processed() uint64 {
	var n uint64
	for _, d := range s.doms {
		n += d.processed
	}
	return n
}

// SchedStats aggregates per-domain scheduler internals: counters sum, the
// pending high-water mark takes the max.
func (s *ShardedEngine) SchedStats() SchedStats {
	var out SchedStats
	for _, d := range s.doms {
		st := d.SchedStats()
		if st.PendingHighWater > out.PendingHighWater {
			out.PendingHighWater = st.PendingHighWater
		}
		out.Cascades += st.Cascades
		out.OverflowPushes += st.OverflowPushes
		out.Cancels += st.Cancels
		out.DeadPops += st.DeadPops
		out.Chases += st.Chases
	}
	return out
}

// Stats returns the parallel-engine counters accumulated so far.
func (s *ShardedEngine) Stats() ShardStats {
	out := s.stats
	for w := 0; w < s.workers; w++ {
		out.MergeBatches += s.mergeBatches[w]
		out.Steals += s.steals[w]
		if s.mergeHW[w] > out.MailboxHighWater {
			out.MailboxHighWater = s.mergeHW[w]
		}
	}
	return out
}

// nextEventTime is the earliest pending timestamp across domains and
// unmerged mailboxes.
func (s *ShardedEngine) nextEventTime() (Time, bool) {
	t := s.crossMin
	for _, d := range s.doms {
		if at, ok := d.NextAt(); ok && at < t {
			t = at
		}
	}
	return t, t != maxTime
}

// popGlobal removes and returns the earliest global event.
func (s *ShardedEngine) popGlobal() globalEvent {
	best := 0
	for i := 1; i < len(s.globals); i++ {
		g, b := s.globals[i], s.globals[best]
		if g.at < b.at || (g.at == b.at && g.seq < b.seq) {
			best = i
		}
	}
	g := s.globals[best]
	s.globals = append(s.globals[:best], s.globals[best+1:]...)
	return g
}

// minGlobalAt returns the earliest scheduled global timestamp.
func (s *ShardedEngine) minGlobalAt() (Time, bool) {
	if len(s.globals) == 0 {
		return 0, false
	}
	t := s.globals[0].at
	for _, g := range s.globals[1:] {
		if g.at < t {
			t = g.at
		}
	}
	return t, true
}

// resetCursors rewinds every block's claim cursor. Callers must hold the
// quiescence the barrier provides: either inside a fold or with all other
// participants parked.
func (s *ShardedEngine) resetCursors() {
	for w := range s.cur {
		s.cur[w].next.Store(0)
	}
}

// Run executes events across all domains until every pending event
// (domain-local, mailbox, and global) is later than `until`, then advances
// every domain to `until`. The coordinator (the calling goroutine) is
// worker 0; workers-1 additional goroutines are spawned per Run and joined
// before it returns.
func (s *ShardedEngine) Run(until Time) Time {
	if s.running {
		panic("sim: ShardedEngine.Run re-entered")
	}
	s.running = true
	defer func() { s.running = false }()

	// Participants enter each Run with fresh sense flags; the barrier's
	// shared state must match or a leftover sense from a previous Run lets
	// an early arrival fall through.
	s.bar.reset()

	var wg sync.WaitGroup
	for w := 1; w < s.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pprof.Do(context.Background(), pprof.Labels("shard-worker", strconv.Itoa(w)), func(context.Context) {
				s.workerLoop(w)
			})
		}(w)
	}

	coordSense := uint32(0)
	for {
		t, ok := s.nextEventTime()
		// Fire globals that precede the next domain event; workers are
		// parked at barrier A, so a global has exclusive access.
		for {
			g, gok := s.minGlobalAt()
			if !gok || g > until || (ok && g > t) {
				break
			}
			ev := s.popGlobal()
			s.globalNow = ev.at
			ev.fn()
			t, ok = s.nextEventTime() // the callback may have scheduled work
		}
		if !ok || t > until {
			break
		}
		maxLim := until
		if g, gok := s.minGlobalAt(); gok && g-1 < maxLim {
			maxLim = g - 1 // never straddle a global's timestamp
		}
		lim := t + s.window - 1
		if lim > maxLim {
			lim = maxLim
		}
		s.lim = lim
		s.maxLim = maxLim
		s.stats.Windows++
		s.stats.Barriers += 2
		s.needMerge = false
		if s.pendingCross > 0 {
			s.stats.CrossEvents += s.pendingCross
			if s.pendingCross <= serialMergeMax || s.workers == 1 {
				// Small batch: merge here with the workers parked — no
				// dedicated merge phase, no extra barrier.
				s.mergeRange(0, 0, len(s.doms))
				s.stats.SerialMerges++
			} else {
				s.needMerge = true
				s.stats.Barriers++
			}
			s.pendingCross = 0
			s.crossMin = maxTime
		}
		s.resetCursors()             // workers are parked at A; quiescent
		s.bar.wait(&coordSense, nil) // A: window published
		if s.needMerge {
			s.mergeClaim(0)
			s.bar.wait(&coordSense, s.resetCursors) // B: mailboxes drained
		}
		s.runPhase(0, &coordSense)
		for d := range s.doms {
			s.pendingCross += s.sent[d]
			if s.minSent[d] < s.crossMin {
				s.crossMin = s.minSent[d]
			}
		}
	}
	// Horizon: advance every domain to until (matching Engine.Run) and
	// release the workers. Mailbox events beyond the horizon stay buffered
	// for a later Run.
	for _, d := range s.doms {
		d.Run(until)
	}
	s.exit = true
	s.bar.wait(&coordSense, nil)
	wg.Wait()
	s.exit = false
	s.globalNow = until
	return until
}

// workerLoop is the body of workers 1..N-1; the coordinator inlines the
// same phase sequence inside Run.
func (s *ShardedEngine) workerLoop(w int) {
	sense := uint32(0)
	for {
		s.bar.wait(&sense, nil) // A
		if s.exit {
			return
		}
		if s.needMerge {
			s.mergeClaim(w)
			s.bar.wait(&sense, s.resetCursors) // B
		}
		s.runPhase(w, &sense)
	}
}

// runPhase executes the published window, then keeps extending it while
// the extension fold says to: each round runs [lim_prev+1, lim] across all
// domains, meets at the barrier, and the last arriver decides — inside the
// barrier, so every participant sees the same verdict — whether another
// `window` nanoseconds can run without a coordinator round. The final
// round's barrier doubles as the old barrier C.
func (s *ShardedEngine) runPhase(w int, sense *uint32) {
	for {
		ran, sentAny := s.runClaim(w)
		if ran {
			s.roundRan.Store(1)
		}
		if sentAny {
			s.roundSent.Store(1)
		}
		s.bar.wait(sense, s.extendFold)
		if !s.extend {
			return
		}
	}
}

// extendFold runs inside the run-round barrier (all other participants
// parked): it consumes the round flags, rewinds the claim cursors, and
// decides whether to extend. Extension requires the round to have executed
// events (otherwise the coordinator's next-event scan skips idle time in
// one step) and buffered no cross-domain send (a send must merge before
// any domain passes its timestamp).
func (s *ShardedEngine) extendFold() {
	sent := s.roundSent.Load() != 0
	ran := s.roundRan.Load() != 0
	s.roundSent.Store(0)
	s.roundRan.Store(0)
	s.resetCursors()
	if !sent && ran && s.lim < s.maxLim {
		lim := s.lim + s.window
		if lim > s.maxLim {
			lim = s.maxLim
		}
		s.lim = lim
		s.extend = true
		s.stats.Extensions++
		s.stats.Barriers++
		return
	}
	s.extend = false
}

// runClaim runs the current round in every domain worker w claims: its own
// static block first, then (with stealing on) leftovers from other blocks.
// It reports whether any claimed domain executed events and whether any
// buffered a cross-domain send.
func (s *ShardedEngine) runClaim(w int) (ran, sentAny bool) {
	lim := s.lim
	blocks := s.workers
	if !s.steal {
		blocks = 1
	}
	var stole uint64
	for v := 0; v < blocks; v++ {
		vw := w + v
		if vw >= s.workers {
			vw -= s.workers
		}
		base, end := s.base[vw], s.base[vw+1]
		for {
			d := base + int(s.cur[vw].next.Add(1)) - 1
			if d >= end {
				break
			}
			if vw != w {
				stole++
			}
			dom := s.doms[d]
			s.sent[d] = 0
			s.minSent[d] = maxTime
			before := dom.processed
			dom.Run(lim)
			if dom.processed != before {
				ran = true
			}
			if s.sent[d] > 0 {
				sentAny = true
			}
		}
	}
	if stole > 0 {
		s.steals[w] += stole
	}
	return ran, sentAny
}

// mergeClaim drains destination mailboxes in the parallel merge phase,
// claiming destinations the same way runClaim claims domains.
func (s *ShardedEngine) mergeClaim(w int) {
	blocks := s.workers
	if !s.steal {
		blocks = 1
	}
	for v := 0; v < blocks; v++ {
		vw := w + v
		if vw >= s.workers {
			vw -= s.workers
		}
		base, end := s.base[vw], s.base[vw+1]
		for {
			dst := base + int(s.cur[vw].next.Add(1)) - 1
			if dst >= end {
				break
			}
			s.mergeRange(w, dst, dst+1)
		}
	}
}

// mergeRange drains the mailboxes of destinations [lo, hi) into their
// wheels, in (at, born, src, seq) order, crediting worker w's stats slots.
func (s *ShardedEngine) mergeRange(w, lo, hi int) {
	nd := len(s.doms)
	for dst := lo; dst < hi; dst++ {
		buf := s.scratch[dst][:0]
		for src := 0; src < nd; src++ {
			if q := s.out[src][dst]; len(q) > 0 {
				buf = append(buf, q...)
				s.out[src][dst] = q[:0]
			}
		}
		if len(buf) == 0 {
			continue
		}
		sortXevents(buf)
		e := s.doms[dst]
		for i := range buf {
			e.At1Tag(buf[i].at, buf[i].tag, buf[i].fn1, buf[i].arg)
			buf[i] = xevent{} // don't pin fn/arg until the next merge
		}
		s.mergeBatches[w]++
		if len(buf) > s.mergeHW[w] {
			s.mergeHW[w] = len(buf)
		}
		s.scratch[dst] = buf[:0]
	}
}

func xeventLess(a, b *xevent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.born != b.born {
		return a.born < b.born
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// sortXevents orders a merge batch: insertion sort for the common tiny
// batches, sort.Slice beyond.
func sortXevents(buf []xevent) {
	if len(buf) <= 24 {
		for i := 1; i < len(buf); i++ {
			for j := i; j > 0 && xeventLess(&buf[j], &buf[j-1]); j-- {
				buf[j], buf[j-1] = buf[j-1], buf[j]
			}
		}
		return
	}
	sort.Slice(buf, func(i, j int) bool { return xeventLess(&buf[i], &buf[j]) })
}

// barrier is a sense-reversing centralized barrier over atomics. Arrivals
// spin briefly, then yield — on a machine with fewer cores than workers a
// pure spin would starve the worker the barrier is waiting for. The
// happens-before chain (arrival Add, release Store, waiter Load) makes
// plain fields written before a wait visible to every worker after it.
//
// wait optionally takes a fold: the last participant to arrive runs it
// before releasing the others. Everything the fold writes is visible to
// every participant after release, and the fold runs with all other
// participants parked — a serialization point in the middle of a parallel
// phase, used for the adaptive-extension verdict and cursor rewinds.
type barrier struct {
	n     int32
	count atomic.Int32
	sense atomic.Uint32
	spin  int
}

func (b *barrier) init(n int) {
	b.n = int32(n)
	b.spin = 10000
	if runtime.GOMAXPROCS(0) < n {
		b.spin = 0
	}
}

// reset restores the no-arrivals state. Only valid with no participant
// inside wait (Run calls it before spawning workers).
func (b *barrier) reset() {
	b.count.Store(0)
	b.sense.Store(0)
}

// wait blocks until all n participants arrive, running fold (when non-nil)
// on the last arriver before release. sense is the caller's
// per-participant flag, flipped on every crossing.
func (b *barrier) wait(sense *uint32, fold func()) {
	if b.n == 1 {
		if fold != nil {
			fold()
		}
		return
	}
	ns := *sense ^ 1
	*sense = ns
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		if fold != nil {
			fold()
		}
		b.sense.Store(ns)
		return
	}
	for i := 0; b.sense.Load() != ns; i++ {
		if i >= b.spin {
			runtime.Gosched()
		}
	}
}
