package sim

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// ShardedEngine is a conservative parallel discrete-event engine: a fixed
// set of Engine domains advanced concurrently in bulk-synchronous windows.
// The caller partitions the model so that every event either stays inside
// one domain (scheduled on that domain's Engine as usual) or crosses
// domains with at least `window` nanoseconds of lookahead, in which case it
// goes through Send and a per-(src,dst) mailbox.
//
// One window executes [W, W+window) where W is the global next-event time,
// so idle stretches are skipped in one step. Within the window every domain
// runs its own events on its own timing wheel with no synchronization;
// cross-domain sends are buffered. At the barrier the buffered sends are
// merged into the destination wheels in (at, born, src, seq) order — a
// total order independent of worker count and scheduling, which makes a
// sharded run bit-for-bit reproducible and, for models whose same-instant
// cross-domain events are ordered the same way serially (see DESIGN.md
// §10), identical to the serial engine.
//
// Safety argument: an event executing at te ∈ [W, W+window) can only
// schedule cross-domain work at te+window or later, which is ≥ W+window —
// strictly after the window every domain is concurrently executing. So no
// domain can receive a cross-domain event for the window it is currently
// running, and merging at the barrier preserves timestamp order.
type ShardedEngine struct {
	doms    []*Engine
	window  Time
	workers int

	// out[src][dst] buffers cross-domain events produced by domain src for
	// domain dst during the current window. Only the worker running src
	// touches it during the run phase; only the worker owning dst drains it
	// during the merge phase (phases are barrier-separated).
	out     [][][]xevent
	scratch [][]xevent // per-dst merge buffer, reused across windows
	seqs    []uint64   // per-src cross-send sequence (monotonic over the run)

	// Per-domain send bookkeeping for the window just run: how many events
	// the domain emitted and the earliest timestamp among them. The
	// coordinator folds these into pendingCross/crossMin between barriers.
	sent    []uint64
	minSent []Time

	// Published by the coordinator before barrier A, read by workers after.
	lim       Time
	needMerge bool
	exit      bool

	bar barrier

	// Coordinator-only state.
	pendingCross uint64
	crossMin     Time
	running      bool
	globalNow    Time
	globals      []globalEvent
	gseq         uint64

	// Per-worker merge stats (slot per worker to avoid write sharing on the
	// hot path; folded into stats by the coordinator after the run).
	mergeBatches []uint64
	mergeHW      []int

	stats ShardStats
}

// xevent is one cross-domain event in a mailbox. born is the sender's
// virtual time at Send; together with (src, seq) it extends the timestamp
// into the total merge order.
type xevent struct {
	at   Time
	born Time
	src  int32
	seq  uint64
	fn1  func(any)
	arg  any
}

// globalEvent is a coordinator-run callback (see Global).
type globalEvent struct {
	at  Time
	seq uint64
	fn  func()
}

// ShardStats exposes the parallel engine's internals for throughput
// diagnostics (cmd/ucmpbench -schedstats with -shards).
type ShardStats struct {
	// Windows is the number of bulk-synchronous windows executed.
	Windows uint64
	// Barriers counts barrier crossings (two per window, three when a merge
	// phase ran).
	Barriers uint64
	// CrossEvents counts events routed through the mailboxes.
	CrossEvents uint64
	// MergeBatches counts non-empty per-destination merge batches.
	MergeBatches uint64
	// MailboxHighWater is the largest single merge batch observed.
	MailboxHighWater int
}

// NewShardedEngine builds a parallel engine with `domains` independent
// Engine instances (each backed by the given queue kind), run by `workers`
// goroutines (clamped to [1, domains]) in windows of `window` nanoseconds.
// The window must be a lower bound on the latency of every cross-domain
// event: Send panics when violated.
func NewShardedEngine(domains, workers int, window Time, kind QueueKind) *ShardedEngine {
	if domains < 1 {
		panic("sim: sharded engine needs at least one domain")
	}
	if window < 1 {
		panic("sim: sharded window must be at least 1ns")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > domains {
		workers = domains
	}
	s := &ShardedEngine{
		doms:         make([]*Engine, domains),
		window:       window,
		workers:      workers,
		out:          make([][][]xevent, domains),
		scratch:      make([][]xevent, domains),
		seqs:         make([]uint64, domains),
		sent:         make([]uint64, domains),
		minSent:      make([]Time, domains),
		crossMin:     maxTime,
		mergeBatches: make([]uint64, workers),
		mergeHW:      make([]int, workers),
	}
	for i := range s.doms {
		s.doms[i] = NewEngineQueue(kind)
		s.out[i] = make([][]xevent, domains)
	}
	s.bar.init(workers)
	return s
}

// Domains returns the number of domains.
func (s *ShardedEngine) Domains() int { return len(s.doms) }

// Domain returns domain i's Engine. Before Run (model construction) it may
// be used freely; during Run only events executing inside domain i may
// touch it.
func (s *ShardedEngine) Domain(i int) *Engine { return s.doms[i] }

// Window returns the lookahead window in nanoseconds.
func (s *ShardedEngine) Window() Time { return s.window }

// Workers returns the number of worker goroutines Run uses.
func (s *ShardedEngine) Workers() int { return s.workers }

// Send schedules fn(arg) at absolute time `at` in domain dst, from an event
// currently executing in domain src. It must satisfy the lookahead
// contract: at >= src's current time + window.
func (s *ShardedEngine) Send(src, dst int, at Time, fn func(any), arg any) {
	d := s.doms[src]
	if at < d.now+s.window {
		panic(fmt.Sprintf("sim: cross-domain send at %v violates lookahead (now %v + window %v)",
			at, d.now, s.window))
	}
	s.seqs[src]++
	s.out[src][dst] = append(s.out[src][dst], xevent{
		at: at, born: d.now, src: int32(src), seq: s.seqs[src], fn1: fn, arg: arg,
	})
	s.sent[src]++
	if at < s.minSent[src] {
		s.minSent[src] = at
	}
}

// Global schedules fn at absolute time `at` on the coordinator, outside any
// domain. Global callbacks run between windows with every worker parked at
// the barrier, so they may read (and carefully write) cross-domain state —
// the harness uses them for fabric-wide sampling. Windows never straddle a
// global's timestamp. Global may be called before Run or from within a
// global callback, not from domain events.
func (s *ShardedEngine) Global(at Time, fn func()) {
	if at < s.globalNow {
		panic(fmt.Sprintf("sim: scheduling global event at %v before now %v", at, s.globalNow))
	}
	s.gseq++
	s.globals = append(s.globals, globalEvent{at: at, seq: s.gseq, fn: fn})
}

// GlobalNow returns the coordinator's virtual time: the timestamp of the
// running global callback, or the horizon reached by the last Run.
func (s *ShardedEngine) GlobalNow() Time { return s.globalNow }

// Processed sums the events executed across all domains.
func (s *ShardedEngine) Processed() uint64 {
	var n uint64
	for _, d := range s.doms {
		n += d.processed
	}
	return n
}

// SchedStats aggregates per-domain scheduler internals: counters sum, the
// pending high-water mark takes the max.
func (s *ShardedEngine) SchedStats() SchedStats {
	var out SchedStats
	for _, d := range s.doms {
		st := d.SchedStats()
		if st.PendingHighWater > out.PendingHighWater {
			out.PendingHighWater = st.PendingHighWater
		}
		out.Cascades += st.Cascades
		out.OverflowPushes += st.OverflowPushes
		out.Cancels += st.Cancels
		out.DeadPops += st.DeadPops
		out.Chases += st.Chases
	}
	return out
}

// Stats returns the parallel-engine counters accumulated so far.
func (s *ShardedEngine) Stats() ShardStats {
	out := s.stats
	for w := 0; w < s.workers; w++ {
		out.MergeBatches += s.mergeBatches[w]
		if s.mergeHW[w] > out.MailboxHighWater {
			out.MailboxHighWater = s.mergeHW[w]
		}
	}
	return out
}

// nextEventTime is the earliest pending timestamp across domains and
// unmerged mailboxes.
func (s *ShardedEngine) nextEventTime() (Time, bool) {
	t := s.crossMin
	for _, d := range s.doms {
		if at, ok := d.NextAt(); ok && at < t {
			t = at
		}
	}
	return t, t != maxTime
}

// popGlobal removes and returns the earliest global event.
func (s *ShardedEngine) popGlobal() globalEvent {
	best := 0
	for i := 1; i < len(s.globals); i++ {
		g, b := s.globals[i], s.globals[best]
		if g.at < b.at || (g.at == b.at && g.seq < b.seq) {
			best = i
		}
	}
	g := s.globals[best]
	s.globals = append(s.globals[:best], s.globals[best+1:]...)
	return g
}

// minGlobalAt returns the earliest scheduled global timestamp.
func (s *ShardedEngine) minGlobalAt() (Time, bool) {
	if len(s.globals) == 0 {
		return 0, false
	}
	t := s.globals[0].at
	for _, g := range s.globals[1:] {
		if g.at < t {
			t = g.at
		}
	}
	return t, true
}

// Run executes events across all domains until every pending event
// (domain-local, mailbox, and global) is later than `until`, then advances
// every domain to `until`. The coordinator (the calling goroutine) is
// worker 0; workers-1 additional goroutines are spawned per Run and joined
// before it returns.
func (s *ShardedEngine) Run(until Time) Time {
	if s.running {
		panic("sim: ShardedEngine.Run re-entered")
	}
	s.running = true
	defer func() { s.running = false }()

	// Participants enter each Run with fresh sense flags; the barrier's
	// shared state must match or a leftover sense from a previous Run lets
	// an early arrival fall through.
	s.bar.reset()

	var wg sync.WaitGroup
	for w := 1; w < s.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pprof.Do(context.Background(), pprof.Labels("shard-worker", strconv.Itoa(w)), func(context.Context) {
				s.workerLoop(w)
			})
		}(w)
	}

	coordSense := uint32(0)
	for {
		t, ok := s.nextEventTime()
		// Fire globals that precede the next domain event; workers are
		// parked at barrier A, so a global has exclusive access.
		for {
			g, gok := s.minGlobalAt()
			if !gok || g > until || (ok && g > t) {
				break
			}
			ev := s.popGlobal()
			s.globalNow = ev.at
			ev.fn()
			t, ok = s.nextEventTime() // the callback may have scheduled work
		}
		if !ok || t > until {
			break
		}
		lim := t + s.window - 1
		if g, gok := s.minGlobalAt(); gok && g-1 < lim {
			lim = g - 1 // never straddle a global's timestamp
		}
		if lim > until {
			lim = until
		}
		s.lim = lim
		s.needMerge = s.pendingCross > 0
		s.stats.Windows++
		s.stats.Barriers += 2
		if s.needMerge {
			s.stats.Barriers++
			s.stats.CrossEvents += s.pendingCross
		}
		s.bar.wait(&coordSense) // A: window published
		if s.needMerge {
			s.mergeFor(0)
			s.bar.wait(&coordSense) // B: mailboxes drained
			s.pendingCross = 0
			s.crossMin = maxTime
		}
		s.runFor(0)
		s.bar.wait(&coordSense) // C: window executed
		for d := range s.doms {
			s.pendingCross += s.sent[d]
			if s.minSent[d] < s.crossMin {
				s.crossMin = s.minSent[d]
			}
		}
	}
	// Horizon: advance every domain to until (matching Engine.Run) and
	// release the workers. Mailbox events beyond the horizon stay buffered
	// for a later Run.
	for _, d := range s.doms {
		d.Run(until)
	}
	s.exit = true
	s.bar.wait(&coordSense)
	wg.Wait()
	s.exit = false
	s.globalNow = until
	return until
}

// workerLoop is the body of workers 1..N-1; the coordinator inlines the
// same phase sequence inside Run.
func (s *ShardedEngine) workerLoop(w int) {
	sense := uint32(0)
	for {
		s.bar.wait(&sense) // A
		if s.exit {
			return
		}
		if s.needMerge {
			s.mergeFor(w)
			s.bar.wait(&sense) // B
		}
		s.runFor(w)
		s.bar.wait(&sense) // C
	}
}

// runFor executes the current window in every domain worker w owns
// (domains are striped d % workers == w).
func (s *ShardedEngine) runFor(w int) {
	for d := w; d < len(s.doms); d += s.workers {
		s.sent[d] = 0
		s.minSent[d] = maxTime
		s.doms[d].Run(s.lim)
	}
}

// mergeFor drains the mailboxes of every destination worker w owns into
// the destination wheels, in (at, born, src, seq) order.
func (s *ShardedEngine) mergeFor(w int) {
	nd := len(s.doms)
	for dst := w; dst < nd; dst += s.workers {
		buf := s.scratch[dst][:0]
		for src := 0; src < nd; src++ {
			if q := s.out[src][dst]; len(q) > 0 {
				buf = append(buf, q...)
				s.out[src][dst] = q[:0]
			}
		}
		if len(buf) == 0 {
			continue
		}
		sortXevents(buf)
		e := s.doms[dst]
		for i := range buf {
			e.At1(buf[i].at, buf[i].fn1, buf[i].arg)
			buf[i] = xevent{} // don't pin fn/arg until the next merge
		}
		s.mergeBatches[w]++
		if len(buf) > s.mergeHW[w] {
			s.mergeHW[w] = len(buf)
		}
		s.scratch[dst] = buf[:0]
	}
}

func xeventLess(a, b *xevent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.born != b.born {
		return a.born < b.born
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// sortXevents orders a merge batch: insertion sort for the common tiny
// batches, sort.Slice beyond.
func sortXevents(buf []xevent) {
	if len(buf) <= 24 {
		for i := 1; i < len(buf); i++ {
			for j := i; j > 0 && xeventLess(&buf[j], &buf[j-1]); j-- {
				buf[j], buf[j-1] = buf[j-1], buf[j]
			}
		}
		return
	}
	sort.Slice(buf, func(i, j int) bool { return xeventLess(&buf[i], &buf[j]) })
}

// barrier is a sense-reversing centralized barrier over atomics. Arrivals
// spin briefly, then yield — on a machine with fewer cores than workers a
// pure spin would starve the worker the barrier is waiting for. The
// happens-before chain (arrival Add, release Store, waiter Load) makes
// plain fields written before a wait visible to every worker after it.
type barrier struct {
	n     int32
	count atomic.Int32
	sense atomic.Uint32
	spin  int
}

func (b *barrier) init(n int) {
	b.n = int32(n)
	b.spin = 10000
	if runtime.GOMAXPROCS(0) < n {
		b.spin = 0
	}
}

// reset restores the no-arrivals state. Only valid with no participant
// inside wait (Run calls it before spawning workers).
func (b *barrier) reset() {
	b.count.Store(0)
	b.sense.Store(0)
}

// wait blocks until all n participants arrive. sense is the caller's
// per-participant flag, flipped on every crossing.
func (b *barrier) wait(sense *uint32) {
	if b.n == 1 {
		return
	}
	ns := *sense ^ 1
	*sense = ns
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.sense.Store(ns)
		return
	}
	for i := 0; b.sense.Load() != ns; i++ {
		if i >= b.spin {
			runtime.Gosched()
		}
	}
}
