package transport

import (
	"testing"

	"ucmp/internal/netsim"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
)

// unitSender builds a tcpSender whose packets go nowhere (we drive the
// state machine by hand through Deliver).
func unitSender(t *testing.T, dctcp bool, size int64) (*tcpSender, *netsim.Network) {
	t.Helper()
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	eng := sim.NewEngine()
	net := netsim.New(eng, f, nullRouter{}, netsim.DCTCPQueues(), netsim.DCTCPQueues(), netsim.RotorConfig{})
	net.Start()
	fl := netsim.NewFlow(1, 0, 17, size, 0)
	net.RegisterFlow(fl)
	s := newTCPSender(net, fl, dctcp, sim.Millisecond)
	fl.SenderEP = s
	fl.ReceiverEP = sinkEndpoint{}
	return s, net
}

type nullRouter struct{}

func (nullRouter) Name() string                { return "null" }
func (nullRouter) RotorFlow(*netsim.Flow) bool { return false }
func (nullRouter) PlanRoute(p *netsim.Packet, tor int, now sim.Time, fromAbs int64, buf []netsim.PlannedHop) ([]netsim.PlannedHop, bool) {
	return nil, false // all packets die in the fabric; unit tests don't care
}

func ack(seq int64, ecn bool) *netsim.Packet {
	return &netsim.Packet{Type: netsim.Ack, Seq: seq, EchoECN: ecn, WireLen: netsim.HeaderBytes}
}

func TestTCPSlowStartGrowth(t *testing.T) {
	s, _ := unitSender(t, false, 1<<30)
	s.start()
	before := s.cwnd
	// Cumulative ACK for the first segment doubles-ish the window in slow
	// start (cwnd += acked).
	s.Deliver(ack(MSS, false))
	if s.cwnd != before+MSS {
		t.Fatalf("slow start growth: %v -> %v", before, s.cwnd)
	}
	if s.sndUna != MSS {
		t.Fatalf("sndUna %d", s.sndUna)
	}
}

func TestTCPCongestionAvoidanceGrowth(t *testing.T) {
	s, _ := unitSender(t, false, 1<<30)
	s.start()
	s.ssthresh = s.cwnd // force CA
	before := s.cwnd
	s.Deliver(ack(MSS, false))
	want := before + MSS*MSS/before
	if diff := s.cwnd - want; diff > 1 || diff < -1 {
		t.Fatalf("CA growth: got %v, want %v", s.cwnd, want)
	}
}

func TestDCTCPAlphaAndReduction(t *testing.T) {
	s, _ := unitSender(t, true, 1<<30)
	s.start()
	if s.alpha != 1 {
		t.Fatalf("initial alpha %v", s.alpha)
	}
	win := s.windowEnd
	if win != 0 {
		t.Fatalf("windowEnd %d", win)
	}
	cwnd0 := s.cwnd
	// Ack the whole first window with every packet marked: alpha stays
	// high and cwnd is cut by about alpha/2.
	sent := s.sndNxt
	for seq := int64(MSS); seq <= sent; seq += MSS {
		s.Deliver(ack(seq, true))
	}
	if s.alpha < 0.9 {
		t.Fatalf("alpha after all-marked window: %v", s.alpha)
	}
	if s.cwnd > cwnd0 {
		t.Fatalf("cwnd grew despite marks: %v -> %v", cwnd0, s.cwnd)
	}
	// A clean window decays alpha by factor (1-g).
	a := s.alpha
	sent2 := s.sndNxt
	for seq := s.sndUna + MSS; seq <= sent2; seq += MSS {
		s.Deliver(ack(seq, false))
	}
	if s.alpha >= a {
		t.Fatalf("alpha did not decay: %v -> %v", a, s.alpha)
	}
}

func TestTCPFastRetransmitOnDupacks(t *testing.T) {
	s, _ := unitSender(t, false, 1<<30)
	s.start()
	cwnd0 := s.cwnd
	// Three duplicate ACKs at 0 trigger fast retransmit and a window cut.
	for i := 0; i < 3; i++ {
		s.Deliver(ack(0, false))
	}
	if s.cwnd >= cwnd0 {
		t.Fatalf("no window cut: %v -> %v", cwnd0, s.cwnd)
	}
	if s.recover != s.sndNxt {
		t.Fatalf("recover mark %d, want %d", s.recover, s.sndNxt)
	}
	// Further dupacks within recovery do not cut again.
	c := s.cwnd
	for i := 0; i < 3; i++ {
		s.Deliver(ack(0, false))
	}
	if s.cwnd != c {
		t.Fatalf("double cut within recovery: %v -> %v", c, s.cwnd)
	}
}

func TestTCPTimeoutGoBackN(t *testing.T) {
	s, net := unitSender(t, false, 1<<20)
	s.start()
	nxt := s.sndNxt
	if nxt == 0 {
		t.Fatal("nothing sent")
	}
	// Run past the RTO with no acks: go-back-N resets sndNxt to sndUna and
	// collapses cwnd to one MSS-ish.
	net.Eng.Run(5 * sim.Millisecond)
	if s.cwnd > 2*MSS {
		t.Fatalf("cwnd after timeout: %v", s.cwnd)
	}
	if s.sndNxt < nxt {
		// Retransmission restarted the stream from sndUna and re-sent.
		t.Logf("resent from %d", s.sndUna)
	}
}

func TestStaleTimerIgnored(t *testing.T) {
	s, net := unitSender(t, false, 10*MSS)
	s.start()
	// Let the initial window drain into the fabric first, then ack
	// everything: the armed timer must not fire a retransmission burst.
	net.Eng.Run(100 * sim.Microsecond)
	sent := s.sndNxt
	for seq := int64(MSS); seq <= sent; seq += MSS {
		s.Deliver(ack(seq, false))
	}
	packetsBefore := net.Counters.DataPackets
	net.Eng.Run(10 * sim.Millisecond)
	if net.Counters.DataPackets != packetsBefore {
		t.Fatalf("stale timer sent %d packets", net.Counters.DataPackets-packetsBefore)
	}
}
