package transport

import (
	"ucmp/internal/checkpoint"
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
)

// tcpSender is a NewReno-style sender; with dctcp=true it runs DCTCP: ECT
// packets, per-packet ECN echoes, the g-weighted fraction estimator, and
// proportional window reduction (§7.1 pairs DCTCP with UCMP and KSP).
type tcpSender struct {
	net  *netsim.Network
	f    *netsim.Flow
	host *netsim.Host

	dctcp bool
	rto   sim.Time

	cwnd     float64 // bytes
	ssthresh float64

	sndUna int64
	sndNxt int64

	dupacks int
	recover int64 // fast-recovery high-water mark

	// DCTCP estimator state.
	alpha       float64
	ackedBytes  int64
	markedBytes int64
	windowEnd   int64

	// rtoT is the retransmission timer. sim.Timer already coalesces
	// deadline slides into a single queued event, so acking neither
	// allocates nor enqueues in steady state.
	rtoT *sim.Timer
}

const dctcpG = 1.0 / 16

func newTCPSender(n *netsim.Network, f *netsim.Flow, dctcp bool, rto sim.Time) *tcpSender {
	s := &tcpSender{
		net: n, f: f, host: n.Hosts[f.SrcHost],
		dctcp: dctcp, rto: rto,
		cwnd:     10 * MSS,
		ssthresh: 1 << 30,
		alpha:    1,
	}
	s.rtoT = s.host.Eng().NewTimerTag(sim.EventTag{Kind: checkpoint.KindTCPRTO, A: int32(f.Dense())}, s.onTimeout)
	return s
}

func (s *tcpSender) start() {
	s.pump()
}

// pump sends as much new data as the window allows.
func (s *tcpSender) pump() {
	for s.sndNxt < s.f.Size && float64(s.sndNxt-s.sndUna) < s.cwnd {
		length := int64(MSS)
		if s.sndNxt+length > s.f.Size {
			length = s.f.Size - s.sndNxt
		}
		s.emit(s.sndNxt, int(length), false)
		s.sndNxt += length
		s.f.BytesSent += length
	}
	s.armTimer()
}

// emit sends one data segment.
func (s *tcpSender) emit(seq int64, length int, rtx bool) {
	p := s.host.NewPacket()
	p.Flow = s.f
	p.Type = netsim.Data
	p.Seq = seq
	p.PayloadLen = length
	p.WireLen = length + netsim.HeaderBytes
	p.ECNCapable = s.dctcp
	_ = rtx
	s.host.Send(p)
}

// Deliver implements netsim.Endpoint for ACKs. The sender judges
// completion from its own ack state (sndUna), never from f.Finished: that
// flag is written by the receiver's lookahead domain, and reading it here
// would be a zero-lookahead cross-domain read — racy under the sharded
// engine and nondeterministic even when it happens to be visible.
func (s *tcpSender) Deliver(p *netsim.Packet) {
	if p.Type != netsim.Ack || s.sndUna >= s.f.Size {
		return
	}
	cum := p.Seq
	if cum > s.sndUna {
		acked := cum - s.sndUna
		s.sndUna = cum
		s.dupacks = 0
		s.progress(acked, p.EchoECN)
		s.armTimer()
		s.pump()
		return
	}
	// Duplicate ACK.
	if s.sndNxt > s.sndUna {
		s.dupacks++
		if s.dupacks == 3 && s.sndUna >= s.recover {
			s.fastRetransmit()
		}
	}
}

// progress applies window growth and the DCTCP estimator on new acks.
func (s *tcpSender) progress(acked int64, echoECN bool) {
	if s.dctcp {
		s.ackedBytes += acked
		if echoECN {
			s.markedBytes += acked
		}
		if s.sndUna >= s.windowEnd {
			f := 0.0
			if s.ackedBytes > 0 {
				f = float64(s.markedBytes) / float64(s.ackedBytes)
			}
			s.alpha = (1-dctcpG)*s.alpha + dctcpG*f
			if s.markedBytes > 0 {
				s.cwnd = maxF(s.cwnd*(1-s.alpha/2), MSS)
				s.ssthresh = s.cwnd
			}
			s.ackedBytes, s.markedBytes = 0, 0
			s.windowEnd = s.sndNxt
		}
	}
	if s.cwnd < s.ssthresh {
		s.cwnd += float64(acked) // slow start
	} else {
		s.cwnd += MSS * float64(acked) / s.cwnd // congestion avoidance
	}
}

// fastRetransmit resends the lost segment and halves the window.
func (s *tcpSender) fastRetransmit() {
	s.recover = s.sndNxt
	s.ssthresh = maxF(s.cwnd/2, 2*MSS)
	s.cwnd = s.ssthresh
	length := int64(MSS)
	if s.sndUna+length > s.f.Size {
		length = s.f.Size - s.sndUna
	}
	if length > 0 {
		s.emit(s.sndUna, int(length), true)
	}
	s.armTimer()
}

// armTimer (re)sets the retransmission timer, or cancels it once all data
// is acked.
func (s *tcpSender) armTimer() {
	if s.sndUna >= s.f.Size {
		s.rtoT.Cancel()
		return
	}
	s.rtoT.Reset(s.host.Now() + s.rto)
}

func (s *tcpSender) onTimeout() {
	if s.sndUna >= s.f.Size {
		return
	}
	// Go-back-N: restart from the first unacked byte.
	s.ssthresh = maxF(s.cwnd/2, 2*MSS)
	s.cwnd = MSS
	s.sndNxt = s.sndUna
	s.dupacks = 0
	s.recover = s.sndUna
	s.pump()
}

// tcpReceiver acks every data packet cumulatively, echoing ECN marks. It
// runs entirely in the destination host's domain.
type tcpReceiver struct {
	net  *netsim.Network
	f    *netsim.Flow
	host *netsim.Host
	ivs  *intervalSet
}

// Deliver implements netsim.Endpoint for data.
func (r *tcpReceiver) Deliver(p *netsim.Packet) {
	if p.Type != netsim.Data || p.Trimmed {
		return
	}
	newBytes := r.ivs.add(p.Seq, p.Seq+int64(p.PayloadLen))
	r.net.RecordDelivered(r.f, newBytes)
	ack := r.host.NewPacket()
	ack.Flow = r.f
	ack.Type = netsim.Ack
	ack.Seq = r.ivs.cumulative()
	ack.WireLen = netsim.HeaderBytes
	ack.EchoECN = p.ECNMarked
	r.host.Send(ack)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
