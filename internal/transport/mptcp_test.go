package transport

import (
	"testing"

	"ucmp/internal/netsim"
	"ucmp/internal/sim"
)

func TestMPTCPDelivers(t *testing.T) {
	eng, net, _ := miniNet(t, DCTCP)
	stack := NewStack(net, MPTCP)
	f := netsim.NewFlow(1, 0, 17, 5_000_000, 0)
	stack.Launch(f)
	eng.Run(200 * sim.Millisecond)
	if !f.Finished {
		t.Fatalf("parent unfinished: %d/%d", f.BytesDelivered, f.Size)
	}
	if f.BytesDelivered != f.Size {
		t.Fatalf("parent delivered %d, want %d", f.BytesDelivered, f.Size)
	}
	// Children exist, are flagged, and sum to the parent size.
	var childBytes int64
	children := 0
	for _, fl := range net.Flows() {
		if fl.Child {
			children++
			childBytes += fl.Size
			if !fl.Finished {
				t.Errorf("child %d unfinished", fl.ID)
			}
		}
	}
	if children != MPTCPSubflows {
		t.Fatalf("%d children, want %d", children, MPTCPSubflows)
	}
	if childBytes != f.Size {
		t.Fatalf("stripes sum to %d, want %d", childBytes, f.Size)
	}
}

func TestMPTCPTinyFlowSingleSubflow(t *testing.T) {
	eng, net, _ := miniNet(t, DCTCP)
	stack := NewStack(net, MPTCP)
	f := netsim.NewFlow(1, 2, 19, 2000, 0) // below k*MSS
	stack.Launch(f)
	eng.Run(50 * sim.Millisecond)
	if !f.Finished {
		t.Fatal("tiny MPTCP flow unfinished")
	}
	children := 0
	for _, fl := range net.Flows() {
		if fl.Child {
			children++
		}
	}
	if children != 1 {
		t.Fatalf("tiny flow split into %d subflows, want 1", children)
	}
}

func TestMPTCPChildrenExcludedFromMetrics(t *testing.T) {
	eng, net, _ := miniNet(t, DCTCP)
	stack := NewStack(net, MPTCP)
	// The raw hook sees every completion including children; the metrics
	// Collector filters children. Ensure the parent completes exactly once
	// and children are distinguishable.
	parents, children := 0, 0
	net.OnFlowDone = func(fl *netsim.Flow) {
		if fl.Child {
			children++
		} else {
			parents++
		}
	}
	f := netsim.NewFlow(1, 4, 21, 1_000_000, 0)
	stack.Launch(f)
	eng.Run(100 * sim.Millisecond)
	if !f.Finished {
		t.Fatal("unfinished")
	}
	if parents != 1 {
		t.Fatalf("parent completed %d times", parents)
	}
	if children != MPTCPSubflows {
		t.Fatalf("children completed %d times, want %d", children, MPTCPSubflows)
	}
}
