package transport

import (
	"ucmp/internal/netsim"
)

// MPTCP is the §10-suggested multipath transport: a flow is split into
// subflows that travel different UCMP paths in parallel (distinct 5-tuple
// hashes select distinct parallel group members, like MPTCP over KSP on
// expanders). This implementation stripes the byte range statically across
// subflows, each a full DCTCP state machine; the parent flow completes
// when every stripe has been delivered. Dynamic (opportunistic) scheduling
// across subflows is left out, matching the paper's framing of this as
// future work.
const MPTCP Kind = "mptcp"

// MPTCPSubflows is the number of subflows per parent flow (UCMP retains up
// to 4 tied parallel paths per group entry, so 4 is the natural width).
const MPTCPSubflows = 4

// childIDSpace offsets subflow ids away from workload-generated flow ids.
const childIDSpace = int64(1) << 40

// launchMPTCP registers subflows and wires parent completion.
func (s *Stack) launchMPTCP(f *netsim.Flow) func() {
	k := MPTCPSubflows
	if f.Size < int64(k)*MSS {
		k = 1
	}
	stripe := f.Size / int64(k)
	starts := make([]func(), 0, k)
	remaining := f.Size
	for i := 0; i < k; i++ {
		size := stripe
		if i == k-1 {
			size = remaining
		}
		remaining -= size
		child := netsim.NewFlow(childIDSpace+f.ID*int64(MPTCPSubflows)+int64(i), f.SrcHost, f.DstHost, size, f.Arrival)
		child.Child = true
		s.Net.RegisterFlow(child)
		snd := newTCPSender(s.Net, child, true, s.rto())
		rcv := &tcpReceiver{net: s.Net, f: child, host: s.Net.Hosts[child.DstHost], ivs: &intervalSet{}}
		child.SenderEP = snd
		child.ReceiverEP = mptcpAggregator{parent: f, child: child, inner: rcv, net: s.Net}
		starts = append(starts, snd.start)
	}
	return func() {
		for _, st := range starts {
			st()
		}
	}
}

// mptcpAggregator forwards to the subflow receiver and folds completed
// stripes into the parent flow.
type mptcpAggregator struct {
	parent *netsim.Flow
	child  *netsim.Flow
	inner  netsim.Endpoint
	net    *netsim.Network
}

// Deliver implements netsim.Endpoint.
func (a mptcpAggregator) Deliver(p *netsim.Packet) {
	was := a.child.BytesDelivered
	a.inner.Deliver(p)
	if d := a.child.BytesDelivered - was; d > 0 {
		// Credit parent progress without double-counting fabric bytes
		// (the child's RecordDelivered already updated the counters).
		a.parent.BytesDelivered += d
		if a.parent.BytesDelivered >= a.parent.Size {
			a.net.FlowFinished(a.parent)
		}
	}
}
