// Package transport implements the transport protocols the paper pairs
// with each routing scheme (§7.1): DCTCP (ECN-based congestion control),
// NDP (receiver-driven with packet trimming), the RotorLB host side for
// VLB-class traffic, and a plain Reno-style TCP for the testbed
// experiments. All are packet-level state machines over netsim.
package transport

import (
	"fmt"

	"ucmp/internal/checkpoint"
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
)

// MSS is the payload carried by an MTU packet.
const MSS = 1500 - netsim.HeaderBytes

// Kind selects a protocol.
type Kind string

const (
	DCTCP Kind = "dctcp"
	NDP   Kind = "ndp"
	TCP   Kind = "tcp"
	Rotor Kind = "rotor"
)

// QueueSpec returns the paper's switch queue configuration for a protocol
// (§7.1): DCTCP 300 pkts + ECN@65, NDP 80 pkts with trimming.
func QueueSpec(k Kind) netsim.QueueSpec {
	switch k {
	case NDP:
		return netsim.NDPQueues()
	case DCTCP, MPTCP:
		return netsim.DCTCPQueues()
	default:
		return netsim.QueueSpec{MaxDataPackets: 300}
	}
}

// Stack creates transport endpoints for flows on one network. The same
// stack serves rotor-class flows (VLB machinery) with the RotorLB host
// transport regardless of the configured Kind, mirroring the paper's
// pairing (§7.1, §7.3).
type Stack struct {
	Net  *netsim.Network
	Kind Kind
	// RTO is the retransmission timeout for DCTCP/TCP; zero selects
	// max(1 ms, 3 cycles).
	RTO sim.Time

	pacers map[int]*pullPacer
}

// NewStack builds a stack.
func NewStack(n *netsim.Network, kind Kind) *Stack {
	return &Stack{Net: n, Kind: kind, pacers: make(map[int]*pullPacer)}
}

// Attach registers the flow and builds its endpoints without scheduling
// anything — the restore path uses it to recreate every closure-bearing
// endpoint before replaying the checkpoint's pending events. It returns the
// start closures (rcvStart may be nil) for Launch to schedule.
func (s *Stack) Attach(f *netsim.Flow) (start, rcvStart func()) {
	s.Net.RegisterFlow(f) // sets RotorClass from the router
	kind := s.Kind
	if f.RotorClass {
		kind = Rotor
	}
	switch kind {
	case MPTCP:
		start = s.launchMPTCP(f)
	case Rotor:
		snd := newRotorSender(s.Net, f)
		rcv := &rotorReceiver{net: s.Net, f: f}
		f.SenderEP, f.ReceiverEP = snd, rcv
		start = snd.start
	case NDP:
		snd := newNDPSender(s.Net, f)
		rcv := newNDPReceiver(s, f)
		f.SenderEP, f.ReceiverEP = snd, rcv
		start = snd.start
		rcvStart = rcv.armRepair
	case DCTCP, TCP:
		snd := newTCPSender(s.Net, f, kind == DCTCP, s.rto())
		rcv := &tcpReceiver{net: s.Net, f: f, host: s.Net.Hosts[f.DstHost], ivs: &intervalSet{}}
		f.SenderEP, f.ReceiverEP = snd, rcv
		start = snd.start
	default:
		panic(fmt.Sprintf("transport: unknown kind %q", kind))
	}
	return start, rcvStart
}

// Launch registers the flow, attaches endpoints, and schedules its start.
func (s *Stack) Launch(f *netsim.Flow) {
	// start runs on the source host's engine; rcvStart (when set) runs on
	// the destination host's engine at the same instant, so each endpoint's
	// state — including its timers — lives entirely in its own host's
	// lookahead domain. In serial mode both engines are the network engine
	// and the two events fire back to back, matching the old combined start.
	start, rcvStart := s.Attach(f)
	src := s.Net.Hosts[f.SrcHost]
	at := f.Arrival
	if now := src.Now(); at < now {
		at = now
	}
	dense := int32(f.Dense())
	src.Eng().AtTag(at, sim.EventTag{Kind: checkpoint.KindFlowStart, A: dense}, start)
	if rcvStart != nil {
		dst := s.Net.Hosts[f.DstHost]
		rcvAt := at
		if now := dst.Now(); rcvAt < now {
			rcvAt = now
		}
		dst.Eng().AtTag(rcvAt, sim.EventTag{Kind: checkpoint.KindRcvStart, A: dense}, rcvStart)
	}
}

func (s *Stack) rto() sim.Time {
	if s.RTO > 0 {
		return s.RTO
	}
	rto := 3 * s.Net.F.CycleDuration()
	if rto < sim.Millisecond {
		rto = sim.Millisecond
	}
	return rto
}

// intervalSet tracks received byte ranges for dedup and cumulative acking.
type intervalSet struct {
	// ivs are disjoint, sorted [start, end) ranges.
	ivs [][2]int64
}

// add inserts [start, end) and returns how many bytes were new.
func (s *intervalSet) add(start, end int64) int64 {
	if end <= start {
		return 0
	}
	// Fast paths for the cases that dominate a healthy flow — first packet,
	// in-order tail extension, and duplicate of the tail — none of which
	// need the merge scan or its allocation.
	if n := len(s.ivs); n == 0 {
		s.ivs = append(s.ivs, [2]int64{start, end})
		return end - start
	} else if last := &s.ivs[n-1]; start >= last[0] {
		if end <= last[1] {
			return 0 // fully contained in the tail interval
		}
		if start <= last[1] {
			nb := end - last[1]
			last[1] = end
			return nb
		}
		s.ivs = append(s.ivs, [2]int64{start, end})
		return end - start
	}
	newBytes := end - start
	ns, ne := start, end
	out := make([][2]int64, 0, len(s.ivs)+1)
	placed := false
	for _, iv := range s.ivs {
		switch {
		case iv[1] < ns:
			out = append(out, iv)
		case iv[0] > ne:
			if !placed {
				out = append(out, [2]int64{ns, ne})
				placed = true
			}
			out = append(out, iv)
		default:
			// Overlapping or adjacent: absorb into the merged range and
			// discount the overlap with the original [start, end).
			if os, oe := max64(iv[0], start), min64(iv[1], end); oe > os {
				newBytes -= oe - os
			}
			if iv[0] < ns {
				ns = iv[0]
			}
			if iv[1] > ne {
				ne = iv[1]
			}
		}
	}
	if !placed {
		out = append(out, [2]int64{ns, ne})
	}
	s.ivs = out
	return newBytes
}

// cumulative returns the first missing byte offset.
func (s *intervalSet) cumulative() int64 {
	if len(s.ivs) == 0 || s.ivs[0][0] > 0 {
		return 0
	}
	return s.ivs[0][1]
}

// holes returns up to `limit` missing [start,end) ranges below `size`,
// including the tail beyond the highest received byte.
func (s *intervalSet) holes(limit int, size int64) [][2]int64 {
	var out [][2]int64
	cursor := int64(0)
	for _, iv := range s.ivs {
		if iv[0] > cursor {
			out = append(out, [2]int64{cursor, iv[0]})
			if len(out) == limit {
				return out
			}
		}
		cursor = iv[1]
	}
	if cursor < size {
		out = append(out, [2]int64{cursor, size})
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
