package transport

import (
	"testing"

	"ucmp/internal/netsim"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
)

func unitNDP(t *testing.T, size int64) (*ndpSender, *netsim.Network) {
	t.Helper()
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	eng := sim.NewEngine()
	net := netsim.New(eng, f, nullRouter{}, netsim.NDPQueues(), netsim.NDPQueues(), netsim.RotorConfig{})
	net.Start()
	fl := netsim.NewFlow(1, 0, 17, size, 0)
	net.RegisterFlow(fl)
	s := newNDPSender(net, fl)
	fl.SenderEP = s
	fl.ReceiverEP = sinkEndpoint{}
	return s, net
}

func TestNDPInitialWindow(t *testing.T) {
	s, _ := unitNDP(t, 1<<20)
	s.start()
	if s.sndNxt != int64(ndpIW)*MSS {
		t.Fatalf("initial window sent %d bytes, want %d", s.sndNxt, ndpIW*MSS)
	}
	// Tiny flow sends only what exists.
	s2, _ := unitNDP(t, 100)
	s2.start()
	if s2.sndNxt != 100 {
		t.Fatalf("tiny flow sent %d", s2.sndNxt)
	}
}

func TestNDPPullReleasesOneSegment(t *testing.T) {
	s, _ := unitNDP(t, 1<<20)
	s.start()
	before := s.sndNxt
	s.Deliver(&netsim.Packet{Type: netsim.Pull})
	if s.sndNxt != before+MSS {
		t.Fatalf("pull released %d bytes", s.sndNxt-before)
	}
}

func TestNDPNackPrioritizedOnPull(t *testing.T) {
	s, _ := unitNDP(t, 1<<20)
	s.start()
	s.Deliver(&netsim.Packet{Type: netsim.Nack, Seq: 0})
	before := s.sndNxt
	// The next pull retransmits the NACKed segment instead of new data.
	s.Deliver(&netsim.Packet{Type: netsim.Pull})
	if s.sndNxt != before {
		t.Fatalf("pull sent new data (%d bytes) instead of the retransmission", s.sndNxt-before)
	}
	if len(s.rtxQ) != 0 {
		t.Fatalf("rtx queue not drained: %v", s.rtxQ)
	}
	// Duplicate NACKs for the same segment are folded.
	s.Deliver(&netsim.Packet{Type: netsim.Nack, Seq: MSS})
	s.Deliver(&netsim.Packet{Type: netsim.Nack, Seq: MSS})
	if len(s.rtxQ) != 1 {
		t.Fatalf("duplicate NACK queued twice: %v", s.rtxQ)
	}
}

func TestNDPPullAfterEndOfFlowIsNoop(t *testing.T) {
	s, net := unitNDP(t, 2*MSS)
	s.start() // sends everything (2 segments < IW)
	net.Eng.Run(100 * sim.Microsecond)
	before := net.Counters.DataPackets
	s.Deliver(&netsim.Packet{Type: netsim.Pull})
	net.Eng.Run(200 * sim.Microsecond)
	if net.Counters.DataPackets != before {
		t.Fatalf("pull after end of flow sent data")
	}
}
