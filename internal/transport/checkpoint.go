// Transport checkpointing: the "transport" section serializes each flow's
// endpoint state machines (sender window/ack state, receiver interval sets,
// NDP retransmit queues, RotorLB stream cursors) plus the per-host pull
// pacers. Closures and timers are never serialized — Attach rebuilds every
// endpoint cold, RestoreState refills the plain fields, and RestoreEvent
// re-binds the checkpoint's pending transport events (flow starts, RTO and
// repair occurrences, pacer drains) onto the rebuilt objects.
package transport

import (
	"fmt"
	"sort"

	"ucmp/internal/checkpoint"
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
)

// Endpoint-kind bytes in the transport section. A flow records its sender
// and receiver independently so validation catches a kind mismatch between
// the checkpoint and the requesting configuration.
const (
	epNone uint8 = iota
	epTCPSender
	epTCPReceiver
	epNDPSender
	epNDPReceiver
	epRotorSender
	epRotorReceiver
)

// Snapshot writes the stack's endpoint and pacer state. MPTCP is refused:
// its subflow aggregation holds cross-flow closures this format does not
// describe.
func (s *Stack) Snapshot(w *checkpoint.Writer) error {
	if s.Kind == MPTCP {
		return fmt.Errorf("checkpoint: mptcp transport does not support checkpointing")
	}
	enc := w.Section("transport")
	enc.Str(string(s.Kind))
	nf := s.Net.NumFlows()
	enc.Len(nf)
	for dense := 0; dense < nf; dense++ {
		f := s.Net.FlowAt(dense)
		if err := encodeSender(enc, f); err != nil {
			return err
		}
		if err := encodeReceiver(enc, f); err != nil {
			return err
		}
	}
	hosts := make([]int, 0, len(s.pacers))
	for h := range s.pacers {
		hosts = append(hosts, h)
	}
	sort.Ints(hosts)
	enc.Len(len(hosts))
	for _, h := range hosts {
		p := s.pacers[h]
		enc.U32(uint32(h))
		enc.I64(int64(p.nextFree))
		pending := p.queue[p.qhead:]
		enc.Len(len(pending))
		for _, r := range pending {
			enc.I32(int32(r.f.Dense()))
		}
	}
	return nil
}

func encodeSender(enc *checkpoint.Encoder, f *netsim.Flow) error {
	switch ep := f.SenderEP.(type) {
	case nil:
		enc.U8(epNone)
	case *tcpSender:
		enc.U8(epTCPSender)
		enc.F64(ep.cwnd)
		enc.F64(ep.ssthresh)
		enc.I64(ep.sndUna)
		enc.I64(ep.sndNxt)
		enc.U32(uint32(ep.dupacks))
		enc.I64(ep.recover)
		enc.F64(ep.alpha)
		enc.I64(ep.ackedBytes)
		enc.I64(ep.markedBytes)
		enc.I64(ep.windowEnd)
	case *ndpSender:
		enc.U8(epNDPSender)
		enc.I64(ep.sndNxt)
		enc.Len(len(ep.rtxQ))
		for _, seq := range ep.rtxQ {
			enc.I64(seq)
		}
	case *rotorSender:
		enc.U8(epRotorSender)
		enc.I64(ep.next)
	default:
		return fmt.Errorf("checkpoint: flow %d has unknown sender endpoint %T", f.ID, ep)
	}
	return nil
}

func encodeReceiver(enc *checkpoint.Encoder, f *netsim.Flow) error {
	switch ep := f.ReceiverEP.(type) {
	case nil:
		enc.U8(epNone)
	case *tcpReceiver:
		enc.U8(epTCPReceiver)
		encodeIntervals(enc, ep.ivs)
	case *ndpReceiver:
		enc.U8(epNDPReceiver)
		encodeIntervals(enc, ep.ivs)
	case *rotorReceiver:
		enc.U8(epRotorReceiver)
	default:
		return fmt.Errorf("checkpoint: flow %d has unknown receiver endpoint %T", f.ID, ep)
	}
	return nil
}

func encodeIntervals(enc *checkpoint.Encoder, s *intervalSet) {
	enc.Len(len(s.ivs))
	for _, iv := range s.ivs {
		enc.I64(iv[0])
		enc.I64(iv[1])
	}
}

func decodeIntervals(dec *checkpoint.Decoder, s *intervalSet) {
	n := dec.Len()
	s.ivs = s.ivs[:0]
	for i := 0; i < n; i++ {
		a := dec.I64()
		b := dec.I64()
		s.ivs = append(s.ivs, [2]int64{a, b})
	}
}

// RestoreState refills endpoint and pacer fields from the "transport"
// section. Every flow must already be Attached (same workload, same order)
// so the endpoints exist with the right types.
func (s *Stack) RestoreState(f *checkpoint.File) error {
	if s.Kind == MPTCP {
		return fmt.Errorf("checkpoint: mptcp transport does not support restore")
	}
	dec, err := f.Section("transport")
	if err != nil {
		return err
	}
	if kind := dec.Str(); kind != string(s.Kind) {
		return fmt.Errorf("checkpoint: transport kind %q, config wants %q", kind, s.Kind)
	}
	nf := dec.Len()
	if nf != s.Net.NumFlows() {
		return fmt.Errorf("checkpoint: transport has %d flows, network has %d", nf, s.Net.NumFlows())
	}
	for dense := 0; dense < nf; dense++ {
		fl := s.Net.FlowAt(dense)
		if err := decodeSender(dec, fl); err != nil {
			return err
		}
		if err := decodeReceiver(dec, fl); err != nil {
			return err
		}
	}
	np := dec.Len()
	for i := 0; i < np; i++ {
		host := int(dec.U32())
		if host < 0 || host >= len(s.Net.Hosts) {
			return fmt.Errorf("checkpoint: pacer references unknown host %d", host)
		}
		p := s.pacer(host)
		p.nextFree = sim.Time(dec.I64())
		nq := dec.Len()
		for j := 0; j < nq; j++ {
			fl := s.Net.FlowAt(int(dec.I32()))
			if fl == nil {
				return fmt.Errorf("checkpoint: pacer for host %d queues unknown flow", host)
			}
			r, ok := fl.ReceiverEP.(*ndpReceiver)
			if !ok {
				return fmt.Errorf("checkpoint: pacer for host %d queues non-NDP flow %d", host, fl.ID)
			}
			p.queue = append(p.queue, r)
		}
	}
	return dec.Err()
}

func decodeSender(dec *checkpoint.Decoder, f *netsim.Flow) error {
	kind := dec.U8()
	switch kind {
	case epNone:
		if f.SenderEP != nil {
			return fmt.Errorf("checkpoint: flow %d has a sender, checkpoint has none", f.ID)
		}
	case epTCPSender:
		ep, ok := f.SenderEP.(*tcpSender)
		if !ok {
			return fmt.Errorf("checkpoint: flow %d sender is %T, checkpoint has tcp", f.ID, f.SenderEP)
		}
		ep.cwnd = dec.F64()
		ep.ssthresh = dec.F64()
		ep.sndUna = dec.I64()
		ep.sndNxt = dec.I64()
		ep.dupacks = int(dec.U32())
		ep.recover = dec.I64()
		ep.alpha = dec.F64()
		ep.ackedBytes = dec.I64()
		ep.markedBytes = dec.I64()
		ep.windowEnd = dec.I64()
	case epNDPSender:
		ep, ok := f.SenderEP.(*ndpSender)
		if !ok {
			return fmt.Errorf("checkpoint: flow %d sender is %T, checkpoint has ndp", f.ID, f.SenderEP)
		}
		ep.sndNxt = dec.I64()
		n := dec.Len()
		ep.rtxQ = ep.rtxQ[:0]
		for i := 0; i < n; i++ {
			seq := dec.I64()
			ep.rtxQ = append(ep.rtxQ, seq)
			ep.inRtx[seq] = true
		}
	case epRotorSender:
		ep, ok := f.SenderEP.(*rotorSender)
		if !ok {
			return fmt.Errorf("checkpoint: flow %d sender is %T, checkpoint has rotor", f.ID, f.SenderEP)
		}
		ep.next = dec.I64()
	default:
		return fmt.Errorf("checkpoint: flow %d has unknown sender kind %d", f.ID, kind)
	}
	return nil
}

func decodeReceiver(dec *checkpoint.Decoder, f *netsim.Flow) error {
	kind := dec.U8()
	switch kind {
	case epNone:
		if f.ReceiverEP != nil {
			return fmt.Errorf("checkpoint: flow %d has a receiver, checkpoint has none", f.ID)
		}
	case epTCPReceiver:
		ep, ok := f.ReceiverEP.(*tcpReceiver)
		if !ok {
			return fmt.Errorf("checkpoint: flow %d receiver is %T, checkpoint has tcp", f.ID, f.ReceiverEP)
		}
		decodeIntervals(dec, ep.ivs)
	case epNDPReceiver:
		ep, ok := f.ReceiverEP.(*ndpReceiver)
		if !ok {
			return fmt.Errorf("checkpoint: flow %d receiver is %T, checkpoint has ndp", f.ID, f.ReceiverEP)
		}
		decodeIntervals(dec, ep.ivs)
	case epRotorReceiver:
		if _, ok := f.ReceiverEP.(*rotorReceiver); !ok {
			return fmt.Errorf("checkpoint: flow %d receiver is %T, checkpoint has rotor", f.ID, f.ReceiverEP)
		}
	default:
		return fmt.Errorf("checkpoint: flow %d has unknown receiver kind %d", f.ID, kind)
	}
	return nil
}

// RestoreEvent is the netsim.RestoreExt handler for transport-owned event
// kinds: it re-binds the checkpoint's pending flow starts and timer
// occurrences onto the freshly Attached endpoints.
func (s *Stack) RestoreEvent(eng *sim.Engine, at sim.Time, tag sim.EventTag, timer, armed bool, deadline sim.Time) error {
	flow := func() (*netsim.Flow, error) {
		f := s.Net.FlowAt(int(tag.A))
		if f == nil {
			return nil, fmt.Errorf("checkpoint: event kind %d references unknown flow %d", tag.Kind, tag.A)
		}
		return f, nil
	}
	switch tag.Kind {
	case checkpoint.KindFlowStart:
		f, err := flow()
		if err != nil {
			return err
		}
		if timer {
			return fmt.Errorf("checkpoint: flow-start event is a timer occurrence")
		}
		if s.Net.Hosts[f.SrcHost].Eng() != eng {
			return fmt.Errorf("checkpoint: flow %d start on foreign engine", f.ID)
		}
		var start func()
		switch ep := f.SenderEP.(type) {
		case *tcpSender:
			start = ep.start
		case *ndpSender:
			start = ep.start
		case *rotorSender:
			start = ep.start
		default:
			return fmt.Errorf("checkpoint: flow %d start with sender %T", f.ID, f.SenderEP)
		}
		eng.AtTag(at, tag, start)
	case checkpoint.KindRcvStart:
		f, err := flow()
		if err != nil {
			return err
		}
		if timer {
			return fmt.Errorf("checkpoint: receiver-start event is a timer occurrence")
		}
		rcv, ok := f.ReceiverEP.(*ndpReceiver)
		if !ok {
			return fmt.Errorf("checkpoint: flow %d receiver start with receiver %T", f.ID, f.ReceiverEP)
		}
		if s.Net.Hosts[f.DstHost].Eng() != eng {
			return fmt.Errorf("checkpoint: flow %d receiver start on foreign engine", f.ID)
		}
		eng.AtTag(at, tag, rcv.armRepair)
	case checkpoint.KindTCPRTO:
		f, err := flow()
		if err != nil {
			return err
		}
		ep, ok := f.SenderEP.(*tcpSender)
		if !ok || !timer {
			return fmt.Errorf("checkpoint: bad rto occurrence for flow %d (%T)", f.ID, f.SenderEP)
		}
		ep.rtoT.RestoreOccurrence(at, deadline, armed)
	case checkpoint.KindNDPRepair:
		f, err := flow()
		if err != nil {
			return err
		}
		ep, ok := f.ReceiverEP.(*ndpReceiver)
		if !ok || !timer {
			return fmt.Errorf("checkpoint: bad repair occurrence for flow %d (%T)", f.ID, f.ReceiverEP)
		}
		ep.repair.RestoreOccurrence(at, deadline, armed)
	case checkpoint.KindPacer:
		host := int(tag.A)
		if host < 0 || host >= len(s.Net.Hosts) || !timer {
			return fmt.Errorf("checkpoint: bad pacer occurrence for host %d", tag.A)
		}
		s.pacer(host).timer.RestoreOccurrence(at, deadline, armed)
	default:
		return fmt.Errorf("checkpoint: transport cannot restore event kind %d", tag.Kind)
	}
	return nil
}

// ReparkRotorWaiters re-registers the checkpoint's parked RotorLB credit
// callbacks (netsim records which flows were waiting; only the transport
// holds the sender closures). Must run after RestoreFrom.
func (s *Stack) ReparkRotorWaiters() error {
	for _, wt := range s.Net.RestoredRotorWaiters() {
		ep, ok := wt.Flow.SenderEP.(*rotorSender)
		if !ok {
			return fmt.Errorf("checkpoint: rotor waiter for flow %d with sender %T", wt.Flow.ID, wt.Flow.SenderEP)
		}
		s.Net.ToRs[wt.Tor].RotorNotify(wt.Dst, wt.Flow, ep.pushFn)
	}
	return nil
}
