package transport

import (
	"ucmp/internal/checkpoint"
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
)

// ndpIW is NDP's initial window in packets: the sender blasts this many
// segments at line rate; everything after is receiver-pulled.
const ndpIW = 10

// ndpSender implements the sender side of NDP (Handley et al., §7.1):
// blind first window, then one segment per PULL, retransmitting NACKed
// (trimmed) segments with priority.
type ndpSender struct {
	net  *netsim.Network
	f    *netsim.Flow
	host *netsim.Host

	sndNxt int64
	rtxQ   []int64 // segment offsets awaiting retransmission
	inRtx  map[int64]bool
}

func newNDPSender(n *netsim.Network, f *netsim.Flow) *ndpSender {
	return &ndpSender{net: n, f: f, host: n.Hosts[f.SrcHost], inRtx: make(map[int64]bool)}
}

func (s *ndpSender) start() {
	for i := 0; i < ndpIW && s.sndNxt < s.f.Size; i++ {
		s.sendNew()
	}
}

func (s *ndpSender) sendNew() {
	length := int64(MSS)
	if s.sndNxt+length > s.f.Size {
		length = s.f.Size - s.sndNxt
	}
	s.emit(s.sndNxt, int(length))
	s.sndNxt += length
	s.f.BytesSent += length
}

func (s *ndpSender) emit(seq int64, length int) {
	p := s.host.NewPacket()
	p.Flow = s.f
	p.Type = netsim.Data
	p.Seq = seq
	p.PayloadLen = length
	p.WireLen = length + netsim.HeaderBytes
	s.host.Send(p)
}

// Deliver implements netsim.Endpoint: NACKs queue retransmissions, PULLs
// release one segment each (retransmissions first).
func (s *ndpSender) Deliver(p *netsim.Packet) {
	switch p.Type {
	case netsim.Nack:
		if !s.inRtx[p.Seq] {
			s.inRtx[p.Seq] = true
			s.rtxQ = append(s.rtxQ, p.Seq)
		}
	case netsim.Pull:
		if len(s.rtxQ) > 0 {
			seq := s.rtxQ[0]
			s.rtxQ = s.rtxQ[1:]
			delete(s.inRtx, seq)
			length := int64(MSS)
			if seq+length > s.f.Size {
				length = s.f.Size - seq
			}
			s.emit(seq, int(length))
			return
		}
		if s.sndNxt < s.f.Size {
			s.sendNew()
		}
	}
}

// ndpReceiver acknowledges data, NACKs trimmed headers, and paces PULLs
// through the per-host pacer. A repair timer covers packets dropped
// outright (the §6.3 recirculation limit) by NACKing holes after an idle
// timeout — the RTX-timeout fallback real NDP stacks carry.
type ndpReceiver struct {
	net  *netsim.Network
	f    *netsim.Flow
	host *netsim.Host
	ivs  *intervalSet
	// pulls outstanding beyond the first window are capped implicitly by
	// one-pull-per-arrival.
	pacer *pullPacer

	rto    sim.Time
	repair *sim.Timer // idle-repair deadline, slid on every arrival
}

func newNDPReceiver(stack *Stack, f *netsim.Flow) *ndpReceiver {
	host := stack.Net.Hosts[f.DstHost]
	r := &ndpReceiver{
		net: stack.Net, f: f, host: host, ivs: &intervalSet{},
		pacer: stack.pacer(f.DstHost), rto: stack.rto(),
	}
	r.repair = host.Eng().NewTimerTag(sim.EventTag{Kind: checkpoint.KindNDPRepair, A: int32(f.Dense())}, r.repairTick)
	return r
}

// armRepair slides the idle-repair deadline one RTO out; the timer only
// fires after the flow has been quiet that long.
func (r *ndpReceiver) armRepair() {
	if r.f.Finished {
		r.repair.Cancel()
		return
	}
	r.repair.Reset(r.host.Now() + r.rto)
}

// repairTick NACKs missing chunks once the flow has gone quiet for an RTO.
func (r *ndpReceiver) repairTick() {
	if r.f.Finished {
		return
	}
	budget := 16
	for _, hole := range r.ivs.holes(budget, r.f.Size) {
		for seq := hole[0]; seq < hole[1] && budget > 0; seq += MSS {
			r.sendNack(seq)
			r.pacer.request(r)
			budget--
		}
		if budget == 0 {
			break
		}
	}
	r.armRepair()
}

// Deliver implements netsim.Endpoint.
func (r *ndpReceiver) Deliver(p *netsim.Packet) {
	if p.Type != netsim.Data || r.f.Finished {
		return
	}
	r.armRepair()
	if p.Trimmed {
		r.sendNack(p.Seq)
		r.pacer.request(r)
		return
	}
	newBytes := r.ivs.add(p.Seq, p.Seq+int64(p.PayloadLen))
	r.net.RecordDelivered(r.f, newBytes)
	if r.f.Finished {
		r.repair.Cancel()
		return
	}
	// One pull credit per arrival: the sender emits exactly one segment
	// (retransmission first) per pull, so pulls are self-limiting.
	r.pacer.request(r)
}

func (r *ndpReceiver) sendNack(seq int64) {
	nack := r.host.NewPacket()
	nack.Flow = r.f
	nack.Type = netsim.Nack
	nack.Seq = seq
	nack.WireLen = netsim.HeaderBytes
	r.host.Send(nack)
}

func (r *ndpReceiver) sendPull() {
	if r.f.Finished {
		return
	}
	pull := r.host.NewPacket()
	pull.Flow = r.f
	pull.Type = netsim.Pull
	pull.WireLen = netsim.HeaderBytes
	r.host.Send(pull)
}

// pullPacer spaces PULLs of all flows terminating at one host at the link
// rate (one MTU serialization per pull), the core of NDP's receiver-driven
// allocation. It lives on the receiving host's domain engine: every flow it
// paces terminates at that host.
type pullPacer struct {
	net      *netsim.Network
	host     *netsim.Host
	queue    []*ndpReceiver
	qhead    int
	nextFree sim.Time
	timer    *sim.Timer // next drain, armed whenever the queue is non-empty
}

func (s *Stack) pacer(host int) *pullPacer {
	p, ok := s.pacers[host]
	if !ok {
		p = &pullPacer{net: s.Net, host: s.Net.Hosts[host]}
		p.timer = p.host.Eng().NewTimerTag(sim.EventTag{Kind: checkpoint.KindPacer, A: int32(host)}, p.drain)
		s.pacers[host] = p
	}
	return p
}

func (p *pullPacer) request(r *ndpReceiver) {
	p.queue = append(p.queue, r)
	p.drain()
}

func (p *pullPacer) drain() {
	now := p.host.Now()
	if now < p.nextFree {
		// Still serializing the previous pull. Make sure a drain is armed:
		// a request can arrive in this window with no event outstanding
		// (the queue had emptied before nextFree passed).
		if p.qhead < len(p.queue) {
			p.timer.Reset(p.nextFree)
		}
		return
	}
	if p.qhead >= len(p.queue) {
		return
	}
	r := p.queue[p.qhead]
	p.queue[p.qhead] = nil
	p.qhead++
	if p.qhead == len(p.queue) {
		// Drained: rewind so the backing array is reused.
		p.queue = p.queue[:0]
		p.qhead = 0
	}
	r.sendPull()
	gap := p.net.F.SerializationDelay(MSS + netsim.HeaderBytes)
	p.nextFree = now + gap
	if p.qhead < len(p.queue) {
		p.timer.Reset(p.nextFree)
	}
}
