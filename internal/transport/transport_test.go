package transport

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ucmp/internal/core"
	"ucmp/internal/failure"
	"ucmp/internal/netsim"
	"ucmp/internal/routing"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
)

// ---- intervalSet ----

func TestIntervalSetBasics(t *testing.T) {
	s := &intervalSet{}
	if n := s.add(0, 100); n != 100 {
		t.Fatalf("first add: %d new, want 100", n)
	}
	if n := s.add(0, 100); n != 0 {
		t.Fatalf("duplicate add: %d new, want 0", n)
	}
	if n := s.add(50, 150); n != 50 {
		t.Fatalf("overlap add: %d new, want 50", n)
	}
	if c := s.cumulative(); c != 150 {
		t.Fatalf("cumulative %d, want 150", c)
	}
	if n := s.add(200, 300); n != 100 {
		t.Fatalf("gap add: %d new, want 100", n)
	}
	if c := s.cumulative(); c != 150 {
		t.Fatalf("cumulative with hole %d, want 150", c)
	}
	// Filling the hole merges everything.
	if n := s.add(150, 200); n != 50 {
		t.Fatalf("hole fill: %d new, want 50", n)
	}
	if c := s.cumulative(); c != 300 {
		t.Fatalf("cumulative %d, want 300", c)
	}
	if len(s.ivs) != 1 {
		t.Fatalf("intervals not merged: %v", s.ivs)
	}
	if n := s.add(10, 5); n != 0 {
		t.Fatalf("empty range added %d", n)
	}
}

func TestIntervalSetHoles(t *testing.T) {
	s := &intervalSet{}
	s.add(100, 200)
	s.add(300, 400)
	holes := s.holes(10, 500)
	want := [][2]int64{{0, 100}, {200, 300}, {400, 500}}
	if len(holes) != len(want) {
		t.Fatalf("holes %v, want %v", holes, want)
	}
	for i := range want {
		if holes[i] != want[i] {
			t.Fatalf("holes %v, want %v", holes, want)
		}
	}
	// Limit applies.
	if h := s.holes(1, 500); len(h) != 1 {
		t.Fatalf("limit ignored: %v", h)
	}
	// Complete set has no holes.
	s2 := &intervalSet{}
	s2.add(0, 500)
	if h := s2.holes(10, 500); len(h) != 0 {
		t.Fatalf("unexpected holes %v", h)
	}
}

// Property: intervalSet agrees with a reference bitmap under random adds.
func TestIntervalSetMatchesBitmap(t *testing.T) {
	const size = 512
	prop := func(ops []uint16) bool {
		s := &intervalSet{}
		ref := make([]bool, size)
		for _, op := range ops {
			start := int64(op % size)
			length := int64(op%37) + 1
			end := start + length
			if end > size {
				end = size
			}
			got := s.add(start, end)
			var want int64
			for i := start; i < end; i++ {
				if !ref[i] {
					want++
					ref[i] = true
				}
			}
			if got != want {
				return false
			}
		}
		// Cumulative agrees.
		var cum int64
		for cum < size && ref[cum] {
			cum++
		}
		return s.cumulative() == cum
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// ---- protocol behaviors over a real fabric ----

func miniNet(t testing.TB, kind Kind) (*sim.Engine, *netsim.Network, *Stack) {
	t.Helper()
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	eng := sim.NewEngine()
	router := routing.NewUCMP(core.BuildPathSet(f, 0.5))
	net := netsim.New(eng, f, router, QueueSpec(kind), QueueSpec(kind), netsim.DefaultRotor())
	net.Stamper = router.StampBucket
	net.Start()
	return eng, net, NewStack(net, kind)
}

func TestQueueSpecPerProtocol(t *testing.T) {
	if q := QueueSpec(DCTCP); q.MaxDataPackets != 300 || q.ECNThreshold != 65 || q.Trim {
		t.Fatalf("DCTCP queue spec %+v", q)
	}
	if q := QueueSpec(NDP); q.MaxDataPackets != 80 || !q.Trim {
		t.Fatalf("NDP queue spec %+v", q)
	}
	if q := QueueSpec(TCP); q.Trim || q.ECNThreshold != 0 {
		t.Fatalf("TCP queue spec %+v", q)
	}
}

func TestDCTCPSingleFlowCompletes(t *testing.T) {
	eng, net, stack := miniNet(t, DCTCP)
	f := netsim.NewFlow(1, 0, 17, 3_000_000, 0)
	stack.Launch(f)
	eng.Run(100 * sim.Millisecond)
	if !f.Finished {
		t.Fatalf("flow unfinished: %d/%d delivered", f.BytesDelivered, f.Size)
	}
	// Goodput sanity: 3MB over a 40G fabric should take well under 10ms.
	if f.FCT() > 20*sim.Millisecond {
		t.Fatalf("FCT %v implausibly slow", f.FCT())
	}
	if net.Counters.DataBytesDelivered != f.Size {
		t.Fatalf("delivered %d, want %d", net.Counters.DataBytesDelivered, f.Size)
	}
}

func TestDCTCPIncastMarksECN(t *testing.T) {
	eng, net, stack := miniNet(t, DCTCP)
	// 6 senders into one receiver host congest its downlink.
	var flows []*netsim.Flow
	for i := 0; i < 6; i++ {
		flows = append(flows, netsim.NewFlow(int64(i+1), (i*2+4)%32, 17, 2_000_000, 0))
	}
	for _, f := range flows {
		stack.Launch(f)
	}
	eng.Run(300 * sim.Millisecond)
	marked := int64(0)
	for _, f := range flows {
		if !f.Finished {
			t.Fatalf("incast flow %d unfinished (%d/%d)", f.ID, f.BytesDelivered, f.Size)
		}
	}
	// ECN must have fired somewhere under incast.
	for _, tor := range net.ToRs {
		_ = tor
	}
	// We can't reach queues directly from the test (unexported); infer from
	// the aggregate: without marks DCTCP would overshoot and drop.
	marked = net.Counters.DroppedPackets
	_ = marked // drops may be zero thanks to ECN -- that's the success case
}

func TestTCPWithoutECNCompletes(t *testing.T) {
	eng, _, stack := miniNet(t, TCP)
	f := netsim.NewFlow(1, 2, 19, 1_000_000, 0)
	stack.Launch(f)
	eng.Run(100 * sim.Millisecond)
	if !f.Finished {
		t.Fatalf("TCP flow unfinished: %d/%d", f.BytesDelivered, f.Size)
	}
}

func TestNDPIncastTrimsAndRecovers(t *testing.T) {
	eng, _, stack := miniNet(t, NDP)
	var flows []*netsim.Flow
	for i := 0; i < 8; i++ {
		flows = append(flows, netsim.NewFlow(int64(i+1), (i*2)%16+16, 1, 400_000, 0))
	}
	for _, f := range flows {
		stack.Launch(f)
	}
	eng.Run(300 * sim.Millisecond)
	for _, f := range flows {
		if !f.Finished {
			t.Fatalf("NDP incast flow %d unfinished (%d/%d)", f.ID, f.BytesDelivered, f.Size)
		}
	}
}

func TestNDPRepairAfterLoss(t *testing.T) {
	// Fail enough links that some packets get dropped at the reroute limit;
	// the repair timer must still complete the flow.
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	eng := sim.NewEngine()
	router := routing.NewUCMP(core.BuildPathSet(f, 0.5))
	net := netsim.New(eng, f, router, QueueSpec(NDP), QueueSpec(NDP), netsim.DefaultRotor())
	net.Stamper = router.StampBucket
	// Physically fail one uplink without telling the router: packets
	// planned over it will expire and recirculate; a few may exceed the
	// limit and drop.
	net.Faults = failure.NewTimeline().LinkDown(0, 3, 1).Compile(f)
	net.Start()
	stack := NewStack(net, NDP)
	fl := netsim.NewFlow(1, 6, 21, 500_000, 0) // src host on ToR 3
	stack.Launch(fl)
	eng.Run(400 * sim.Millisecond)
	if !fl.Finished {
		t.Fatalf("flow unfinished despite NDP repair: %d/%d (drops=%d)",
			fl.BytesDelivered, fl.Size, net.Counters.DroppedPackets)
	}
}

func TestRotorTransportBackpressure(t *testing.T) {
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	eng := sim.NewEngine()
	router := routing.NewVLB(f)
	net := netsim.New(eng, f, router, QueueSpec(DCTCP), QueueSpec(DCTCP), netsim.DefaultRotor())
	net.Start()
	stack := NewStack(net, DCTCP)
	// Two rotor senders on the same ToR toward the same destination rack
	// share VOQ credit.
	f1 := netsim.NewFlow(1, 0, 17, 4_000_000, 0)
	f2 := netsim.NewFlow(2, 1, 16, 4_000_000, 0)
	stack.Launch(f1)
	stack.Launch(f2)
	eng.Run(400 * sim.Millisecond)
	if !f1.Finished || !f2.Finished {
		t.Fatalf("rotor flows unfinished: %d/%d and %d/%d",
			f1.BytesDelivered, f1.Size, f2.BytesDelivered, f2.Size)
	}
	if f1.SenderEP == nil || f1.ReceiverEP == nil {
		t.Fatal("endpoints not attached")
	}
}

func TestStackUnknownKindPanics(t *testing.T) {
	eng, net, _ := miniNet(t, DCTCP)
	_ = eng
	s := NewStack(net, Kind("bogus"))
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	s.Launch(netsim.NewFlow(99, 0, 17, 1000, 0))
}

func TestStackRTODefault(t *testing.T) {
	_, net, stack := miniNet(t, DCTCP)
	if rto := stack.rto(); rto < sim.Millisecond {
		t.Fatalf("default RTO %v below 1ms floor", rto)
	}
	stack.RTO = 5 * sim.Millisecond
	if stack.rto() != 5*sim.Millisecond {
		t.Fatal("explicit RTO ignored")
	}
	_ = net
}

// Reordering tolerance: the receiver must deliver and count bytes exactly
// once even when segments arrive out of order (RDCN paths reorder, §9).
func TestReceiverHandlesReordering(t *testing.T) {
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	eng := sim.NewEngine()
	router := routing.NewUCMP(core.BuildPathSet(f, 0.5))
	net := netsim.New(eng, f, router, QueueSpec(DCTCP), QueueSpec(DCTCP), netsim.DefaultRotor())
	net.Start()
	fl := netsim.NewFlow(1, 0, 17, 10*MSS, 0)
	net.RegisterFlow(fl)
	rcv := &tcpReceiver{net: net, f: fl, host: net.Hosts[fl.DstHost], ivs: &intervalSet{}}
	fl.ReceiverEP = rcv
	fl.SenderEP = sinkEndpoint{}
	// Deliver segments in a shuffled order, with one duplicate.
	order := []int64{3, 0, 1, 4, 2, 8, 6, 5, 7, 9, 4}
	for _, i := range order {
		rcv.Deliver(&netsim.Packet{Flow: fl, Type: netsim.Data, Seq: i * MSS, PayloadLen: MSS})
	}
	if fl.BytesDelivered != fl.Size {
		t.Fatalf("delivered %d, want %d", fl.BytesDelivered, fl.Size)
	}
	if !fl.Finished {
		t.Fatal("flow should have finished")
	}
}

type sinkEndpoint struct{}

func (sinkEndpoint) Deliver(*netsim.Packet) {}
