package transport

import (
	"ucmp/internal/netsim"
)

// rotorSender is the host side of RotorLB (§7.1): it streams segments into
// its ToR's local VOQ for the destination rack, blocking on the credit
// backpressure the ToR exposes. No retransmission machinery: the in-fabric
// path is lossless by construction (bounded indirection, unbounded VOQs).
type rotorSender struct {
	net  *netsim.Network
	f    *netsim.Flow
	host *netsim.Host
	tor  *netsim.ToR

	next   int64
	dstToR int
	pushFn func() // push pre-bound for credit-notify parking
}

func newRotorSender(n *netsim.Network, f *netsim.Flow) *rotorSender {
	host := n.Hosts[f.SrcHost]
	s := &rotorSender{
		net: n, f: f, host: host,
		tor:    n.ToRs[host.ToR()],
		dstToR: n.HostToR(f.DstHost),
	}
	s.pushFn = s.push
	return s
}

func (s *rotorSender) start() { s.push() }

// push streams segments while credit lasts, then parks on a notify.
func (s *rotorSender) push() {
	for s.next < s.f.Size {
		if !s.tor.RotorHasCredit(s.dstToR) {
			s.tor.RotorNotify(s.dstToR, s.f, s.pushFn)
			return
		}
		length := int64(MSS)
		if s.next+length > s.f.Size {
			length = s.f.Size - s.next
		}
		p := s.host.NewPacket()
		p.Flow = s.f
		p.Type = netsim.Data
		p.Seq = s.next
		p.PayloadLen = int(length)
		p.WireLen = int(length) + netsim.HeaderBytes
		s.host.Send(p)
		s.next += length
		s.f.BytesSent += length
	}
}

// Deliver implements netsim.Endpoint; RotorLB senders receive no control
// traffic.
func (s *rotorSender) Deliver(p *netsim.Packet) {}

// rotorReceiver counts arriving payload; RotorLB never duplicates bytes,
// so every arrival is new.
type rotorReceiver struct {
	net *netsim.Network
	f   *netsim.Flow
}

// Deliver implements netsim.Endpoint.
func (r *rotorReceiver) Deliver(p *netsim.Packet) {
	if p.Type != netsim.Data || p.Trimmed {
		return
	}
	r.net.RecordDelivered(r.f, int64(p.PayloadLen))
}
