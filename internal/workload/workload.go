// Package workload generates the traffic the paper evaluates on (§7.1):
// open-loop Poisson flow arrivals with flow sizes drawn from the published
// web search (DCTCP) and data mining (VL2) distributions of Microsoft's
// production DCNs, scaled to a target host-link load. It also provides the
// permutation iperf background and Memcached-style request workloads of the
// testbed experiments (§8).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ucmp/internal/netsim"
	"ucmp/internal/sim"
)

// CDFPoint is one point of an empirical flow-size CDF.
type CDFPoint struct {
	Bytes int64
	Prob  float64
}

// Dist is an empirical flow-size distribution sampled by inverse transform
// with log-linear interpolation between points.
type Dist struct {
	Name   string
	Points []CDFPoint
}

// WebSearch returns the web search workload (DCTCP paper): mostly short
// flows, the majority under 15 MB (§7.1).
func WebSearch() *Dist {
	return &Dist{Name: "websearch", Points: []CDFPoint{
		{6 * 1024, 0.15},
		{13 * 1024, 0.2},
		{19 * 1024, 0.3},
		{33 * 1024, 0.4},
		{53 * 1024, 0.53},
		{133 * 1024, 0.6},
		{667 * 1024, 0.7},
		{1467 * 1024, 0.8},
		{3333 * 1024, 0.9},
		{6667 * 1024, 0.95},
		{20000 * 1024, 0.98},
		{30000 * 1024, 1.0},
	}}
}

// DataMining returns the data mining workload (VL2 paper): a heavy-tailed
// distribution whose flows reach 1 GB, with most bytes in flows over 15 MB
// (§7.1).
func DataMining() *Dist {
	return &Dist{Name: "datamining", Points: []CDFPoint{
		{100, 0.1},
		{180, 0.2},
		{250, 0.3},
		{560, 0.4},
		{900, 0.5},
		{1100, 0.6},
		{1870, 0.7},
		{3160, 0.8},
		{10000, 0.9},
		{400000, 0.95},
		{3.16e6, 0.98},
		{1e8, 0.99},
		{1e9, 1.0},
	}}
}

// Fixed returns a degenerate distribution: every flow has exactly `size`
// bytes (useful for controlled experiments and tests).
func Fixed(size int64) *Dist {
	return &Dist{Name: "fixed", Points: []CDFPoint{{Bytes: size, Prob: 1}}}
}

// Uniform returns a distribution roughly uniform (in log space) between
// min and max bytes.
func Uniform(min, max int64) *Dist {
	return &Dist{Name: "uniform", Points: []CDFPoint{{Bytes: min, Prob: 1e-9}, {Bytes: max, Prob: 1}}}
}

// Validate checks monotonicity and termination at probability 1.
func (d *Dist) Validate() error {
	if len(d.Points) == 0 {
		return fmt.Errorf("workload: %s has no points", d.Name)
	}
	prevB, prevP := int64(0), 0.0
	for _, pt := range d.Points {
		if pt.Bytes <= prevB || pt.Prob <= prevP || pt.Prob > 1 {
			return fmt.Errorf("workload: %s not monotone at %+v", d.Name, pt)
		}
		prevB, prevP = pt.Bytes, pt.Prob
	}
	if d.Points[len(d.Points)-1].Prob != 1 {
		return fmt.Errorf("workload: %s CDF does not reach 1", d.Name)
	}
	return nil
}

// Sample draws a flow size by inverse transform.
func (d *Dist) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	i := sort.Search(len(d.Points), func(i int) bool { return d.Points[i].Prob >= u })
	if i == 0 {
		if len(d.Points) == 1 {
			return d.Points[0].Bytes // degenerate (Fixed) distribution
		}
		// Interpolate from (0 bytes, 0) to the first point.
		frac := u / d.Points[0].Prob
		b := int64(frac * float64(d.Points[0].Bytes))
		if b < 1 {
			b = 1
		}
		return b
	}
	lo, hi := d.Points[i-1], d.Points[i]
	frac := (u - lo.Prob) / (hi.Prob - lo.Prob)
	// Log-linear interpolation fits heavy-tailed size distributions.
	logB := math.Log(float64(lo.Bytes)) + frac*(math.Log(float64(hi.Bytes))-math.Log(float64(lo.Bytes)))
	return int64(math.Exp(logB))
}

// Mean returns the analytic mean of the interpolated distribution,
// approximated by numerical integration over the CDF segments.
func (d *Dist) Mean() float64 {
	total := 0.0
	prevB, prevP := 1.0, 0.0
	for _, pt := range d.Points {
		p := pt.Prob - prevP
		// Mean of the log-linear segment, approximated by the geometric
		// midpoint of its endpoints.
		mid := math.Sqrt(prevB * float64(pt.Bytes))
		total += p * mid
		prevB, prevP = float64(pt.Bytes), pt.Prob
	}
	return total
}

// PoissonConfig drives the open-loop generator.
type PoissonConfig struct {
	Dist     *Dist
	NumHosts int
	// LinkBps is the host link bandwidth; Load is the target utilization of
	// host-to-ToR links (the paper runs 40%, saturating the core).
	LinkBps int64
	Load    float64
	// Duration bounds arrival times.
	Duration sim.Time
	Seed     int64
	// HostsPerToR, when positive, excludes intra-rack pairs so all traffic
	// crosses the circuit fabric (the paper's traffic matrix is ToR-level).
	HostsPerToR int
	// MaxFlowSize, when positive, clips sampled flow sizes (scaled runs
	// cannot finish gigabyte flows). The arrival rate is calibrated against
	// the clipped mean so the offered load stays at the target.
	MaxFlowSize int64
	// Hotspot, in (0,1), sends that probability mass of flows toward a
	// small set of hot destination hosts (one per 8 hosts), creating the
	// hot spots the §10 congestion-aware extension targets.
	Hotspot float64
}

// Generate draws the flow set: Poisson arrivals at aggregate rate
// load×NumHosts×LinkBps/8 bytes/s divided by the mean flow size, with
// uniform random (src,dst) host pairs.
func Generate(cfg PoissonConfig) []*netsim.Flow {
	if err := cfg.Dist.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	mean := cfg.Dist.ClippedMean(cfg.MaxFlowSize)
	bytesPerSec := cfg.Load * float64(cfg.NumHosts) * float64(cfg.LinkBps) / 8
	flowsPerSec := bytesPerSec / mean
	var flows []*netsim.Flow
	t := 0.0
	id := int64(1)
	horizon := cfg.Duration.Seconds()
	for {
		t += rng.ExpFloat64() / flowsPerSec
		if t >= horizon {
			break
		}
		src := rng.Intn(cfg.NumHosts)
		dst := cfg.drawDst(rng, src)
		size := cfg.Dist.Sample(rng)
		if cfg.MaxFlowSize > 0 && size > cfg.MaxFlowSize {
			size = cfg.MaxFlowSize
		}
		flows = append(flows, netsim.NewFlow(id, src, dst, size, sim.Time(t*float64(sim.Second))))
		id++
	}
	return flows
}

// drawDst picks a destination, honoring rack exclusion and the hotspot
// skew.
func (cfg PoissonConfig) drawDst(rng *rand.Rand, src int) int {
	hotCount := cfg.NumHosts / 8
	if hotCount < 1 {
		hotCount = 1
	}
	for {
		var dst int
		if cfg.Hotspot > 0 && rng.Float64() < cfg.Hotspot {
			dst = rng.Intn(hotCount) * 8 // spread hot hosts across racks
			if dst >= cfg.NumHosts {
				dst = cfg.NumHosts - 1
			}
		} else {
			dst = rng.Intn(cfg.NumHosts)
		}
		if dst == src {
			continue
		}
		if cfg.HostsPerToR > 0 && dst/cfg.HostsPerToR == src/cfg.HostsPerToR {
			continue
		}
		return dst
	}
}

// ClippedMean returns the mean of the distribution with sizes clipped at
// max (0 = unclipped), using the same per-segment approximation as Mean.
func (d *Dist) ClippedMean(max int64) float64 {
	if max <= 0 {
		return d.Mean()
	}
	total := 0.0
	prevB, prevP := 1.0, 0.0
	for _, pt := range d.Points {
		p := pt.Prob - prevP
		mid := math.Sqrt(prevB * float64(pt.Bytes))
		if mid > float64(max) {
			mid = float64(max)
		}
		total += p * mid
		prevB, prevP = float64(pt.Bytes), pt.Prob
	}
	return total
}

// Permutation returns one long-lived background flow per host, each sending
// to the host with the same index under the neighboring ToR (the §8 iperf
// background pattern).
func Permutation(numHosts, hostsPerToR int, size int64, baseID int64) []*netsim.Flow {
	numToRs := numHosts / hostsPerToR
	flows := make([]*netsim.Flow, 0, numHosts)
	for h := 0; h < numHosts; h++ {
		tor := h / hostsPerToR
		idx := h % hostsPerToR
		dst := ((tor+1)%numToRs)*hostsPerToR + idx
		flows = append(flows, netsim.NewFlow(baseID+int64(h), h, dst, size, 0))
	}
	return flows
}

// Memcached returns request/response style short flows: every client host
// issues `requests` PULLs of respBytes from the server host, spaced by an
// exponential think time (the §8 Memcached/Memslap foreground).
func Memcached(clients []int, server int, requests int, respBytes int64, meanGap sim.Time, seed int64, baseID int64) []*netsim.Flow {
	rng := rand.New(rand.NewSource(seed))
	var flows []*netsim.Flow
	id := baseID
	for _, c := range clients {
		t := 0.0
		for r := 0; r < requests; r++ {
			t += rng.ExpFloat64() * float64(meanGap)
			fl := netsim.NewFlow(id, server, c, respBytes, sim.Time(t))
			fl.Priority = true
			flows = append(flows, fl)
			id++
		}
	}
	return flows
}
