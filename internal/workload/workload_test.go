package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ucmp/internal/sim"
)

func TestDistsValid(t *testing.T) {
	for _, d := range []*Dist{WebSearch(), DataMining()} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
	bad := &Dist{Name: "bad", Points: []CDFPoint{{100, 0.5}, {50, 1.0}}}
	if bad.Validate() == nil {
		t.Error("non-monotone distribution accepted")
	}
	bad2 := &Dist{Name: "bad2", Points: []CDFPoint{{100, 0.5}}}
	if bad2.Validate() == nil {
		t.Error("CDF not reaching 1 accepted")
	}
	empty := &Dist{Name: "empty"}
	if empty.Validate() == nil {
		t.Error("empty distribution accepted")
	}
}

func TestSampleWithinSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []*Dist{WebSearch(), DataMining()} {
		max := d.Points[len(d.Points)-1].Bytes
		for i := 0; i < 10000; i++ {
			s := d.Sample(rng)
			if s < 1 || s > max {
				t.Fatalf("%s: sample %d outside (0, %d]", d.Name, s, max)
			}
		}
	}
}

// The empirical mean of many samples should approach the analytic Mean().
func TestMeanMatchesSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := WebSearch()
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	emp := sum / float64(n)
	ana := d.Mean()
	if ratio := emp / ana; ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("empirical mean %.0f vs analytic %.0f (ratio %.2f)", emp, ana, ratio)
	}
}

// Web search is short-flow dominated; data mining is byte-dominated by
// >15MB flows (§7.1).
func TestWorkloadShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ws := WebSearch()
	under15 := 0
	n := 50000
	for i := 0; i < n; i++ {
		if ws.Sample(rng) < 15<<20 {
			under15++
		}
	}
	if frac := float64(under15) / float64(n); frac < 0.9 {
		t.Fatalf("web search: only %.2f of flows under 15MB", frac)
	}
	dm := DataMining()
	var total, big float64
	for i := 0; i < n; i++ {
		s := float64(dm.Sample(rng))
		total += s
		if s >= 15<<20 {
			big += s
		}
	}
	if frac := big / total; frac < 0.5 {
		t.Fatalf("data mining: only %.2f of bytes from >=15MB flows", frac)
	}
}

func TestGeneratePoisson(t *testing.T) {
	cfg := PoissonConfig{
		Dist:        WebSearch(),
		NumHosts:    32,
		LinkBps:     40e9,
		Load:        0.4,
		Duration:    5 * sim.Millisecond,
		Seed:        1,
		HostsPerToR: 2,
	}
	flows := Generate(cfg)
	if len(flows) == 0 {
		t.Fatal("no flows")
	}
	var bytes float64
	ids := map[int64]bool{}
	for _, f := range flows {
		if f.SrcHost == f.DstHost {
			t.Fatal("self flow")
		}
		if f.SrcHost/2 == f.DstHost/2 {
			t.Fatal("intra-rack flow despite HostsPerToR")
		}
		if f.Arrival < 0 || f.Arrival >= cfg.Duration {
			t.Fatalf("arrival %v outside window", f.Arrival)
		}
		if ids[f.ID] {
			t.Fatal("duplicate flow id")
		}
		ids[f.ID] = true
		bytes += float64(f.Size)
	}
	// Offered load should approximate the target within sampling noise.
	target := cfg.Load * float64(cfg.NumHosts) * float64(cfg.LinkBps) / 8 * cfg.Duration.Seconds()
	if ratio := bytes / target; ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("offered bytes %.0f vs target %.0f (ratio %.2f)", bytes, target, ratio)
	}
}

// Determinism: the same seed yields the same flow set.
func TestGenerateDeterministic(t *testing.T) {
	cfg := PoissonConfig{Dist: WebSearch(), NumHosts: 16, LinkBps: 10e9, Load: 0.3, Duration: sim.Millisecond, Seed: 7}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Size != b[i].Size || a[i].SrcHost != b[i].SrcHost || a[i].Arrival != b[i].Arrival {
			t.Fatalf("flow %d differs", i)
		}
	}
	cfg.Seed = 8
	c := Generate(cfg)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Size != c[i].Size {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical flow sets")
	}
}

func TestPermutation(t *testing.T) {
	flows := Permutation(8, 2, 1<<20, 100)
	if len(flows) != 8 {
		t.Fatalf("%d flows, want 8", len(flows))
	}
	for _, f := range flows {
		if f.SrcHost/2 == f.DstHost/2 {
			t.Fatalf("permutation flow %d->%d stays in rack", f.SrcHost, f.DstHost)
		}
		if f.DstHost != ((f.SrcHost/2+1)%4)*2+f.SrcHost%2 {
			t.Fatalf("unexpected pairing %d->%d", f.SrcHost, f.DstHost)
		}
	}
}

func TestMemcached(t *testing.T) {
	flows := Memcached([]int{1, 2, 3}, 0, 5, 4096, 100*sim.Microsecond, 1, 1000)
	if len(flows) != 15 {
		t.Fatalf("%d flows, want 15", len(flows))
	}
	for _, f := range flows {
		if !f.Priority {
			t.Fatal("memcached flows must be priority-tagged")
		}
		if f.SrcHost != 0 {
			t.Fatal("responses originate at the server")
		}
		if f.Size != 4096 {
			t.Fatal("response size wrong")
		}
	}
}

// Property: sampling never panics and is monotone in u (via direct inverse
// checks at the CDF points).
func TestSampleAtCDFPoints(t *testing.T) {
	d := WebSearch()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := d.Sample(rng)
		return s >= 1 && float64(s) <= float64(d.Points[len(d.Points)-1].Bytes)*1.0001
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(d.Mean()) || d.Mean() <= 0 {
		t.Fatal("mean invalid")
	}
}

func TestFixedAndUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := Fixed(5000)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if s := f.Sample(rng); s < 4000 || s > 5000 {
			t.Fatalf("fixed sample %d", s)
		}
	}
	u := Uniform(1000, 1_000_000)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	lo, hi := false, false
	for i := 0; i < 5000; i++ {
		s := u.Sample(rng)
		if s < 1 || s > 1_000_000 {
			t.Fatalf("uniform sample %d out of range", s)
		}
		if s < 10_000 {
			lo = true
		}
		if s > 100_000 {
			hi = true
		}
	}
	if !lo || !hi {
		t.Fatal("uniform distribution degenerate")
	}
}
