package netsim

import (
	"testing"

	"ucmp/internal/sim"
	"ucmp/internal/topo"
)

func rotorNet(t testing.TB) *Network {
	t.Helper()
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	eng := sim.NewEngine()
	n := New(eng, f, stubRouter{f}, QueueSpec{MaxDataPackets: 300}, QueueSpec{MaxDataPackets: 300}, DefaultRotor())
	n.Start()
	return n
}

func rotorPkt(n *Network, id int64, dstToR int) *Packet {
	fl := NewFlow(id, 0, dstToR*n.F.HostsPerToR, 1436, 0)
	fl.RotorClass = true
	return &Packet{Flow: fl, Type: Data, PayloadLen: 1436, WireLen: 1500,
		SrcHost: fl.SrcHost, DstHost: fl.DstHost, SrcToR: 0, DstToR: dstToR}
}

// fitsAll is a budget no packet exceeds; noTime blocks every send (the
// slice has no serialization time left).
const (
	fitsAll = sim.Time(1) << 60
	noTime  = sim.Time(0)
)

// RotorLB drain priority: nonlocal (second hop) > local direct > indirect.
func TestRotorSelectPriority(t *testing.T) {
	n := rotorNet(t)
	tor := n.ToRs[0]
	r := tor.rotor
	peer := 5

	// Stage one packet of each class.
	indirect := rotorPkt(n, 1, 9) // local traffic for another dst -> indirect via peer
	local := rotorPkt(n, 2, peer)
	second := rotorPkt(n, 3, peer) // nonlocal: parked here, final hop to peer
	r.pushLocal(indirect)
	r.pushLocal(local)
	r.pushNonlocal(second)

	if got := r.selectPacket(peer, fitsAll, 0); got != second {
		t.Fatalf("first pick %v, want the nonlocal packet", got.Flow.ID)
	}
	if got := r.selectPacket(peer, fitsAll, 0); got != local {
		t.Fatalf("second pick flow %d, want the local direct packet", got.Flow.ID)
	}
	got := r.selectPacket(peer, fitsAll, 0)
	if got != indirect {
		t.Fatalf("third pick %v, want the indirect packet", got)
	}
	if r.selectPacket(peer, fitsAll, 0) != nil {
		t.Fatal("queues should be empty")
	}
}

// Indirection stops when the peer's published nonlocal backlog exceeds the
// cap. The sender sees the backlog through the slice-boundary board: the
// peer publishes at its boundary, and readers in the next slice observe it.
func TestRotorIndirectionBackpressure(t *testing.T) {
	n := rotorNet(t)
	n.Rotor.NonlocalCapBytes = 1000 // tiny
	tor := n.ToRs[0]
	peerToR := n.ToRs[5]
	// Fill the peer's nonlocal VOQ beyond the cap and publish the slice-0
	// snapshot; slice-1 readers see it.
	peerToR.rotor.pushNonlocal(rotorPkt(n, 10, 9))
	peerToR.publishRotorBacklog(0)
	tor.rotor.pushLocal(rotorPkt(n, 1, 9)) // candidate for indirection via 5
	if p := tor.rotor.selectPacket(5, fitsAll, 1); p != nil {
		t.Fatalf("indirected despite peer backlog: flow %d", p.Flow.ID)
	}
	// Before the publish is visible (slice 0 reads the zeroed board), the
	// cap cannot bind — the documented one-slice staleness of the exchange.
	if p := tor.rotor.selectPacket(5, fitsAll, 0); p == nil || p.Flow.ID != 1 {
		t.Fatal("unpublished backlog should not cap indirection")
	}
	// Direct traffic unaffected by the indirection cap.
	tor.rotor.pushLocal(rotorPkt(n, 2, 5))
	if p := tor.rotor.selectPacket(5, fitsAll, 1); p == nil || p.Flow.ID != 2 {
		t.Fatal("direct packet blocked by indirection cap")
	}
}

// Host credit: below the cap there is credit; filling the VOQ removes it;
// draining restores it and fires waiters.
func TestRotorCreditAndWaiters(t *testing.T) {
	n := rotorNet(t)
	n.Rotor.LocalCapBytes = 3000 // two packets
	tor := n.ToRs[0]
	dst := 7
	if !tor.RotorHasCredit(dst) {
		t.Fatal("no credit on empty VOQ")
	}
	tor.rotor.pushLocal(rotorPkt(n, 1, dst))
	tor.rotor.pushLocal(rotorPkt(n, 2, dst))
	if tor.RotorHasCredit(dst) {
		t.Fatal("credit despite full VOQ")
	}
	fired := false
	tor.RotorNotify(dst, nil, func() { fired = true })
	if p := tor.rotor.selectPacket(dst, fitsAll, 0); p == nil {
		t.Fatal("drain failed")
	}
	if !fired {
		t.Fatal("waiter not fired on credit")
	}
	if !tor.RotorHasCredit(dst) {
		t.Fatal("credit not restored")
	}
}

// A zero slice-time budget blocks oversized sends without dropping.
func TestRotorBudgetBlocks(t *testing.T) {
	n := rotorNet(t)
	tor := n.ToRs[0]
	tor.rotor.pushLocal(rotorPkt(n, 1, 5))
	if tor.rotor.selectPacket(5, noTime, 0) != nil {
		t.Fatal("packet sent despite zero slice-time budget")
	}
	if tor.rotor.selectPacket(5, fitsAll, 0) == nil {
		t.Fatal("packet gone")
	}
}
