package netsim

import (
	"ucmp/internal/checkpoint"
	"ucmp/internal/sim"
)

// ToR is a top-of-rack switch: HostsPerToR downlink ports, Uplinks
// circuit-facing ports with calendar queues, optional RotorLB VOQs, and the
// source-routing logic of §6.2 plus the rerouting of §6.3.
type ToR struct {
	net   *Network
	dom   *domain
	id    int
	down  []*downPort
	up    []*uplinkPort
	rotor *rotorState

	// recvHostFn/ingressFn are the receive methods pre-bound for sim.At1:
	// link transmissions schedule arrivals without a per-packet closure.
	recvHostFn func(any)

	// Peer-arrival ingress: circuit arrivals landing at one instant buffer
	// here and are processed together by a flush event scheduled at that
	// same instant, in canonical (linkSrc, linkSeq) order. The flush runs
	// after every other event of the instant in both engines — nothing in
	// netsim schedules zero-delay events, so once the first arrival fires,
	// no new event can slot in at the same time — which pins the one tie the
	// serial and sharded engines would otherwise break differently:
	// same-instant arrivals from different source ToRs.
	ingress        []*Packet
	ingressScratch []*Packet
	ingressArmed   bool
	ingressFn      func(any)
	flushFn        func()

	// linkSeq numbers this ToR's circuit transmissions for the canonical
	// arrival order above.
	linkSeq uint64
}

func newToR(n *Network, id int, dom *domain) *ToR {
	t := &ToR{net: n, dom: dom, id: id}
	t.recvHostFn = func(a any) { t.receiveFromHost(a.(*Packet)) }
	t.ingressFn = func(a any) { t.ingressArrive(a.(*Packet)) }
	t.flushFn = t.flushIngress
	// The rotor staging threshold is deliberately shallow — an eighth of
	// the queue bound, at least 8 — so bulk rotor traffic never builds deep
	// downlink queues (§9); an unbounded queue needs no staging.
	room := 0
	if limit := n.DownQueue.MaxDataPackets; limit > 0 {
		if room = limit / 8; room < 8 {
			room = 8
		}
	}
	t.down = make([]*downPort, n.F.HostsPerToR)
	for i := range t.down {
		d := &downPort{
			net:  n,
			dom:  dom,
			host: id*n.F.HostsPerToR + i,
			room: room,
			queue: Queue{
				MaxDataPackets: n.DownQueue.MaxDataPackets,
				ECNThreshold:   n.DownQueue.ECNThreshold,
				Trim:           n.DownQueue.Trim,
			},
		}
		d.pumpFn = d.pump
		t.down[i] = d
	}
	t.up = make([]*uplinkPort, n.F.Uplinks)
	for sw := range t.up {
		t.up[sw] = newUplinkPort(n, t, sw)
	}
	if n.Rotor.Enabled {
		t.rotor = newRotorState(t)
	}
	return t
}

// ID returns the ToR index.
func (t *ToR) ID() int { return t.id }

// onSliceStart publishes this ToR's rotor backlog snapshot for the new
// slice, expires the calendar queues of the slice that just ended — every
// packet still parked there missed its circuit and is recirculated with
// this ToR as its new source (§6.3) — then kicks the pumps for the new
// slice. expired is the cyclic index of the previous slice, -1 at slice 0.
//
// The publish happens first, before any boundary processing: at a boundary
// instant a ToR's events mutate only its own rotor state, so the snapshot
// equals the backlog at the boundary regardless of the order ToRs process
// the boundary in — which is what makes it identical in serial (one event
// iterating all ToRs) and sharded (one event per domain) runs.
func (t *ToR) onSliceStart(abs int64, expired int) {
	if t.rotor != nil {
		t.publishRotorBacklog(abs)
	}
	if t.net.congSnap != nil {
		t.publishCongestionBacklog(abs)
	}
	if expired >= 0 {
		fs := t.net.Faults
		now := t.dom.eng.Now()
		for _, u := range t.up {
			// Expiries off a dead element are fault hits: stamp the instant so
			// the successful replan records the time-to-reroute wait.
			faulted := fs != nil && (!fs.TorOK(now, t.id) || !fs.LinkOK(now, t.id, u.sw))
			for {
				p := u.cal[expired].Dequeue()
				if p == nil {
					break
				}
				t.dom.ctr.ExpiredInCalendar++
				if faulted && p.FaultAt == 0 && p.Type == Data {
					p.FaultAt = now
				}
				t.recirculate(p, abs)
			}
		}
	}
	for _, u := range t.up {
		u.pump()
	}
}

// faultDrop reports whether this ToR is down at `now` and, if so, drops the
// packet against the conservation ledger. A dead ToR forwards nothing: host
// injections, circuit arrivals, and parked packets all terminate here.
func (t *ToR) faultDrop(p *Packet, now sim.Time) bool {
	fs := t.net.Faults
	if fs == nil || fs.TorOK(now, t.id) {
		return false
	}
	t.dom.ctr.FaultDrops++
	t.dom.dropPacket(p)
	return true
}

// receiveFromHost accepts a packet from a local host NIC.
func (t *ToR) receiveFromHost(p *Packet) {
	p.assertLive("ToR.receiveFromHost")
	if t.net.Faults != nil && t.faultDrop(p, t.dom.eng.Now()) {
		return
	}
	if p.Type == Data {
		t.dom.ctr.DataPackets++
	}
	if p.DstToR == t.id {
		t.deliverDown(p)
		return
	}
	if p.Flow != nil && p.Flow.RotorClass && p.Type == Data {
		t.rotorPushLocal(p)
		return
	}
	t.routeAndForward(p, t.net.F.AbsSlice(t.dom.eng.Now()))
}

// ingressArrive buffers one circuit arrival and arms the instant's flush.
func (t *ToR) ingressArrive(p *Packet) {
	t.ingress = append(t.ingress, p)
	if !t.ingressArmed {
		t.ingressArmed = true
		t.dom.eng.AtTag(t.dom.eng.Now(), sim.EventTag{Kind: checkpoint.KindFlush, A: int32(t.id)}, t.flushFn)
	}
}

// flushIngress processes the instant's buffered arrivals in (linkSrc,
// linkSeq) order: FIFO per link, source-ToR index across links.
func (t *ToR) flushIngress() {
	t.ingressArmed = false
	buf := t.ingress
	// Swap buffers before processing: receiveFromPeer cannot buffer new
	// same-instant arrivals (every send lands strictly later), but the swap
	// keeps the drain safe against any future same-instant path.
	t.ingress = t.ingressScratch[:0]
	t.ingressScratch = buf
	// Insertion sort: the buffer rarely exceeds the uplink count.
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0; j-- {
			a, b := buf[j-1], buf[j]
			if a.linkSrc < b.linkSrc || (a.linkSrc == b.linkSrc && a.linkSeq < b.linkSeq) {
				break
			}
			buf[j-1], buf[j] = b, a
		}
	}
	for i, p := range buf {
		buf[i] = nil
		t.receiveFromPeer(p)
	}
}

// receiveFromPeer accepts a packet arriving over a circuit.
func (t *ToR) receiveFromPeer(p *Packet) {
	p.assertLive("ToR.receiveFromPeer")
	if t.net.Faults != nil && t.faultDrop(p, t.dom.eng.Now()) {
		return
	}
	p.TorHops++
	if p.DstToR == t.id {
		t.deliverDown(p)
		return
	}
	if p.Flow != nil && p.Flow.RotorClass && p.Type == Data {
		// Indirect RotorLB traffic parks in the nonlocal VOQ and leaves on
		// the next direct circuit to its destination.
		t.rotor.pushNonlocal(p)
		return
	}
	now := t.dom.eng.Now()
	abs := t.net.F.AbsSlice(now)
	hop, ok := p.CurrentHop()
	if !ok || hop.AbsSlice < abs {
		// Route exhausted prematurely or the planned slice has passed:
		// recirculate with this ToR as the new source (§6.3).
		t.dom.ctr.LateArrivals++
		t.recirculate(p, abs)
		return
	}
	if !t.enqueueUplink(p, hop) {
		t.dom.ctr.CalendarFull++
		t.recirculate(p, hop.AbsSlice+1)
	}
}

// deliverDown hands the packet to the destination host's downlink port.
func (t *ToR) deliverDown(p *Packet) {
	local := p.DstHost - t.id*t.net.F.HostsPerToR
	if local < 0 || local >= len(t.down) {
		t.dom.dropPacket(p)
		return
	}
	t.down[local].enqueue(p)
}

// routeAndForward plans a source route starting no earlier than fromAbs and
// enqueues the packet; on a full calendar queue it retries with later
// slices (recirculation) until the §6.3 limit.
func (t *ToR) routeAndForward(p *Packet, fromAbs int64) {
	now := t.dom.eng.Now()
	bumped := false
	for {
		// The recycled packet's Route slice is the router's scratch: once it
		// has grown to the fabric's hop-count high-water mark, planning
		// allocates nothing.
		route, ok := t.net.Router.PlanRoute(p, t.id, now, fromAbs, p.Route[:0])
		if !ok || len(route) == 0 {
			if t.net.Faults != nil && p.RecoveredVia == RecoveryNone && p.Type == Data {
				t.dom.ctr.RecoveryFailed++
			}
			t.dom.dropPacket(p)
			return
		}
		// Feasibility of same-slice chains: a plan whose leading hops all
		// ride the current slice needs enough remaining slice time to
		// store-and-forward through them. Planning past the boundary once
		// is free (it is a better plan, not a recirculation); missing the
		// boundary later costs a §6.3 recirculation and, after five, the
		// packet.
		if !bumped && fromAbs == t.net.F.AbsSlice(now) {
			chain := 0
			for _, h := range route {
				if h.AbsSlice != fromAbs {
					break
				}
				chain++
			}
			need := 2 * sim.Time(chain) * (t.net.serdelayUp(p.WireLen) + t.net.F.PropDelay)
			if t.net.F.SliceEnd(fromAbs)-now < need {
				bumped = true
				fromAbs++
				continue
			}
		}
		p.Route, p.RouteIdx = route, 0
		hop := route[0]
		if t.enqueueUplink(p, hop) {
			if p.Type == Data && (t.net.Faults != nil || p.RecoveredVia == RecoverySteered) {
				t.noteRecovery(p, hop)
			}
			return
		}
		// Target priority queue full: recirculate (§6.3).
		t.dom.ctr.CalendarFull++
		if !t.bumpReroute(p) {
			return
		}
		fromAbs = hop.AbsSlice + 1
	}
}

// recirculate re-sources a packet at this ToR (§6.3). A dead ToR cannot
// re-source anything: its parked packets drop at the slice boundary.
func (t *ToR) recirculate(p *Packet, fromAbs int64) {
	if t.net.Faults != nil && t.faultDrop(p, t.dom.eng.Now()) {
		return
	}
	if !t.bumpReroute(p) {
		return
	}
	t.routeAndForward(p, fromAbs)
}

// noteRecovery applies the §5.3 online-recovery accounting after a data
// packet's plan was enqueued: the recovery-class counters (stamped by the
// router on the plan) and, for packets that hit a dead element, the
// time-to-reroute histogram — the wait from the fault hit until the
// replacement route's first circuit opens.
func (t *ToR) noteRecovery(p *Packet, first PlannedHop) {
	ctr := t.dom.ctr
	switch p.RecoveredVia {
	case RecoverySameLength:
		ctr.RecoveredSameLength++
	case RecoveryShorter:
		ctr.RecoveredShorter++
	case RecoveryLonger:
		ctr.RecoveredLonger++
	case RecoveryBackup:
		ctr.RecoveredBackup++
	case RecoverySteered:
		ctr.CongestionSteered++
	}
	if p.FaultAt > 0 {
		ctr.RerouteWait[rerouteWaitBucket(t.net.F.SliceStart(first.AbsSlice)-p.FaultAt)]++
		p.FaultAt = 0
	}
}

// bumpReroute applies the recirculation accounting and limit; it reports
// whether the packet may continue.
func (t *ToR) bumpReroute(p *Packet) bool {
	if !p.WasRerouted && p.Type == Data {
		t.dom.ctr.ReroutedPackets++
	}
	p.WasRerouted = true
	p.Rerouted++
	if p.Rerouted > MaxReroutes {
		t.dom.dropPacket(p)
		return false
	}
	return true
}

// enqueueUplink places the packet in the calendar queue of the port/slice
// matching its next hop. It reports false when the queue rejected it.
func (t *ToR) enqueueUplink(p *Packet, hop PlannedHop) bool {
	c := t.net.F.CyclicSlice(hop.AbsSlice)
	sw := t.net.F.Sched.SwitchFor(c, t.id, hop.To)
	if sw < 0 {
		return false // router planned a circuit the schedule doesn't have
	}
	u := t.up[sw]
	if !u.cal[c].Enqueue(p) {
		return false
	}
	now := t.dom.eng.Now()
	if t.net.F.AbsSlice(now) == hop.AbsSlice {
		u.pump()
	}
	return true
}

// publishRotorBacklog writes this ToR's nonlocal backlog into the board
// slot for absolute slice abs (read by peers during slice abs+1).
func (t *ToR) publishRotorBacklog(abs int64) {
	t.net.rotorSnap[(abs&3)*int64(t.net.F.NumToRs)+int64(t.id)] = t.rotor.totalNonlocal
}

// rotorPushLocal admits a host packet into the RotorLB local VOQ.
func (t *ToR) rotorPushLocal(p *Packet) {
	if t.rotor == nil {
		// RotorLB disabled but a rotor-class flow appeared: fall back to
		// source routing so traffic still flows.
		t.routeAndForward(p, t.net.F.AbsSlice(t.dom.eng.Now()))
		return
	}
	t.rotor.pushLocal(p)
}

// RotorHasCredit reports whether a host may push another packet toward
// dstToR (host-side backpressure).
func (t *ToR) RotorHasCredit(dstToR int) bool {
	if t.rotor == nil {
		return true
	}
	return t.rotor.localBytes[dstToR] < t.net.Rotor.LocalCapBytes
}

// RotorNotify registers a one-shot callback fired when credit toward
// dstToR becomes available. The waiting flow identifies the callback in
// checkpoints (the closure itself cannot be serialized; a restore re-parks
// the flow's sender through this same call).
func (t *ToR) RotorNotify(dstToR int, f *Flow, fn func()) {
	if t.rotor == nil {
		fn()
		return
	}
	t.rotor.waiters[dstToR] = append(t.rotor.waiters[dstToR], rotorWaiter{f: f, fn: fn})
}

// currentAbs is a small helper for rotor code.
func (t *ToR) currentAbs() int64 { return t.net.F.AbsSlice(t.dom.eng.Now()) }

// pumpFor kicks the port currently connected to peer, if any.
func (t *ToR) pumpFor(peer int) {
	c := t.net.F.CyclicSlice(t.currentAbs())
	if sw := t.net.F.Sched.SwitchFor(c, t.id, peer); sw >= 0 {
		t.up[sw].pump()
	}
}
