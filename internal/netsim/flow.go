package netsim

import (
	"ucmp/internal/sim"
)

// Flow is one transport-level flow: Size bytes from SrcHost to DstHost,
// arriving (becoming ready to send) at Arrival.
type Flow struct {
	ID       int64
	SrcHost  int
	DstHost  int
	Size     int64
	Arrival  sim.Time
	Priority bool // testbed foreground traffic marker

	// Hash is the 5-tuple hash used for ECMP-style tie breaking (§5.1).
	Hash uint64

	// Progress, maintained by the transport:
	BytesSent      int64 // first transmissions only (drives flow aging)
	BytesDelivered int64 // distinct payload bytes at the receiver
	Finished       bool
	FinishedAt     sim.Time

	// RotorClass marks flows carried by the RotorLB hop-by-hop machinery
	// (VLB, Opera >15MB, UCMP latency-relaxed long flows).
	RotorClass bool

	// Child marks MPTCP subflows: they carry a stripe of a parent flow and
	// are excluded from flow-level metrics.
	Child bool

	// SenderEP and ReceiverEP are the transport state machines; the host
	// dispatches arriving packets to one of them by direction.
	SenderEP   Endpoint
	ReceiverEP Endpoint

	// dense is the small contiguous index RegisterFlow assigns (position in
	// registration order). Host NIC fair queueing indexes per-flow state by
	// it instead of hashing the sparse 64-bit ID. -1 until registered.
	dense int
}

// FCT returns the flow completion time, valid once Finished.
func (f *Flow) FCT() sim.Time { return f.FinishedAt - f.Arrival }

// Dense returns the dense index assigned at registration (-1 before). It is
// the flow's identity inside checkpoint files: dense indices are assigned in
// registration order, which the deterministic workload regeneration on a
// resume reproduces exactly.
func (f *Flow) Dense() int { return f.dense }

// hashID derives a deterministic 64-bit hash from a flow identity
// (splitmix64 over the ID and endpoints), standing in for the 5-tuple hash.
func hashID(id int64, src, dst int) uint64 {
	x := uint64(id)*0x9E3779B97F4A7C15 ^ uint64(src)<<32 ^ uint64(dst)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// NewFlow builds a flow with its hash assigned.
func NewFlow(id int64, src, dst int, size int64, arrival sim.Time) *Flow {
	return &Flow{
		ID: id, SrcHost: src, DstHost: dst, Size: size, Arrival: arrival,
		Hash: hashID(id, src, dst), FinishedAt: -1, dense: -1,
	}
}
