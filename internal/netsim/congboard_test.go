package netsim

import (
	"testing"

	"ucmp/internal/sim"
	"ucmp/internal/topo"
)

func congNet(t testing.TB) *Network {
	t.Helper()
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	eng := sim.NewEngine()
	n := New(eng, f, stubRouter{f}, QueueSpec{MaxDataPackets: 300}, QueueSpec{MaxDataPackets: 300}, DefaultRotor())
	n.EnableCongestionBoard()
	n.Start()
	return n
}

// congCircuit finds a (cyclic slice, peer, switch) triple with a live
// circuit from tor, plus a peer with NO circuit in that slice, for the
// unknown-circuit probe.
func congCircuit(t *testing.T, n *Network, tor, c int) (peer, sw, dark int) {
	t.Helper()
	peer, dark = -1, -1
	for to := 0; to < n.F.NumToRs; to++ {
		if to == tor {
			continue
		}
		if s := n.F.Sched.SwitchFor(c, tor, to); s >= 0 {
			if peer < 0 {
				peer, sw = to, s
			}
		} else if dark < 0 {
			dark = to
		}
	}
	if peer < 0 || dark < 0 {
		t.Fatalf("slice %d from tor %d: need both a live and a dark peer", c, tor)
	}
	return peer, sw, dark
}

// TestCongestionBoardPublishAndRead pins the §14 board semantics end to
// end: the value a reader in slice s observes is exactly the calendar
// backlog the ToR published at the boundary of s−1 (matching the live
// CalendarBacklog at that instant); during the first slice the board reads
// zero regardless of live state; mid-slice queue growth is invisible until
// the next boundary publishes it; and an unknown circuit is prohibitive,
// exactly like the live view.
func TestCongestionBoardPublishAndRead(t *testing.T) {
	n := congNet(t)
	f := n.F
	const tor, c = 3, 2
	peer, sw, dark := congCircuit(t, n, tor, c)
	hop := PlannedHop{To: peer, AbsSlice: int64(c) + 2*int64(f.Sched.S)}

	enqueue := func(k int, base int64) {
		for i := 0; i < k; i++ {
			p := rotorPkt(n, base+int64(i), peer)
			if !n.ToRs[tor].up[sw].cal[c].Enqueue(p) {
				t.Fatal("calendar enqueue rejected")
			}
		}
	}
	enqueue(5, 1)
	if live := n.CalendarBacklog(tor, hop); live != 5 {
		t.Fatalf("live backlog %d, want 5", live)
	}

	// First slice: no boundary has published yet, so the board reads zero
	// even though the live queue holds 5 — steering can never engage in
	// slice 0, identically in serial and sharded runs.
	if got := n.CongestionBacklog(tor, 0, hop); got != 0 {
		t.Fatalf("first-slice board read %d, want 0", got)
	}

	// Publish the slice-8 boundary snapshot; a plan made during slice 9
	// sees it, and it equals the live view at the publish instant.
	n.ToRs[tor].publishCongestionBacklog(8)
	now9 := sim.Time(9) * f.SliceDuration
	if got := n.CongestionBacklog(tor, now9, hop); got != 5 {
		t.Fatalf("slice-9 board read %d, want the published 5", got)
	}

	// Mid-slice growth is invisible to slice-9 readers (bounded staleness:
	// the board is the boundary value, the live view has moved on)...
	enqueue(2, 100)
	if live := n.CalendarBacklog(tor, hop); live != 7 {
		t.Fatalf("live backlog %d after growth, want 7", live)
	}
	if got := n.CongestionBacklog(tor, now9, hop); got != 5 {
		t.Fatalf("slice-9 board read %d after mid-slice growth, want the stale 5", got)
	}
	// ...until the next boundary publishes it for slice-10 readers.
	n.ToRs[tor].publishCongestionBacklog(9)
	now10 := sim.Time(10) * f.SliceDuration
	if got := n.CongestionBacklog(tor, now10, hop); got != 7 {
		t.Fatalf("slice-10 board read %d, want 7", got)
	}

	// A hop with no circuit in its slice is prohibitively congested, as in
	// the live view.
	darkHop := PlannedHop{To: dark, AbsSlice: hop.AbsSlice}
	if got := n.CongestionBacklog(tor, now9, darkHop); got != 1<<30 {
		t.Fatalf("unknown circuit reads %d, want 1<<30", got)
	}
}

// TestCongestionBoardSlotIsolation: publications land in their own ToR's
// slot of their own ring entry — a neighbor's publication, or the same
// ToR's publication for a different boundary, never bleeds into a read.
func TestCongestionBoardSlotIsolation(t *testing.T) {
	n := congNet(t)
	f := n.F
	const tor, c = 3, 2
	peer, sw, _ := congCircuit(t, n, tor, c)
	hop := PlannedHop{To: peer, AbsSlice: int64(c) + 2*int64(f.Sched.S)}

	for i := 0; i < 4; i++ {
		p := rotorPkt(n, int64(i+1), peer)
		if !n.ToRs[tor].up[sw].cal[c].Enqueue(p) {
			t.Fatal("calendar enqueue rejected")
		}
	}
	// Every OTHER ToR publishes boundary 8; tor itself does not.
	for id, tr := range n.ToRs {
		if id != tor {
			tr.publishCongestionBacklog(8)
		}
	}
	// tor publishes only boundary 9 (ring slot 1); its boundary-8 slot
	// (ring slot 0) stays zeroed.
	n.ToRs[tor].publishCongestionBacklog(9)
	now9 := sim.Time(9) * f.SliceDuration
	if got := n.CongestionBacklog(tor, now9, hop); got != 0 {
		t.Fatalf("slice-9 read %d; neighbors' or other-boundary publications bled into the slot", got)
	}
	now10 := sim.Time(10) * f.SliceDuration
	if got := n.CongestionBacklog(tor, now10, hop); got != 4 {
		t.Fatalf("slice-10 read %d, want tor's own boundary-9 snapshot of 4", got)
	}
}

// TestCongestionBoardGates: the board is pay-for-play (disabled by
// default), enabling twice is a no-op, and enabling on a sharded network
// whose slices are shorter than the engine window panics — such a
// configuration would let a slot's writer share a window with its readers.
func TestCongestionBoardGates(t *testing.T) {
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	n := New(sim.NewEngine(), f, stubRouter{f}, QueueSpec{}, QueueSpec{}, DefaultRotor())
	if n.CongestionEnabled() {
		t.Fatal("board enabled by default")
	}
	n.EnableCongestionBoard()
	if !n.CongestionEnabled() {
		t.Fatal("EnableCongestionBoard did not enable the board")
	}
	board := &n.congSnap[0]
	n.EnableCongestionBoard()
	if &n.congSnap[0] != board {
		t.Fatal("second EnableCongestionBoard reallocated the board")
	}

	short := topo.Scaled()
	short.SliceDuration = short.PropDelay / 2
	sf := topo.MustFabric(short, "round-robin", 1)
	sh := sim.NewShardedEngine(sf.NumToRs, 2, ShardLookahead(sf), sim.QueueWheel)
	sn := NewSharded(sh, sf, stubRouter{sf}, QueueSpec{}, QueueSpec{}, RotorConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("EnableCongestionBoard accepted slices shorter than the engine window")
		}
	}()
	sn.EnableCongestionBoard()
}
