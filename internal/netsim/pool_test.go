package netsim

import (
	"testing"

	"ucmp/internal/sim"
	"ucmp/internal/topo"
)

func poolNet(t *testing.T) *Network {
	t.Helper()
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	return New(sim.NewEngine(), f, stubRouter{f}, QueueSpec{}, QueueSpec{}, RotorConfig{})
}

// A released packet must come back from the pool fully reset, with its Route
// slice's capacity retained for the next route plan.
func TestPacketPoolRecyclesRouteStorage(t *testing.T) {
	n := poolNet(t)
	p := n.NewPacket()
	p.Seq = 42
	p.TorHops = 3
	p.Route = append(p.Route, PlannedHop{To: 1, AbsSlice: 2}, PlannedHop{To: 5, AbsSlice: 3})
	routeCap := cap(p.Route)
	n.Release(p)

	q := n.NewPacket()
	if q != p {
		t.Fatal("pool did not recycle the released packet")
	}
	if q.Seq != 0 || q.TorHops != 0 || len(q.Route) != 0 {
		t.Fatalf("recycled packet not reset: seq=%d hops=%d route=%v", q.Seq, q.TorHops, q.Route)
	}
	if cap(q.Route) != routeCap {
		t.Fatalf("route capacity lost on recycle: %d, want %d", cap(q.Route), routeCap)
	}
	gets, puts, live := n.PoolStats()
	if gets != 2 || puts != 1 || live != 1 {
		t.Fatalf("pool stats gets=%d puts=%d live=%d", gets, puts, live)
	}
}

func TestPoisonDoubleReleasePanics(t *testing.T) {
	PoisonPackets = true
	defer func() { PoisonPackets = false }()
	n := poolNet(t)
	p := n.NewPacket()
	n.Release(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic under poison mode")
		}
	}()
	n.Release(p)
}

func TestPoisonCatchesUseAfterRelease(t *testing.T) {
	PoisonPackets = true
	defer func() { PoisonPackets = false }()
	n := poolNet(t)
	fl := NewFlow(1, 0, 17, 1000, 0)
	n.RegisterFlow(fl)
	p := n.NewPacket()
	p.Flow = fl
	p.Type = Data
	p.PayloadLen = 100
	p.WireLen = 164
	n.Release(p)
	defer func() {
		if recover() == nil {
			t.Fatal("sending a released packet did not panic under poison mode")
		}
	}()
	n.Hosts[0].Send(p)
}

// Poison mode must also scribble over the recycled route storage so stale
// reads are loud.
func TestPoisonScrubsFields(t *testing.T) {
	PoisonPackets = true
	defer func() { PoisonPackets = false }()
	n := poolNet(t)
	p := n.NewPacket()
	p.Seq = 7
	p.Route = append(p.Route, PlannedHop{To: 3, AbsSlice: 9})
	route := p.Route
	n.Release(p)
	if p.Seq == 7 {
		t.Fatal("Seq not poisoned")
	}
	if route[0].To == 3 && route[0].AbsSlice == 9 {
		t.Fatal("route contents not poisoned")
	}
}
