package netsim

import (
	"ucmp/internal/sim"
)

// Router plans routes for packets entering the fabric. Implementations live
// in internal/routing (UCMP, VLB, KSP, Opera); netsim only depends on this
// interface.
type Router interface {
	Name() string

	// PlanRoute returns the source route for a packet at ToR `tor`. fromAbs
	// is the earliest absolute slice the plan may use: the current slice
	// for fresh packets, later for recirculated ones (§6.3). ok=false means
	// the router has no path (e.g. under failures), and the packet is
	// dropped.
	//
	// buf is reusable storage the route should be appended into (it arrives
	// with length zero; it is the recycled packet's previous Route slice, so
	// steady-state planning allocates nothing). Implementations may ignore
	// it and return fresh storage, at an allocation per plan.
	PlanRoute(p *Packet, tor int, now sim.Time, fromAbs int64, buf []PlannedHop) (route []PlannedHop, ok bool)

	// RotorFlow reports whether the flow's data packets bypass source
	// routing and use the RotorLB hop-by-hop machinery (VLB; Opera and
	// UCMP-with-relaxation for long flows).
	RotorFlow(f *Flow) bool
}

// Endpoint receives packets addressed to a host (a transport sender or
// receiver state machine).
type Endpoint interface {
	Deliver(p *Packet)
}
