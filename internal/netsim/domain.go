package netsim

import (
	"math/bits"

	"ucmp/internal/sim"
	"ucmp/internal/topo"
)

// domain groups the execution resources one conservative-PDES lookahead
// domain owns: its engine (timing wheel), its shard of the fabric counters,
// its packet pool, and the ToRs whose events it executes. In a sharded
// network there is one domain per ToR (covering the ToR, its hosts, NICs,
// and uplink ports); the serial network is the one-domain special case —
// every component shares doms[0], whose engine and counters alias
// Network.Eng and Network.Counters, so the serial hot path is exactly the
// pre-sharding code.
type domain struct {
	net  *Network
	eng  *sim.Engine
	id   int
	ctr  *Counters
	pool *packetPool
	tors []*ToR

	// finished buffers flows completing in this domain during a sharded
	// run; FinalizeSharded drains them in deterministic order. Serial runs
	// bypass it (OnFlowDone fires inline).
	finished []*Flow

	// boundaryFn is the slice-boundary callback bound once per domain.
	boundaryFn func()
}

// newPacket and release are the per-domain pool entry points; components
// allocate and recycle through their own domain so the packet path stays
// lock-free under parallel execution.
func (d *domain) newPacket() *Packet { return d.pool.get() }
func (d *domain) release(p *Packet)  { d.pool.put(p) }
func (d *domain) now() sim.Time      { return d.eng.Now() }

// dropPacket records a terminal drop in the domain's counter shard and
// recycles the packet. Every path that abandons a packet must come through
// here (or through a delivery); otherwise the pool leaks and the
// conservation test fails.
func (d *domain) dropPacket(p *Packet) {
	d.ctr.DroppedPackets++
	if p.Type == Data {
		d.ctr.DataDropped++
	}
	d.release(p)
}

// ShardLookahead returns the fabric's conservative-PDES lookahead: a lower
// bound on the latency of every cross-ToR event. An uplink transmission
// arrives at the peer at now + serialization + PropDelay, and serialization
// is at least the bare-header uplink serialization delay — so every
// cross-domain send lands at least this far in the future, which is the
// window width the sharded engine may safely run domains in parallel for.
func ShardLookahead(f *topo.Fabric) sim.Time {
	return f.PropDelay + f.UplinkSerialization(HeaderBytes)
}

// add folds another counter shard into c. Int64 sums are order-independent,
// so a sharded run's merged counters are bit-identical to the serial run's.
func (c *Counters) add(o *Counters) {
	c.DataBytesSent += o.DataBytesSent
	c.DataBytesDelivered += o.DataBytesDelivered
	c.TorToTorBytes += o.TorToTorBytes
	c.HostToTorBytes += o.HostToTorBytes
	c.TorToHostBytes += o.TorToHostBytes
	c.DataPackets += o.DataPackets
	c.ReroutedPackets += o.ReroutedPackets
	c.DroppedPackets += o.DroppedPackets
	c.RotorDrops += o.RotorDrops
	c.DataInjected += o.DataInjected
	c.DataDelivered += o.DataDelivered
	c.TrimmedDelivered += o.TrimmedDelivered
	c.DataDropped += o.DataDropped
	c.ExpiredInCalendar += o.ExpiredInCalendar
	c.LateArrivals += o.LateArrivals
	c.CalendarFull += o.CalendarFull
	c.RecoveredSameLength += o.RecoveredSameLength
	c.RecoveredShorter += o.RecoveredShorter
	c.RecoveredLonger += o.RecoveredLonger
	c.RecoveredBackup += o.RecoveredBackup
	c.RecoveryFailed += o.RecoveryFailed
	c.FaultDrops += o.FaultDrops
	c.CongestionSteered += o.CongestionSteered
	for i := range c.RerouteWait {
		c.RerouteWait[i] += o.RerouteWait[i]
	}
}

// rerouteWaitBucket maps a time-to-reroute wait onto its log₂-microsecond
// histogram bucket: 0 for sub-microsecond, i for [2^(i-1), 2^i) µs, the
// last bucket open-ended.
func rerouteWaitBucket(w sim.Time) int {
	if w < 0 {
		w = 0
	}
	b := bits.Len64(uint64(w / sim.Microsecond))
	if b >= RerouteWaitBuckets {
		b = RerouteWaitBuckets - 1
	}
	return b
}
