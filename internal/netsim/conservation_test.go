package netsim_test

import (
	"testing"

	"ucmp/internal/core"
	"ucmp/internal/netsim"
	"ucmp/internal/routing"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
	"ucmp/internal/transport"
)

// checkConservation runs a workload to quiescence and checks the packet
// ledger: every injected data packet must end exactly once — delivered in
// full, delivered as a trimmed header, or dropped — with anything else still
// visibly parked in a queue. A packet leaked by the pool (or duplicated by a
// double-release) breaks the equation.
func checkConservation(t *testing.T, kind transport.Kind, flows func(cfg topo.Config) []*netsim.Flow) {
	t.Helper()
	cfg := topo.Scaled()
	fab := topo.MustFabric(cfg, "round-robin", 1)
	router := routing.NewUCMP(core.BuildPathSet(fab, 0.5))
	eng := sim.NewEngine()
	qs := transport.QueueSpec(kind)
	net := netsim.New(eng, fab, router, qs, qs, netsim.DefaultRotor())
	net.Stamper = router.StampBucket
	net.Start()
	stack := transport.NewStack(net, kind)
	launched := flows(cfg)
	for _, f := range launched {
		stack.Launch(f)
	}
	// The horizon is far past completion so every packet-carrying event has
	// drained: the only events still pending are the self-re-arming slice
	// clock and idle transport timers, and the ledger below is exact.
	eng.Run(2 * sim.Second)
	for _, f := range launched {
		if !f.Finished {
			t.Fatalf("flow %d unfinished (%d/%d bytes): no quiescence, ledger would be inexact",
				f.ID, f.BytesDelivered, f.Size)
		}
	}

	c := net.Counters
	if c.DataInjected == 0 {
		t.Fatal("no data packets injected; the scenario is vacuous")
	}
	accounted := c.DataDelivered + c.TrimmedDelivered + c.DataDropped + net.InFlightData()
	if c.DataInjected != accounted {
		t.Fatalf("packet conservation violated: injected=%d != delivered=%d + trimmed=%d + dropped=%d + inflight=%d (=%d)",
			c.DataInjected, c.DataDelivered, c.TrimmedDelivered, c.DataDropped, net.InFlightData(), accounted)
	}
	gets, puts, live := net.PoolStats()
	if live != 0 {
		t.Fatalf("pool leak at quiescence: gets=%d puts=%d live=%d", gets, puts, live)
	}
}

func TestPacketConservationDCTCP(t *testing.T) {
	checkConservation(t, transport.DCTCP, func(cfg topo.Config) []*netsim.Flow {
		// Cross-rack flows plus an incast on host 0 to force queue pressure
		// (ECN marks, window cuts, and some drops on the shared downlink).
		var flows []*netsim.Flow
		id := int64(1)
		for h := cfg.HostsPerToR; h < 6*cfg.HostsPerToR && h < cfg.NumHosts(); h++ {
			flows = append(flows, netsim.NewFlow(id, h, 0, 256<<10, 0))
			id++
		}
		flows = append(flows, netsim.NewFlow(id, 0, cfg.NumHosts()-1, 1<<20, 0))
		return flows
	})
}

// A full simulation under poison mode: any use-after-release or double
// release anywhere in the fabric panics instead of corrupting state.
func TestPoisonedRunStaysClean(t *testing.T) {
	netsim.PoisonPackets = true
	defer func() { netsim.PoisonPackets = false }()
	checkConservation(t, transport.DCTCP, func(cfg topo.Config) []*netsim.Flow {
		var flows []*netsim.Flow
		for h := cfg.HostsPerToR; h < 3*cfg.HostsPerToR && h < cfg.NumHosts(); h++ {
			flows = append(flows, netsim.NewFlow(int64(h), h, 0, 128<<10, 0))
		}
		return flows
	})
}

func TestPacketConservationNDPTrimming(t *testing.T) {
	checkConservation(t, transport.NDP, func(cfg topo.Config) []*netsim.Flow {
		// NDP's 80-packet trimming queues under incast guarantee trimmed
		// headers, exercising the TrimmedDelivered leg of the ledger.
		var flows []*netsim.Flow
		for h := cfg.HostsPerToR; h < 8*cfg.HostsPerToR && h < cfg.NumHosts(); h++ {
			flows = append(flows, netsim.NewFlow(int64(h), h, 0, 512<<10, 0))
		}
		return flows
	})
}
