package netsim_test

import (
	"math/rand"
	"testing"

	"ucmp/internal/core"
	"ucmp/internal/netsim"
	"ucmp/internal/routing"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
	"ucmp/internal/transport"
)

// On an otherwise idle fabric, a single packet must be delivered within
// the slice the offline calculation planned: the observed end slice equals
// the path's Eqn. 1 end slice (no queueing, no misses). This ties the
// offline DP to the packet-level machinery end to end.
func TestObservedLatencyMatchesPlanned(t *testing.T) {
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	ps := core.BuildPathSet(f, 0.5)
	u := routing.NewUCMP(ps)

	for _, bucket := range []int{0, u.Ager.NumBuckets() - 1} {
		for _, pair := range [][2]int{{0, 5}, {3, 12}, {7, 1}, {9, 14}} {
			srcToR, dstToR := pair[0], pair[1]
			eng := sim.NewEngine()
			net := netsim.New(eng, f, u, transport.QueueSpec(transport.DCTCP), transport.QueueSpec(transport.DCTCP), netsim.RotorConfig{})
			net.Start()

			fl := netsim.NewFlow(1, srcToR*f.HostsPerToR, dstToR*f.HostsPerToR, 1436, 0)
			net.RegisterFlow(fl)
			var deliveredAt sim.Time = -1
			fl.ReceiverEP = epFunc(func(p *netsim.Packet) { deliveredAt = eng.Now() })
			fl.SenderEP = epFunc(func(*netsim.Packet) {})

			// Plan what the group says, then send one packet with that
			// bucket at the very start of slice 0.
			g := ps.Group(0, srcToR, dstToR)
			want := u.Ager.PathForBucket(g, bucket, fl.Hash)
			pkt := &netsim.Packet{Flow: fl, Type: netsim.Data, PayloadLen: 1436, WireLen: 1500, Bucket: bucket}
			eng.At(0, func() { net.Hosts[fl.SrcHost].Send(pkt) })
			eng.Run(f.CycleDuration() * 3)

			if deliveredAt < 0 {
				t.Fatalf("pair %v bucket %d: packet not delivered", pair, bucket)
			}
			gotSlice := f.AbsSlice(deliveredAt)
			// The final hop happens in the planned end slice; host delivery
			// adds only sub-slice serialization.
			if gotSlice != want.EndSlice() {
				t.Errorf("pair %v bucket %d: delivered in slice %d, planned end slice %d (path %v)",
					pair, bucket, gotSlice, want.EndSlice(), want)
			}
			if pkt.TorHops != want.HopCount() {
				t.Errorf("pair %v bucket %d: traversed %d hops, planned %d",
					pair, bucket, pkt.TorHops, want.HopCount())
			}
		}
	}
}

type epFunc func(*netsim.Packet)

func (f epFunc) Deliver(p *netsim.Packet) { f(p) }

// Randomized cross-validation: over random small fabrics, every routing
// scheme delivers a random flow set completely and conserves bytes.
func TestRandomFabricsAllSchemesDeliver(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4; trial++ {
		n := 6 + 2*rng.Intn(4) // 6..12 even
		d := 2 + rng.Intn(2)   // 2..3
		if d > n-1 {
			d = n - 1
		}
		cfg := topo.Scaled()
		cfg.NumToRs, cfg.Uplinks = n, d

		type mk struct {
			name  string
			sched string
			build func(f *topo.Fabric) netsim.Router
			tk    transport.Kind
		}
		makers := []mk{
			{"ucmp", "round-robin", func(f *topo.Fabric) netsim.Router { return routing.NewUCMP(core.BuildPathSet(f, 0.5)) }, transport.DCTCP},
			{"vlb", "round-robin", func(f *topo.Fabric) netsim.Router { return routing.NewVLB(f) }, transport.DCTCP},
			{"ksp", "round-robin", func(f *topo.Fabric) netsim.Router { return routing.NewKSP(f, 2) }, transport.NDP},
			{"opera", "opera", func(f *topo.Fabric) netsim.Router { return routing.NewOpera(f, 1) }, transport.NDP},
		}
		for _, m := range makers {
			f := topo.MustFabric(cfg, m.sched, int64(trial))
			eng := sim.NewEngine()
			router := m.build(f)
			net := netsim.New(eng, f, router, transport.QueueSpec(m.tk), transport.QueueSpec(m.tk), netsim.DefaultRotor())
			if uu, ok := router.(*routing.UCMP); ok {
				net.Stamper = uu.StampBucket
			}
			net.Start()
			stack := transport.NewStack(net, m.tk)
			var flows []*netsim.Flow
			hosts := cfg.NumHosts()
			for i := 0; i < 6; i++ {
				src := rng.Intn(hosts)
				dst := (src + 1 + rng.Intn(hosts-1)) % hosts
				size := int64(1000 + rng.Intn(200_000))
				fl := netsim.NewFlow(int64(i+1), src, dst, size, sim.Time(rng.Intn(100))*sim.Microsecond)
				flows = append(flows, fl)
				stack.Launch(fl)
			}
			eng.Run(400 * sim.Millisecond)
			for _, fl := range flows {
				if !fl.Finished {
					t.Errorf("trial %d %s (N=%d d=%d): flow %d unfinished (%d/%d)",
						trial, m.name, n, d, fl.ID, fl.BytesDelivered, fl.Size)
				}
			}
			c := net.Counters
			if c.DataBytesDelivered > c.DataBytesSent {
				t.Errorf("trial %d %s: delivered %d > sent %d", trial, m.name, c.DataBytesDelivered, c.DataBytesSent)
			}
		}
	}
}
