package netsim

import "testing"

func mkData(seq int64, wire int) *Packet {
	return &Packet{Type: Data, Seq: seq, WireLen: wire, PayloadLen: wire - HeaderBytes}
}

func TestQueueFIFOAndBands(t *testing.T) {
	q := &Queue{}
	q.Enqueue(mkData(0, 1500))
	q.Enqueue(&Packet{Type: Ack, Seq: 99, WireLen: HeaderBytes})
	q.Enqueue(mkData(1, 1500))
	// Control jumps the line.
	if p := q.Dequeue(); p.Type != Ack {
		t.Fatalf("control packet not prioritized, got %v", p.Type)
	}
	if p := q.Dequeue(); p.Seq != 0 {
		t.Fatalf("data not FIFO: seq %d", p.Seq)
	}
	if p := q.Dequeue(); p.Seq != 1 {
		t.Fatalf("data not FIFO: seq %d", p.Seq)
	}
	if q.Dequeue() != nil {
		t.Fatal("empty queue returned a packet")
	}
}

func TestQueueDropTail(t *testing.T) {
	q := &Queue{MaxDataPackets: 2}
	if !q.Enqueue(mkData(0, 1500)) || !q.Enqueue(mkData(1, 1500)) {
		t.Fatal("accepting within bound failed")
	}
	if q.Enqueue(mkData(2, 1500)) {
		t.Fatal("overflow accepted")
	}
	if q.Dropped != 1 {
		t.Fatalf("dropped=%d, want 1", q.Dropped)
	}
	// Control still accepted when data band is full.
	if !q.Enqueue(&Packet{Type: Pull, WireLen: HeaderBytes}) {
		t.Fatal("control rejected")
	}
}

func TestQueueECNMarking(t *testing.T) {
	q := &Queue{ECNThreshold: 2}
	for i := 0; i < 4; i++ {
		p := mkData(int64(i), 1500)
		p.ECNCapable = true
		q.Enqueue(p)
	}
	marked := 0
	for p := q.Dequeue(); p != nil; p = q.Dequeue() {
		if p.ECNMarked {
			marked++
		}
	}
	if marked != 2 {
		t.Fatalf("marked=%d, want 2 (packets 3 and 4 beyond threshold)", marked)
	}
	if q.Marked != 2 {
		t.Fatalf("mark counter %d", q.Marked)
	}
	// Non-ECT packets are never marked.
	q2 := &Queue{ECNThreshold: 0}
	p := mkData(0, 1500)
	p.ECNCapable = true
	q2.Enqueue(p)
	if p.ECNMarked {
		t.Fatal("marking with disabled threshold")
	}
}

func TestQueueTrimming(t *testing.T) {
	q := &Queue{MaxDataPackets: 1, Trim: true}
	q.Enqueue(mkData(0, 1500))
	p := mkData(1, 1500)
	if !q.Enqueue(p) {
		t.Fatal("trim should accept the packet")
	}
	if !p.Trimmed || p.WireLen != HeaderBytes {
		t.Fatalf("packet not trimmed: %+v", p)
	}
	if q.Trimmed != 1 {
		t.Fatalf("trim counter %d", q.Trimmed)
	}
	// Trimmed header is delivered before the queued data packet.
	if got := q.Dequeue(); !got.Trimmed {
		t.Fatal("trimmed header should ride the priority band")
	}
}

func TestQueueBytesAccounting(t *testing.T) {
	q := &Queue{}
	q.Enqueue(mkData(0, 1000))
	q.Enqueue(mkData(1, 500))
	if q.DataBytes() != 1500 {
		t.Fatalf("bytes=%d", q.DataBytes())
	}
	q.Dequeue()
	if q.DataBytes() != 500 {
		t.Fatalf("bytes after dequeue=%d", q.DataBytes())
	}
	if q.DataLen() != 1 || q.Len() != 1 {
		t.Fatal("length accounting wrong")
	}
}

func TestFIFOCompaction(t *testing.T) {
	var f fifo
	for i := 0; i < 500; i++ {
		f.push(mkData(int64(i), 100))
	}
	for i := 0; i < 400; i++ {
		if p := f.pop(); p.Seq != int64(i) {
			t.Fatalf("pop %d returned seq %d", i, p.Seq)
		}
	}
	for i := 500; i < 600; i++ {
		f.push(mkData(int64(i), 100))
	}
	for i := 400; i < 600; i++ {
		p := f.pop()
		if p == nil || p.Seq != int64(i) {
			t.Fatalf("pop %d returned %v", i, p)
		}
	}
	if f.pop() != nil {
		t.Fatal("fifo should be empty")
	}
}
