package netsim_test

import (
	"testing"

	"ucmp/internal/core"
	"ucmp/internal/failure"
	"ucmp/internal/netsim"
	"ucmp/internal/routing"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
	"ucmp/internal/transport"
)

// TestPacketConservationUnderFailureTimeline runs cross-rack traffic through
// a scripted outage — cables and a whole circuit switch go down mid-run, a
// ToR blinks off and back — and checks the same exact ledger as the healthy
// conservation tests: every injected data packet is delivered, trimmed,
// dropped, or visibly parked. Fault drops are ordinary drops in the ledger;
// repairs let TCP's RTO finish every flow so quiescence is reached.
func TestPacketConservationUnderFailureTimeline(t *testing.T) {
	cfg := topo.Scaled()
	fab := topo.MustFabric(cfg, "round-robin", 1)
	router := routing.NewUCMP(core.BuildPathSet(fab, 0.5))
	eng := sim.NewEngine()
	qs := transport.QueueSpec(transport.DCTCP)
	net := netsim.New(eng, fab, router, qs, qs, netsim.DefaultRotor())
	net.Stamper = router.StampBucket

	sched := failure.NewTimeline().
		LinkDown(100*sim.Microsecond, 0, 0).
		LinkDown(100*sim.Microsecond, 3, 1).
		SwitchDown(250*sim.Microsecond, 2).
		TorDown(300*sim.Microsecond, 5).
		TorUp(500*sim.Microsecond, 5).
		SwitchUp(600*sim.Microsecond, 2).
		LinkUp(900*sim.Microsecond, 0, 0).
		// (3,1) stays down for good: recovery must route around it.
		Compile(fab)
	net.Faults = sched
	router.Health = sched
	net.Start()
	stack := transport.NewStack(net, transport.DCTCP)

	// Cross-rack flows, several crossing the failed elements: sources and
	// sinks on ToRs 0, 3, and 5 plus background pairs. Sizes and staggered
	// starts make the flows span the whole outage window.
	var flows []*netsim.Flow
	id := int64(1)
	for _, pair := range [][2]int{
		{0, 7}, {1, 11}, {6, 21}, {7, 25}, {10, 3}, {11, 0}, {2, 30}, {15, 8},
	} {
		start := sim.Time(id-1) * 50 * sim.Microsecond
		flows = append(flows, netsim.NewFlow(id, pair[0], pair[1], 4<<20, start))
		id++
	}
	for _, f := range flows {
		stack.Launch(f)
	}
	eng.Run(2 * sim.Second)
	for _, f := range flows {
		if !f.Finished {
			t.Fatalf("flow %d unfinished (%d/%d bytes): outage not recovered, ledger would be inexact",
				f.ID, f.BytesDelivered, f.Size)
		}
	}

	c := net.Counters
	if c.DataInjected == 0 {
		t.Fatal("no data packets injected")
	}
	accounted := c.DataDelivered + c.TrimmedDelivered + c.DataDropped + net.InFlightData()
	if c.DataInjected != accounted {
		t.Fatalf("packet conservation violated under failures: injected=%d != delivered=%d + trimmed=%d + dropped=%d + inflight=%d",
			c.DataInjected, c.DataDelivered, c.TrimmedDelivered, c.DataDropped, net.InFlightData())
	}
	gets, puts, live := net.PoolStats()
	if live != 0 {
		t.Fatalf("pool leak at quiescence: gets=%d puts=%d live=%d", gets, puts, live)
	}

	// The outage must have been felt: some plans recovered onto alternates.
	recovered := c.RecoveredSameLength + c.RecoveredShorter + c.RecoveredLonger + c.RecoveredBackup
	if recovered == 0 {
		t.Fatal("no online recoveries despite an active outage; the scenario is vacuous")
	}
}
