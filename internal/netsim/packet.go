// Package netsim is a from-scratch packet-level RDCN simulator: the
// substitute for the htsim simulator used by the paper (§7.1). It models
// hosts, ToR switches with per-time-slice calendar queues on circuit-facing
// uplinks (§6.2), drop-tail/ECN and NDP trimming queues, per-packet
// serialization and propagation, circuit gating with reconfiguration
// delays, rerouting of packets that miss their planned slice (§6.3), and a
// RotorLB-style hop-by-hop mode for VLB-class traffic.
package netsim

import (
	"ucmp/internal/sim"
)

// PacketType distinguishes data from transport control traffic. Control
// packets ride the high-priority band of every queue.
type PacketType uint8

const (
	Data PacketType = iota
	Ack
	Nack
	Pull
)

func (t PacketType) String() string {
	switch t {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case Nack:
		return "nack"
	case Pull:
		return "pull"
	default:
		return "?"
	}
}

// HeaderBytes is the on-wire overhead per packet (Ethernet+IP+TCP-ish plus
// the SSRR source-route option of §6.2).
const HeaderBytes = 64

// PlannedHop is one entry of a packet's source route: the next ToR and the
// absolute time slice in which the circuit to it is up (§6.2's
// <ToR, egress port, departure slice> tuple; the egress port is derived
// from the schedule at enqueue time).
type PlannedHop struct {
	To       int
	AbsSlice int64
}

// Packet is a simulated packet. Packets are passed by pointer and never
// shared between two queues at once.
type Packet struct {
	Flow *Flow
	Type PacketType

	// Seq is the byte offset of the payload (data) or the cumulative ack /
	// nacked offset (control). PayloadLen is the payload size represented;
	// WireLen is what occupies the wire (headers included, possibly
	// trimmed).
	Seq        int64
	PayloadLen int
	WireLen    int

	ECNCapable bool
	ECNMarked  bool
	// EchoECN is set on ACKs to echo the data packet's mark (DCTCP).
	EchoECN bool
	Trimmed bool

	// Bucket is the flow-aging bucket stamped by the host (DSCP, §6.1).
	Bucket int

	SrcHost, DstHost int
	SrcToR, DstToR   int

	// Route is the source route; RouteIdx points at the next hop to take.
	Route    []PlannedHop
	RouteIdx int
	// Rerouted counts recirculations at the CURRENT ToR (§6.3: "packets
	// that have been recirculated more than 5 times on a ToR are
	// dropped"); it resets when the packet departs over a circuit.
	Rerouted int
	// WasRerouted marks packets recirculated at least once, for the
	// fraction the paper reports (§7.4).
	WasRerouted bool
	// TorHops counts ToR-to-ToR hops actually traversed, for bandwidth
	// efficiency accounting (§7.3).
	TorHops int

	// SentAt is when the packet (this transmission) left the host.
	SentAt sim.Time

	// RecoveredVia records how the router's §5.3 online recovery resolved
	// this packet's latest route plan; the zero value (RecoveryPrimary)
	// means the wanted path was healthy or no fault view is installed.
	// Routers that implement recovery stamp it on every plan.
	RecoveredVia RecoveryClass
	// FaultAt is the instant this packet hit a dead element (a calendar
	// expiry on a failed link or ToR); zero means it never did. The ToR
	// clears it when the replacement route is enqueued, recording the wait
	// in the Counters.RerouteWait histogram.
	FaultAt sim.Time

	// linkSrc/linkSeq stamp a ToR-to-ToR transmission with its sending ToR
	// and that ToR's monotone send counter. Peer arrivals sharing one
	// instant at one ToR are processed in (linkSrc, linkSeq) order — the
	// canonical tie-break that makes serial and sharded runs bit-identical
	// (see ToR.flushIngress).
	linkSrc int32
	linkSeq uint64

	// released marks a packet returned to its Network's pool; the poison
	// debug mode asserts it never re-enters the fabric (see pool.go).
	released bool
}

// MaxReroutes is the recirculation limit of §6.3.
const MaxReroutes = 5

// RecoveryClass is the outcome of one online §5.3 route resolution under a
// fault view, mirroring failure.Recovery: when the wanted (primary) path is
// unhealthy, the router prefers a healthy same-length group path, then a
// shorter one, then a longer one, then a 2-hop backup path; RecoveryNone
// means nothing healthy remained and the plan failed.
type RecoveryClass uint8

const (
	RecoveryPrimary RecoveryClass = iota
	RecoverySameLength
	RecoveryShorter
	RecoveryLonger
	RecoveryBackup
	RecoveryNone
	// RecoverySteered marks a plan the §10 congestion-aware extension moved
	// off the primary path onto a less-congested candidate within one
	// bucket of uniform-cost slack. It is not a fault-recovery outcome —
	// the primary was healthy, just congested — so it feeds
	// Counters.CongestionSteered rather than the §5.3 recovery breakdown.
	RecoverySteered
)

func (c RecoveryClass) String() string {
	switch c {
	case RecoveryPrimary:
		return "primary"
	case RecoverySameLength:
		return "same-length"
	case RecoveryShorter:
		return "shorter"
	case RecoveryLonger:
		return "longer"
	case RecoveryBackup:
		return "backup"
	case RecoveryNone:
		return "none"
	case RecoverySteered:
		return "congestion-steered"
	default:
		return "?"
	}
}

// CurrentHop returns the pending hop of the source route, or false when the
// route is exhausted.
func (p *Packet) CurrentHop() (PlannedHop, bool) {
	if p.RouteIdx >= len(p.Route) {
		return PlannedHop{}, false
	}
	return p.Route[p.RouteIdx], true
}

// IsControl reports whether the packet rides the priority band.
func (p *Packet) IsControl() bool { return p.Type != Data || p.Trimmed }
