package netsim_test

import (
	"testing"

	"ucmp/internal/core"
	"ucmp/internal/netsim"
	"ucmp/internal/routing"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
	"ucmp/internal/transport"
)

// buildNet wires a scaled fabric with the given router factory and
// transport kind.
func buildNet(t testing.TB, schedKind string, mkRouter func(f *topo.Fabric) netsim.Router, tk transport.Kind) (*sim.Engine, *netsim.Network, *transport.Stack) {
	t.Helper()
	f := topo.MustFabric(topo.Scaled(), schedKind, 1)
	eng := sim.NewEngine()
	router := mkRouter(f)
	net := netsim.New(eng, f, router, transport.QueueSpec(tk), transport.QueueSpec(tk), netsim.DefaultRotor())
	if u, ok := router.(*routing.UCMP); ok {
		net.Stamper = u.StampBucket
	}
	net.Start()
	return eng, net, transport.NewStack(net, tk)
}

func runFlows(t *testing.T, eng *sim.Engine, net *netsim.Network, stack *transport.Stack, flows []*netsim.Flow, horizon sim.Time) {
	t.Helper()
	for _, f := range flows {
		stack.Launch(f)
	}
	eng.Run(horizon)
	for _, f := range flows {
		if !f.Finished {
			t.Errorf("flow %d (%d bytes %d->%d) unfinished: delivered %d, drops=%d rerouted=%d",
				f.ID, f.Size, f.SrcHost, f.DstHost, f.BytesDelivered,
				net.Counters.DroppedPackets, net.Counters.ReroutedPackets)
		}
		if f.Finished && f.FCT() <= 0 {
			t.Errorf("flow %d nonpositive FCT %v", f.ID, f.FCT())
		}
	}
}

func ucmpRouter(f *topo.Fabric) netsim.Router {
	return routing.NewUCMP(core.BuildPathSet(f, 0.5))
}

func TestUCMPWithDCTCPDelivers(t *testing.T) {
	eng, net, stack := buildNet(t, "round-robin", ucmpRouter, transport.DCTCP)
	flows := []*netsim.Flow{
		netsim.NewFlow(1, 0, 17, 100_000, 0),
		netsim.NewFlow(2, 3, 30, 10_000, 10*sim.Microsecond),
		netsim.NewFlow(3, 8, 25, 2_000_000, 0),
	}
	runFlows(t, eng, net, stack, flows, 100*sim.Millisecond)
	if net.Counters.DataBytesDelivered < 2_110_000 {
		t.Fatalf("delivered %d bytes, want >= 2110000", net.Counters.DataBytesDelivered)
	}
	if eff := net.BandwidthEfficiency(); eff <= 0 || eff > 1 {
		t.Fatalf("bandwidth efficiency %v out of (0,1]", eff)
	}
}

func TestUCMPWithNDPDelivers(t *testing.T) {
	eng, net, stack := buildNet(t, "round-robin", ucmpRouter, transport.NDP)
	flows := []*netsim.Flow{
		netsim.NewFlow(1, 0, 17, 500_000, 0),
		netsim.NewFlow(2, 1, 17, 50_000, 0), // incast pair on one receiver
		netsim.NewFlow(3, 2, 17, 50_000, 0),
	}
	runFlows(t, eng, net, stack, flows, 100*sim.Millisecond)
}

func TestVLBWithRotorDelivers(t *testing.T) {
	eng, net, stack := buildNet(t, "round-robin",
		func(f *topo.Fabric) netsim.Router { return routing.NewVLB(f) }, transport.DCTCP)
	flows := []*netsim.Flow{
		netsim.NewFlow(1, 0, 17, 3_000_000, 0),
		netsim.NewFlow(2, 5, 20, 1_000_000, 0),
	}
	runFlows(t, eng, net, stack, flows, 200*sim.Millisecond)
	// VLB routes ~2 hops: efficiency should sit near 0.5, never near 1.
	if eff := net.BandwidthEfficiency(); eff < 0.35 || eff > 0.75 {
		t.Fatalf("VLB bandwidth efficiency %v, want around 0.5", eff)
	}
}

func TestKSPDelivers(t *testing.T) {
	eng, net, stack := buildNet(t, "round-robin",
		func(f *topo.Fabric) netsim.Router { return routing.NewKSP(f, 1) }, transport.DCTCP)
	flows := []*netsim.Flow{
		netsim.NewFlow(1, 0, 17, 200_000, 0),
		netsim.NewFlow(2, 9, 28, 80_000, 5*sim.Microsecond),
	}
	runFlows(t, eng, net, stack, flows, 200*sim.Millisecond)
}

func TestKSP5Delivers(t *testing.T) {
	eng, net, stack := buildNet(t, "round-robin",
		func(f *topo.Fabric) netsim.Router { return routing.NewKSP(f, 5) }, transport.DCTCP)
	flows := []*netsim.Flow{netsim.NewFlow(1, 0, 17, 300_000, 0)}
	runFlows(t, eng, net, stack, flows, 200*sim.Millisecond)
}

func TestOperaDelivers(t *testing.T) {
	eng, net, stack := buildNet(t, "opera",
		func(f *topo.Fabric) netsim.Router { return routing.NewOpera(f, 1) }, transport.NDP)
	flows := []*netsim.Flow{
		netsim.NewFlow(1, 0, 17, 100_000, 0),                // short: stable-graph KSP
		netsim.NewFlow(2, 5, 20, routing.FlowCutoff15MB, 0), // long: VLB/rotor
	}
	runFlows(t, eng, net, stack, flows, time500ms())
	if !flows[1].RotorClass {
		t.Fatal("15MB flow should be rotor-class under Opera")
	}
	if flows[0].RotorClass {
		t.Fatal("100KB flow should not be rotor-class under Opera")
	}
}

func time500ms() sim.Time { return 500 * sim.Millisecond }

func TestUCMPRelaxationClasses(t *testing.T) {
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	u := routing.NewUCMP(core.BuildPathSet(f, 0.5))
	u.Relax = true
	long := netsim.NewFlow(1, 0, 17, 20<<20, 0)
	short := netsim.NewFlow(2, 0, 17, 1<<20, 0)
	if !u.RotorFlow(long) || u.RotorFlow(short) {
		t.Fatal("relaxation classing wrong")
	}
	u.Relax = false
	if u.RotorFlow(long) {
		t.Fatal("relaxation disabled but long flow classed rotor")
	}
}

// Bytes conservation: data delivered never exceeds data sent; ToR-to-ToR
// bytes are at least the delivered inter-rack bytes.
func TestConservation(t *testing.T) {
	eng, net, stack := buildNet(t, "round-robin", ucmpRouter, transport.DCTCP)
	flows := []*netsim.Flow{
		netsim.NewFlow(1, 0, 17, 400_000, 0),
		netsim.NewFlow(2, 4, 21, 250_000, 0),
		netsim.NewFlow(3, 6, 1, 50_000, 0), // intra-rack? hosts 6,1 -> ToRs 3,0
	}
	runFlows(t, eng, net, stack, flows, 100*sim.Millisecond)
	c := net.Counters
	if c.DataBytesDelivered > c.DataBytesSent {
		t.Fatalf("delivered %d > sent %d", c.DataBytesDelivered, c.DataBytesSent)
	}
	if c.TorToTorBytes < c.DataBytesDelivered/2 {
		t.Fatalf("implausibly low ToR-ToR bytes: %d", c.TorToTorBytes)
	}
}

// Intra-rack flows never touch circuit uplinks.
func TestIntraRackStaysLocal(t *testing.T) {
	eng, net, stack := buildNet(t, "round-robin", ucmpRouter, transport.DCTCP)
	f := netsim.NewFlow(1, 0, 1, 100_000, 0) // both hosts on ToR 0
	runFlows(t, eng, net, stack, []*netsim.Flow{f}, 50*sim.Millisecond)
	if net.Counters.TorToTorBytes != 0 {
		t.Fatalf("intra-rack flow crossed circuits: %d bytes", net.Counters.TorToTorBytes)
	}
}

func TestReroutedFractionSmall(t *testing.T) {
	eng, net, stack := buildNet(t, "round-robin", ucmpRouter, transport.DCTCP)
	var flows []*netsim.Flow
	for i := 0; i < 20; i++ {
		flows = append(flows, netsim.NewFlow(int64(i+1), i%32, (i*7+17)%32, 50_000, sim.Time(i)*sim.Microsecond))
	}
	runFlows(t, eng, net, stack, flows, 200*sim.Millisecond)
	if frac := net.ReroutedFraction(); frac > 0.2 {
		t.Fatalf("rerouted fraction %v too high for light load (paper: <=3%%)", frac)
	}
}

func TestSampleUtilization(t *testing.T) {
	eng, net, stack := buildNet(t, "round-robin", ucmpRouter, transport.DCTCP)
	flows := []*netsim.Flow{netsim.NewFlow(1, 0, 17, 1_000_000, 0)}
	for _, f := range flows {
		stack.Launch(f)
	}
	var samples []netsim.Sample
	var prev *netsim.Sample
	var tick func()
	tick = func() {
		s := net.TakeSample(prev)
		samples = append(samples, s)
		prev = &samples[len(samples)-1]
		if eng.Now() < 20*sim.Millisecond {
			eng.After(sim.Millisecond, tick)
		}
	}
	eng.After(sim.Millisecond, tick)
	eng.Run(100 * sim.Millisecond)
	if !flows[0].Finished {
		t.Fatal("flow unfinished")
	}
	sawTraffic := false
	for _, s := range samples {
		if s.TorToTorUtil < 0 || s.TorToTorUtil > 1.01 {
			t.Fatalf("ToR-ToR util %v out of range", s.TorToTorUtil)
		}
		if s.JainLoadIndex < 0 || s.JainLoadIndex > 1.0001 {
			t.Fatalf("Jain %v out of range", s.JainLoadIndex)
		}
		if s.TorToHostUtil > 0 {
			sawTraffic = true
		}
	}
	if !sawTraffic {
		t.Fatal("no utilization observed in any sample")
	}
}
