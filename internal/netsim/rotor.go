package netsim

import "ucmp/internal/sim"

// rotorState implements the RotorLB-style hop-by-hop machinery used for
// VLB-class traffic: per-destination local VOQs (traffic originating at
// this ToR) and nonlocal VOQs (indirect traffic parked here for its final
// hop). Per slice and uplink, the draining priority is
//
//  1. nonlocal traffic whose destination is the current peer,
//  2. local traffic destined to the peer (direct, 1-hop),
//  3. local traffic for other destinations, indirected via the peer with
//     the slice's spare capacity (2-hop, VLB phase 1),
//
// which is the RotorLB ordering from the Opera/RotorNet line of work. The
// offer/accept exchange is replaced by a cap on the receiver's nonlocal
// backlog, checked at the sender against the slice-boundary snapshot every
// ToR publishes (documented substitution, DESIGN.md §1, §12): backlog
// state crosses ToRs only at slice boundaries, which are at least one
// lookahead window apart, so the exchange shards without synchronous peer
// reads and behaves identically in serial and sharded runs.
type rotorState struct {
	tor *ToR

	local    []fifo
	nonlocal []fifo

	localBytes    []int64
	nonlocalBytes []int64
	totalNonlocal int64

	// localPkts/nonlocalPkts count queued packets across all VOQs, so the
	// uplink pump's per-slice probing (selectPacket, backlogFor) costs one
	// compare when the rotor is idle — which is always, for non-VLB
	// transports that still instantiate the rotor machinery.
	localPkts    int
	nonlocalPkts int

	// waiters are one-shot host callbacks awaiting local-VOQ credit, each
	// tagged with the waiting flow so checkpoints can name it.
	waiters [][]rotorWaiter

	// rr rotates the indirect destination scan for fairness.
	rr int
}

// rotorWaiter is one parked credit callback: the flow whose sender is
// waiting (its dense index is what a checkpoint records) and the callback.
type rotorWaiter struct {
	f  *Flow
	fn func()
}

func newRotorState(t *ToR) *rotorState {
	n := t.net.F.Sched.N
	return &rotorState{
		tor:           t,
		local:         make([]fifo, n),
		nonlocal:      make([]fifo, n),
		localBytes:    make([]int64, n),
		nonlocalBytes: make([]int64, n),
		waiters:       make([][]rotorWaiter, n),
	}
}

// pushLocal admits a packet from a local host. Hosts are expected to
// respect RotorHasCredit, but overflow is tolerated (the VOQ is unbounded;
// the credit check is what provides backpressure).
func (r *rotorState) pushLocal(p *Packet) {
	dst := p.DstToR
	r.local[dst].push(p)
	r.localBytes[dst] += int64(p.WireLen)
	r.localPkts++
	r.tor.pumpFor(dst) // direct circuit may be up right now
	// Any circuit can carry it indirectly; kick all ports so spare slice
	// capacity is used promptly.
	for _, u := range r.tor.up {
		u.pump()
	}
}

// pushNonlocal parks an indirect packet for its final hop.
func (r *rotorState) pushNonlocal(p *Packet) {
	dst := p.DstToR
	r.nonlocal[dst].push(p)
	r.nonlocalBytes[dst] += int64(p.WireLen)
	r.totalNonlocal += int64(p.WireLen)
	r.nonlocalPkts++
	r.tor.pumpFor(dst)
}

// selectPacket picks the next rotor packet to send toward peer. budget is
// the serialization time remaining in the slice: a candidate fits when its
// uplink serialization delay is within it (passed as a value so the hot
// uplink pump does not allocate a predicate closure per call). abs is the
// current absolute slice, used to read the peer's published backlog
// snapshot. Returns nil when nothing eligible. Final-hop room is no longer
// checked here: the destination ToR stages rotor arrivals above its
// downlink threshold (downPort.stage), so losslessness holds without a
// cross-ToR occupancy read on the send path.
func (r *rotorState) selectPacket(peer int, budget sim.Time, abs int64) *Packet {
	if r.localPkts == 0 && r.nonlocalPkts == 0 {
		return nil
	}
	fits := func(wireLen int) bool {
		return r.tor.net.serdelayUp(wireLen) <= budget
	}
	// 1. Nonlocal traffic completing its second hop.
	if r.nonlocal[peer].len() > 0 {
		p := r.nonlocal[peer].items[r.nonlocal[peer].head]
		if !fits(p.WireLen) {
			return nil
		}
		r.nonlocal[peer].pop()
		r.nonlocalBytes[peer] -= int64(p.WireLen)
		r.totalNonlocal -= int64(p.WireLen)
		r.nonlocalPkts--
		return p
	}
	// 2. Local traffic with a direct circuit.
	if r.local[peer].len() > 0 {
		p := r.local[peer].items[r.local[peer].head]
		if !fits(p.WireLen) {
			return nil
		}
		r.local[peer].pop()
		r.creditLocal(peer, p)
		return p
	}
	// 3. Indirect: spare capacity carries other destinations via peer,
	// bounded by the peer's nonlocal backlog as of the last published slice
	// boundary (lossless stand-in for RotorLB's offer/accept).
	if r.tor.net.rotorBacklogAt(abs, peer) >= r.tor.net.Rotor.NonlocalCapBytes {
		return nil
	}
	n := len(r.local)
	for i := 0; i < n; i++ {
		dst := (r.rr + i) % n
		if dst == peer || dst == r.tor.id || r.local[dst].len() == 0 {
			continue
		}
		p := r.local[dst].items[r.local[dst].head]
		if !fits(p.WireLen) {
			return nil
		}
		r.local[dst].pop()
		r.creditLocal(dst, p)
		r.rr = (dst + 1) % n
		return p
	}
	return nil
}

// creditLocal updates accounting after a local packet left and wakes hosts
// blocked on credit.
func (r *rotorState) creditLocal(dst int, p *Packet) {
	r.localBytes[dst] -= int64(p.WireLen)
	r.localPkts--
	if r.localBytes[dst] < r.tor.net.Rotor.LocalCapBytes && len(r.waiters[dst]) > 0 {
		ws := r.waiters[dst]
		r.waiters[dst] = nil
		for _, w := range ws {
			w.fn()
		}
	}
}
