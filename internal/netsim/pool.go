package netsim

import "fmt"

// PoisonPackets enables the pool's use-after-release debugging: released
// packets have their fields overwritten with loud sentinel values, double
// releases panic, and the fabric entry points assert that a packet handed
// to them has not been recycled. It is a package-level switch (not
// per-Network) so tests can flip it without threading configuration through
// every constructor; it must not be toggled while simulations run.
var PoisonPackets = false

// Poison sentinels: any arithmetic or indexing on a recycled packet goes
// loudly wrong instead of silently reading stale-but-plausible data.
const (
	poisonSeq  = int64(-0x6b6b6b6b6b6b6b6b)
	poisonHost = -0x6b6b6b6b
)

// packetPool is a per-domain free list of Packet structs. A domain is
// single-threaded (one discrete-event engine), so the pool needs no locking
// even when domains run on parallel workers — each domain owns its pool,
// and a packet crossing domains is handed over at a barrier and recycled by
// the receiving domain. Recycled packets keep the capacity of their Route
// slice, so steady-state route planning appends into storage that has
// already grown to the fabric's hop-count high-water mark.
type packetPool struct {
	free []*Packet
	gets uint64
	puts uint64
}

// get returns a reset packet, recycling a released one when available.
// Callers fill in the fields they need; everything else is zero.
func (pool *packetPool) get() *Packet {
	pool.gets++
	if len(pool.free) == 0 {
		return &Packet{}
	}
	p := pool.free[len(pool.free)-1]
	pool.free = pool.free[:len(pool.free)-1]
	route := p.Route[:0]
	*p = Packet{Route: route}
	return p
}

// put returns a terminal packet (delivered or dropped) to the pool. The
// caller must not touch the packet afterwards; with PoisonPackets set,
// doing so trips an assertion or reads sentinel garbage.
func (pool *packetPool) put(p *Packet) {
	if PoisonPackets {
		if p.released {
			panic(fmt.Sprintf("netsim: double release of packet (seq=%d)", p.Seq))
		}
		p.Flow = nil
		p.Seq = poisonSeq
		p.PayloadLen = -1
		p.WireLen = -1
		p.SrcHost, p.DstHost = poisonHost, poisonHost
		p.SrcToR, p.DstToR = poisonHost, poisonHost
		p.RouteIdx = 1 << 30
		for i := range p.Route {
			p.Route[i] = PlannedHop{To: poisonHost, AbsSlice: -1}
		}
	}
	p.released = true
	pool.puts++
	pool.free = append(pool.free, p)
}

// NewPacket allocates from the first domain's pool. In serial mode that is
// the network's only pool; sharded transports allocate through
// Host.NewPacket instead, so each sender draws from its own domain.
func (n *Network) NewPacket() *Packet { return n.doms[0].newPacket() }

// Release recycles through the first domain's pool (serial-mode
// counterpart of NewPacket).
func (n *Network) Release(p *Packet) { n.doms[0].release(p) }

// assertLive panics when a recycled packet re-enters the fabric (only with
// PoisonPackets set; the check is a single predictable branch otherwise).
func (p *Packet) assertLive(where string) {
	if PoisonPackets && p.released {
		panic("netsim: use of released packet in " + where)
	}
}

// PoolStats reports pool traffic summed across domains: packets handed out,
// packets returned, and the difference — packets currently queued in the
// fabric or in flight inside scheduled events. Tests use it for leak
// detection.
func (n *Network) PoolStats() (gets, puts, live uint64) {
	for _, d := range n.doms {
		gets += d.pool.gets
		puts += d.pool.puts
	}
	return gets, puts, gets - puts
}
