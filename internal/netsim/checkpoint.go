package netsim

// Checkpoint/restore for the fabric (DESIGN.md §16). Snapshot re-encodes the
// network's full mutable state — per-domain engine clocks, pending events as
// pure descriptors, flow progress, every port queue with its parked packets,
// the slice-boundary boards, and the counter shards — into named sections of
// a checkpoint.Writer. RestoreFrom rebuilds that state onto a freshly
// constructed Network whose flows have been re-registered (the deterministic
// workload regeneration reproduces registration order, so dense indices are
// the stable identity packets and endpoints are serialized under).
//
// Closures are never serialized: pending events carry sim.EventTags naming
// what the closure does, and restore re-binds the model's own pre-bound
// method values (boundaryFn, pumpFn, recvFn, ...) in recorded (at, seq)
// order, which hands out fresh sequence numbers with identical same-instant
// tie-breaking. Event kinds netsim does not own (transport timers, metrics
// ticks) are delegated to the ext callback.
//
// On any decode error the target network is left partially restored and must
// be discarded; the harness falls back to building a clean cold run.

import (
	"fmt"

	"ucmp/internal/checkpoint"
	"ucmp/internal/sim"
)

// RestoreExt handles event descriptors whose kind netsim does not own
// (transport and metrics events). It must re-schedule the described event on
// eng — via the tagged scheduling calls or Timer.RestoreOccurrence — or
// return an error to abort the restore.
type RestoreExt func(eng *sim.Engine, at sim.Time, tag sim.EventTag, timer, armed bool, deadline sim.Time) error

// RestoredRotorWaiter is one parked RotorLB credit callback recovered from a
// checkpoint: Flow's sender was waiting at ToR Tor for local-VOQ credit
// toward Dst. The transport re-parks it via RotorNotify after restoring the
// endpoints (netsim cannot rebuild the sender's closure itself).
type RestoredRotorWaiter struct {
	Tor, Dst int
	Flow     *Flow
}

// RestoredRotorWaiters drains the waiter records decoded by RestoreFrom, in
// recorded order (ToR-major, then destination, then parking order — the
// order RotorNotify must re-park them in).
func (n *Network) RestoredRotorWaiters() []RestoredRotorWaiter {
	ws := n.restoredWaiters
	n.restoredWaiters = nil
	return ws
}

// FlowAt returns the flow with the given dense index, or nil when out of
// range. Dense indices are the flow identity inside checkpoints.
func (n *Network) FlowAt(dense int) *Flow {
	if dense < 0 || dense >= len(n.flowList) {
		return nil
	}
	return n.flowList[dense]
}

// Snapshot encodes the network's complete mutable state into w. It must run
// at an instant when no event is mid-flight: between segmented serial Run
// calls, or inside a sharded Global callback (the mailboxes are flushed
// here, which is exactly the merge the next window would have performed).
// An untagged pending event makes the snapshot impossible and returns an
// error; the network itself is never perturbed either way.
func (n *Network) Snapshot(w *checkpoint.Writer) error {
	if n.sharded != nil {
		n.sharded.FlushMailboxes()
	}

	e := w.Section("engine")
	if n.sharded != nil {
		e.U8(1)
		e.I64(int64(n.sharded.GlobalNow()))
	} else {
		e.U8(0)
		e.I64(int64(n.Eng.Now()))
	}
	e.Len(len(n.doms))
	for _, d := range n.doms {
		e.I64(int64(d.eng.Now()))
		e.U64(d.eng.Processed())
	}

	ev := w.Section("events")
	ev.Len(len(n.doms))
	for _, d := range n.doms {
		descs, err := d.eng.SnapshotEvents()
		if err != nil {
			return err
		}
		ev.Len(len(descs))
		for i := range descs {
			if err := encodeEventDesc(ev, &descs[i]); err != nil {
				return err
			}
		}
	}

	fe := w.Section("flows")
	fe.Len(len(n.flowList))
	for _, f := range n.flowList {
		fe.I64(f.ID)
		fe.I64(f.BytesSent)
		fe.I64(f.BytesDelivered)
		fe.Bool(f.Finished)
		fe.I64(int64(f.FinishedAt))
	}

	pe := w.Section("ports")
	pe.Len(len(n.ToRs))
	for _, t := range n.ToRs {
		pe.U64(t.linkSeq)
		pe.Bool(t.ingressArmed)
		pe.Len(len(t.ingress))
		for _, p := range t.ingress {
			encodePacket(pe, p)
		}
		for _, dp := range t.down {
			pe.I64(int64(dp.busyUntil))
			pe.I64(dp.meter.total)
			pe.I64(dp.meter.last)
			encodeQueue(pe, &dp.queue)
			encodeFifo(pe, &dp.stage)
		}
		for _, u := range t.up {
			pe.I64(int64(u.busyUntil))
			pe.I64(u.meter.total)
			pe.I64(u.meter.last)
			for c := range u.cal {
				encodeQueue(pe, &u.cal[c])
			}
		}
		pe.Bool(t.rotor != nil)
		if r := t.rotor; r != nil {
			pe.I32(int32(r.rr))
			for dst := range r.local {
				encodeFifo(pe, &r.local[dst])
				encodeFifo(pe, &r.nonlocal[dst])
				pe.Len(len(r.waiters[dst]))
				for _, wt := range r.waiters[dst] {
					pe.I32(int32(wt.f.dense))
				}
			}
		}
	}
	pe.Len(len(n.Hosts))
	for _, h := range n.Hosts {
		hp := h.port
		pe.I64(int64(hp.busyUntil))
		pe.I64(hp.meter.total)
		pe.I64(hp.meter.last)
		encodeFifo(pe, &hp.high)
		encodeFifo(pe, &hp.anon)
		nq := 0
		for i := range hp.perFlow {
			if hp.perFlow[i].len() > 0 {
				nq++
			}
		}
		pe.Len(nq)
		for i := range hp.perFlow {
			if hp.perFlow[i].len() > 0 {
				pe.I32(int32(i))
				encodeFifo(pe, &hp.perFlow[i])
			}
		}
		pe.Len(len(hp.ring))
		for _, id := range hp.ring {
			pe.I32(int32(id))
		}
		pe.I32(int32(hp.rr))
	}

	be := w.Section("boards")
	be.Bool(n.rotorSnap != nil)
	if n.rotorSnap != nil {
		be.Len(len(n.rotorSnap))
		for _, v := range n.rotorSnap {
			be.I64(v)
		}
	}
	be.Bool(n.congSnap != nil)
	if n.congSnap != nil {
		be.Len(len(n.congSnap))
		for _, v := range n.congSnap {
			be.I32(v)
		}
	}

	ce := w.Section("counters")
	ce.Len(len(n.doms))
	for _, d := range n.doms {
		encodeCounters(ce, d.ctr)
		ce.Len(len(d.finished))
		for _, f := range d.finished {
			ce.I32(int32(f.dense))
		}
	}
	return nil
}

// RestoreFrom rebuilds the snapshot state onto this network, which must be
// freshly constructed under the identical configuration, with every flow of
// the workload already registered (and endpoints attached) but Start not
// called and nothing run. Any validation or decode error aborts the restore
// with the network in an undefined state — discard it and run cold.
func (n *Network) RestoreFrom(f *checkpoint.File, ext RestoreExt) error {
	ed, err := f.Section("engine")
	if err != nil {
		return err
	}
	mode := ed.U8()
	want := uint8(0)
	if n.sharded != nil {
		want = 1
	}
	if mode != want {
		return fmt.Errorf("checkpoint: engine mode %d, network wants %d (serial/sharded mismatch)", mode, want)
	}
	global := sim.Time(ed.I64())
	if nd := ed.Len(); nd != len(n.doms) {
		return fmt.Errorf("checkpoint: %d domains in file, network has %d", nd, len(n.doms))
	}
	for _, d := range n.doms {
		now := sim.Time(ed.I64())
		processed := ed.U64()
		if ed.Err() != nil {
			return ed.Err()
		}
		d.eng.Restore(now, processed)
	}
	if n.sharded != nil {
		n.sharded.RestoreGlobalNow(global)
	}
	if err := ed.Err(); err != nil {
		return err
	}

	fd, err := f.Section("flows")
	if err != nil {
		return err
	}
	if cnt := fd.Len(); cnt != len(n.flowList) {
		return fmt.Errorf("checkpoint: %d flows in file, workload registered %d", cnt, len(n.flowList))
	}
	for _, fl := range n.flowList {
		id := fd.I64()
		if fd.Err() == nil && id != fl.ID {
			return fmt.Errorf("checkpoint: flow id %d at dense %d, workload has %d", id, fl.dense, fl.ID)
		}
		fl.BytesSent = fd.I64()
		fl.BytesDelivered = fd.I64()
		fl.Finished = fd.Bool()
		fl.FinishedAt = sim.Time(fd.I64())
	}
	if err := fd.Err(); err != nil {
		return err
	}

	vd, err := f.Section("events")
	if err != nil {
		return err
	}
	if nd := vd.Len(); nd != len(n.doms) {
		return fmt.Errorf("checkpoint: event stream covers %d domains, network has %d", nd, len(n.doms))
	}
	for _, d := range n.doms {
		cnt := vd.Len()
		for j := 0; j < cnt; j++ {
			if err := n.restoreEvent(d, vd, ext); err != nil {
				return err
			}
		}
	}
	if err := vd.Err(); err != nil {
		return err
	}

	pd, err := f.Section("ports")
	if err != nil {
		return err
	}
	if cnt := pd.Len(); cnt != len(n.ToRs) {
		return fmt.Errorf("checkpoint: %d ToRs in file, network has %d", cnt, len(n.ToRs))
	}
	for _, t := range n.ToRs {
		t.linkSeq = pd.U64()
		t.ingressArmed = pd.Bool()
		icnt := pd.Len()
		t.ingress = t.ingress[:0]
		for j := 0; j < icnt; j++ {
			p, err := decodePacket(pd, t.dom)
			if err != nil {
				return err
			}
			t.ingress = append(t.ingress, p)
		}
		for _, dp := range t.down {
			dp.busyUntil = sim.Time(pd.I64())
			dp.meter.total = pd.I64()
			dp.meter.last = pd.I64()
			if err := decodeQueue(pd, t.dom, &dp.queue); err != nil {
				return err
			}
			if err := decodeFifo(pd, t.dom, &dp.stage); err != nil {
				return err
			}
		}
		for _, u := range t.up {
			u.busyUntil = sim.Time(pd.I64())
			u.meter.total = pd.I64()
			u.meter.last = pd.I64()
			for c := range u.cal {
				if err := decodeQueue(pd, t.dom, &u.cal[c]); err != nil {
					return err
				}
			}
			// The per-slice cache is not serialized: a zero sliceEnd makes the
			// first pump recompute it from `now`, which yields exactly what the
			// uninterrupted run's cache held.
			u.sliceEnd = 0
		}
		hasRotor := pd.Bool()
		if pd.Err() != nil {
			return pd.Err()
		}
		if hasRotor != (t.rotor != nil) {
			return fmt.Errorf("checkpoint: rotor state presence mismatch at ToR %d", t.id)
		}
		if r := t.rotor; r != nil {
			r.rr = int(pd.I32())
			r.totalNonlocal, r.localPkts, r.nonlocalPkts = 0, 0, 0
			for dst := range r.local {
				if err := decodeFifo(pd, t.dom, &r.local[dst]); err != nil {
					return err
				}
				if err := decodeFifo(pd, t.dom, &r.nonlocal[dst]); err != nil {
					return err
				}
				// Byte/packet accounting is derived, not stored: recompute it
				// from the decoded VOQ contents.
				r.localBytes[dst], r.nonlocalBytes[dst] = 0, 0
				for _, p := range r.local[dst].items[r.local[dst].head:] {
					r.localBytes[dst] += int64(p.WireLen)
					r.localPkts++
				}
				for _, p := range r.nonlocal[dst].items[r.nonlocal[dst].head:] {
					r.nonlocalBytes[dst] += int64(p.WireLen)
					r.totalNonlocal += int64(p.WireLen)
					r.nonlocalPkts++
				}
				wcnt := pd.Len()
				r.waiters[dst] = nil
				for j := 0; j < wcnt; j++ {
					fl := n.FlowAt(int(pd.I32()))
					if pd.Err() != nil {
						return pd.Err()
					}
					if fl == nil {
						return fmt.Errorf("checkpoint: rotor waiter at ToR %d references unknown flow", t.id)
					}
					n.restoredWaiters = append(n.restoredWaiters, RestoredRotorWaiter{Tor: t.id, Dst: dst, Flow: fl})
				}
			}
		}
	}
	if cnt := pd.Len(); cnt != len(n.Hosts) {
		return fmt.Errorf("checkpoint: %d hosts in file, network has %d", cnt, len(n.Hosts))
	}
	for _, h := range n.Hosts {
		hp := h.port
		hp.busyUntil = sim.Time(pd.I64())
		hp.meter.total = pd.I64()
		hp.meter.last = pd.I64()
		if err := decodeFifo(pd, h.dom, &hp.high); err != nil {
			return err
		}
		if err := decodeFifo(pd, h.dom, &hp.anon); err != nil {
			return err
		}
		if len(hp.perFlow) < len(n.flowList) {
			hp.perFlow = make([]fifo, len(n.flowList))
		}
		nq := pd.Len()
		for j := 0; j < nq; j++ {
			id := int(pd.I32())
			if pd.Err() != nil {
				return pd.Err()
			}
			if id < 0 || id >= len(hp.perFlow) {
				return fmt.Errorf("checkpoint: host %d NIC queue references unknown flow %d", h.id, id)
			}
			if err := decodeFifo(pd, h.dom, &hp.perFlow[id]); err != nil {
				return err
			}
		}
		rcnt := pd.Len()
		hp.ring = hp.ring[:0]
		for j := 0; j < rcnt; j++ {
			id := int(pd.I32())
			if pd.Err() != nil {
				return pd.Err()
			}
			if id != anonQueue && (id < 0 || id >= len(hp.perFlow)) {
				return fmt.Errorf("checkpoint: host %d NIC ring references unknown queue %d", h.id, id)
			}
			hp.ring = append(hp.ring, id)
		}
		hp.rr = int(pd.I32())
	}
	if err := pd.Err(); err != nil {
		return err
	}

	bd, err := f.Section("boards")
	if err != nil {
		return err
	}
	if has := bd.Bool(); has != (n.rotorSnap != nil) {
		return fmt.Errorf("checkpoint: rotor board presence mismatch")
	}
	if n.rotorSnap != nil {
		if cnt := bd.Len(); cnt != len(n.rotorSnap) {
			return fmt.Errorf("checkpoint: rotor board has %d slots, network has %d", cnt, len(n.rotorSnap))
		}
		for i := range n.rotorSnap {
			n.rotorSnap[i] = bd.I64()
		}
	}
	if has := bd.Bool(); has != (n.congSnap != nil) {
		return fmt.Errorf("checkpoint: congestion board presence mismatch")
	}
	if n.congSnap != nil {
		if cnt := bd.Len(); cnt != len(n.congSnap) {
			return fmt.Errorf("checkpoint: congestion board has %d slots, network has %d", cnt, len(n.congSnap))
		}
		for i := range n.congSnap {
			n.congSnap[i] = bd.I32()
		}
	}
	if err := bd.Err(); err != nil {
		return err
	}

	cd, err := f.Section("counters")
	if err != nil {
		return err
	}
	if cnt := cd.Len(); cnt != len(n.doms) {
		return fmt.Errorf("checkpoint: %d counter shards in file, network has %d", cnt, len(n.doms))
	}
	for _, d := range n.doms {
		decodeCounters(cd, d.ctr)
		fcnt := cd.Len()
		d.finished = nil
		for j := 0; j < fcnt; j++ {
			fl := n.FlowAt(int(cd.I32()))
			if cd.Err() != nil {
				return cd.Err()
			}
			if fl == nil {
				return fmt.Errorf("checkpoint: finished list references unknown flow")
			}
			d.finished = append(d.finished, fl)
		}
	}
	return cd.Err()
}

// restoreEvent decodes one event descriptor and re-schedules it: netsim
// kinds re-bind the model's own closures; foreign kinds go to ext.
func (n *Network) restoreEvent(d *domain, dec *checkpoint.Decoder, ext RestoreExt) error {
	at := sim.Time(dec.I64())
	tag := sim.EventTag{Kind: dec.U8(), A: dec.I32(), B: dec.I32()}
	flags := dec.U8()
	timer := flags&1 != 0
	armed := flags&2 != 0
	var deadline sim.Time
	if timer {
		deadline = sim.Time(dec.I64())
	}
	var p *Packet
	if flags&4 != 0 {
		var err error
		p, err = decodePacket(dec, d)
		if err != nil {
			return err
		}
	}
	if err := dec.Err(); err != nil {
		return err
	}

	tor := func() (*ToR, error) {
		if int(tag.A) < 0 || int(tag.A) >= len(n.ToRs) {
			return nil, fmt.Errorf("checkpoint: event kind %d references unknown ToR %d", tag.Kind, tag.A)
		}
		t := n.ToRs[tag.A]
		if t.dom != d {
			return nil, fmt.Errorf("checkpoint: event for ToR %d recorded in the wrong domain", tag.A)
		}
		return t, nil
	}
	host := func() (*Host, error) {
		if int(tag.A) < 0 || int(tag.A) >= len(n.Hosts) {
			return nil, fmt.Errorf("checkpoint: event kind %d references unknown host %d", tag.Kind, tag.A)
		}
		h := n.Hosts[tag.A]
		if h.dom != d {
			return nil, fmt.Errorf("checkpoint: event for host %d recorded in the wrong domain", tag.A)
		}
		return h, nil
	}

	switch tag.Kind {
	case checkpoint.KindBoundary:
		if int(tag.A) < 0 || int(tag.A) >= len(n.doms) || n.doms[tag.A] != d {
			return fmt.Errorf("checkpoint: boundary event references domain %d", tag.A)
		}
		d.eng.AtTag(at, tag, d.boundaryFn)
	case checkpoint.KindFlush:
		t, err := tor()
		if err != nil {
			return err
		}
		d.eng.AtTag(at, tag, t.flushFn)
	case checkpoint.KindPumpDown:
		h, err := host()
		if err != nil {
			return err
		}
		t := n.ToRs[h.tor]
		d.eng.AtTag(at, tag, t.down[h.id-h.tor*n.F.HostsPerToR].pumpFn)
	case checkpoint.KindPumpHost:
		h, err := host()
		if err != nil {
			return err
		}
		d.eng.AtTag(at, tag, h.port.pumpFn)
	case checkpoint.KindDeliverHost:
		h, err := host()
		if err != nil {
			return err
		}
		if p == nil {
			return fmt.Errorf("checkpoint: delivery event without a packet")
		}
		d.eng.At1Tag(at, tag, h.recvFn, p)
	case checkpoint.KindRecvHost:
		t, err := tor()
		if err != nil {
			return err
		}
		if p == nil {
			return fmt.Errorf("checkpoint: NIC arrival event without a packet")
		}
		d.eng.At1Tag(at, tag, t.recvHostFn, p)
	case checkpoint.KindIngress:
		t, err := tor()
		if err != nil {
			return err
		}
		if p == nil {
			return fmt.Errorf("checkpoint: ingress event without a packet")
		}
		d.eng.At1Tag(at, tag, t.ingressFn, p)
	case checkpoint.KindWakeUplink:
		t, err := tor()
		if err != nil {
			return err
		}
		if !timer {
			return fmt.Errorf("checkpoint: uplink wake event is not a timer occurrence")
		}
		if int(tag.B) < 0 || int(tag.B) >= len(t.up) {
			return fmt.Errorf("checkpoint: uplink wake references unknown port %d at ToR %d", tag.B, tag.A)
		}
		t.up[tag.B].wake.RestoreOccurrence(at, deadline, armed)
	default:
		if p != nil {
			return fmt.Errorf("checkpoint: packet attached to foreign event kind %d", tag.Kind)
		}
		if ext == nil {
			return fmt.Errorf("checkpoint: no handler for event kind %d", tag.Kind)
		}
		return ext(d.eng, at, tag, timer, armed, deadline)
	}
	return nil
}

// encodeEventDesc writes one pending-event descriptor. Packet-carrying
// events serialize the packet inline; any other argument type is a bug.
func encodeEventDesc(e *checkpoint.Encoder, desc *sim.EventDesc) error {
	flags := uint8(0)
	if desc.Timer {
		flags |= 1
	}
	if desc.Armed {
		flags |= 2
	}
	var p *Packet
	if desc.Arg != nil {
		pk, ok := desc.Arg.(*Packet)
		if !ok {
			return fmt.Errorf("checkpoint: pending event kind %d carries unserializable argument %T", desc.Tag.Kind, desc.Arg)
		}
		p = pk
		flags |= 4
	}
	e.I64(int64(desc.At))
	e.U8(desc.Tag.Kind)
	e.I32(desc.Tag.A)
	e.I32(desc.Tag.B)
	e.U8(flags)
	if desc.Timer {
		e.I64(int64(desc.Deadline))
	}
	if p != nil {
		encodePacket(e, p)
	}
	return nil
}

func encodePacket(e *checkpoint.Encoder, p *Packet) {
	dense := int32(-1)
	if p.Flow != nil {
		dense = int32(p.Flow.dense)
	}
	e.I32(dense)
	e.U8(uint8(p.Type))
	e.I64(p.Seq)
	e.I32(int32(p.PayloadLen))
	e.I32(int32(p.WireLen))
	e.Bool(p.ECNCapable)
	e.Bool(p.ECNMarked)
	e.Bool(p.EchoECN)
	e.Bool(p.Trimmed)
	e.I32(int32(p.Bucket))
	e.I32(int32(p.SrcHost))
	e.I32(int32(p.DstHost))
	e.I32(int32(p.SrcToR))
	e.I32(int32(p.DstToR))
	e.Len(len(p.Route))
	for _, h := range p.Route {
		e.I32(int32(h.To))
		e.I64(h.AbsSlice)
	}
	e.I32(int32(p.RouteIdx))
	e.I32(int32(p.Rerouted))
	e.Bool(p.WasRerouted)
	e.I32(int32(p.TorHops))
	e.I64(int64(p.SentAt))
	e.U8(uint8(p.RecoveredVia))
	e.I64(int64(p.FaultAt))
	e.I32(p.linkSrc)
	e.U64(p.linkSeq)
}

// decodePacket rebuilds a packet from the owning domain's pool (keeping the
// pool's leak ledger balanced: the packet will be released through it).
func decodePacket(dec *checkpoint.Decoder, d *domain) (*Packet, error) {
	p := d.newPacket()
	dense := dec.I32()
	if dense != -1 {
		p.Flow = d.net.FlowAt(int(dense))
		if dec.Err() == nil && p.Flow == nil {
			return nil, fmt.Errorf("checkpoint: packet references unknown flow dense index %d", dense)
		}
	}
	p.Type = PacketType(dec.U8())
	p.Seq = dec.I64()
	p.PayloadLen = int(dec.I32())
	p.WireLen = int(dec.I32())
	p.ECNCapable = dec.Bool()
	p.ECNMarked = dec.Bool()
	p.EchoECN = dec.Bool()
	p.Trimmed = dec.Bool()
	p.Bucket = int(dec.I32())
	p.SrcHost = int(dec.I32())
	p.DstHost = int(dec.I32())
	p.SrcToR = int(dec.I32())
	p.DstToR = int(dec.I32())
	hops := dec.Len()
	p.Route = p.Route[:0]
	for i := 0; i < hops; i++ {
		p.Route = append(p.Route, PlannedHop{To: int(dec.I32()), AbsSlice: dec.I64()})
	}
	p.RouteIdx = int(dec.I32())
	p.Rerouted = int(dec.I32())
	p.WasRerouted = dec.Bool()
	p.TorHops = int(dec.I32())
	p.SentAt = sim.Time(dec.I64())
	p.RecoveredVia = RecoveryClass(dec.U8())
	p.FaultAt = sim.Time(dec.I64())
	p.linkSrc = dec.I32()
	p.linkSeq = dec.U64()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

func encodeFifo(e *checkpoint.Encoder, f *fifo) {
	e.Len(f.len())
	for _, p := range f.items[f.head:] {
		encodePacket(e, p)
	}
}

func decodeFifo(dec *checkpoint.Decoder, d *domain, f *fifo) error {
	cnt := dec.Len()
	f.items = f.items[:0]
	f.head = 0
	for i := 0; i < cnt; i++ {
		p, err := decodePacket(dec, d)
		if err != nil {
			return err
		}
		f.items = append(f.items, p)
	}
	return dec.Err()
}

func encodeQueue(e *checkpoint.Encoder, q *Queue) {
	encodeFifo(e, &q.high)
	encodeFifo(e, &q.low)
	e.I64(q.Dropped)
	e.I64(q.Trimmed)
	e.I64(q.Marked)
}

func decodeQueue(dec *checkpoint.Decoder, d *domain, q *Queue) error {
	if err := decodeFifo(dec, d, &q.high); err != nil {
		return err
	}
	if err := decodeFifo(dec, d, &q.low); err != nil {
		return err
	}
	// dataBytes is derived: the sum over the data band.
	q.dataBytes = 0
	for _, p := range q.low.items[q.low.head:] {
		q.dataBytes += int64(p.WireLen)
	}
	q.Dropped = dec.I64()
	q.Trimmed = dec.I64()
	q.Marked = dec.I64()
	return dec.Err()
}

func encodeCounters(e *checkpoint.Encoder, c *Counters) {
	e.I64(c.DataBytesSent)
	e.I64(c.DataBytesDelivered)
	e.I64(c.TorToTorBytes)
	e.I64(c.HostToTorBytes)
	e.I64(c.TorToHostBytes)
	e.I64(c.DataPackets)
	e.I64(c.ReroutedPackets)
	e.I64(c.DroppedPackets)
	e.I64(c.RotorDrops)
	e.I64(c.DataInjected)
	e.I64(c.DataDelivered)
	e.I64(c.TrimmedDelivered)
	e.I64(c.DataDropped)
	e.I64(c.ExpiredInCalendar)
	e.I64(c.LateArrivals)
	e.I64(c.CalendarFull)
	e.I64(c.RecoveredSameLength)
	e.I64(c.RecoveredShorter)
	e.I64(c.RecoveredLonger)
	e.I64(c.RecoveredBackup)
	e.I64(c.RecoveryFailed)
	e.I64(c.FaultDrops)
	e.I64(c.CongestionSteered)
	for i := range c.RerouteWait {
		e.I64(c.RerouteWait[i])
	}
}

func decodeCounters(dec *checkpoint.Decoder, c *Counters) {
	c.DataBytesSent = dec.I64()
	c.DataBytesDelivered = dec.I64()
	c.TorToTorBytes = dec.I64()
	c.HostToTorBytes = dec.I64()
	c.TorToHostBytes = dec.I64()
	c.DataPackets = dec.I64()
	c.ReroutedPackets = dec.I64()
	c.DroppedPackets = dec.I64()
	c.RotorDrops = dec.I64()
	c.DataInjected = dec.I64()
	c.DataDelivered = dec.I64()
	c.TrimmedDelivered = dec.I64()
	c.DataDropped = dec.I64()
	c.ExpiredInCalendar = dec.I64()
	c.LateArrivals = dec.I64()
	c.CalendarFull = dec.I64()
	c.RecoveredSameLength = dec.I64()
	c.RecoveredShorter = dec.I64()
	c.RecoveredLonger = dec.I64()
	c.RecoveredBackup = dec.I64()
	c.RecoveryFailed = dec.I64()
	c.FaultDrops = dec.I64()
	c.CongestionSteered = dec.I64()
	for i := range c.RerouteWait {
		c.RerouteWait[i] = dec.I64()
	}
}
