package netsim_test

import (
	"fmt"
	"testing"

	"ucmp/internal/core"
	"ucmp/internal/failure"
	"ucmp/internal/netsim"
	"ucmp/internal/routing"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
	"ucmp/internal/transport"
)

// The two benchmarks below are the per-packet hot-path exhibits tracked in
// results/BENCH_pr2.json: a single-uplink saturation run (one bulk flow
// crossing one ToR-to-ToR port) and an 8-ToR incast (every other host
// sending to host 0, saturating one downlink). Both report allocs/op over a
// whole simulation run and sim events/sec, the numbers the packet arena and
// map-free dispatch are meant to move. Fabric, path set, and router are
// built once and shared: routers are read-only at plan time, so the loop
// body measures only the online simulator.

type benchEnv struct {
	fab    *topo.Fabric
	router *routing.UCMP
}

func newBenchEnv(cfg topo.Config) *benchEnv {
	fab := topo.MustFabric(cfg, "round-robin", 1)
	return &benchEnv{fab: fab, router: routing.NewUCMP(core.BuildPathSet(fab, 0.5))}
}

// runBenchFlows wires a fresh engine+network, launches the flows, and runs
// to the horizon, failing the benchmark if any flow is left unfinished.
func (e *benchEnv) runBenchFlows(b *testing.B, flows []*netsim.Flow, horizon sim.Time) uint64 {
	b.Helper()
	eng := sim.NewEngine()
	qs := transport.QueueSpec(transport.DCTCP)
	net := netsim.New(eng, e.fab, e.router, qs, qs, netsim.DefaultRotor())
	net.Stamper = e.router.StampBucket
	net.Start()
	stack := transport.NewStack(net, transport.DCTCP)
	for _, f := range flows {
		stack.Launch(f)
	}
	eng.Run(horizon)
	for _, f := range flows {
		if !f.Finished {
			b.Fatalf("flow %d unfinished: %d/%d bytes delivered (drops=%d)",
				f.ID, f.BytesDelivered, f.Size, net.Counters.DroppedPackets)
		}
	}
	return eng.Processed()
}

// BenchmarkSaturation drives one 2 MB DCTCP flow between two racks: the
// classic single-port saturation microbenchmark (every data packet crosses
// one host NIC, one uplink calendar queue, and one downlink).
func BenchmarkSaturation(b *testing.B) {
	env := newBenchEnv(topo.Scaled())
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		flows := []*netsim.Flow{netsim.NewFlow(1, 0, 3, 2<<20, 0)}
		events += env.runBenchFlows(b, flows, 200*sim.Millisecond)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// saturation64 is the sharded-engine exhibit: a 64-ToR fabric where every
// rack's first host streams 1 MB to the next rack over (ring permutation),
// so all 64 lookahead domains carry traffic and every data packet crosses
// a domain boundary.
func saturation64() (topo.Config, func() []*netsim.Flow, sim.Time) {
	cfg := topo.Scaled()
	cfg.NumToRs = 64
	cfg.Uplinks = 4
	cfg.HostsPerToR = 2
	flows := func() []*netsim.Flow {
		var fl []*netsim.Flow
		for t := 0; t < cfg.NumToRs; t++ {
			src := t * cfg.HostsPerToR
			dst := ((t + 1) % cfg.NumToRs) * cfg.HostsPerToR
			fl = append(fl, netsim.NewFlow(int64(t+1), src, dst, 1<<20, 0))
		}
		return fl
	}
	return cfg, flows, 50 * sim.Millisecond
}

// BenchmarkSaturation64 is the serial baseline for the 64-ToR permutation.
func BenchmarkSaturation64(b *testing.B) {
	cfg, mkFlows, horizon := saturation64()
	env := newBenchEnv(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		events += env.runBenchFlows(b, mkFlows(), horizon)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// runSharded64 executes one saturation64 iteration on the sharded engine
// and returns the events processed.
func (e *benchEnv) runSharded64(b *testing.B, workers int, flows []*netsim.Flow, horizon sim.Time) uint64 {
	b.Helper()
	sh := sim.NewShardedEngine(e.fab.NumToRs, workers, netsim.ShardLookahead(e.fab), sim.QueueWheel)
	qs := transport.QueueSpec(transport.DCTCP)
	net := netsim.NewSharded(sh, e.fab, e.router, qs, qs, netsim.DefaultRotor())
	net.Stamper = e.router.StampBucket
	net.Start()
	stack := transport.NewStack(net, transport.DCTCP)
	for _, f := range flows {
		stack.Launch(f)
	}
	sh.Run(horizon)
	net.FinalizeSharded()
	for _, f := range flows {
		if !f.Finished {
			b.Fatalf("flow %d unfinished: %d/%d bytes delivered (drops=%d)",
				f.ID, f.BytesDelivered, f.Size, net.Counters.DroppedPackets)
		}
	}
	return sh.Processed()
}

// BenchmarkSaturation64Sharded runs the same scenario on the
// conservative-PDES engine with 4 workers. On a multi-core machine this is
// the headline speedup exhibit; under GOMAXPROCS=1 it measures the
// sharding overhead instead (barriers + mailbox merges with no parallelism
// to pay for them).
func BenchmarkSaturation64Sharded(b *testing.B) {
	cfg, mkFlows, horizon := saturation64()
	env := newBenchEnv(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		events += env.runSharded64(b, 4, mkFlows(), horizon)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkShardScaling is the multicore scaling record behind
// results/BENCH_pr6.json: the 64-ToR permutation at worker counts 1..16
// plus the serial engine as the 1x reference. Run it with all cores
// (`make bench-scaling`); the committed per-count events/s numbers are what
// the ISSUE-6 acceptance bar (sharded >= 2.5x serial at 8 shards on
// GOMAXPROCS >= 8) is checked against in CI.
func BenchmarkShardScaling(b *testing.B) {
	cfg, mkFlows, horizon := saturation64()
	env := newBenchEnv(cfg)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		var events uint64
		for i := 0; i < b.N; i++ {
			events += env.runBenchFlows(b, mkFlows(), horizon)
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	})
	for _, workers := range []int{1, 2, 4, 8, 16} {
		workers := workers
		b.Run(fmt.Sprintf("shards=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				events += env.runSharded64(b, workers, mkFlows(), horizon)
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// congestion64 is the congestion-aware ladder scenario: the 64-ToR ring
// permutation with an incast overlaid onto rack 0 (the second host of racks
// 1..16 each push 256 KB to host 0), so calendar queues build and the
// board-backed steering engages at a low threshold.
func congestion64() (topo.Config, func() []*netsim.Flow, sim.Time) {
	cfg, mkRing, _ := saturation64()
	flows := func() []*netsim.Flow {
		fl := mkRing()
		for t := 1; t <= 16; t++ {
			src := t*cfg.HostsPerToR + 1
			fl = append(fl, netsim.NewFlow(int64(1000+t), src, 0, 256<<10, 0))
		}
		return fl
	}
	return cfg, flows, 80 * sim.Millisecond
}

// runCongestion64 executes one congestion64 iteration — board enabled,
// UCMP steering on at threshold 2 — on the serial engine (workers == 0) or
// the sharded engine, and fails the benchmark if the steering never
// engaged (an idle congestion path would make the ladder meaningless).
func (e *benchEnv) runCongestion64(b *testing.B, workers int, flows []*netsim.Flow, horizon sim.Time) uint64 {
	b.Helper()
	qs := transport.QueueSpec(transport.DCTCP)
	var eng *sim.Engine
	var sh *sim.ShardedEngine
	var net *netsim.Network
	if workers == 0 {
		eng = sim.NewEngine()
		net = netsim.New(eng, e.fab, e.router, qs, qs, netsim.DefaultRotor())
	} else {
		sh = sim.NewShardedEngine(e.fab.NumToRs, workers, netsim.ShardLookahead(e.fab), sim.QueueWheel)
		net = netsim.NewSharded(sh, e.fab, e.router, qs, qs, netsim.DefaultRotor())
	}
	net.EnableCongestionBoard()
	e.router.Backlog = net.CongestionBacklog
	e.router.CongestionThreshold = 2
	defer func() { e.router.Backlog = nil; e.router.CongestionThreshold = 0 }()
	net.Stamper = e.router.StampBucket
	net.Start()
	stack := transport.NewStack(net, transport.DCTCP)
	for _, f := range flows {
		stack.Launch(f)
	}
	var events uint64
	if workers == 0 {
		eng.Run(horizon)
		events = eng.Processed()
	} else {
		sh.Run(horizon)
		net.FinalizeSharded()
		events = sh.Processed()
	}
	for _, f := range flows {
		if !f.Finished {
			b.Fatalf("flow %d unfinished: %d/%d bytes delivered (drops=%d)",
				f.ID, f.BytesDelivered, f.Size, net.Counters.DroppedPackets)
		}
	}
	if net.Counters.CongestionSteered == 0 {
		b.Fatal("congestion steering never engaged")
	}
	return events
}

// BenchmarkCongestionSharded is the congestion-aware multicore ladder: the
// congestion64 scenario on the serial engine and at 1/2/4/8/16 workers.
// Like BenchmarkShardScaling it wants all cores (the committed >1x-at-4+-
// workers numbers come from the CI bench job); under GOMAXPROCS=1 the
// sharded rungs record overhead, not speedup. The serial rung doubles as
// the engaged-steering hot-path exhibit for the regression gate.
func BenchmarkCongestionSharded(b *testing.B) {
	cfg, mkFlows, horizon := congestion64()
	env := newBenchEnv(cfg)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		var events uint64
		for i := 0; i < b.N; i++ {
			events += env.runCongestion64(b, 0, mkFlows(), horizon)
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	})
	for _, workers := range []int{1, 2, 4, 8, 16} {
		workers := workers
		b.Run(fmt.Sprintf("shards=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				events += env.runCongestion64(b, workers, mkFlows(), horizon)
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkSaturationFailover is the fault-path exhibit: the saturation
// scenario with an active failure schedule — two uplink cables blink off and
// back mid-transfer — so every route plan pays the epoch lookup and some
// packets take the full park-expire-replan recovery path. The companion
// no-timeline benchmarks above are the zero-cost gate (Faults == nil must
// stay within 10% of the PR-4 record); this one prices fault handling when
// it is actually on.
func BenchmarkSaturationFailover(b *testing.B) {
	env := newBenchEnv(topo.Scaled())
	sched := failure.NewTimeline().
		LinkDown(50*sim.Microsecond, 0, 0).
		LinkDown(50*sim.Microsecond, 1, 1).
		LinkUp(400*sim.Microsecond, 0, 0).
		LinkUp(400*sim.Microsecond, 1, 1).
		Compile(env.fab)
	env.router.Health = sched
	defer func() { env.router.Health = nil }()
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		qs := transport.QueueSpec(transport.DCTCP)
		net := netsim.New(eng, env.fab, env.router, qs, qs, netsim.DefaultRotor())
		net.Stamper = env.router.StampBucket
		net.Faults = sched
		net.Start()
		stack := transport.NewStack(net, transport.DCTCP)
		flows := []*netsim.Flow{netsim.NewFlow(1, 0, 3, 2<<20, 0)}
		for _, f := range flows {
			stack.Launch(f)
		}
		eng.Run(200 * sim.Millisecond)
		for _, f := range flows {
			if !f.Finished {
				b.Fatalf("flow %d unfinished: %d/%d bytes delivered (drops=%d)",
					f.ID, f.BytesDelivered, f.Size, net.Counters.DroppedPackets)
			}
		}
		events += eng.Processed()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkIncast8ToR is the full-fabric stress: an 8-ToR fabric where
// every host outside rack 0 sends 128 KB to host 0 concurrently.
func BenchmarkIncast8ToR(b *testing.B) {
	cfg := topo.Scaled()
	cfg.NumToRs = 8
	env := newBenchEnv(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		var flows []*netsim.Flow
		for h := cfg.HostsPerToR; h < cfg.NumHosts(); h++ {
			flows = append(flows, netsim.NewFlow(int64(h), h, 0, 128<<10, 0))
		}
		events += env.runBenchFlows(b, flows, 400*sim.Millisecond)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}
