package netsim

import (
	"ucmp/internal/sim"
)

// byteMeter tracks cumulative bytes sent with sampling support.
type byteMeter struct {
	total int64
	last  int64
}

func (m *byteMeter) add(n int64) { m.total += n }
func (m *byteMeter) take() int64 {
	d := m.total - m.last
	m.last = m.total
	return d
}

// downPort is a ToR egress port toward one host: a plain queue and a link.
type downPort struct {
	net       *Network
	host      int // global host id
	queue     Queue
	busyUntil sim.Time
	meter     byteMeter
}

func (d *downPort) enqueue(p *Packet) {
	if !d.queue.Enqueue(p) {
		d.net.Counters.DroppedPackets++
		return
	}
	d.pump()
}

func (d *downPort) pump() {
	now := d.net.Eng.Now()
	if now < d.busyUntil {
		return
	}
	p := d.queue.Dequeue()
	if p == nil {
		return
	}
	ser := d.net.serdelay(p.WireLen)
	d.busyUntil = now + ser
	d.meter.add(int64(p.WireLen))
	d.net.Counters.TorToHostBytes += int64(p.WireLen)
	host := d.net.Hosts[d.host]
	d.net.Eng.At(now+ser+d.net.F.HostPropDelay, func() { host.receive(p) })
	d.net.Eng.At(d.busyUntil, d.pump)
}

func (d *downPort) takeBytes() int64 { return d.meter.take() }

// hostPort is the host NIC toward its ToR. Transports self-limit, so the
// NIC is unbounded, but it fair-queues per flow (round-robin over active
// flows, control traffic first) so a bulk sender on the host cannot
// head-of-line-block a latency-sensitive flow sharing the NIC.
type hostPort struct {
	net       *Network
	tor       int
	busyUntil sim.Time
	meter     byteMeter

	high    fifo
	perFlow map[int64]*fifo
	ring    []int64 // active flow ids, round-robin
	rr      int
}

func (h *hostPort) enqueue(p *Packet) {
	if p.IsControl() {
		h.high.push(p)
		h.pump()
		return
	}
	if h.perFlow == nil {
		h.perFlow = make(map[int64]*fifo)
	}
	id := int64(-1)
	if p.Flow != nil {
		id = p.Flow.ID
	}
	q, ok := h.perFlow[id]
	if !ok {
		q = &fifo{}
		h.perFlow[id] = q
	}
	if q.len() == 0 {
		h.ring = append(h.ring, id)
	}
	q.push(p)
	h.pump()
}

// next pops the next packet under fair queueing.
func (h *hostPort) next() *Packet {
	if p := h.high.pop(); p != nil {
		return p
	}
	for len(h.ring) > 0 {
		if h.rr >= len(h.ring) {
			h.rr = 0
		}
		id := h.ring[h.rr]
		q := h.perFlow[id]
		p := q.pop()
		if p == nil {
			// Empty slot: retire from the ring.
			h.ring = append(h.ring[:h.rr], h.ring[h.rr+1:]...)
			continue
		}
		if q.len() == 0 {
			h.ring = append(h.ring[:h.rr], h.ring[h.rr+1:]...)
		} else {
			h.rr++
		}
		return p
	}
	return nil
}

func (h *hostPort) pump() {
	now := h.net.Eng.Now()
	if now < h.busyUntil {
		return
	}
	p := h.next()
	if p == nil {
		return
	}
	ser := h.net.serdelay(p.WireLen)
	h.busyUntil = now + ser
	h.meter.add(int64(p.WireLen))
	h.net.Counters.HostToTorBytes += int64(p.WireLen)
	tor := h.net.ToRs[h.tor]
	h.net.Eng.At(now+ser+h.net.F.HostPropDelay, func() { tor.receiveFromHost(p) })
	h.net.Eng.At(h.busyUntil, h.pump)
}

func (h *hostPort) takeBytes() int64 { return h.meter.take() }

// uplinkPort is a circuit-facing ToR egress port (§6.2): one calendar queue
// per cyclic time slice, unpaused only while its slice's circuit is up. The
// port also drains the ToR's RotorLB VOQs opportunistically when the
// calendar queue for the active slice is empty.
type uplinkPort struct {
	net *Network
	tor *ToR
	sw  int // circuit switch index == uplink index

	cal       []*Queue // one per cyclic slice
	busyUntil sim.Time
	meter     byteMeter
}

func newUplinkPort(n *Network, tor *ToR, sw int) *uplinkPort {
	u := &uplinkPort{net: n, tor: tor, sw: sw}
	u.cal = make([]*Queue, n.F.Sched.S)
	for i := range u.cal {
		q := &Queue{
			MaxDataPackets: n.UpQueue.MaxDataPackets,
			ECNThreshold:   n.UpQueue.ECNThreshold,
			Trim:           n.UpQueue.Trim,
		}
		u.cal[i] = q
	}
	return u
}

// circuitOpen returns the first instant within the absolute slice at which
// this port's circuit carries traffic (reconfiguration delay applied).
func (u *uplinkPort) circuitOpen(abs int64) sim.Time {
	start := u.net.F.SliceStart(abs)
	if u.net.F.Sched.ReconfiguresAt(u.net.F.CyclicSlice(abs), u.sw) {
		start += u.net.F.ReconfDelay
	}
	return start
}

// pump transmits at most one packet and re-arms itself. It is idempotent:
// extra scheduled pumps are harmless.
func (u *uplinkPort) pump() {
	now := u.net.Eng.Now()
	if now < u.busyUntil {
		return
	}
	if u.net.LinkDown != nil && u.net.LinkDown(u.tor.id, u.sw) {
		return
	}
	abs := u.net.F.AbsSlice(now)
	c := u.net.F.CyclicSlice(abs)
	if open := u.circuitOpen(abs); now < open {
		u.net.Eng.At(open, u.pump)
		return
	}
	peer := u.net.F.Sched.PeerOf(c, u.tor.id, u.sw)
	end := u.net.F.SliceEnd(abs)

	// Scheduled (calendar) traffic first, then RotorLB traffic.
	q := u.cal[c]
	p := q.Peek()
	if p != nil {
		if now+u.net.serdelayUp(p.WireLen) > end {
			return // cannot finish before the slice ends; expires at boundary
		}
		q.Dequeue()
		p.RouteIdx++
		p.Rerouted = 0 // the per-ToR recirculation budget resets on departure
	} else if u.tor.rotor != nil {
		p = u.tor.rotor.selectPacket(peer, func(wireLen int) bool {
			return now+u.net.serdelayUp(wireLen) <= end
		})
		if p == nil && u.tor.rotor.backlogFor(peer) {
			// Blocked on final-hop backpressure: retry within the slice.
			retry := now + u.net.serdelayUp(u.net.F.MTU)
			if retry < end {
				u.net.Eng.At(retry, u.pump)
			}
			return
		}
	}
	if p == nil {
		return
	}
	ser := u.net.serdelayUp(p.WireLen)
	u.busyUntil = now + ser
	u.meter.add(int64(p.WireLen))
	u.net.Counters.TorToTorBytes += int64(p.WireLen)
	dst := u.net.ToRs[peer]
	u.net.Eng.At(now+ser+u.net.F.PropDelay, func() { dst.receiveFromPeer(p) })
	u.net.Eng.At(u.busyUntil, u.pump)
}

// queuedBytes reports the data bytes parked across all calendar queues.
func (u *uplinkPort) queuedBytes() int64 {
	var b int64
	for _, q := range u.cal {
		b += q.DataBytes()
	}
	return b
}

func (u *uplinkPort) takeBytes() int64 { return u.meter.take() }
