package netsim

import (
	"ucmp/internal/checkpoint"
	"ucmp/internal/sim"
)

// byteMeter tracks cumulative bytes sent with sampling support.
type byteMeter struct {
	total int64
	last  int64
}

func (m *byteMeter) add(n int64) { m.total += n }
func (m *byteMeter) take() int64 {
	d := m.total - m.last
	m.last = m.total
	return d
}

// downPort is a ToR egress port toward one host: a plain queue and a link.
// A downlink never leaves its ToR's domain (the host is in it), so the pump
// schedules on the domain engine directly.
//
// Rotor-class data additionally has an unbounded staging fifo in front of
// the queue: RotorLB is lossless by construction (no retransmission), so
// arrivals above the shallow admission threshold park in the stage and are
// admitted as the queue drains. Keeping the bounded queue shallow for rotor
// bulk preserves the paper's §9 point — rotor traffic must not
// head-of-line-block latency-sensitive source-routed traffic on a shared
// downlink — while moving the room check from the sender (a cross-ToR read
// the sharded lookahead contract cannot cover) to the receiver.
type downPort struct {
	net       *Network
	dom       *domain
	host      int // global host id
	queue     Queue
	stage     fifo // staged rotor-class data awaiting queue admission
	room      int  // admission threshold; 0 disables staging
	busyUntil sim.Time
	meter     byteMeter

	// pumpFn is pump bound once, so re-arming the port schedules without
	// allocating a method-value closure per packet.
	pumpFn func()
}

func (d *downPort) enqueue(p *Packet) {
	if d.room > 0 && p.Type == Data && p.Flow != nil && p.Flow.RotorClass {
		// FIFO within the rotor class: once anything is staged, everything
		// stages behind it.
		if d.stage.len() > 0 || d.queue.DataLen() >= d.room {
			d.stage.push(p)
			d.pump()
			return
		}
	}
	if !d.queue.Enqueue(p) {
		d.dom.dropPacket(p)
		return
	}
	d.pump()
}

func (d *downPort) pump() {
	now := d.dom.eng.Now()
	if now < d.busyUntil {
		return
	}
	for d.stage.len() > 0 && d.queue.DataLen() < d.room {
		d.queue.Enqueue(d.stage.pop())
	}
	p := d.queue.Dequeue()
	if p == nil {
		return
	}
	ser := d.net.serdelay(p.WireLen)
	d.busyUntil = now + ser
	d.meter.add(int64(p.WireLen))
	d.dom.ctr.TorToHostBytes += int64(p.WireLen)
	host := d.net.Hosts[d.host]
	d.dom.eng.At1Tag(now+ser+d.net.F.HostPropDelay,
		sim.EventTag{Kind: checkpoint.KindDeliverHost, A: int32(d.host)}, host.recvFn, p)
	d.dom.eng.AtTag(d.busyUntil,
		sim.EventTag{Kind: checkpoint.KindPumpDown, A: int32(d.host)}, d.pumpFn)
}

func (d *downPort) takeBytes() int64 { return d.meter.take() }

// anonQueue is the ring id of the host NIC queue for packets of
// unregistered (or nil) flows.
const anonQueue = -1

// hostPort is the host NIC toward its ToR. Transports self-limit, so the
// NIC is unbounded, but it fair-queues per flow (round-robin over active
// flows, control traffic first) so a bulk sender on the host cannot
// head-of-line-block a latency-sensitive flow sharing the NIC. Per-flow
// queues are indexed by the dense flow id assigned at registration — a
// slice lookup, not a map probe, on every data packet.
type hostPort struct {
	net       *Network
	dom       *domain
	host      int // global host id (checkpoint identity of the pump event)
	tor       int
	busyUntil sim.Time
	meter     byteMeter

	high    fifo
	perFlow []fifo // dense flow id -> queue
	anon    fifo   // data packets of unregistered flows
	ring    []int  // active queue ids (dense or anonQueue), round-robin
	rr      int

	pumpFn func()
}

// queueFor resolves a ring id to its fifo.
func (h *hostPort) queueFor(id int) *fifo {
	if id == anonQueue {
		return &h.anon
	}
	return &h.perFlow[id]
}

func (h *hostPort) enqueue(p *Packet) {
	if p.IsControl() {
		h.high.push(p)
		h.pump()
		return
	}
	id := anonQueue
	if p.Flow != nil && p.Flow.dense >= 0 {
		id = p.Flow.dense
		if id >= len(h.perFlow) {
			// Size to the network's registered-flow count so one growth
			// covers every flow the workload has launched so far.
			size := h.net.NumFlows()
			if size <= id {
				size = id + 1
			}
			grown := make([]fifo, size)
			copy(grown, h.perFlow)
			h.perFlow = grown
		}
	}
	q := h.queueFor(id)
	if q.len() == 0 {
		h.ring = append(h.ring, id)
	}
	q.push(p)
	h.pump()
}

// next pops the next packet under fair queueing.
func (h *hostPort) next() *Packet {
	if p := h.high.pop(); p != nil {
		return p
	}
	for len(h.ring) > 0 {
		if h.rr >= len(h.ring) {
			h.rr = 0
		}
		q := h.queueFor(h.ring[h.rr])
		p := q.pop()
		if p == nil {
			// Empty slot: retire from the ring.
			h.ring = append(h.ring[:h.rr], h.ring[h.rr+1:]...)
			continue
		}
		if q.len() == 0 {
			h.ring = append(h.ring[:h.rr], h.ring[h.rr+1:]...)
		} else {
			h.rr++
		}
		return p
	}
	return nil
}

func (h *hostPort) pump() {
	now := h.dom.eng.Now()
	if now < h.busyUntil {
		return
	}
	p := h.next()
	if p == nil {
		return
	}
	ser := h.net.serdelay(p.WireLen)
	h.busyUntil = now + ser
	h.meter.add(int64(p.WireLen))
	h.dom.ctr.HostToTorBytes += int64(p.WireLen)
	tor := h.net.ToRs[h.tor]
	h.dom.eng.At1Tag(now+ser+h.net.F.HostPropDelay,
		sim.EventTag{Kind: checkpoint.KindRecvHost, A: int32(h.tor)}, tor.recvHostFn, p)
	h.dom.eng.AtTag(h.busyUntil,
		sim.EventTag{Kind: checkpoint.KindPumpHost, A: int32(h.host)}, h.pumpFn)
}

func (h *hostPort) takeBytes() int64 { return h.meter.take() }

// uplinkPort is a circuit-facing ToR egress port (§6.2): one calendar queue
// per cyclic time slice, unpaused only while its slice's circuit is up. The
// port also drains the ToR's RotorLB VOQs opportunistically when the
// calendar queue for the active slice is empty.
type uplinkPort struct {
	net *Network
	tor *ToR
	sw  int // circuit switch index == uplink index

	// cal is one calendar queue per cyclic slice, stored by value: a
	// single allocation per port, and slot state (fifo capacity) is
	// recycled across the cycle instead of reallocated.
	cal       []Queue
	busyUntil sim.Time
	meter     byteMeter

	// wake coalesces the port's self-wakeups (circuit-open waits and
	// post-send re-arms) into one cancelable timer, where the heap engine
	// used to accumulate a duplicate pump event per call while a circuit
	// was closed.
	wake *sim.Timer

	// Cached per-slice state, valid while now < sliceEnd. Keyed on the
	// time window — not on the slice-boundary callback, which can run
	// after same-instant smaller-seq events — so every pump sees exactly
	// what recomputing from `now` would yield, at the cost of one compare.
	sliceEnd  sim.Time // exclusive; zero forces a refresh on first pump
	sliceOpen sim.Time
	sliceAbs  int64
	sliceC    int
	slicePeer int
}

func newUplinkPort(n *Network, tor *ToR, sw int) *uplinkPort {
	u := &uplinkPort{net: n, tor: tor, sw: sw}
	u.wake = tor.dom.eng.NewTimerTag(
		sim.EventTag{Kind: checkpoint.KindWakeUplink, A: int32(tor.id), B: int32(sw)}, u.pump)
	u.cal = make([]Queue, n.F.Sched.S)
	for i := range u.cal {
		u.cal[i].MaxDataPackets = n.UpQueue.MaxDataPackets
		u.cal[i].ECNThreshold = n.UpQueue.ECNThreshold
		u.cal[i].Trim = n.UpQueue.Trim
	}
	return u
}

// refreshSlice recomputes the cached slice state for the slice containing
// now, including the circuit-open instant (slice start, pushed back by the
// reconfiguration delay when this switch reconfigures into the slice).
// Ports are pumped at every slice boundary, so the refresh almost always
// advances by exactly one slice and the divisions in AbsSlice/CyclicSlice
// reduce to an increment; the cold path covers the first pump and jumps
// across multiple slices.
func (u *uplinkPort) refreshSlice(now sim.Time) {
	f := u.net.F
	var start sim.Time
	if u.sliceEnd != 0 && now < u.sliceEnd+f.SliceDuration {
		u.sliceAbs++
		start = u.sliceEnd
		if u.sliceC++; u.sliceC == f.Sched.S {
			u.sliceC = 0
		}
	} else {
		u.sliceAbs = f.AbsSlice(now)
		start = f.SliceStart(u.sliceAbs)
		u.sliceC = f.CyclicSlice(u.sliceAbs)
	}
	u.sliceEnd = start + f.SliceDuration
	u.sliceOpen = start
	if f.Sched.ReconfiguresAt(u.sliceC, u.sw) {
		u.sliceOpen += f.ReconfDelay
	}
	u.slicePeer = f.Sched.PeerOf(u.sliceC, u.tor.id, u.sw)
}

// wakeAt arms the port's wake timer at t unless an earlier wakeup is
// already pending. Every pump path that still has work re-declares its
// wakeup, so earliest-wins coalescing never loses one.
func (u *uplinkPort) wakeAt(t sim.Time) {
	if !u.wake.Armed() || u.wake.When() > t {
		u.wake.Reset(t)
	}
}

// pump transmits at most one packet and re-arms itself. It is idempotent:
// extra pump calls are harmless.
func (u *uplinkPort) pump() {
	now := u.tor.dom.eng.Now()
	if now < u.busyUntil {
		// An early wakeup (e.g. a rotor retry) landed mid-serialization:
		// re-arm for when the port frees up.
		u.wakeAt(u.busyUntil)
		return
	}
	if fs := u.net.Faults; fs != nil && (!fs.TorOK(now, u.tor.id) || !fs.LinkOK(now, u.tor.id, u.sw)) {
		// Dead link (or dead ToR): the port transmits nothing. No wakeup is
		// armed — after a repair the next slice boundary pumps every port, so
		// service resumes there, identically in serial and sharded runs.
		// Parked packets meanwhile expire at the boundary and recirculate.
		return
	}
	if now >= u.sliceEnd {
		u.refreshSlice(now)
	}
	c := u.sliceC
	if now < u.sliceOpen {
		u.wakeAt(u.sliceOpen)
		return
	}
	peer := u.slicePeer
	end := u.sliceEnd

	// Scheduled (calendar) traffic first, then RotorLB traffic.
	q := &u.cal[c]
	p := q.Peek()
	if p != nil {
		if now+u.net.serdelayUp(p.WireLen) > end {
			return // cannot finish before the slice ends; expires at boundary
		}
		q.Dequeue()
		p.RouteIdx++
		p.Rerouted = 0 // the per-ToR recirculation budget resets on departure
	} else if u.tor.rotor != nil {
		p = u.tor.rotor.selectPacket(peer, end-now, u.sliceAbs)
	}
	if p == nil {
		return
	}
	ser := u.net.serdelayUp(p.WireLen)
	u.busyUntil = now + ser
	u.meter.add(int64(p.WireLen))
	u.tor.dom.ctr.TorToTorBytes += int64(p.WireLen)
	dst := u.net.ToRs[peer]
	at := now + ser + u.net.F.PropDelay
	u.tor.linkSeq++
	p.linkSrc, p.linkSeq = int32(u.tor.id), u.tor.linkSeq
	tag := sim.EventTag{Kind: checkpoint.KindIngress, A: int32(peer)}
	if sh := u.net.sharded; sh != nil && dst.dom != u.tor.dom {
		// Cross-domain arrival: route through the sharded engine's mailbox.
		// ser ≥ uplink header serialization, so at ≥ now + ShardLookahead and
		// the lookahead assertion in Send holds for every packet size.
		sh.SendTag(u.tor.dom.id, dst.dom.id, at, tag, dst.ingressFn, p)
	} else {
		u.tor.dom.eng.At1Tag(at, tag, dst.ingressFn, p)
	}
	u.wakeAt(u.busyUntil)
}

// queuedBytes reports the data bytes parked across all calendar queues.
func (u *uplinkPort) queuedBytes() int64 {
	var b int64
	for i := range u.cal {
		b += u.cal[i].DataBytes()
	}
	return b
}

func (u *uplinkPort) takeBytes() int64 { return u.meter.take() }
