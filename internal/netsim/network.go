package netsim

import (
	"fmt"
	"sort"

	"ucmp/internal/checkpoint"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
)

// QueueSpec configures the queues instantiated at ToR ports.
type QueueSpec struct {
	MaxDataPackets int
	ECNThreshold   int
	Trim           bool
}

// DCTCPQueues is the paper's DCTCP switch configuration (§7.1): 300
// MTU-sized packets, ECN threshold 65.
func DCTCPQueues() QueueSpec { return QueueSpec{MaxDataPackets: 300, ECNThreshold: 65} }

// NDPQueues is the paper's NDP switch configuration (§7.1): 80 MTU-sized
// packets with trimming.
func NDPQueues() QueueSpec { return QueueSpec{MaxDataPackets: 80, Trim: true} }

// RotorConfig tunes the RotorLB hop-by-hop machinery.
type RotorConfig struct {
	Enabled bool
	// LocalCapBytes backpressures hosts: a host may push into its ToR's
	// local VOQ for a destination only below this bound.
	LocalCapBytes int64
	// NonlocalCapBytes bounds indirect traffic parked at an intermediate
	// ToR; senders stop indirecting toward a ToR above it (standing in for
	// RotorLB's offer/accept exchange).
	NonlocalCapBytes int64
}

// DefaultRotor returns a workable RotorLB configuration.
func DefaultRotor() RotorConfig {
	return RotorConfig{Enabled: true, LocalCapBytes: 256 * 1500, NonlocalCapBytes: 1024 * 1500}
}

// Counters aggregates fabric-wide statistics.
type Counters struct {
	DataBytesSent      int64 // payload bytes leaving hosts (incl. rtx)
	DataBytesDelivered int64 // distinct payload bytes reaching receivers
	TorToTorBytes      int64 // wire bytes summed over every ToR-ToR hop
	HostToTorBytes     int64
	TorToHostBytes     int64
	DataPackets        int64
	ReroutedPackets    int64 // packets recirculated at least once (§6.3)
	DroppedPackets     int64
	RotorDrops         int64

	// Packet-conservation ledger (data packets only, counted per
	// transmission): everything injected at a host NIC must end exactly
	// once as delivered in full, delivered as a trimmed header (which the
	// transport retransmits), or dropped; anything else is still parked in
	// a queue. The invariant test in conservation_test.go checks
	//   DataInjected == DataDelivered + TrimmedDelivered + DataDropped
	//                   + InFlightData()
	// at quiescence, which would catch packets leaked (or duplicated) by
	// the pool.
	DataInjected     int64
	DataDelivered    int64
	TrimmedDelivered int64
	DataDropped      int64

	// Recirculation cause breakdown (§6.3 diagnostics).
	ExpiredInCalendar int64 // parked past the slice boundary
	LateArrivals      int64 // reached a ToR after the planned slice
	CalendarFull      int64 // target priority queue rejected the packet

	// Online §5.3 recovery breakdown (data packets only, counted per route
	// plan while a fault view is installed): plans that left the wanted
	// path for a healthy alternative, by the class of the path taken.
	// RecoveryFailed counts plans with no healthy alternative at all (the
	// packet is dropped); FaultDrops counts packets of any type dropped
	// because they arrived at — or were parked in — a dead ToR.
	RecoveredSameLength int64
	RecoveredShorter    int64
	RecoveredLonger     int64
	RecoveredBackup     int64
	RecoveryFailed      int64
	FaultDrops          int64

	// CongestionSteered counts data-packet route plans the §10
	// congestion-aware extension steered off the primary path (the
	// board-read backlog crossed the threshold and a less-congested
	// candidate within one bucket of slack won). It is the engagement
	// signal the congestion differential asserts on: a run where it stays
	// zero never exercised the steering logic.
	CongestionSteered int64

	// RerouteWait is the time-to-reroute histogram: the delay between a
	// data packet hitting a dead element (calendar expiry on a failed link
	// or ToR) and its replacement circuit opening. Bucket 0 counts
	// sub-microsecond waits, bucket i waits in [2^(i-1), 2^i) µs, and the
	// last bucket is open-ended (≥ ~16 ms).
	RerouteWait [RerouteWaitBuckets]int64
}

// RerouteWaitBuckets is the bucket count of Counters.RerouteWait.
const RerouteWaitBuckets = 15

// FaultState is the time-indexed health view the fabric consults when
// installed on Network.Faults. Implementations must be pure functions of
// their arguments (no mutable state): lookahead domains query them
// concurrently, and determinism requires identical answers at identical
// local times in serial and sharded runs. failure.Schedule (a compiled
// failure.Timeline) is the canonical implementation.
type FaultState interface {
	// TorOK reports whether a ToR is up at `now`. Packets arriving at — or
	// parked in — a down ToR are dropped and counted in FaultDrops.
	TorOK(now sim.Time, tor int) bool
	// LinkOK reports whether the (tor, switch) cable and the switch itself
	// are up at `now`. A down link never transmits: packets planned over
	// it expire at the slice boundary and recirculate (§6.3), which is
	// where online recovery replans them.
	LinkOK(now sim.Time, tor, sw int) bool
}

// Network is a simulated RDCN instance: hosts, ToRs, the circuit schedule
// gating the uplinks, a Router, and transport endpoints hanging off flows.
//
// A network runs in one of two modes. Serial (New): one engine, one
// domain, the classic single-threaded event loop. Sharded (NewSharded):
// one lookahead domain per ToR on a sim.ShardedEngine; Eng is nil, and
// cross-ToR packet arrivals route through the engine's mailboxes. Rotor-
// class flows (VLB/RotorLB) exchange backlog state only at slice
// boundaries (the rotorSnap board below) and shard when slices are at
// least one lookahead long; the congestion-aware extension rides the same
// pattern via the calendar-backlog board (congboard.go) and shards under
// the same slice-vs-lookahead condition.
type Network struct {
	Eng    *sim.Engine // serial engine; nil when sharded
	F      *topo.Fabric
	Router Router

	UpQueue   QueueSpec
	DownQueue QueueSpec
	Rotor     RotorConfig

	Hosts []*Host
	ToRs  []*ToR

	Counters Counters

	// OnFlowDone, if set, fires when a flow completes.
	OnFlowDone func(f *Flow)

	// Stamper, if set, tags packets as they leave a host (UCMP's host-side
	// DSCP bucket stamping, §6.1).
	Stamper func(p *Packet)

	// Faults, if set, injects runtime failures (Fig 12): down links never
	// transmit, down ToRs drop traffic, and repairs take effect at the
	// next slice boundary. Must be set before Start and never mutated
	// afterwards; nil costs one predictable branch per health check.
	Faults FaultState

	// flows maps the sparse flow ID to the flow (duplicate detection and
	// ID-based lookup); flowList holds the same flows in registration
	// order, with each flow's dense index being its position here.
	flows    map[int64]*Flow
	flowList []*Flow

	pool packetPool

	// sharded is set by NewSharded; doms holds the execution domains (a
	// single shared one in serial mode).
	sharded *sim.ShardedEngine
	doms    []*domain

	// rotorSnap is the slice-boundary backlog board: slot (abs&3)*N + tor
	// holds ToR tor's nonlocal VOQ bytes as published at the boundary of
	// absolute slice abs. Writers touch only their own ToR's slot, at their
	// own boundary event; readers during slice s read the slice s-1 slot,
	// written one full slice (>= one lookahead window, enforced by
	// NewSharded and the harness gate) earlier — so no write ever shares an
	// engine window with a read of its slot, and the value read is the same
	// in serial and sharded runs. Four slots so the ring index is a mask;
	// three would suffice for the race argument.
	rotorSnap []int64

	// congSnap is the slice-boundary calendar-backlog board for the §10
	// congestion-aware extension, with the same write/read discipline as
	// rotorSnap but one int32 per (tor, uplink, cyclic slice) instead of
	// one int64 per ToR. Nil unless EnableCongestionBoard was called (see
	// congboard.go).
	congSnap []int32

	// Memoized serialization delays for the two wire lengths that cover
	// nearly all traffic (full MTU frames and bare control headers), so the
	// per-packet hot path skips the 64-bit division in SerializationDelay.
	serMTU, serHdr     sim.Time
	serUpMTU, serUpHdr sim.Time

	// restoredWaiters buffers the RotorLB credit callbacks decoded from a
	// checkpoint until the transport re-parks them (checkpoint.go).
	restoredWaiters []RestoredRotorWaiter
}

// New wires up a serial network. Call Start before Run to arm the slice
// clock.
func New(eng *sim.Engine, f *topo.Fabric, router Router, up, down QueueSpec, rotor RotorConfig) *Network {
	n := newNetworkShell(f, router, up, down, rotor)
	n.Eng = eng
	// One domain shared by every component, aliasing the network-level
	// engine, counters, and pool: serial behavior is byte-identical to the
	// pre-domain code, including the single slice-boundary event iterating
	// all ToRs.
	d := &domain{net: n, eng: eng, id: 0, ctr: &n.Counters, pool: &n.pool}
	d.boundaryFn = func() { n.sliceBoundaryFor(d) }
	n.doms = []*domain{d}
	n.buildTopology(func(int) *domain { return d })
	d.tors = n.ToRs
	return n
}

// NewSharded wires up a network over a sharded engine: one domain per ToR,
// owning the ToR, its hosts, their NICs, and its uplink ports. The engine
// must have exactly NumToRs domains and a window no larger than
// ShardLookahead(f). Cross-ToR packet arrivals are routed through the
// engine's mailboxes; everything else stays domain-local. Run the engine,
// then call FinalizeSharded before reading Counters or flow completions.
func NewSharded(sh *sim.ShardedEngine, f *topo.Fabric, router Router, up, down QueueSpec, rotor RotorConfig) *Network {
	if sh.Domains() != f.NumToRs {
		panic(fmt.Sprintf("netsim: sharded engine has %d domains, fabric has %d ToRs", sh.Domains(), f.NumToRs))
	}
	if la := ShardLookahead(f); sh.Window() > la {
		panic(fmt.Sprintf("netsim: engine window %v exceeds fabric lookahead %v", sh.Window(), la))
	}
	if rotor.Enabled && f.SliceDuration < sh.Window() {
		// The rotor backlog board is race-free only when a published
		// snapshot cannot share an engine window with its readers, which
		// needs slices at least one window long. The harness gate rejects
		// such configs; this is the backstop.
		panic(fmt.Sprintf("netsim: slice duration %v below engine window %v; rotor backlog exchange cannot shard",
			f.SliceDuration, sh.Window()))
	}
	n := newNetworkShell(f, router, up, down, rotor)
	n.sharded = sh
	n.doms = make([]*domain, f.NumToRs)
	for i := range n.doms {
		d := &domain{net: n, eng: sh.Domain(i), id: i, ctr: &Counters{}, pool: &packetPool{}}
		d.boundaryFn = func() { n.sliceBoundaryFor(d) }
		n.doms[i] = d
	}
	n.buildTopology(func(tor int) *domain { return n.doms[tor] })
	for i, d := range n.doms {
		d.tors = n.ToRs[i : i+1]
	}
	return n
}

// newNetworkShell builds the mode-independent part of a Network.
func newNetworkShell(f *topo.Fabric, router Router, up, down QueueSpec, rotor RotorConfig) *Network {
	n := &Network{
		F: f, Router: router,
		UpQueue: up, DownQueue: down, Rotor: rotor,
		flows: make(map[int64]*Flow),
	}
	n.serMTU = f.SerializationDelay(f.MTU)
	n.serHdr = f.SerializationDelay(HeaderBytes)
	n.serUpMTU = f.UplinkSerialization(f.MTU)
	n.serUpHdr = f.UplinkSerialization(HeaderBytes)
	if rotor.Enabled {
		n.rotorSnap = make([]int64, 4*f.NumToRs)
	}
	return n
}

// rotorBacklogAt reads ToR peer's published nonlocal backlog as seen from
// absolute slice abs: the snapshot published at the previous slice's
// boundary. During slice 0 no snapshot exists yet and the backlog reads as
// zero (the board starts zeroed), identically in serial and sharded runs.
func (n *Network) rotorBacklogAt(abs int64, peer int) int64 {
	return n.rotorSnap[((abs-1)&3)*int64(n.F.NumToRs)+int64(peer)]
}

// buildTopology instantiates ToRs and hosts, assigning each to the domain
// domOf returns for its ToR index.
func (n *Network) buildTopology(domOf func(tor int) *domain) {
	n.ToRs = make([]*ToR, n.F.NumToRs)
	for i := range n.ToRs {
		n.ToRs[i] = newToR(n, i, domOf(i))
	}
	n.Hosts = make([]*Host, n.F.NumHosts())
	for i := range n.Hosts {
		n.Hosts[i] = newHost(n, i, domOf(i/n.F.HostsPerToR))
	}
}

// HostToR returns the ToR a host attaches to.
func (n *Network) HostToR(host int) int { return host / n.F.HostsPerToR }

// Start arms the slice-boundary clock. Must be called once before running.
// Sharded networks arm one boundary event per domain (the slice clock is
// global state every ToR derives locally from its own virtual time).
func (n *Network) Start() {
	for _, d := range n.doms {
		d.eng.AtTag(0, sim.EventTag{Kind: checkpoint.KindBoundary, A: int32(d.id)}, d.boundaryFn)
	}
}

// sliceBoundaryFor fires at the start of every slice in one domain: it
// expires the calendar queues of the slice that just ended (rerouting the
// packets that missed their circuits, §6.3) and kicks the domain's uplink
// pumps for the new slice. Serially the single domain covers all ToRs.
func (n *Network) sliceBoundaryFor(d *domain) {
	now := d.eng.Now()
	abs := n.F.AbsSlice(now)
	// The cyclic index of the just-ended slice is computed once here rather
	// than per ToR (it is the same for all of them).
	expired := -1
	if abs > 0 {
		expired = n.F.CyclicSlice(abs - 1)
	}
	for _, tor := range d.tors {
		tor.onSliceStart(abs, expired)
	}
	d.eng.AtTag(n.F.SliceStart(abs+1), sim.EventTag{Kind: checkpoint.KindBoundary, A: int32(d.id)}, d.boundaryFn)
}

// simNow returns the observation clock: the serial engine's time, or the
// sharded coordinator's global time (sampling runs as a global event).
func (n *Network) simNow() sim.Time {
	if n.sharded != nil {
		return n.sharded.GlobalNow()
	}
	return n.Eng.Now()
}

// domainFor returns the domain executing a ToR's events.
func (n *Network) domainFor(tor int) *domain {
	if len(n.doms) == 1 {
		return n.doms[0]
	}
	return n.doms[tor]
}

// FinalizeSharded merges the per-domain counter shards into Counters and
// fires OnFlowDone for every flow that completed during a sharded run,
// ordered by (FinishedAt, flow ID). Completion instants are domain-local
// times, so this is the serial completion order whenever instants are
// distinct (ties fall back to ID order, which a serial run does not
// guarantee — the one documented observable difference, DESIGN.md §10).
// Call it exactly once, after the engine run; serial networks ignore it.
func (n *Network) FinalizeSharded() {
	if n.sharded == nil {
		return
	}
	var fin []*Flow
	for _, d := range n.doms {
		n.Counters.add(d.ctr)
		*d.ctr = Counters{}
		fin = append(fin, d.finished...)
		d.finished = nil
	}
	sort.Slice(fin, func(i, j int) bool {
		if fin[i].FinishedAt != fin[j].FinishedAt {
			return fin[i].FinishedAt < fin[j].FinishedAt
		}
		return fin[i].ID < fin[j].ID
	})
	if n.OnFlowDone != nil {
		for _, f := range fin {
			n.OnFlowDone(f)
		}
	}
}

// RegisterFlow makes the network aware of a flow (needed before any packet
// of it is sent) and assigns it the next dense index, which the host NICs
// use for map-free per-flow queue dispatch.
func (n *Network) RegisterFlow(f *Flow) {
	if _, dup := n.flows[f.ID]; dup {
		panic(fmt.Sprintf("netsim: duplicate flow %d", f.ID))
	}
	f.RotorClass = n.Router.RotorFlow(f)
	f.dense = len(n.flowList)
	n.flows[f.ID] = f
	n.flowList = append(n.flowList, f)
}

// RecordDelivered credits newly received distinct payload bytes to a flow
// (called by transport receivers) and completes the flow when all bytes
// have arrived.
func (n *Network) RecordDelivered(f *Flow, newBytes int64) {
	if newBytes <= 0 {
		return
	}
	d := n.domainFor(n.HostToR(f.DstHost))
	f.BytesDelivered += newBytes
	d.ctr.DataBytesDelivered += newBytes
	if f.BytesDelivered >= f.Size {
		n.flowFinishedIn(d, f)
	}
}

// FlowFinished records completion exactly once. It runs in the domain of
// the flow's destination ToR (delivery events execute there).
func (n *Network) FlowFinished(f *Flow) {
	n.flowFinishedIn(n.domainFor(n.HostToR(f.DstHost)), f)
}

func (n *Network) flowFinishedIn(d *domain, f *Flow) {
	if f.Finished {
		return
	}
	f.Finished = true
	f.FinishedAt = d.eng.Now()
	if n.sharded != nil {
		// OnFlowDone callbacks append to shared collector state; buffer and
		// drain deterministically in FinalizeSharded.
		d.finished = append(d.finished, f)
		return
	}
	if n.OnFlowDone != nil {
		n.OnFlowDone(f)
	}
}

// Flows returns all registered flows sorted by ID, so result aggregation
// built on it (FCT percentiles, trace export) is deterministic and
// independent of map iteration order.
func (n *Network) Flows() []*Flow {
	out := make([]*Flow, len(n.flowList))
	copy(out, n.flowList)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumFlows returns the number of registered flows (the dense index bound).
func (n *Network) NumFlows() int { return len(n.flowList) }

// InFlightData counts the data packets parked in fabric queues (host NICs,
// ToR ports, calendar queues, RotorLB VOQs). Packets on the wire — inside a
// scheduled delivery event — are not visible to it, so the count is exact
// only at quiescence (no pending events), which is when the conservation
// test reads it.
func (n *Network) InFlightData() int64 {
	var c int64
	for _, h := range n.Hosts {
		c += int64(h.port.high.dataCount() + h.port.anon.dataCount())
		for i := range h.port.perFlow {
			c += int64(h.port.perFlow[i].dataCount())
		}
	}
	for _, t := range n.ToRs {
		for _, d := range t.down {
			c += int64(d.queue.countData())
			c += int64(d.stage.dataCount())
		}
		for _, u := range t.up {
			for i := range u.cal {
				c += int64(u.cal[i].countData())
			}
		}
		if t.rotor != nil {
			for i := range t.rotor.local {
				c += int64(t.rotor.local[i].dataCount())
				c += int64(t.rotor.nonlocal[i].dataCount())
			}
		}
	}
	return c
}

// serdelay is the serialization delay of a packet on a host-facing link.
func (n *Network) serdelay(wireLen int) sim.Time {
	switch wireLen {
	case n.F.MTU:
		return n.serMTU
	case HeaderBytes:
		return n.serHdr
	}
	return n.F.SerializationDelay(wireLen)
}

// serdelayUp is the serialization delay on a circuit uplink (the §8
// testbed oversubscribes uplinks).
func (n *Network) serdelayUp(wireLen int) sim.Time {
	switch wireLen {
	case n.F.MTU:
		return n.serUpMTU
	case HeaderBytes:
		return n.serUpHdr
	}
	return n.F.UplinkSerialization(wireLen)
}

// Sample is a point-in-time fabric measurement used for Figs 7, 10a, 15, 17.
type Sample struct {
	At sim.Time
	// Utilizations are averages across links of bytes sent since the
	// previous sample divided by link capacity over the interval.
	TorToHostUtil float64
	HostToTorUtil float64
	TorToTorUtil  float64
	// JainQueueIndex is Jain's fairness index over the per-uplink-port
	// queue occupancies (Appendix C, Eqn. 7).
	JainQueueIndex float64
	// JainLoadIndex is the same index over bytes sent per uplink port in
	// the sampling interval — a queue-free load-balance view that is
	// meaningful for RotorLB traffic too (Fig 15).
	JainLoadIndex float64
}

// TakeSample computes utilizations since the previous TakeSample call. On
// a sharded network it must run as a coordinator global event (it reads and
// advances every port's meter).
func (n *Network) TakeSample(prev *Sample) Sample {
	now := n.simNow()
	s := Sample{At: now}
	var interval sim.Time
	if prev != nil {
		interval = now - prev.At
	} else {
		interval = now
	}
	if interval <= 0 {
		return s
	}
	capBytes := float64(n.F.LinkBps) * interval.Seconds() / 8
	upCapBytes := float64(n.F.UplinkRate()) * interval.Seconds() / 8

	var down, up, hostUp float64
	var nDown, nHost int
	var qsum, qsq, lsum, lsq float64
	var m int
	for _, tor := range n.ToRs {
		for _, dp := range tor.down {
			down += float64(dp.takeBytes()) / capBytes
			nDown++
		}
		for _, upPort := range tor.up {
			l := float64(upPort.takeBytes())
			up += l / upCapBytes
			lsum += l
			lsq += l * l
			q := float64(upPort.queuedBytes())
			qsum += q
			qsq += q * q
			m++
		}
	}
	for _, h := range n.Hosts {
		hostUp += float64(h.port.takeBytes()) / capBytes
		nHost++
	}
	if nDown > 0 {
		s.TorToHostUtil = down / float64(nDown)
	}
	if m > 0 {
		s.TorToTorUtil = up / float64(m)
	}
	if nHost > 0 {
		s.HostToTorUtil = hostUp / float64(nHost)
	}
	s.JainQueueIndex = jain(qsum, qsq, m)
	s.JainLoadIndex = jain(lsum, lsq, m)
	return s
}

// CalendarBacklog reports the number of data packets parked right now at a
// ToR for the calendar queue a planned hop would use. This is the live
// view; the §10 congestion-aware extension plans against the
// slice-boundary snapshot (CongestionBacklog, congboard.go) instead, whose
// stale-by-one-slice value is identical in serial and sharded runs. The
// live read remains for diagnostics and for the board's unit tests.
func (n *Network) CalendarBacklog(tor int, hop PlannedHop) int {
	c := n.F.CyclicSlice(hop.AbsSlice)
	sw := n.F.Sched.SwitchFor(c, tor, hop.To)
	if sw < 0 {
		return 1 << 30
	}
	return n.ToRs[tor].up[sw].cal[c].DataLen()
}

// JainCumulative computes Jain's fairness index over the cumulative bytes
// each uplink port has sent since the run began — the whole-run
// load-balance view used for Fig 15. Per-window snapshots (Sample) are
// noisy on small fabrics where few flows are concurrently active.
func (n *Network) JainCumulative() float64 {
	var sum, sq float64
	m := 0
	for _, tor := range n.ToRs {
		for _, u := range tor.up {
			x := float64(u.meter.total)
			sum += x
			sq += x * x
			m++
		}
	}
	return jain(sum, sq, m)
}

// jain computes Jain's fairness index (Σx)²/(m·Σx²); all-zero inputs count
// as perfectly balanced.
func jain(sum, sq float64, m int) float64 {
	if m == 0 {
		return 0
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(m) * sq)
}

// BandwidthEfficiency returns the paper's §1 metric: the reciprocal of the
// average per-byte ToR-to-ToR hop count, i.e. delivered payload bytes
// divided by wire bytes crossing ToR-ToR links. 1.0 means every byte used
// one hop; 0.5 means two hops on average (VLB).
func (n *Network) BandwidthEfficiency() float64 {
	if n.Counters.TorToTorBytes == 0 {
		return 0
	}
	return float64(n.Counters.DataBytesDelivered) / float64(n.Counters.TorToTorBytes)
}

// ReroutedFraction returns the fraction of data packets that were
// recirculated at least once (§6.3 reports at most 3.03%).
func (n *Network) ReroutedFraction() float64 {
	if n.Counters.DataPackets == 0 {
		return 0
	}
	return float64(n.Counters.ReroutedPackets) / float64(n.Counters.DataPackets)
}
