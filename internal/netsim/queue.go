package netsim

// Queue is a two-band FIFO with a byte/packet bound on the data band.
// Control packets (ACKs, NACKs, pulls, trimmed headers) use the high band,
// which is drained first and sized generously — mirroring the strict
// priority given to control traffic in NDP and in the paper's Tofino2
// implementation.
type Queue struct {
	// MaxDataPackets bounds the data band (the paper: 300 MTU for DCTCP,
	// 80 MTU for NDP). Zero means unbounded.
	MaxDataPackets int
	// ECNThreshold marks CE on enqueue when the data band holds at least
	// this many packets (65 for DCTCP). Zero disables marking.
	ECNThreshold int
	// Trim converts an overflowing data packet into a trimmed header on the
	// high band instead of dropping it (NDP).
	Trim bool

	high, low fifo
	dataBytes int64

	// Counters for diagnostics and load-balance metrics.
	Dropped int64
	Trimmed int64
	Marked  int64
}

type fifo struct {
	items []*Packet
	head  int
}

func (f *fifo) push(p *Packet) { f.items = append(f.items, p) }
func (f *fifo) pop() *Packet {
	if f.head >= len(f.items) {
		return nil
	}
	p := f.items[f.head]
	f.items[f.head] = nil
	f.head++
	if f.head == len(f.items) {
		// Drained: rewind so the next burst reuses the same backing array.
		f.items = f.items[:0]
		f.head = 0
	} else if f.head > 64 && f.head*2 >= len(f.items) {
		n := copy(f.items, f.items[f.head:])
		f.items = f.items[:n]
		f.head = 0
	}
	return p
}
func (f *fifo) len() int { return len(f.items) - f.head }

// dataCount counts Type==Data packets in the fifo. Trimmed data packets ride
// high-priority bands but remain data for the conservation ledger.
func (f *fifo) dataCount() int {
	c := 0
	for _, p := range f.items[f.head:] {
		if p != nil && p.Type == Data {
			c++
		}
	}
	return c
}

// Enqueue adds a packet, applying ECN marking, trimming, or drop policy.
// It reports whether the packet (possibly trimmed) was accepted.
func (q *Queue) Enqueue(p *Packet) bool {
	if p.IsControl() {
		q.high.push(p)
		return true
	}
	if q.MaxDataPackets > 0 && q.low.len() >= q.MaxDataPackets {
		if q.Trim {
			p.Trimmed = true
			p.WireLen = HeaderBytes
			q.Trimmed++
			q.high.push(p)
			return true
		}
		q.Dropped++
		return false
	}
	if q.ECNThreshold > 0 && p.ECNCapable && q.low.len() >= q.ECNThreshold {
		p.ECNMarked = true
		q.Marked++
	}
	q.dataBytes += int64(p.WireLen)
	q.low.push(p)
	return true
}

// Dequeue removes the next packet: high band first.
func (q *Queue) Dequeue() *Packet {
	if p := q.high.pop(); p != nil {
		return p
	}
	p := q.low.pop()
	if p != nil {
		q.dataBytes -= int64(p.WireLen)
	}
	return p
}

// Peek returns the next packet without removing it.
func (q *Queue) Peek() *Packet {
	if q.high.len() > 0 {
		return q.high.items[q.high.head]
	}
	if q.low.len() > 0 {
		return q.low.items[q.low.head]
	}
	return nil
}

// Len returns the number of queued packets across both bands.
func (q *Queue) Len() int { return q.high.len() + q.low.len() }

// DataLen returns the number of queued data packets.
func (q *Queue) DataLen() int { return q.low.len() }

// DataBytes returns the bytes held in the data band.
func (q *Queue) DataBytes() int64 { return q.dataBytes }

// countData counts Type==Data packets across both bands (trimmed data sits
// in the high band).
func (q *Queue) countData() int { return q.high.dataCount() + q.low.dataCount() }
