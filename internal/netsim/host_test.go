package netsim

import (
	"testing"

	"ucmp/internal/sim"
	"ucmp/internal/topo"
)

// Host.Send fills addressing by direction: the flow's source host sends
// data toward the receiver; the receiver host sends control back.
func TestHostSendAddressing(t *testing.T) {
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	eng := sim.NewEngine()
	n := New(eng, f, stubRouter{f}, QueueSpec{}, QueueSpec{}, RotorConfig{})
	n.Start()
	fl := NewFlow(1, 3, 20, 1000, 0)
	n.RegisterFlow(fl)

	data := &Packet{Flow: fl, Type: Data, PayloadLen: 100, WireLen: 164}
	n.Hosts[3].Send(data)
	if data.SrcHost != 3 || data.DstHost != 20 {
		t.Fatalf("data addressing %d->%d", data.SrcHost, data.DstHost)
	}
	if data.SrcToR != 1 || data.DstToR != 10 {
		t.Fatalf("data ToRs %d->%d", data.SrcToR, data.DstToR)
	}

	ack := &Packet{Flow: fl, Type: Ack, WireLen: HeaderBytes}
	n.Hosts[20].Send(ack)
	if ack.SrcHost != 20 || ack.DstHost != 3 {
		t.Fatalf("ack addressing %d->%d", ack.SrcHost, ack.DstHost)
	}
}

// Dispatch: packets addressed to the flow's source go to the SenderEP,
// others to the ReceiverEP.
func TestHostReceiveDispatch(t *testing.T) {
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	eng := sim.NewEngine()
	n := New(eng, f, stubRouter{f}, QueueSpec{}, QueueSpec{}, RotorConfig{})
	n.Start()
	fl := NewFlow(1, 0, 17, 5000, 0)
	n.RegisterFlow(fl)
	var senderGot, receiverGot int
	fl.SenderEP = endpointFunc(func(*Packet) { senderGot++ })
	fl.ReceiverEP = endpointFunc(func(p *Packet) {
		receiverGot++
		n.RecordDelivered(fl, int64(p.PayloadLen))
	})
	eng.At(0, func() {
		n.Hosts[0].Send(&Packet{Flow: fl, Type: Data, Seq: 0, PayloadLen: 5000, WireLen: 5064})
	})
	// Let the data arrive, then send an ACK back.
	eng.Run(5 * sim.Millisecond)
	if receiverGot != 1 {
		t.Fatalf("receiver got %d", receiverGot)
	}
	eng.At(eng.Now(), func() {
		n.Hosts[17].Send(&Packet{Flow: fl, Type: Ack, Seq: 5000, WireLen: HeaderBytes})
	})
	eng.Run(eng.Now() + 5*sim.Millisecond)
	if senderGot != 1 {
		t.Fatalf("sender got %d", senderGot)
	}
	if !fl.Finished {
		t.Fatal("flow should be finished")
	}
	// Duplicate completion is idempotent.
	n.FlowFinished(fl)
	if fl.FCT() <= 0 {
		t.Fatal("FCT not positive")
	}
}

// Duplicate flow registration panics: silent duplicates would corrupt
// dispatch.
func TestRegisterFlowDuplicatePanics(t *testing.T) {
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	n := New(sim.NewEngine(), f, stubRouter{f}, QueueSpec{}, QueueSpec{}, RotorConfig{})
	fl := NewFlow(7, 0, 17, 1000, 0)
	n.RegisterFlow(fl)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	n.RegisterFlow(NewFlow(7, 1, 18, 1000, 0))
}
