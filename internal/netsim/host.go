package netsim

// Host is an end host: a NIC port toward its ToR and the dispatch point for
// transport endpoints.
type Host struct {
	net  *Network
	id   int
	tor  int
	port *hostPort
}

func newHost(n *Network, id int) *Host {
	tor := id / n.F.HostsPerToR
	return &Host{
		net:  n,
		id:   id,
		tor:  tor,
		port: &hostPort{net: n, tor: tor},
	}
}

// ID returns the global host index.
func (h *Host) ID() int { return h.id }

// ToR returns the index of the ToR this host attaches to.
func (h *Host) ToR() int { return h.tor }

// Send injects a packet into the fabric through the host NIC. Addressing
// fields are filled from the flow.
func (h *Host) Send(p *Packet) {
	f := p.Flow
	if p.SrcHost == 0 && p.DstHost == 0 && f != nil {
		// Fill addressing by direction: the sender host emits toward the
		// receiver, anyone else (the receiver) emits control back.
		if h.id == f.SrcHost {
			p.SrcHost, p.DstHost = f.SrcHost, f.DstHost
		} else {
			p.SrcHost, p.DstHost = f.DstHost, f.SrcHost
		}
	}
	p.SrcToR = h.net.HostToR(p.SrcHost)
	p.DstToR = h.net.HostToR(p.DstHost)
	p.SentAt = h.net.Eng.Now()
	if h.net.Stamper != nil {
		h.net.Stamper(p)
	}
	if p.Type == Data {
		h.net.Counters.DataBytesSent += int64(p.PayloadLen)
	}
	h.port.enqueue(p)
}

// receive dispatches an arriving packet to the flow's transport endpoint.
func (h *Host) receive(p *Packet) {
	f := p.Flow
	if f == nil {
		return
	}
	if p.DstHost == f.SrcHost {
		if f.SenderEP != nil {
			f.SenderEP.Deliver(p)
		}
		return
	}
	if f.ReceiverEP != nil {
		f.ReceiverEP.Deliver(p)
	}
}

// TorOf exposes the host's ToR switch (for RotorLB credit checks).
func (h *Host) TorOf() *ToR { return h.net.ToRs[h.tor] }
