package netsim

import "ucmp/internal/sim"

// Host is an end host: a NIC port toward its ToR and the dispatch point for
// transport endpoints. A host lives in its ToR's lookahead domain, so its
// clock, counters, and packet pool are the domain's.
type Host struct {
	net  *Network
	dom  *domain
	id   int
	tor  int
	port *hostPort

	// recvFn is receive pre-bound for sim.At1, so downlink transmissions
	// schedule arrivals without a per-packet closure.
	recvFn func(any)
}

func newHost(n *Network, id int, dom *domain) *Host {
	tor := id / n.F.HostsPerToR
	h := &Host{
		net:  n,
		dom:  dom,
		id:   id,
		tor:  tor,
		port: &hostPort{net: n, dom: dom, host: id, tor: tor},
	}
	h.port.pumpFn = h.port.pump
	h.recvFn = func(a any) { h.receive(a.(*Packet)) }
	return h
}

// ID returns the global host index.
func (h *Host) ID() int { return h.id }

// ToR returns the index of the ToR this host attaches to.
func (h *Host) ToR() int { return h.tor }

// Eng returns the engine of the host's lookahead domain. Transport
// endpoints schedule their timers and pacing events here, so a sharded run
// keeps every flow's sender state on the sender's domain and every
// receiver's state on the receiver's.
func (h *Host) Eng() *sim.Engine { return h.dom.eng }

// Now returns the host's domain-local clock.
func (h *Host) Now() sim.Time { return h.dom.eng.Now() }

// NewPacket allocates from the host's domain pool; transports must use it
// (not Network.NewPacket) so sharded allocation stays lock-free.
func (h *Host) NewPacket() *Packet { return h.dom.newPacket() }

// Send injects a packet into the fabric through the host NIC. Addressing
// fields are filled from the flow.
func (h *Host) Send(p *Packet) {
	p.assertLive("Host.Send")
	f := p.Flow
	if p.SrcHost == 0 && p.DstHost == 0 && f != nil {
		// Fill addressing by direction: the sender host emits toward the
		// receiver, anyone else (the receiver) emits control back.
		if h.id == f.SrcHost {
			p.SrcHost, p.DstHost = f.SrcHost, f.DstHost
		} else {
			p.SrcHost, p.DstHost = f.DstHost, f.SrcHost
		}
	}
	p.SrcToR = h.net.HostToR(p.SrcHost)
	p.DstToR = h.net.HostToR(p.DstHost)
	p.SentAt = h.dom.eng.Now()
	if h.net.Stamper != nil {
		h.net.Stamper(p)
	}
	if p.Type == Data {
		h.dom.ctr.DataBytesSent += int64(p.PayloadLen)
		h.dom.ctr.DataInjected++
	}
	h.port.enqueue(p)
}

// receive dispatches an arriving packet to the flow's transport endpoint,
// then recycles it: endpoints consume packets synchronously inside Deliver
// and never retain the pointer.
func (h *Host) receive(p *Packet) {
	p.assertLive("Host.receive")
	if p.Type == Data {
		if p.Trimmed {
			h.dom.ctr.TrimmedDelivered++
		} else {
			h.dom.ctr.DataDelivered++
		}
	}
	if f := p.Flow; f != nil {
		if p.DstHost == f.SrcHost {
			if f.SenderEP != nil {
				f.SenderEP.Deliver(p)
			}
		} else if f.ReceiverEP != nil {
			f.ReceiverEP.Deliver(p)
		}
	}
	h.dom.release(p)
}

// TorOf exposes the host's ToR switch (for RotorLB credit checks).
func (h *Host) TorOf() *ToR { return h.net.ToRs[h.tor] }
