package netsim

// Host is an end host: a NIC port toward its ToR and the dispatch point for
// transport endpoints.
type Host struct {
	net  *Network
	id   int
	tor  int
	port *hostPort

	// recvFn is receive pre-bound for sim.At1, so downlink transmissions
	// schedule arrivals without a per-packet closure.
	recvFn func(any)
}

func newHost(n *Network, id int) *Host {
	tor := id / n.F.HostsPerToR
	h := &Host{
		net:  n,
		id:   id,
		tor:  tor,
		port: &hostPort{net: n, tor: tor},
	}
	h.port.pumpFn = h.port.pump
	h.recvFn = func(a any) { h.receive(a.(*Packet)) }
	return h
}

// ID returns the global host index.
func (h *Host) ID() int { return h.id }

// ToR returns the index of the ToR this host attaches to.
func (h *Host) ToR() int { return h.tor }

// Send injects a packet into the fabric through the host NIC. Addressing
// fields are filled from the flow.
func (h *Host) Send(p *Packet) {
	p.assertLive("Host.Send")
	f := p.Flow
	if p.SrcHost == 0 && p.DstHost == 0 && f != nil {
		// Fill addressing by direction: the sender host emits toward the
		// receiver, anyone else (the receiver) emits control back.
		if h.id == f.SrcHost {
			p.SrcHost, p.DstHost = f.SrcHost, f.DstHost
		} else {
			p.SrcHost, p.DstHost = f.DstHost, f.SrcHost
		}
	}
	p.SrcToR = h.net.HostToR(p.SrcHost)
	p.DstToR = h.net.HostToR(p.DstHost)
	p.SentAt = h.net.Eng.Now()
	if h.net.Stamper != nil {
		h.net.Stamper(p)
	}
	if p.Type == Data {
		h.net.Counters.DataBytesSent += int64(p.PayloadLen)
		h.net.Counters.DataInjected++
	}
	h.port.enqueue(p)
}

// receive dispatches an arriving packet to the flow's transport endpoint,
// then recycles it: endpoints consume packets synchronously inside Deliver
// and never retain the pointer.
func (h *Host) receive(p *Packet) {
	p.assertLive("Host.receive")
	if p.Type == Data {
		if p.Trimmed {
			h.net.Counters.TrimmedDelivered++
		} else {
			h.net.Counters.DataDelivered++
		}
	}
	if f := p.Flow; f != nil {
		if p.DstHost == f.SrcHost {
			if f.SenderEP != nil {
				f.SenderEP.Deliver(p)
			}
		} else if f.ReceiverEP != nil {
			f.ReceiverEP.Deliver(p)
		}
	}
	h.net.Release(p)
}

// TorOf exposes the host's ToR switch (for RotorLB credit checks).
func (h *Host) TorOf() *ToR { return h.net.ToRs[h.tor] }
