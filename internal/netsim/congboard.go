package netsim

import (
	"fmt"

	"ucmp/internal/sim"
)

// The congestion board is the slice-boundary calendar-backlog exchange
// behind the §10 congestion-aware UCMP extension. The extension used to
// read calendar queues live at plan time (Network.CalendarBacklog): a
// mid-slice read whose value depends on exactly which same-instant events
// have already executed — an ordering that the serial and sharded engines
// are not obliged to reproduce for each other, which is why the harness
// kept congestion-aware configs off the sharded engine.
//
// The board replaces the live read with the same bounded-staleness pattern
// the RotorLB backlog exchange uses (DESIGN.md §12): at the top of its own
// slice-boundary event for slice s, each ToR publishes the data-packet
// count of every one of its calendar queues into the board slot for s;
// plans made during slice s read the slot published at the boundary of
// s−1. The value read is therefore always "the backlog as of the previous
// slice boundary" — stale by at most one slice, but a pure function of the
// simulation state at a boundary instant, which both engines reproduce
// exactly (a ToR's boundary event mutates only its own state, so the
// snapshot is independent of the order ToRs process a boundary in). Reads
// and writes of one slot are at least a full slice apart, and the sharded
// engine's window never exceeds the lookahead, so with SliceDuration >=
// lookahead (enforced by harness.Shardable and the backstop below) no
// write shares an engine window with a read of its slot.

// EnableCongestionBoard allocates the slice-boundary calendar-backlog
// board and turns on its per-ToR publication. Must be called before Start;
// calling it twice is a no-op. The board costs 4·N·d·S int32 slots and one
// d·S copy per ToR per slice boundary, so it is pay-for-play: networks
// without congestion-aware routing never touch it.
func (n *Network) EnableCongestionBoard() {
	if n.congSnap != nil {
		return
	}
	if n.sharded != nil && n.F.SliceDuration < n.sharded.Window() {
		// Mirror of the rotor-board backstop in NewSharded: a slot published
		// at one boundary must not share an engine window with its readers
		// during the next slice. The harness gate rejects such configs; this
		// catches direct construction.
		panic(fmt.Sprintf("netsim: slice duration %v below engine window %v; congestion backlog exchange cannot shard",
			n.F.SliceDuration, n.sharded.Window()))
	}
	n.congSnap = make([]int32, 4*n.F.NumToRs*n.F.Uplinks*n.F.Sched.S)
}

// CongestionEnabled reports whether the board is allocated.
func (n *Network) CongestionEnabled() bool { return n.congSnap != nil }

// congSlot returns the board slot (one int32 per (uplink, cyclic slice))
// ToR tor publishes at the boundary of absolute slice abs. Four ring slots
// make the index a mask; three would suffice for the race argument.
func (n *Network) congSlot(abs int64, tor int) []int32 {
	stride := n.F.Uplinks * n.F.Sched.S
	base := ((abs & 3) * int64(n.F.NumToRs)) + int64(tor)
	return n.congSnap[base*int64(stride) : (base+1)*int64(stride) : (base+1)*int64(stride)]
}

// publishCongestionBacklog snapshots this ToR's calendar-queue data
// backlogs into the board slot for absolute slice abs (read by plans made
// during slice abs+1). Runs at the top of onSliceStart, before the
// boundary's own expiry and pumps mutate the queues.
func (t *ToR) publishCongestionBacklog(abs int64) {
	slot := t.net.congSlot(abs, t.id)
	i := 0
	for _, u := range t.up {
		for c := range u.cal {
			slot[i] = int32(u.cal[c].DataLen())
			i++
		}
	}
}

// CongestionBacklog reports the data-packet backlog of the calendar queue
// a planned hop would join, as of the last published slice boundary: the
// congestion signal for the §10 extension (routing.UCMP.Backlog). During
// the first slice no snapshot exists yet and every backlog reads as zero
// (the board starts zeroed), identically in serial and sharded runs.
// Unknown circuits report a prohibitive backlog, exactly like the live
// CalendarBacklog. The board must be enabled (EnableCongestionBoard).
func (n *Network) CongestionBacklog(tor int, now sim.Time, hop PlannedHop) int {
	c := n.F.CyclicSlice(hop.AbsSlice)
	sw := n.F.Sched.SwitchFor(c, tor, hop.To)
	if sw < 0 {
		return 1 << 30
	}
	abs := n.F.AbsSlice(now)
	return int(n.congSlot(abs-1, tor)[sw*n.F.Sched.S+c])
}
