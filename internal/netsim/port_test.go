package netsim

import (
	"testing"

	"ucmp/internal/sim"
	"ucmp/internal/topo"
)

// stubRouter plans a fixed one-hop route toward the packet's DstToR at the
// earliest direct slice.
type stubRouter struct{ f *topo.Fabric }

func (s stubRouter) Name() string           { return "stub" }
func (s stubRouter) RotorFlow(f *Flow) bool { return false }
func (s stubRouter) PlanRoute(p *Packet, tor int, now sim.Time, fromAbs int64, buf []PlannedHop) ([]PlannedHop, bool) {
	e := s.f.Sched.NextDirect(tor, p.DstToR, fromAbs)
	return append(buf, PlannedHop{To: p.DstToR, AbsSlice: e}), true
}

func stubNet(t testing.TB) (*sim.Engine, *Network) {
	t.Helper()
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	eng := sim.NewEngine()
	n := New(eng, f, stubRouter{f}, QueueSpec{MaxDataPackets: 300, ECNThreshold: 65}, QueueSpec{MaxDataPackets: 300}, RotorConfig{})
	n.Start()
	return eng, n
}

// The host NIC must round-robin flows: with a bulk flow and a short flow
// enqueued together, short-flow packets interleave instead of waiting for
// the full bulk backlog.
func TestHostPortFairQueueing(t *testing.T) {
	eng, n := stubNet(t)
	// Both flows share the destination ToR so circuit timing is identical
	// and delivery order reflects NIC departure order.
	bulk := NewFlow(1, 0, 17, 1<<20, 0)
	short := NewFlow(2, 0, 16, 3000, 0)
	n.RegisterFlow(bulk)
	n.RegisterFlow(short)
	var order []int64
	sink := func(fl *Flow) Endpoint {
		return endpointFunc(func(p *Packet) {
			order = append(order, fl.ID)
			n.RecordDelivered(fl, int64(p.PayloadLen))
		})
	}
	bulk.ReceiverEP = sink(bulk)
	short.ReceiverEP = sink(short)

	host := n.Hosts[0]
	eng.At(0, func() {
		// 50 bulk packets, then 2 short packets: FIFO would deliver the
		// shorts last; fair queueing interleaves them near the front.
		for i := 0; i < 50; i++ {
			host.Send(&Packet{Flow: bulk, Type: Data, Seq: int64(i) * 1436, PayloadLen: 1436, WireLen: 1500})
		}
		for i := 0; i < 2; i++ {
			host.Send(&Packet{Flow: short, Type: Data, Seq: int64(i) * 1436, PayloadLen: 1436, WireLen: 1500})
		}
	})
	eng.Run(20 * sim.Millisecond)
	if len(order) < 52 {
		t.Fatalf("only %d packets delivered", len(order))
	}
	// Both short packets must appear within the first dozen NIC departures'
	// worth of arrivals (they may reorder in the fabric, so check they are
	// not at the very tail).
	lastShort := -1
	for i, id := range order {
		if id == short.ID {
			lastShort = i
		}
	}
	if lastShort < 0 {
		t.Fatal("short flow never delivered")
	}
	if lastShort > 20 {
		t.Fatalf("short flow packet delivered at position %d; NIC fair queueing not working", lastShort)
	}
}

type endpointFunc func(*Packet)

func (f endpointFunc) Deliver(p *Packet) { f(p) }

// A packet waiting several cycles for its circuit must not be dropped: the
// recirculation budget is per ToR and resets on departure (§6.3).
func TestPerToRRerouteBudget(t *testing.T) {
	eng, n := stubNet(t)
	fl := NewFlow(1, 0, 17, 1436, 0)
	n.RegisterFlow(fl)
	delivered := false
	fl.ReceiverEP = endpointFunc(func(p *Packet) { delivered = true })

	// Force many recirculations at the source ToR by pre-aging the packet,
	// then confirm a fresh strike budget after it departs: the packet with
	// Rerouted=MaxReroutes-1 must still cross two ToRs if rerouted once
	// more at each.
	p := &Packet{Flow: fl, Type: Data, PayloadLen: 1436, WireLen: 1500, Rerouted: MaxReroutes - 1}
	eng.At(0, func() { n.Hosts[0].Send(p) })
	eng.Run(10 * sim.Millisecond)
	if !delivered {
		t.Fatalf("packet dropped despite per-ToR budget (rerouted=%d)", p.Rerouted)
	}
	if p.Rerouted != 0 {
		t.Fatalf("budget not reset on departure: %d", p.Rerouted)
	}
}

// ECN marking must occur in calendar queues when a slice's backlog exceeds
// the threshold.
func TestCalendarQueueECN(t *testing.T) {
	eng, n := stubNet(t)
	// Pick a destination whose direct circuit is a few slices away, so the
	// calendar queue accumulates instead of draining live.
	dstToR := -1
	for d := 1; d < n.F.NumToRs; d++ {
		if n.F.Sched.WaitSlices(0, d, 0) >= 2 {
			dstToR = d
			break
		}
	}
	if dstToR < 0 {
		t.Fatal("no delayed pair found")
	}
	fl := NewFlow(1, 0, dstToR*n.F.HostsPerToR, 1<<20, 0)
	n.RegisterFlow(fl)
	marked := 0
	fl.ReceiverEP = endpointFunc(func(p *Packet) {
		if p.ECNMarked {
			marked++
		}
	})
	eng.At(0, func() {
		for i := 0; i < 120; i++ { // above the 65-packet threshold
			n.Hosts[0].Send(&Packet{Flow: fl, Type: Data, Seq: int64(i) * 1436, PayloadLen: 1436, WireLen: 1500, ECNCapable: true})
		}
	})
	eng.Run(20 * sim.Millisecond)
	if marked == 0 {
		t.Fatal("no ECN marks despite deep calendar backlog")
	}
}
