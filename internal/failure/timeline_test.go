package failure

import (
	"math/rand"
	"testing"

	"ucmp/internal/sim"
)

func TestEmptyTimelineCompilesToOneHealthyEpoch(t *testing.T) {
	f, _ := fixture(t)
	for _, tl := range []*Timeline{nil, NewTimeline()} {
		if !tl.Empty() {
			t.Fatal("empty timeline not Empty")
		}
		s := tl.Compile(f)
		if s.Epochs() != 1 {
			t.Fatalf("empty timeline compiled to %d epochs", s.Epochs())
		}
		if !s.TorOK(0, 0) || !s.LinkOK(sim.Second, 3, 1) {
			t.Fatal("healthy schedule reported a failure")
		}
	}
}

func TestScheduleEpochTransitions(t *testing.T) {
	f, _ := fixture(t)
	down, up := 100*sim.Microsecond, 500*sim.Microsecond
	s := NewTimeline().
		LinkDown(down, 3, 1).
		TorDown(down, 7).
		LinkUp(up, 3, 1).
		TorUp(up, 7).
		Compile(f)
	if s.Epochs() != 3 {
		t.Fatalf("%d epochs, want 3 (healthy, down, repaired)", s.Epochs())
	}
	type probe struct {
		at            sim.Time
		linkOK, torOK bool
	}
	for _, p := range []probe{
		{0, true, true},
		{down - 1, true, true},
		{down, false, false}, // epoch start is inclusive
		{up - 1, false, false},
		{up, true, true},
		{2 * sim.Second, true, true},
	} {
		if got := s.LinkOK(p.at, 3, 1); got != p.linkOK {
			t.Fatalf("LinkOK(%v) = %v, want %v", p.at, got, p.linkOK)
		}
		if got := s.TorOK(p.at, 7); got != p.torOK {
			t.Fatalf("TorOK(%v) = %v, want %v", p.at, got, p.torOK)
		}
	}
	// Other elements stay healthy throughout.
	if !s.LinkOK(down, 3, 0) || !s.TorOK(down, 6) {
		t.Fatal("failure bled onto a healthy element")
	}
}

func TestSwitchDownKillsEveryAttachedLink(t *testing.T) {
	f, _ := fixture(t)
	s := NewTimeline().SwitchDown(0, 2).Compile(f)
	for tor := 0; tor < f.NumToRs; tor++ {
		if s.LinkOK(0, tor, 2) {
			t.Fatalf("link (%d, 2) healthy with switch 2 down", tor)
		}
		if !s.LinkOK(0, tor, 0) {
			t.Fatalf("link (%d, 0) unhealthy with only switch 2 down", tor)
		}
	}
}

func TestCompileClampsNegativeAndFoldsAtZero(t *testing.T) {
	f, _ := fixture(t)
	// A fault scripted before t=0 belongs to the base epoch, not a new one.
	s := NewTimeline().LinkDown(-5*sim.Microsecond, 1, 0).Compile(f)
	if s.Epochs() != 1 {
		t.Fatalf("negative-time fault produced %d epochs, want 1", s.Epochs())
	}
	if s.LinkOK(0, 1, 0) {
		t.Fatal("clamped fault not active at t=0")
	}
}

func TestCompileSameInstantInsertionOrder(t *testing.T) {
	f, _ := fixture(t)
	at := 10 * sim.Microsecond
	// Down then up at the same instant: stable sort keeps insertion order, so
	// the element ends the instant healthy; the reverse order ends it down.
	s := NewTimeline().TorDown(at, 5).TorUp(at, 5).Compile(f)
	if !s.TorOK(at, 5) {
		t.Fatal("down-then-up at one instant left the ToR down")
	}
	if s.Epochs() != 2 {
		t.Fatalf("same-instant pair made %d epochs, want 2", s.Epochs())
	}
	s = NewTimeline().TorUp(at, 5).TorDown(at, 5).Compile(f)
	if s.TorOK(at, 5) {
		t.Fatal("up-then-down at one instant left the ToR up")
	}
}

func TestCompileDoesNotMutateTimeline(t *testing.T) {
	f, _ := fixture(t)
	tl := NewTimeline().LinkDown(-3*sim.Microsecond, 2, 1).TorDown(5*sim.Microsecond, 1).TorDown(sim.Microsecond, 0)
	before := tl.Events()
	tl.Compile(f)
	after := tl.Events()
	if len(before) != len(after) {
		t.Fatal("compile changed event count")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("compile reordered/clamped the source events: %v -> %v", before[i], after[i])
		}
	}
}

func TestFromScenarioRoundTripsAndRepairs(t *testing.T) {
	f, ps := fixture(t)
	rng := rand.New(rand.NewSource(9))
	sc := NewScenario(f).FailToRs(0.1, rng).FailLinks(0.05, rng).FailSwitches(0.3, rng)
	down, repair := 50*sim.Microsecond, 800*sim.Microsecond
	s := FromScenario(sc, down, repair).Compile(f)

	// During the outage the schedule answers exactly like the scenario...
	for tor := 0; tor < f.NumToRs; tor++ {
		if s.TorOK(down, tor) != sc.TorOK(tor) {
			t.Fatalf("ToR %d health mismatch during outage", tor)
		}
		for sw := 0; sw < f.Uplinks; sw++ {
			if s.LinkOK(down, tor, sw) != sc.LinkOK(tor, sw) {
				t.Fatalf("link (%d,%d) health mismatch during outage", tor, sw)
			}
		}
	}
	for ts := 0; ts < f.Sched.S; ts++ {
		g := ps.Group(ts, 0, 1)
		for _, e := range g.Entries {
			for _, p := range e.Paths {
				if s.PathOK(down, p) != sc.PathOK(p) {
					t.Fatal("PathOK mismatch during outage")
				}
			}
		}
	}
	// ...before it, and after repair, everything is healthy.
	for _, at := range []sim.Time{0, down - 1, repair, sim.Second} {
		for tor := 0; tor < f.NumToRs; tor++ {
			if !s.TorOK(at, tor) {
				t.Fatalf("ToR %d down at %v, outside the outage", tor, at)
			}
			for sw := 0; sw < f.Uplinks; sw++ {
				if !s.LinkOK(at, tor, sw) {
					t.Fatalf("link (%d,%d) down at %v, outside the outage", tor, sw, at)
				}
			}
		}
	}

	// repair < 0 means permanent.
	perm := FromScenario(sc, down, -1).Compile(f)
	if perm.Epochs() != 2 {
		t.Fatalf("permanent outage compiled to %d epochs, want 2", perm.Epochs())
	}
	far := 10 * sim.Second
	healthyAll := true
	for tor := 0; tor < f.NumToRs && healthyAll; tor++ {
		healthyAll = perm.TorOK(far, tor)
		for sw := 0; sw < f.Uplinks && healthyAll; sw++ {
			healthyAll = perm.LinkOK(far, tor, sw)
		}
	}
	if healthyAll {
		t.Fatal("permanent outage healed itself")
	}
}

func TestFromScenarioDeterministicOrder(t *testing.T) {
	f, _ := fixture(t)
	// Two identical scenarios (map iteration order differs run to run) must
	// script byte-identical timelines: links are emitted sorted.
	mk := func() *Timeline {
		rng := rand.New(rand.NewSource(11))
		return FromScenario(NewScenario(f).FailLinks(0.3, rng), 0, -1)
	}
	a, b := mk().Events(), mk().Events()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMergeKeepsBothScripts(t *testing.T) {
	f, _ := fixture(t)
	a := NewTimeline().TorDown(sim.Microsecond, 1)
	b := NewTimeline().TorDown(2*sim.Microsecond, 2)
	s := NewTimeline().Merge(a).Merge(b).Merge(nil).Compile(f)
	if s.TorOK(5*sim.Microsecond, 1) || s.TorOK(5*sim.Microsecond, 2) {
		t.Fatal("merged timeline lost an event")
	}
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatal("merge mutated its sources' event lists")
	}
}

func TestEventKindStrings(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvTorDown: "tor-down", EvTorUp: "tor-up",
		EvLinkDown: "link-down", EvLinkUp: "link-up",
		EvSwitchDown: "switch-down", EvSwitchUp: "switch-up",
		EventKind(99): "?",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	f, _ := fixture(t)
	a := NewScenario(f)
	a.SetLinkDown(1, 1, true)
	b := a.Clone()
	b.SetTorDown(2, true)
	b.SetLinkDown(3, 0, true)
	b.SetSwitchDown(1, true)
	if !a.TorOK(2) || !a.LinkOK(3, 0) || a.LinkOK(1, 1) || !a.LinkOK(0, 1) {
		t.Fatal("mutating the clone leaked into the original")
	}
	b.SetLinkDown(1, 1, false)
	if a.LinkOK(1, 1) {
		t.Fatal("repairing the clone's link repaired the original")
	}
}
