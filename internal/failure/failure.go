// Package failure injects ToR, link, and circuit-switch failures and
// classifies UCMP's recovery options (§5.3, Fig 12): an affected path can
// transition to a shorter, same-length, or longer path within its UCMP
// group (or a backup 2-hop path for singleton groups), or be unrecoverable.
package failure

import (
	"math"
	"math/rand"

	"ucmp/internal/core"
	"ucmp/internal/topo"
)

// Scenario is one sampled failure pattern.
type Scenario struct {
	F *topo.Fabric

	torDown    []bool
	linkDown   map[[2]int]bool // (tor, circuit switch)
	switchDown []bool
}

// NewScenario returns an all-healthy scenario.
func NewScenario(f *topo.Fabric) *Scenario {
	return &Scenario{
		F:          f,
		torDown:    make([]bool, f.Sched.N),
		linkDown:   make(map[[2]int]bool),
		switchDown: make([]bool, f.Sched.D),
	}
}

// Clone returns an independent copy of the scenario; mutating either copy
// leaves the other untouched. The fault-timeline compiler snapshots epochs
// with it.
func (s *Scenario) Clone() *Scenario {
	c := &Scenario{
		F:          s.F,
		torDown:    append([]bool(nil), s.torDown...),
		linkDown:   make(map[[2]int]bool, len(s.linkDown)),
		switchDown: append([]bool(nil), s.switchDown...),
	}
	for l, d := range s.linkDown {
		c.linkDown[l] = d
	}
	return c
}

// SetTorDown marks one ToR failed (true) or repaired (false).
func (s *Scenario) SetTorDown(tor int, down bool) { s.torDown[tor] = down }

// SetLinkDown marks one (tor, switch) cable failed or repaired.
func (s *Scenario) SetLinkDown(tor, sw int, down bool) {
	if down {
		s.linkDown[[2]int{tor, sw}] = true
	} else {
		delete(s.linkDown, [2]int{tor, sw})
	}
}

// SetSwitchDown marks one circuit switch failed or repaired.
func (s *Scenario) SetSwitchDown(sw int, down bool) { s.switchDown[sw] = down }

// FailToRs marks a fraction of ToRs failed (see pick for the rounding and
// clamping contract).
func (s *Scenario) FailToRs(frac float64, rng *rand.Rand) *Scenario {
	for _, i := range pick(s.F.Sched.N, frac, rng) {
		s.torDown[i] = true
	}
	return s
}

// FailLinks marks a fraction of ToR-to-circuit-switch links failed.
func (s *Scenario) FailLinks(frac float64, rng *rand.Rand) *Scenario {
	n, d := s.F.Sched.N, s.F.Sched.D
	for _, i := range pick(n*d, frac, rng) {
		s.linkDown[[2]int{i / d, i % d}] = true
	}
	return s
}

// FailSwitches marks a fraction of circuit switches failed.
func (s *Scenario) FailSwitches(frac float64, rng *rand.Rand) *Scenario {
	for _, i := range pick(s.F.Sched.D, frac, rng) {
		s.switchDown[i] = true
	}
	return s
}

// pick samples ceil(frac*n) distinct indices. The contract: NaN, negative,
// and zero fractions select nothing (and consume no randomness); fractions
// above 1 (and +Inf) select everything; in between the count rounds UP
// (ceil), so nearby fractions stay distinguishable on small fabrics (1% vs
// 3% of 48 links must differ).
func pick(n int, frac float64, rng *rand.Rand) []int {
	if n <= 0 || math.IsNaN(frac) || frac <= 0 {
		return nil
	}
	k := int(math.Ceil(frac * float64(n)))
	if k > n || k < 0 { // frac > 1, or overflow from a huge fraction
		k = n
	}
	return rng.Perm(n)[:k]
}

// TorOK reports whether a ToR is healthy.
func (s *Scenario) TorOK(tor int) bool { return !s.torDown[tor] }

// LinkOK reports whether the (tor, switch) cable and the switch itself are
// healthy.
func (s *Scenario) LinkOK(tor, sw int) bool {
	return !s.switchDown[sw] && !s.linkDown[[2]int{tor, sw}]
}

// HopOK reports whether the circuit hop from -> to in the given absolute
// slice is usable.
func (s *Scenario) HopOK(from, to int, absSlice int64) bool {
	if !s.TorOK(from) || !s.TorOK(to) {
		return false
	}
	c := s.F.CyclicSlice(absSlice)
	sw := s.F.Sched.SwitchFor(c, from, to)
	if sw < 0 {
		return false
	}
	return s.LinkOK(from, sw) && s.LinkOK(to, sw)
}

// PathOK reports whether every hop of a UCMP path is usable.
func (s *Scenario) PathOK(p *core.Path) bool {
	from := p.Src
	for _, h := range p.Hops {
		if !s.HopOK(from, h.To, h.Slice) {
			return false
		}
		from = h.To
	}
	return true
}

// Recovery classifies the §5.3 outcome for one affected path.
type Recovery int

const (
	// Shorter: a healthy group path with fewer hops.
	Shorter Recovery = iota
	// SameLength: a healthy group path with the same hop count (preserves
	// the minimum uniform cost).
	SameLength
	// Longer: only healthy paths with more hops remain (backup 2-hop paths
	// for singleton direct groups count here when they add hops).
	Longer
	// Unrecoverable: no healthy alternative at all.
	Unrecoverable
)

func (r Recovery) String() string {
	switch r {
	case Shorter:
		return "shorter"
	case SameLength:
		return "same-length"
	case Longer:
		return "longer"
	default:
		return "unrecoverable"
	}
}

// Breakdown is the Fig 12a-c result: the share of affected paths per
// recovery class, plus totals.
type Breakdown struct {
	Affected int
	Total    int
	Share    [4]float64
}

// Classify walks every UCMP path of the PathSet, finds the affected ones
// (traversing a failed element, endpoints healthy), and classifies the best
// healthy alternative: same group first, then backup 2-hop paths.
func Classify(ps *core.PathSet, sc *Scenario) Breakdown {
	var b Breakdown
	var counts [4]int
	sched := ps.F.Sched
	for ts := 0; ts < sched.S; ts++ {
		for src := 0; src < sched.N; src++ {
			if !sc.TorOK(src) {
				continue
			}
			for dst := 0; dst < sched.N; dst++ {
				if dst == src || !sc.TorOK(dst) {
					continue
				}
				g := ps.Group(ts, src, dst)
				for _, e := range g.Entries {
					for _, p := range e.Paths {
						b.Total++
						if sc.PathOK(p) {
							continue
						}
						b.Affected++
						counts[classifyOne(ps, sc, g, ts, p)]++
					}
				}
			}
		}
	}
	if b.Affected > 0 {
		for i, c := range counts {
			b.Share[i] = float64(c) / float64(b.Affected)
		}
	}
	return b
}

func classifyOne(ps *core.PathSet, sc *Scenario, g *core.Group, ts int, broken *core.Path) Recovery {
	// Preferred recovery preserves the hop count (and hence the minimum
	// uniform cost for the affected buckets); otherwise any healthy group
	// member, shorter first; finally the 2-hop backups (§5.3).
	sawShorter, sawLonger := false, false
	for _, e := range g.Entries {
		for _, p := range e.Paths {
			if p == broken || !sc.PathOK(p) {
				continue
			}
			switch {
			case p.HopCount() == broken.HopCount():
				return SameLength
			case p.HopCount() < broken.HopCount():
				sawShorter = true
			default:
				sawLonger = true
			}
		}
	}
	if sawShorter {
		return Shorter
	}
	if sawLonger {
		return Longer
	}
	for _, p := range ps.BackupPaths(ts, broken.Src, broken.Dst, 8, func(tor int) bool { return !sc.TorOK(tor) }) {
		if sc.PathOK(p) {
			if p.HopCount() == broken.HopCount() {
				return SameLength
			}
			return Longer
		}
	}
	return Unrecoverable
}
