package failure

import (
	"fmt"
	"sort"

	"ucmp/internal/core"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
)

// EventKind names one fault-timeline transition.
type EventKind uint8

const (
	// EvTorDown / EvTorUp fail and repair a ToR (A = ToR index).
	EvTorDown EventKind = iota
	EvTorUp
	// EvLinkDown / EvLinkUp fail and repair one ToR-to-circuit-switch cable
	// (A = ToR, B = switch).
	EvLinkDown
	EvLinkUp
	// EvSwitchDown / EvSwitchUp fail and repair a whole circuit switch
	// (A = switch).
	EvSwitchDown
	EvSwitchUp
)

func (k EventKind) String() string {
	switch k {
	case EvTorDown:
		return "tor-down"
	case EvTorUp:
		return "tor-up"
	case EvLinkDown:
		return "link-down"
	case EvLinkUp:
		return "link-up"
	case EvSwitchDown:
		return "switch-down"
	case EvSwitchUp:
		return "switch-up"
	default:
		return "?"
	}
}

// Event is one scripted fault transition at an absolute simulation time.
type Event struct {
	At   sim.Time
	Kind EventKind
	A, B int // ToR / (ToR, switch) / switch, depending on Kind
}

// Timeline is a deterministic fault script: elements go down and come back
// at fixed simulation times. It is a pure description — compiling it against
// a fabric (Compile) produces the immutable Schedule the simulator consults.
// Builder methods return the timeline for chaining.
type Timeline struct {
	events []Event
}

// NewTimeline returns an empty fault script.
func NewTimeline() *Timeline { return &Timeline{} }

// Empty reports whether the script holds no events.
func (tl *Timeline) Empty() bool { return tl == nil || len(tl.events) == 0 }

// Events returns a copy of the scripted events in insertion order.
func (tl *Timeline) Events() []Event {
	if tl == nil {
		return nil
	}
	return append([]Event(nil), tl.events...)
}

// Add appends one raw event.
func (tl *Timeline) Add(e Event) *Timeline {
	tl.events = append(tl.events, e)
	return tl
}

// TorDown fails ToR `tor` at `at`.
func (tl *Timeline) TorDown(at sim.Time, tor int) *Timeline {
	return tl.Add(Event{At: at, Kind: EvTorDown, A: tor})
}

// TorUp repairs ToR `tor` at `at`.
func (tl *Timeline) TorUp(at sim.Time, tor int) *Timeline {
	return tl.Add(Event{At: at, Kind: EvTorUp, A: tor})
}

// LinkDown fails the (tor, switch) cable at `at`.
func (tl *Timeline) LinkDown(at sim.Time, tor, sw int) *Timeline {
	return tl.Add(Event{At: at, Kind: EvLinkDown, A: tor, B: sw})
}

// LinkUp repairs the (tor, switch) cable at `at`.
func (tl *Timeline) LinkUp(at sim.Time, tor, sw int) *Timeline {
	return tl.Add(Event{At: at, Kind: EvLinkUp, A: tor, B: sw})
}

// SwitchDown fails circuit switch `sw` at `at`.
func (tl *Timeline) SwitchDown(at sim.Time, sw int) *Timeline {
	return tl.Add(Event{At: at, Kind: EvSwitchDown, A: sw})
}

// SwitchUp repairs circuit switch `sw` at `at`.
func (tl *Timeline) SwitchUp(at sim.Time, sw int) *Timeline {
	return tl.Add(Event{At: at, Kind: EvSwitchUp, A: sw})
}

// Merge appends every event of `other`, preserving its insertion order.
func (tl *Timeline) Merge(other *Timeline) *Timeline {
	if other != nil {
		tl.events = append(tl.events, other.events...)
	}
	return tl
}

// FromScenario scripts every failed element of a sampled Scenario to go
// down at `down` and — when `repair` is non-negative — come back at
// `repair`. Elements are enumerated in index order, so the resulting
// timeline is deterministic for a deterministic scenario.
func FromScenario(sc *Scenario, down, repair sim.Time) *Timeline {
	tl := NewTimeline()
	for tor, d := range sc.torDown {
		if d {
			tl.TorDown(down, tor)
			if repair >= 0 {
				tl.TorUp(repair, tor)
			}
		}
	}
	for sw, d := range sc.switchDown {
		if d {
			tl.SwitchDown(down, sw)
			if repair >= 0 {
				tl.SwitchUp(repair, sw)
			}
		}
	}
	links := make([][2]int, 0, len(sc.linkDown))
	for l, d := range sc.linkDown {
		if d {
			links = append(links, l)
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	for _, l := range links {
		tl.LinkDown(down, l[0], l[1])
		if repair >= 0 {
			tl.LinkUp(repair, l[0], l[1])
		}
	}
	return tl
}

// epoch is one compiled interval of constant fault state: sc holds from
// start until the next epoch's start.
type epoch struct {
	start sim.Time
	sc    *Scenario
}

// Schedule is a Timeline compiled against a fabric: a sorted array of
// epochs, each an immutable Scenario snapshot. Health queries are pure
// functions of (time, element) — no mutable state, so concurrent lookahead
// domains may consult the schedule freely and serial and sharded runs see
// identical answers at identical local times. That is the whole determinism
// argument for runtime fault injection: failures are not simulator events
// at all, just a time-indexed view (DESIGN.md §11).
type Schedule struct {
	epochs []epoch
}

// Compile folds the timeline's events into epochs. Events sort stably by
// time (same-instant events apply in insertion order, downs and ups alike);
// events at negative times clamp to 0. Out-of-range element indices panic —
// a scripted fault naming a ToR the fabric does not have is a configuration
// bug, not a runtime condition.
func (tl *Timeline) Compile(f *topo.Fabric) *Schedule {
	evs := tl.Events()
	for i := range evs {
		if evs[i].At < 0 {
			evs[i].At = 0
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })

	s := &Schedule{}
	cur := NewScenario(f)
	s.epochs = append(s.epochs, epoch{start: 0, sc: cur})
	for i := 0; i < len(evs); {
		at := evs[i].At
		next := cur.Clone()
		for ; i < len(evs) && evs[i].At == at; i++ {
			apply(next, evs[i])
		}
		if at == 0 {
			// Faults active from the start replace the base epoch.
			s.epochs[0].sc = next
		} else {
			s.epochs = append(s.epochs, epoch{start: at, sc: next})
		}
		cur = next
	}
	return s
}

func apply(sc *Scenario, e Event) {
	switch e.Kind {
	case EvTorDown:
		sc.SetTorDown(e.A, true)
	case EvTorUp:
		sc.SetTorDown(e.A, false)
	case EvLinkDown:
		sc.SetLinkDown(e.A, e.B, true)
	case EvLinkUp:
		sc.SetLinkDown(e.A, e.B, false)
	case EvSwitchDown:
		sc.SetSwitchDown(e.A, true)
	case EvSwitchUp:
		sc.SetSwitchDown(e.A, false)
	default:
		panic(fmt.Sprintf("failure: unknown event kind %d", e.Kind))
	}
}

// ScenarioAt returns the fault state in force at `now`. The returned
// Scenario is shared and must not be mutated.
func (s *Schedule) ScenarioAt(now sim.Time) *Scenario {
	// Engine time is non-negative and epochs[0].start == 0, so the search
	// always lands on a valid epoch.
	i := sort.Search(len(s.epochs), func(i int) bool { return s.epochs[i].start > now }) - 1
	if i < 0 {
		i = 0
	}
	return s.epochs[i].sc
}

// Epochs reports the number of constant-state intervals (≥ 1).
func (s *Schedule) Epochs() int { return len(s.epochs) }

// TorOK reports whether a ToR is healthy at `now`. Together with LinkOK it
// implements netsim's fault-state interface; with PathOK it implements the
// routing layer's health view.
func (s *Schedule) TorOK(now sim.Time, tor int) bool { return s.ScenarioAt(now).TorOK(tor) }

// LinkOK reports whether the (tor, switch) cable and the switch itself are
// healthy at `now`.
func (s *Schedule) LinkOK(now sim.Time, tor, sw int) bool { return s.ScenarioAt(now).LinkOK(tor, sw) }

// PathOK reports whether every hop of a UCMP path is usable at `now`.
func (s *Schedule) PathOK(now sim.Time, p *core.Path) bool { return s.ScenarioAt(now).PathOK(p) }
