package failure

import (
	"math/rand"
	"testing"

	"ucmp/internal/core"
	"ucmp/internal/topo"
)

func fixture(t testing.TB) (*topo.Fabric, *core.PathSet) {
	t.Helper()
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	return f, core.BuildPathSet(f, 0.5)
}

func TestHealthyScenarioPassesEverything(t *testing.T) {
	f, ps := fixture(t)
	sc := NewScenario(f)
	for src := 0; src < f.NumToRs; src++ {
		if !sc.TorOK(src) {
			t.Fatal("healthy ToR reported failed")
		}
	}
	b := Classify(ps, sc)
	if b.Affected != 0 {
		t.Fatalf("healthy scenario affected %d paths", b.Affected)
	}
	if b.Total == 0 {
		t.Fatal("no paths walked")
	}
}

func TestFailToRsAffectsPaths(t *testing.T) {
	f, ps := fixture(t)
	sc := NewScenario(f).FailToRs(0.1, rand.New(rand.NewSource(1)))
	failed := 0
	for tor := 0; tor < f.NumToRs; tor++ {
		if !sc.TorOK(tor) {
			failed++
		}
	}
	if failed < 1 || failed > 3 {
		t.Fatalf("failed %d ToRs for 10%% of 16", failed)
	}
	b := Classify(ps, sc)
	if b.Affected == 0 {
		t.Fatal("no affected paths")
	}
	sum := b.Share[0] + b.Share[1] + b.Share[2] + b.Share[3]
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum %v", sum)
	}
	// The paper's headline: the large majority recover to a same-length
	// path, and unrecoverable stays tiny at 10% ToR failures.
	if b.Share[SameLength] < 0.4 {
		t.Errorf("same-length share %.2f unexpectedly low", b.Share[SameLength])
	}
	if b.Share[Unrecoverable] > 0.05 {
		t.Errorf("unrecoverable share %.3f above 5%%", b.Share[Unrecoverable])
	}
}

func TestFailLinksHopOK(t *testing.T) {
	f, _ := fixture(t)
	sc := NewScenario(f)
	sc.FailLinks(0.05, rand.New(rand.NewSource(2)))
	// Find a failed link and verify HopOK rejects hops over it.
	found := false
	for tor := 0; tor < f.NumToRs && !found; tor++ {
		for sw := 0; sw < f.Uplinks && !found; sw++ {
			if sc.LinkOK(tor, sw) {
				continue
			}
			found = true
			for sl := 0; sl < f.Sched.S; sl++ {
				peer := f.Sched.PeerOf(sl, tor, sw)
				// Unless another healthy switch realizes the same pair in
				// this slice, the hop must be rejected.
				alt := false
				for sw2 := 0; sw2 < f.Uplinks; sw2++ {
					if sw2 != sw && f.Sched.PeerOf(sl, tor, sw2) == peer && sc.LinkOK(tor, sw2) && sc.LinkOK(peer, sw2) {
						alt = true
					}
				}
				if !alt && sc.HopOK(tor, peer, int64(sl)) {
					t.Fatalf("hop over failed link (%d,%d) accepted in slice %d", tor, sw, sl)
				}
			}
		}
	}
	if !found {
		t.Fatal("no link failed")
	}
}

func TestFailSwitchesConnectivity(t *testing.T) {
	f, ps := fixture(t)
	// 1 of 3 switches down (the paper's 16.6% is 1 of 6).
	sc := NewScenario(f).FailSwitches(0.3, rand.New(rand.NewSource(3)))
	b := Classify(ps, sc)
	if b.Affected == 0 {
		t.Fatal("switch failure affected nothing")
	}
	// Connectivity is preserved: unrecoverable must be rare (<5%) at 1/3
	// switches down on the scaled fabric.
	if b.Share[Unrecoverable] > 0.05 {
		t.Errorf("unrecoverable %.3f with one switch down", b.Share[Unrecoverable])
	}
}

func TestHopOKRequiresCircuit(t *testing.T) {
	f, _ := fixture(t)
	sc := NewScenario(f)
	// A hop with no circuit in that slice is invalid even when healthy.
	for sl := 0; sl < f.Sched.S; sl++ {
		nb := f.Sched.Neighbors(nil, sl, 0)
		for dst := 1; dst < f.NumToRs; dst++ {
			connected := false
			for _, p := range nb {
				if p == dst {
					connected = true
				}
			}
			if sc.HopOK(0, dst, int64(sl)) != connected {
				t.Fatalf("HopOK(0,%d,slice %d) = %v, connected = %v", dst, sl, sc.HopOK(0, dst, int64(sl)), connected)
			}
		}
	}
}

func TestRecoveryString(t *testing.T) {
	for r, want := range map[Recovery]string{
		Shorter: "shorter", SameLength: "same-length", Longer: "longer", Unrecoverable: "unrecoverable",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", r, r.String())
		}
	}
}

func TestPickBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if got := pick(10, 0, rng); len(got) != 0 {
		t.Fatal("zero fraction picked something")
	}
	if got := pick(10, 0.01, rng); len(got) != 1 {
		t.Fatal("nonzero fraction picked nothing")
	}
	if got := pick(10, 5.0, rng); len(got) != 10 {
		t.Fatal("overshoot not clamped")
	}
}
