package failure

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ucmp/internal/core"
)

// ---- pick input validation (the sampling contract) ----

func TestPickRejectsGarbageFractions(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, frac := range []float64{math.NaN(), -0.5, -math.Inf(1), 0} {
		if got := pick(10, frac, rng); got != nil {
			t.Fatalf("pick(10, %v) = %v, want nil", frac, got)
		}
	}
	// Garbage fractions consume no randomness: the stream is untouched.
	want := rng.Int63()
	rng2 := rand.New(rand.NewSource(6))
	pick(10, math.NaN(), rng2)
	pick(10, -1, rng2)
	if got := rng2.Int63(); got != want {
		t.Fatal("rejected fraction consumed randomness")
	}
	if got := pick(0, 0.5, rng); got != nil {
		t.Fatal("pick over an empty universe selected something")
	}
	if got := pick(-3, 0.5, rng); got != nil {
		t.Fatal("pick over a negative universe selected something")
	}
}

func TestPickClampsOvershoot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, frac := range []float64{1.0001, 50, math.Inf(1), math.MaxFloat64} {
		if got := pick(10, frac, rng); len(got) != 10 {
			t.Fatalf("pick(10, %v) selected %d, want all 10", frac, len(got))
		}
	}
}

// TestPickCeilContract pins the rounding direction: the count is
// ceil(frac*n), so nearby small fractions stay distinguishable on small
// fabrics and any positive fraction fails at least one element.
func TestPickCeilContract(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, tc := range []struct {
		n    int
		frac float64
		want int
	}{
		{48, 0.01, 1}, {48, 0.03, 2}, {48, 0.05, 3},
		{16, 0.1, 2}, {10, 1e-9, 1}, {10, 1.0, 10},
	} {
		got := pick(tc.n, tc.frac, rng)
		if len(got) != tc.want {
			t.Fatalf("pick(%d, %v) selected %d, want ceil = %d", tc.n, tc.frac, len(got), tc.want)
		}
		seen := map[int]bool{}
		for _, i := range got {
			if i < 0 || i >= tc.n {
				t.Fatalf("pick(%d, %v) out-of-range index %d", tc.n, tc.frac, i)
			}
			if seen[i] {
				t.Fatalf("pick(%d, %v) duplicate index %d", tc.n, tc.frac, i)
			}
			seen[i] = true
		}
	}
}

// ---- Classify properties ----

func TestClassifyProperties(t *testing.T) {
	f, ps := fixture(t)
	prop := func(seed int64, torF, linkF, swF uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sc := NewScenario(f).
			FailToRs(float64(torF%40)/100, rng).
			FailLinks(float64(linkF%40)/100, rng).
			FailSwitches(float64(swF%34)/100, rng)
		b := Classify(ps, sc)
		if b.Affected < 0 || b.Affected > b.Total {
			t.Logf("Affected %d outside [0, %d]", b.Affected, b.Total)
			return false
		}
		var sum float64
		for _, s := range b.Share {
			if s < 0 || s > 1 {
				t.Logf("share out of range: %v", b.Share)
				return false
			}
			sum += s
		}
		if b.Affected == 0 {
			if sum != 0 {
				t.Logf("no affected paths but shares %v", b.Share)
				return false
			}
			return true
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Logf("shares sum to %v: %v", sum, b.Share)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyAllHealthyIsZero(t *testing.T) {
	f, ps := fixture(t)
	b := Classify(ps, NewScenario(f))
	if b.Affected != 0 {
		t.Fatalf("healthy scenario affected %d", b.Affected)
	}
	if b.Share != [4]float64{} {
		t.Fatalf("healthy scenario shares %v", b.Share)
	}
}

// TestClassifyEntryOrderInvariance: the breakdown is a function of the set
// of healthy alternatives, not of the order Groups happen to list them.
// Shuffling every group's entries and paths must not change the result.
func TestClassifyEntryOrderInvariance(t *testing.T) {
	f, _ := fixture(t)
	psA := core.BuildPathSet(f, 0.5)
	psB := core.BuildPathSet(f, 0.5)
	shuffle := rand.New(rand.NewSource(13))
	sched := f.Sched
	for ts := 0; ts < sched.S; ts++ {
		for src := 0; src < sched.N; src++ {
			for dst := 0; dst < sched.N; dst++ {
				if src == dst {
					continue
				}
				g := psB.Group(ts, src, dst)
				shuffle.Shuffle(len(g.Entries), func(i, j int) {
					g.Entries[i], g.Entries[j] = g.Entries[j], g.Entries[i]
				})
				for _, e := range g.Entries {
					shuffle.Shuffle(len(e.Paths), func(i, j int) {
						e.Paths[i], e.Paths[j] = e.Paths[j], e.Paths[i]
					})
				}
			}
		}
	}
	for _, seed := range []int64{1, 2, 3} {
		rngA := rand.New(rand.NewSource(seed))
		rngB := rand.New(rand.NewSource(seed))
		scA := NewScenario(f).FailToRs(0.1, rngA).FailLinks(0.05, rngA)
		scB := NewScenario(f).FailToRs(0.1, rngB).FailLinks(0.05, rngB)
		a, b := Classify(psA, scA), Classify(psB, scB)
		if a.Total != b.Total || a.Affected != b.Affected || a.Share != b.Share {
			t.Fatalf("seed %d: breakdown depends on entry order:\noriginal %+v\nshuffled %+v", seed, a, b)
		}
	}
}

// Fuzz the scenario space a little harder than quick.Check does, pinning
// the invariants that every downstream consumer relies on.
func FuzzClassifyInvariants(fz *testing.F) {
	fz.Add(int64(1), 0.1, 0.05, 0.0)
	fz.Add(int64(2), 0.0, 0.0, 0.33)
	fz.Add(int64(3), 1.0, 1.0, 1.0)
	fz.Add(int64(4), -0.5, math.NaN(), 2.0)
	f, ps := fixture(fz)
	fz.Fuzz(func(t *testing.T, seed int64, torF, linkF, swF float64) {
		rng := rand.New(rand.NewSource(seed))
		sc := NewScenario(f).FailToRs(torF, rng).FailLinks(linkF, rng).FailSwitches(swF, rng)
		b := Classify(ps, sc)
		if b.Affected < 0 || b.Affected > b.Total {
			t.Fatalf("Affected %d outside [0, %d]", b.Affected, b.Total)
		}
		var sum float64
		for _, s := range b.Share {
			if s < 0 || s > 1 {
				t.Fatalf("share out of range: %v", b.Share)
			}
			sum += s
		}
		if b.Affected > 0 && math.Abs(sum-1) > 1e-9 {
			t.Fatalf("shares sum to %v with %d affected", sum, b.Affected)
		}
		if b.Affected == 0 && sum != 0 {
			t.Fatalf("shares %v with nothing affected", b.Share)
		}
	})
}
