// Package checkpoint persists full simulation state so a killed long run
// resumes bit-identically instead of replaying from t=0 (DESIGN.md §16).
//
// A checkpoint file is a versioned, checksummed container of named sections.
// Each layer of the simulator (sim engines, netsim, transport, metrics,
// harness) encodes its own section through the Writer and decodes it back
// through the File; this package owns only the container discipline:
//
//	0   magic "UCMPCKP1"
//	8   u32 version, u32 section count
//	16  u64 payload length
//	24  u64 payload checksum (FNV-1a over bytes 40..EOF)
//	32  u64 header checksum (FNV-1a over bytes 0..32)
//	40  sections: { u32 nameLen, name, u64 bodyLen, body } ...
//
// Files are written atomically (temp file + rename, the same discipline as
// internal/fabriccache), so a crash mid-write leaves the previous checkpoint
// intact. Load validates magic, version, both checksums, and every section
// bound before handing out a single byte; any mismatch is an error, and the
// harness degrades a Load error to a clean cold run rather than failing.
//
// What is deliberately NOT serialized: closures. Pending events are
// re-encoded as pure descriptors (sim.EventDesc) tagged with model-level
// kinds (the Kind* constants below); the restore side rebuilds the pre-bound
// closures from the reconstructed model and replays the descriptors in
// recorded order. See DESIGN.md §16 for the rebuild-closures-on-restore
// rule and the full inventory of what each section carries.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

const (
	magic      = "UCMPCKP1"
	version    = 1
	headerSize = 40

	fnvOffset = 1469598103934665603
	fnvPrime  = 1099511628211
)

// Event-descriptor kinds: the model-level identity of a pending event's
// closure. A and B in the sim.EventTag are operands whose meaning the kind
// fixes (component ids); packet-carrying kinds serialize the packet next to
// the descriptor. Kind 0 is reserved for "untagged" — an event no layer
// claimed, which makes a snapshot refuse rather than guess.
const (
	// netsim
	KindBoundary    uint8 = 1 + iota // slice-boundary callback; A = domain
	KindFlush                        // ToR ingress flush; A = ToR
	KindPumpDown                     // ToR→host downlink pump; A = host
	KindPumpHost                     // host→ToR NIC pump; A = host
	KindDeliverHost                  // downlink delivery; A = host, +packet
	KindRecvHost                     // NIC arrival at ToR; A = ToR, +packet
	KindIngress                      // ToR↔ToR link arrival; A = dst ToR, +packet
	KindWakeUplink                   // uplink pump timer; A = ToR, B = uplink index

	// transport
	KindFlowStart // sender start; A = flow dense index
	KindRcvStart  // receiver start (NDP repair arm); A = flow dense index
	KindTCPRTO    // TCP/DCTCP retransmission timer; A = flow dense index
	KindNDPRepair // NDP idle-repair timer; A = flow dense index
	KindPacer     // NDP pull-pacer drain timer; A = host

	// metrics
	KindSample // serial sampling tick; A unused
)

func fnv64(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// Encoder appends primitive values to a section body. All integers are
// little-endian and fixed-width: simplicity and a stable format over
// compactness — checkpoints are overwritten, not archived.
type Encoder struct {
	buf []byte
}

func (e *Encoder) U8(v uint8)   { e.buf = append(e.buf, v) }
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *Encoder) I32(v int32)  { e.U32(uint32(v)) }
func (e *Encoder) I64(v int64)  { e.U64(uint64(v)) }
func (e *Encoder) F64(v float64) {
	e.U64(math.Float64bits(v))
}
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Len encodes a collection length.
func (e *Encoder) Len(n int) { e.U32(uint32(n)) }

// Decoder reads a section body back. Errors are sticky: the first bounds
// violation poisons the decoder, every later read returns zero values, and
// Err reports the failure — so decode walks read straight through and check
// once at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("checkpoint: truncated section reading %s at offset %d", what, d.off)
	}
}

func (d *Decoder) take(n int, what string) []byte {
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *Decoder) U8() uint8 {
	if b := d.take(1, "u8"); b != nil {
		return b[0]
	}
	return 0
}

func (d *Decoder) U32() uint32 {
	if b := d.take(4, "u32"); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (d *Decoder) U64() uint64 {
	if b := d.take(8, "u64"); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (d *Decoder) I32() int32   { return int32(d.U32()) }
func (d *Decoder) I64() int64   { return int64(d.U64()) }
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }
func (d *Decoder) Bool() bool   { return d.U8() != 0 }

func (d *Decoder) Str() string {
	n := d.U32()
	if uint64(n) > uint64(len(d.buf)-d.off) {
		d.fail("string")
		return ""
	}
	return string(d.take(int(n), "string"))
}

// Len decodes a collection length, rejecting counts that could not possibly
// fit in the remaining bytes (each element costs at least one byte) — a
// corrupted length then fails here instead of driving a giant allocation.
func (d *Decoder) Len() int {
	n := d.U32()
	if uint64(n) > uint64(len(d.buf)-d.off) {
		d.fail("length")
		return 0
	}
	return int(n)
}

// Err returns the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Writer accumulates named sections for one checkpoint file.
type Writer struct {
	names []string
	encs  []*Encoder
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Section returns the encoder for a named section, creating it on first
// use. Sections are written in first-use order.
func (w *Writer) Section(name string) *Encoder {
	for i, n := range w.names {
		if n == name {
			return w.encs[i]
		}
	}
	e := &Encoder{}
	w.names = append(w.names, name)
	w.encs = append(w.encs, e)
	return e
}

// Encode assembles the complete file image.
func (w *Writer) Encode() []byte {
	payload := make([]byte, 0, 4096)
	for i, name := range w.names {
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(name)))
		payload = append(payload, name...)
		payload = binary.LittleEndian.AppendUint64(payload, uint64(len(w.encs[i].buf)))
		payload = append(payload, w.encs[i].buf...)
	}
	out := make([]byte, 0, headerSize+len(payload))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(w.names)))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint64(out, fnv64(fnvOffset, payload))
	out = binary.LittleEndian.AppendUint64(out, fnv64(fnvOffset, out))
	return append(out, payload...)
}

// Save writes the checkpoint to path atomically (temp file + rename),
// creating the directory if needed. A crash at any point leaves either the
// previous file or the new one, never a torn mix.
func (w *Writer) Save(path string) error {
	img := w.Encode()
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".ucmpckp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := tmp.Write(img); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// File is a loaded, fully validated checkpoint.
type File struct {
	sections map[string][]byte
}

// Load reads and validates a checkpoint file: magic, version, header and
// payload checksums, and every section bound. Any corruption — down to a
// single flipped byte anywhere in the file — is an error.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("checkpoint: file is %d bytes, shorter than the %d-byte header", len(data), headerSize)
	}
	if string(data[:8]) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", data[:8])
	}
	if got := binary.LittleEndian.Uint64(data[32:]); got != fnv64(fnvOffset, data[:32]) {
		return nil, fmt.Errorf("checkpoint: header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != version {
		return nil, fmt.Errorf("checkpoint: file version %d, want %d", v, version)
	}
	count := binary.LittleEndian.Uint32(data[12:])
	plen := binary.LittleEndian.Uint64(data[16:])
	if plen != uint64(len(data)-headerSize) {
		return nil, fmt.Errorf("checkpoint: payload length %d, file has %d", plen, len(data)-headerSize)
	}
	if got := binary.LittleEndian.Uint64(data[24:]); got != fnv64(fnvOffset, data[headerSize:]) {
		return nil, fmt.Errorf("checkpoint: payload checksum mismatch")
	}
	f := &File{sections: make(map[string][]byte, count)}
	off := headerSize
	for i := uint32(0); i < count; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("checkpoint: section %d header outside file", i)
		}
		nlen := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if nlen > len(data)-off {
			return nil, fmt.Errorf("checkpoint: section %d name outside file", i)
		}
		name := string(data[off : off+nlen])
		off += nlen
		if off+8 > len(data) {
			return nil, fmt.Errorf("checkpoint: section %q length outside file", name)
		}
		blen := binary.LittleEndian.Uint64(data[off:])
		off += 8
		if blen > uint64(len(data)-off) {
			return nil, fmt.Errorf("checkpoint: section %q body outside file", name)
		}
		f.sections[name] = data[off : off+int(blen)]
		off += int(blen)
	}
	if off != len(data) {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after sections", len(data)-off)
	}
	return f, nil
}

// Section returns a decoder over a named section, or an error if the
// checkpoint does not carry it.
func (f *File) Section(name string) (*Decoder, error) {
	body, ok := f.sections[name]
	if !ok {
		return nil, fmt.Errorf("checkpoint: missing section %q", name)
	}
	return &Decoder{buf: body}, nil
}

// FileName returns the checkpoint file path for a config key inside dir:
// one file per distinct configuration, overwritten at each checkpoint
// instant, so concurrent trials of a sweep never fight over a name.
func FileName(dir, configKey string) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%016x.ucmpckp", fnv64(fnvOffset, []byte(configKey))))
}
