package checkpoint

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Round trip of every primitive through a saved-and-loaded file.
func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	a := w.Section("alpha")
	a.U8(7)
	a.U32(0xdeadbeef)
	a.U64(1 << 60)
	a.I32(-12345)
	a.I64(math.MinInt64)
	a.F64(3.14159)
	a.F64(math.Inf(-1))
	a.Bool(true)
	a.Bool(false)
	a.Str("hello, checkpoint")
	a.Str("")
	a.Len(3)
	for i := 0; i < 3; i++ {
		a.U8(uint8(10 + i))
	}
	b := w.Section("beta")
	b.U64(42)
	// Re-requesting a section appends to the same encoder.
	w.Section("alpha").U8(99)

	path := filepath.Join(t.TempDir(), "x.ucmpckp")
	if err := w.Save(path); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.Section("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if v := d.U8(); v != 7 {
		t.Fatalf("U8: %d", v)
	}
	if v := d.U32(); v != 0xdeadbeef {
		t.Fatalf("U32: %x", v)
	}
	if v := d.U64(); v != 1<<60 {
		t.Fatalf("U64: %d", v)
	}
	if v := d.I32(); v != -12345 {
		t.Fatalf("I32: %d", v)
	}
	if v := d.I64(); v != math.MinInt64 {
		t.Fatalf("I64: %d", v)
	}
	if v := d.F64(); v != 3.14159 {
		t.Fatalf("F64: %v", v)
	}
	if v := d.F64(); !math.IsInf(v, -1) {
		t.Fatalf("F64 inf: %v", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip")
	}
	if v := d.Str(); v != "hello, checkpoint" {
		t.Fatalf("Str: %q", v)
	}
	if v := d.Str(); v != "" {
		t.Fatalf("empty Str: %q", v)
	}
	if v := d.Len(); v != 3 {
		t.Fatalf("Len: %d", v)
	}
	for i := 0; i < 3; i++ {
		if v := d.U8(); v != uint8(10+i) {
			t.Fatalf("element %d: %d", i, v)
		}
	}
	if v := d.U8(); v != 99 {
		t.Fatalf("appended U8: %d", v)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	db, err := f.Section("beta")
	if err != nil {
		t.Fatal(err)
	}
	if v := db.U64(); v != 42 || db.Err() != nil {
		t.Fatalf("beta: %d, %v", v, db.Err())
	}
	if _, err := f.Section("gamma"); err == nil {
		t.Fatal("missing section not reported")
	}
}

// Decoder errors are sticky: reading past the end poisons the decoder and
// every later read returns zero values instead of panicking.
func TestDecoderSticky(t *testing.T) {
	d := &Decoder{buf: []byte{1, 2}}
	if v := d.U8(); v != 1 {
		t.Fatalf("U8: %d", v)
	}
	if v := d.U64(); v != 0 || d.Err() == nil {
		t.Fatalf("overread did not poison: %d, %v", v, d.Err())
	}
	if v := d.U8(); v != 0 {
		t.Fatalf("poisoned decoder produced a value: %d", v)
	}
}

// A corrupted length prefix fails the decode instead of driving a giant
// allocation: Len and Str both reject counts exceeding the remaining bytes.
func TestLenBounds(t *testing.T) {
	e := &Encoder{}
	e.U32(math.MaxUint32)
	d := &Decoder{buf: e.buf}
	if n := d.Len(); n != 0 || d.Err() == nil {
		t.Fatalf("oversized Len accepted: %d, %v", n, d.Err())
	}
	d = &Decoder{buf: e.buf}
	if s := d.Str(); s != "" || d.Err() == nil {
		t.Fatalf("oversized Str accepted: %q, %v", s, d.Err())
	}
}

// Every single-byte corruption anywhere in the file — header, section
// table, body, checksums — must be rejected by Load.
func TestLoadRejectsEveryFlip(t *testing.T) {
	w := NewWriter()
	s := w.Section("state")
	for i := 0; i < 8; i++ {
		s.U64(uint64(i) * 0x0101010101010101)
	}
	s.Str("payload")
	w.Section("more").Bool(true)
	path := filepath.Join(t.TempDir(), "x.ucmpckp")
	if err := w.Save(path); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("pristine file rejected: %v", err)
	}
	for off := range orig {
		bad := append([]byte(nil), orig...)
		bad[off] ^= 0x01
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Fatalf("flip at offset %d accepted", off)
		}
	}
	// Truncations at every length, including inside the header.
	for n := 0; n < len(orig); n += 7 {
		if err := os.WriteFile(path, orig[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

// FileName is deterministic per key, distinct across keys, and stays inside
// the directory.
func TestFileName(t *testing.T) {
	a := FileName("dir", "key-a")
	b := FileName("dir", "key-b")
	if a == b {
		t.Fatal("distinct keys share a file name")
	}
	if a != FileName("dir", "key-a") {
		t.Fatal("file name not deterministic")
	}
	if filepath.Dir(a) != "dir" || !strings.HasSuffix(a, ".ucmpckp") {
		t.Fatalf("unexpected shape: %q", a)
	}
}
