// Package switchres models UCMP's switch hardware resource usage (§6, §8,
// Table 2): priority queues per egress port, global flow-aging buckets,
// source-routing table entries per ToR, and the share of switch SRAM those
// entries occupy.
//
// Queues/port and entries/ToR follow the paper's design directly
// (§6.2: queues = time slices per cycle; one table entry per destination ×
// starting slice × bucket). Bucket counts and per-group bucket averages
// come from running the actual offline path calculation on sampled source
// rows, which converges quickly because thresholds are a union across
// groups. The SRAM percentage uses a documented entry-size model (a
// match key plus the SSRR hop list) against a Tofino2-class SRAM budget;
// the paper does not publish its encoding, so absolute percentages are
// model-dependent while the scaling trend is preserved.
package switchres

import (
	"sort"

	"ucmp/internal/core"
	"ucmp/internal/routing"
	"ucmp/internal/topo"
)

// TofinoSRAMBytes is the SRAM budget of a Tofino2-class switch ASIC used
// for the percentage column.
const TofinoSRAMBytes = 100 << 20

// Usage is one row of Table 2.
type Usage struct {
	N, D            int
	QueuesPerPort   int
	Buckets         int
	EntriesPerToR   int
	SRAMPct         float64
	AvgGroupBuckets float64
	AvgPathHops     float64

	// NaiveEntriesPerToR is the row count without bucket-range collapse:
	// one entry per destination x starting slice x bucket, the layout a
	// switch without range matching would install. EntriesPerToR is the
	// collapsed count (adjacent buckets resolving to the same group entry
	// share a row).
	NaiveEntriesPerToR int

	// Exact packed-layout numbers, filled by ComputeExact from a real
	// compiled source-routing table (routing.CompiledTable): the collapsed
	// row count, the SRAM footprint of the arena-packed layout with its
	// content-deduped action and hop arrays, and the percentage of the
	// Tofino2-class budget. Zero when only the sampled model ran.
	PackedEntriesPerToR int
	PackedSRAMBytes     int
	PackedSRAMPct       float64
	Exact               bool
}

// Sampling bounds the offline computation for large fabrics.
type Sampling struct {
	// TStarts and Srcs are how many starting slices / source ToRs to
	// sample; zero means min(4, S) and min(8, N).
	TStarts int
	Srcs    int
}

// Compute fills a Table 2 row for the given fabric.
func Compute(f *topo.Fabric, alpha float64, s Sampling) Usage {
	calc := core.NewCalculator(f)
	model := core.CostModel{
		Alpha:       alpha,
		LinkBps:     float64(f.LinkBps),
		SliceMicros: f.SliceDuration.Micros(),
	}
	sched := f.Sched
	u := Usage{N: sched.N, D: sched.D, QueuesPerPort: sched.S}

	nts := s.TStarts
	if nts <= 0 {
		nts = 4
	}
	if nts > sched.S {
		nts = sched.S
	}
	nsrc := s.Srcs
	if nsrc <= 0 {
		nsrc = 8
	}
	if nsrc > sched.N {
		nsrc = sched.N
	}

	seen := make(map[int64]struct{})
	var thresholds []float64
	var bucketSum float64
	var hopSum float64
	var groups, hopsN int
	for i := 0; i < nts; i++ {
		ts := i * sched.S / nts
		for j := 0; j < nsrc; j++ {
			src := j * sched.N / nsrc
			row := calc.ComputeRow(ts, src)
			for dst, sh := range calc.GroupShapes(row, model) {
				if dst == src || len(sh.Hops) == 0 {
					continue
				}
				groups++
				bucketSum += float64(len(sh.Thresholds) + 1)
				for _, h := range sh.Hops {
					hopSum += float64(h)
					hopsN++
				}
				for _, thr := range sh.Thresholds {
					k := int64(thr)
					if _, ok := seen[k]; !ok {
						seen[k] = struct{}{}
						thresholds = append(thresholds, thr)
					}
				}
			}
		}
	}
	sort.Float64s(thresholds)
	u.Buckets = len(thresholds) + 1
	if groups > 0 {
		u.AvgGroupBuckets = bucketSum / float64(groups)
	}
	if hopsN > 0 {
		u.AvgPathHops = hopSum / float64(hopsN)
	}
	// One source-routing entry per destination × starting slice × group
	// bucket (Fig 4); the naive layout installs every global bucket
	// separately instead.
	u.EntriesPerToR = int(float64(sched.N-1) * float64(sched.S) * u.AvgGroupBuckets)
	u.NaiveEntriesPerToR = (sched.N - 1) * sched.S * u.Buckets
	u.SRAMPct = float64(u.EntriesPerToR) * entryBytes(u.AvgPathHops) / TofinoSRAMBytes * 100
	return u
}

// ExactTable reports the compiled-table footprint for one source ToR of an
// already built PathSet: naive and collapsed row counts plus the packed
// layout's SRAM bytes. On a rotation-symmetric schedule every ToR's table
// is a relabeling of the same rows, so one ToR is the whole story.
func ExactTable(ps *core.PathSet, tor int) (naive, packed, sramBytes int) {
	tbl := routing.CompileTable(ps, core.NewFlowAger(ps), tor)
	return tbl.NumNaiveRows(), tbl.NumRows(), tbl.FootprintBytes()
}

// ComputeExact is Compute with the packed columns filled from a real
// compiled table. The PathSet build is cheap on rotation-symmetric
// schedules (the canonical O(S·N) build); on others this costs the full
// brute-force build and should only be asked of small fabrics.
func ComputeExact(f *topo.Fabric, alpha float64, s Sampling) Usage {
	u := Compute(f, alpha, s)
	ps := core.BuildPathSet(f, alpha)
	ager := core.NewFlowAger(ps)
	u.Buckets = ager.NumBuckets() // exact union, not the sampled one
	u.NaiveEntriesPerToR, u.PackedEntriesPerToR, u.PackedSRAMBytes = ExactTable(ps, 0)
	u.PackedSRAMPct = float64(u.PackedSRAMBytes) / TofinoSRAMBytes * 100
	u.Exact = true
	return u
}

// entryBytes models one lookup entry: a 6-byte match key (destination ToR,
// starting slice, bucket) plus per-hop SSRR action data (next-hop ToR,
// egress port, departure slice ≈ 4 bytes each) and pointer overhead.
func entryBytes(avgHops float64) float64 { return 8 + 4*avgHops }
