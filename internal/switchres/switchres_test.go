package switchres

import (
	"testing"

	"ucmp/internal/topo"
)

func TestComputePaperScale(t *testing.T) {
	cfg := topo.PaperDefault()
	fab := topo.MustFabric(cfg, "round-robin", 1)
	u := Compute(fab, 0.5, Sampling{})
	if u.QueuesPerPort != 18 {
		t.Fatalf("queues/port %d, want 18 (Table 2, (108,6))", u.QueuesPerPort)
	}
	if u.Buckets < 5 || u.Buckets > 64 {
		t.Fatalf("buckets %d outside DSCP-feasible range", u.Buckets)
	}
	if u.AvgGroupBuckets < 1 || u.AvgGroupBuckets > 10 {
		t.Fatalf("avg group buckets %v implausible", u.AvgGroupBuckets)
	}
	// Paper: 9.5K entries; accept the right order of magnitude.
	if u.EntriesPerToR < 2_000 || u.EntriesPerToR > 40_000 {
		t.Fatalf("entries/ToR %d implausible", u.EntriesPerToR)
	}
	if u.SRAMPct <= 0 || u.SRAMPct > 5 {
		t.Fatalf("SRAM%% %v implausible", u.SRAMPct)
	}
	if u.AvgPathHops < 1 || u.AvgPathHops > 6 {
		t.Fatalf("avg hops %v implausible", u.AvgPathHops)
	}
}

// Table 2's scaling claim: resources grow slowly as (N, d) scale together.
func TestResourceScalingTrend(t *testing.T) {
	small := computeFor(t, 108, 6)
	big := computeFor(t, 324, 12)
	if big.QueuesPerPort < small.QueuesPerPort {
		t.Fatalf("queues/port shrank: %d -> %d", small.QueuesPerPort, big.QueuesPerPort)
	}
	// Queues/port ~ N/d stays in the same ballpark (18 -> 27 in the paper).
	if big.QueuesPerPort > 4*small.QueuesPerPort {
		t.Fatalf("queues/port exploded: %d -> %d", small.QueuesPerPort, big.QueuesPerPort)
	}
	if big.EntriesPerToR <= small.EntriesPerToR {
		t.Fatalf("entries did not grow: %d -> %d", small.EntriesPerToR, big.EntriesPerToR)
	}
	// Buckets grow slowly (27 -> 34 in the paper), staying under 64.
	if big.Buckets > 64 {
		t.Fatalf("buckets %d exceed DSCP budget", big.Buckets)
	}
}

func computeFor(t *testing.T, n, d int) Usage {
	t.Helper()
	cfg := topo.PaperDefault()
	cfg.NumToRs, cfg.Uplinks, cfg.HostsPerToR = n, d, d
	fab := topo.MustFabric(cfg, "round-robin", 1)
	return Compute(fab, 0.5, Sampling{TStarts: 2, Srcs: 4})
}

func TestSamplingBounds(t *testing.T) {
	cfg := topo.Scaled()
	fab := topo.MustFabric(cfg, "round-robin", 1)
	// Oversampling clamps to the fabric size without panicking.
	u := Compute(fab, 0.5, Sampling{TStarts: 1000, Srcs: 1000})
	if u.QueuesPerPort != fab.Sched.S {
		t.Fatalf("queues/port %d", u.QueuesPerPort)
	}
	if u.Buckets < 2 {
		t.Fatalf("buckets %d", u.Buckets)
	}
}
