package switchres

import (
	"testing"

	"ucmp/internal/topo"
)

func TestComputePaperScale(t *testing.T) {
	cfg := topo.PaperDefault()
	fab := topo.MustFabric(cfg, "round-robin", 1)
	u := Compute(fab, 0.5, Sampling{})
	if u.QueuesPerPort != 18 {
		t.Fatalf("queues/port %d, want 18 (Table 2, (108,6))", u.QueuesPerPort)
	}
	if u.Buckets < 5 || u.Buckets > 64 {
		t.Fatalf("buckets %d outside DSCP-feasible range", u.Buckets)
	}
	if u.AvgGroupBuckets < 1 || u.AvgGroupBuckets > 10 {
		t.Fatalf("avg group buckets %v implausible", u.AvgGroupBuckets)
	}
	// Paper: 9.5K entries; accept the right order of magnitude.
	if u.EntriesPerToR < 2_000 || u.EntriesPerToR > 40_000 {
		t.Fatalf("entries/ToR %d implausible", u.EntriesPerToR)
	}
	if u.SRAMPct <= 0 || u.SRAMPct > 5 {
		t.Fatalf("SRAM%% %v implausible", u.SRAMPct)
	}
	if u.AvgPathHops < 1 || u.AvgPathHops > 6 {
		t.Fatalf("avg hops %v implausible", u.AvgPathHops)
	}
}

// Table 2's scaling claim: resources grow slowly as (N, d) scale together.
func TestResourceScalingTrend(t *testing.T) {
	small := computeFor(t, 108, 6)
	big := computeFor(t, 324, 12)
	if big.QueuesPerPort < small.QueuesPerPort {
		t.Fatalf("queues/port shrank: %d -> %d", small.QueuesPerPort, big.QueuesPerPort)
	}
	// Queues/port ~ N/d stays in the same ballpark (18 -> 27 in the paper).
	if big.QueuesPerPort > 4*small.QueuesPerPort {
		t.Fatalf("queues/port exploded: %d -> %d", small.QueuesPerPort, big.QueuesPerPort)
	}
	if big.EntriesPerToR <= small.EntriesPerToR {
		t.Fatalf("entries did not grow: %d -> %d", small.EntriesPerToR, big.EntriesPerToR)
	}
	// Buckets grow slowly (27 -> 34 in the paper), staying under 64.
	if big.Buckets > 64 {
		t.Fatalf("buckets %d exceed DSCP budget", big.Buckets)
	}
}

func computeFor(t *testing.T, n, d int) Usage {
	t.Helper()
	cfg := topo.PaperDefault()
	cfg.NumToRs, cfg.Uplinks, cfg.HostsPerToR = n, d, d
	fab := topo.MustFabric(cfg, "round-robin", 1)
	return Compute(fab, 0.5, Sampling{TStarts: 2, Srcs: 4})
}

// TestComputeExactSymmetric: on a rotation-symmetric fabric the exact
// compiled-table columns are filled, collapse never grows the table, and the
// packed footprint stays within the naive model's estimate.
func TestComputeExactSymmetric(t *testing.T) {
	cfg := topo.Scaled()
	cfg.NumToRs, cfg.Uplinks = 64, 4
	fab := topo.MustFabric(cfg, "round-robin", 1)
	if !fab.Sched.Rotation() {
		t.Fatal("(64,4) should be rotation-symmetric")
	}
	u := ComputeExact(fab, 0.5, Sampling{})
	if !u.Exact {
		t.Fatal("ComputeExact did not fill exact columns")
	}
	if u.NaiveEntriesPerToR != (fab.Sched.N-1)*fab.Sched.S*u.Buckets {
		t.Fatalf("naive entries %d, want %d", u.NaiveEntriesPerToR, (fab.Sched.N-1)*fab.Sched.S*u.Buckets)
	}
	if u.PackedEntriesPerToR <= 0 || u.PackedEntriesPerToR > u.NaiveEntriesPerToR {
		t.Fatalf("packed entries %d outside (0, %d]", u.PackedEntriesPerToR, u.NaiveEntriesPerToR)
	}
	// Each group needs at least one row per starting slice and destination.
	if min := (fab.Sched.N - 1) * fab.Sched.S; u.PackedEntriesPerToR < min {
		t.Fatalf("packed entries %d below the %d-row floor", u.PackedEntriesPerToR, min)
	}
	if u.PackedSRAMBytes <= 0 || u.PackedSRAMPct <= 0 {
		t.Fatalf("packed SRAM not filled: %d bytes, %.3f%%", u.PackedSRAMBytes, u.PackedSRAMPct)
	}
	// The packed layout with hop dedup must not exceed the per-entry model
	// applied to the naive count.
	if model := float64(u.NaiveEntriesPerToR) * entryBytes(u.AvgPathHops); float64(u.PackedSRAMBytes) > model {
		t.Fatalf("packed bytes %d exceed naive model %.0f", u.PackedSRAMBytes, model)
	}
}

func TestSamplingBounds(t *testing.T) {
	cfg := topo.Scaled()
	fab := topo.MustFabric(cfg, "round-robin", 1)
	// Oversampling clamps to the fabric size without panicking.
	u := Compute(fab, 0.5, Sampling{TStarts: 1000, Srcs: 1000})
	if u.QueuesPerPort != fab.Sched.S {
		t.Fatalf("queues/port %d", u.QueuesPerPort)
	}
	if u.Buckets < 2 {
		t.Fatalf("buckets %d", u.Buckets)
	}
}
