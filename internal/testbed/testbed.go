// Package testbed emulates the paper's prototype testbed (§8): 8 logical
// ToRs, one logical host each with a 100 Gbps downlink, 4 uplinks of
// 10 Gbps toward an emulated circuit switch (mirroring DCN
// oversubscription), 50 us slices with 1 us reconfiguration, TCP as the
// transport, k=1 for KSP/Opera, and α=0.5 for UCMP. The foreground is a
// Memcached/Memslap-style request workload (4 KB responses); the
// background is iperf-style long-lived traffic to the neighboring rack.
package testbed

import (
	"ucmp/internal/harness"
	"ucmp/internal/netsim"
	"ucmp/internal/plot"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
	"ucmp/internal/transport"
	"ucmp/internal/workload"
)

// Config returns the §8 testbed fabric.
func Config() topo.Config {
	return topo.Config{
		NumToRs:       8,
		Uplinks:       4,
		HostsPerToR:   1,
		LinkBps:       100e9,
		UplinkBps:     10e9,
		PropDelay:     500 * sim.Nanosecond,
		SliceDuration: 50 * sim.Microsecond,
		ReconfDelay:   1 * sim.Microsecond,
		MTU:           1500,
	}
}

// Result is one routing scheme's testbed outcome.
type Result struct {
	Scheme     string
	FCTs       []sim.Time
	Probs      []float64
	P50, P99   sim.Time
	Completion float64
}

// Schemes are the four curves of Fig 13.
func Schemes() []harness.Scheme {
	return []harness.Scheme{
		{Name: "ucmp", Routing: harness.UCMP, Transport: transport.TCP},
		{Name: "ksp-1", Routing: harness.KSP1, Transport: transport.TCP},
		{Name: "vlb", Routing: harness.VLB, Transport: transport.TCP},
		{Name: "opera-1", Routing: harness.Opera1, Transport: transport.TCP},
	}
}

// Options tunes the emulated run.
type Options struct {
	Requests   int      // Memcached requests per client (default 40)
	RespBytes  int64    // response size (paper: 4 KB)
	Background int64    // iperf background flow size (default 8 MB)
	Horizon    sim.Time // default 40 ms
	Seed       int64
}

func (o *Options) defaults() {
	if o.Requests == 0 {
		o.Requests = 40
	}
	if o.RespBytes == 0 {
		o.RespBytes = 4 << 10
	}
	if o.Background == 0 {
		o.Background = 8 << 20
	}
	if o.Horizon == 0 {
		o.Horizon = 40 * sim.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Run executes the Fig 13 experiment for one scheme.
func Run(sc harness.Scheme, o Options) (*Result, error) {
	o.defaults()
	cfg := harness.SimConfig{
		Topo:      Config(),
		Routing:   sc.Routing,
		Transport: sc.Transport,
		Alpha:     0.5,
		Horizon:   o.Horizon,
		Seed:      o.Seed,
	}
	flows := buildFlows(cfg.Topo, o)
	cfg.Flows = flows
	res, err := harness.Run(cfg)
	if err != nil {
		return nil, err
	}
	fcts, probs := res.Collector.FCTCDF(true)
	out := &Result{Scheme: sc.Name, FCTs: fcts, Probs: probs}
	if len(fcts) > 0 {
		out.P50 = fcts[len(fcts)/2]
		out.P99 = fcts[len(fcts)*99/100]
	}
	fg := 0
	for _, f := range flows {
		if f.Priority {
			fg++
		}
	}
	if fg > 0 {
		out.Completion = float64(len(fcts)) / float64(fg)
	}
	return out, nil
}

// buildFlows assembles the §8 workload: host 0 runs the Memcached server,
// the other 7 hosts are Memslap clients, and every host additionally sends
// iperf background traffic to its rack neighbor.
func buildFlows(cfg topo.Config, o Options) []*netsim.Flow {
	numHosts := cfg.NumHosts()
	server := 0
	var clients []int
	for h := 0; h < numHosts; h++ {
		if h != server {
			clients = append(clients, h)
		}
	}
	// Memslap-style request gap keeps the foreground ~10% of a 10G uplink.
	gap := 200 * sim.Microsecond
	flows := workload.Memcached(clients, server, o.Requests, o.RespBytes, gap, o.Seed, 1)
	flows = append(flows, workload.Permutation(numHosts, cfg.HostsPerToR, o.Background, 100000)...)
	return flows
}

// RunAll executes every scheme and renders the Fig 13 report.
func RunAll(o Options) (*harness.Report, []*Result, error) {
	r := &harness.Report{Title: "Fig 13: testbed Memcached FCTs (TCP, 8 ToRs, oversubscribed uplinks)"}
	r.Addf("%-10s %-12s %-12s %-10s", "scheme", "p50 FCT", "p99 FCT", "complete")
	var out []*Result
	for _, sc := range Schemes() {
		res, err := Run(sc, o)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, res)
		r.Addf("%-10s %-12s %-12s %-10.2f", res.Scheme, res.P50, res.P99, res.Completion)
	}
	r.Addf("(paper ordering: UCMP < KSP < VLB/Opera for testbed memcached FCT)")
	for _, res := range out {
		r.Addf("")
		r.Addf("%s FCT CDF (us):", res.Scheme)
		xs := make([]float64, len(res.FCTs))
		for i, t := range res.FCTs {
			xs[i] = t.Micros()
		}
		for _, line := range plot.CDF(xs, res.Probs, 5, 30) {
			r.Addf("  %s", line)
		}
	}
	return r, out, nil
}
