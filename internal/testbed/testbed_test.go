package testbed

import (
	"testing"

	"ucmp/internal/harness"
	"ucmp/internal/sim"
	"ucmp/internal/transport"
)

func TestConfigShape(t *testing.T) {
	cfg := Config()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumToRs != 8 || cfg.Uplinks != 4 || cfg.HostsPerToR != 1 {
		t.Fatalf("testbed shape %+v", cfg)
	}
	if cfg.UplinkRate() != 10e9 || cfg.LinkBps != 100e9 {
		t.Fatal("oversubscription not modeled")
	}
	if cfg.DutyCycle() != 0.98 {
		t.Fatalf("duty cycle %v, want 0.98 (50us slice, 1us reconf)", cfg.DutyCycle())
	}
}

func quickOpts() Options {
	return Options{Requests: 8, Horizon: 15 * sim.Millisecond, Background: 1 << 20, Seed: 1}
}

func TestRunUCMP(t *testing.T) {
	res, err := Run(harness.Scheme{Name: "ucmp", Routing: harness.UCMP, Transport: transport.TCP}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion < 0.8 {
		t.Fatalf("completion %.2f", res.Completion)
	}
	if len(res.FCTs) != len(res.Probs) {
		t.Fatal("CDF lengths differ")
	}
	for i := 1; i < len(res.FCTs); i++ {
		if res.FCTs[i] < res.FCTs[i-1] || res.Probs[i] < res.Probs[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
	if res.P99 < res.P50 {
		t.Fatal("p99 below p50")
	}
}

func TestFig13Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scheme testbed run")
	}
	_, results, err := RunAll(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Result{}
	for _, r := range results {
		byName[r.Scheme] = r
	}
	// Paper ordering on the testbed (Fig 13): UCMP clearly beats VLB's
	// circuit-waiting latency for the memcached foreground.
	if byName["ucmp"].P50 >= byName["vlb"].P50 {
		t.Errorf("UCMP p50 %v not below VLB %v", byName["ucmp"].P50, byName["vlb"].P50)
	}
	for _, r := range results {
		if r.Completion < 0.5 {
			t.Errorf("%s completion %.2f", r.Scheme, r.Completion)
		}
	}
}
