package core

import (
	"fmt"

	"ucmp/internal/topo"
)

// Calculator performs UCMP offline path calculation (§4): n-hop
// minimum-latency paths for every (src, dst, t_start) up to Q(h_max) hops.
type Calculator struct {
	F *topo.Fabric
	// HMax is the hop-count bound Q(h_max) from Appendix B.
	HMax int
	// HSlice caps the number of hops a packet can take within one slice.
	HSlice int
	// MaxParallel caps how many tied (parallel) solutions are retained per
	// hop count (§4.3, property 2). At least 1.
	MaxParallel int

	Bound HmaxBound
}

// DefaultMaxParallel is the parallel-path retention NewCalculator starts
// with; fabriccache keys normalize an unset cap to this value.
const DefaultMaxParallel = 4

// NewCalculator derives Q(h_max) from the fabric per Appendix B and returns
// a calculator with default parallel retention of DefaultMaxParallel paths.
func NewCalculator(f *topo.Fabric) *Calculator {
	b := BoundHmax(f.Config, f.Sched)
	return &Calculator{F: f, HMax: b.Q, HSlice: b.HSlice, MaxParallel: DefaultMaxParallel, Bound: b}
}

// Tables holds the DP results of Alg. 1 for one starting slice: for every
// hop count n in [1, HMax] and every ToR pair, the minimum-latency n-hop
// path encoded as (end slice, last intermediate ToR, hops within the final
// slice, tied alternatives).
type Tables struct {
	N          int
	HMax       int
	StartSlice int64 // absolute == cyclic t_start

	end   [][]int64   // [n][src*N+dst]; -1 where no path
	last  [][]int32   // last intermediate ToR of the primary solution
	hLast [][]int8    // hops taken within the final slice
	par   [][][]int32 // tied alternative last hops (excluding primary)
	cyc   [][]int32   // end modulo the cycle length (DP-internal scratch:
	// keeps the dense next-direct lookups division-free; only valid where
	// end >= 0)
}

// Compute runs the n-hop minimum-latency path algorithm (§4.1, Alg. 1) for
// one cyclic starting slice.
//
// The recursion splits an n-hop path into sp1 (the (n-1)-hop
// minimum-latency path src->last) and sp2 (the last hop last->dst); the
// split is feasible when latency(sp1) <= latency(sp2), i.e. the packet
// reaches the last intermediate ToR before (or in) the slice of the final
// circuit. Two refinements over the paper's pseudocode, noted in DESIGN.md:
//
//   - instead of discarding an intermediate whose earliest last-hop circuit
//     precedes the packet's arrival, we advance to that circuit's next
//     appearance (a strictly larger search space, same minimality);
//   - hops within a single slice are capped at HSlice so every produced
//     path is physically traversable (Appendix B's h_slice).
func (c *Calculator) Compute(tstart int) *Tables {
	return c.ComputeInto(tstart, nil)
}

// ComputeInto is Compute reusing a scratch Tables from a previous call: the
// HMax·N² DP arrays (and the backing arrays of the tie lists) are recycled
// instead of reallocated per starting slice, which is what makes the
// PathSet build allocation-lean. Passing nil allocates fresh tables. The
// returned Tables aliases the scratch; the caller must extract everything
// it needs (e.g. via Group) before the next ComputeInto on the same
// scratch.
func (c *Calculator) ComputeInto(tstart int, t *Tables) *Tables {
	n := c.F.Sched.N
	if t == nil || t.N != n || t.HMax != c.HMax {
		t = &Tables{N: n, HMax: c.HMax}
		t.end = make([][]int64, c.HMax+1)
		t.last = make([][]int32, c.HMax+1)
		t.hLast = make([][]int8, c.HMax+1)
		t.par = make([][][]int32, c.HMax+1)
		t.cyc = make([][]int32, c.HMax+1)
		for h := 1; h <= c.HMax; h++ {
			t.end[h] = make([]int64, n*n)
			t.last[h] = make([]int32, n*n)
			t.hLast[h] = make([]int8, n*n)
			t.par[h] = make([][]int32, n*n)
			t.cyc[h] = make([]int32, n*n)
		}
	}
	t.StartSlice = int64(tstart)
	sched := c.F.Sched

	for h := 1; h <= c.HMax; h++ {
		for i := range t.end[h] {
			t.end[h][i] = -1
			t.last[h][i] = -1
		}
	}

	// n = 1: direct circuits (Fig 3b).
	s := sched.S
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			idx := src*n + dst
			e := sched.NextDirect(src, dst, t.StartSlice)
			t.end[1][idx] = e
			t.cyc[1][idx] = int32(e % int64(s))
			t.hLast[1][idx] = 1
		}
	}

	// n >= 2: extend the (n-1)-hop minimum-latency paths by one hop.
	nxt := sched.DenseNext()
	for h := 2; h <= c.HMax; h++ {
		if nxt != nil {
			c.extendDense(t, h, nxt)
		} else {
			c.extend(t, h)
		}
	}
	return t
}

// extend computes DP level h from level h-1 through NextDirect — the
// fallback for schedules past the dense next-table memory budget.
func (c *Calculator) extend(t *Tables, h int) {
	n := t.N
	sched := c.F.Sched
	prevEnd := t.end[h-1]
	prevHL := t.hLast[h-1]
	curEnd := t.end[h]
	curLast := t.last[h]
	curHL := t.hLast[h]
	for src := 0; src < n; src++ {
		row := src * n
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			bestEnd := int64(-1)
			var bestLast int32 = -1
			var bestHL int8
			// Reuse the tie list's backing array from the previous
			// starting slice computed on this scratch.
			ties := t.par[h][row+dst][:0]
			// Intermediates are scanned in source-relative order
			// (src+1, src+2, ... mod n) so that tie selection — both the
			// primary pick and which ties survive the MaxParallel cap —
			// is equivariant under ToR rotation: on a rotation-symmetric
			// schedule the DP row of src is then exactly the rotated row
			// of ToR 0, which the symmetric PathSet build relies on.
			for k := 1; k < n; k++ {
				mid := src + k
				if mid >= n {
					mid -= n
				}
				if mid == dst {
					continue
				}
				e1 := prevEnd[row+mid]
				if e1 < 0 {
					continue
				}
				// Earliest last-hop circuit at or after arrival.
				e2 := sched.NextDirect(mid, dst, e1)
				hl := int8(1)
				if e2 == e1 {
					if int(prevHL[row+mid]) >= c.HSlice {
						// Slice hop budget exhausted: wait for the next
						// appearance of the circuit.
						e2 = sched.NextDirect(mid, dst, e1+1)
					} else {
						hl = prevHL[row+mid] + 1
					}
				}
				switch {
				case bestEnd < 0 || e2 < bestEnd:
					bestEnd, bestLast, bestHL = e2, int32(mid), hl
					ties = ties[:0]
				case e2 == bestEnd:
					if hl < bestHL {
						// Prefer the variant leaving slack in the final
						// slice; demote the old primary to a tie.
						ties = appendTie(ties, bestLast, c.MaxParallel-1)
						bestLast, bestHL = int32(mid), hl
					} else {
						ties = appendTie(ties, int32(mid), c.MaxParallel-1)
					}
				}
			}
			idx := row + dst
			curEnd[idx] = bestEnd
			curLast[idx] = bestLast
			curHL[idx] = bestHL
			t.par[h][idx] = ties
		}
	}
}

// extendDense is extend with the dense next-direct table indexed directly
// and the mid/dst loops interchanged: arrival slices are tracked in cyclic
// space (t.cyc), so the innermost loop — executed O(HMax·N³) times per
// starting slice — performs no integer division and no function call, and
// the per-intermediate arrival state (e1, its cycle position, the
// slice-budget test) is hoisted out of it. Minimization state lives in the
// cur* output rows; for every dst the intermediates arrive in the same
// source-relative order as in extend, so ties break identically.
func (c *Calculator) extendDense(t *Tables, h int, nxt []int32) {
	n := t.N
	s := c.F.Sched.S
	prevEnd := t.end[h-1]
	prevCyc := t.cyc[h-1]
	prevHL := t.hLast[h-1]
	curEnd := t.end[h]
	curCyc := t.cyc[h]
	curLast := t.last[h]
	curHL := t.hLast[h]
	ns := n * s
	parH := t.par[h]
	maxTies := c.MaxParallel - 1
	for src := 0; src < n; src++ {
		row := src * n
		// Reuse the tie lists' backing arrays from the previous starting
		// slice computed on this scratch.
		for dst := 0; dst < n; dst++ {
			parH[row+dst] = parH[row+dst][:0]
		}
		// Source-relative intermediate order, as in extend: rotation
		// equivariance of tie selection.
		for k := 1; k < n; k++ {
			mid := src + k
			if mid >= n {
				mid -= n
			}
			e1 := prevEnd[row+mid]
			if e1 < 0 {
				continue
			}
			c1 := int(prevCyc[row+mid])
			e1base := e1 - int64(c1)
			hlSame := prevHL[row+mid] + 1
			exhausted := int(prevHL[row+mid]) >= c.HSlice
			// Coordinates of "strictly after e1" for the exhausted case.
			c2 := c1 + 1
			b2 := e1base
			if c2 == s {
				c2 = 0
				b2 = e1 + 1
			}
			base := mid * ns
			for dst, off := 0, base+c1; dst < n; dst, off = dst+1, off+s {
				if dst == src || dst == mid {
					continue
				}
				// Earliest last-hop circuit at or after arrival: one load
				// from the dense table, in cyclic coordinates.
				nx := int64(nxt[off])
				if nx < 0 {
					panic("core: pair never connected in schedule")
				}
				e2 := e1base + nx
				hl := int8(1)
				if e2 == e1 {
					if exhausted {
						// Slice hop budget exhausted: wait for the next
						// appearance of the circuit, strictly after e1.
						e2 = b2 + int64(nxt[base+dst*s+c2])
					} else {
						hl = hlSame
					}
				}
				idx := row + dst
				be := curEnd[idx]
				switch {
				case be < 0 || e2 < be:
					curEnd[idx] = e2
					curLast[idx] = int32(mid)
					curHL[idx] = hl
					parH[idx] = parH[idx][:0]
				case e2 == be:
					if hl < curHL[idx] {
						// Prefer the variant leaving slack in the final
						// slice; demote the old primary to a tie.
						parH[idx] = appendTie(parH[idx], curLast[idx], maxTies)
						curLast[idx] = int32(mid)
						curHL[idx] = hl
					} else {
						parH[idx] = appendTie(parH[idx], int32(mid), maxTies)
					}
				}
			}
		}
		for dst := 0; dst < n; dst++ {
			if e := curEnd[row+dst]; e >= 0 {
				curCyc[row+dst] = int32(e % int64(s))
			}
		}
	}
}

func appendTie(ties []int32, v int32, max int) []int32 {
	if len(ties) >= max {
		return ties
	}
	for _, x := range ties {
		if x == v {
			return ties
		}
	}
	return append(ties, v)
}

// EndSlice returns the absolute end slice of the n-hop minimum-latency path
// src->dst, or -1 if none exists.
func (t *Tables) EndSlice(n, src, dst int) int64 { return t.end[n][src*t.N+dst] }

// LatencySlices returns the Eqn. 1 latency of the n-hop minimum-latency
// path, or -1 if none exists.
func (t *Tables) LatencySlices(n, src, dst int) int64 {
	e := t.end[n][src*t.N+dst]
	if e < 0 {
		return -1
	}
	return e - t.StartSlice + 1
}

// Path reconstructs the n-hop minimum-latency path src->dst, or nil if none
// exists.
func (t *Tables) Path(n, src, dst int) *Path {
	if n < 1 || n > t.HMax || t.end[n][src*t.N+dst] < 0 {
		return nil
	}
	p := &Path{Src: src, Dst: dst, StartSlice: t.StartSlice, Hops: make([]Hop, n)}
	if !t.fill(p.Hops, n, src, dst) {
		return nil
	}
	return p
}

// fill writes the hops of the n-hop primary path into hops[0:n], walking
// the `last` links back from dst (iterative: reconstruction runs once per
// retained path, so it must not pay call overhead per hop).
func (t *Tables) fill(hops []Hop, n, src, dst int) bool {
	for ; n >= 1; n-- {
		idx := src*t.N + dst
		e := t.end[n][idx]
		if e < 0 {
			return false
		}
		hops[n-1] = Hop{To: dst, Slice: e}
		if n == 1 {
			return true
		}
		mid := int(t.last[n][idx])
		if mid < 0 {
			return false
		}
		dst = mid
	}
	return false
}

// ParallelPaths returns every retained n-hop minimum-latency path (the
// primary plus ties) for src->dst.
func (t *Tables) ParallelPaths(n, src, dst int) []*Path {
	return t.parallelPathsInto(&groupArena{}, n, src, dst)
}

// parallelPathsInto is ParallelPaths with paths, hop arrays, and the
// pointer slice carved from the arena.
func (t *Tables) parallelPathsInto(a *groupArena, n, src, dst int) []*Path {
	if n < 1 || n > t.HMax {
		return nil
	}
	idx := src*t.N + dst
	e := t.end[n][idx]
	if e < 0 {
		return nil
	}
	var ties []int32
	if n >= 2 {
		ties = t.par[n][idx]
	}
	out := a.ptrs.take(1 + len(ties))[:0]
	p := a.paths.one()
	p.Src, p.Dst, p.StartSlice = src, dst, t.StartSlice
	p.Hops = a.hops.take(n)
	if !t.fill(p.Hops, n, src, dst) {
		return nil
	}
	out = append(out, p)
	for _, alt := range ties {
		q := a.paths.one()
		q.Src, q.Dst, q.StartSlice = src, dst, t.StartSlice
		q.Hops = a.hops.take(n)
		q.Hops[n-1] = Hop{To: dst, Slice: e}
		if t.fill(q.Hops[:n-1], n-1, src, int(alt)) {
			out = append(out, q)
		}
	}
	return out
}

// sanity check used by tests: the DP tables must describe valid paths.
func (t *Tables) validate() error {
	for n := 1; n <= t.HMax; n++ {
		for src := 0; src < t.N; src++ {
			for dst := 0; dst < t.N; dst++ {
				if src == dst {
					continue
				}
				p := t.Path(n, src, dst)
				if p == nil {
					return fmt.Errorf("core: missing %d-hop path %d->%d", n, src, dst)
				}
				if err := p.Validate(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
