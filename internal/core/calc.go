package core

import (
	"fmt"

	"ucmp/internal/topo"
)

// Calculator performs UCMP offline path calculation (§4): n-hop
// minimum-latency paths for every (src, dst, t_start) up to Q(h_max) hops.
type Calculator struct {
	F *topo.Fabric
	// HMax is the hop-count bound Q(h_max) from Appendix B.
	HMax int
	// HSlice caps the number of hops a packet can take within one slice.
	HSlice int
	// MaxParallel caps how many tied (parallel) solutions are retained per
	// hop count (§4.3, property 2). At least 1.
	MaxParallel int

	Bound HmaxBound
}

// NewCalculator derives Q(h_max) from the fabric per Appendix B and returns
// a calculator with default parallel retention of 4 paths.
func NewCalculator(f *topo.Fabric) *Calculator {
	b := BoundHmax(f.Config, f.Sched)
	return &Calculator{F: f, HMax: b.Q, HSlice: b.HSlice, MaxParallel: 4, Bound: b}
}

// Tables holds the DP results of Alg. 1 for one starting slice: for every
// hop count n in [1, HMax] and every ToR pair, the minimum-latency n-hop
// path encoded as (end slice, last intermediate ToR, hops within the final
// slice, tied alternatives).
type Tables struct {
	N          int
	HMax       int
	StartSlice int64 // absolute == cyclic t_start

	end   [][]int64   // [n][src*N+dst]; -1 where no path
	last  [][]int32   // last intermediate ToR of the primary solution
	hLast [][]int8    // hops taken within the final slice
	par   [][][]int32 // tied alternative last hops (excluding primary)
}

// Compute runs the n-hop minimum-latency path algorithm (§4.1, Alg. 1) for
// one cyclic starting slice.
//
// The recursion splits an n-hop path into sp1 (the (n-1)-hop
// minimum-latency path src->last) and sp2 (the last hop last->dst); the
// split is feasible when latency(sp1) <= latency(sp2), i.e. the packet
// reaches the last intermediate ToR before (or in) the slice of the final
// circuit. Two refinements over the paper's pseudocode, noted in DESIGN.md:
//
//   - instead of discarding an intermediate whose earliest last-hop circuit
//     precedes the packet's arrival, we advance to that circuit's next
//     appearance (a strictly larger search space, same minimality);
//   - hops within a single slice are capped at HSlice so every produced
//     path is physically traversable (Appendix B's h_slice).
func (c *Calculator) Compute(tstart int) *Tables {
	n := c.F.Sched.N
	t := &Tables{N: n, HMax: c.HMax, StartSlice: int64(tstart)}
	t.end = make([][]int64, c.HMax+1)
	t.last = make([][]int32, c.HMax+1)
	t.hLast = make([][]int8, c.HMax+1)
	t.par = make([][][]int32, c.HMax+1)
	sched := c.F.Sched

	for h := 1; h <= c.HMax; h++ {
		t.end[h] = make([]int64, n*n)
		t.last[h] = make([]int32, n*n)
		t.hLast[h] = make([]int8, n*n)
		t.par[h] = make([][]int32, n*n)
		for i := range t.end[h] {
			t.end[h][i] = -1
			t.last[h][i] = -1
		}
	}

	// n = 1: direct circuits (Fig 3b).
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			idx := src*n + dst
			t.end[1][idx] = sched.NextDirect(src, dst, t.StartSlice)
			t.hLast[1][idx] = 1
		}
	}

	// n >= 2: extend the (n-1)-hop minimum-latency paths by one hop.
	for h := 2; h <= c.HMax; h++ {
		prevEnd := t.end[h-1]
		prevHL := t.hLast[h-1]
		curEnd := t.end[h]
		curLast := t.last[h]
		curHL := t.hLast[h]
		for src := 0; src < n; src++ {
			row := src * n
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				bestEnd := int64(-1)
				var bestLast int32 = -1
				var bestHL int8
				var ties []int32
				for mid := 0; mid < n; mid++ {
					if mid == src || mid == dst {
						continue
					}
					e1 := prevEnd[row+mid]
					if e1 < 0 {
						continue
					}
					// Earliest last-hop circuit at or after arrival.
					e2 := sched.NextDirect(mid, dst, e1)
					hl := int8(1)
					if e2 == e1 {
						if int(prevHL[row+mid]) >= c.HSlice {
							// Slice hop budget exhausted: wait for the next
							// appearance of the circuit.
							e2 = sched.NextDirect(mid, dst, e1+1)
						} else {
							hl = prevHL[row+mid] + 1
						}
					}
					switch {
					case bestEnd < 0 || e2 < bestEnd:
						bestEnd, bestLast, bestHL = e2, int32(mid), hl
						ties = ties[:0]
					case e2 == bestEnd:
						if hl < bestHL {
							// Prefer the variant leaving slack in the final
							// slice; demote the old primary to a tie.
							ties = appendTie(ties, bestLast, c.MaxParallel-1)
							bestLast, bestHL = int32(mid), hl
						} else {
							ties = appendTie(ties, int32(mid), c.MaxParallel-1)
						}
					}
				}
				idx := row + dst
				curEnd[idx] = bestEnd
				curLast[idx] = bestLast
				curHL[idx] = bestHL
				if len(ties) > 0 {
					t.par[h][idx] = ties
				}
			}
		}
	}
	return t
}

func appendTie(ties []int32, v int32, max int) []int32 {
	if len(ties) >= max {
		return ties
	}
	for _, x := range ties {
		if x == v {
			return ties
		}
	}
	return append(ties, v)
}

// EndSlice returns the absolute end slice of the n-hop minimum-latency path
// src->dst, or -1 if none exists.
func (t *Tables) EndSlice(n, src, dst int) int64 { return t.end[n][src*t.N+dst] }

// LatencySlices returns the Eqn. 1 latency of the n-hop minimum-latency
// path, or -1 if none exists.
func (t *Tables) LatencySlices(n, src, dst int) int64 {
	e := t.end[n][src*t.N+dst]
	if e < 0 {
		return -1
	}
	return e - t.StartSlice + 1
}

// Path reconstructs the n-hop minimum-latency path src->dst, or nil if none
// exists.
func (t *Tables) Path(n, src, dst int) *Path {
	if n < 1 || n > t.HMax || t.end[n][src*t.N+dst] < 0 {
		return nil
	}
	p := &Path{Src: src, Dst: dst, StartSlice: t.StartSlice, Hops: make([]Hop, n)}
	if !t.fill(p.Hops, n, src, dst) {
		return nil
	}
	return p
}

// fill writes the hops of the n-hop primary path into hops[0:n].
func (t *Tables) fill(hops []Hop, n, src, dst int) bool {
	idx := src*t.N + dst
	e := t.end[n][idx]
	if e < 0 {
		return false
	}
	hops[n-1] = Hop{To: dst, Slice: e}
	if n == 1 {
		return true
	}
	mid := int(t.last[n][idx])
	if mid < 0 {
		return false
	}
	return t.fill(hops[:n-1], n-1, src, mid)
}

// ParallelPaths returns every retained n-hop minimum-latency path (the
// primary plus ties) for src->dst.
func (t *Tables) ParallelPaths(n, src, dst int) []*Path {
	primary := t.Path(n, src, dst)
	if primary == nil {
		return nil
	}
	paths := []*Path{primary}
	if n < 2 {
		return paths
	}
	idx := src*t.N + dst
	e := t.end[n][idx]
	for _, alt := range t.par[n][idx] {
		p := &Path{Src: src, Dst: dst, StartSlice: t.StartSlice, Hops: make([]Hop, n)}
		p.Hops[n-1] = Hop{To: dst, Slice: e}
		if t.fill(p.Hops[:n-1], n-1, src, int(alt)) {
			paths = append(paths, p)
		}
	}
	return paths
}

// sanity check used by tests: the DP tables must describe valid paths.
func (t *Tables) validate() error {
	for n := 1; n <= t.HMax; n++ {
		for src := 0; src < t.N; src++ {
			for dst := 0; dst < t.N; dst++ {
				if src == dst {
					continue
				}
				p := t.Path(n, src, dst)
				if p == nil {
					return fmt.Errorf("core: missing %d-hop path %d->%d", n, src, dst)
				}
				if err := p.Validate(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
