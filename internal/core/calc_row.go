package core

// RowTables is the single-source variant of the Alg. 1 DP: the recursion
// p^n(src, dst) only consults p^(n-1)(src, ·), so one source's row can be
// computed in O(h_max · N²) without materializing the full N² table. This
// is what makes switch-resource estimation (Table 2) tractable at 1024
// ToRs — and, with tie lists retained, what the rotation-symmetric PathSet
// build runs per starting slice: one canonical source row stands in for all
// N rotated sources.
type RowTables struct {
	N          int
	HMax       int
	Src        int
	StartSlice int64

	end   [][]int64 // [n][dst]
	last  [][]int32
	hLast [][]int8
	par   [][][]int32 // tied alternative last hops (excluding primary)
}

// ComputeRow runs the DP for a single source ToR and starting slice.
func (c *Calculator) ComputeRow(tstart, src int) *RowTables {
	return c.ComputeRowInto(tstart, src, nil)
}

// ComputeRowInto is ComputeRow reusing a scratch RowTables from a previous
// call, mirroring ComputeInto: the DP arrays and tie-list backing arrays
// are recycled across starting slices. Passing nil allocates fresh tables.
// The returned tables alias the scratch; callers must extract what they
// need before the next ComputeRowInto on the same scratch.
//
// The intermediate scan order, the slice hop budget, and the tie selection
// (primary pick, demotions, MaxParallel cap) replicate extend exactly, so a
// row's paths — parallels included — are identical to the corresponding row
// of the full Tables.
func (c *Calculator) ComputeRowInto(tstart, src int, t *RowTables) *RowTables {
	n := c.F.Sched.N
	sched := c.F.Sched
	if t == nil || t.N != n || t.HMax != c.HMax {
		t = &RowTables{N: n, HMax: c.HMax}
		t.end = make([][]int64, c.HMax+1)
		t.last = make([][]int32, c.HMax+1)
		t.hLast = make([][]int8, c.HMax+1)
		t.par = make([][][]int32, c.HMax+1)
		for h := 1; h <= c.HMax; h++ {
			t.end[h] = make([]int64, n)
			t.last[h] = make([]int32, n)
			t.hLast[h] = make([]int8, n)
			t.par[h] = make([][]int32, n)
		}
	}
	t.Src = src
	t.StartSlice = int64(tstart)
	for h := 1; h <= c.HMax; h++ {
		for i := range t.end[h] {
			t.end[h][i] = -1
			t.last[h][i] = -1
			t.hLast[h][i] = 0
		}
	}
	for dst := 0; dst < n; dst++ {
		if dst == src {
			continue
		}
		t.end[1][dst] = sched.NextDirect(src, dst, t.StartSlice)
		t.hLast[1][dst] = 1
	}
	for h := 2; h <= c.HMax; h++ {
		prevEnd := t.end[h-1]
		prevHL := t.hLast[h-1]
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			bestEnd := int64(-1)
			var bestLast int32 = -1
			var bestHL int8
			ties := t.par[h][dst][:0]
			// Source-relative intermediate order, as in extend: rotation
			// equivariance of tie selection.
			for k := 1; k < n; k++ {
				mid := src + k
				if mid >= n {
					mid -= n
				}
				if mid == dst {
					continue
				}
				e1 := prevEnd[mid]
				if e1 < 0 {
					continue
				}
				e2 := sched.NextDirect(mid, dst, e1)
				hl := int8(1)
				if e2 == e1 {
					if int(prevHL[mid]) >= c.HSlice {
						e2 = sched.NextDirect(mid, dst, e1+1)
					} else {
						hl = prevHL[mid] + 1
					}
				}
				switch {
				case bestEnd < 0 || e2 < bestEnd:
					bestEnd, bestLast, bestHL = e2, int32(mid), hl
					ties = ties[:0]
				case e2 == bestEnd:
					if hl < bestHL {
						// Prefer the variant leaving slack in the final
						// slice; demote the old primary to a tie.
						ties = appendTie(ties, bestLast, c.MaxParallel-1)
						bestLast, bestHL = int32(mid), hl
					} else {
						ties = appendTie(ties, int32(mid), c.MaxParallel-1)
					}
				}
			}
			t.end[h][dst] = bestEnd
			t.last[h][dst] = bestLast
			t.hLast[h][dst] = bestHL
			t.par[h][dst] = ties
		}
	}
	return t
}

// fill writes the hops of the n-hop primary path src->dst into hops[0:n],
// walking the last links back from dst (the single-source counterpart of
// Tables.fill: every prefix src->mid also lives in this row).
func (t *RowTables) fill(hops []Hop, n, dst int) bool {
	for ; n >= 1; n-- {
		e := t.end[n][dst]
		if e < 0 {
			return false
		}
		hops[n-1] = Hop{To: dst, Slice: e}
		if n == 1 {
			return true
		}
		mid := int(t.last[n][dst])
		if mid < 0 {
			return false
		}
		dst = mid
	}
	return false
}

// parallelPathsInto returns every retained n-hop minimum-latency path (the
// primary plus ties) for src->dst, with all memory carved from the arena.
func (t *RowTables) parallelPathsInto(a *groupArena, n, dst int) []*Path {
	if n < 1 || n > t.HMax {
		return nil
	}
	e := t.end[n][dst]
	if e < 0 {
		return nil
	}
	var ties []int32
	if n >= 2 {
		ties = t.par[n][dst]
	}
	out := a.ptrs.take(1 + len(ties))[:0]
	p := a.paths.one()
	p.Src, p.Dst, p.StartSlice = t.Src, dst, t.StartSlice
	p.Hops = a.hops.take(n)
	if !t.fill(p.Hops, n, dst) {
		return nil
	}
	out = append(out, p)
	for _, alt := range ties {
		q := a.paths.one()
		q.Src, q.Dst, q.StartSlice = t.Src, dst, t.StartSlice
		q.Hops = a.hops.take(n)
		q.Hops[n-1] = Hop{To: dst, Slice: e}
		if t.fill(q.Hops[:n-1], n-1, int(alt)) {
			out = append(out, q)
		}
	}
	return out
}

// groupFromRow extracts the UCMP group for one destination of the row: the
// single-source counterpart of groupInto, with identical property-3
// filtering, exact arena sizing, and bucket construction.
func (c *Calculator) groupFromRow(a *groupArena, t *RowTables, dst int, m CostModel) *Group {
	g := a.groups.one()
	g.Src, g.Dst, g.StartSlice = t.Src, dst, int(t.StartSlice)
	cnt := 0
	best := int64(1) << 62
	for n := 1; n <= t.HMax; n++ {
		e := t.end[n][dst]
		if e < 0 {
			continue
		}
		lat := e - t.StartSlice + 1
		if lat >= best {
			continue
		}
		cnt++
		best = lat
		if lat == 1 {
			break
		}
	}
	g.Entries = a.entries.take(cnt)[:0]
	best = int64(1) << 62
	for n := 1; n <= t.HMax; n++ {
		e := t.end[n][dst]
		if e < 0 {
			continue
		}
		lat := e - t.StartSlice + 1
		if lat >= best {
			continue
		}
		g.Entries = append(g.Entries, Entry{
			HopCount:      n,
			LatencySlices: lat,
			Paths:         t.parallelPathsInto(a, n, dst),
		})
		best = lat
		if lat == 1 {
			break // global minimum latency: nothing to the right qualifies
		}
	}
	g.hull = a.ints.take(len(g.Entries))[:0]
	if len(g.Entries) > 1 {
		g.thrFree = a.floats.take(len(g.Entries) - 1)[:0]
	}
	g.BuildBuckets(m)
	return g
}

// GroupShape summarizes one group's bucket structure without materializing
// paths: the hull (hop, latency) points and the α-free thresholds.
type GroupShape struct {
	Hops       []int
	Latencies  []int64
	Thresholds []float64
}

// GroupShapes extracts the property-3-filtered, hull-reduced group shape
// for every destination of the row.
func (c *Calculator) GroupShapes(t *RowTables, m CostModel) []GroupShape {
	out := make([]GroupShape, t.N)
	for dst := 0; dst < t.N; dst++ {
		if dst == t.Src {
			continue
		}
		g := Group{Src: t.Src, Dst: dst, StartSlice: int(t.StartSlice)}
		best := int64(1) << 62
		for h := 1; h <= t.HMax; h++ {
			e := t.end[h][dst]
			if e < 0 {
				continue
			}
			lat := e - t.StartSlice + 1
			if lat >= best {
				continue
			}
			g.Entries = append(g.Entries, Entry{HopCount: h, LatencySlices: lat})
			best = lat
			if lat == 1 {
				break
			}
		}
		g.BuildBuckets(m)
		sh := GroupShape{}
		for _, hi := range g.hull {
			sh.Hops = append(sh.Hops, g.Entries[hi].HopCount)
			sh.Latencies = append(sh.Latencies, g.Entries[hi].LatencySlices)
		}
		sh.Thresholds = append(sh.Thresholds, g.thrFree...)
		out[dst] = sh
	}
	return out
}
