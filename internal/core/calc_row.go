package core

// RowTables is the single-source variant of the Alg. 1 DP: the recursion
// p^n(src, dst) only consults p^(n-1)(src, ·), so one source's row can be
// computed in O(h_max · N²) without materializing the full N² table. This
// is what makes switch-resource estimation (Table 2) tractable at 1024
// ToRs, where the full PathSet would be O(N³) per starting slice.
type RowTables struct {
	N          int
	HMax       int
	Src        int
	StartSlice int64

	end   [][]int64 // [n][dst]
	last  [][]int32
	hLast [][]int8
}

// ComputeRow runs the DP for a single source ToR and starting slice.
func (c *Calculator) ComputeRow(tstart, src int) *RowTables {
	n := c.F.Sched.N
	sched := c.F.Sched
	t := &RowTables{N: n, HMax: c.HMax, Src: src, StartSlice: int64(tstart)}
	t.end = make([][]int64, c.HMax+1)
	t.last = make([][]int32, c.HMax+1)
	t.hLast = make([][]int8, c.HMax+1)
	for h := 1; h <= c.HMax; h++ {
		t.end[h] = make([]int64, n)
		t.last[h] = make([]int32, n)
		t.hLast[h] = make([]int8, n)
		for i := range t.end[h] {
			t.end[h][i] = -1
			t.last[h][i] = -1
		}
	}
	for dst := 0; dst < n; dst++ {
		if dst == src {
			continue
		}
		t.end[1][dst] = sched.NextDirect(src, dst, t.StartSlice)
		t.hLast[1][dst] = 1
	}
	for h := 2; h <= c.HMax; h++ {
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			bestEnd := int64(-1)
			var bestLast int32 = -1
			var bestHL int8
			for mid := 0; mid < n; mid++ {
				if mid == src || mid == dst {
					continue
				}
				e1 := t.end[h-1][mid]
				if e1 < 0 {
					continue
				}
				e2 := sched.NextDirect(mid, dst, e1)
				hl := int8(1)
				if e2 == e1 {
					if int(t.hLast[h-1][mid]) >= c.HSlice {
						e2 = sched.NextDirect(mid, dst, e1+1)
					} else {
						hl = t.hLast[h-1][mid] + 1
					}
				}
				if bestEnd < 0 || e2 < bestEnd || (e2 == bestEnd && hl < bestHL) {
					bestEnd, bestLast, bestHL = e2, int32(mid), hl
				}
			}
			t.end[h][dst] = bestEnd
			t.last[h][dst] = bestLast
			t.hLast[h][dst] = bestHL
		}
	}
	return t
}

// GroupShape summarizes one group's bucket structure without materializing
// paths: the hull (hop, latency) points and the α-free thresholds.
type GroupShape struct {
	Hops       []int
	Latencies  []int64
	Thresholds []float64
}

// GroupShapes extracts the property-3-filtered, hull-reduced group shape
// for every destination of the row.
func (c *Calculator) GroupShapes(t *RowTables, m CostModel) []GroupShape {
	out := make([]GroupShape, t.N)
	for dst := 0; dst < t.N; dst++ {
		if dst == t.Src {
			continue
		}
		g := Group{Src: t.Src, Dst: dst, StartSlice: int(t.StartSlice)}
		best := int64(1) << 62
		for h := 1; h <= t.HMax; h++ {
			e := t.end[h][dst]
			if e < 0 {
				continue
			}
			lat := e - t.StartSlice + 1
			if lat >= best {
				continue
			}
			g.Entries = append(g.Entries, Entry{HopCount: h, LatencySlices: lat})
			best = lat
			if lat == 1 {
				break
			}
		}
		g.BuildBuckets(m)
		sh := GroupShape{}
		for _, hi := range g.hull {
			sh.Hops = append(sh.Hops, g.Entries[hi].HopCount)
			sh.Latencies = append(sh.Latencies, g.Entries[hi].LatencySlices)
		}
		sh.Thresholds = append(sh.Thresholds, g.thrFree...)
		out[dst] = sh
	}
	return out
}
