package core

// arena hands out subslices of large pre-allocated chunks, batching the
// many small allocations of group extraction (Group, Entry, Path, Hop,
// hull, threshold slices) into a few big ones. Handed-out slices are capped
// with three-index slicing, so a caller appending past the requested length
// reallocates instead of overwriting a neighbor. Chunks are never reused:
// everything taken stays valid for the lifetime of the objects that
// reference it.
type arena[T any] struct {
	chunk []T
	size  int // preferred chunk length
}

// take returns a zeroed slice of length n carved from the current chunk,
// starting a new chunk when the remainder is too small.
func (a *arena[T]) take(n int) []T {
	if cap(a.chunk)-len(a.chunk) < n {
		c := a.size
		if c < n {
			c = n
		}
		a.chunk = make([]T, 0, c)
	}
	l := len(a.chunk)
	a.chunk = a.chunk[:l+n]
	return a.chunk[l : l+n : l+n]
}

// one returns a pointer to a single zeroed element.
func (a *arena[T]) one() *T { return &a.take(1)[0] }

// groupArena pools every allocation made while extracting the UCMP groups
// of one starting slice (one per worker invocation of groupRow).
type groupArena struct {
	groups  arena[Group]
	entries arena[Entry]
	paths   arena[Path]
	ptrs    arena[*Path]
	hops    arena[Hop]
	ints    arena[int]
	floats  arena[float64]
}

// newGroupArena sizes the chunks for a fabric with n ToRs: one chunk of
// each kind roughly covers a full n² group row at the paper's typical ~3
// paths and ~2.5 entries per group, so a row costs O(1) chunk allocations.
func newGroupArena(n int) *groupArena {
	return newScaledArena(n * n)
}

// newRowArena sizes the chunks for a single source row (n destinations):
// the unit of the symmetric canonical build, which extracts O(S·N) groups
// instead of O(S·N²).
func newRowArena(n int) *groupArena {
	return newScaledArena(n)
}

func newScaledArena(units int) *groupArena {
	return &groupArena{
		groups:  arena[Group]{size: units},
		entries: arena[Entry]{size: 3 * units},
		paths:   arena[Path]{size: 4 * units},
		ptrs:    arena[*Path]{size: 4 * units},
		hops:    arena[Hop]{size: 8 * units},
		ints:    arena[int]{size: 3 * units},
		floats:  arena[float64]{size: 2 * units},
	}
}
