package core

import (
	"reflect"
	"testing"

	"ucmp/internal/topo"
)

// TestBuildPathSetParallelDeterminism checks the tentpole invariant of the
// parallel offline build: any worker count produces exactly the serial
// result — every group, the global threshold list, and the derived backup
// statistics — for all three schedule generators.
func TestBuildPathSetParallelDeterminism(t *testing.T) {
	for _, kind := range []string{"round-robin", "random", "opera"} {
		t.Run(kind, func(t *testing.T) {
			fab := topo.MustFabric(topo.Scaled(), kind, 1)
			serial := BuildPathSetOpts(fab, 0.5, BuildOptions{Workers: 1})
			par := BuildPathSetOpts(fab, 0.5, BuildOptions{Workers: 4})
			n := fab.Sched.N
			for ts := 0; ts < fab.Sched.S; ts++ {
				for src := 0; src < n; src++ {
					for dst := 0; dst < n; dst++ {
						if src == dst {
							continue
						}
						gs := serial.Group(ts, src, dst)
						gp := par.Group(ts, src, dst)
						if !reflect.DeepEqual(gs, gp) {
							t.Fatalf("group (%d,%d,%d) differs between serial and parallel build:\n%+v\nvs\n%+v",
								ts, src, dst, gs, gp)
						}
					}
				}
			}
			if !reflect.DeepEqual(serial.GlobalThresholds(), par.GlobalThresholds()) {
				t.Fatalf("global thresholds differ")
			}
			sg, sp := serial.SingleSliceShare()
			pg, pp := par.SingleSliceShare()
			if sg != pg || sp != pp {
				t.Fatalf("single-slice share differs: (%v,%v) vs (%v,%v)", sg, sp, pg, pp)
			}
		})
	}
}

// TestBuildPathSetDefaultMatchesSerial pins the default (GOMAXPROCS) worker
// count to the serial result too, whatever this machine's core count is.
func TestBuildPathSetDefaultMatchesSerial(t *testing.T) {
	fab := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	serial := BuildPathSetOpts(fab, 0.5, BuildOptions{Workers: 1})
	def := BuildPathSet(fab, 0.5)
	if !reflect.DeepEqual(serial.GlobalThresholds(), def.GlobalThresholds()) {
		t.Fatalf("default build thresholds differ from serial")
	}
	for ts := 0; ts < fab.Sched.S; ts++ {
		for src := 0; src < fab.Sched.N; src++ {
			for dst := 0; dst < fab.Sched.N; dst++ {
				if src == dst {
					continue
				}
				if !reflect.DeepEqual(serial.Group(ts, src, dst), def.Group(ts, src, dst)) {
					t.Fatalf("group (%d,%d,%d) differs", ts, src, dst)
				}
			}
		}
	}
}

// TestComputeIntoReuseMatchesFresh runs the DP over all starting slices on
// one reused scratch and checks each level against a freshly allocated
// computation: scratch reuse must never leak state from a previous slice.
// The comparison is field-wise — tie lists are compared by content (a reused
// empty list and a fresh nil list are both "no ties"), and hLast/cyc only
// where a path exists, since they are meaningless on -1 entries.
func TestComputeIntoReuseMatchesFresh(t *testing.T) {
	fab := topo.MustFabric(topo.Scaled(), "random", 3)
	calc := NewCalculator(fab)
	var scratch *Tables
	for ts := 0; ts < fab.Sched.S; ts++ {
		scratch = calc.ComputeInto(ts, scratch)
		fresh := calc.Compute(ts)
		for h := 1; h <= calc.HMax; h++ {
			for idx := range fresh.end[h] {
				if scratch.end[h][idx] != fresh.end[h][idx] {
					t.Fatalf("ts=%d h=%d idx=%d: end %d (reused) vs %d (fresh)",
						ts, h, idx, scratch.end[h][idx], fresh.end[h][idx])
				}
				if fresh.end[h][idx] < 0 {
					continue
				}
				if scratch.last[h][idx] != fresh.last[h][idx] {
					t.Fatalf("ts=%d h=%d idx=%d: last differs", ts, h, idx)
				}
				if scratch.hLast[h][idx] != fresh.hLast[h][idx] {
					t.Fatalf("ts=%d h=%d idx=%d: hLast differs", ts, h, idx)
				}
				if scratch.cyc[h][idx] != fresh.cyc[h][idx] {
					t.Fatalf("ts=%d h=%d idx=%d: cyc differs", ts, h, idx)
				}
				a, b := scratch.par[h][idx], fresh.par[h][idx]
				if len(a) != len(b) {
					t.Fatalf("ts=%d h=%d idx=%d: ties %v (reused) vs %v (fresh)", ts, h, idx, a, b)
				}
				for k := range a {
					if a[k] != b[k] {
						t.Fatalf("ts=%d h=%d idx=%d: ties %v vs %v", ts, h, idx, a, b)
					}
				}
			}
		}
	}
}
