package core

import (
	"math"
	"math/rand"

	"ucmp/internal/topo"
)

// DefaultUnvisitedThreshold is the probability threshold on P(unvisited
// ToRs) used to pick S, the maximum number of slices the globally fastest
// path spans (Appendix B). The paper's prose says 10^-1, but its own Table 3
// values ((108,6)->S=5, (324,6)->S=6) and Fig 14's axis (down to 10^-12)
// are only consistent with a threshold around 1e-10, which we adopt and
// which reproduces Table 3 exactly.
const DefaultUnvisitedThreshold = 1e-10

// PUnvisited returns P(unvisited ToRs) after c time slices in an RDCN with
// n ToRs and d uplinks (Appendix B, Eqn. 5-6): throwing M = d^c balls into
// n bins,
//
//	P = 1 - [1 - (1-1/n)^M]^n.
//
// Computed in log space so values down to ~1e-300 are meaningful (Fig 14).
func PUnvisited(n, d, c int) float64 {
	m := math.Pow(float64(d), float64(c))
	// pOne = (1-1/n)^M
	logPOne := m * math.Log1p(-1.0/float64(n))
	pOne := math.Exp(logPOne)
	// P = 1 - (1-pOne)^n = -expm1(n*log1p(-pOne))
	return -math.Expm1(float64(n) * math.Log1p(-pOne))
}

// SpanSlices returns S: the smallest number of slices c such that
// P(unvisited ToRs) drops below the threshold.
func SpanSlices(n, d int, threshold float64) int {
	for c := 1; ; c++ {
		if PUnvisited(n, d, c) < threshold {
			return c
		}
		if c > 64 {
			// d >= 2 drives P to zero double-exponentially; this is
			// unreachable for any sane configuration.
			return c
		}
	}
}

// HmaxBound is the result of the Appendix B analysis for one configuration.
type HmaxBound struct {
	N, D    int
	HSlice  int  // max hops per slice, from propagation+transmission delay
	HStatic int  // max topology-instance diameter across the cycle
	CaseI   bool // h_slice >= h_static: fastest path fits in one slice
	S       int  // only meaningful in case II
	Q       int  // Q(h_max), the upper bound used by the path algorithm
}

// BoundHmax computes Q(h_max) for a configuration and schedule following
// Appendix B. Case I (h_slice >= h_static): Q = h_static. Case II: Q =
// h_slice × S with S from the balls-into-bins analysis.
func BoundHmax(cfg topo.Config, sched *topo.Schedule) HmaxBound {
	b := HmaxBound{N: cfg.NumToRs, D: cfg.Uplinks}
	b.HSlice = cfg.HopsPerSlice()
	b.HStatic = scheduleHStatic(sched)
	if b.HSlice >= b.HStatic {
		b.CaseI = true
		b.Q = b.HStatic
		return b
	}
	b.S = SpanSlices(cfg.NumToRs, cfg.Uplinks, DefaultUnvisitedThreshold)
	b.Q = b.HSlice * b.S
	return b
}

// scheduleHStatic returns h_static: the maximum per-slice diameter. For
// small fabrics it is exact; for large ones (where exact all-pairs BFS per
// slice would dominate offline cost) it uses a multi-sweep eccentricity
// estimate, which is tight on the expander-like slice graphs RDCNs use.
func scheduleHStatic(s *topo.Schedule) int {
	if s.Rotation() {
		// Rotation-symmetric slices are circulant graphs, hence
		// vertex-transitive: every vertex has the same eccentricity, so one
		// BFS from ToR 0 per slice yields the exact diameter at any scale.
		max := 0
		for sl := 0; sl < s.S; sl++ {
			_, ecc := farthest(s.SliceGraph(sl), 0)
			if ecc < 0 {
				return s.N // disconnected: conservative bound
			}
			if ecc > max {
				max = ecc
			}
		}
		return max
	}
	if s.N <= 512 {
		return s.MaxDiameter()
	}
	rng := rand.New(rand.NewSource(1))
	max := 0
	for sl := 0; sl < s.S; sl++ {
		g := s.SliceGraph(sl)
		if d := estimateDiameter(g, rng, 6); d > max {
			max = d
		}
	}
	return max
}

// estimateDiameter runs the double-sweep heuristic from several random
// seeds: BFS from a seed, then BFS again from the farthest node found,
// keeping the largest eccentricity seen. On expanders this matches the true
// diameter with very high probability.
func estimateDiameter(g *topo.Graph, rng *rand.Rand, sweeps int) int {
	best := 0
	for s := 0; s < sweeps; s++ {
		src := rng.Intn(g.N)
		far, ecc := farthest(g, src)
		if ecc < 0 {
			return g.N // disconnected: conservative bound
		}
		if ecc > best {
			best = ecc
		}
		_, ecc2 := farthest(g, far)
		if ecc2 > best {
			best = ecc2
		}
	}
	return best
}

// HStaticSampled estimates h_static for very large fabrics (Table 3's
// 4320-ToR rows) without materializing a full schedule: it samples slice
// graphs of d distinct circle-method matchings and takes the maximum
// double-sweep diameter estimate.
func HStaticSampled(n, d, samples int, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	max := 0
	for s := 0; s < samples; s++ {
		g := &topo.Graph{N: n, Adj: make([][]int, n)}
		seen := make(map[int]bool, d)
		for len(seen) < d {
			r := rng.Intn(n - 1)
			if seen[r] {
				continue
			}
			seen[r] = true
			m := topo.CircleRound(n, r)
			for i := 0; i < n; i++ {
				g.Adj[i] = append(g.Adj[i], m[i])
			}
		}
		if est := estimateDiameter(g, rng, 4); est > max {
			max = est
		}
	}
	return max
}

func farthest(g *topo.Graph, src int) (node, ecc int) {
	dist := g.BFS(src)
	node, ecc = src, 0
	for v, d := range dist {
		if d < 0 {
			return -1, -1
		}
		if d > ecc {
			node, ecc = v, d
		}
	}
	return node, ecc
}
