package core

import (
	"fmt"
	"math"
	"sort"
)

// Entry is one hop-count level of a UCMP group: the n-hop minimum-latency
// path plus any tied parallel solutions (property 2 of §4.3).
type Entry struct {
	HopCount      int
	LatencySlices int64
	Paths         []*Path
}

// Group is a UCMP group P(src, dst, t_start) (§4.3): the candidate paths
// that can have minimum uniform cost for some flow size. Entries are sorted
// by ascending hop count and carry strictly decreasing latency
// (properties 1-3).
type Group struct {
	Src        int
	Dst        int
	StartSlice int

	Entries []Entry

	// hull indexes the Entries on the lower convex hull of (hop, latency):
	// only those can minimize the (linear-in-size) uniform cost for some
	// flow size. thrFree[j] is the ascending, α-free boundary (Eqn. 4
	// domain) at which a flow steps from hull[len(hull)-1-j] toward fewer
	// hops.
	hull    []int
	thrFree []float64
}

// Group extracts the UCMP group for one ToR pair from the DP tables:
// properties 1 and 2 come from the per-hop-count minimality of the tables,
// property 3 keeps only hop counts whose latency strictly improves on every
// kept lower hop count (§4.3). It then precomputes the flow-size bucket
// structure for the cost model (§5.1, §5.2).
func (c *Calculator) Group(t *Tables, src, dst int, m CostModel) *Group {
	return c.groupInto(&groupArena{}, t, src, dst, m)
}

// groupInto is Group with every allocation drawn from the arena. A
// latency-only prepass sizes Entries exactly; the hull is a subset of the
// entries and there is one threshold per consecutive hull pair, so those
// caps are exact too — nothing grows, nothing is reallocated.
func (c *Calculator) groupInto(a *groupArena, t *Tables, src, dst int, m CostModel) *Group {
	g := a.groups.one()
	g.Src, g.Dst, g.StartSlice = src, dst, int(t.StartSlice)
	cnt := 0
	best := int64(math.MaxInt64)
	for n := 1; n <= t.HMax; n++ {
		lat := t.LatencySlices(n, src, dst)
		if lat < 0 || lat >= best {
			continue
		}
		cnt++
		best = lat
		if lat == 1 {
			break
		}
	}
	g.Entries = a.entries.take(cnt)[:0]
	best = int64(math.MaxInt64)
	for n := 1; n <= t.HMax; n++ {
		lat := t.LatencySlices(n, src, dst)
		if lat < 0 || lat >= best {
			continue
		}
		g.Entries = append(g.Entries, Entry{
			HopCount:      n,
			LatencySlices: lat,
			Paths:         t.parallelPathsInto(a, n, src, dst),
		})
		best = lat
		if lat == 1 {
			break // global minimum latency: nothing to the right qualifies
		}
	}
	g.hull = a.ints.take(len(g.Entries))[:0]
	if len(g.Entries) > 1 {
		g.thrFree = a.floats.take(len(g.Entries) - 1)[:0]
	}
	g.BuildBuckets(m)
	return g
}

// BuildBuckets computes the lower convex hull of the (hop, latency) points
// and the α-free stepping thresholds between consecutive hull entries.
func (g *Group) BuildBuckets(m CostModel) {
	g.hull = g.hull[:0]
	g.thrFree = g.thrFree[:0]
	for i := range g.Entries {
		for len(g.hull) >= 2 {
			a := g.Entries[g.hull[len(g.hull)-2]]
			b := g.Entries[g.hull[len(g.hull)-1]]
			c := g.Entries[i]
			// Drop b if it lies on or above segment a-c (cross product in
			// (hop, latency) space).
			if crossAbove(a, b, c) {
				g.hull = g.hull[:len(g.hull)-1]
			} else {
				break
			}
		}
		g.hull = append(g.hull, i)
	}
	// Thresholds walk from the most-hops end (where new flows start,
	// bucket 0) toward fewer hops, ascending in aged bytes.
	for j := len(g.hull) - 1; j > 0; j-- {
		a := g.Entries[g.hull[j-1]] // fewer hops, higher latency
		b := g.Entries[g.hull[j]]   // more hops, lower latency
		g.thrFree = append(g.thrFree,
			m.AlphaFreeBoundary(a.LatencySlices, a.HopCount, b.LatencySlices, b.HopCount))
	}
}

// crossAbove reports whether b is on or above the segment from a to c in
// (hop, latency) space, i.e. b never wins the linear cost minimization.
func crossAbove(a, b, c Entry) bool {
	// (c.h-a.h)*(b.l-a.l) >= (b.h-a.h)*(c.l-a.l)
	lhs := int64(c.HopCount-a.HopCount) * (b.LatencySlices - a.LatencySlices)
	rhs := int64(b.HopCount-a.HopCount) * (c.LatencySlices - a.LatencySlices)
	return lhs >= rhs
}

// NumPaths returns the total number of paths in the group, parallels
// included (Fig 5a's group size).
func (g *Group) NumPaths() int {
	n := 0
	for _, e := range g.Entries {
		n += len(e.Paths)
	}
	return n
}

// AllPaths returns every path in the group in entry order.
func (g *Group) AllPaths() []*Path {
	out := make([]*Path, 0, g.NumPaths())
	for _, e := range g.Entries {
		out = append(out, e.Paths...)
	}
	return out
}

// Thresholds returns the group's ascending α-free bucket boundaries
// (Eqn. 4): a flow steps to the next bucket each time α×bytesSent crosses
// one. The slice is shared; callers must not modify it.
func (g *Group) Thresholds() []float64 { return g.thrFree }

// BucketCount returns the number of flow-size buckets of this group.
func (g *Group) BucketCount() int { return len(g.thrFree) + 1 }

// EntryForAged returns the hull entry minimizing uniform cost for a flow
// whose α-scaled bytes sent equal `aged` (flow aging, §5.1). Bucket 0 (new
// flows) maps to the globally minimum-latency entry; as the flow ages it
// steps toward fewer hops.
func (g *Group) EntryForAged(aged float64) *Entry {
	return &g.Entries[g.hull[g.hullIndexForAged(aged)]]
}

func (g *Group) hullIndexForAged(aged float64) int {
	// Number of thresholds strictly below the aged byte count = buckets
	// stepped through so far.
	crossed := sort.SearchFloat64s(g.thrFree, aged)
	return len(g.hull) - 1 - crossed
}

// BucketForAged returns the bucket index (0 = newest flow) for an α-scaled
// byte count.
func (g *Group) BucketForAged(aged float64) int {
	return sort.SearchFloat64s(g.thrFree, aged)
}

// EntryForBucket maps a bucket index (possibly beyond the last threshold)
// to its hull entry.
func (g *Group) EntryForBucket(bucket int) *Entry {
	if bucket >= len(g.hull) {
		bucket = len(g.hull) - 1
	}
	if bucket < 0 {
		bucket = 0
	}
	return &g.Entries[g.hull[len(g.hull)-1-bucket]]
}

// MinCostEntry scans all entries for the exact minimum uniform cost with a
// known flow size (the "accurate flow size" variant of Fig 8). Ties resolve
// to fewer hops.
func (g *Group) MinCostEntry(m CostModel, sizeBytes int64) *Entry {
	best := -1
	bestCost := math.Inf(1)
	for i, e := range g.Entries {
		c := m.Cost(e.LatencySlices, e.HopCount, sizeBytes)
		if c < bestCost {
			best, bestCost = i, c
		}
	}
	return &g.Entries[best]
}

// PathFor picks the concrete path for a flow: the entry is selected by the
// aged byte count, and ties among parallel minimum-cost paths are broken by
// the flow's 5-tuple hash, like ECMP (§5.1).
func (g *Group) PathFor(aged float64, hash uint64) *Path {
	e := g.EntryForAged(aged)
	return e.Paths[hash%uint64(len(e.Paths))]
}

// Validate checks the group invariants (§4.3 properties).
func (g *Group) Validate() error {
	if len(g.Entries) == 0 {
		return fmt.Errorf("core: empty group %d->%d@%d", g.Src, g.Dst, g.StartSlice)
	}
	for i, e := range g.Entries {
		if len(e.Paths) == 0 {
			return fmt.Errorf("core: entry %d has no paths", i)
		}
		for _, p := range e.Paths {
			if err := p.Validate(); err != nil {
				return err
			}
			if p.HopCount() != e.HopCount {
				return fmt.Errorf("core: entry hop count %d vs path %d", e.HopCount, p.HopCount())
			}
			if p.LatencySlices() != e.LatencySlices {
				return fmt.Errorf("core: entry latency %d vs path %d", e.LatencySlices, p.LatencySlices())
			}
		}
		if i > 0 {
			prev := g.Entries[i-1]
			if e.HopCount <= prev.HopCount {
				return fmt.Errorf("core: entries not ascending in hops")
			}
			if e.LatencySlices >= prev.LatencySlices {
				return fmt.Errorf("core: property 3 violated: %d hops lat %d vs %d hops lat %d",
					prev.HopCount, prev.LatencySlices, e.HopCount, e.LatencySlices)
			}
		}
	}
	for i := 1; i < len(g.thrFree); i++ {
		if g.thrFree[i] < g.thrFree[i-1] {
			return fmt.Errorf("core: thresholds not ascending: %v", g.thrFree)
		}
	}
	return nil
}
