package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"ucmp/internal/byteview"
	"ucmp/internal/topo"
)

// Canonical path-set codec (DESIGN.md §15). A symmetric PathSet is two
// blobs:
//
//   - the spine: the raw little-endian []int32 canonIdx array (S·N entries,
//     -1 at Δ = 0), aliasable straight out of an mmap'd region;
//   - the store: the interned t_start-relative canonical groups as a stream
//     of u32 records — per group dst and entry count, per entry hop count,
//     latency and path count, per path its hop count, per hop (to, rel).
//
// Hulls and thresholds are NOT serialized: they are deterministic, α-free
// functions of the entries (BuildBuckets), so the decoder recomputes them —
// the file stays smaller and can never disagree with the cost model it is
// loaded under. Decoded groups live in a fresh group arena; only the spine
// aliases the blob.

// DecodeOptions tunes DecodeCanonical.
type DecodeOptions struct {
	// NoAlias forces the copying decode of the spine even where aliasing
	// would be legal — the differential path for testing, and an escape
	// hatch for callers that must outlive the blob's backing memory.
	NoAlias bool
}

// EncodeCanonical serializes a symmetric PathSet into its spine and store
// blobs. Errors on brute-force builds, which have no canonical form (and
// would not round-trip at O(S·N)).
func (ps *PathSet) EncodeCanonical() (spine, store []byte, err error) {
	if !ps.sym {
		return nil, nil, fmt.Errorf("core: cannot encode a non-symmetric path set")
	}
	spine = make([]byte, 0, 4*len(ps.canonIdx))
	for _, idx := range ps.canonIdx {
		spine = binary.LittleEndian.AppendUint32(spine, uint32(idx))
	}
	u32 := func(v int) { store = binary.LittleEndian.AppendUint32(store, uint32(v)) }
	u32(len(ps.interned))
	for _, g := range ps.interned {
		u32(g.Dst)
		u32(len(g.Entries))
		for _, e := range g.Entries {
			if e.LatencySlices < 0 || e.LatencySlices > math.MaxUint32 {
				return nil, nil, fmt.Errorf("core: canonical latency %d outside codec range", e.LatencySlices)
			}
			u32(e.HopCount)
			u32(int(e.LatencySlices))
			u32(len(e.Paths))
			for _, p := range e.Paths {
				u32(len(p.Hops))
				for _, hp := range p.Hops {
					if hp.Slice < 0 || hp.Slice > math.MaxUint32 {
						return nil, nil, fmt.Errorf("core: canonical hop slice %d outside codec range", hp.Slice)
					}
					u32(hp.To)
					u32(int(hp.Slice))
				}
			}
		}
	}
	return spine, store, nil
}

// storeReader walks the group store with bounds checking, so truncated or
// corrupted blobs surface as errors, never panics or partial path sets.
type storeReader struct {
	b   []byte
	off int
}

func (r *storeReader) u32(what string) (int, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("core: truncated group store at %s (offset %d)", what, r.off)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return int(int32(v)), nil
}

// count reads a record count and sanity-checks it against the bytes left at
// a minimum record size, so a corrupted count cannot trigger a huge
// allocation before the cursor would hit the end anyway.
func (r *storeReader) count(what string, minRec int) (int, error) {
	n, err := r.u32(what)
	if err != nil {
		return 0, err
	}
	if n < 0 || n > (len(r.b)-r.off)/minRec {
		return 0, fmt.Errorf("core: group store claims %d %s beyond its %d bytes", n, what, len(r.b))
	}
	return n, nil
}

// DecodeCanonical rebuilds a symmetric PathSet from its codec blobs for the
// given fabric and cost-model parameters. The calculator is rederived from
// the fabric (cheap — the DP itself is what the file persists), the spine
// aliases spineBlob where possible, the interned groups are decoded into a
// fresh arena, and every hull/threshold is recomputed via BuildBuckets.
// Every decoded group is validated; any structural violation is an error.
func DecodeCanonical(f *topo.Fabric, alpha float64, maxParallel int, spineBlob, storeBlob []byte, opt DecodeOptions) (*PathSet, error) {
	if !f.Sched.Rotation() {
		return nil, fmt.Errorf("core: cannot decode a canonical path set for a non-symmetric schedule")
	}
	calc := NewCalculator(f)
	if maxParallel > 0 {
		calc.MaxParallel = maxParallel
	}
	ps := &PathSet{
		F:    f,
		Calc: calc,
		Model: CostModel{
			Alpha:       alpha,
			LinkBps:     float64(f.LinkBps),
			SliceMicros: f.SliceDuration.Micros(),
		},
		sym: true,
	}
	n, s := f.Sched.N, f.Sched.S
	if len(spineBlob) != 4*s*n {
		return nil, fmt.Errorf("core: spine blob is %d bytes, want %d", len(spineBlob), 4*s*n)
	}
	if !opt.NoAlias {
		ps.canonIdx, _ = byteview.Of[int32](spineBlob, s*n)
	}
	if ps.canonIdx == nil {
		ps.canonIdx = make([]int32, s*n)
		for i := range ps.canonIdx {
			ps.canonIdx[i] = int32(binary.LittleEndian.Uint32(spineBlob[4*i:]))
		}
	}

	r := &storeReader{b: storeBlob}
	nGroups, err := r.count("groups", 8)
	if err != nil {
		return nil, err
	}
	arena := newScaledArena(nGroups + 1)
	ps.interned = make([]*Group, 0, nGroups)
	for gi := 0; gi < nGroups; gi++ {
		dst, err := r.u32("dst")
		if err != nil {
			return nil, err
		}
		if dst < 1 || dst >= n {
			return nil, fmt.Errorf("core: group %d dst %d outside [1,%d)", gi, dst, n)
		}
		nEntries, err := r.count("entries", 12)
		if err != nil {
			return nil, err
		}
		g := arena.groups.one()
		g.Src, g.Dst, g.StartSlice = 0, dst, 0
		g.Entries = arena.entries.take(nEntries)
		for ei := 0; ei < nEntries; ei++ {
			hopCount, err := r.u32("hopCount")
			if err != nil {
				return nil, err
			}
			lat, err := r.u32("latency")
			if err != nil {
				return nil, err
			}
			nPaths, err := r.count("paths", 4)
			if err != nil {
				return nil, err
			}
			paths := arena.ptrs.take(nPaths)
			for pi := 0; pi < nPaths; pi++ {
				nHops, err := r.count("hops", 8)
				if err != nil {
					return nil, err
				}
				p := arena.paths.one()
				p.Src, p.Dst, p.StartSlice = 0, dst, 0
				p.Hops = arena.hops.take(nHops)
				for hi := 0; hi < nHops; hi++ {
					to, err := r.u32("hop to")
					if err != nil {
						return nil, err
					}
					rel, err := r.u32("hop rel")
					if err != nil {
						return nil, err
					}
					if to < 0 || to >= n || rel < 0 {
						return nil, fmt.Errorf("core: group %d hop (%d,%d) out of range", gi, to, rel)
					}
					p.Hops[hi] = Hop{To: to, Slice: int64(rel)}
				}
				paths[pi] = p
			}
			g.Entries[ei] = Entry{HopCount: hopCount, LatencySlices: int64(uint32(lat)), Paths: paths}
		}
		g.hull = arena.ints.take(len(g.Entries))[:0]
		if len(g.Entries) > 1 {
			g.thrFree = arena.floats.take(len(g.Entries) - 1)[:0]
		}
		g.BuildBuckets(ps.Model)
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("core: decoded group %d invalid: %w", gi, err)
		}
		ps.interned = append(ps.interned, g)
	}
	if r.off != len(storeBlob) {
		return nil, fmt.Errorf("core: %d trailing bytes after group store", len(storeBlob)-r.off)
	}

	// Spine sanity: Δ = 0 is -1, everything else points into the store.
	for ts := 0; ts < s; ts++ {
		for delta := 0; delta < n; delta++ {
			idx := ps.canonIdx[ts*n+delta]
			if delta == 0 {
				if idx != -1 {
					return nil, fmt.Errorf("core: spine (%d,0) = %d, want -1", ts, idx)
				}
			} else if idx < 0 || int(idx) >= len(ps.interned) {
				return nil, fmt.Errorf("core: spine (%d,%d) = %d outside store of %d", ts, delta, idx, len(ps.interned))
			}
		}
	}
	return ps, nil
}
