// Package core implements UCMP, the paper's primary contribution:
// uniform-cost multi-path routing for reconfigurable data center networks.
//
// It provides
//   - the uniform cost metric C(p,f) = latency(p) + α·hop(p)·size(f)/B (§3.1),
//   - offline path calculation: the n-hop minimum-latency path algorithm
//     (§4.1, Alg. 1) and the Q(h_max) bound (§4.2, Appendix B),
//   - UCMP groups with properties 1-3 and latency relaxation (§4.3),
//   - online path assignment: flow size buckets, flow aging, and live tuning
//     of the weight factor α (§5.1, §5.2),
//   - backup paths for failure recovery (§5.3).
package core

import (
	"fmt"
	"strings"
)

// Hop is one ToR-to-ToR hop of an RDCN path: the next ToR and the absolute
// time slice during which the hop's circuit is up (and the packet is
// scheduled to traverse it).
type Hop struct {
	To    int
	Slice int64
}

// Path is an RDCN routing path p(src, dst, t_start) (§2.1): it is specific
// to the ToR pair and to the slice in which routing starts, because the
// circuits appear and disappear over time. Slice numbers are absolute,
// counted from the cycle containing StartSlice.
type Path struct {
	Src        int
	Dst        int
	StartSlice int64
	Hops       []Hop
}

// HopCount returns hop(p), the number of ToR-to-ToR hops.
func (p *Path) HopCount() int { return len(p.Hops) }

// EndSlice returns t_end: the absolute slice of the last-hop circuit, which
// alone determines the path's latency (§2.1).
func (p *Path) EndSlice() int64 { return p.Hops[len(p.Hops)-1].Slice }

// LatencySlices returns the Eqn. 1 latency in slices: t_end - t_start + 1.
func (p *Path) LatencySlices() int64 { return p.EndSlice() - p.StartSlice + 1 }

// Nodes returns the full node sequence src, ..., dst.
func (p *Path) Nodes() []int {
	nodes := make([]int, 0, len(p.Hops)+1)
	nodes = append(nodes, p.Src)
	for _, h := range p.Hops {
		nodes = append(nodes, h.To)
	}
	return nodes
}

// Edges returns the undirected ToR pairs the path crosses, normalized with
// the smaller ToR first, for edge-disjointness analysis (§7.2).
func (p *Path) Edges() [][2]int {
	edges := make([][2]int, 0, len(p.Hops))
	from := p.Src
	for _, h := range p.Hops {
		a, b := from, h.To
		if a > b {
			a, b = b, a
		}
		edges = append(edges, [2]int{a, b})
		from = h.To
	}
	return edges
}

// String renders the path like "3 -[s2]-> 7 -[s4]-> 1".
func (p *Path) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d", p.Src)
	for _, h := range p.Hops {
		fmt.Fprintf(&b, " -[s%d]-> %d", h.Slice, h.To)
	}
	return b.String()
}

// Validate checks internal consistency: the path links Src to Dst, slices
// are non-decreasing and not before the start.
func (p *Path) Validate() error {
	if len(p.Hops) == 0 {
		return fmt.Errorf("core: empty path %d->%d", p.Src, p.Dst)
	}
	if p.Hops[len(p.Hops)-1].To != p.Dst {
		return fmt.Errorf("core: path %v does not end at dst %d", p, p.Dst)
	}
	prev := p.StartSlice
	for i, h := range p.Hops {
		if h.Slice < prev {
			return fmt.Errorf("core: path %v hop %d goes back in time", p, i)
		}
		prev = h.Slice
	}
	return nil
}
