package core

import (
	"sync"
	"sync/atomic"
)

// Rotation-symmetric PathSet build (DESIGN.md §13). When the schedule's
// Rotation() witness holds, the DP row of any source ToR is the rotated row
// of ToR 0: NextDirect(a, b, t) = NextDirect(a+k, b+k, t) for every k, the
// DP recursion preserves that equivalence level by level, and the
// source-relative intermediate order makes tie selection equivariant too.
// So the build computes only the O(S·N) canonical rows (t_start, 0, Δ) and
// serves Group(ts, src, dst) by relabeling hops of the canonical group for
// Δ = (dst-src) mod N.
//
// Canonical groups are stored t_start-relative (StartSlice 0, hop slices
// shifted down by t_start): two canonical rows that differ only by a time
// shift then become byte-identical and are interned once, content-hashed
// into a persistent arena. The per-(ts, Δ) spine is a flat []int32 of
// indices into the interned store — no N² pointer spine at all.

// symIndex returns the canonical spine index for (tstart, delta).
func (ps *PathSet) symIndex(tstart, delta int) int32 {
	return ps.canonIdx[tstart*ps.F.Sched.N+delta]
}

// Symmetric reports whether this PathSet was built by the rotation-
// symmetric canonical build (Group then materializes on demand; the routing
// fast path uses CanonGroup + hop relabeling instead).
func (ps *PathSet) Symmetric() bool { return ps.sym }

// CanonGroup returns the interned canonical group for (t_start, Δ),
// Δ = (dst-src) mod N in [1, N). The group is t_start-relative: Src 0,
// Dst Δ, StartSlice 0, hop slices relative to t_start. Callers translate
// hops by (+src mod N, +t_start) to obtain the concrete group; entry
// structure, bucket thresholds, and path counts need no translation.
// Shared and read-only.
func (ps *PathSet) CanonGroup(tstart, delta int) *Group {
	return ps.interned[ps.symIndex(tstart, delta)]
}

// CanonStats returns the canonical-row count (S·(N-1)) and the number of
// distinct interned groups after content dedup.
func (ps *PathSet) CanonStats() (rows, unique int) {
	if !ps.sym {
		return 0, 0
	}
	return ps.F.Sched.S * (ps.F.Sched.N - 1), len(ps.interned)
}

// buildSymmetric fills the PathSet from canonical source-0 rows. The
// per-slice DP fans out over the worker pool exactly like the brute build;
// the interning pass is serial in ascending (t_start, Δ) order so the
// interned store and spine are deterministic regardless of worker count.
func (ps *PathSet) buildSymmetric(workers int) {
	calc := ps.Calc
	sched := ps.F.Sched
	n, s := sched.N, sched.S
	rows := make([][]*Group, s) // transient absolute-slice groups, src 0
	if workers <= 1 {
		var scratch *RowTables
		arena := newRowArena(n)
		for ts := 0; ts < s; ts++ {
			scratch = calc.ComputeRowInto(ts, 0, scratch)
			rows[ts] = calc.canonicalRow(arena, scratch, ps.Model)
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var scratch *RowTables
				arena := newRowArena(n)
				for {
					ts := int(next.Add(1))
					if ts >= s {
						return
					}
					scratch = calc.ComputeRowInto(ts, 0, scratch)
					rows[ts] = calc.canonicalRow(arena, scratch, ps.Model)
				}
			}()
		}
		wg.Wait()
	}

	// Serial interning in (ts, Δ) order: deterministic indices, and the
	// transient row arenas are released wholesale once every unique group
	// has been deep-copied into the persistent arena.
	ps.sym = true
	ps.canonIdx = make([]int32, s*n)
	perm := newRowArena(n)
	byHash := make(map[uint64][]int32)
	for ts := 0; ts < s; ts++ {
		row := rows[ts]
		for delta := 0; delta < n; delta++ {
			if delta == 0 {
				ps.canonIdx[ts*n] = -1
				continue
			}
			g := row[delta]
			h := hashGroupRel(g)
			idx := int32(-1)
			for _, cand := range byHash[h] {
				if groupEqualRel(ps.interned[cand], g) {
					idx = cand
					break
				}
			}
			if idx < 0 {
				idx = int32(len(ps.interned))
				ps.interned = append(ps.interned, copyGroupRel(perm, g))
				byHash[h] = append(byHash[h], idx)
			}
			ps.canonIdx[ts*n+delta] = idx
		}
		rows[ts] = nil
	}
}

// canonicalRow extracts the source-0 groups of one starting slice
// (destinations 1..N-1; index 0 stays nil).
func (c *Calculator) canonicalRow(a *groupArena, t *RowTables, m CostModel) []*Group {
	row := make([]*Group, t.N)
	for dst := 1; dst < t.N; dst++ {
		row[dst] = c.groupFromRow(a, t, dst, m)
	}
	return row
}

// hashGroupRel content-hashes a canonical group in t_start-relative form
// (FNV-1a over entry and hop structure). Groups equal under the shift hash
// equal; hull and thresholds are functions of the entries and need no
// hashing.
func hashGroupRel(g *Group) uint64 {
	const (
		offset = 1469598103934665603
		prime  = 1099511628211
	)
	ts := int64(g.StartSlice)
	h := uint64(offset)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mix(uint64(len(g.Entries)))
	for _, e := range g.Entries {
		mix(uint64(e.HopCount))
		mix(uint64(e.LatencySlices))
		mix(uint64(len(e.Paths)))
		for _, p := range e.Paths {
			for _, hp := range p.Hops {
				mix(uint64(hp.To))
				mix(uint64(hp.Slice - ts))
			}
		}
	}
	return h
}

// groupEqualRel compares an interned (already relative) group against a
// transient absolute one under the latter's t_start shift.
func groupEqualRel(rel, abs *Group) bool {
	if len(rel.Entries) != len(abs.Entries) {
		return false
	}
	ts := int64(abs.StartSlice)
	for i := range rel.Entries {
		re, ae := &rel.Entries[i], &abs.Entries[i]
		if re.HopCount != ae.HopCount || re.LatencySlices != ae.LatencySlices ||
			len(re.Paths) != len(ae.Paths) {
			return false
		}
		for j := range re.Paths {
			rp, ap := re.Paths[j], ae.Paths[j]
			if len(rp.Hops) != len(ap.Hops) {
				return false
			}
			for k := range rp.Hops {
				if rp.Hops[k].To != ap.Hops[k].To || rp.Hops[k].Slice != ap.Hops[k].Slice-ts {
					return false
				}
			}
		}
	}
	return true
}

// copyGroupRel deep-copies a transient absolute group into the persistent
// arena in t_start-relative form.
func copyGroupRel(a *groupArena, g *Group) *Group {
	ts := int64(g.StartSlice)
	ng := a.groups.one()
	ng.Src, ng.Dst, ng.StartSlice = 0, g.Dst, 0
	ng.Entries = a.entries.take(len(g.Entries))
	for i, e := range g.Entries {
		paths := a.ptrs.take(len(e.Paths))
		for j, p := range e.Paths {
			np := a.paths.one()
			np.Src, np.Dst, np.StartSlice = 0, p.Dst, 0
			np.Hops = a.hops.take(len(p.Hops))
			for k, hp := range p.Hops {
				np.Hops[k] = Hop{To: hp.To, Slice: hp.Slice - ts}
			}
			paths[j] = np
		}
		ng.Entries[i] = Entry{HopCount: e.HopCount, LatencySlices: e.LatencySlices, Paths: paths}
	}
	ng.hull = a.ints.take(len(g.hull))
	copy(ng.hull, g.hull)
	if len(g.thrFree) > 0 {
		ng.thrFree = a.floats.take(len(g.thrFree))
		copy(ng.thrFree, g.thrFree)
	}
	return ng
}

// materializeGroup builds the concrete absolute group for (ts, src, dst)
// from its canonical representative: hops rotate by +src and shift by +ts;
// the hull and threshold slices are shared (read-only and
// translation-invariant). Allocates — the compatibility path for callers
// that need a *Group; the per-packet fast path relabels hops inline
// instead (routing.UCMP).
func (ps *PathSet) materializeGroup(tstart, src, dst int) *Group {
	n := ps.F.Sched.N
	delta := dst - src
	if delta < 0 {
		delta += n
	}
	cg := ps.CanonGroup(tstart, delta)
	g := &Group{
		Src: src, Dst: dst, StartSlice: tstart,
		Entries: make([]Entry, len(cg.Entries)),
		hull:    cg.hull,
		thrFree: cg.thrFree,
	}
	for i, e := range cg.Entries {
		paths := make([]*Path, len(e.Paths))
		for j, p := range e.Paths {
			hops := make([]Hop, len(p.Hops))
			for k, hp := range p.Hops {
				to := hp.To + src
				if to >= n {
					to -= n
				}
				hops[k] = Hop{To: to, Slice: hp.Slice + int64(tstart)}
			}
			paths[j] = &Path{Src: src, Dst: dst, StartSlice: int64(tstart), Hops: hops}
		}
		g.Entries[i] = Entry{HopCount: e.HopCount, LatencySlices: e.LatencySlices, Paths: paths}
	}
	return g
}
