package core

import (
	"testing"
)

// pathSetString renders everything observable about a path set's groups for
// every (t_start, src, dst), via the same group rendering the symmetric
// differential uses — absolute hops, hulls, thresholds.
func pathSetString(ps *PathSet) string {
	var out []byte
	n, s := ps.F.Sched.N, ps.F.Sched.S
	for ts := 0; ts < s; ts++ {
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if dst == src {
					continue
				}
				out = append(out, groupString(ps.Group(ts, src, dst))...)
			}
		}
	}
	return string(out)
}

// TestCanonicalCodecRoundTrip: encode a symmetric build, decode it under
// both the aliasing and the copying (NoAlias) decoder, and require the
// decoded path set to be observably identical to the original — every
// group, every threshold — across schedule kinds and parallel-path caps.
func TestCanonicalCodecRoundTrip(t *testing.T) {
	for _, kind := range []string{"round-robin", "opera", "random-circulant"} {
		for _, mp := range []int{1, 4} {
			f := kindFabric(t, kind, 16, 4)
			ps := BuildPathSetOpts(f, 0.5, BuildOptions{MaxParallel: mp})
			spine, store, err := ps.EncodeCanonical()
			if err != nil {
				t.Fatalf("%s mp=%d: encode: %v", kind, mp, err)
			}
			want := pathSetString(ps)
			for _, noAlias := range []bool{false, true} {
				dec, err := DecodeCanonical(f, 0.5, mp, spine, store, DecodeOptions{NoAlias: noAlias})
				if err != nil {
					t.Fatalf("%s mp=%d noAlias=%v: decode: %v", kind, mp, noAlias, err)
				}
				if !dec.Symmetric() {
					t.Fatalf("%s mp=%d: decoded path set not symmetric", kind, mp)
				}
				if got := pathSetString(dec); got != want {
					t.Fatalf("%s mp=%d noAlias=%v: decoded path set differs from original", kind, mp, noAlias)
				}
				gotRows, gotCanon := dec.CanonStats()
				wantRows, wantCanon := ps.CanonStats()
				if gotRows != wantRows || gotCanon != wantCanon {
					t.Fatalf("%s mp=%d: CanonStats (%d,%d), want (%d,%d)",
						kind, mp, gotRows, gotCanon, wantRows, wantCanon)
				}
			}
		}
	}
}

// TestCanonicalCodecRejectsBrute: a brute-force build has no canonical form
// and must refuse to encode.
func TestCanonicalCodecRejectsBrute(t *testing.T) {
	f := symFabric(t, 8, 4)
	brute := BuildPathSetOpts(f, 0.5, BuildOptions{NoSymmetry: true})
	if _, _, err := brute.EncodeCanonical(); err == nil {
		t.Fatal("encoding a brute-force build must error")
	}
}

// TestCanonicalCodecRejectsCorruption: truncations and bit flips anywhere in
// either blob yield an error, never a panic or a silently different path
// set.
func TestCanonicalCodecRejectsCorruption(t *testing.T) {
	f := symFabric(t, 8, 4)
	ps := BuildPathSet(f, 0.5)
	spine, store, err := ps.EncodeCanonical()
	if err != nil {
		t.Fatal(err)
	}
	want := pathSetString(ps)
	decode := func(sp, st []byte) (*PathSet, error) {
		return DecodeCanonical(f, 0.5, 0, sp, st, DecodeOptions{})
	}
	if _, err := decode(spine[:len(spine)-4], store); err == nil {
		t.Fatal("truncated spine must error")
	}
	if _, err := decode(spine, store[:len(store)-1]); err == nil {
		t.Fatal("truncated store must error")
	}
	if _, err := decode(spine, nil); err == nil {
		t.Fatal("empty store must error")
	}
	// Flip one byte at a time; the decode must error or reproduce the
	// original exactly (a flip inside a latency value, say, still decodes
	// structurally but then fails group validation; a flip that survives all
	// checks must not change observable routing — none do at this size, but
	// the invariant we pin is error-or-identical, never panic).
	for i := 0; i < len(store); i++ {
		mut := append([]byte(nil), store...)
		mut[i] ^= 0x40
		dec, err := decode(spine, mut)
		if err == nil && pathSetString(dec) == want {
			t.Fatalf("flipping store byte %d decoded to an identical path set — checksum-free corruption must differ or error", i)
		}
	}
}
