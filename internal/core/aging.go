package core

import "sort"

// FlowAger is the host-side flow aging and bucketing module (§5.1, §6.1).
// It tracks nothing itself — callers feed it each flow's bytes sent — and
// maps the α-scaled byte count onto the globally recognizable bucket
// intervals formed by the union of all group boundary values. The bucket
// index is what gets stamped into each packet's DSCP field (6 bits, up to
// 64 buckets, enough per Table 2).
type FlowAger struct {
	thresholds []float64 // ascending, α-free (Eqn. 4 domain)
	alpha      float64
}

// NewFlowAger builds the ager from a computed PathSet.
func NewFlowAger(ps *PathSet) *FlowAger {
	return &FlowAger{thresholds: ps.GlobalThresholds(), alpha: ps.Model.Alpha}
}

// NewFlowAgerFromThresholds builds an ager directly, for tests.
func NewFlowAgerFromThresholds(thresholds []float64, alpha float64) *FlowAger {
	return &FlowAger{thresholds: thresholds, alpha: alpha}
}

// SetAlpha applies a live α update broadcast by the operator (§5.2). The
// thresholds are α-free, so only the mapping function changes.
func (a *FlowAger) SetAlpha(alpha float64) { a.alpha = alpha }

// Alpha returns the current weight factor.
func (a *FlowAger) Alpha() float64 { return a.alpha }

// NumBuckets returns the number of global buckets.
func (a *FlowAger) NumBuckets() int { return len(a.thresholds) + 1 }

// Bucket returns the global bucket index (0 = newest flow) for a flow that
// has sent bytesSent bytes so far.
func (a *FlowAger) Bucket(bytesSent int64) int {
	aged := a.alpha * float64(bytesSent)
	return sort.SearchFloat64s(a.thresholds, aged)
}

// AgedMidpoint returns a representative α-scaled value inside the given
// global bucket, used to map a bucket back onto a group's (coarser) own
// buckets without equality edge cases.
func (a *FlowAger) AgedMidpoint(bucket int) float64 {
	switch {
	case len(a.thresholds) == 0:
		return 0
	case bucket <= 0:
		return a.thresholds[0] / 2
	case bucket >= len(a.thresholds):
		return a.thresholds[len(a.thresholds)-1] * 2
	default:
		return (a.thresholds[bucket-1] + a.thresholds[bucket]) / 2
	}
}

// EntryForBucket resolves a global bucket index against a specific UCMP
// group: several global buckets may map to the same path (§6.1).
func (a *FlowAger) EntryForBucket(g *Group, bucket int) *Entry {
	return g.EntryForAged(a.AgedMidpoint(bucket))
}

// PathForBucket picks the concrete path for a packet carrying a global
// bucket tag, breaking parallel-path ties with the flow hash.
func (a *FlowAger) PathForBucket(g *Group, bucket int, hash uint64) *Path {
	e := a.EntryForBucket(g, bucket)
	return e.Paths[hash%uint64(len(e.Paths))]
}
