package core

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ucmp/internal/topo"
)

// PathSet is the complete offline output of UCMP path calculation: one
// UCMP group per (t_start, src, dst). It is what gets compiled into the
// per-ToR source routing tables (§6.2).
type PathSet struct {
	F     *topo.Fabric
	Calc  *Calculator
	Model CostModel

	groups [][]*Group // [t_start][src*N+dst]; nil for symmetric builds

	// Symmetric (canonical) storage, used when sym is true: canonIdx maps
	// (t_start*N + Δ) to an index into interned, the content-deduped store
	// of t_start-relative canonical groups (see pathset_sym.go). groups
	// stays nil — there is no N² spine at all.
	sym      bool
	canonIdx []int32
	interned []*Group
}

// BuildOptions tunes the offline build. The zero value picks the defaults.
type BuildOptions struct {
	// MaxParallel caps the tied (parallel) solutions retained per hop count
	// (0 keeps the calculator default of 4; 1 disables ECMP-style tie
	// spreading — an ablation knob).
	MaxParallel int
	// Workers bounds the pool computing starting slices concurrently.
	// 0 uses runtime.GOMAXPROCS(0); 1 forces the serial build. The output
	// is identical for every worker count: slices are independent DP
	// problems and each worker writes only the rows it claimed. The pool
	// is always clamped to the number of starting slices.
	Workers int
	// NoSymmetry forces the brute-force O(S·N²) build even when the
	// schedule's Rotation() witness holds — the reference side of the
	// symmetric-vs-brute differential tests, and an ablation knob.
	NoSymmetry bool
}

// BuildPathSet runs offline path calculation for every starting slice of
// the cycle. alpha is the §5.2 weight factor baked into the cost model.
func BuildPathSet(f *topo.Fabric, alpha float64) *PathSet {
	return BuildPathSetOpts(f, alpha, BuildOptions{})
}

// BuildPathSetWith is BuildPathSet with a custom cap on retained parallel
// solutions per hop count.
func BuildPathSetWith(f *topo.Fabric, alpha float64, maxParallel int) *PathSet {
	return BuildPathSetOpts(f, alpha, BuildOptions{MaxParallel: maxParallel})
}

// BuildPathSetOpts is the fully configurable build (§4, Alg. 1, run for all
// S starting slices). Starting slices are distributed over a bounded worker
// pool; each worker reuses one scratch Tables across the slices it claims,
// so the build performs O(workers) — not O(S) — table allocations.
func BuildPathSetOpts(f *topo.Fabric, alpha float64, opt BuildOptions) *PathSet {
	calc := NewCalculator(f)
	if opt.MaxParallel > 0 {
		calc.MaxParallel = opt.MaxParallel
	}
	ps := &PathSet{
		F:    f,
		Calc: calc,
		Model: CostModel{
			Alpha:       alpha,
			LinkBps:     float64(f.LinkBps),
			SliceMicros: f.SliceDuration.Micros(),
		},
	}
	s := f.Sched.S
	workers := effectiveWorkers(opt.Workers, s)
	if f.Sched.Rotation() && !opt.NoSymmetry {
		ps.buildSymmetric(workers)
		return ps
	}
	ps.groups = make([][]*Group, s)
	if workers <= 1 {
		var scratch *Tables
		for ts := 0; ts < s; ts++ {
			scratch = calc.ComputeInto(ts, scratch)
			ps.groups[ts] = calc.groupRow(scratch, ps.Model)
		}
		return ps
	}
	// Workers claim starting slices off a shared counter and write into
	// their preassigned groups[ts] rows: the result is byte-identical to
	// the serial build regardless of goroutine scheduling.
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch *Tables
			for {
				ts := int(next.Add(1))
				if ts >= s {
					return
				}
				scratch = calc.ComputeInto(ts, scratch)
				ps.groups[ts] = calc.groupRow(scratch, ps.Model)
			}
		}()
	}
	wg.Wait()
	return ps
}

// effectiveWorkers resolves a requested worker count against the number of
// parallelizable tasks: non-positive requests take GOMAXPROCS, and the pool
// never exceeds the task count (tiny-S fabrics must not spin idle
// goroutines) nor drops below one.
func effectiveWorkers(requested, tasks int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// groupRow extracts every pair's group for one starting slice, detaching
// all paths and thresholds from the (reusable) DP scratch.
func (c *Calculator) groupRow(t *Tables, m CostModel) []*Group {
	n := t.N
	row := make([]*Group, n*n)
	a := newGroupArena(n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			row[src*n+dst] = c.groupInto(a, t, src, dst, m)
		}
	}
	return row
}

// Group returns the UCMP group for a cyclic starting slice and ToR pair.
// On a symmetric build this materializes (allocates) the group from its
// canonical representative; hot paths should use CanonGroup plus inline
// hop relabeling instead.
func (ps *PathSet) Group(tstart, src, dst int) *Group {
	if ps.sym {
		return ps.materializeGroup(tstart, src, dst)
	}
	return ps.groups[tstart][src*ps.F.Sched.N+dst]
}

// SetAlpha retunes the weight factor live (§5.2): bucket thresholds are
// α-free (Eqn. 4), so only the cost model's flow-to-bucket mapping changes;
// no path or threshold recomputation is needed.
func (ps *PathSet) SetAlpha(alpha float64) { ps.Model.Alpha = alpha }

// GlobalThresholds returns the union of all bucket boundary values across
// every UCMP group (§6.1): the globally recognizable stepping thresholds
// for flow aging. Values within one slice-duration quantum are merged.
func (ps *PathSet) GlobalThresholds() []float64 {
	// Thresholds are α-free functions of (hop, latency) hull points, which
	// rotation and time shift preserve — on a symmetric build the union
	// over the interned canonical groups is exactly the union over all
	// (t_start, src, dst) groups.
	if ps.sym {
		return globalThresholds(func(yield func(*Group)) {
			for _, g := range ps.interned {
				yield(g)
			}
		})
	}
	return globalThresholds(func(yield func(*Group)) {
		for _, row := range ps.groups {
			for _, g := range row {
				if g != nil {
					yield(g)
				}
			}
		}
	})
}

// globalThresholds merges the bucket boundaries of every group produced by
// the iterator. A counting prepass pre-sizes the dedup map and output so
// neither rehashes/regrows.
func globalThresholds(each func(yield func(*Group))) []float64 {
	total := 0
	each(func(g *Group) { total += len(g.thrFree) })
	seen := make(map[int64]struct{}, total)
	out := make([]float64, 0, total)
	each(func(g *Group) {
		for _, thr := range g.Thresholds() {
			k := int64(thr) // thresholds are whole byte counts apart
			if _, ok := seen[k]; !ok {
				seen[k] = struct{}{}
				out = append(out, thr)
			}
		}
	})
	sort.Float64s(out)
	return out
}

// GlobalBucketCount returns the number of flow-aging buckets a host needs
// (Table 2 column "#Buckets"): intervals between the global thresholds.
func (ps *PathSet) GlobalBucketCount() int { return len(ps.GlobalThresholds()) + 1 }

// RelaxedTwoHop implements latency relaxation for long flows (§4.3): all
// 2-hop paths src->mid->dst with relaxed (non-minimal) latencies. Unlike
// VLB, a relaxed path may wait at the source for a better circuit rather
// than forwarding immediately. Paths are sorted by latency; maxLatency (in
// slices, 0 = no cap) prunes the tail. The hop-count term of the uniform
// cost dominates for the long flows these serve, so every returned path
// still has lower uniform cost than forcing the flow onto the single
// minimum-latency path.
func (ps *PathSet) RelaxedTwoHop(tstart, src, dst int, maxLatency int64) []*Path {
	sched := ps.F.Sched
	start := int64(tstart)
	var out []*Path
	for mid := 0; mid < sched.N; mid++ {
		if mid == src || mid == dst {
			continue
		}
		e1 := sched.NextDirect(src, mid, start)
		e2 := sched.NextDirect(mid, dst, e1)
		p := &Path{Src: src, Dst: dst, StartSlice: start, Hops: []Hop{
			{To: mid, Slice: e1},
			{To: dst, Slice: e2},
		}}
		if maxLatency > 0 && p.LatencySlices() > maxLatency {
			continue
		}
		out = append(out, p)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].EndSlice() < out[j].EndSlice()
	})
	return out
}

// BackupPaths prepares backup 2-hop paths for failure recovery (§5.3).
// They matter in the slices where a direct circuit makes the 1-hop path the
// sole member of the group; `exclude` drops candidates traversing failed
// ToRs. Up to k paths are returned, cheapest first.
func (ps *PathSet) BackupPaths(tstart, src, dst, k int, exclude func(tor int) bool) []*Path {
	all := ps.RelaxedTwoHop(tstart, src, dst, 0)
	var out []*Path
	for _, p := range all {
		if exclude != nil && exclude(p.Hops[0].To) {
			continue
		}
		out = append(out, p)
		if len(out) == k {
			break
		}
	}
	return out
}

// SingleSliceShare returns the fraction of (t_start, src, dst) groups whose
// only member is the direct path (§5.3 reports 5.6% of the time for the
// paper's network), and the share of total UCMP paths that would need a
// backup (3.9% in the paper).
func (ps *PathSet) SingleSliceShare() (groupShare, pathShare float64) {
	single, groups, paths := 0, 0, 0
	count := func(g *Group) {
		groups++
		np := g.NumPaths()
		paths += np
		if np == 1 {
			single++
		}
	}
	if ps.sym {
		// Each canonical (t_start, Δ) reference stands for exactly N
		// (src, dst) pairs, so counting references weighs every concrete
		// group equally and the shares are unchanged.
		for _, idx := range ps.canonIdx {
			if idx >= 0 {
				count(ps.interned[idx])
			}
		}
	} else {
		for _, row := range ps.groups {
			for _, g := range row {
				if g != nil {
					count(g)
				}
			}
		}
	}
	if groups == 0 {
		return 0, 0
	}
	return float64(single) / float64(groups), float64(single) / float64(paths)
}
