package core_test

import (
	"fmt"

	"ucmp/internal/core"
	"ucmp/internal/topo"
)

// ExampleCostModel reproduces two cells of the paper's Table 1.
func ExampleCostModel() {
	m := core.CostModel{Alpha: 1, LinkBps: 100e9, SliceMicros: 5}
	// A 1-hop path with 60us latency (12 slices) carrying a 1 MB flow:
	fmt.Printf("%.1f\n", m.Cost(12, 1, 1_000_000))
	// A 4-hop path with 5us latency (1 slice) carrying a 10 KB flow:
	fmt.Printf("%.1f\n", m.Cost(1, 4, 10_000))
	// Output:
	// 140.0
	// 8.2
}

// ExampleBuildPathSet shows offline path calculation and group inspection.
func ExampleBuildPathSet() {
	fab := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	ps := core.BuildPathSet(fab, 0.5)
	g := ps.Group(2, 0, 5) // src ToR 0 -> dst ToR 5, starting slice 2
	fmt.Println("entries:", len(g.Entries))
	first := g.Entries[0]
	fmt.Printf("%d hops, latency %d slices\n", first.HopCount, first.LatencySlices)
	// Output:
	// entries: 3
	// 1 hops, latency 4 slices
}

// ExampleFlowAger demonstrates flow aging: a growing byte count steps the
// bucket index monotonically upward (§5.1).
func ExampleFlowAger() {
	fab := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	ps := core.BuildPathSet(fab, 0.5)
	ager := core.NewFlowAger(ps)
	prev := -1
	mono := true
	for _, sent := range []int64{0, 1 << 10, 1 << 20, 1 << 26, 1 << 30} {
		b := ager.Bucket(sent)
		if b < prev {
			mono = false
		}
		prev = b
	}
	fmt.Println("monotone:", mono)
	// Output:
	// monotone: true
}

// ExampleBoundHmax shows the Appendix B analysis for the paper's fabric
// with 1us slices.
func ExampleBoundHmax() {
	cfg := topo.PaperDefault()
	cfg.SliceDuration = 1000 // 1us
	sched := topo.RoundRobin(cfg.NumToRs, cfg.Uplinks)
	b := core.BoundHmax(cfg, sched)
	fmt.Println("case I:", b.CaseI)
	fmt.Println("S:", b.S, "Q:", b.Q)
	// Output:
	// case I: false
	// S: 5 Q: 5
}
