package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ucmp/internal/sim"
	"ucmp/internal/topo"
)

func scaledFabric(t testing.TB) *topo.Fabric {
	t.Helper()
	return topo.MustFabric(topo.Scaled(), "round-robin", 1)
}

func model(f *topo.Fabric, alpha float64) CostModel {
	return CostModel{Alpha: alpha, LinkBps: float64(f.LinkBps), SliceMicros: f.SliceDuration.Micros()}
}

// ---- Table 1 (§5.1): the worked uniform-cost example. ----

func TestTable1UniformCost(t *testing.T) {
	m := CostModel{Alpha: 1, LinkBps: 100e9, SliceMicros: 5}
	// Paths from Table 1: (hop, latency in us) with u=5us slices.
	rows := []struct {
		hops int
		lat  int64 // slices: 60us=12, 15us=3, 10us=2, 5us=1
	}{{1, 12}, {2, 3}, {3, 2}, {4, 1}}
	sizes := []int64{1e6, 1e5, 1e4}
	want := [][]float64{ // C(p,f) per Table 1
		{140, 68, 60.8},
		{175, 31, 16.6},
		{250, 34, 12.4},
		{325, 37, 8.2},
	}
	for i, r := range rows {
		for j, s := range sizes {
			got := m.Cost(r.lat, r.hops, s)
			if diff := got - want[i][j]; diff > 0.01 || diff < -0.01 {
				t.Errorf("C(%d-hop, %dB) = %v, want %v", r.hops, s, got, want[i][j])
			}
		}
	}
	// Winners per column (underlined in Table 1): 1MB->1hop, 100KB->2hop, 10KB->4hop.
	entries := []Entry{
		{HopCount: 1, LatencySlices: 12},
		{HopCount: 2, LatencySlices: 3},
		{HopCount: 3, LatencySlices: 2},
		{HopCount: 4, LatencySlices: 1},
	}
	g := &Group{Entries: entries}
	g.BuildBuckets(m)
	for _, c := range []struct {
		size int64
		hops int
	}{{1e6, 1}, {1e5, 2}, {1e4, 4}} {
		if got := g.MinCostEntry(m, c.size); got.HopCount != c.hops {
			t.Errorf("min-cost for %dB = %d hops, want %d", c.size, got.HopCount, c.hops)
		}
		// The aged mapping must agree with exact minimization at the flow's
		// full size.
		if got := g.EntryForAged(m.AgedValue(c.size)); got.HopCount != c.hops {
			t.Errorf("aged mapping for %dB = %d hops, want %d", c.size, got.HopCount, c.hops)
		}
	}
}

func TestBoundaryBytesSolvesEqn3(t *testing.T) {
	m := CostModel{Alpha: 0.5, LinkBps: 100e9, SliceMicros: 50}
	latA, hopsA := int64(6), 1
	latB, hopsB := int64(2), 3
	s := m.BoundaryBytes(latA, hopsA, latB, hopsB)
	ca := m.Cost(latA, hopsA, int64(s))
	cb := m.Cost(latB, hopsB, int64(s))
	if diff := ca - cb; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("costs at boundary differ: %v vs %v", ca, cb)
	}
	// Below the boundary the lower-latency path wins; above, fewer hops win.
	if m.Cost(latB, hopsB, int64(s/2)) >= m.Cost(latA, hopsA, int64(s/2)) {
		t.Fatal("small flow should prefer low-latency path")
	}
	if m.Cost(latA, hopsA, int64(s*2)) >= m.Cost(latB, hopsB, int64(s*2)) {
		t.Fatal("large flow should prefer few-hop path")
	}
}

// ---- §4.1/Alg. 1: n-hop minimum-latency paths. ----

func TestTablesValid(t *testing.T) {
	f := scaledFabric(t)
	calc := NewCalculator(f)
	for ts := 0; ts < f.Sched.S; ts++ {
		tab := calc.Compute(ts)
		if err := tab.validate(); err != nil {
			t.Fatalf("tstart %d: %v", ts, err)
		}
	}
}

// Brute-force the true n-hop minimum latency on a tiny fabric and compare.
func TestDPMatchesBruteForce(t *testing.T) {
	cfg := topo.Scaled()
	cfg.NumToRs = 8
	cfg.Uplinks = 2
	f := topo.MustFabric(cfg, "round-robin", 1)
	calc := NewCalculator(f)
	if calc.HSlice < calc.Bound.HStatic {
		t.Logf("case II fabric (hslice=%d, hstatic=%d)", calc.HSlice, calc.Bound.HStatic)
	}
	sched := f.Sched

	// bruteEnd returns the minimum end slice over ALL n-hop walks whose
	// prefix is itself latency-minimal at each step is NOT assumed; we
	// search the full walk space (with the same intra-slice hop cap).
	var bruteEnd func(cur, dst int, hopsLeft int, arrive int64, hInSlice int) int64
	bruteEnd = func(cur, dst int, hopsLeft int, arrive int64, hInSlice int) int64 {
		if hopsLeft == 0 {
			if cur == dst {
				return arrive
			}
			return -1
		}
		best := int64(-1)
		for next := 0; next < sched.N; next++ {
			if next == cur {
				continue
			}
			if hopsLeft > 1 && next == dst {
				continue // match DP: intermediates differ from dst
			}
			e := sched.NextDirect(cur, next, arrive)
			h := 1
			if e == arrive {
				if hInSlice >= calc.HSlice {
					e = sched.NextDirect(cur, next, arrive+1)
				} else {
					h = hInSlice + 1
				}
			}
			got := bruteEnd(next, dst, hopsLeft-1, e, h)
			if got >= 0 && (best < 0 || got < best) {
				best = got
			}
		}
		return best
	}

	tab := calc.Compute(0)
	maxN := 3
	if maxN > calc.HMax {
		maxN = calc.HMax
	}
	for src := 0; src < sched.N; src++ {
		for dst := 0; dst < sched.N; dst++ {
			if src == dst {
				continue
			}
			for n := 1; n <= maxN; n++ {
				want := bruteEnd(src, dst, n, 0, 0)
				got := tab.EndSlice(n, src, dst)
				// The DP constrains prefixes to be the (n-1)-hop minimum
				// path (the paper's recursion), so it can only be >= the
				// brute force; for n<=2 they must match exactly.
				if n <= 2 && got != want {
					t.Fatalf("%d-hop %d->%d: DP end %d, brute %d", n, src, dst, got, want)
				}
				if got < want {
					t.Fatalf("%d-hop %d->%d: DP end %d beats brute force %d", n, src, dst, got, want)
				}
			}
		}
	}
}

func TestPaperFig3Example(t *testing.T) {
	// Reconstruct the Fig 3 topology: 5 ToRs A..E = 0..4, circuits with
	// slices: A-B:5, A-C:1, A-D:4, A-E:2, C-B:4, D-B:3, E-B:1, C-E:2, C-D:2.
	// We can't express this exact asymmetric instance as a generated
	// schedule, so this test drives the group logic directly on
	// hand-constructed tables... covered instead via CostModel and the DP
	// invariants; here we verify the documented outcome on the generated
	// fabric: multi-hop minimum-latency paths never have higher latency
	// than the direct path.
	f := scaledFabric(t)
	calc := NewCalculator(f)
	tab := calc.Compute(2)
	n := f.Sched.N
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			direct := tab.LatencySlices(1, src, dst)
			for h := 2; h <= calc.HMax; h++ {
				if lat := tab.LatencySlices(h, src, dst); lat > direct+int64(f.Sched.S) {
					t.Fatalf("%d-hop %d->%d latency %d wildly above direct %d", h, src, dst, lat, direct)
				}
			}
		}
	}
}

func TestParallelPathsShareCost(t *testing.T) {
	f := scaledFabric(t)
	calc := NewCalculator(f)
	tab := calc.Compute(0)
	n := f.Sched.N
	found := 0
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			for h := 2; h <= calc.HMax; h++ {
				paths := tab.ParallelPaths(h, src, dst)
				if len(paths) > 1 {
					found++
				}
				for _, p := range paths {
					if err := p.Validate(); err != nil {
						t.Fatal(err)
					}
					if p.EndSlice() != paths[0].EndSlice() {
						t.Fatalf("parallel paths with different latencies: %v vs %v", p, paths[0])
					}
					if p.HopCount() != h {
						t.Fatalf("parallel path hop count %d, want %d", p.HopCount(), h)
					}
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("no parallel solutions found anywhere; property 2 untested")
	}
}

// ---- §4.3: UCMP group properties. ----

func TestGroupProperties(t *testing.T) {
	f := scaledFabric(t)
	ps := BuildPathSet(f, 0.5)
	n := f.Sched.N
	groups := 0
	for ts := 0; ts < f.Sched.S; ts++ {
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				g := ps.Group(ts, src, dst)
				if err := g.Validate(); err != nil {
					t.Fatalf("group (%d,%d,%d): %v", src, dst, ts, err)
				}
				groups++
				// Property 3 plus the hull: thresholds count matches hull.
				if len(g.Thresholds()) != len(g.hull)-1 {
					t.Fatalf("threshold/hull mismatch")
				}
			}
		}
	}
	if groups == 0 {
		t.Fatal("no groups built")
	}
}

// Property 1 against an exhaustive check: no path of the same hop count
// (over the full walk space) beats a group's entry latency. Small fabric.
func TestGroupProperty1Exhaustive(t *testing.T) {
	cfg := topo.Scaled()
	cfg.NumToRs = 8
	cfg.Uplinks = 2
	f := topo.MustFabric(cfg, "round-robin", 1)
	ps := BuildPathSet(f, 0.5)
	sched := f.Sched
	var walkMin func(cur, dst, hopsLeft int, arrive int64, h int) int64
	walkMin = func(cur, dst, hopsLeft int, arrive int64, h int) int64 {
		if hopsLeft == 0 {
			if cur == dst {
				return arrive
			}
			return -1
		}
		best := int64(-1)
		for next := 0; next < sched.N; next++ {
			if next == cur || (hopsLeft > 1 && next == dst) {
				continue
			}
			e := sched.NextDirect(cur, next, arrive)
			hh := 1
			if e == arrive {
				if h >= ps.Calc.HSlice {
					e = sched.NextDirect(cur, next, arrive+1)
				} else {
					hh = h + 1
				}
			}
			if got := walkMin(next, dst, hopsLeft-1, e, hh); got >= 0 && (best < 0 || got < best) {
				best = got
			}
		}
		return best
	}
	for src := 0; src < 4; src++ {
		for dst := 4; dst < 8; dst++ {
			g := ps.Group(0, src, dst)
			for _, e := range g.Entries {
				if e.HopCount > 2 {
					continue // keep the exhaustive walk tractable
				}
				brute := walkMin(src, dst, e.HopCount, 0, 0)
				lat := brute + 1 // start slice 0
				if e.LatencySlices != lat {
					t.Fatalf("group entry %d-hop %d->%d latency %d, exhaustive %d",
						e.HopCount, src, dst, e.LatencySlices, lat)
				}
			}
		}
	}
}

func TestDirectSliceSingletonGroups(t *testing.T) {
	f := scaledFabric(t)
	ps := BuildPathSet(f, 0.5)
	n := f.Sched.N
	for ts := 0; ts < f.Sched.S; ts++ {
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				g := ps.Group(ts, src, dst)
				if f.Sched.SwitchFor(ts, src, dst) >= 0 {
					// Direct circuit in the starting slice: latency 1, hop 1
					// dominates everything; the group must be the single
					// direct path (§5.3).
					if len(g.Entries) != 1 || g.Entries[0].HopCount != 1 || g.Entries[0].LatencySlices != 1 {
						t.Fatalf("direct-slice group (%d,%d,%d) = %+v", src, dst, ts, g.Entries)
					}
				}
			}
		}
	}
	gs, psn := ps.SingleSliceShare()
	if gs <= 0 || gs > 0.5 {
		t.Fatalf("single-path group share %v out of plausible range", gs)
	}
	if psn >= gs {
		t.Fatalf("backup path share %v should be below group share %v", psn, gs)
	}
}

// ---- Flow aging and buckets (§5.1, §5.2). ----

func TestAgingMonotonic(t *testing.T) {
	f := scaledFabric(t)
	ps := BuildPathSet(f, 0.5)
	ager := NewFlowAger(ps)
	if ager.NumBuckets() < 2 {
		t.Fatalf("expected multiple global buckets, got %d", ager.NumBuckets())
	}
	if ager.NumBuckets() > 64 {
		t.Fatalf("buckets %d exceed 6-bit DSCP budget (§6.1)", ager.NumBuckets())
	}
	prev := 0
	for bytes := int64(0); bytes < int64(1e9); bytes = bytes*2 + 1000 {
		b := ager.Bucket(bytes)
		if b < prev {
			t.Fatalf("bucket decreased as flow aged: %d after %d", b, prev)
		}
		prev = b
	}
}

// As a flow ages it must step to paths with fewer (or equal) hops and
// higher (or equal) latency — the §5.1 "no reordering in normal cases"
// argument relies on this monotonicity.
func TestAgedPathMonotonicity(t *testing.T) {
	f := scaledFabric(t)
	ps := BuildPathSet(f, 0.5)
	ager := NewFlowAger(ps)
	n := f.Sched.N
	for ts := 0; ts < f.Sched.S; ts++ {
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				g := ps.Group(ts, src, dst)
				prevHops := 1 << 30
				prevLat := int64(-1)
				for b := 0; b < ager.NumBuckets(); b++ {
					e := ager.EntryForBucket(g, b)
					if e.HopCount > prevHops {
						t.Fatalf("hops increased with age: group (%d,%d,%d) bucket %d", src, dst, ts, b)
					}
					if e.HopCount < prevHops {
						if prevLat >= 0 && e.LatencySlices < prevLat {
							t.Fatalf("latency decreased with age: group (%d,%d,%d) bucket %d", src, dst, ts, b)
						}
					}
					prevHops, prevLat = e.HopCount, e.LatencySlices
				}
			}
		}
	}
}

// The aged mapping must agree with exact cost minimization over the hull.
func TestAgedMatchesExactMinimization(t *testing.T) {
	f := scaledFabric(t)
	ps := BuildPathSet(f, 0.5)
	n := f.Sched.N
	prop := func(rawSrc, rawDst, rawTs uint8, rawSize uint32) bool {
		src, dst := int(rawSrc)%n, int(rawDst)%n
		if src == dst {
			return true
		}
		ts := int(rawTs) % f.Sched.S
		size := int64(rawSize)%int64(2e8) + 1
		g := ps.Group(ts, src, dst)
		exact := g.MinCostEntry(ps.Model, size)
		aged := g.EntryForAged(ps.Model.AgedValue(size))
		// Both must achieve the same (minimal) cost; they may be distinct
		// entries only if tied.
		ce := ps.Model.Cost(exact.LatencySlices, exact.HopCount, size)
		ca := ps.Model.Cost(aged.LatencySlices, aged.HopCount, size)
		return ca <= ce+1e-9
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAlphaRetuneShiftsBuckets(t *testing.T) {
	f := scaledFabric(t)
	ps := BuildPathSet(f, 0.5)
	ager := NewFlowAger(ps)
	bytes := int64(5e6)
	low := ager.Bucket(bytes)
	ager.SetAlpha(2.0)
	high := ager.Bucket(bytes)
	if high < low {
		t.Fatalf("larger α must age flows faster: bucket %d -> %d", low, high)
	}
	if ager.Alpha() != 2.0 {
		t.Fatal("alpha not stored")
	}
}

// ---- Latency relaxation and backups (§4.3, §5.3). ----

func TestRelaxedTwoHop(t *testing.T) {
	f := scaledFabric(t)
	ps := BuildPathSet(f, 0.5)
	paths := ps.RelaxedTwoHop(0, 0, 5, 0)
	if len(paths) != f.Sched.N-2 {
		t.Fatalf("want a 2-hop path via every intermediate, got %d", len(paths))
	}
	for i, p := range paths {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if p.HopCount() != 2 {
			t.Fatalf("relaxed path with %d hops", p.HopCount())
		}
		if i > 0 && p.EndSlice() < paths[i-1].EndSlice() {
			t.Fatal("relaxed paths not sorted by latency")
		}
	}
	// Latency cap prunes.
	capped := ps.RelaxedTwoHop(0, 0, 5, 2)
	for _, p := range capped {
		if p.LatencySlices() > 2 {
			t.Fatalf("capped path latency %d > 2", p.LatencySlices())
		}
	}
	if len(capped) >= len(paths) {
		t.Fatal("cap did not prune anything")
	}
}

func TestBackupPathsExclude(t *testing.T) {
	f := scaledFabric(t)
	ps := BuildPathSet(f, 0.5)
	bad := 3
	paths := ps.BackupPaths(0, 0, 5, 4, func(tor int) bool { return tor == bad })
	if len(paths) == 0 {
		t.Fatal("no backup paths")
	}
	if len(paths) > 4 {
		t.Fatal("k not honored")
	}
	for _, p := range paths {
		if p.Hops[0].To == bad {
			t.Fatalf("backup path uses excluded ToR: %v", p)
		}
	}
}

// ---- Appendix B: h_max bound. ----

func TestPUnvisitedDecreasing(t *testing.T) {
	prev := 1.0
	for c := 1; c <= 6; c++ {
		p := PUnvisited(108, 6, c)
		if p < 0 || p > 1 {
			t.Fatalf("P out of [0,1]: %v", p)
		}
		if p > prev {
			t.Fatalf("P not decreasing at c=%d: %v > %v", c, p, prev)
		}
		prev = p
	}
}

// Table 3: S values for the paper's configurations.
func TestSpanSlicesTable3(t *testing.T) {
	cases := []struct {
		n, d, s int
	}{
		{108, 6, 5},
		{324, 6, 6},
		{4320, 24, 4},
		{1200, 12, 5},
	}
	for _, c := range cases {
		if got := SpanSlices(c.n, c.d, DefaultUnvisitedThreshold); got != c.s {
			t.Errorf("S(%d,%d) = %d, want %d (Table 3)", c.n, c.d, got, c.s)
		}
	}
}

func TestBoundHmaxCases(t *testing.T) {
	cfg := topo.PaperDefault()
	sched := topo.RoundRobin(cfg.NumToRs, cfg.Uplinks)

	// 50 us slices: h_slice=80 >= h_static -> case I.
	b := BoundHmax(cfg, sched)
	if !b.CaseI {
		t.Fatalf("50us slices should be case I: %+v", b)
	}
	if b.Q != b.HStatic {
		t.Fatalf("case I Q=%d, want h_static=%d", b.Q, b.HStatic)
	}

	// 1 us slices: h_slice=1 < h_static -> case II, Q = 1*S = 5.
	cfg.SliceDuration = 1 * sim.Microsecond
	b = BoundHmax(cfg, sched)
	if b.CaseI {
		t.Fatalf("1us slices should be case II: %+v", b)
	}
	if b.S != 5 || b.Q != 5 {
		t.Fatalf("case II S=%d Q=%d, want 5/5 (Table 3)", b.S, b.Q)
	}
}

func TestQHmaxWithinPaperBound(t *testing.T) {
	// "Q(h_max) is at most 15 hops under a wide range of RDCN settings up
	// to 4320 ToRs" (§4.2) — check our generated fabrics stay within it.
	for _, nd := range [][2]int{{16, 3}, {108, 6}} {
		cfg := topo.PaperDefault()
		cfg.NumToRs, cfg.Uplinks = nd[0], nd[1]
		for _, u := range []sim.Time{1 * sim.Microsecond, 10 * sim.Microsecond, 50 * sim.Microsecond} {
			cfg.SliceDuration = u
			sched := topo.RoundRobin(cfg.NumToRs, cfg.Uplinks)
			b := BoundHmax(cfg, sched)
			if b.Q < 1 || b.Q > 16 {
				t.Errorf("Q(h_max)=%d for N=%d u=%v out of expected range", b.Q, nd[0], u)
			}
		}
	}
}

// ---- Path helpers. ----

func TestPathHelpers(t *testing.T) {
	p := &Path{Src: 0, Dst: 3, StartSlice: 2, Hops: []Hop{{To: 1, Slice: 2}, {To: 3, Slice: 4}}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.HopCount() != 2 || p.EndSlice() != 4 || p.LatencySlices() != 3 {
		t.Fatal("basic accessors wrong")
	}
	nodes := p.Nodes()
	if len(nodes) != 3 || nodes[0] != 0 || nodes[2] != 3 {
		t.Fatalf("nodes %v", nodes)
	}
	edges := p.Edges()
	if len(edges) != 2 || edges[0] != [2]int{0, 1} || edges[1] != [2]int{1, 3} {
		t.Fatalf("edges %v", edges)
	}
	if p.String() == "" {
		t.Fatal("empty string rendering")
	}
	bad := &Path{Src: 0, Dst: 3, StartSlice: 2, Hops: []Hop{{To: 1, Slice: 1}}}
	if bad.Validate() == nil {
		t.Fatal("time-travel path accepted")
	}
	empty := &Path{Src: 0, Dst: 1}
	if empty.Validate() == nil {
		t.Fatal("empty path accepted")
	}
	wrongDst := &Path{Src: 0, Dst: 3, Hops: []Hop{{To: 2, Slice: 0}}}
	if wrongDst.Validate() == nil {
		t.Fatal("wrong-destination path accepted")
	}
}

func TestPathSetAlphaLive(t *testing.T) {
	f := scaledFabric(t)
	ps := BuildPathSet(f, 0.5)
	before := ps.Model.Alpha
	ps.SetAlpha(0.7)
	if ps.Model.Alpha != 0.7 || before != 0.5 {
		t.Fatal("SetAlpha failed")
	}
	// Thresholds are α-free: unchanged by retuning.
	g := ps.Group(0, 0, 1)
	thr := append([]float64(nil), g.Thresholds()...)
	ps.SetAlpha(1.5)
	for i, v := range g.Thresholds() {
		if v != thr[i] {
			t.Fatal("thresholds changed with alpha; Eqn 4 violated")
		}
	}
}

// Property over random fabrics: the n-hop minimum end slice never exceeds
// the (n-1)-hop end slice by a full cycle or more — one extra hop can wait
// at most one cycle for its circuit.
func TestDPEndSliceGrowthBounded(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg := topo.Scaled()
		cfg.NumToRs = 10
		cfg.Uplinks = 2
		f := topo.MustFabric(cfg, "random", seed)
		calc := NewCalculator(f)
		s := int64(f.Sched.S)
		for ts := 0; ts < f.Sched.S; ts++ {
			tab := calc.Compute(ts)
			for src := 0; src < f.Sched.N; src++ {
				for dst := 0; dst < f.Sched.N; dst++ {
					if src == dst {
						continue
					}
					for n := 2; n <= calc.HMax; n++ {
						prev := tab.EndSlice(n-1, src, dst)
						cur := tab.EndSlice(n, src, dst)
						if prev < 0 || cur < 0 {
							continue
						}
						if cur > prev+s {
							t.Fatalf("seed %d ts %d %d->%d: end[%d]=%d beyond end[%d]+S=%d",
								seed, ts, src, dst, n, cur, n-1, prev+s)
						}
					}
				}
			}
		}
	}
}

// The hull thresholds must be exact uniform-cost indifference points: at
// threshold ± epsilon, the winning hull entry flips.
func TestThresholdsAreIndifferencePoints(t *testing.T) {
	f := scaledFabric(t)
	ps := BuildPathSet(f, 0.5)
	m := ps.Model
	checked := 0
	for ts := 0; ts < f.Sched.S; ts++ {
		for src := 0; src < f.Sched.N; src++ {
			for dst := 0; dst < f.Sched.N; dst++ {
				if src == dst {
					continue
				}
				g := ps.Group(ts, src, dst)
				for _, thr := range g.Thresholds() {
					below := g.EntryForAged(thr * 0.999)
					above := g.EntryForAged(thr * 1.001)
					if below.HopCount <= above.HopCount {
						t.Fatalf("threshold %v did not flip toward fewer hops: %d -> %d",
							thr, below.HopCount, above.HopCount)
					}
					// Costs are (nearly) equal exactly at the threshold.
					size := int64(thr / m.Alpha)
					cb := m.Cost(below.LatencySlices, below.HopCount, size)
					ca := m.Cost(above.LatencySlices, above.HopCount, size)
					rel := (cb - ca) / (cb + ca)
					if rel > 0.01 || rel < -0.01 {
						t.Fatalf("costs at threshold differ: %v vs %v", cb, ca)
					}
					checked++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no thresholds checked")
	}
}
