package core

// CostModel evaluates the uniform cost metric of §3.1:
//
//	C(p, f) = latency(p) + α · hop(p) · size(f) / B
//
// latency(p) is the Eqn. 1 slice latency converted to time, the hop term is
// the flow's transmission footprint converted to time by the link bandwidth
// B, and α weighs bandwidth efficiency against latency. All costs are
// reported in microseconds, matching Table 1 of the paper.
type CostModel struct {
	// Alpha is the weight factor α (§5.2). Larger α penalizes long paths
	// more, pushing flows to fewer hops and lowering core utilization.
	Alpha float64
	// LinkBps is the link bandwidth B in bits per second.
	LinkBps float64
	// SliceMicros is the time slice duration u in microseconds.
	SliceMicros float64
}

// LatencyMicros converts an Eqn. 1 slice latency to microseconds.
func (m CostModel) LatencyMicros(latencySlices int64) float64 {
	return float64(latencySlices) * m.SliceMicros
}

// HopTermMicros returns α·hop·size/B in microseconds for a flow of
// sizeBytes.
func (m CostModel) HopTermMicros(hops int, sizeBytes int64) float64 {
	return m.Alpha * float64(hops) * float64(sizeBytes) * 8 / m.LinkBps * 1e6
}

// Cost returns the uniform cost C(p,f) in microseconds for a path described
// by its slice latency and hop count, carrying a flow of sizeBytes.
func (m CostModel) Cost(latencySlices int64, hops int, sizeBytes int64) float64 {
	return m.LatencyMicros(latencySlices) + m.HopTermMicros(hops, sizeBytes)
}

// CostOfPath evaluates C(p,f) directly on a Path.
func (m CostModel) CostOfPath(p *Path, sizeBytes int64) float64 {
	return m.Cost(p.LatencySlices(), p.HopCount(), sizeBytes)
}

// BoundaryBytes solves Eqn. 3 for the flow size at which two candidate
// paths have equal uniform cost. pA has fewer hops and higher latency than
// pB. Flows smaller than the boundary prefer pB (low latency); flows at or
// above it prefer pA (fewer hops).
func (m CostModel) BoundaryBytes(latA int64, hopsA int, latB int64, hopsB int) float64 {
	dLatMicros := m.LatencyMicros(latA - latB)
	dHops := float64(hopsB - hopsA)
	// size = B·Δlatency / (α·Δhops); convert micros+bps to bytes.
	return m.LinkBps * dLatMicros / 1e6 / (m.Alpha * dHops) / 8
}

// AgedValue maps a flow's bytes-sent to the α-scaled domain of Eqn. 4
// (§5.2): bucket boundaries are fixed, and retuning α only rescales this
// mapping, so new α values can be broadcast to hosts without recomputing
// thresholds.
func (m CostModel) AgedValue(bytesSent int64) float64 {
	return m.Alpha * float64(bytesSent)
}

// AlphaFreeBoundary returns the α-independent boundary value of Eqn. 4
// (right-hand side, per unit hop difference) in the same domain as
// AgedValue: B·Δlatency/Δhops expressed in bytes at α=1.
func (m CostModel) AlphaFreeBoundary(latA int64, hopsA int, latB int64, hopsB int) float64 {
	dLatMicros := m.LatencyMicros(latA - latB)
	return m.LinkBps * dLatMicros / 1e6 / float64(hopsB-hopsA) / 8
}
