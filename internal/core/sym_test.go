package core

import (
	"fmt"
	"strings"
	"testing"

	"ucmp/internal/topo"
)

func symFabric(t *testing.T, n, d int) *topo.Fabric {
	return kindFabric(t, "round-robin", n, d)
}

func kindFabric(t *testing.T, kind string, n, d int) *topo.Fabric {
	t.Helper()
	cfg := topo.Scaled()
	cfg.NumToRs, cfg.Uplinks = n, d
	f, err := topo.NewFabric(cfg, kind, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Sched.Rotation() {
		t.Fatalf("%s(%d,%d) not rotation-symmetric", kind, n, d)
	}
	return f
}

// groupString renders everything observable about a group: entry structure,
// every path's absolute hops, the hull, and the thresholds.
func groupString(g *Group) string {
	var b strings.Builder
	fmt.Fprintf(&b, "src=%d dst=%d ts=%d hull=%v thr=%v\n", g.Src, g.Dst, g.StartSlice, g.hull, g.thrFree)
	for _, e := range g.Entries {
		fmt.Fprintf(&b, " h=%d lat=%d paths=%d\n", e.HopCount, e.LatencySlices, len(e.Paths))
		for _, p := range e.Paths {
			fmt.Fprintf(&b, "  %d->%d@%d:", p.Src, p.Dst, p.StartSlice)
			for _, hp := range p.Hops {
				fmt.Fprintf(&b, " (%d,%d)", hp.To, hp.Slice)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// TestSymmetricBuildMatchesBrute is the tentpole differential: on small
// symmetric fabrics — across every circulant schedule family — the
// canonical O(S·N) build must be group-for-group identical to the
// brute-force O(S·N²) build — same entries, same absolute hop sequences,
// same parallel-path sets, same hulls and thresholds — for every
// (t_start, src, dst) and across both bucket configurations (MaxParallel 1
// and the default 4).
func TestSymmetricBuildMatchesBrute(t *testing.T) {
	for _, kind := range []string{"round-robin", "opera", "random-circulant"} {
		for _, nd := range [][2]int{{8, 4}, {16, 4}} {
			for _, mp := range []int{1, 4} {
				f := kindFabric(t, kind, nd[0], nd[1])
				sym := BuildPathSetOpts(f, 0.5, BuildOptions{MaxParallel: mp})
				if !sym.Symmetric() {
					t.Fatalf("%s(%d,%d): symmetric build not taken", kind, nd[0], nd[1])
				}
				brute := BuildPathSetOpts(f, 0.5, BuildOptions{MaxParallel: mp, NoSymmetry: true})
				if brute.Symmetric() {
					t.Fatalf("%s(%d,%d): NoSymmetry ignored", kind, nd[0], nd[1])
				}
				s, n := f.Sched.S, f.Sched.N
				for ts := 0; ts < s; ts++ {
					for src := 0; src < n; src++ {
						for dst := 0; dst < n; dst++ {
							if src == dst {
								continue
							}
							gs := groupString(sym.Group(ts, src, dst))
							gb := groupString(brute.Group(ts, src, dst))
							if gs != gb {
								t.Fatalf("%s(%d,%d) mp=%d group (%d,%d,%d) differs:\nsym:\n%s\nbrute:\n%s",
									kind, nd[0], nd[1], mp, ts, src, dst, gs, gb)
							}
						}
					}
				}
				// The derived global structures must agree too.
				st, bt := sym.GlobalThresholds(), brute.GlobalThresholds()
				if len(st) != len(bt) {
					t.Fatalf("threshold counts differ: %d vs %d", len(st), len(bt))
				}
				for i := range st {
					if st[i] != bt[i] {
						t.Fatalf("threshold %d differs: %v vs %v", i, st[i], bt[i])
					}
				}
				sg, sp := sym.SingleSliceShare()
				bg, bp := brute.SingleSliceShare()
				if sg != bg || sp != bp {
					t.Fatalf("single-slice shares differ: (%v,%v) vs (%v,%v)", sg, sp, bg, bp)
				}
			}
		}
	}
}

// TestScheduleHStaticRotationExact: the vertex-transitive fast path (one
// BFS per slice) must agree with the exhaustive all-pairs diameter on
// symmetric schedules of every circulant kind.
func TestScheduleHStaticRotationExact(t *testing.T) {
	for _, kind := range []string{"round-robin", "opera", "random-circulant"} {
		for _, nd := range [][2]int{{16, 4}, {64, 4}, {64, 8}} {
			f := kindFabric(t, kind, nd[0], nd[1])
			if got, want := scheduleHStatic(f.Sched), f.Sched.MaxDiameter(); got != want {
				t.Errorf("%s(%d,%d): scheduleHStatic = %d, MaxDiameter = %d",
					kind, nd[0], nd[1], got, want)
			}
		}
	}
}

// TestSymmetricBuildWorkerInvariance: the interned store and spine must be
// byte-identical regardless of worker count (the interning pass is serial).
func TestSymmetricBuildWorkerInvariance(t *testing.T) {
	f := symFabric(t, 16, 4)
	ref := BuildPathSetOpts(f, 0.5, BuildOptions{Workers: 1})
	for _, w := range []int{2, 3, 8} {
		ps := BuildPathSetOpts(f, 0.5, BuildOptions{Workers: w})
		if len(ps.interned) != len(ref.interned) {
			t.Fatalf("workers=%d: %d interned vs %d", w, len(ps.interned), len(ref.interned))
		}
		for i := range ps.canonIdx {
			if ps.canonIdx[i] != ref.canonIdx[i] {
				t.Fatalf("workers=%d: spine differs at %d", w, i)
			}
		}
		for i := range ps.interned {
			if groupString(ps.interned[i]) != groupString(ref.interned[i]) {
				t.Fatalf("workers=%d: interned %d differs", w, i)
			}
		}
	}
}

// TestCanonStats: the spine covers S·(N-1) rows and dedup never exceeds it.
func TestCanonStats(t *testing.T) {
	f := symFabric(t, 16, 4)
	ps := BuildPathSet(f, 0.5)
	rows, unique := ps.CanonStats()
	if rows != f.Sched.S*(f.Sched.N-1) {
		t.Fatalf("rows = %d, want %d", rows, f.Sched.S*(f.Sched.N-1))
	}
	if unique < 1 || unique > rows {
		t.Fatalf("unique = %d outside [1, %d]", unique, rows)
	}
	// Every canonical group validates and is t_start-relative.
	for _, g := range ps.interned {
		if g.Src != 0 || g.StartSlice != 0 {
			t.Fatalf("canonical group not in relative form: src=%d ts=%d", g.Src, g.StartSlice)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Non-symmetric builds report zero.
	cfg := topo.Scaled()
	bf := topo.MustFabric(cfg, "round-robin", 1) // 16 ToRs, 3 uplinks: circle method
	bps := BuildPathSet(bf, 0.5)
	if bps.Symmetric() {
		t.Fatal("circle-method schedule took the symmetric build")
	}
	if r, u := bps.CanonStats(); r != 0 || u != 0 {
		t.Fatalf("non-symmetric CanonStats = (%d,%d)", r, u)
	}
}

// TestEffectiveWorkers pins the clamp: never above the task count, never
// below one, GOMAXPROCS default for non-positive requests.
func TestEffectiveWorkers(t *testing.T) {
	cases := []struct{ req, tasks, want int }{
		{8, 3, 3},
		{2, 5, 2},
		{1, 5, 1},
		{5, 1, 1},
		{16, 16, 16},
		{3, 0, 1}, // degenerate task count still yields a worker
	}
	for _, c := range cases {
		if got := effectiveWorkers(c.req, c.tasks); got != c.want {
			t.Errorf("effectiveWorkers(%d,%d) = %d, want %d", c.req, c.tasks, got, c.want)
		}
	}
	if got := effectiveWorkers(0, 2); got < 1 || got > 2 {
		t.Errorf("effectiveWorkers(0,2) = %d, want within [1,2]", got)
	}
	if got := effectiveWorkers(-1, 1000); got < 1 || got > 1000 {
		t.Errorf("effectiveWorkers(-1,1000) = %d out of range", got)
	}
}

// TestRowTablesMatchFullTablesWithTies: ComputeRowInto must reproduce the
// full DP's rows including tie lists on an asymmetric schedule too (it is
// also the switchres sampling path).
func TestRowTablesMatchFullTablesWithTies(t *testing.T) {
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1) // 16/3: circle method
	calc := NewCalculator(f)
	for _, ts := range []int{0, f.Sched.S - 1} {
		full := calc.Compute(ts)
		var rt *RowTables
		for src := 0; src < f.Sched.N; src += 5 {
			rt = calc.ComputeRowInto(ts, src, rt)
			for h := 1; h <= calc.HMax; h++ {
				for dst := 0; dst < f.Sched.N; dst++ {
					if dst == src {
						continue
					}
					if rt.end[h][dst] != full.end[h][src*full.N+dst] {
						t.Fatalf("end[%d][%d->%d] differs", h, src, dst)
					}
					if rt.last[h][dst] != full.last[h][src*full.N+dst] {
						t.Fatalf("last[%d][%d->%d] differs", h, src, dst)
					}
					if h >= 2 {
						a, b := rt.par[h][dst], full.par[h][src*full.N+dst]
						if len(a) != len(b) {
							t.Fatalf("ties[%d][%d->%d]: %v vs %v", h, src, dst, a, b)
						}
						for i := range a {
							if a[i] != b[i] {
								t.Fatalf("ties[%d][%d->%d]: %v vs %v", h, src, dst, a, b)
							}
						}
					}
				}
			}
		}
	}
}
