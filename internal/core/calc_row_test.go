package core

import (
	"testing"

	"ucmp/internal/topo"
)

// The single-source row DP must agree exactly with the full DP.
func TestRowMatchesFullTables(t *testing.T) {
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	calc := NewCalculator(f)
	for ts := 0; ts < f.Sched.S; ts++ {
		full := calc.Compute(ts)
		for src := 0; src < f.Sched.N; src += 3 {
			row := calc.ComputeRow(ts, src)
			for dst := 0; dst < f.Sched.N; dst++ {
				if dst == src {
					continue
				}
				for n := 1; n <= calc.HMax; n++ {
					if got, want := row.end[n][dst], full.EndSlice(n, src, dst); got != want {
						t.Fatalf("row DP end (ts=%d n=%d %d->%d) = %d, full = %d", ts, n, src, dst, got, want)
					}
				}
			}
		}
	}
}

// GroupShapes must agree with the materialized groups on hull hops,
// latencies, and thresholds.
func TestGroupShapesMatchGroups(t *testing.T) {
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	ps := BuildPathSet(f, 0.5)
	calc := ps.Calc
	for _, ts := range []int{0, 2} {
		for _, src := range []int{0, 5, 11} {
			row := calc.ComputeRow(ts, src)
			shapes := calc.GroupShapes(row, ps.Model)
			for dst := 0; dst < f.Sched.N; dst++ {
				if dst == src {
					continue
				}
				g := ps.Group(ts, src, dst)
				sh := shapes[dst]
				if len(sh.Hops) != len(g.hull) {
					t.Fatalf("(%d,%d,%d): shape hull %d vs group hull %d", src, dst, ts, len(sh.Hops), len(g.hull))
				}
				for i, hi := range g.hull {
					if sh.Hops[i] != g.Entries[hi].HopCount || sh.Latencies[i] != g.Entries[hi].LatencySlices {
						t.Fatalf("(%d,%d,%d): hull point %d differs", src, dst, ts, i)
					}
				}
				thr := g.Thresholds()
				if len(sh.Thresholds) != len(thr) {
					t.Fatalf("(%d,%d,%d): thresholds %d vs %d", src, dst, ts, len(sh.Thresholds), len(thr))
				}
				for i := range thr {
					if sh.Thresholds[i] != thr[i] {
						t.Fatalf("(%d,%d,%d): threshold %d differs", src, dst, ts, i)
					}
				}
			}
		}
	}
}

func TestHStaticSampledPlausible(t *testing.T) {
	// Sampled estimate on a mid-size fabric should land near the exact
	// schedule diameter.
	exact := topo.RoundRobin(108, 6).MaxDiameter()
	est := HStaticSampled(108, 6, 6, 1)
	if est < exact-2 || est > exact+2 {
		t.Fatalf("sampled h_static %d vs exact %d", est, exact)
	}
	// Large fabric: must stay small (expanders) and not panic.
	big := HStaticSampled(1200, 12, 2, 1)
	if big < 2 || big > 8 {
		t.Fatalf("h_static(1200,12) = %d implausible", big)
	}
}

func TestBoundHmaxTestbedUplinks(t *testing.T) {
	// The h_slice computation must use the uplink rate: the §8 testbed has
	// 10G uplinks under 100G downlinks.
	cfg := topo.Config{
		NumToRs: 8, Uplinks: 4, HostsPerToR: 1,
		LinkBps: 100e9, UplinkBps: 10e9,
		PropDelay:     500,
		SliceDuration: 50000,
		ReconfDelay:   1000,
		MTU:           1500,
	}
	// 1500B at 10G = 1200ns, +500 prop = 1700ns -> 29 hops per 50us slice.
	if got := cfg.HopsPerSlice(); got != 29 {
		t.Fatalf("h_slice = %d, want 29", got)
	}
}
