package fabriccache

import (
	"bytes"
	"os"
	"path/filepath"
	"time"
	"testing"

	"ucmp/internal/core"
	"ucmp/internal/routing"
	"ucmp/internal/topo"
)

func testFabric(t testing.TB, kind string, n, d int) *topo.Fabric {
	cfg := topo.Scaled()
	cfg.NumToRs, cfg.Uplinks = n, d
	f, err := topo.NewFabric(cfg, kind, 1)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func compile(t testing.TB, f *topo.Fabric, p Params) (*core.PathSet, *routing.CompiledTable) {
	ps := core.BuildPathSetWith(f, p.Alpha, p.MaxParallel)
	if !ps.Symmetric() {
		t.Fatalf("build not symmetric")
	}
	return ps, routing.CompileTable(ps, core.NewFlowAger(ps), 0)
}

// TestSaveLoadRoundTrip: a saved fabric loads back — mmap'd/aliased, plain
// read, and fully copying — with the exact same compiled table bytes and an
// equivalent path set, across schedule kinds.
func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"round-robin", "opera", "random-circulant"} {
		f := testFabric(t, kind, 16, 4)
		p := Params{Alpha: 0.5}
		ps, table := compile(t, f, p)
		path := FileName(dir, f, p)
		if err := Save(path, ps, table); err != nil {
			t.Fatalf("%s: save: %v", kind, err)
		}
		wantTable := table.Bytes()
		wantRows, wantCanon := ps.CanonStats()
		for _, opt := range []Options{{}, {NoMmap: true}, {NoAlias: true}} {
			warm, err := Load(path, f, p, opt)
			if err != nil {
				t.Fatalf("%s %+v: load: %v", kind, opt, err)
			}
			if !bytes.Equal(warm.Table.Bytes(), wantTable) {
				t.Fatalf("%s %+v: warm table differs from cold", kind, opt)
			}
			if rows, canon := warm.PS.CanonStats(); rows != wantRows || canon != wantCanon {
				t.Fatalf("%s %+v: warm CanonStats (%d,%d), want (%d,%d)", kind, opt, rows, canon, wantRows, wantCanon)
			}
			if warm.PS.Calc.MaxParallel != core.DefaultMaxParallel {
				t.Fatalf("%s: warm MaxParallel %d, want default %d", kind, warm.PS.Calc.MaxParallel, core.DefaultMaxParallel)
			}
			// Recompiling ToR 0 from the warm path set must reproduce the
			// loaded table exactly — the differential that pins warm == cold.
			re := routing.CompileTable(warm.PS, core.NewFlowAger(warm.PS), 0)
			if !bytes.Equal(re.Bytes(), wantTable) {
				t.Fatalf("%s %+v: table recompiled from warm path set differs", kind, opt)
			}
			if err := warm.Close(); err != nil {
				t.Fatalf("%s: close: %v", kind, err)
			}
		}
	}
}

// TestFileNameKeys: distinct fabrics or params produce distinct cache file
// names; the same inputs reproduce the same name.
func TestFileNameKeys(t *testing.T) {
	f1 := testFabric(t, "round-robin", 16, 4)
	f2 := testFabric(t, "opera", 16, 4)
	p := Params{Alpha: 0.5}
	if FileName("d", f1, p) != FileName("d", f1, Params{Alpha: 0.5}) {
		t.Fatal("same fabric+params must map to the same file")
	}
	names := map[string]string{
		"schedule kind": FileName("d", f2, p),
		"alpha":         FileName("d", f1, Params{Alpha: 0.7}),
		"maxParallel":   FileName("d", f1, Params{Alpha: 0.5, MaxParallel: 2}),
	}
	base := FileName("d", f1, p)
	for what, name := range names {
		if name == base {
			t.Fatalf("changing %s must change the file name", what)
		}
	}
	// MaxParallel 0 and the explicit default are the same compiled content.
	if FileName("d", f1, Params{Alpha: 0.5, MaxParallel: core.DefaultMaxParallel}) != base {
		t.Fatal("default maxParallel must normalize to the same file")
	}
}

// TestLoadRejections: every way a file can be wrong — missing, truncated,
// bit-flipped anywhere, wrong version, wrong fabric, wrong params — is an
// error, never a panic or a partial fabric.
func TestLoadRejections(t *testing.T) {
	dir := t.TempDir()
	f := testFabric(t, "round-robin", 16, 4)
	p := Params{Alpha: 0.5}
	ps, table := compile(t, f, p)
	path := FileName(dir, f, p)
	if err := Save(path, ps, table); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	loadImg := func(img []byte) error {
		mut := filepath.Join(dir, "mut.ucmpfab")
		if err := os.WriteFile(mut, img, 0o644); err != nil {
			t.Fatal(err)
		}
		warm, err := Load(mut, f, p, Options{NoMmap: true})
		if err == nil {
			warm.Close()
		}
		return err
	}

	if _, err := Load(filepath.Join(dir, "absent"), f, p, Options{}); err == nil {
		t.Fatal("missing file must error")
	}
	for _, cut := range []int{len(img) - 1, len(img) / 2, headerSize, headerSize - 1, 8, 0} {
		if err := loadImg(img[:cut]); err == nil {
			t.Fatalf("file truncated to %d bytes must error", cut)
		}
	}
	// Every single-byte flip in the whole image must be rejected: header
	// flips break the header checksum (or a validated field), payload flips
	// break the payload checksum.
	for i := 0; i < len(img); i++ {
		mut := append([]byte(nil), img...)
		mut[i] ^= 0x10
		if err := loadImg(mut); err == nil {
			t.Fatalf("flipping byte %d must error", i)
		}
	}
	// Mismatched fabric: the same file under a different schedule.
	other := testFabric(t, "round-robin", 16, 6)
	if _, err := Load(path, other, p, Options{NoMmap: true}); err == nil {
		t.Fatal("loading under a different fabric must error")
	}
	// Mismatched params.
	if _, err := Load(path, f, Params{Alpha: 0.7}, Options{NoMmap: true}); err == nil {
		t.Fatal("loading under a different alpha must error")
	}
	if _, err := Load(path, f, Params{Alpha: 0.5, MaxParallel: 2}, Options{NoMmap: true}); err == nil {
		t.Fatal("loading under a different maxParallel must error")
	}
}

// TestSaveOverwrites: Save atomically replaces an existing file (the
// rebuild-and-overwrite path the harness takes after a failed load).
func TestSaveOverwrites(t *testing.T) {
	dir := t.TempDir()
	f := testFabric(t, "round-robin", 8, 4)
	p := Params{Alpha: 0.5}
	ps, table := compile(t, f, p)
	path := FileName(dir, f, p)
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, f, p, Options{}); err == nil {
		t.Fatal("garbage file must fail to load")
	}
	if err := Save(path, ps, table); err != nil {
		t.Fatal(err)
	}
	warm, err := Load(path, f, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if !bytes.Equal(warm.Table.Bytes(), table.Bytes()) {
		t.Fatal("reloaded table differs after overwrite")
	}
}

// FuzzLoad: arbitrary file images never panic the loader.
func FuzzLoad(f *testing.F) {
	fab := testFabric(f, "round-robin", 8, 4)
	p := Params{Alpha: 0.5}
	ps, table := compile(f, fab, p)
	img, err := Encode(ps, table)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add(img[:headerSize])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, img []byte) {
		warm, err := decode(img, fab, p, Options{NoAlias: true})
		if err == nil {
			// Anything the loader accepts must be a complete, valid fabric.
			if warm.PS == nil || warm.Table == nil {
				t.Fatal("accepted fabric is partial")
			}
			if err := warm.Table.Validate(warm.PS); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// TestSaveUnwritableDegrades: Save into an unwritable location returns an
// error (never a panic, never a partial cache file) — the harness warm path
// turns that into a warning plus a cold build.
func TestSaveUnwritableDegrades(t *testing.T) {
	fab := testFabric(t, "round-robin", 16, 4)
	p := Params{Alpha: 0.5}
	ps, table := compile(t, fab, p)

	// A regular file where the cache directory should be: MkdirAll fails
	// with ENOTDIR on every platform, even running as root (where a chmod'd
	// read-only directory would not block writes).
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(blocker, "sub", "fabric.ucmpfab")
	if err := Save(path, ps, table); err == nil {
		t.Fatal("Save into an unwritable path succeeded")
	}
	if _, err := os.Stat(path); err == nil {
		t.Fatal("partial cache file left behind")
	}
}

// TestStaleTempCleanup: staging files left by a crashed Save are removed on
// the next Load of the directory; fresh ones (a Save possibly in flight)
// are left alone, and the cache file itself still loads.
func TestStaleTempCleanup(t *testing.T) {
	fab := testFabric(t, "round-robin", 16, 4)
	p := Params{Alpha: 0.5}
	ps, table := compile(t, fab, p)

	dir := t.TempDir()
	path := FileName(dir, fab, p)
	if err := Save(path, ps, table); err != nil {
		t.Fatal(err)
	}

	stale := filepath.Join(dir, tempPrefix+"stale123")
	fresh := filepath.Join(dir, tempPrefix+"fresh456")
	for _, f := range []string{stale, fresh} {
		if err := os.WriteFile(f, []byte("debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	wf, err := Load(path, fab, p, Options{NoMmap: true, NoAlias: true})
	if err != nil {
		t.Fatal(err)
	}
	wf.Close()

	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived Load: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp was removed: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache file itself was touched: %v", err)
	}
}
