//go:build unix

package fabriccache

import (
	"os"
	"syscall"
)

// mapPath maps the file at path read-only. Any failure — open, stat, empty
// file, mmap itself — reports !ok and the caller falls back to a plain read.
func mapPath(path string) (data []byte, ok bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() <= 0 || st.Size() != int64(int(st.Size())) {
		return nil, false
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false
	}
	return data, true
}

func unmap(data []byte) error {
	return syscall.Munmap(data)
}
