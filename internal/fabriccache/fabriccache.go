// Package fabriccache persists compiled fabrics — the symmetric PathSet's
// canonical spine + interned group store and ToR 0's CompiledTable — in a
// versioned binary file served back via mmap (DESIGN.md §15). A 1024-ToR
// fabric that costs ~39 s to build cold loads warm in well under a second,
// and multiple processes loading the same file share one copy of the hot
// arrays through the page cache.
//
// File layout (little-endian):
//
//	0   magic "UCMPFAB1"
//	8   u32 version, u32 reserved
//	16  u64 schedule fingerprint (topo.Schedule.Fingerprint)
//	24  u64 alpha bits, u64 linkBps bits, u64 sliceMicros bits (float64)
//	48  u32 maxParallel, u32 n, u32 d, u32 s
//	64  3 × {u64 offset, u64 length}: spine, store, table sections
//	112 u64 payload checksum (FNV-1a over bytes 128..EOF)
//	120 u64 header checksum (FNV-1a over bytes 0..120)
//	128 payload; section offsets are absolute and 8-byte aligned
//
// Identity, not freshness: the header pins everything the compiled content
// depends on — the schedule's structural fingerprint and the cost-model
// parameters — so a stale or foreign file is rejected with an error and can
// never silently serve a different fabric. Cache file NAMES also embed the
// fingerprint (FileName), so rebuilding a changed fabric writes a new file
// instead of fighting over one.
//
// Ownership: Load returns a Fabric handle owning the underlying mapping.
// The PathSet spine and all four CompiledTable arrays may alias it, so the
// handle must outlive every use of PS and Table; Close unmaps and
// invalidates both. Long-lived caches (harness) simply never Close —
// read-only mappings cost address space, not dirty pages.
package fabriccache

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ucmp/internal/core"
	"ucmp/internal/routing"
	"ucmp/internal/topo"
)

const (
	magic      = "UCMPFAB1"
	version    = 1
	headerSize = 128

	fnvOffset = 1469598103934665603
	fnvPrime  = 1099511628211
)

// Params are the build parameters baked into a compiled fabric beyond the
// schedule itself.
type Params struct {
	// Alpha is the §5.2 cost-model weight factor the path set was built with.
	Alpha float64
	// MaxParallel caps tied parallel solutions per hop count; <= 0 means the
	// calculator default.
	MaxParallel int
}

// effMaxParallel normalizes the cap the way core.NewCalculator applies it,
// so 0 and the explicit default address the same file.
func effMaxParallel(mp int) int {
	if mp <= 0 {
		return core.DefaultMaxParallel
	}
	return mp
}

// Fabric is a warm compiled fabric loaded from a cache file. PS and Table
// may alias the underlying file mapping; see the package comment for the
// lifetime rule.
type Fabric struct {
	PS    *core.PathSet
	Table *routing.CompiledTable // ToR 0's table; other ToRs compile lazily

	data   []byte
	mapped bool
}

// Close releases the file mapping. PS and Table must not be used afterward.
func (f *Fabric) Close() error {
	data, mapped := f.data, f.mapped
	f.PS, f.Table, f.data, f.mapped = nil, nil, nil, false
	if mapped {
		return unmap(data)
	}
	return nil
}

func fnv64(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// FileName returns the cache file name for a fabric + params combination
// inside dir. The name embeds a digest of the schedule fingerprint, fabric
// configuration and build parameters, so distinct fabrics get distinct
// files and a changed fabric is a cache miss by name.
func FileName(dir string, f *topo.Fabric, p Params) string {
	key := make([]byte, 0, 64)
	u64 := func(v uint64) { key = binary.LittleEndian.AppendUint64(key, v) }
	u64(f.Sched.Fingerprint())
	u64(math.Float64bits(p.Alpha))
	u64(math.Float64bits(float64(f.LinkBps)))
	u64(math.Float64bits(f.SliceDuration.Micros()))
	u64(uint64(effMaxParallel(p.MaxParallel)))
	u64(uint64(f.NumToRs))
	u64(uint64(f.Uplinks))
	return filepath.Join(dir, fmt.Sprintf("fabric-%016x.ucmpfab", fnv64(fnvOffset, key)))
}

// Encode assembles the complete file image for a compiled fabric. The path
// set must be a symmetric build (the canonical form is the only one worth
// persisting — brute spines are O(S·N²)) and the table must be ToR 0's.
func Encode(ps *core.PathSet, table *routing.CompiledTable) ([]byte, error) {
	if table.Tor != 0 {
		return nil, fmt.Errorf("fabriccache: table is for ToR %d, want 0", table.Tor)
	}
	spine, store, err := ps.EncodeCanonical()
	if err != nil {
		return nil, err
	}
	align := func(b []byte) []byte {
		for len(b)%8 != 0 {
			b = append(b, 0)
		}
		return b
	}
	out := make([]byte, headerSize, headerSize+len(spine)+len(store)+len(store)/2)
	spineOff := len(out)
	out = align(append(out, spine...))
	storeOff := len(out)
	out = align(append(out, store...))
	tableOff := len(out)
	out = table.AppendPacked(out)
	tableLen := len(out) - tableOff

	h := out[:0:headerSize]
	h = append(h, magic...)
	u32 := func(v uint32) { h = binary.LittleEndian.AppendUint32(h, v) }
	u64 := func(v uint64) { h = binary.LittleEndian.AppendUint64(h, v) }
	u32(version)
	u32(0)
	u64(ps.F.Sched.Fingerprint())
	u64(math.Float64bits(ps.Model.Alpha))
	u64(math.Float64bits(ps.Model.LinkBps))
	u64(math.Float64bits(ps.Model.SliceMicros))
	u32(uint32(ps.Calc.MaxParallel))
	u32(uint32(ps.F.NumToRs))
	u32(uint32(ps.F.Uplinks))
	u32(uint32(ps.F.Sched.S))
	for _, sec := range [][2]int{{spineOff, len(spine)}, {storeOff, len(store)}, {tableOff, tableLen}} {
		u64(uint64(sec[0]))
		u64(uint64(sec[1]))
	}
	u64(fnv64(fnvOffset, out[headerSize:]))
	u64(fnv64(fnvOffset, h))
	if len(h) != headerSize {
		panic("fabriccache: header layout drifted")
	}
	return out, nil
}

// Save writes the compiled fabric to path atomically (temp file + rename),
// creating the directory if needed.
func Save(path string, ps *core.PathSet, table *routing.CompiledTable) error {
	img, err := Encode(ps, table)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), tempPrefix+"*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(img); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// tempPrefix names the atomic-write staging files Save creates next to the
// cache file; staleTempAge is how old such a file must be before cleanup
// treats it as the debris of a crashed writer rather than a save in flight.
const (
	tempPrefix   = ".ucmpfab-"
	staleTempAge = 10 * time.Minute
)

// cleanStaleTemps removes staging files a crashed or killed Save left
// behind. Called from Load (the "next open" of the cache directory), it
// never touches a temp younger than staleTempAge — a concurrent Save may
// still be writing it — and every failure is ignored: cleanup is hygiene,
// not correctness.
func cleanStaleTemps(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if !strings.HasPrefix(e.Name(), tempPrefix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if time.Since(info.ModTime()) >= staleTempAge {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// Options tunes Load.
type Options struct {
	// NoAlias forces copying decodes: PS and Table own their arrays and the
	// mapping is released before Load returns. Slower and bigger, but the
	// result outlives the handle — and it is the differential path that
	// keeps the copying decoder honest in tests.
	NoAlias bool
	// NoMmap reads the file into memory instead of mapping it (aliasing
	// still applies to the heap copy). Mostly for tests.
	NoMmap bool
}

// Load maps (or reads) a compiled-fabric file and rebuilds the warm PathSet
// and ToR-0 table for the given fabric. Every mismatch — magic, version,
// checksums, schedule fingerprint, cost-model params, dimensions, any
// structural defect in the payload — is an error and never a partial or
// wrong fabric. The caller owns the returned handle (see package comment).
func Load(path string, fab *topo.Fabric, p Params, opt Options) (*Fabric, error) {
	cleanStaleTemps(filepath.Dir(path))
	data, mapped, err := readFile(path, opt.NoMmap)
	if err != nil {
		return nil, err
	}
	release := func() {
		if mapped {
			unmap(data)
		}
	}
	ld, err := decode(data, fab, p, opt)
	if err != nil {
		release()
		return nil, err
	}
	if opt.NoAlias {
		// Nothing references the file image; drop it eagerly.
		release()
		return &Fabric{PS: ld.PS, Table: ld.Table}, nil
	}
	ld.data, ld.mapped = data, mapped
	return ld, nil
}

// decode validates the file image against the expected fabric and params
// and rebuilds the path set and table.
func decode(data []byte, fab *topo.Fabric, p Params, opt Options) (*Fabric, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("fabriccache: file is %d bytes, shorter than the %d-byte header", len(data), headerSize)
	}
	if string(data[:8]) != magic {
		return nil, fmt.Errorf("fabriccache: bad magic %q", data[:8])
	}
	if got := binary.LittleEndian.Uint64(data[120:]); got != fnv64(fnvOffset, data[:120]) {
		return nil, fmt.Errorf("fabriccache: header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != version {
		return nil, fmt.Errorf("fabriccache: file version %d, want %d", v, version)
	}
	if got, want := binary.LittleEndian.Uint64(data[16:]), fab.Sched.Fingerprint(); got != want {
		return nil, fmt.Errorf("fabriccache: schedule fingerprint %016x, want %016x — file is for a different fabric", got, want)
	}
	wantAlpha := math.Float64bits(p.Alpha)
	wantLink := math.Float64bits(float64(fab.LinkBps))
	wantSlice := math.Float64bits(fab.SliceDuration.Micros())
	if a := binary.LittleEndian.Uint64(data[24:]); a != wantAlpha {
		return nil, fmt.Errorf("fabriccache: alpha %v, want %v", math.Float64frombits(a), p.Alpha)
	}
	if l := binary.LittleEndian.Uint64(data[32:]); l != wantLink {
		return nil, fmt.Errorf("fabriccache: link rate differs")
	}
	if s := binary.LittleEndian.Uint64(data[40:]); s != wantSlice {
		return nil, fmt.Errorf("fabriccache: slice duration differs")
	}
	if mp := int(binary.LittleEndian.Uint32(data[48:])); mp != effMaxParallel(p.MaxParallel) {
		return nil, fmt.Errorf("fabriccache: maxParallel %d, want %d", mp, effMaxParallel(p.MaxParallel))
	}
	if n := int(binary.LittleEndian.Uint32(data[52:])); n != fab.NumToRs {
		return nil, fmt.Errorf("fabriccache: n = %d, want %d", n, fab.NumToRs)
	}
	if d := int(binary.LittleEndian.Uint32(data[56:])); d != fab.Uplinks {
		return nil, fmt.Errorf("fabriccache: d = %d, want %d", d, fab.Uplinks)
	}
	if s := int(binary.LittleEndian.Uint32(data[60:])); s != fab.Sched.S {
		return nil, fmt.Errorf("fabriccache: s = %d, want %d", s, fab.Sched.S)
	}
	if got := binary.LittleEndian.Uint64(data[112:]); got != fnv64(fnvOffset, data[headerSize:]) {
		return nil, fmt.Errorf("fabriccache: payload checksum mismatch")
	}
	sections := make([][]byte, 3)
	for i := range sections {
		off := binary.LittleEndian.Uint64(data[64+16*i:])
		ln := binary.LittleEndian.Uint64(data[72+16*i:])
		if off%8 != 0 || off < headerSize || off > uint64(len(data)) || ln > uint64(len(data))-off {
			return nil, fmt.Errorf("fabriccache: section %d [%d,+%d) outside file of %d bytes", i, off, ln, len(data))
		}
		sections[i] = data[off : off+ln]
	}
	ps, err := core.DecodeCanonical(fab, p.Alpha, p.MaxParallel, sections[0], sections[1],
		core.DecodeOptions{NoAlias: opt.NoAlias})
	if err != nil {
		return nil, err
	}
	table, err := routing.DecodePacked(sections[2], routing.DecodeOptions{NoAlias: opt.NoAlias})
	if err != nil {
		return nil, err
	}
	if table.Tor != 0 {
		return nil, fmt.Errorf("fabriccache: table is for ToR %d, want 0", table.Tor)
	}
	if err := table.Validate(ps); err != nil {
		return nil, err
	}
	return &Fabric{PS: ps, Table: table}, nil
}

// readFile maps the file read-only, falling back to a plain read when
// mapping is unavailable or refused.
func readFile(path string, noMmap bool) (data []byte, mapped bool, err error) {
	if !noMmap {
		if data, ok := mapPath(path); ok {
			return data, true, nil
		}
	}
	data, err = os.ReadFile(path)
	return data, false, err
}
