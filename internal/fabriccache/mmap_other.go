//go:build !unix

package fabriccache

// mapPath never succeeds on non-unix hosts; Load falls back to a plain read.
func mapPath(string) ([]byte, bool) { return nil, false }

func unmap([]byte) error { return nil }
