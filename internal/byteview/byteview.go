// Package byteview reinterprets raw little-endian byte regions as typed Go
// slices without copying, for serving compiled-fabric arrays straight out of
// an mmap'd file (DESIGN.md §15). Aliasing engages only when it is exactly
// equivalent to decoding: the host must be little-endian and the region
// aligned for the element type; callers fall back to a copying decode
// otherwise (and tests force that path to keep it honest).
package byteview

import "unsafe"

// hostLittle reports whether the host stores integers little-endian —
// established once by inspecting the layout of a known value, not inferred
// from GOARCH lists.
var hostLittle = func() bool {
	x := uint16(0x1122)
	return *(*byte)(unsafe.Pointer(&x)) == 0x22
}()

// HostLittleEndian reports whether zero-copy aliasing is possible on this
// host at all.
func HostLittleEndian() bool { return hostLittle }

// Of reinterprets b as a []T of n elements sharing b's memory. It returns
// (nil, false) — callers must then decode by copying — when the host is
// big-endian, b is misaligned for T, or b is shorter than n elements.
// T must be a fixed-size type whose in-memory layout matches the file
// layout on little-endian hosts (fields in file order, explicit padding).
// The returned slice is only valid while b's backing memory is; it is
// read-only when b comes from a read-only mapping, and writes then fault.
func Of[T any](b []byte, n int) ([]T, bool) {
	var zero T
	size, algn := int(unsafe.Sizeof(zero)), uintptr(unsafe.Alignof(zero))
	if !hostLittle || n < 0 || size == 0 || len(b) < n*size {
		return nil, false
	}
	if n == 0 {
		return []T{}, true
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)%algn != 0 {
		return nil, false
	}
	return unsafe.Slice((*T)(p), n), true
}
