// Package topo models the reconfigurable data center network (RDCN) fabric:
// the physical configuration (ToR count, uplinks, hosts, link rates, delays)
// and the circuit schedule — the pre-determined, cyclically repeating
// sequence of ToR-to-ToR matchings that the circuit switches realize.
//
// Terminology follows the UCMP paper (§2.1): the schedule is divided into
// *time slices* of fixed duration; the matchings active in one slice form a
// d-regular graph over the ToRs; a full rotation through all matchings is a
// *circuit cycle*, and every ToR pair has a direct circuit at least once per
// cycle.
package topo

import (
	"fmt"

	"ucmp/internal/sim"
)

// Config describes an RDCN instance.
type Config struct {
	// NumToRs is N, the number of top-of-rack switches. Must be even so the
	// complete graph admits a one-factorization.
	NumToRs int
	// Uplinks is d, the number of uplinks per ToR; each uplink attaches to
	// one circuit switch, so this is also the number of circuit switches and
	// the number of matchings active per time slice.
	Uplinks int
	// HostsPerToR is the number of hosts (downlinks) per ToR.
	HostsPerToR int
	// LinkBps is the bandwidth of every link in bits per second.
	LinkBps int64
	// UplinkBps, when positive, overrides LinkBps for the circuit-facing
	// ToR uplinks (the §8 testbed oversubscribes: 100 Gbps downlinks vs
	// 4×10 Gbps uplinks per ToR).
	UplinkBps int64
	// PropDelay is the one-way ToR-to-ToR propagation delay.
	PropDelay sim.Time
	// HostPropDelay is the host-to-ToR propagation delay (the paper ignores
	// it; zero is the default).
	HostPropDelay sim.Time
	// SliceDuration is u, the duration of one time slice.
	SliceDuration sim.Time
	// ReconfDelay is the circuit reconfiguration delay at the start of each
	// slice, during which the reconfiguring circuits carry no traffic.
	ReconfDelay sim.Time
	// MTU is the maximum transmission unit in bytes.
	MTU int
}

// PaperDefault returns the paper's simulated network (§7.1): 108 ToRs, 6
// uplinks, 6 hosts per ToR, 100 Gbps links, 500 ns ToR-to-ToR propagation,
// 50 us slices, 10 ns reconfiguration.
func PaperDefault() Config {
	return Config{
		NumToRs:       108,
		Uplinks:       6,
		HostsPerToR:   6,
		LinkBps:       100e9,
		PropDelay:     500 * sim.Nanosecond,
		SliceDuration: 50 * sim.Microsecond,
		ReconfDelay:   10 * sim.Nanosecond,
		MTU:           1500,
	}
}

// Scaled returns a configuration shrunk for fast tests and benchmarks while
// keeping the paper's structure (expander-like per-slice graphs, multi-slice
// cycles, microsecond slices).
func Scaled() Config {
	return Config{
		NumToRs:       16,
		Uplinks:       3,
		HostsPerToR:   2,
		LinkBps:       40e9,
		PropDelay:     500 * sim.Nanosecond,
		SliceDuration: 50 * sim.Microsecond,
		ReconfDelay:   10 * sim.Nanosecond,
		MTU:           1500,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.NumToRs < 2:
		return fmt.Errorf("topo: NumToRs=%d, need >= 2", c.NumToRs)
	case c.NumToRs%2 != 0:
		return fmt.Errorf("topo: NumToRs=%d must be even for a one-factorization", c.NumToRs)
	case c.Uplinks < 1 || c.Uplinks > c.NumToRs-1:
		return fmt.Errorf("topo: Uplinks=%d out of range [1,%d]", c.Uplinks, c.NumToRs-1)
	case c.HostsPerToR < 0:
		return fmt.Errorf("topo: HostsPerToR=%d negative", c.HostsPerToR)
	case c.LinkBps <= 0:
		return fmt.Errorf("topo: LinkBps=%d must be positive", c.LinkBps)
	case c.SliceDuration <= 0:
		return fmt.Errorf("topo: SliceDuration=%v must be positive", c.SliceDuration)
	case c.ReconfDelay < 0 || c.ReconfDelay >= c.SliceDuration:
		return fmt.Errorf("topo: ReconfDelay=%v must be in [0, SliceDuration)", c.ReconfDelay)
	case c.MTU <= 0:
		return fmt.Errorf("topo: MTU=%d must be positive", c.MTU)
	}
	return nil
}

// NumHosts returns the total number of hosts.
func (c Config) NumHosts() int { return c.NumToRs * c.HostsPerToR }

// UplinkRate returns the circuit-uplink bandwidth.
func (c Config) UplinkRate() int64 {
	if c.UplinkBps > 0 {
		return c.UplinkBps
	}
	return c.LinkBps
}

// SerializationDelay returns the time to put `bytes` on a host-facing wire.
func (c Config) SerializationDelay(bytes int) sim.Time {
	return sim.Time(int64(bytes) * 8 * int64(sim.Second) / c.LinkBps)
}

// UplinkSerialization returns the time to put `bytes` on a circuit uplink.
func (c Config) UplinkSerialization(bytes int) sim.Time {
	return sim.Time(int64(bytes) * 8 * int64(sim.Second) / c.UplinkRate())
}

// HopDelay returns the per-hop delay of an MTU packet over circuits:
// serialization plus ToR-to-ToR propagation. This is the denominator of
// h_slice (Appendix B).
func (c Config) HopDelay() sim.Time {
	return c.UplinkSerialization(c.MTU) + c.PropDelay
}

// HopsPerSlice returns h_slice, the maximum number of ToR-to-ToR hops a
// packet can traverse within a single time slice (Appendix B). It is at
// least 1: a packet always advances at least one hop in the slice whose
// circuit it uses.
func (c Config) HopsPerSlice() int {
	h := int(c.SliceDuration / c.HopDelay())
	if h < 1 {
		h = 1
	}
	return h
}

// DutyCycle returns the fraction of each slice during which circuits carry
// traffic: (u - reconf) / u (§7.4, "Impact of reconfiguration delay").
func (c Config) DutyCycle() float64 {
	return float64(c.SliceDuration-c.ReconfDelay) / float64(c.SliceDuration)
}
