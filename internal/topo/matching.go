package topo

import "fmt"

// Matching is a perfect matching over the ToRs: Matching[i] is the peer of
// ToR i. A valid matching is an involution without fixed points.
type Matching []int

// Validate reports whether m is a perfect matching on n nodes.
func (m Matching) Validate() error {
	n := len(m)
	for i, p := range m {
		if p < 0 || p >= n {
			return fmt.Errorf("topo: matching peer %d of node %d out of range", p, i)
		}
		if p == i {
			return fmt.Errorf("topo: node %d matched to itself", i)
		}
		if m[p] != i {
			return fmt.Errorf("topo: matching not symmetric at %d<->%d", i, p)
		}
	}
	return nil
}

// ExpanderFactorization returns a one-factorization of K_n whose matchings,
// grouped d at a time, form small-diameter (expander-like) slice graphs, as
// traffic-oblivious RDCNs require (§2.1: "deliberately choose a sequence of
// well-connected graphs"). The circle-method matchings are deterministically
// shuffled: consecutive circle-method rounds are too structured and their
// unions have roughly twice the diameter of a random d-regular graph.
func ExpanderFactorization(n int) []Matching {
	rounds := OneFactorization(n)
	// Deterministic LCG-driven Fisher-Yates so schedules are reproducible
	// without threading a seed through every call site.
	state := uint64(0x9E3779B97F4A7C15)
	for i := len(rounds) - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state % uint64(i+1))
		rounds[i], rounds[j] = rounds[j], rounds[i]
	}
	return rounds
}

// OneFactorization decomposes the complete graph K_n (n even) into n-1
// perfect matchings using the circle method: node n-1 is fixed at the hub
// and the remaining n-1 nodes rotate. Every unordered pair {i,j} appears in
// exactly one matching.
func OneFactorization(n int) []Matching {
	if n < 2 || n%2 != 0 {
		panic(fmt.Sprintf("topo: OneFactorization needs even n >= 2, got %d", n))
	}
	rounds := make([]Matching, n-1)
	for r := 0; r < n-1; r++ {
		rounds[r] = CircleRound(n, r)
	}
	return rounds
}

// CircleRound materializes round r (0 <= r < n-1) of the circle-method
// one-factorization of K_n without building the other rounds — used for
// sampled analyses of very large fabrics (Appendix B at 4320 ToRs).
func CircleRound(n, r int) Matching {
	if n < 2 || n%2 != 0 || r < 0 || r >= n-1 {
		panic(fmt.Sprintf("topo: CircleRound(%d, %d) out of range", n, r))
	}
	m := n - 1 // number of rotating nodes
	match := make(Matching, n)
	// Hub pairs with the rotating node r.
	match[n-1] = r
	match[r] = n - 1
	for k := 1; k <= (m-1)/2; k++ {
		a := (r + k) % m
		b := (r - k + m) % m
		match[a] = b
		match[b] = a
	}
	return match
}
