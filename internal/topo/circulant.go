package topo

import "fmt"

// Circulant schedule family beyond round-robin (DESIGN.md §15): any schedule
// whose slices are unions of whole difference classes Δ(δ) = {{i, (i+δ) mod
// N}} — and whose reconfiguration boundaries darken whole classes — passes
// the verified rotation witness, so the §13 canonical O(S·N) offline build
// and the relabel-on-serve path apply. Two members live here:
//
//   - circulantOpera: Opera's staggered rotor schedule rebuilt from
//     difference classes (used by Opera() when the dimensions admit it);
//   - RandomCirculant: the symmetric round-robin construction with a
//     seed-dependent class order, the circulant analogue of Random.

// splitDifferenceClasses partitions the classes 1..n/2 by parity of δ. Odd
// classes matter for connectivity: a circulant graph on Z_n with n a power
// of two is connected iff one of its differences is odd (gcd(δ, n) = 1).
func splitDifferenceClasses(n int) (odds, evens []int) {
	for delta := 1; delta <= n/2; delta++ {
		if delta%2 == 1 {
			odds = append(odds, delta)
		} else {
			evens = append(evens, delta)
		}
	}
	return odds, evens
}

// circulantOpera builds Opera's staggered schedule from difference classes,
// for n a power of two and even d >= 4 (Opera() falls back to the
// circle-method construction otherwise). The unit of reconfiguration is a
// switch pair: unit u = switches 2u and 2u+1 jointly hold both perfect
// matchings of one class, so a boundary always darkens a whole class and the
// dark set stays rotation-closed — the price is (d-2)/d of the circuits
// stable at any instant instead of the circle-method Opera's (d-1)/d.
//
// With h = d/2 units, unit u reconfigures entering slices ≡ u (mod h) and
// holds each class for h consecutive slices; each unit owns lp =
// ceil((n/2)/h) classes, so the cycle is S = lp·h slices and every pair gets
// a direct circuit each cycle. Unit 0 owns only odd classes (there are n/4
// >= lp of them for d >= 4), so every slice graph contains a whole odd class
// and is connected. Leftover odd classes and the even classes are dealt
// round-robin to units 1..h-1, wrapping when the counts don't divide — a
// class duplicated within a slice is harmless (direct-circuit indexing
// dedupes it, and the duplicate keeps the dark set a union of whole
// classes).
func circulantOpera(n, d int) *Schedule {
	h := d / 2
	u := n / 2
	lp := (u + h - 1) / h
	own := circulantOperaOwners(n, h, lp)
	units := make([][2]Matching, u+1) // indexed by delta, built lazily
	sched := &Schedule{N: n, D: d, S: lp * h, Kind: "opera"}
	sched.build(func(slice, sw int) Matching {
		// Unit sw/2 advances at the boundaries entering slices sw/2,
		// sw/2 + h, sw/2 + 2h, ...; its class index during `slice` is the
		// number of advances performed so far.
		unit := sw / 2
		adv := 0
		if slice >= unit {
			adv = (slice-unit)/h + 1
		}
		delta := own[unit][adv%lp]
		if units[delta][0] == nil {
			a, b := differenceMatchings(n, delta)
			units[delta] = [2]Matching{a, b}
		}
		return units[delta][sw%2]
	}, func(slice, sw int) bool { return slice%h == sw/2 })
	return sched
}

// circulantOperaOwners assigns the n/2 difference classes to the h units:
// unit 0 gets lp shuffled odd classes, the rest are dealt round-robin to
// units 1..h-1, cycling past the end of the pool when h·lp > n/2 (the
// wrap-padding duplicates at most h-1 classes).
func circulantOperaOwners(n, h, lp int) [][]int {
	odds, evens := splitDifferenceClasses(n)
	lcgShuffle(odds, 0xA0761D6478BD642F)
	lcgShuffle(evens, 0xE7037ED1A0B428DB)
	own := make([][]int, h)
	own[0] = odds[:lp]
	rest := append(odds[lp:], evens...)
	if len(rest) == 0 {
		rest = odds // degenerate (d >= n): re-deal odd classes
	}
	for k := 1; k < h; k++ {
		own[k] = make([]int, lp)
		for i := 0; i < lp; i++ {
			own[k][i] = rest[(i*(h-1)+k-1)%len(rest)]
		}
	}
	return own
}

// RandomCirculant builds a rotation-symmetric round-robin-style schedule
// with a seed-dependent difference-class order: same slice count and
// d-regular slices as the symmetric RoundRobin, but the classes are dealt
// from seed-mixed shuffles, giving an arbitrary member of the circulant
// family per seed (the odd-class round-robin dealing still guarantees every
// slice graph is connected). Errors when the dimensions do not admit the
// difference-class construction — unlike RoundRobin there is no circle-
// method fallback to hide behind.
func RandomCirculant(n, d int, seed int64) (*Schedule, error) {
	if !rotationSymmetricRR(n, d) {
		return nil, fmt.Errorf("topo: random-circulant requires power-of-two n >= 4 and even d >= 4, got (%d,%d)", n, d)
	}
	h := d / 2
	order := circulantUnitOrder(n, h, mixSeed(seed, 0xC2B2AE3D27D4EB4F), mixSeed(seed, 0x9E3779B97F4A7C15))
	units := make([][2]Matching, n/2+1)
	s := (n/2 + h - 1) / h
	sched := &Schedule{N: n, D: d, S: s, Kind: "random-circulant"}
	sched.build(func(slice, sw int) Matching {
		delta := order[(slice*h+sw/2)%(n/2)]
		if units[delta][0] == nil {
			a, b := differenceMatchings(n, delta)
			units[delta] = [2]Matching{a, b}
		}
		return units[delta][sw%2]
	}, func(slice, sw int) bool { return true })
	return sched, nil
}

// mixSeed folds a user seed into a shuffle-seed constant (splitmix64
// finalizer), so distinct seeds produce unrelated class orders while seed 0
// stays distinct from the fixed RoundRobin order.
func mixSeed(seed int64, salt uint64) uint64 {
	z := uint64(seed) + salt + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
