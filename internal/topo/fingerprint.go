package topo

// Fingerprint digests the schedule's full structural content — dimensions,
// generator kind, every matching, every reconfiguration flag — into a stable
// 64-bit FNV-1a value. The fabric cache (internal/fabriccache) bakes it into
// file headers and cache keys so a persisted compiled fabric can never
// silently serve a schedule other than the one it was built from. The digest
// is a pure function of the built tables, so two schedules with identical
// matchings and reconfiguration timing collide by design (same fabric, same
// file), regardless of which generator produced them.
func (s *Schedule) Fingerprint() uint64 {
	const (
		offset64 = 1469598103934665603
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	word := func(v uint64) {
		for i := 0; i < 64; i += 8 {
			h ^= (v >> i) & 0xff
			h *= prime64
		}
	}
	word(uint64(s.N))
	word(uint64(s.D))
	word(uint64(s.S))
	word(uint64(len(s.Kind)))
	for i := 0; i < len(s.Kind); i++ {
		h ^= uint64(s.Kind[i])
		h *= prime64
	}
	for sl := 0; sl < s.S; sl++ {
		for sw := 0; sw < s.D; sw++ {
			m := s.slices[sl][sw]
			for i := 0; i < s.N; i++ {
				word(uint64(m[i]))
			}
			b := uint64(0)
			if s.reconf[sl][sw] {
				b = 1
			}
			h ^= b
			h *= prime64
		}
	}
	return h
}
