package topo

import (
	"fmt"

	"ucmp/internal/sim"
)

// Fabric couples a Config with a Schedule and provides time arithmetic
// between wall-clock simulation time and (absolute, cyclic) slice numbers.
type Fabric struct {
	Config
	Sched *Schedule
}

// NewFabric validates the configuration, builds the requested schedule kind
// ("round-robin", "random", "opera", "random-circulant") and returns the
// fabric.
func NewFabric(cfg Config, kind string, seed int64) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var s *Schedule
	switch kind {
	case "round-robin", "":
		s = RoundRobin(cfg.NumToRs, cfg.Uplinks)
	case "random":
		s = Random(cfg.NumToRs, cfg.Uplinks, seed)
	case "opera":
		s = Opera(cfg.NumToRs, cfg.Uplinks)
	case "random-circulant":
		var err error
		if s, err = RandomCirculant(cfg.NumToRs, cfg.Uplinks, seed); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("topo: unknown schedule kind %q", kind)
	}
	return &Fabric{Config: cfg, Sched: s}, nil
}

// MustFabric is NewFabric that panics on error, for tests and examples.
func MustFabric(cfg Config, kind string, seed int64) *Fabric {
	f, err := NewFabric(cfg, kind, seed)
	if err != nil {
		panic(err)
	}
	return f
}

// AbsSlice returns the absolute slice number containing time t.
func (f *Fabric) AbsSlice(t sim.Time) int64 { return int64(t / f.SliceDuration) }

// CyclicSlice reduces an absolute slice number to a cycle position.
func (f *Fabric) CyclicSlice(abs int64) int { return int(abs % int64(f.Sched.S)) }

// SliceAt returns the cyclic slice active at time t.
func (f *Fabric) SliceAt(t sim.Time) int { return f.CyclicSlice(f.AbsSlice(t)) }

// SliceStart returns the wall-clock start of an absolute slice.
func (f *Fabric) SliceStart(abs int64) sim.Time {
	return sim.Time(abs) * f.SliceDuration
}

// SliceEnd returns the wall-clock end (exclusive) of an absolute slice.
func (f *Fabric) SliceEnd(abs int64) sim.Time { return f.SliceStart(abs + 1) }

// CycleDuration returns the wall-clock duration of a full circuit cycle.
func (f *Fabric) CycleDuration() sim.Time {
	return f.SliceDuration * sim.Time(f.Sched.S)
}

// LatencySlices returns the paper's Eqn. 1 latency, in slices, of a path
// that starts in absolute slice start and whose last-hop circuit is in
// absolute slice end: end - start + 1.
func (f *Fabric) LatencySlices(start, end int64) int64 { return end - start + 1 }

// LatencyTime converts an Eqn. 1 slice count to wall-clock time.
func (f *Fabric) LatencyTime(slices int64) sim.Time {
	return sim.Time(slices) * f.SliceDuration
}
