package topo

import (
	"fmt"
	"math/rand"
)

// Schedule is a pre-determined, cyclically repeating circuit schedule: for
// each time slice of the cycle and each circuit switch, the ToR matching the
// switch realizes. Schedules are traffic-oblivious (§2.1).
type Schedule struct {
	// N is the number of ToRs, D the number of circuit switches (= uplinks
	// per ToR), S the number of time slices per circuit cycle.
	N, D, S int
	// Kind names the generator ("round-robin", "random", "opera",
	// "random-circulant").
	Kind string

	slices [][]Matching // [S][D] matching per slice per switch
	reconf [][]bool     // [S][D] true if switch reconfigures entering slice s
	direct [][]int32    // [N*N] cyclic slices in which pair (i,j) has a circuit

	// next is the dense next-direct table: next[(i*N+j)*S + s] is the
	// earliest cyclic slice >= s with a direct (i,j) circuit, wrapped past S
	// (value in [s, s+S)) so lookups need no branch on cycle boundaries; -1
	// marks a never-connected pair. It turns the NextDirect scan — the
	// innermost operation of the offline DP — into one indexed load. nil
	// when the schedule is too large for the memory budget, in which case
	// NextDirect binary-searches the sorted per-pair direct list instead.
	next []int32

	// rotSym records the verified rotation-symmetry witness (see
	// symmetry.go). When true, direct/next stay nil and the Δ-indexed
	// tables below serve the same lookups in O(S·N) memory instead of
	// O(S·N²): class δ row deltaDirect[δ] lists the cyclic slices in which
	// every pair (i, (i+δ) mod N) has a direct circuit, and deltaNext is
	// its densified next-direct table (deltaNext[δ*S+s], same wrapped
	// semantics as next).
	rotSym      bool
	deltaDirect [][]int32
	deltaNext   []int32
}

// maxDenseNextEntries caps the dense next-direct table at 32 MB (4 bytes per
// entry). Beyond that — S·N² grows cubically with N for fixed d — NextDirect
// falls back to an O(log D) binary search.
const maxDenseNextEntries = 1 << 23

// RoundRobin builds the fully reconfigurable schedule used by UCMP, VLB and
// KSP in the paper (§7.1): the N-1 matchings of a one-factorization are
// grouped d at a time into ceil((N-1)/d) slices, and every circuit switch
// reconfigures at every slice boundary. If d does not divide N-1, the final
// slice is padded with matchings from the start of the factorization, so
// every slice graph is d-regular.
//
// When N is a power of two and d is even, the matchings come from the
// rotation-symmetric difference-class construction (symmetry.go) instead of
// the circle method: same slice count, same d-regular slices, but every
// slice graph is invariant under ToR rotation, which the offline path build
// exploits to dedupe groups across (src, dst) pairs.
func RoundRobin(n, d int) *Schedule {
	if rotationSymmetricRR(n, d) {
		return symmetricRoundRobin(n, d)
	}
	rounds := ExpanderFactorization(n)
	s := (len(rounds) + d - 1) / d
	sched := &Schedule{N: n, D: d, S: s, Kind: "round-robin"}
	sched.build(func(slice, sw int) Matching {
		return rounds[(slice*d+sw)%len(rounds)]
	}, func(slice, sw int) bool { return true })
	return sched
}

// Random builds a schedule like RoundRobin but with the matchings assigned
// to slices in a pseudo-random order (used for the alternative schedule in
// Fig 16 and the "arbitrary schedules" claim of §3.2).
func Random(n, d int, seed int64) *Schedule {
	rounds := ExpanderFactorization(n)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(rounds), func(i, j int) { rounds[i], rounds[j] = rounds[j], rounds[i] })
	s := (len(rounds) + d - 1) / d
	sched := &Schedule{N: n, D: d, S: s, Kind: "random"}
	sched.build(func(slice, sw int) Matching {
		return rounds[(slice*d+sw)%len(rounds)]
	}, func(slice, sw int) bool { return true })
	return sched
}

// Opera builds Opera's native staggered schedule (§2.2, §7.1): circuit
// switch k owns every d-th matching of the factorization and holds each for
// d consecutive slices; exactly one switch reconfigures at each slice
// boundary (switch s mod d at the boundary entering slice s). The cycle is
// L*d slices with L = ceil((N-1)/d), so each pair still gets a direct
// circuit every cycle, and at any instant (d-1)/d of the circuits are
// stable.
//
// When N is a power of two and d is even >= 4, the matchings come from the
// rotation-symmetric difference-class construction (circulant.go) instead:
// the unit of reconfiguration becomes a switch pair holding one class, the
// cycle shortens to ceil((N/2)/(d/2))·(d/2) slices, and (d-2)/d of the
// circuits are stable at any instant — in exchange the schedule carries the
// verified rotation witness, so the offline build scales as O(S·N).
func Opera(n, d int) *Schedule {
	if rotationSymmetricRR(n, d) {
		return circulantOpera(n, d)
	}
	rounds := ExpanderFactorization(n)
	l := (len(rounds) + d - 1) / d
	// own[k] lists the matchings owned by switch k, padded by wrapping.
	own := make([][]Matching, d)
	for k := 0; k < d; k++ {
		own[k] = make([]Matching, l)
		for i := 0; i < l; i++ {
			own[k][i] = rounds[(i*d+k)%len(rounds)]
		}
	}
	s := l * d
	sched := &Schedule{N: n, D: d, S: s, Kind: "opera"}
	sched.build(func(slice, sw int) Matching {
		// Switch sw advances at the boundaries entering slices sw, sw+d,
		// sw+2d, ... Its index during slice `slice` is the number of
		// advances performed so far.
		adv := 0
		if slice >= sw {
			adv = (slice-sw)/d + 1
		}
		return own[sw][adv%l]
	}, func(slice, sw int) bool { return slice%d == sw })
	return sched
}

// build fills the slice tables from a matching generator and reconfiguration
// predicate, verifies the rotation-symmetry witness, and indexes direct
// circuits — per difference class when the witness holds, per pair
// otherwise.
func (s *Schedule) build(mat func(slice, sw int) Matching, rec func(slice, sw int) bool) {
	s.slices = make([][]Matching, s.S)
	s.reconf = make([][]bool, s.S)
	for sl := 0; sl < s.S; sl++ {
		s.slices[sl] = make([]Matching, s.D)
		s.reconf[sl] = make([]bool, s.D)
		for sw := 0; sw < s.D; sw++ {
			s.slices[sl][sw] = mat(sl, sw)
			s.reconf[sl][sw] = rec(sl, sw)
		}
	}
	if s.verifyRotation() {
		s.rotSym = true
		s.buildDeltaTables()
		return
	}
	s.buildPairTables()
}

// buildPairTables indexes direct circuits per (i, j) pair and densifies the
// lists into the next-direct lookup table.
func (s *Schedule) buildPairTables() {
	s.direct = make([][]int32, s.N*s.N)
	for sl := 0; sl < s.S; sl++ {
		for sw := 0; sw < s.D; sw++ {
			m := s.slices[sl][sw]
			for i := 0; i < s.N; i++ {
				j := m[i]
				if j > i {
					// Record once per slice even if two switches realize
					// the same pair in this slice.
					di := s.direct[i*s.N+j]
					if len(di) == 0 || di[len(di)-1] != int32(sl) {
						s.direct[i*s.N+j] = append(di, int32(sl))
						s.direct[j*s.N+i] = append(s.direct[j*s.N+i], int32(sl))
					}
				}
			}
		}
	}
	s.buildNextTable()
}

// buildNextTable densifies the per-pair direct lists into the next-direct
// lookup table, walking each pair's sorted list once (O(S) per pair).
func (s *Schedule) buildNextTable() {
	if s.N*s.N*s.S > maxDenseNextEntries {
		return
	}
	s.next = make([]int32, s.N*s.N*s.S)
	for pair, ds := range s.direct {
		fillNextRow(s.next[pair*s.S:(pair+1)*s.S], ds, s.S)
	}
}

// fillNextRow fills one next-direct row from a sorted direct-slice list:
// row[sl] is the earliest entry >= sl, wrapped past the cycle (value in
// [sl, sl+cycle)), or -1 throughout for an empty list.
func fillNextRow(row []int32, ds []int32, cycle int) {
	if len(ds) == 0 {
		for i := range row {
			row[i] = -1
		}
		return
	}
	// p tracks the smallest index with ds[p] >= sl while sl descends.
	p := len(ds)
	for sl := cycle - 1; sl >= 0; sl-- {
		for p > 0 && ds[p-1] >= int32(sl) {
			p--
		}
		if p < len(ds) {
			row[sl] = ds[p]
		} else {
			row[sl] = ds[0] + int32(cycle)
		}
	}
}

// MatchingAt returns the matching realized by switch sw during cyclic slice.
func (s *Schedule) MatchingAt(slice, sw int) Matching { return s.slices[slice][sw] }

// PeerOf returns the ToR connected to `tor` through switch sw in the slice.
func (s *Schedule) PeerOf(slice, tor, sw int) int { return s.slices[slice][sw][tor] }

// ReconfiguresAt reports whether switch sw reconfigures at the boundary
// entering the cyclic slice (its circuits are dark for the reconfiguration
// delay at the start of that slice).
func (s *Schedule) ReconfiguresAt(slice, sw int) bool { return s.reconf[slice][sw] }

// Neighbors appends the ToRs adjacent to `tor` in the slice graph to dst and
// returns it. Duplicate peers (two switches realizing the same pair) are
// deduplicated.
func (s *Schedule) Neighbors(dst []int, slice, tor int) []int {
	for sw := 0; sw < s.D; sw++ {
		p := s.slices[slice][sw][tor]
		dup := false
		for _, q := range dst {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, p)
		}
	}
	return dst
}

// SwitchFor returns a switch whose matching connects tor and peer in the
// slice, or -1 if they are not directly connected then.
func (s *Schedule) SwitchFor(slice, tor, peer int) int {
	for sw := 0; sw < s.D; sw++ {
		if s.slices[slice][sw][tor] == peer {
			return sw
		}
	}
	return -1
}

// DirectSlices returns the cyclic slices during which ToRs a and b have a
// direct circuit. The returned slice is shared; callers must not modify it.
// Rotation-symmetric schedules serve it from the Δ-indexed class table: the
// answer depends only on (b-a) mod N.
func (s *Schedule) DirectSlices(a, b int) []int32 {
	if s.rotSym {
		return s.deltaDirect[(b-a+s.N)%s.N]
	}
	return s.direct[a*s.N+b]
}

// NextDirect returns the earliest absolute slice >= from in which a and b
// have a direct circuit. Every pair is connected at least once per cycle for
// the provided generators, so this always succeeds. O(1) via the dense
// next-direct table; O(log D) binary search over the pair's sorted direct
// list when the table exceeded its memory budget.
func (s *Schedule) NextDirect(a, b int, from int64) int64 {
	cyc := from % int64(s.S)
	base := from - cyc
	if s.deltaNext != nil {
		nx := s.deltaNext[((b-a+s.N)%s.N)*s.S+int(cyc)]
		if nx < 0 {
			panic(fmt.Sprintf("topo: pair (%d,%d) never connected", a, b))
		}
		return base + int64(nx)
	}
	if s.next != nil {
		nx := s.next[(a*s.N+b)*s.S+int(cyc)]
		if nx < 0 {
			panic(fmt.Sprintf("topo: pair (%d,%d) never connected", a, b))
		}
		return base + int64(nx)
	}
	ds := s.DirectSlices(a, b)
	if len(ds) == 0 {
		panic(fmt.Sprintf("topo: pair (%d,%d) never connected", a, b))
	}
	// ds is sorted ascending; find first >= cyc, else wrap to next cycle.
	lo, hi := 0, len(ds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int64(ds[mid]) < cyc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ds) {
		return base + int64(ds[lo])
	}
	return base + int64(s.S) + int64(ds[0])
}

// DenseNext exposes the dense next-direct table for hot loops that index it
// directly instead of paying a call + modulo per lookup (the offline DP).
// Entry (a*N+b)*S + s is the earliest cyclic slice >= s with a direct (a,b)
// circuit, wrapped past S (value in [s, s+S)), or -1 for a never-connected
// pair. Returns nil when the schedule exceeded the dense-table memory
// budget; callers must then fall back to NextDirect. Read-only.
func (s *Schedule) DenseNext() []int32 { return s.next }

// WaitSlices returns how many slices after `from` the next direct circuit
// between a and b appears (0 = this very slice). The dense table stores the
// wrapped next slice, so the wait is a single subtraction.
func (s *Schedule) WaitSlices(a, b int, from int64) int64 {
	cyc := from % int64(s.S)
	if s.deltaNext != nil {
		if nx := s.deltaNext[((b-a+s.N)%s.N)*s.S+int(cyc)]; nx >= 0 {
			return int64(nx) - cyc
		}
	}
	if s.next != nil {
		if nx := s.next[(a*s.N+b)*s.S+int(cyc)]; nx >= 0 {
			return int64(nx) - cyc
		}
	}
	return s.NextDirect(a, b, from) - from
}
