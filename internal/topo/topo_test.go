package topo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ucmp/internal/sim"
)

func TestOneFactorizationCoversAllPairs(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 108} {
		rounds := OneFactorization(n)
		if len(rounds) != n-1 {
			t.Fatalf("n=%d: %d rounds, want %d", n, len(rounds), n-1)
		}
		seen := make(map[[2]int]int)
		for r, m := range rounds {
			if err := m.Validate(); err != nil {
				t.Fatalf("n=%d round %d: %v", n, r, err)
			}
			for i, p := range m {
				if i < p {
					seen[[2]int{i, p}]++
				}
			}
		}
		want := n * (n - 1) / 2
		if len(seen) != want {
			t.Fatalf("n=%d: %d distinct pairs, want %d", n, len(seen), want)
		}
		for pair, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("n=%d: pair %v appears %d times", n, pair, cnt)
			}
		}
	}
}

func TestOneFactorizationOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd n did not panic")
		}
	}()
	OneFactorization(7)
}

func TestMatchingValidate(t *testing.T) {
	if err := (Matching{1, 0, 3, 2}).Validate(); err != nil {
		t.Fatalf("valid matching rejected: %v", err)
	}
	if err := (Matching{0, 1}).Validate(); err == nil {
		t.Fatal("self-matching accepted")
	}
	if err := (Matching{1, 2, 0}).Validate(); err == nil {
		t.Fatal("asymmetric matching accepted")
	}
	if err := (Matching{5, 0}).Validate(); err == nil {
		t.Fatal("out-of-range peer accepted")
	}
}

// every schedule kind must give every pair a direct circuit each cycle and
// keep every slice graph d-regular (paper §2.1).
func TestScheduleCoverage(t *testing.T) {
	kinds := []struct {
		name string
		mk   func(n, d int) *Schedule
	}{
		{"round-robin", func(n, d int) *Schedule { return RoundRobin(n, d) }},
		{"random", func(n, d int) *Schedule { return Random(n, d, 42) }},
		{"opera", func(n, d int) *Schedule { return Opera(n, d) }},
	}
	for _, k := range kinds {
		for _, nd := range [][2]int{{8, 2}, {16, 3}, {108, 6}} {
			n, d := nd[0], nd[1]
			s := k.mk(n, d)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					if len(s.DirectSlices(i, j)) == 0 {
						t.Fatalf("%s(%d,%d): pair (%d,%d) never connected", k.name, n, d, i, j)
					}
				}
			}
			// Each ToR has exactly d circuits (deduped neighbors may be
			// fewer only if two switches realize the same pair).
			for sl := 0; sl < s.S; sl++ {
				for i := 0; i < n; i++ {
					nb := s.Neighbors(nil, sl, i)
					if len(nb) > d || len(nb) < 1 {
						t.Fatalf("%s: slice %d tor %d has %d neighbors", k.name, sl, i, len(nb))
					}
					for _, p := range nb {
						if p == i {
							t.Fatalf("%s: tor %d self-neighbor", k.name, i)
						}
					}
				}
			}
		}
	}
}

func TestRoundRobinSliceCount(t *testing.T) {
	s := RoundRobin(108, 6)
	if s.S != 18 {
		t.Fatalf("108/6 round-robin: %d slices, want 18 (paper §8: N/d)", s.S)
	}
	s = RoundRobin(16, 3)
	if s.S != 5 {
		t.Fatalf("16/3 round-robin: %d slices, want 5", s.S)
	}
}

func TestOperaOneSwitchPerBoundary(t *testing.T) {
	s := Opera(16, 3)
	for sl := 0; sl < s.S; sl++ {
		cnt := 0
		for sw := 0; sw < s.D; sw++ {
			if s.ReconfiguresAt(sl, sw) {
				cnt++
			}
		}
		if cnt != 1 {
			t.Fatalf("opera slice %d: %d switches reconfigure, want 1", sl, cnt)
		}
	}
	// Matchings persist: switch sw's matching during slice sl equals its
	// matching during slice sl+1 unless it reconfigures entering sl+1.
	for sl := 0; sl+1 < s.S; sl++ {
		for sw := 0; sw < s.D; sw++ {
			a := s.MatchingAt(sl, sw)
			b := s.MatchingAt(sl+1, sw)
			same := true
			for i := range a {
				if a[i] != b[i] {
					same = false
					break
				}
			}
			if s.ReconfiguresAt(sl+1, sw) {
				continue
			}
			if !same {
				t.Fatalf("opera: switch %d changed matching entering slice %d without reconfiguring", sw, sl+1)
			}
		}
	}
}

func TestNextDirect(t *testing.T) {
	s := RoundRobin(8, 2)
	for i := 0; i < s.N; i++ {
		for j := 0; j < s.N; j++ {
			if i == j {
				continue
			}
			for from := int64(0); from < int64(3*s.S); from++ {
				got := s.NextDirect(i, j, from)
				if got < from {
					t.Fatalf("NextDirect(%d,%d,%d)=%d < from", i, j, from, got)
				}
				if got-from >= int64(s.S) {
					t.Fatalf("NextDirect(%d,%d,%d)=%d waits a full cycle or more", i, j, from, got)
				}
				cyc := int(got % int64(s.S))
				if s.SwitchFor(cyc, i, j) < 0 {
					t.Fatalf("NextDirect(%d,%d,%d)=%d but pair not connected in slice %d", i, j, from, got, cyc)
				}
				// No earlier slot.
				for a := from; a < got; a++ {
					if s.SwitchFor(int(a%int64(s.S)), i, j) >= 0 {
						t.Fatalf("NextDirect(%d,%d,%d)=%d missed earlier slot %d", i, j, from, got, a)
					}
				}
			}
		}
	}
}

// Property-based: WaitSlices is always in [0, S).
func TestWaitSlicesBounded(t *testing.T) {
	s := Random(16, 3, 7)
	prop := func(a, b uint8, from uint16) bool {
		i, j := int(a)%s.N, int(b)%s.N
		if i == j {
			return true
		}
		w := s.WaitSlices(i, j, int64(from))
		return w >= 0 && w < int64(s.S)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	good := PaperDefault()
	if err := good.Validate(); err != nil {
		t.Fatalf("paper default invalid: %v", err)
	}
	bad := []Config{
		{},
		func() Config { c := PaperDefault(); c.NumToRs = 7; return c }(),
		func() Config { c := PaperDefault(); c.Uplinks = 0; return c }(),
		func() Config { c := PaperDefault(); c.ReconfDelay = c.SliceDuration; return c }(),
		func() Config { c := PaperDefault(); c.MTU = 0; return c }(),
		func() Config { c := PaperDefault(); c.LinkBps = 0; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestHopsPerSlice(t *testing.T) {
	c := PaperDefault() // 100 Gbps, 1500 B -> 120 ns serialization, 500 ns prop
	if got := c.SerializationDelay(1500); got != 120*sim.Nanosecond {
		t.Fatalf("serialization = %v, want 120ns", got)
	}
	// Appendix B: 1 us slice -> floor(1000/620) = 1 hop.
	c.SliceDuration = 1 * sim.Microsecond
	if got := c.HopsPerSlice(); got != 1 {
		t.Fatalf("h_slice(1us) = %d, want 1", got)
	}
	// Appendix B: 10 us slice -> floor(10000/620) = 16 hops.
	c.SliceDuration = 10 * sim.Microsecond
	if got := c.HopsPerSlice(); got != 16 {
		t.Fatalf("h_slice(10us) = %d, want 16", got)
	}
}

func TestDutyCycle(t *testing.T) {
	c := PaperDefault()
	c.SliceDuration = 50 * sim.Microsecond
	c.ReconfDelay = 1 * sim.Microsecond
	if got := c.DutyCycle(); got != 0.98 {
		t.Fatalf("duty cycle = %v, want 0.98 (paper §7.4)", got)
	}
	c.ReconfDelay = 10 * sim.Microsecond
	if got := c.DutyCycle(); got < 0.79 || got > 0.81 {
		t.Fatalf("duty cycle = %v, want 0.8", got)
	}
}

func TestFabricSliceArithmetic(t *testing.T) {
	f := MustFabric(Scaled(), "round-robin", 1)
	u := f.SliceDuration
	if f.AbsSlice(0) != 0 || f.AbsSlice(u-1) != 0 || f.AbsSlice(u) != 1 {
		t.Fatal("AbsSlice boundary arithmetic wrong")
	}
	if f.SliceStart(3) != 3*u || f.SliceEnd(3) != 4*u {
		t.Fatal("SliceStart/End wrong")
	}
	s := int64(f.Sched.S)
	if f.CyclicSlice(s+2) != 2 {
		t.Fatal("CyclicSlice wrong")
	}
	if f.CycleDuration() != sim.Time(s)*u {
		t.Fatal("CycleDuration wrong")
	}
	if f.LatencySlices(5, 9) != 5 {
		t.Fatal("Eqn 1 latency: end-start+1 expected")
	}
}

func TestFabricUnknownKind(t *testing.T) {
	if _, err := NewFabric(Scaled(), "nope", 1); err == nil {
		t.Fatal("unknown schedule kind accepted")
	}
}

func TestSliceGraphRegularAndConnected(t *testing.T) {
	s := RoundRobin(108, 6)
	for sl := 0; sl < s.S; sl++ {
		g := s.SliceGraph(sl)
		if d := g.Diameter(); d < 0 {
			t.Fatalf("slice %d graph disconnected", sl)
		}
		for i, adj := range g.Adj {
			if len(adj) != 6 {
				t.Fatalf("slice %d tor %d degree %d, want 6", sl, i, len(adj))
			}
		}
	}
}

func TestStableSliceGraphOpera(t *testing.T) {
	s := Opera(16, 4)
	for sl := 0; sl < s.S; sl++ {
		g := s.StableSliceGraph(sl)
		full := s.SliceGraph(sl)
		// Stable graph has at most the edges of the full graph and exactly
		// d-1 circuits per ToR (some may dedupe).
		for i := range g.Adj {
			if len(g.Adj[i]) > len(full.Adj[i]) {
				t.Fatalf("stable graph larger than full graph at tor %d", i)
			}
			if len(g.Adj[i]) > s.D-1 {
				t.Fatalf("stable graph keeps %d circuits at tor %d, want <= %d", len(g.Adj[i]), i, s.D-1)
			}
		}
	}
}

func TestBFSAndShortestPath(t *testing.T) {
	g := &Graph{N: 5, Adj: [][]int{{1}, {0, 2}, {1, 3}, {2, 4}, {3}}}
	dist := g.BFS(0)
	for i, d := range dist {
		if d != i {
			t.Fatalf("dist[%d]=%d, want %d", i, d, i)
		}
	}
	p := g.ShortestPath(0, 4)
	if len(p) != 5 {
		t.Fatalf("path %v, want length 5", p)
	}
	if g.Diameter() != 4 {
		t.Fatalf("diameter %d, want 4", g.Diameter())
	}
	// Disconnected.
	g2 := &Graph{N: 3, Adj: [][]int{{1}, {0}, {}}}
	if g2.Diameter() != -1 {
		t.Fatal("disconnected diameter should be -1")
	}
	if g2.ShortestPath(0, 2) != nil {
		t.Fatal("unreachable path should be nil")
	}
	if p := g2.ShortestPath(2, 2); len(p) != 1 || p[0] != 2 {
		t.Fatal("trivial path wrong")
	}
}

func TestKShortestPaths(t *testing.T) {
	// A diamond: 0-1-3, 0-2-3, plus direct 0-3 via a longer chain 0-4-5-3.
	g := &Graph{N: 6, Adj: [][]int{
		{1, 2, 4}, {0, 3}, {0, 3}, {1, 2, 5}, {0, 5}, {4, 3},
	}}
	paths := g.KShortestPaths(0, 3, 5)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3: %v", len(paths), paths)
	}
	if len(paths[0]) != 3 || len(paths[1]) != 3 {
		t.Fatalf("first two paths should be 2-hop: %v", paths)
	}
	if len(paths[2]) != 4 {
		t.Fatalf("third path should be 3-hop: %v", paths)
	}
	// Paths must be loopless and valid.
	for _, p := range paths {
		seen := map[int]bool{}
		for i, v := range p {
			if seen[v] {
				t.Fatalf("path %v has a loop", p)
			}
			seen[v] = true
			if i > 0 {
				ok := false
				for _, nb := range g.Adj[p[i-1]] {
					if nb == v {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("path %v uses nonexistent edge %d-%d", p, p[i-1], v)
				}
			}
		}
	}
}

func TestKShortestPathsOnScheduleGraph(t *testing.T) {
	s := RoundRobin(16, 3)
	g := s.SliceGraph(0)
	for src := 0; src < 4; src++ {
		for dst := 8; dst < 12; dst++ {
			paths := g.KShortestPaths(src, dst, 5)
			if len(paths) == 0 {
				t.Fatalf("no path %d->%d", src, dst)
			}
			for i := 1; i < len(paths); i++ {
				if len(paths[i]) < len(paths[i-1]) {
					t.Fatalf("paths not sorted by length: %v", paths)
				}
			}
		}
	}
}

func TestMaxDiameterPaper(t *testing.T) {
	s := RoundRobin(108, 6)
	d := s.MaxDiameter()
	// 6-regular graphs on 108 nodes: diameter should be small (expander-ish);
	// Appendix B reports h_static = 5 for (108,6).
	if d < 3 || d > 6 {
		t.Fatalf("h_static = %d, expected 3..6 for (108,6)", d)
	}
}
