package topo

import "testing"

// rotationClosureRef is a brute-force reference for the witness: every edge
// of every slice, rotated by +1, must reappear somewhere in the same slice.
func rotationClosureRef(s *Schedule) bool {
	for sl := 0; sl < s.S; sl++ {
		present := make(map[[2]int]bool)
		for sw := 0; sw < s.D; sw++ {
			m := s.slices[sl][sw]
			for i, j := range m {
				present[[2]int{i, j}] = true
			}
		}
		for e := range present {
			r := [2]int{(e[0] + 1) % s.N, (e[1] + 1) % s.N}
			if !present[r] {
				return false
			}
		}
	}
	return true
}

// TestRoundRobinRotationGrid: RoundRobin verifies rotation-symmetric exactly
// on the power-of-two/even-d grid, including non-dividing (n, d) pairs, and
// the slice count matches the padded circle-method formula everywhere.
func TestRoundRobinRotationGrid(t *testing.T) {
	cases := []struct {
		n, d int
		sym  bool
	}{
		{8, 4, true}, {8, 6, true}, {16, 4, true}, {16, 6, true},
		{32, 4, true}, {32, 6, true}, {64, 4, true}, {128, 8, true},
		{256, 12, true},
		// Odd d, d = 2, or non-power-of-two n fall back to the circle
		// method (d = 2 symmetric slices would be disconnected).
		{8, 2, false}, {8, 3, false}, {16, 2, false}, {16, 3, false},
		{16, 5, false}, {10, 2, false}, {12, 4, false}, {108, 6, false},
		{20, 6, false},
	}
	for _, c := range cases {
		s := RoundRobin(c.n, c.d)
		if s.Rotation() != c.sym {
			t.Errorf("RoundRobin(%d,%d).Rotation() = %v, want %v", c.n, c.d, s.Rotation(), c.sym)
		}
		if got := rotationClosureRef(s); got != s.Rotation() {
			t.Errorf("RoundRobin(%d,%d): witness %v disagrees with reference %v",
				c.n, c.d, s.Rotation(), got)
		}
		wantS := (c.n - 1 + c.d - 1) / c.d
		if s.S != wantS {
			t.Errorf("RoundRobin(%d,%d).S = %d, want %d", c.n, c.d, s.S, wantS)
		}
		// Schedule invariants hold regardless of construction: valid
		// matchings, every pair connected each cycle.
		for sl := 0; sl < s.S; sl++ {
			for sw := 0; sw < s.D; sw++ {
				if err := s.MatchingAt(sl, sw).Validate(); err != nil {
					t.Fatalf("RoundRobin(%d,%d) slice %d switch %d: %v", c.n, c.d, sl, sw, err)
				}
			}
		}
		for i := 0; i < c.n; i++ {
			for j := 0; j < c.n; j++ {
				if i != j && len(s.DirectSlices(i, j)) == 0 {
					t.Fatalf("RoundRobin(%d,%d): pair (%d,%d) never connected", c.n, c.d, i, j)
				}
			}
		}
	}
}

// TestRotationFalseForOtherKinds: the witness is verified, not keyed on the
// generator — Random and Opera stay false even on power-of-two fabrics.
func TestRotationFalseForOtherKinds(t *testing.T) {
	if s := Random(16, 4, 42); s.Rotation() {
		t.Error("Random(16,4) verified rotation-symmetric")
	}
	if s := Opera(16, 4); s.Rotation() {
		t.Error("Opera(16,4) verified rotation-symmetric")
	}
}

// TestSwappedMatchingBreaksWitness: exchanging one matching between two
// slices of a symmetric schedule leaves both slices with partial difference
// classes, so re-verification must fail.
func TestSwappedMatchingBreaksWitness(t *testing.T) {
	s := RoundRobin(16, 4)
	if !s.Rotation() {
		t.Fatal("RoundRobin(16,4) should verify rotation-symmetric")
	}
	if !s.verifyRotation() {
		t.Fatal("re-verification of the untouched schedule failed")
	}
	// Swap switch 0's matching of slice 0 with switch 1's of slice 1. The
	// two halves of a difference class now live in different slices.
	s.slices[0][0], s.slices[1][1] = s.slices[1][1], s.slices[0][0]
	if s.verifyRotation() {
		t.Fatal("witness survived a cross-slice matching swap")
	}
}

// TestDeltaTablesMatchPairSemantics: the Δ-indexed lookups of a symmetric
// schedule agree with a pair-indexed rebuild of the same matchings.
func TestDeltaTablesMatchPairSemantics(t *testing.T) {
	s := RoundRobin(32, 4)
	if !s.Rotation() || s.DeltaNext() == nil || s.DenseNext() != nil {
		t.Fatalf("RoundRobin(32,4): Rotation=%v deltaNext=%v denseNext=%v",
			s.Rotation(), s.DeltaNext() != nil, s.DenseNext() != nil)
	}
	// Rebuild pair tables from the same matchings.
	ref := &Schedule{N: s.N, D: s.D, S: s.S, Kind: s.Kind}
	ref.build(func(sl, sw int) Matching { return s.slices[sl][sw] },
		func(sl, sw int) bool { return s.reconf[sl][sw] })
	ref.rotSym, ref.deltaDirect, ref.deltaNext = false, nil, nil
	ref.buildPairTables()
	for a := 0; a < s.N; a++ {
		for b := 0; b < s.N; b++ {
			if a == b {
				continue
			}
			got, want := s.DirectSlices(a, b), ref.direct[a*s.N+b]
			if len(got) != len(want) {
				t.Fatalf("DirectSlices(%d,%d) = %v, want %v", a, b, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("DirectSlices(%d,%d) = %v, want %v", a, b, got, want)
				}
			}
			for from := int64(0); from < int64(2*s.S); from++ {
				if g, w := s.NextDirect(a, b, from), ref.NextDirect(a, b, from); g != w {
					t.Fatalf("NextDirect(%d,%d,%d) = %d, want %d", a, b, from, g, w)
				}
				if g, w := s.WaitSlices(a, b, from), ref.WaitSlices(a, b, from); g != w {
					t.Fatalf("WaitSlices(%d,%d,%d) = %d, want %d", a, b, from, g, w)
				}
			}
		}
	}
}

// TestSymmetricSlicesConnected: with d >= 4 the odd-class dealing guarantees
// every slice graph of the symmetric construction is connected, which keeps
// the Appendix-B h_static diameters meaningful at scale.
func TestSymmetricSlicesConnected(t *testing.T) {
	for _, nd := range [][2]int{{16, 4}, {64, 4}, {128, 8}, {256, 8}, {1024, 8}} {
		s := RoundRobin(nd[0], nd[1])
		if !s.Rotation() {
			t.Fatalf("RoundRobin(%d,%d) not symmetric", nd[0], nd[1])
		}
		for sl := 0; sl < s.S; sl++ {
			if d := s.SliceGraph(sl).Diameter(); d < 0 {
				t.Fatalf("RoundRobin(%d,%d): slice %d graph disconnected", nd[0], nd[1], sl)
			}
		}
	}
}
