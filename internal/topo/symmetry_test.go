package topo

import "testing"

// rotationClosureRef is a brute-force reference for the witness: every edge
// of every slice, rotated by +1, must reappear somewhere in the same slice.
func rotationClosureRef(s *Schedule) bool {
	for sl := 0; sl < s.S; sl++ {
		present := make(map[[2]int]bool)
		for sw := 0; sw < s.D; sw++ {
			m := s.slices[sl][sw]
			for i, j := range m {
				present[[2]int{i, j}] = true
			}
		}
		for e := range present {
			r := [2]int{(e[0] + 1) % s.N, (e[1] + 1) % s.N}
			if !present[r] {
				return false
			}
		}
	}
	return true
}

// TestRoundRobinRotationGrid: RoundRobin verifies rotation-symmetric exactly
// on the power-of-two/even-d grid, including non-dividing (n, d) pairs, and
// the slice count matches the padded circle-method formula everywhere.
func TestRoundRobinRotationGrid(t *testing.T) {
	cases := []struct {
		n, d int
		sym  bool
	}{
		{8, 4, true}, {8, 6, true}, {16, 4, true}, {16, 6, true},
		{32, 4, true}, {32, 6, true}, {64, 4, true}, {128, 8, true},
		{256, 12, true},
		// Odd d, d = 2, or non-power-of-two n fall back to the circle
		// method (d = 2 symmetric slices would be disconnected).
		{8, 2, false}, {8, 3, false}, {16, 2, false}, {16, 3, false},
		{16, 5, false}, {10, 2, false}, {12, 4, false}, {108, 6, false},
		{20, 6, false},
	}
	for _, c := range cases {
		s := RoundRobin(c.n, c.d)
		if s.Rotation() != c.sym {
			t.Errorf("RoundRobin(%d,%d).Rotation() = %v, want %v", c.n, c.d, s.Rotation(), c.sym)
		}
		if got := rotationClosureRef(s); got != s.Rotation() {
			t.Errorf("RoundRobin(%d,%d): witness %v disagrees with reference %v",
				c.n, c.d, s.Rotation(), got)
		}
		wantS := (c.n - 1 + c.d - 1) / c.d
		if s.S != wantS {
			t.Errorf("RoundRobin(%d,%d).S = %d, want %d", c.n, c.d, s.S, wantS)
		}
		// Schedule invariants hold regardless of construction: valid
		// matchings, every pair connected each cycle.
		for sl := 0; sl < s.S; sl++ {
			for sw := 0; sw < s.D; sw++ {
				if err := s.MatchingAt(sl, sw).Validate(); err != nil {
					t.Fatalf("RoundRobin(%d,%d) slice %d switch %d: %v", c.n, c.d, sl, sw, err)
				}
			}
		}
		for i := 0; i < c.n; i++ {
			for j := 0; j < c.n; j++ {
				if i != j && len(s.DirectSlices(i, j)) == 0 {
					t.Fatalf("RoundRobin(%d,%d): pair (%d,%d) never connected", c.n, c.d, i, j)
				}
			}
		}
	}
}

// darkClosureRef is a brute-force reference for the witness's second
// condition: per slice, the edges realized only by reconfiguring switches
// (dark at the slice start), rotated by +1, must reappear in the same dark
// set.
func darkClosureRef(s *Schedule) bool {
	for sl := 0; sl < s.S; sl++ {
		live := make(map[[2]int]bool)
		dark := make(map[[2]int]bool)
		for sw := 0; sw < s.D; sw++ {
			if !s.reconf[sl][sw] {
				for i, j := range s.slices[sl][sw] {
					live[[2]int{i, j}] = true
				}
			}
		}
		for sw := 0; sw < s.D; sw++ {
			if s.reconf[sl][sw] {
				for i, j := range s.slices[sl][sw] {
					if !live[[2]int{i, j}] {
						dark[[2]int{i, j}] = true
					}
				}
			}
		}
		for e := range dark {
			if !dark[[2]int{(e[0] + 1) % s.N, (e[1] + 1) % s.N}] {
				return false
			}
		}
	}
	return true
}

// TestRotationWitnessByKind: the witness is verified, not keyed on the
// generator — Random stays false even on power-of-two dimensions, Opera
// verifies true exactly when its circulant construction engages, and the
// witness always agrees with the brute-force closure references.
func TestRotationWitnessByKind(t *testing.T) {
	cases := []struct {
		name string
		s    *Schedule
		sym  bool
	}{
		{"Random(16,4,42)", Random(16, 4, 42), false},
		{"Opera(16,4)", Opera(16, 4), true},
		{"Opera(8,4)", Opera(8, 4), true},
		{"Opera(64,8)", Opera(64, 8), true},
		{"Opera(16,3)", Opera(16, 3), false},
		{"Opera(10,4)", Opera(10, 4), false},
		{"Opera(8,2)", Opera(8, 2), false},
	}
	for _, c := range cases {
		if c.s.Rotation() != c.sym {
			t.Errorf("%s.Rotation() = %v, want %v", c.name, c.s.Rotation(), c.sym)
		}
		ref := rotationClosureRef(c.s) && darkClosureRef(c.s)
		if ref != c.s.Rotation() {
			t.Errorf("%s: witness %v disagrees with reference %v", c.name, c.s.Rotation(), ref)
		}
	}
}

// TestStaggeredDarkSetBreaksWitness: edge-set closure alone is not enough.
// Reconfiguring only switch 0 of a symmetric round-robin darkens a single
// 2-coloring of a difference class — rotation maps it into the other
// coloring, so the dark set is not closed and the witness must fail even
// though every slice's edge set still rotates onto itself.
func TestStaggeredDarkSetBreaksWitness(t *testing.T) {
	src := RoundRobin(16, 4)
	if !src.Rotation() {
		t.Fatal("RoundRobin(16,4) should verify rotation-symmetric")
	}
	ref := &Schedule{N: src.N, D: src.D, S: src.S, Kind: src.Kind}
	ref.build(func(sl, sw int) Matching { return src.slices[sl][sw] },
		func(sl, sw int) bool { return sw == 0 })
	if !rotationClosureRef(ref) {
		t.Fatal("edge sets should still be rotation-closed")
	}
	if ref.Rotation() {
		t.Fatal("witness survived a rotation-breaking dark set")
	}
	if darkClosureRef(ref) {
		t.Fatal("reference disagrees: dark set should not be closed")
	}
}

// TestCirculantOpera: the difference-class Opera keeps the schedule
// invariants (valid matchings, every pair connected per cycle, connected
// slice graphs), has cycle length ceil((n/2)/(d/2))·(d/2), and reconfigures
// exactly one switch pair per boundary.
func TestCirculantOpera(t *testing.T) {
	for _, nd := range [][2]int{{8, 4}, {16, 4}, {16, 6}, {32, 4}, {64, 8}} {
		n, d := nd[0], nd[1]
		s := Opera(n, d)
		if !s.Rotation() || s.Kind != "opera" {
			t.Fatalf("Opera(%d,%d): Rotation=%v Kind=%q", n, d, s.Rotation(), s.Kind)
		}
		h := d / 2
		lp := (n/2 + h - 1) / h
		if s.S != lp*h {
			t.Fatalf("Opera(%d,%d).S = %d, want %d", n, d, s.S, lp*h)
		}
		for sl := 0; sl < s.S; sl++ {
			for sw := 0; sw < s.D; sw++ {
				if err := s.MatchingAt(sl, sw).Validate(); err != nil {
					t.Fatalf("Opera(%d,%d) slice %d switch %d: %v", n, d, sl, sw, err)
				}
				// The reconfiguration unit is the switch pair 2u, 2u+1.
				want := sl%h == sw/2
				if s.ReconfiguresAt(sl, sw) != want {
					t.Fatalf("Opera(%d,%d) slice %d switch %d: reconf %v, want %v",
						n, d, sl, sw, s.ReconfiguresAt(sl, sw), want)
				}
			}
			if diam := s.SliceGraph(sl).Diameter(); diam < 0 {
				t.Fatalf("Opera(%d,%d): slice %d graph disconnected", n, d, sl)
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && len(s.DirectSlices(i, j)) == 0 {
					t.Fatalf("Opera(%d,%d): pair (%d,%d) never connected", n, d, i, j)
				}
			}
		}
	}
}

// TestRandomCirculant: seeded circulant schedules verify the witness, keep
// connected slices and full pair coverage, reproduce bit-identically per
// seed, differ across seeds, and reject dimensions without the
// difference-class construction.
func TestRandomCirculant(t *testing.T) {
	a, err := RandomCirculant(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Rotation() || a.Kind != "random-circulant" {
		t.Fatalf("RandomCirculant(16,4,1): Rotation=%v Kind=%q", a.Rotation(), a.Kind)
	}
	if got := rotationClosureRef(a) && darkClosureRef(a); !got {
		t.Fatal("witness disagrees with closure references")
	}
	for sl := 0; sl < a.S; sl++ {
		if d := a.SliceGraph(sl).Diameter(); d < 0 {
			t.Fatalf("slice %d graph disconnected", sl)
		}
	}
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.N; j++ {
			if i != j && len(a.DirectSlices(i, j)) == 0 {
				t.Fatalf("pair (%d,%d) never connected", i, j)
			}
		}
	}
	b, err := RandomCirculant(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same seed produced different schedules")
	}
	c, err := RandomCirculant(16, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds produced identical schedules")
	}
	if _, err := RandomCirculant(10, 4, 1); err == nil {
		t.Fatal("RandomCirculant(10,4) should reject non-power-of-two n")
	}
	if _, err := RandomCirculant(16, 3, 1); err == nil {
		t.Fatal("RandomCirculant(16,3) should reject odd d")
	}
}

// TestScheduleFingerprint: the digest separates dimensions, kinds, matchings
// and reconfiguration timing, and is stable across rebuilds.
func TestScheduleFingerprint(t *testing.T) {
	base := RoundRobin(16, 4)
	if base.Fingerprint() != RoundRobin(16, 4).Fingerprint() {
		t.Fatal("rebuild changed the fingerprint")
	}
	distinct := map[uint64]string{base.Fingerprint(): "RoundRobin(16,4)"}
	for _, c := range []struct {
		name string
		s    *Schedule
	}{
		{"RoundRobin(32,4)", RoundRobin(32, 4)},
		{"RoundRobin(16,6)", RoundRobin(16, 6)},
		{"Opera(16,4)", Opera(16, 4)},
		{"Random(16,4,1)", Random(16, 4, 1)},
	} {
		if prev, dup := distinct[c.s.Fingerprint()]; dup {
			t.Fatalf("%s collides with %s", c.name, prev)
		}
		distinct[c.s.Fingerprint()] = c.name
	}
	// Same matchings, different reconfiguration timing -> different digest.
	flipped := &Schedule{N: base.N, D: base.D, S: base.S, Kind: base.Kind}
	flipped.build(func(sl, sw int) Matching { return base.slices[sl][sw] },
		func(sl, sw int) bool { return false })
	if flipped.Fingerprint() == base.Fingerprint() {
		t.Fatal("reconf flags not covered by the fingerprint")
	}
}

// TestSwappedMatchingBreaksWitness: exchanging one matching between two
// slices of a symmetric schedule leaves both slices with partial difference
// classes, so re-verification must fail.
func TestSwappedMatchingBreaksWitness(t *testing.T) {
	s := RoundRobin(16, 4)
	if !s.Rotation() {
		t.Fatal("RoundRobin(16,4) should verify rotation-symmetric")
	}
	if !s.verifyRotation() {
		t.Fatal("re-verification of the untouched schedule failed")
	}
	// Swap switch 0's matching of slice 0 with switch 1's of slice 1. The
	// two halves of a difference class now live in different slices.
	s.slices[0][0], s.slices[1][1] = s.slices[1][1], s.slices[0][0]
	if s.verifyRotation() {
		t.Fatal("witness survived a cross-slice matching swap")
	}
}

// TestDeltaTablesMatchPairSemantics: the Δ-indexed lookups of a symmetric
// schedule agree with a pair-indexed rebuild of the same matchings.
func TestDeltaTablesMatchPairSemantics(t *testing.T) {
	s := RoundRobin(32, 4)
	if !s.Rotation() || s.DeltaNext() == nil || s.DenseNext() != nil {
		t.Fatalf("RoundRobin(32,4): Rotation=%v deltaNext=%v denseNext=%v",
			s.Rotation(), s.DeltaNext() != nil, s.DenseNext() != nil)
	}
	// Rebuild pair tables from the same matchings.
	ref := &Schedule{N: s.N, D: s.D, S: s.S, Kind: s.Kind}
	ref.build(func(sl, sw int) Matching { return s.slices[sl][sw] },
		func(sl, sw int) bool { return s.reconf[sl][sw] })
	ref.rotSym, ref.deltaDirect, ref.deltaNext = false, nil, nil
	ref.buildPairTables()
	for a := 0; a < s.N; a++ {
		for b := 0; b < s.N; b++ {
			if a == b {
				continue
			}
			got, want := s.DirectSlices(a, b), ref.direct[a*s.N+b]
			if len(got) != len(want) {
				t.Fatalf("DirectSlices(%d,%d) = %v, want %v", a, b, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("DirectSlices(%d,%d) = %v, want %v", a, b, got, want)
				}
			}
			for from := int64(0); from < int64(2*s.S); from++ {
				if g, w := s.NextDirect(a, b, from), ref.NextDirect(a, b, from); g != w {
					t.Fatalf("NextDirect(%d,%d,%d) = %d, want %d", a, b, from, g, w)
				}
				if g, w := s.WaitSlices(a, b, from), ref.WaitSlices(a, b, from); g != w {
					t.Fatalf("WaitSlices(%d,%d,%d) = %d, want %d", a, b, from, g, w)
				}
			}
		}
	}
}

// TestSymmetricSlicesConnected: with d >= 4 the odd-class dealing guarantees
// every slice graph of the symmetric construction is connected, which keeps
// the Appendix-B h_static diameters meaningful at scale.
func TestSymmetricSlicesConnected(t *testing.T) {
	for _, nd := range [][2]int{{16, 4}, {64, 4}, {128, 8}, {256, 8}, {1024, 8}} {
		s := RoundRobin(nd[0], nd[1])
		if !s.Rotation() {
			t.Fatalf("RoundRobin(%d,%d) not symmetric", nd[0], nd[1])
		}
		for sl := 0; sl < s.S; sl++ {
			if d := s.SliceGraph(sl).Diameter(); d < 0 {
				t.Fatalf("RoundRobin(%d,%d): slice %d graph disconnected", nd[0], nd[1], sl)
			}
		}
	}
}
