package topo

// Graph is a static snapshot of the ToR-level connectivity in one time
// slice: an undirected (multi-)graph given by adjacency lists. It backs the
// KSP and Opera baselines and the diameter computation of Appendix B.
type Graph struct {
	N   int
	Adj [][]int
}

// SliceGraph returns the graph realized by all D matchings of cyclic slice.
// Duplicate edges (two switches connecting the same pair) are collapsed.
func (s *Schedule) SliceGraph(slice int) *Graph {
	g := &Graph{N: s.N, Adj: make([][]int, s.N)}
	for i := 0; i < s.N; i++ {
		g.Adj[i] = s.Neighbors(make([]int, 0, s.D), slice, i)
	}
	return g
}

// StableSliceGraph returns the Opera stable subgraph for the cyclic slice:
// the circuits of every switch except those that reconfigure at the next
// slice boundary. Packets routed on these circuits are never in flight
// during a reconfiguration (§2.2). For the staggered Opera schedule this
// removes 1/d of the circuits; for a fully reconfigurable schedule it would
// remove everything, so callers should pair this with the Opera schedule.
func (s *Schedule) StableSliceGraph(slice int) *Graph {
	next := (slice + 1) % s.S
	g := &Graph{N: s.N, Adj: make([][]int, s.N)}
	for i := 0; i < s.N; i++ {
		var adj []int
		for sw := 0; sw < s.D; sw++ {
			if s.reconf[next][sw] {
				continue // this switch's circuits vanish at the boundary
			}
			p := s.slices[slice][sw][i]
			dup := false
			for _, q := range adj {
				if q == p {
					dup = true
					break
				}
			}
			if !dup {
				adj = append(adj, p)
			}
		}
		g.Adj[i] = adj
	}
	return g
}

// BFS returns hop distances from src to every node (-1 if unreachable).
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, g.N)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPath returns one shortest path src->dst as a node sequence
// (including both endpoints), or nil if unreachable.
func (g *Graph) ShortestPath(src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	prev := make([]int, g.N)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Adj[u] {
			if prev[v] < 0 {
				prev[v] = u
				if v == dst {
					return buildPath(prev, src, dst)
				}
				queue = append(queue, v)
			}
		}
	}
	return nil
}

func buildPath(prev []int, src, dst int) []int {
	var rev []int
	for v := dst; v != src; v = prev[v] {
		rev = append(rev, v)
	}
	rev = append(rev, src)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Diameter returns the maximum finite BFS distance over all pairs, or -1 if
// the graph is disconnected.
func (g *Graph) Diameter() int {
	diam := 0
	for src := 0; src < g.N; src++ {
		dist := g.BFS(src)
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// MaxDiameter returns h_static (Appendix B): the maximum diameter over all
// per-slice topology instances of the schedule. Disconnected instances
// contribute the node count as a conservative bound.
func (s *Schedule) MaxDiameter() int {
	max := 0
	for sl := 0; sl < s.S; sl++ {
		d := s.SliceGraph(sl).Diameter()
		if d < 0 {
			d = s.N
		}
		if d > max {
			max = d
		}
	}
	return max
}

// KShortestPaths returns up to k loopless shortest paths from src to dst
// using Yen's algorithm over unit edge weights. Paths are ordered by hop
// count, then by discovery order. The baseline KSP routing (§2.2) uses this
// per slice graph instance.
func (g *Graph) KShortestPaths(src, dst, k int) [][]int {
	first := g.ShortestPath(src, dst)
	if first == nil || k <= 0 {
		return nil
	}
	paths := [][]int{first}
	var candidates [][]int
	for len(paths) < k {
		prev := paths[len(paths)-1]
		for i := 0; i < len(prev)-1; i++ {
			spurNode := prev[i]
			rootPath := prev[:i+1]
			// Build a graph with removed edges/nodes.
			banned := make(map[[2]int]bool)
			for _, p := range paths {
				if len(p) > i && equalPrefix(p, rootPath) {
					banned[[2]int{p[i], p[i+1]}] = true
					banned[[2]int{p[i+1], p[i]}] = true
				}
			}
			blockedNode := make([]bool, g.N)
			for _, v := range rootPath[:len(rootPath)-1] {
				blockedNode[v] = true
			}
			spur := g.shortestPathFiltered(spurNode, dst, banned, blockedNode)
			if spur == nil {
				continue
			}
			total := append(append([]int{}, rootPath[:len(rootPath)-1]...), spur...)
			if !containsPath(paths, total) && !containsPath(candidates, total) {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		// Pick the shortest candidate.
		best := 0
		for i := 1; i < len(candidates); i++ {
			if len(candidates[i]) < len(candidates[best]) {
				best = i
			}
		}
		paths = append(paths, candidates[best])
		candidates = append(candidates[:best], candidates[best+1:]...)
	}
	return paths
}

func (g *Graph) shortestPathFiltered(src, dst int, banned map[[2]int]bool, blockedNode []bool) []int {
	if src == dst {
		return []int{src}
	}
	prev := make([]int, g.N)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Adj[u] {
			if blockedNode[v] || prev[v] >= 0 || banned[[2]int{u, v}] {
				continue
			}
			prev[v] = u
			if v == dst {
				return buildPath(prev, src, dst)
			}
			queue = append(queue, v)
		}
	}
	return nil
}

func equalPrefix(p, prefix []int) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i, v := range prefix {
		if p[i] != v {
			return false
		}
	}
	return true
}

func containsPath(paths [][]int, p []int) bool {
	for _, q := range paths {
		if len(q) != len(p) {
			continue
		}
		same := true
		for i := range q {
			if q[i] != p[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
