package topo

// Rotation symmetry: a schedule is rotation-symmetric when every slice's
// edge set is invariant under the ToR relabeling i -> (i+1) mod N (and hence
// under every rotation i -> (i+k) mod N). For such schedules the whole
// offline routing problem is vertex-transitive: the UCMP group for
// (t_start, src, dst) is a hop-relabeling of the canonical group for
// (t_start, 0, (dst-src) mod N), which is what lets core dedupe the O(S·N²)
// group spine down to O(S·N) canonical rows (DESIGN.md §13).
//
// The symmetric round-robin construction below realizes this for N a power
// of two and even d >= 4. The building block is the difference class
// Δ(δ) = {{i, (i+δ) mod N}}: each class is rotation-invariant by definition,
// so any slice whose edge set is a union of whole classes is too. A class
// with δ < N/2 decomposes into exactly two perfect matchings by 2-coloring
// its cycles i -> i+δ (every cycle has even length N/gcd(δ,N) because N is a
// power of two); the δ = N/2 class is itself a single matching, which the
// construction assigns to both switches of its unit (a duplicated pair is
// harmless: direct-circuit indexing dedupes it). One "unit" = one class =
// two switch-matchings, so a slice holds d/2 units and the cycle needs
// S = ceil((N/2)/(d/2)) = ceil(N/d) slices — the same count as the padded
// circle-method schedule for even N and even d, so no downstream S pins move.

// rotationSymmetricRR reports whether RoundRobin(n, d) uses the
// rotation-symmetric difference-class construction instead of the circle
// method: n a power of two (>= 4) and d even with d >= 4. d = 2 is
// excluded: a slice then holds a single difference class, and the classes
// with even δ yield disconnected slice graphs, which the per-slice routing
// baselines (KSP, Opera) cannot tolerate — those fabrics keep the circle
// method.
func rotationSymmetricRR(n, d int) bool {
	return n >= 4 && n&(n-1) == 0 && d >= 4 && d%2 == 0
}

// symmetricRoundRobin builds the difference-class round-robin schedule.
func symmetricRoundRobin(n, d int) *Schedule {
	h := d / 2 // units per slice
	u := n / 2 // total units (difference classes)
	order := symmetricUnitOrder(n, h)
	units := make([][2]Matching, u+1) // indexed by delta, built lazily
	s := (u + h - 1) / h
	sched := &Schedule{N: n, D: d, S: s, Kind: "round-robin"}
	sched.build(func(slice, sw int) Matching {
		// Unit j of a slice occupies switches 2j and 2j+1; the final slice
		// wraps whole units from the start of the order as padding.
		delta := order[(slice*h+sw/2)%u]
		if units[delta][0] == nil {
			a, b := differenceMatchings(n, delta)
			units[delta] = [2]Matching{a, b}
		}
		return units[delta][sw%2]
	}, func(slice, sw int) bool { return true })
	return sched
}

// differenceMatchings splits difference class δ into its two perfect
// matchings by alternately coloring the edges along each cycle of the
// permutation i -> (i+δ) mod n. Requires every cycle length n/gcd(δ,n) to be
// even (guaranteed for n a power of two). For δ = n/2 the cycles have length
// two and both colors land on the same edge, so a == b: the class is a
// single matching, returned twice.
func differenceMatchings(n, delta int) (a, b Matching) {
	a = make(Matching, n)
	b = make(Matching, n)
	visited := make([]bool, n)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		i, color := start, 0
		for {
			visited[i] = true
			j := (i + delta) % n
			if color == 0 {
				a[i], a[j] = j, i
			} else {
				b[i], b[j] = j, i
			}
			color ^= 1
			i = j
			if i == start {
				break
			}
		}
	}
	return a, b
}

// symmetricUnitOrder orders the difference classes 1..n/2 across slices.
// Two goals: slice graphs should look like random circulant graphs (so the
// expander-ish diameter assumptions of Appendix B keep holding), and every
// slice should contain at least one odd δ whenever supply allows (a
// circulant graph on Z_n with n a power of two is connected iff one of its
// differences is odd). Odd and even classes are each shuffled by a
// deterministic LCG, then the odd classes are dealt round-robin across the
// slice blocks before the even classes fill the remaining slots; with
// d >= 4 there are at least as many odd classes as slices, so every slice
// graph is connected.
func symmetricUnitOrder(n, h int) []int {
	return circulantUnitOrder(n, h, 0xC2B2AE3D27D4EB4F, 0x9E3779B97F4A7C15)
}

// circulantUnitOrder is symmetricUnitOrder with caller-chosen shuffle seeds,
// shared with RandomCirculant (which mixes a user seed into them). The fixed
// seeds above keep RoundRobin's schedules bit-identical across builds.
func circulantUnitOrder(n, h int, oddSeed, evenSeed uint64) []int {
	u := n / 2
	s := (u + h - 1) / h
	odds, evens := splitDifferenceClasses(n)
	lcgShuffle(odds, oddSeed)
	lcgShuffle(evens, evenSeed)
	caps := make([]int, s)
	for b := range caps {
		caps[b] = h
	}
	caps[s-1] = u - (s-1)*h
	blocks := make([][]int, s)
	bi := 0
	for _, delta := range odds {
		for len(blocks[bi]) >= caps[bi] {
			bi = (bi + 1) % s
		}
		blocks[bi] = append(blocks[bi], delta)
		bi = (bi + 1) % s
	}
	for _, delta := range evens {
		for len(blocks[bi]) >= caps[bi] {
			bi = (bi + 1) % s
		}
		blocks[bi] = append(blocks[bi], delta)
	}
	order := make([]int, 0, u)
	for _, b := range blocks {
		order = append(order, b...)
	}
	return order
}

// lcgShuffle is a deterministic Fisher-Yates driven by a 64-bit LCG, so
// schedules stay reproducible without threading a seed through call sites.
func lcgShuffle(xs []int, seed uint64) {
	state := seed
	for i := len(xs) - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state % uint64(i+1))
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// verifyRotation checks — it never assumes — two closure properties per
// slice, each under the ToR relabeling i -> (i+1) mod N (closure under +1 on
// a finite edge set implies closure under every rotation):
//
//  1. the slice's full edge set is closed, which makes the offline DP
//     rotation-equivariant (it reads only connectivity); and
//  2. the subset of edges dark at the slice start — edges realized only by
//     switches that reconfigure entering the slice — is closed, which makes
//     the physical fabric rotation-symmetric too: a relabeled circuit waits
//     out exactly the reconfiguration delay its canonical copy does.
//
// Condition 2 generalizes the earlier uniform-reconfiguration requirement
// (all switches of a slice sharing one flag trivially yields dark = full
// set): Opera-style staggered schedules reconfigure one unit per boundary,
// and they verify iff each boundary darkens whole difference classes.
// O(S·N·D) with three transient N²-bit sets.
func (s *Schedule) verifyRotation() bool {
	n := s.N
	words := (n*n + 63) / 64
	all := make([]uint64, words)  // every edge of the slice
	live := make([]uint64, words) // edges kept by a non-reconfiguring switch
	dark := make([]uint64, words) // edges served only by reconfiguring switches
	for sl := 0; sl < s.S; sl++ {
		for i := range all {
			all[i], live[i], dark[i] = 0, 0, 0
		}
		for sw := 0; sw < s.D; sw++ {
			m := s.slices[sl][sw]
			rec := s.reconf[sl][sw]
			for i := 0; i < n; i++ {
				id := i*n + m[i]
				all[id>>6] |= 1 << (id & 63)
				if !rec {
					live[id>>6] |= 1 << (id & 63)
				}
			}
		}
		for sw := 0; sw < s.D; sw++ {
			if !s.reconf[sl][sw] {
				continue
			}
			m := s.slices[sl][sw]
			for i := 0; i < n; i++ {
				id := i*n + m[i]
				if live[id>>6]&(1<<(id&63)) == 0 {
					dark[id>>6] |= 1 << (id & 63)
				}
			}
		}
		for sw := 0; sw < s.D; sw++ {
			m := s.slices[sl][sw]
			for i := 0; i < n; i++ {
				id := i*n + m[i]
				rid := ((i+1)%n)*n + (m[i]+1)%n
				if all[rid>>6]&(1<<(rid&63)) == 0 {
					return false
				}
				if dark[id>>6]&(1<<(id&63)) != 0 && dark[rid>>6]&(1<<(rid&63)) == 0 {
					return false
				}
			}
		}
	}
	return true
}

// buildDeltaTables indexes direct circuits per difference class instead of
// per pair: rotation symmetry makes DirectSlices(a, b) a function of
// (b-a) mod N alone, collapsing the N² pair spine to N rows and the dense
// next-direct table from S·N² to S·N entries (512 KB instead of 512 MB at
// N=1024, S=128). Only called after verifyRotation succeeded; class δ is
// present in a slice iff ToR 0 has neighbor δ there.
func (s *Schedule) buildDeltaTables() {
	s.deltaDirect = make([][]int32, s.N)
	for sl := 0; sl < s.S; sl++ {
		for sw := 0; sw < s.D; sw++ {
			j := s.slices[sl][sw][0]
			dd := s.deltaDirect[j]
			if len(dd) == 0 || dd[len(dd)-1] != int32(sl) {
				s.deltaDirect[j] = append(dd, int32(sl))
			}
		}
	}
	s.deltaNext = make([]int32, s.N*s.S)
	for delta := 0; delta < s.N; delta++ {
		fillNextRow(s.deltaNext[delta*s.S:(delta+1)*s.S], s.deltaDirect[delta], s.S)
	}
}

// Rotation reports whether the schedule is rotation-symmetric: every
// slice's edge set — and its dark-at-slice-start subset — is invariant
// under the ToR relabeling i -> (i+1) mod N (hence under all rotations).
// The witness is verified from the built matchings and reconfiguration
// flags at construction time, never assumed from the generator kind:
// RoundRobin and Opera on a power-of-two N with even d >= 4 verify true
// (circulant constructions), as does RandomCirculant; the circle-method
// fallbacks and Random verify false.
func (s *Schedule) Rotation() bool { return s.rotSym }

// DeltaNext exposes the Δ-indexed dense next-direct table of a
// rotation-symmetric schedule for hot loops: entry delta*S + s is the
// earliest cyclic slice >= s in which any pair (i, i+delta) has a direct
// circuit, wrapped past S (value in [s, s+S)), or -1 for delta = 0. nil for
// non-symmetric schedules, which use DenseNext instead. Read-only.
func (s *Schedule) DeltaNext() []int32 { return s.deltaNext }
