package topo

import "testing"

// nextDirectLinear is the original linear-scan NextDirect, kept as the
// reference implementation the dense-table and binary-search paths are
// verified against.
func (s *Schedule) nextDirectLinear(a, b int, from int64) int64 {
	ds := s.DirectSlices(a, b)
	if len(ds) == 0 {
		panic("topo: pair never connected")
	}
	cyc := from % int64(s.S)
	base := from - cyc
	for _, d := range ds {
		if int64(d) >= cyc {
			return base + int64(d)
		}
	}
	return base + int64(s.S) + int64(ds[0])
}

// withoutDenseTable returns a shallow copy of the schedule with the dense
// next-direct tables (pair-indexed and Δ-indexed) dropped, forcing
// NextDirect onto its binary-search fallback (the path taken by fabrics
// past the table's memory budget).
func withoutDenseTable(s *Schedule) *Schedule {
	c := *s
	c.next = nil
	c.deltaNext = nil
	return &c
}

func testSchedules() map[string]*Schedule {
	return map[string]*Schedule{
		"round-robin": RoundRobin(10, 3),
		"random":      Random(10, 3, 7),
		"opera":       Opera(10, 3),
	}
}

// TestNextDirectMatchesLinear cross-checks both lookup implementations
// against the linear scan for every pair and for starting points spanning
// several cycles, including wrap-around within the first cycle.
func TestNextDirectMatchesLinear(t *testing.T) {
	for kind, s := range testSchedules() {
		if s.DenseNext() == nil {
			t.Fatalf("%s: dense table unexpectedly disabled for this size", kind)
		}
		fallback := withoutDenseTable(s)
		for a := 0; a < s.N; a++ {
			for b := 0; b < s.N; b++ {
				if a == b {
					continue
				}
				for from := int64(0); from < int64(3*s.S); from++ {
					want := s.nextDirectLinear(a, b, from)
					if got := s.NextDirect(a, b, from); got != want {
						t.Fatalf("%s: dense NextDirect(%d,%d,%d)=%d want %d", kind, a, b, from, got, want)
					}
					if got := fallback.NextDirect(a, b, from); got != want {
						t.Fatalf("%s: fallback NextDirect(%d,%d,%d)=%d want %d", kind, a, b, from, got, want)
					}
				}
			}
		}
	}
}

// TestNextDirectWrapAround pins the cycle boundary case: asking just past a
// pair's last direct slice of the cycle must land on its first slice of the
// next cycle, in both implementations.
func TestNextDirectWrapAround(t *testing.T) {
	s := RoundRobin(8, 2)
	fallback := withoutDenseTable(s)
	for a := 0; a < s.N; a++ {
		for b := 0; b < s.N; b++ {
			if a == b {
				continue
			}
			ds := s.DirectSlices(a, b)
			// Just past the pair's last appearance: the answer is its first
			// slice of the next cycle (also right when the last appearance
			// closes the cycle and from is already the next cycle's slice 0).
			from := int64(ds[len(ds)-1]) + 1
			want := int64(s.S) + int64(ds[0])
			if got := s.NextDirect(a, b, from); got != want {
				t.Fatalf("dense NextDirect(%d,%d,%d)=%d want %d (direct=%v)", a, b, from, got, want, ds)
			}
			if got := fallback.NextDirect(a, b, from); got != want {
				t.Fatalf("fallback NextDirect(%d,%d,%d)=%d want %d (direct=%v)", a, b, from, got, want, ds)
			}
		}
	}
}

// TestNextDirectFarFuture checks starting points many cycles in: the cyclic
// decomposition must hold for arbitrary absolute slices.
func TestNextDirectFarFuture(t *testing.T) {
	s := Opera(8, 2)
	fallback := withoutDenseTable(s)
	for _, from := range []int64{int64(10*s.S) + 3, int64(1000*s.S) + int64(s.S) - 1, 1 << 40} {
		for a := 0; a < s.N; a++ {
			for b := 0; b < s.N; b++ {
				if a == b {
					continue
				}
				want := s.nextDirectLinear(a, b, from)
				if got := s.NextDirect(a, b, from); got != want {
					t.Fatalf("dense NextDirect(%d,%d,%d)=%d want %d", a, b, from, got, want)
				}
				if got := fallback.NextDirect(a, b, from); got != want {
					t.Fatalf("fallback NextDirect(%d,%d,%d)=%d want %d", a, b, from, got, want)
				}
				if w := s.WaitSlices(a, b, from); w != want-from {
					t.Fatalf("WaitSlices(%d,%d,%d)=%d want %d", a, b, from, w, want-from)
				}
			}
		}
	}
}
