package traceio

import (
	"bytes"
	"strings"
	"testing"

	"ucmp/internal/netsim"
	"ucmp/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	flows := []*netsim.Flow{
		netsim.NewFlow(2, 1, 5, 1000, 20*sim.Microsecond),
		netsim.NewFlow(1, 0, 3, 500, 10*sim.Microsecond),
	}
	var buf bytes.Buffer
	if err := WriteFlows(&buf, flows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d flows", len(got))
	}
	// Sorted by arrival on read.
	if got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("order: %d, %d", got[0].ID, got[1].ID)
	}
	if got[0].Size != 500 || got[0].Arrival != 10*sim.Microsecond || got[0].DstHost != 3 {
		t.Fatalf("fields lost: %+v", got[0])
	}
	// Hashes are re-derived deterministically.
	if got[0].Hash != netsim.NewFlow(1, 0, 3, 500, 0).Hash {
		t.Fatal("hash not deterministic")
	}
}

func TestReadFlowsErrors(t *testing.T) {
	cases := []string{
		"id,src_host,dst_host,size_bytes,arrival_ns\n1,0,3,abc,0\n",
		"1,0,3,0,0\n",    // zero size
		"1,0,3,100,-5\n", // negative arrival
		"1,0,3,100\n",    // wrong field count
	}
	for i, c := range cases {
		if _, err := ReadFlows(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Header-only is fine and empty.
	got, err := ReadFlows(strings.NewReader("id,src_host,dst_host,size_bytes,arrival_ns\n"))
	if err != nil || len(got) != 0 {
		t.Fatalf("header-only: %v, %d flows", err, len(got))
	}
}

func TestWriteFCTs(t *testing.T) {
	done := netsim.NewFlow(1, 0, 3, 500, 10)
	done.Finished = true
	done.FinishedAt = 1010
	pending := netsim.NewFlow(2, 1, 4, 900, 0)
	child := netsim.NewFlow(3, 1, 4, 100, 0)
	child.Child = true
	var buf bytes.Buffer
	if err := WriteFCTs(&buf, []*netsim.Flow{pending, done, child}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 rows (child skipped)
		t.Fatalf("lines: %v", lines)
	}
	if !strings.Contains(lines[1], "1,0,3,500,10,1000,true") {
		t.Fatalf("finished row wrong: %s", lines[1])
	}
	if !strings.Contains(lines[2], "2,1,4,900,0,-1,false") {
		t.Fatalf("pending row wrong: %s", lines[2])
	}
}
