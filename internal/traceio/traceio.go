// Package traceio reads and writes flow traces and results as CSV, so
// external traces can drive the simulator and FCT series can feed external
// plotting.
//
// Flow trace format (header optional):
//
//	id,src_host,dst_host,size_bytes,arrival_ns
//
// FCT output format:
//
//	id,src_host,dst_host,size_bytes,arrival_ns,fct_ns,finished
package traceio

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"ucmp/internal/netsim"
	"ucmp/internal/sim"
)

// ReadFlows parses a flow trace.
func ReadFlows(r io.Reader) ([]*netsim.Flow, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	cr.TrimLeadingSpace = true
	var flows []*netsim.Flow
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("traceio: %w", err)
		}
		line++
		if line == 1 && rec[0] == "id" {
			continue // header
		}
		vals := make([]int64, 5)
		for i, field := range rec {
			v, err := strconv.ParseInt(field, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("traceio: line %d field %d: %w", line, i+1, err)
			}
			vals[i] = v
		}
		if vals[3] <= 0 {
			return nil, fmt.Errorf("traceio: line %d: non-positive size %d", line, vals[3])
		}
		if vals[4] < 0 {
			return nil, fmt.Errorf("traceio: line %d: negative arrival %d", line, vals[4])
		}
		flows = append(flows, netsim.NewFlow(vals[0], int(vals[1]), int(vals[2]), vals[3], sim.Time(vals[4])))
	}
	sort.SliceStable(flows, func(i, j int) bool { return flows[i].Arrival < flows[j].Arrival })
	return flows, nil
}

// WriteFlows emits a flow trace with header.
func WriteFlows(w io.Writer, flows []*netsim.Flow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "src_host", "dst_host", "size_bytes", "arrival_ns"}); err != nil {
		return err
	}
	for _, f := range flows {
		rec := []string{
			strconv.FormatInt(f.ID, 10),
			strconv.Itoa(f.SrcHost),
			strconv.Itoa(f.DstHost),
			strconv.FormatInt(f.Size, 10),
			strconv.FormatInt(int64(f.Arrival), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFCTs emits per-flow results, sorted by flow id. MPTCP subflows
// (Child) are skipped.
func WriteFCTs(w io.Writer, flows []*netsim.Flow) error {
	sorted := make([]*netsim.Flow, 0, len(flows))
	for _, f := range flows {
		if f.Child {
			continue
		}
		sorted = append(sorted, f)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "src_host", "dst_host", "size_bytes", "arrival_ns", "fct_ns", "finished"}); err != nil {
		return err
	}
	for _, f := range sorted {
		fct := int64(-1)
		if f.Finished {
			fct = int64(f.FCT())
		}
		rec := []string{
			strconv.FormatInt(f.ID, 10),
			strconv.Itoa(f.SrcHost),
			strconv.Itoa(f.DstHost),
			strconv.FormatInt(f.Size, 10),
			strconv.FormatInt(int64(f.Arrival), 10),
			strconv.FormatInt(fct, 10),
			strconv.FormatBool(f.Finished),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
