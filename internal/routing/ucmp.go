package routing

import (
	"sync"

	"ucmp/internal/core"
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
)

// UCMP is the uniform-cost multi-path router: offline-computed UCMP groups,
// online path assignment by flow-aging bucket (§5), source routing (§6.2).
type UCMP struct {
	PS   *core.PathSet
	Ager *core.FlowAger

	// Relax enables latency relaxation (§4.3): flows at least RelaxCutoff
	// bytes ride the RotorLB machinery over the full relaxed 2-hop path
	// set, as the paper does for the data mining workload (§7.3, which
	// notes the htsim RotorLB implementation requires the full VLB path
	// set).
	Relax       bool
	RelaxCutoff int64

	// ForceBucket, when >= 0, overrides the packet's bucket tag for every
	// route decision. It ablates the uniform-cost policy: 0 pins all
	// traffic to the globally minimum-latency path (pure latency
	// minimization), a large value pins it to the fewest-hop path (pure
	// bandwidth minimization, typically the direct circuit).
	ForceBucket int

	// Health, when non-nil, is the time-indexed fault view (§5.3 online
	// recovery): when the wanted path is unhealthy at plan time, assignment
	// prefers a healthy same-length group path, then a shorter one, then a
	// longer one, then a 2-hop backup — the order failure.Classify scores
	// offline — and stamps the outcome on Packet.RecoveredVia.
	Health HealthView

	// Backlog and CongestionThreshold enable the §10 congestion-aware
	// extension (see congestion.go): when the primary candidate's
	// first-hop calendar queue held at least CongestionThreshold data
	// packets as of the last slice boundary, assignment steers to the
	// least-congested path within one bucket of the minimum uniform cost.
	// Backlog is usually netsim.Network.CongestionBacklog, the
	// slice-boundary board view (stale by one slice, identical in serial
	// and sharded runs); now is the plan instant, which anchors the board
	// slot read.
	Backlog             func(tor int, now sim.Time, hop netsim.PlannedHop) int
	CongestionThreshold int

	// Tables, when non-nil, serves steady-state route plans from compiled
	// per-ToR source-routing tables (§6.2) materialized lazily on first use
	// — the simulated analogue of looking up switch SRAM instead of
	// consulting the path database. Plans are bit-identical to the group
	// path; faults and congestion steering still take the group machinery.
	// Set via EnableTables.
	Tables *TableSet

	// congPool recycles the congestion pick's scratch (candidate buffer +
	// backlog memo, congestion.go). A pool rather than a plain field:
	// PlanRoute is called concurrently from every lookahead domain of a
	// sharded run, and the router must stay safe for concurrent use.
	congPool sync.Pool
}

// NewUCMP builds the router from an offline PathSet.
func NewUCMP(ps *core.PathSet) *UCMP {
	u := &UCMP{PS: ps, Ager: core.NewFlowAger(ps), RelaxCutoff: FlowCutoff15MB, ForceBucket: -1}
	u.congPool.New = func() any { return new(congScratch) }
	return u
}

// Name implements netsim.Router.
func (u *UCMP) Name() string { return "ucmp" }

// EnableTables switches steady-state planning to compiled source-routing
// tables, keeping at most capTables per-ToR tables materialized (<= 0 picks
// the default). Returns u for chaining.
func (u *UCMP) EnableTables(capTables int) *UCMP {
	u.Tables = NewTableSet(u.PS, u.Ager, capTables)
	return u
}

// RotorFlow implements netsim.Router: with latency relaxation on, long
// flows use the hop-by-hop machinery over 2-hop paths.
func (u *UCMP) RotorFlow(f *netsim.Flow) bool {
	return u.Relax && f.Size >= u.RelaxCutoff
}

// PlanRoute implements netsim.Router. The packet's bucket tag picks the
// entry of the UCMP group for (tor, dst, slice); parallel paths tie-break
// on the flow hash. Control packets carry bucket 0 and ride the
// minimum-latency path.
func (u *UCMP) PlanRoute(p *netsim.Packet, tor int, now sim.Time, fromAbs int64, buf []netsim.PlannedHop) ([]netsim.PlannedHop, bool) {
	dst := p.DstToR
	if dst == tor {
		return nil, false
	}
	ts := u.PS.F.CyclicSlice(fromAbs)
	var hash uint64
	if p.Flow != nil {
		hash = p.Flow.Hash
	}
	bucket := p.Bucket
	if u.ForceBucket >= 0 {
		bucket = u.ForceBucket
	}
	// Steady state (no fault view, no congestion steering) has two
	// allocation-free fast paths; both fall through to the general group
	// machinery when they cannot answer.
	if u.Health == nil && (u.Backlog == nil || u.CongestionThreshold <= 0) {
		if u.Tables != nil {
			if hops, ok := u.Tables.For(tor).LookupInto(dst, ts, clampBucket(bucket, u.Ager.NumBuckets()), hash, fromAbs, buf); ok {
				p.RecoveredVia = netsim.RecoveryPrimary
				return hops, true
			}
		} else if u.PS.Symmetric() {
			if hops, ok := u.planSymmetric(tor, dst, ts, bucket, hash, fromAbs, buf); ok {
				p.RecoveredVia = netsim.RecoveryPrimary
				return hops, true
			}
		}
	}
	// The general path. On a rotation-symmetric PathSet with no fault view
	// the canonical group serves the decision and hops are relabeled by
	// +tor at emission (emitHops), which keeps the congestion-steered plan
	// allocation-free — PS.Group would materialize concrete paths. A fault
	// view needs absolute labels for the health predicate and the fault
	// path already allocates, so it takes the materialized group (rot = 0).
	n := u.PS.F.Sched.N
	rot := 0
	var g *core.Group
	if u.Health == nil && u.PS.Symmetric() {
		delta := dst - tor
		if delta < 0 {
			delta += n
		}
		g = u.PS.CanonGroup(ts, delta)
		rot = tor
	} else {
		g = u.PS.Group(ts, tor, dst)
	}
	var ok func(*core.Path) bool
	if u.Health != nil {
		h := u.Health
		ok = func(p *core.Path) bool { return h.PathOK(now, p) }
	}
	path, steered := u.pickUncongested(g, bucket, tor, rot, n, now, fromAbs, hash, ok)
	class := netsim.RecoveryPrimary
	if steered {
		class = netsim.RecoverySteered
	}
	if path == nil {
		path, class = u.pickHealthy(g, bucket, hash, ok)
	}
	if path == nil {
		// Group exhausted (a failure, or an empty group): fall back to a
		// healthy backup 2-hop path avoiding failed ToRs (§5.3). Backup
		// paths are always concrete, so they emit without rotation.
		var exclude func(int) bool
		if u.Health != nil {
			h := u.Health
			exclude = func(t int) bool { return !h.TorOK(now, t) }
		}
		backups := u.PS.BackupPaths(ts, tor, dst, 4, exclude)
		path = healthyOf(backups, hash, ok)
		if path == nil {
			p.RecoveredVia = netsim.RecoveryNone
			return nil, false
		}
		p.RecoveredVia = netsim.RecoveryBackup
		return hopsFromPath(path, fromAbs, buf), true
	}
	p.RecoveredVia = class
	return emitHops(path, rot, n, fromAbs, buf), true
}

// planSymmetric is the zero-alloc steady-state plan on a rotation-symmetric
// PathSet: the canonical group for (t_start, Δ = dst-src mod N) is consulted
// directly and its hops are relabeled inline — ToRs rotated by +tor, slices
// (t_start-relative in canonical form) anchored at fromAbs — instead of
// materializing a concrete Group. Entry and path selection are exactly
// pickHealthy's healthy-fabric behavior, so plans are bit-identical to the
// brute build's.
func (u *UCMP) planSymmetric(tor, dst, ts, bucket int, hash uint64, fromAbs int64, buf []netsim.PlannedHop) ([]netsim.PlannedHop, bool) {
	n := u.PS.F.Sched.N
	delta := dst - tor
	if delta < 0 {
		delta += n
	}
	g := u.PS.CanonGroup(ts, delta)
	paths := u.Ager.EntryForBucket(g, bucket).Paths
	if len(paths) == 0 {
		return nil, false
	}
	path := paths[hash%uint64(len(paths))]
	return emitHops(path, tor, n, fromAbs, buf), true
}

// clampBucket mirrors the router's out-of-range bucket tolerance (Group
// EntryForAged clamps to the newest/oldest entry) for the table key space,
// which only installs rows for in-range buckets.
func clampBucket(b, numBuckets int) int {
	if b < 0 {
		return 0
	}
	if b >= numBuckets {
		return numBuckets - 1
	}
	return b
}

// pickHealthy resolves the bucket to a path and its §5.3 recovery class. A
// nil health predicate short-circuits to the wanted path (the steady-state
// hot path). Under faults the preference order mirrors failure.classifyOne:
// the wanted entry's parallel paths (same hop count), then other healthy
// entries — same length first, then shorter, then longer, each resolved in
// group entry order.
func (u *UCMP) pickHealthy(g *core.Group, bucket int, hash uint64, ok func(*core.Path) bool) (*core.Path, netsim.RecoveryClass) {
	want := u.Ager.EntryForBucket(g, bucket)
	p := healthyOf(want.Paths, hash, ok)
	if ok == nil {
		return p, netsim.RecoveryPrimary
	}
	if p != nil {
		if p == healthyOf(want.Paths, hash, nil) {
			return p, netsim.RecoveryPrimary
		}
		// A sibling parallel path of the wanted entry: same hop count.
		return p, netsim.RecoverySameLength
	}
	var shorter, longer *core.Path
	for i := range g.Entries {
		e := &g.Entries[i]
		if e == want {
			continue
		}
		switch {
		case e.HopCount == want.HopCount:
			if p := healthyOf(e.Paths, hash, ok); p != nil {
				return p, netsim.RecoverySameLength
			}
		case e.HopCount < want.HopCount:
			if shorter == nil {
				shorter = healthyOf(e.Paths, hash, ok)
			}
		default:
			if longer == nil {
				longer = healthyOf(e.Paths, hash, ok)
			}
		}
	}
	if shorter != nil {
		return shorter, netsim.RecoveryShorter
	}
	if longer != nil {
		return longer, netsim.RecoveryLonger
	}
	return nil, netsim.RecoveryNone
}

// healthyOf returns the hash-selected healthy path, or nil when paths is
// empty (a failure scenario can empty an entry) or every path is unhealthy.
// A nil ok accepts every path.
func healthyOf(paths []*core.Path, hash uint64, ok func(*core.Path) bool) *core.Path {
	n := len(paths)
	if n == 0 {
		return nil
	}
	start := int(hash % uint64(n))
	for i := 0; i < n; i++ {
		p := paths[(start+i)%n]
		if ok == nil || ok(p) {
			return p
		}
	}
	return nil
}

// StampBucket tags a data packet with the flow's current aging bucket
// (host-side DSCP stamping, §6.1).
func (u *UCMP) StampBucket(p *netsim.Packet) {
	if p.Flow != nil && p.Type == netsim.Data {
		p.Bucket = u.Ager.Bucket(p.Flow.BytesSent)
	}
}
