package routing

import (
	"ucmp/internal/core"
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
)

// UCMP is the uniform-cost multi-path router: offline-computed UCMP groups,
// online path assignment by flow-aging bucket (§5), source routing (§6.2).
type UCMP struct {
	PS   *core.PathSet
	Ager *core.FlowAger

	// Relax enables latency relaxation (§4.3): flows at least RelaxCutoff
	// bytes ride the RotorLB machinery over the full relaxed 2-hop path
	// set, as the paper does for the data mining workload (§7.3, which
	// notes the htsim RotorLB implementation requires the full VLB path
	// set).
	Relax       bool
	RelaxCutoff int64

	// ForceBucket, when >= 0, overrides the packet's bucket tag for every
	// route decision. It ablates the uniform-cost policy: 0 pins all
	// traffic to the globally minimum-latency path (pure latency
	// minimization), a large value pins it to the fewest-hop path (pure
	// bandwidth minimization, typically the direct circuit).
	ForceBucket int

	// PathOK, when non-nil, reports whether a path is usable under the
	// current failure scenario; unhealthy paths are skipped in favor of
	// other group members or backup 2-hop paths (§5.3).
	PathOK func(p *core.Path) bool
	// TorOK, when non-nil, filters backup-path intermediates.
	TorOK func(tor int) bool

	// Backlog and CongestionThreshold enable the §10 congestion-aware
	// extension (see congestion.go): when the primary candidate's
	// first-hop calendar queue holds at least CongestionThreshold data
	// packets, assignment steers to the least-congested path within one
	// bucket of the minimum uniform cost. Backlog is usually
	// netsim.Network.CalendarBacklog.
	Backlog             func(tor int, hop netsim.PlannedHop) int
	CongestionThreshold int
}

// NewUCMP builds the router from an offline PathSet.
func NewUCMP(ps *core.PathSet) *UCMP {
	return &UCMP{PS: ps, Ager: core.NewFlowAger(ps), RelaxCutoff: FlowCutoff15MB, ForceBucket: -1}
}

// Name implements netsim.Router.
func (u *UCMP) Name() string { return "ucmp" }

// RotorFlow implements netsim.Router: with latency relaxation on, long
// flows use the hop-by-hop machinery over 2-hop paths.
func (u *UCMP) RotorFlow(f *netsim.Flow) bool {
	return u.Relax && f.Size >= u.RelaxCutoff
}

// PlanRoute implements netsim.Router. The packet's bucket tag picks the
// entry of the UCMP group for (tor, dst, slice); parallel paths tie-break
// on the flow hash. Control packets carry bucket 0 and ride the
// minimum-latency path.
func (u *UCMP) PlanRoute(p *netsim.Packet, tor int, now sim.Time, fromAbs int64, buf []netsim.PlannedHop) ([]netsim.PlannedHop, bool) {
	dst := p.DstToR
	if dst == tor {
		return nil, false
	}
	ts := u.PS.F.CyclicSlice(fromAbs)
	g := u.PS.Group(ts, tor, dst)
	var hash uint64
	if p.Flow != nil {
		hash = p.Flow.Hash
	}
	bucket := p.Bucket
	if u.ForceBucket >= 0 {
		bucket = u.ForceBucket
	}
	path := u.pickUncongested(g, bucket, tor, fromAbs, hash)
	if path == nil {
		path = u.pickHealthy(g, bucket, hash)
	}
	if path == nil {
		// Single-path group hit a failure: fall back to a backup 2-hop
		// path avoiding failed ToRs (§5.3).
		var exclude func(int) bool
		if u.TorOK != nil {
			exclude = func(t int) bool { return !u.TorOK(t) }
		}
		backups := u.PS.BackupPaths(ts, tor, dst, 4, exclude)
		if len(backups) == 0 {
			return nil, false
		}
		path = backups[int(hash%uint64(len(backups)))]
	}
	return hopsFromPath(path, fromAbs, buf), true
}

// pickHealthy resolves the bucket to a path, skipping paths through failed
// ToRs — first among the entry's parallel paths, then across the rest of
// the group (same-length first, then other lengths).
func (u *UCMP) pickHealthy(g *core.Group, bucket int, hash uint64) *core.Path {
	want := u.Ager.EntryForBucket(g, bucket)
	if p := healthyOf(want.Paths, hash, u.PathOK); p != nil {
		return p
	}
	for i := range g.Entries {
		e := &g.Entries[i]
		if e == want {
			continue
		}
		if p := healthyOf(e.Paths, hash, u.PathOK); p != nil {
			return p
		}
	}
	return nil
}

// healthyOf returns the hash-selected healthy path, or nil when paths is
// empty (a failure scenario can empty an entry) or every path is unhealthy.
// A nil ok accepts every path.
func healthyOf(paths []*core.Path, hash uint64, ok func(*core.Path) bool) *core.Path {
	n := len(paths)
	if n == 0 {
		return nil
	}
	start := int(hash % uint64(n))
	for i := 0; i < n; i++ {
		p := paths[(start+i)%n]
		if ok == nil || ok(p) {
			return p
		}
	}
	return nil
}

// StampBucket tags a data packet with the flow's current aging bucket
// (host-side DSCP stamping, §6.1).
func (u *UCMP) StampBucket(p *netsim.Packet) {
	if p.Flow != nil && p.Type == netsim.Data {
		p.Bucket = u.Ager.Bucket(p.Flow.BytesSent)
	}
}
