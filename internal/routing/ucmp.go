package routing

import (
	"ucmp/internal/core"
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
)

// UCMP is the uniform-cost multi-path router: offline-computed UCMP groups,
// online path assignment by flow-aging bucket (§5), source routing (§6.2).
type UCMP struct {
	PS   *core.PathSet
	Ager *core.FlowAger

	// Relax enables latency relaxation (§4.3): flows at least RelaxCutoff
	// bytes ride the RotorLB machinery over the full relaxed 2-hop path
	// set, as the paper does for the data mining workload (§7.3, which
	// notes the htsim RotorLB implementation requires the full VLB path
	// set).
	Relax       bool
	RelaxCutoff int64

	// ForceBucket, when >= 0, overrides the packet's bucket tag for every
	// route decision. It ablates the uniform-cost policy: 0 pins all
	// traffic to the globally minimum-latency path (pure latency
	// minimization), a large value pins it to the fewest-hop path (pure
	// bandwidth minimization, typically the direct circuit).
	ForceBucket int

	// Health, when non-nil, is the time-indexed fault view (§5.3 online
	// recovery): when the wanted path is unhealthy at plan time, assignment
	// prefers a healthy same-length group path, then a shorter one, then a
	// longer one, then a 2-hop backup — the order failure.Classify scores
	// offline — and stamps the outcome on Packet.RecoveredVia.
	Health HealthView

	// Backlog and CongestionThreshold enable the §10 congestion-aware
	// extension (see congestion.go): when the primary candidate's
	// first-hop calendar queue holds at least CongestionThreshold data
	// packets, assignment steers to the least-congested path within one
	// bucket of the minimum uniform cost. Backlog is usually
	// netsim.Network.CalendarBacklog.
	Backlog             func(tor int, hop netsim.PlannedHop) int
	CongestionThreshold int
}

// NewUCMP builds the router from an offline PathSet.
func NewUCMP(ps *core.PathSet) *UCMP {
	return &UCMP{PS: ps, Ager: core.NewFlowAger(ps), RelaxCutoff: FlowCutoff15MB, ForceBucket: -1}
}

// Name implements netsim.Router.
func (u *UCMP) Name() string { return "ucmp" }

// RotorFlow implements netsim.Router: with latency relaxation on, long
// flows use the hop-by-hop machinery over 2-hop paths.
func (u *UCMP) RotorFlow(f *netsim.Flow) bool {
	return u.Relax && f.Size >= u.RelaxCutoff
}

// PlanRoute implements netsim.Router. The packet's bucket tag picks the
// entry of the UCMP group for (tor, dst, slice); parallel paths tie-break
// on the flow hash. Control packets carry bucket 0 and ride the
// minimum-latency path.
func (u *UCMP) PlanRoute(p *netsim.Packet, tor int, now sim.Time, fromAbs int64, buf []netsim.PlannedHop) ([]netsim.PlannedHop, bool) {
	dst := p.DstToR
	if dst == tor {
		return nil, false
	}
	ts := u.PS.F.CyclicSlice(fromAbs)
	g := u.PS.Group(ts, tor, dst)
	var hash uint64
	if p.Flow != nil {
		hash = p.Flow.Hash
	}
	bucket := p.Bucket
	if u.ForceBucket >= 0 {
		bucket = u.ForceBucket
	}
	var ok func(*core.Path) bool
	if u.Health != nil {
		h := u.Health
		ok = func(p *core.Path) bool { return h.PathOK(now, p) }
	}
	path := u.pickUncongested(g, bucket, tor, fromAbs, hash, ok)
	class := netsim.RecoveryPrimary
	if path == nil {
		path, class = u.pickHealthy(g, bucket, hash, ok)
	}
	if path == nil {
		// Group exhausted (a failure, or an empty group): fall back to a
		// healthy backup 2-hop path avoiding failed ToRs (§5.3).
		var exclude func(int) bool
		if u.Health != nil {
			h := u.Health
			exclude = func(t int) bool { return !h.TorOK(now, t) }
		}
		backups := u.PS.BackupPaths(ts, tor, dst, 4, exclude)
		path = healthyOf(backups, hash, ok)
		if path == nil {
			p.RecoveredVia = netsim.RecoveryNone
			return nil, false
		}
		class = netsim.RecoveryBackup
	}
	p.RecoveredVia = class
	return hopsFromPath(path, fromAbs, buf), true
}

// pickHealthy resolves the bucket to a path and its §5.3 recovery class. A
// nil health predicate short-circuits to the wanted path (the steady-state
// hot path). Under faults the preference order mirrors failure.classifyOne:
// the wanted entry's parallel paths (same hop count), then other healthy
// entries — same length first, then shorter, then longer, each resolved in
// group entry order.
func (u *UCMP) pickHealthy(g *core.Group, bucket int, hash uint64, ok func(*core.Path) bool) (*core.Path, netsim.RecoveryClass) {
	want := u.Ager.EntryForBucket(g, bucket)
	p := healthyOf(want.Paths, hash, ok)
	if ok == nil {
		return p, netsim.RecoveryPrimary
	}
	if p != nil {
		if p == healthyOf(want.Paths, hash, nil) {
			return p, netsim.RecoveryPrimary
		}
		// A sibling parallel path of the wanted entry: same hop count.
		return p, netsim.RecoverySameLength
	}
	var shorter, longer *core.Path
	for i := range g.Entries {
		e := &g.Entries[i]
		if e == want {
			continue
		}
		switch {
		case e.HopCount == want.HopCount:
			if p := healthyOf(e.Paths, hash, ok); p != nil {
				return p, netsim.RecoverySameLength
			}
		case e.HopCount < want.HopCount:
			if shorter == nil {
				shorter = healthyOf(e.Paths, hash, ok)
			}
		default:
			if longer == nil {
				longer = healthyOf(e.Paths, hash, ok)
			}
		}
	}
	if shorter != nil {
		return shorter, netsim.RecoveryShorter
	}
	if longer != nil {
		return longer, netsim.RecoveryLonger
	}
	return nil, netsim.RecoveryNone
}

// healthyOf returns the hash-selected healthy path, or nil when paths is
// empty (a failure scenario can empty an entry) or every path is unhealthy.
// A nil ok accepts every path.
func healthyOf(paths []*core.Path, hash uint64, ok func(*core.Path) bool) *core.Path {
	n := len(paths)
	if n == 0 {
		return nil
	}
	start := int(hash % uint64(n))
	for i := 0; i < n; i++ {
		p := paths[(start+i)%n]
		if ok == nil || ok(p) {
			return p
		}
	}
	return nil
}

// StampBucket tags a data packet with the flow's current aging bucket
// (host-side DSCP stamping, §6.1).
func (u *UCMP) StampBucket(p *netsim.Packet) {
	if p.Flow != nil && p.Type == netsim.Data {
		p.Bucket = u.Ager.Bucket(p.Flow.BytesSent)
	}
}
