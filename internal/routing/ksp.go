package routing

import (
	"runtime"
	"sync"

	"ucmp/internal/netsim"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
)

// KSP is k-shortest-path routing applied to RDCNs (§2.2): per time slice it
// precomputes the top-k loopless shortest paths on that slice's topology
// instance; a packet dispatched in slice t follows the slice-t path, and if
// the network reconfigures mid-flight the netsim recirculation replans it
// from the current ToR on the new instance (Fig 1e).
type KSP struct {
	F *topo.Fabric
	K int

	// paths[slice][src*N+dst] holds up to K node sequences.
	paths [][][][]int
}

// NewKSP precomputes the per-slice path tables (parallelized across
// slices; Yen's algorithm per pair).
func NewKSP(f *topo.Fabric, k int) *KSP {
	r := &KSP{F: f, K: k}
	r.paths = buildKSPTables(f.Sched, k, func(sl int) *topo.Graph { return f.Sched.SliceGraph(sl) })
	return r
}

// buildKSPTables computes k-shortest-path tables for every slice of the
// schedule over graphs produced by mk (full or Opera-stable instances).
func buildKSPTables(s *topo.Schedule, k int, mk func(slice int) *topo.Graph) [][][][]int {
	tables := make([][][][]int, s.S)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for sl := 0; sl < s.S; sl++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(sl int) {
			defer wg.Done()
			defer func() { <-sem }()
			g := mk(sl)
			row := make([][][]int, s.N*s.N)
			for src := 0; src < s.N; src++ {
				for dst := 0; dst < s.N; dst++ {
					if src == dst {
						continue
					}
					row[src*s.N+dst] = g.KShortestPaths(src, dst, k)
				}
			}
			tables[sl] = row
		}(sl)
	}
	wg.Wait()
	return tables
}

// Name implements netsim.Router.
func (r *KSP) Name() string {
	if r.K == 1 {
		return "ksp-1"
	}
	return "ksp-k"
}

// RotorFlow implements netsim.Router: KSP never uses the rotor machinery.
func (r *KSP) RotorFlow(f *netsim.Flow) bool { return false }

// PlanRoute implements netsim.Router: the flow hash picks one of the k
// paths of the current slice instance; all hops are planned within that
// slice (continuous-path assumption).
func (r *KSP) PlanRoute(p *netsim.Packet, tor int, now sim.Time, fromAbs int64, buf []netsim.PlannedHop) ([]netsim.PlannedHop, bool) {
	dst := p.DstToR
	if dst == tor {
		return nil, false
	}
	c := r.F.CyclicSlice(fromAbs)
	cands := r.paths[c][tor*r.F.Sched.N+dst]
	if len(cands) == 0 {
		return nil, false
	}
	var hash uint64
	if p.Flow != nil {
		hash = p.Flow.Hash
	}
	nodes := cands[hash%uint64(len(cands))]
	return sameSliceHops(nodes, fromAbs, buf), true
}

// Paths exposes the precomputed path table for analytics (Fig 5b).
func (r *KSP) Paths(slice, src, dst int) [][]int {
	return r.paths[slice][src*r.F.Sched.N+dst]
}
