package routing

import (
	"testing"

	"ucmp/internal/core"
)

// TestUCMPBackupFallback exercises the §5.3 backup path: when failure
// filtering rejects every group path, PlanRoute must fall back to a 2-hop
// backup whose intermediate honors TorOK.
func TestUCMPBackupFallback(t *testing.T) {
	f := fabric(t)
	ps := core.BuildPathSet(f, 0.5)
	u := NewUCMP(ps)
	// Reject every precomputed group path by identity: the group is
	// effectively exhausted for all (src, dst), forcing the backup
	// machinery (backup paths are built fresh, so they stay healthy).
	grouped := make(map[*core.Path]bool)
	for ts := 0; ts < f.Sched.S; ts++ {
		for src := 0; src < f.NumToRs; src++ {
			for dst := 0; dst < f.NumToRs; dst++ {
				if src == dst {
					continue
				}
				g := ps.Group(ts, src, dst)
				for _, e := range g.Entries {
					for _, p := range e.Paths {
						grouped[p] = true
					}
				}
			}
		}
	}
	badToR := 3
	u.Health = StaticHealth{
		Path: func(p *core.Path) bool { return !grouped[p] },
		Tor:  func(tor int) bool { return tor != badToR },
	}

	routed := 0
	for src := 0; src < f.NumToRs; src++ {
		for dst := 0; dst < f.NumToRs; dst++ {
			if src == dst || src == badToR || dst == badToR {
				continue
			}
			for fromAbs := int64(0); fromAbs < 3; fromAbs++ {
				p := dataPacket(f, src, dst, 1<<20)
				hops, ok := u.PlanRoute(p, src, 0, fromAbs, nil)
				if !ok {
					continue
				}
				routed++
				validRoute(t, f, src, dst, fromAbs, hops)
				if len(hops) != 2 {
					t.Fatalf("backup path %d->%d has %d hops, want 2", src, dst, len(hops))
				}
				if mid := hops[0].To; mid == badToR {
					t.Fatalf("backup %d->%d relays via excluded ToR %d", src, dst, badToR)
				}
			}
		}
	}
	if routed == 0 {
		t.Fatal("no backup routes planned at all")
	}
}

// TestUCMPNoBackupReturnsFalse pins the clean-failure contract: with every
// group path unhealthy and every intermediate ToR excluded, PlanRoute must
// report failure rather than panic or emit a bogus route.
func TestUCMPNoBackupReturnsFalse(t *testing.T) {
	f := fabric(t)
	u := NewUCMP(core.BuildPathSet(f, 0.5))
	u.Health = StaticHealth{
		Path: func(p *core.Path) bool { return false },
		Tor:  func(tor int) bool { return false },
	}
	for src := 0; src < f.NumToRs; src++ {
		for dst := 0; dst < f.NumToRs; dst++ {
			if src == dst {
				continue
			}
			p := dataPacket(f, src, dst, 1<<20)
			if hops, ok := u.PlanRoute(p, src, 0, 0, nil); ok {
				t.Fatalf("%d->%d planned %v with all paths and relays excluded", src, dst, hops)
			}
		}
	}
}

// TestHealthyOfEmpty pins the div-by-zero guard: an entry emptied by
// failure filtering must yield nil, not a modulo panic.
func TestHealthyOfEmpty(t *testing.T) {
	if p := healthyOf(nil, 12345, nil); p != nil {
		t.Fatalf("healthyOf(nil) = %v, want nil", p)
	}
	if p := healthyOf([]*core.Path{}, 7, func(*core.Path) bool { return true }); p != nil {
		t.Fatalf("healthyOf(empty) = %v, want nil", p)
	}
}

// TestHealthyOfNilOK pins that a nil health predicate accepts the
// hash-selected path, matching the pre-guard fast path.
func TestHealthyOfNilOK(t *testing.T) {
	paths := []*core.Path{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}}
	for hash := uint64(0); hash < 9; hash++ {
		want := paths[hash%3]
		if got := healthyOf(paths, hash, nil); got != want {
			t.Fatalf("healthyOf(hash=%d) = %v, want %v", hash, got, want)
		}
	}
}
