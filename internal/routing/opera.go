package routing

import (
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
)

// Opera implements the Opera baseline's topology-routing co-design (§2.2):
// it expects the staggered Opera schedule (one circuit switch reconfiguring
// per slice boundary), routes flows under the 15 MB cutoff with KSP
// computed on the *stable* subgraph (excluding the circuits about to
// reconfigure, so no packet is in flight across a reconfiguration), and
// sends flows over the cutoff through VLB / RotorLB.
type Opera struct {
	F      *topo.Fabric
	K      int
	Cutoff int64

	stable [][][][]int
}

// NewOpera precomputes the stable-subgraph KSP tables.
func NewOpera(f *topo.Fabric, k int) *Opera {
	o := &Opera{F: f, K: k, Cutoff: FlowCutoff15MB}
	o.stable = buildKSPTables(f.Sched, k, func(sl int) *topo.Graph { return f.Sched.StableSliceGraph(sl) })
	return o
}

// Name implements netsim.Router.
func (o *Opera) Name() string {
	if o.K == 1 {
		return "opera-1"
	}
	return "opera-k"
}

// RotorFlow implements netsim.Router: flows >= 15 MB ride VLB (§2.2).
func (o *Opera) RotorFlow(f *netsim.Flow) bool { return f.Size >= o.Cutoff }

// PlanRoute implements netsim.Router for the short-flow (KSP) side.
func (o *Opera) PlanRoute(p *netsim.Packet, tor int, now sim.Time, fromAbs int64, buf []netsim.PlannedHop) ([]netsim.PlannedHop, bool) {
	dst := p.DstToR
	if dst == tor {
		return nil, false
	}
	var hash uint64
	if p.Flow != nil {
		hash = p.Flow.Hash
	}
	// The stable subgraph can transiently disconnect a pair (it always
	// does when d is very small); Opera then waits for a later topology —
	// unusable circuits are exactly the §2.2 "circuit waste". Search up to
	// a full cycle of starting slices.
	for wait := 0; wait < o.F.Sched.S; wait++ {
		abs := fromAbs + int64(wait)
		c := o.F.CyclicSlice(abs)
		cands := o.stable[c][tor*o.F.Sched.N+dst]
		if len(cands) == 0 {
			continue
		}
		return sameSliceHops(cands[hash%uint64(len(cands))], abs, buf), true
	}
	return nil, false
}

// Paths exposes the stable-graph path table for analytics (Fig 5b).
func (o *Opera) Paths(slice, src, dst int) [][]int {
	return o.stable[slice][src*o.F.Sched.N+dst]
}
