// Package routing implements the routing strategies compared in the paper
// (§2.2, §7): UCMP (the contribution), VLB, KSP (k=1 and k=5), and Opera's
// topology-routing co-design. All satisfy netsim.Router; the pure path
// logic is also exposed for offline path analytics (Fig 5).
package routing

import (
	"ucmp/internal/core"
	"ucmp/internal/netsim"
	"ucmp/internal/topo"
)

// hopsFromPath converts a core.Path (slices relative to its group's start)
// into netsim planned hops anchored at absolute slice fromAbs, appending
// into buf (the packet's recycled Route storage — zero-length, reusable
// capacity) so steady-state planning allocates nothing.
func hopsFromPath(p *core.Path, fromAbs int64, buf []netsim.PlannedHop) []netsim.PlannedHop {
	offset := fromAbs - p.StartSlice
	for _, h := range p.Hops {
		buf = append(buf, netsim.PlannedHop{To: h.To, AbsSlice: h.Slice + offset})
	}
	return buf
}

// emitHops is hopsFromPath generalized to canonical-group paths: ToR labels
// are rotated by +rot mod n at emission (rot = 0 reproduces hopsFromPath on
// concrete paths; rot = source ToR relabels a rotation-symmetric canonical
// path, see core.PathSet.CanonGroup). Like hopsFromPath it appends into buf
// and allocates nothing once buf's capacity has warmed up.
func emitHops(p *core.Path, rot, n int, fromAbs int64, buf []netsim.PlannedHop) []netsim.PlannedHop {
	offset := fromAbs - p.StartSlice
	for _, h := range p.Hops {
		to := h.To + rot
		if to >= n {
			to -= n
		}
		buf = append(buf, netsim.PlannedHop{To: to, AbsSlice: h.Slice + offset})
	}
	return buf
}

// sameSliceHops plans a node path (KSP/Opera style continuous path) with
// every hop in the given absolute slice, appending into buf.
func sameSliceHops(nodes []int, abs int64, buf []netsim.PlannedHop) []netsim.PlannedHop {
	for _, v := range nodes[1:] {
		buf = append(buf, netsim.PlannedHop{To: v, AbsSlice: abs})
	}
	return buf
}

// FlowCutoff15MB is Opera's hard flow-size cutoff (§2.2).
const FlowCutoff15MB = 15 << 20

var _ = topo.Config{} // the subpackages below all build on topo
