// Package routing implements the routing strategies compared in the paper
// (§2.2, §7): UCMP (the contribution), VLB, KSP (k=1 and k=5), and Opera's
// topology-routing co-design. All satisfy netsim.Router; the pure path
// logic is also exposed for offline path analytics (Fig 5).
package routing

import (
	"ucmp/internal/core"
	"ucmp/internal/netsim"
	"ucmp/internal/topo"
)

// hopsFromPath converts a core.Path (slices relative to its group's start)
// into netsim planned hops anchored at absolute slice fromAbs.
func hopsFromPath(p *core.Path, fromAbs int64) []netsim.PlannedHop {
	offset := fromAbs - p.StartSlice
	hops := make([]netsim.PlannedHop, len(p.Hops))
	for i, h := range p.Hops {
		hops[i] = netsim.PlannedHop{To: h.To, AbsSlice: h.Slice + offset}
	}
	return hops
}

// sameSliceHops plans a node path (KSP/Opera style continuous path) with
// every hop in the given absolute slice.
func sameSliceHops(nodes []int, abs int64) []netsim.PlannedHop {
	hops := make([]netsim.PlannedHop, 0, len(nodes)-1)
	for _, v := range nodes[1:] {
		hops = append(hops, netsim.PlannedHop{To: v, AbsSlice: abs})
	}
	return hops
}

// FlowCutoff15MB is Opera's hard flow-size cutoff (§2.2).
const FlowCutoff15MB = 15 << 20

var _ = topo.Config{} // the subpackages below all build on topo
