package routing

import (
	"bytes"
	"testing"

	"ucmp/internal/core"
	"ucmp/internal/topo"
)

// TestPackedCodecRoundTrip: AppendPacked → DecodePacked reproduces the table
// byte-for-byte (via the deterministic Bytes serialization) under both the
// aliasing and the copying decoder, and the decoded table still validates
// and plans like the original.
func TestPackedCodecRoundTrip(t *testing.T) {
	for _, kind := range []string{"round-robin", "opera", "random-circulant"} {
		f := kindDiffFabric(t, kind, 16, 4)
		ps := core.BuildPathSet(f, 0.5)
		ager := core.NewFlowAger(ps)
		for _, tor := range []int{0, 5} {
			orig := CompileTable(ps, ager, tor)
			blob := orig.AppendPacked(nil)
			for _, noAlias := range []bool{false, true} {
				dec, err := DecodePacked(blob, DecodeOptions{NoAlias: noAlias})
				if err != nil {
					t.Fatalf("%s tor %d noAlias=%v: %v", kind, tor, noAlias, err)
				}
				if !bytes.Equal(dec.Bytes(), orig.Bytes()) {
					t.Fatalf("%s tor %d noAlias=%v: decoded table differs", kind, tor, noAlias)
				}
				if err := dec.Validate(ps); err != nil {
					t.Fatalf("%s tor %d noAlias=%v: decoded table invalid: %v", kind, tor, noAlias, err)
				}
			}
		}
	}
}

// TestPackedCodecRoundTripNonAligned: a blob starting at a non-8-aligned
// offset (as when appended after a misaligned prefix) cannot alias, but the
// copying fallback must still round-trip. Decoding at the right offset keeps
// the record-level padding honest.
func TestPackedCodecRoundTripNonAligned(t *testing.T) {
	f := symDiffFabric(t, 8, 4)
	ps := core.BuildPathSet(f, 0.5)
	orig := CompileTable(ps, core.NewFlowAger(ps), 0)
	// Pad-to-8 inside the blob is relative to the blob start, so any slice
	// of a larger buffer decodes; only aliasing needs the 8-byte alignment.
	buf := orig.AppendPacked(make([]byte, 3, 3+1024))
	dec, err := DecodePacked(buf[3:], DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Bytes(), orig.Bytes()) {
		t.Fatal("decoded table differs")
	}
}

// TestPackedCodecRejectsCorruption: structural corruption — truncation,
// inflated counts, out-of-range spans — errors and never panics.
func TestPackedCodecRejectsCorruption(t *testing.T) {
	f := symDiffFabric(t, 8, 4)
	ps := core.BuildPathSet(f, 0.5)
	blob := CompileTable(ps, core.NewFlowAger(ps), 0).AppendPacked(nil)
	if _, err := DecodePacked(nil, DecodeOptions{}); err == nil {
		t.Fatal("empty blob must error")
	}
	for _, cut := range []int{1, 4, len(blob) / 2, len(blob) - 1} {
		if _, err := DecodePacked(blob[:len(blob)-cut], DecodeOptions{}); err == nil {
			t.Fatalf("blob truncated by %d must error", cut)
		}
	}
	// Error-or-decode for every single-bit flip; the property under test is
	// that no flip panics or yields an out-of-range table (DecodePacked's
	// structural checks are what Lookup's unchecked indexing relies on).
	for i := 0; i < len(blob); i++ {
		for _, mask := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), blob...)
			mut[i] ^= mask
			if dec, err := DecodePacked(mut, DecodeOptions{}); err == nil {
				_ = dec.Bytes()
			}
		}
	}
}

// FuzzDecodePacked: arbitrary bytes never panic the decoder, and any blob it
// accepts re-encodes to a blob that decodes to the same table (the decoder's
// own fixed point).
func FuzzDecodePacked(f *testing.F) {
	cfg := topo.Scaled()
	cfg.NumToRs, cfg.Uplinks = 8, 4
	fab := topo.MustFabric(cfg, "round-robin", 1)
	ps := core.BuildPathSet(fab, 0.5)
	seed := CompileTable(ps, core.NewFlowAger(ps), 0).AppendPacked(nil)
	f.Add(seed)
	f.Add(seed[:40])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, blob []byte) {
		dec, err := DecodePacked(blob, DecodeOptions{NoAlias: true})
		if err != nil {
			return
		}
		re := dec.AppendPacked(nil)
		dec2, err := DecodePacked(re, DecodeOptions{NoAlias: true})
		if err != nil {
			t.Fatalf("re-encoded blob failed to decode: %v", err)
		}
		if !bytes.Equal(dec.Bytes(), dec2.Bytes()) {
			t.Fatal("decode(encode(decode(blob))) != decode(blob)")
		}
	})
}
