package routing

import (
	"sync"

	"ucmp/internal/core"
)

// DefaultTableCap bounds how many per-ToR compiled tables a TableSet keeps
// materialized at once. Compiling one table touches every (t_start, dst,
// bucket) of its source ToR, so an unbounded cache at 1024 ToRs would
// rebuild most of the N² spine the symmetric PathSet just eliminated; a
// small bound keeps memory proportional to the ToRs actually originating
// traffic in the window.
const DefaultTableCap = 16

// TableSet materializes per-ToR CompiledTables lazily, on first lookup from
// each source ToR, evicting the oldest table beyond the cap. Safe for
// concurrent use; a given ToR's table is compiled at most once while cached
// and is immutable afterwards.
type TableSet struct {
	PS   *core.PathSet
	Ager *core.FlowAger

	mu     sync.Mutex
	cap    int
	tables map[int]*CompiledTable
	order  []int // insertion order, for FIFO eviction
}

// NewTableSet builds an empty set; capTables <= 0 picks DefaultTableCap.
func NewTableSet(ps *core.PathSet, ager *core.FlowAger, capTables int) *TableSet {
	if capTables <= 0 {
		capTables = DefaultTableCap
	}
	return &TableSet{
		PS:     ps,
		Ager:   ager,
		cap:    capTables,
		tables: make(map[int]*CompiledTable, capTables),
	}
}

// For returns tor's compiled table, materializing it on first use.
func (s *TableSet) For(tor int) *CompiledTable {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tables[tor]; ok {
		return t
	}
	t := CompileTable(s.PS, s.Ager, tor)
	if len(s.order) >= s.cap {
		delete(s.tables, s.order[0])
		s.order = s.order[1:]
	}
	s.tables[tor] = t
	s.order = append(s.order, tor)
	return t
}

// Cached returns how many tables are currently materialized.
func (s *TableSet) Cached() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tables)
}

// CachedToRs returns the materialized source ToRs oldest-first — the order
// FIFO eviction will discard them in. For tests and diagnostics.
func (s *TableSet) CachedToRs() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.order...)
}
