package routing

import (
	"sync"

	"ucmp/internal/core"
)

// DefaultTableCap bounds how many per-ToR compiled tables a TableSet keeps
// materialized at once. Compiling one table touches every (t_start, dst,
// bucket) of its source ToR, so an unbounded cache at 1024 ToRs would
// rebuild most of the N² spine the symmetric PathSet just eliminated; a
// small bound keeps memory proportional to the ToRs actually originating
// traffic in the window.
const DefaultTableCap = 16

// TableSet materializes per-ToR CompiledTables lazily, on first lookup from
// each source ToR, evicting the least-recently-used table beyond the cap.
// LRU rather than FIFO because planning traffic is bursty per source: a ToR
// originating a long flow hits its table on every planned packet, and
// evicting it just because it was compiled early forces the costliest
// recompile exactly for the hottest ToRs. Safe for concurrent use; a given
// ToR's table is compiled at most once while cached and is immutable
// afterwards.
type TableSet struct {
	PS   *core.PathSet
	Ager *core.FlowAger

	mu     sync.Mutex
	cap    int
	tables map[int]*CompiledTable
	order  []int // recency order, least recent first; back = most recent
}

// NewTableSet builds an empty set; capTables <= 0 picks DefaultTableCap.
func NewTableSet(ps *core.PathSet, ager *core.FlowAger, capTables int) *TableSet {
	if capTables <= 0 {
		capTables = DefaultTableCap
	}
	return &TableSet{
		PS:     ps,
		Ager:   ager,
		cap:    capTables,
		tables: make(map[int]*CompiledTable, capTables),
	}
}

// For returns tor's compiled table, materializing it on first use. A hit
// refreshes the table's recency, so the entry evicted at capacity is always
// the least recently returned one.
func (s *TableSet) For(tor int) *CompiledTable {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tables[tor]; ok {
		s.touch(tor)
		return t
	}
	t := CompileTable(s.PS, s.Ager, tor)
	s.insert(tor, t)
	return t
}

// Preload seeds tor's table with an already-compiled one — e.g. ToR 0's
// table loaded from a fabric cache file — counting as a use for recency.
// A table already cached for tor is kept (it is immutable and equivalent).
func (s *TableSet) Preload(tor int, t *CompiledTable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[tor]; ok {
		s.touch(tor)
		return
	}
	s.insert(tor, t)
}

// touch moves tor to the most-recent end of order. Caller holds mu.
func (s *TableSet) touch(tor int) {
	for i, o := range s.order {
		if o == tor {
			copy(s.order[i:], s.order[i+1:])
			s.order[len(s.order)-1] = tor
			return
		}
	}
}

// insert adds a table, evicting the least recently used beyond the cap.
// Caller holds mu.
func (s *TableSet) insert(tor int, t *CompiledTable) {
	if len(s.order) >= s.cap {
		delete(s.tables, s.order[0])
		s.order = s.order[1:]
	}
	s.tables[tor] = t
	s.order = append(s.order, tor)
}

// Cached returns how many tables are currently materialized.
func (s *TableSet) Cached() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tables)
}

// CachedToRs returns the materialized source ToRs least-recently-used
// first — the order LRU eviction will discard them in. For tests and
// diagnostics.
func (s *TableSet) CachedToRs() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.order...)
}
