package routing

import (
	"ucmp/internal/core"
	"ucmp/internal/netsim"
)

// Congestion-aware path assignment is the §10 "UCMP extension": like
// CONGA/DRILL/Hula adjust flows across ECMP paths on congestion signals,
// UCMP can penalize congested paths during online assignment. The
// extension keeps the offline groups untouched; at plan time it compares
// the backlog of the calendar queue each candidate's first hop would join
// and steers the packet to the least-congested candidate whose uniform
// cost stays within one bucket of the minimum.
//
// Enable it by setting UCMP.Backlog (usually Network.CalendarBacklog) and
// a positive CongestionThreshold.

// congestionCandidates gathers the paths eligible under the one-bucket
// slack rule: the target entry's parallels plus its hull neighbors.
func (u *UCMP) congestionCandidates(g *core.Group, bucket int) []*core.Path {
	want := u.Ager.EntryForBucket(g, bucket)
	cands := append([]*core.Path(nil), want.Paths...)
	for _, delta := range []int{-1, 1} {
		b := bucket + delta
		if b < 0 {
			continue
		}
		e := u.Ager.EntryForBucket(g, b)
		if e != want {
			cands = append(cands, e.Paths...)
		}
	}
	return cands
}

// pickUncongested returns the candidate with the smallest first-hop
// backlog, preferring the primary choice on ties. It only engages when the
// primary's backlog exceeds the threshold; otherwise it returns nil and
// the caller keeps the normal minimum-uniform-cost assignment.
func (u *UCMP) pickUncongested(g *core.Group, bucket, tor int, fromAbs int64, hash uint64, ok func(*core.Path) bool) *core.Path {
	if u.Backlog == nil || u.CongestionThreshold <= 0 {
		return nil
	}
	primary := u.Ager.PathForBucket(g, bucket, hash)
	offset := fromAbs - int64(g.StartSlice)
	backlogOf := func(p *core.Path) int {
		h := p.Hops[0]
		return u.Backlog(tor, netsim.PlannedHop{To: h.To, AbsSlice: h.Slice + offset})
	}
	if backlogOf(primary) < u.CongestionThreshold {
		return nil
	}
	best := primary
	bestBacklog := backlogOf(primary)
	for _, p := range u.congestionCandidates(g, bucket) {
		if ok != nil && !ok(p) {
			continue
		}
		if b := backlogOf(p); b < bestBacklog {
			best, bestBacklog = p, b
		}
	}
	return best
}
