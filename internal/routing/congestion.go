package routing

import (
	"ucmp/internal/core"
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
)

// Congestion-aware path assignment is the §10 "UCMP extension": like
// CONGA/DRILL/Hula adjust flows across ECMP paths on congestion signals,
// UCMP can penalize congested paths during online assignment. The
// extension keeps the offline groups untouched; at plan time it compares
// the backlog of the calendar queue each candidate's first hop would join
// and steers the packet to the least-congested candidate whose uniform
// cost stays within one bucket of the minimum.
//
// The backlog signal is the slice-boundary snapshot every ToR publishes at
// the top of its boundary event (netsim.Network.CongestionBacklog): plans
// made during slice s see the backlogs as of the boundary of slice s−1 —
// stale by at most one slice, but a deterministic function of boundary
// state, which is what lets congestion-aware runs ride the sharded engine
// bit-identically to serial (DESIGN.md §14). During the first slice the
// board is empty and steering never engages.
//
// Enable it by setting UCMP.Backlog (usually Network.CongestionBacklog,
// with the network's board enabled) and a positive CongestionThreshold.

// congScratch is the working set of one engaged congestion pick: the
// candidate buffer and the per-(peer, slice) backlog memo. Scratches are
// pooled on the UCMP router rather than stored as plain fields because
// PlanRoute runs concurrently across lookahead domains in sharded runs;
// the pool keeps the engaged pick allocation-free once warm, the same
// discipline as the packet Route buffers PlanRoute appends into.
type congScratch struct {
	cands []*core.Path
	memo  []backlogMemo
}

// backlogMemo caches one board read within a single pick: parallel paths
// and hull-neighbor entries frequently share a first hop, and the memo
// keeps each distinct (peer, absolute slice) to one Backlog call.
type backlogMemo struct {
	abs     int64
	to      int
	backlog int
}

// backlogOf resolves the board backlog of a candidate's first hop,
// relabeling canonical-group hops by rot (see UCMP.PlanRoute) and
// memoizing per (peer, slice) within the pick.
func (s *congScratch) backlogOf(u *UCMP, tor, rot, n int, now sim.Time, fromAbs int64, p *core.Path) int {
	h := p.Hops[0]
	to := h.To + rot
	if to >= n {
		to -= n
	}
	abs := h.Slice + fromAbs - p.StartSlice
	for i := range s.memo {
		if m := &s.memo[i]; m.to == to && m.abs == abs {
			return m.backlog
		}
	}
	b := u.Backlog(tor, now, netsim.PlannedHop{To: to, AbsSlice: abs})
	s.memo = append(s.memo, backlogMemo{abs: abs, to: to, backlog: b})
	return b
}

// congestionCandidates gathers the paths eligible under the one-bucket
// slack rule — the target entry's parallels plus its hull neighbors —
// appending into buf (the pooled scratch) so an engaged pick allocates
// nothing once the buffer has grown to the group's high-water mark.
func (u *UCMP) congestionCandidates(g *core.Group, bucket int, buf []*core.Path) []*core.Path {
	want := u.Ager.EntryForBucket(g, bucket)
	buf = append(buf, want.Paths...)
	for _, delta := range [2]int{-1, 1} {
		b := bucket + delta
		if b < 0 {
			continue
		}
		e := u.Ager.EntryForBucket(g, b)
		if e != want {
			buf = append(buf, e.Paths...)
		}
	}
	return buf
}

// pickUncongested returns the candidate with the smallest first-hop board
// backlog, preferring the primary choice on ties, plus whether the pick
// steered off the primary. It only engages when the primary's backlog
// meets the threshold; otherwise it returns nil and the caller keeps the
// normal minimum-uniform-cost assignment. g may be a canonical group (rot
// = source ToR) or a concrete one (rot = 0); n is the ToR count.
func (u *UCMP) pickUncongested(g *core.Group, bucket, tor, rot, n int, now sim.Time, fromAbs int64, hash uint64, ok func(*core.Path) bool) (*core.Path, bool) {
	if u.Backlog == nil || u.CongestionThreshold <= 0 {
		return nil, false
	}
	if len(g.Entries) == 0 || len(u.Ager.EntryForBucket(g, bucket).Paths) == 0 {
		return nil, false
	}
	primary := u.Ager.PathForBucket(g, bucket, hash)
	s := u.congPool.Get().(*congScratch)
	s.memo = s.memo[:0]
	bestBacklog := s.backlogOf(u, tor, rot, n, now, fromAbs, primary)
	if bestBacklog < u.CongestionThreshold {
		u.congPool.Put(s)
		return nil, false
	}
	best := primary
	s.cands = u.congestionCandidates(g, bucket, s.cands[:0])
	for _, p := range s.cands {
		if ok != nil && !ok(p) {
			continue
		}
		if b := s.backlogOf(u, tor, rot, n, now, fromAbs, p); b < bestBacklog {
			best, bestBacklog = p, b
		}
	}
	u.congPool.Put(s)
	return best, best != primary
}
