package routing

import (
	"encoding/binary"
	"fmt"

	"ucmp/internal/byteview"
)

// Packed-table codec (DESIGN.md §15). Blob layout, all little-endian, each
// array padded to an 8-byte offset relative to the blob start:
//
//	u32 tor, u32 n, u32 s, u32 nb
//	u32 nCells (= n*s+1), pad;  nCells  × i32 cellStart
//	u32 nEntries,         pad;  nEntries × {u16 bucketStart, u16 actN, i32 actStart}
//	u32 nActs,            pad;  nActs    × {i32 hopStart, u16 hopN, u16 zero}
//	u32 nHops,            pad;  nHops    × {i32 to, i32 rel}
//
// The four records are the in-memory layouts of cellStart, packedEntry,
// actSpan and PackedHop, so on a little-endian host with the blob itself
// 8-byte aligned (the fabric file aligns its sections) DecodePacked aliases
// all four arrays straight into the blob — the hot lookup arrays are then
// served from the mmap'd page cache with zero copies. Big-endian hosts,
// misaligned blobs, or DecodeOptions{NoAlias: true} decode by copying.

// DecodeOptions tunes DecodePacked.
type DecodeOptions struct {
	// NoAlias forces the copying decode even where aliasing would be legal —
	// the differential path for testing, and an escape hatch for callers
	// that must outlive the blob's backing memory.
	NoAlias bool
}

// AppendPacked appends the table's codec blob to out and returns it. The
// caller must place the blob at an 8-byte-aligned offset if the result is
// to be aliased at decode time.
func (t *CompiledTable) AppendPacked(out []byte) []byte {
	base := len(out)
	u32 := func(v int) { out = binary.LittleEndian.AppendUint32(out, uint32(v)) }
	pad := func() {
		for (len(out)-base)%8 != 0 {
			out = append(out, 0)
		}
	}
	u32(t.Tor)
	u32(t.n)
	u32(t.s)
	u32(t.nb)
	u32(len(t.cellStart))
	pad()
	for _, c := range t.cellStart {
		u32(int(c))
	}
	u32(len(t.entries))
	pad()
	for _, e := range t.entries {
		out = binary.LittleEndian.AppendUint16(out, e.bucketStart)
		out = binary.LittleEndian.AppendUint16(out, e.actN)
		u32(int(e.actStart))
	}
	u32(len(t.acts))
	pad()
	for _, a := range t.acts {
		u32(int(a.hopStart))
		out = binary.LittleEndian.AppendUint16(out, a.hopN)
		out = binary.LittleEndian.AppendUint16(out, 0) // struct padding, pinned zero
	}
	u32(len(t.hops))
	pad()
	for _, h := range t.hops {
		u32(int(h.To))
		u32(int(h.Rel))
	}
	return out
}

// blobReader walks a codec blob with bounds checking: every read that would
// pass the end returns an error instead of panicking, so corrupted or
// truncated files surface as errors and never as partial tables.
type blobReader struct {
	b   []byte
	off int
}

func (r *blobReader) u32(what string) (int, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("routing: truncated table blob at %s (offset %d)", what, r.off)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return int(int32(v)), nil
}

func (r *blobReader) pad8() {
	for r.off%8 != 0 {
		r.off++
	}
}

// array reserves n records of recSize bytes and returns their region.
func (r *blobReader) array(what string, n, recSize int) ([]byte, error) {
	if n < 0 || n > (len(r.b)-r.off)/recSize {
		return nil, fmt.Errorf("routing: table blob claims %d %s beyond its %d bytes", n, what, len(r.b))
	}
	reg := r.b[r.off : r.off+n*recSize]
	r.off += n * recSize
	return reg, nil
}

// DecodePacked rebuilds a CompiledTable from a codec blob, aliasing the
// arrays into the blob when possible (see package comment). It fully
// bounds-checks the structure — counts against the blob length, spans
// against their arrays, cell starts against the entry count — so untrusted
// input yields an error, never a panic or an out-of-range table.
func DecodePacked(blob []byte, opt DecodeOptions) (*CompiledTable, error) {
	r := &blobReader{b: blob}
	t := &CompiledTable{}
	var err error
	if t.Tor, err = r.u32("tor"); err != nil {
		return nil, err
	}
	if t.n, err = r.u32("n"); err != nil {
		return nil, err
	}
	if t.s, err = r.u32("s"); err != nil {
		return nil, err
	}
	if t.nb, err = r.u32("nb"); err != nil {
		return nil, err
	}
	if t.n <= 0 || t.s <= 0 || t.nb <= 0 || t.Tor < 0 || t.Tor >= t.n ||
		t.n > 1<<20 || t.s > 1<<20 {
		return nil, fmt.Errorf("routing: implausible table dimensions tor=%d n=%d s=%d nb=%d", t.Tor, t.n, t.s, t.nb)
	}
	nCells, err := r.u32("nCells")
	if err != nil {
		return nil, err
	}
	if nCells != t.n*t.s+1 {
		return nil, fmt.Errorf("routing: cell count %d, want %d", nCells, t.n*t.s+1)
	}
	r.pad8()
	cellRegion, err := r.array("cells", nCells, 4)
	if err != nil {
		return nil, err
	}
	nEntries, err := r.u32("nEntries")
	if err != nil {
		return nil, err
	}
	r.pad8()
	entryRegion, err := r.array("entries", nEntries, 8)
	if err != nil {
		return nil, err
	}
	nActs, err := r.u32("nActs")
	if err != nil {
		return nil, err
	}
	r.pad8()
	actRegion, err := r.array("acts", nActs, 8)
	if err != nil {
		return nil, err
	}
	nHops, err := r.u32("nHops")
	if err != nil {
		return nil, err
	}
	r.pad8()
	hopRegion, err := r.array("hops", nHops, 8)
	if err != nil {
		return nil, err
	}

	if opt.NoAlias {
		t.cellStart, t.entries, t.acts, t.hops = nil, nil, nil, nil
	} else {
		t.cellStart, _ = byteview.Of[int32](cellRegion, nCells)
		t.entries, _ = byteview.Of[packedEntry](entryRegion, nEntries)
		t.acts, _ = byteview.Of[actSpan](actRegion, nActs)
		t.hops, _ = byteview.Of[PackedHop](hopRegion, nHops)
	}
	if t.cellStart == nil {
		t.cellStart = make([]int32, nCells)
		for i := range t.cellStart {
			t.cellStart[i] = int32(binary.LittleEndian.Uint32(cellRegion[4*i:]))
		}
	}
	if t.entries == nil {
		t.entries = make([]packedEntry, nEntries)
		for i := range t.entries {
			rec := entryRegion[8*i:]
			t.entries[i] = packedEntry{
				bucketStart: binary.LittleEndian.Uint16(rec),
				actN:        binary.LittleEndian.Uint16(rec[2:]),
				actStart:    int32(binary.LittleEndian.Uint32(rec[4:])),
			}
		}
	}
	if t.acts == nil {
		t.acts = make([]actSpan, nActs)
		for i := range t.acts {
			rec := actRegion[8*i:]
			t.acts[i] = actSpan{
				hopStart: int32(binary.LittleEndian.Uint32(rec)),
				hopN:     binary.LittleEndian.Uint16(rec[4:]),
			}
		}
	}
	if t.hops == nil {
		t.hops = make([]PackedHop, nHops)
		for i := range t.hops {
			rec := hopRegion[8*i:]
			t.hops[i] = PackedHop{
				To:  int32(binary.LittleEndian.Uint32(rec)),
				Rel: int32(binary.LittleEndian.Uint32(rec[4:])),
			}
		}
	}

	// Structural bounds: every index a lookup can follow stays in range.
	prev := int32(0)
	for i, c := range t.cellStart {
		if c < prev || int(c) > nEntries {
			return nil, fmt.Errorf("routing: cellStart[%d]=%d out of order or range", i, c)
		}
		prev = c
	}
	if int(t.cellStart[nCells-1]) != nEntries {
		return nil, fmt.Errorf("routing: cellStart does not cover all %d entries", nEntries)
	}
	for i, e := range t.entries {
		if e.actN == 0 || int(e.actStart) < 0 || int(e.actStart)+int(e.actN) > nActs {
			return nil, fmt.Errorf("routing: entry %d action span [%d,+%d) out of range", i, e.actStart, e.actN)
		}
		if int(e.bucketStart) >= t.nb {
			return nil, fmt.Errorf("routing: entry %d bucketStart %d >= %d buckets", i, e.bucketStart, t.nb)
		}
	}
	for i, a := range t.acts {
		if a.hopN == 0 || int(a.hopStart) < 0 || int(a.hopStart)+int(a.hopN) > nHops {
			return nil, fmt.Errorf("routing: act %d hop span [%d,+%d) out of range", i, a.hopStart, a.hopN)
		}
	}
	for i, h := range t.hops {
		if int(h.To) < 0 || int(h.To) >= t.n || h.Rel < 0 {
			return nil, fmt.Errorf("routing: hop %d (%d,%d) out of range", i, h.To, h.Rel)
		}
	}
	return t, nil
}
