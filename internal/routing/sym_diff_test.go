package routing

import (
	"bytes"
	"testing"

	"ucmp/internal/core"
	"ucmp/internal/topo"
)

func symDiffFabric(t *testing.T, n, d int) *topo.Fabric {
	return kindDiffFabric(t, "round-robin", n, d)
}

func kindDiffFabric(t *testing.T, kind string, n, d int) *topo.Fabric {
	t.Helper()
	cfg := topo.Scaled()
	cfg.NumToRs, cfg.Uplinks = n, d
	f := topo.MustFabric(cfg, kind, 1)
	if !f.Sched.Rotation() {
		t.Fatalf("%s(%d,%d) not rotation-symmetric", kind, n, d)
	}
	return f
}

// TestCompiledTableBytesSymmetricVsBrute: for every ToR of the small
// symmetric fabrics — across every circulant schedule family — the table
// compiled from the canonical O(S·N) build serializes byte-identically to
// the one compiled from the brute-force O(S·N²) build, across both bucket
// configurations (parallel-path cap 1, which narrows entries to single
// paths, and the default cap 4).
func TestCompiledTableBytesSymmetricVsBrute(t *testing.T) {
	for _, kind := range []string{"round-robin", "opera", "random-circulant"} {
		for _, nd := range [][2]int{{8, 4}, {16, 4}} {
			for _, mp := range []int{1, 4} {
				f := kindDiffFabric(t, kind, nd[0], nd[1])
				sym := core.BuildPathSetOpts(f, 0.5, core.BuildOptions{MaxParallel: mp})
				brute := core.BuildPathSetOpts(f, 0.5, core.BuildOptions{MaxParallel: mp, NoSymmetry: true})
				if !sym.Symmetric() || brute.Symmetric() {
					t.Fatalf("%s(%d,%d): build modes not as requested", kind, nd[0], nd[1])
				}
				agerS, agerB := core.NewFlowAger(sym), core.NewFlowAger(brute)
				if agerS.NumBuckets() != agerB.NumBuckets() {
					t.Fatalf("%s(%d,%d) mp=%d: bucket counts differ: %d vs %d",
						kind, nd[0], nd[1], mp, agerS.NumBuckets(), agerB.NumBuckets())
				}
				for tor := 0; tor < f.NumToRs; tor++ {
					ts := CompileTable(sym, agerS, tor)
					tb := CompileTable(brute, agerB, tor)
					if err := ts.Validate(sym); err != nil {
						t.Fatalf("symmetric table tor %d: %v", tor, err)
					}
					if err := tb.Validate(brute); err != nil {
						t.Fatalf("brute table tor %d: %v", tor, err)
					}
					if !bytes.Equal(ts.Bytes(), tb.Bytes()) {
						t.Fatalf("%s(%d,%d) mp=%d tor %d: compiled tables differ "+
							"(sym rows=%d hops=%d, brute rows=%d hops=%d)",
							kind, nd[0], nd[1], mp, tor, ts.NumRows(), len(ts.hops), tb.NumRows(), len(tb.hops))
					}
				}
			}
		}
	}
}

// TestSymmetricFastPathMatchesGroupPath: on a symmetric fabric the
// canonical-group fast path, the materializing group path (NoSymmetry
// reference), and the compiled-table path all plan identical hops for every
// (tor, dst, tstart, bucket).
func TestSymmetricFastPathMatchesGroupPath(t *testing.T) {
	f := symDiffFabric(t, 16, 4)
	sym := core.BuildPathSet(f, 0.5)
	brute := core.BuildPathSetOpts(f, 0.5, core.BuildOptions{NoSymmetry: true})
	uSym := NewUCMP(sym)
	uTbl := NewUCMP(sym).EnableTables(0)
	uRef := NewUCMP(brute)
	for tor := 0; tor < f.NumToRs; tor += 3 {
		for dst := 0; dst < f.NumToRs; dst++ {
			if dst == tor {
				continue
			}
			for ts := 0; ts < f.Sched.S; ts++ {
				for b := 0; b < uRef.Ager.NumBuckets(); b++ {
					plan := func(u *UCMP) []int64 {
						p := dataPacket(f, tor, dst, 1<<20)
						p.Bucket = b
						hops, ok := u.PlanRoute(p, tor, 0, int64(ts), nil)
						if !ok {
							t.Fatalf("plan failed %d->%d ts=%d b=%d", tor, dst, ts, b)
						}
						out := make([]int64, 0, 2*len(hops))
						for _, h := range hops {
							out = append(out, int64(h.To), h.AbsSlice)
						}
						return out
					}
					want := plan(uRef)
					for name, u := range map[string]*UCMP{"fast": uSym, "table": uTbl} {
						got := plan(u)
						if len(got) != len(want) {
							t.Fatalf("%s path differs %d->%d ts=%d b=%d: %v vs %v", name, tor, dst, ts, b, got, want)
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("%s path differs %d->%d ts=%d b=%d: %v vs %v", name, tor, dst, ts, b, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestTableSetEviction pins the cache bound: the cache never exceeds its
// cap and re-requesting an evicted ToR recompiles an equivalent table.
func TestTableSetEviction(t *testing.T) {
	f := symDiffFabric(t, 16, 4)
	ps := core.BuildPathSet(f, 0.5)
	set := NewTableSet(ps, core.NewFlowAger(ps), 4)
	first := set.For(0).Bytes()
	for tor := 0; tor < 10; tor++ {
		set.For(tor)
		if c := set.Cached(); c > 4 {
			t.Fatalf("cache holds %d tables, cap 4", c)
		}
	}
	if set.Cached() != 4 {
		t.Fatalf("cache holds %d tables after warm-up, want 4", set.Cached())
	}
	again := set.For(0)
	if !bytes.Equal(again.Bytes(), first) {
		t.Fatal("recompiled table differs from original")
	}
}

// TestTableSetEvictionOrder pins the discipline precisely: the cache is
// LRU — a hit refreshes a table's position, Preload counts as a use, and
// the table evicted at capacity is always the least recently returned one.
func TestTableSetEvictionOrder(t *testing.T) {
	f := symDiffFabric(t, 8, 4)
	ps := core.BuildPathSet(f, 0.5)
	set := NewTableSet(ps, core.NewFlowAger(ps), 2)
	order := func(want ...int) {
		t.Helper()
		got := set.CachedToRs()
		if len(got) != len(want) {
			t.Fatalf("cached %v, want %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cached %v, want %v", got, want)
			}
		}
	}
	set.For(0)
	set.For(1)
	order(0, 1)
	set.For(0) // hit: 0 becomes most recent
	order(1, 0)
	set.For(2) // evicts 1, now the least recently used, not oldest-insert 0
	order(0, 2)
	set.For(1) // recompiles 1, evicting 0
	order(2, 1)

	// Preload seeds a foreign table and counts as a use; preloading a cached
	// ToR only refreshes recency.
	set.Preload(5, CompileTable(ps, set.Ager, 5))
	order(1, 5)
	set.Preload(1, nil) // already cached: kept, touched, nil ignored
	order(5, 1)
	if set.For(1) == nil {
		t.Fatal("preload of a cached ToR must not replace its table")
	}
}
