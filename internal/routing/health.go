package routing

import (
	"ucmp/internal/core"
	"ucmp/internal/sim"
)

// HealthView is the time-indexed fault view the UCMP router consults for
// online §5.3 recovery. Implementations must be pure functions of their
// arguments: route planning runs inside lookahead domains, and serial and
// sharded runs must see identical answers at identical local times.
// failure.Schedule (a compiled failure.Timeline) implements it; tests and
// static scenarios can use StaticHealth.
type HealthView interface {
	// PathOK reports whether every hop of a UCMP path is usable at `now`.
	PathOK(now sim.Time, p *core.Path) bool
	// TorOK reports whether a ToR is up at `now` (filters backup-path
	// intermediates).
	TorOK(now sim.Time, tor int) bool
}

// StaticHealth adapts time-independent predicates to HealthView, for fault
// states that never change during a run. Nil predicates report healthy.
type StaticHealth struct {
	Path func(p *core.Path) bool
	Tor  func(tor int) bool
}

// PathOK implements HealthView.
func (h StaticHealth) PathOK(_ sim.Time, p *core.Path) bool {
	return h.Path == nil || h.Path(p)
}

// TorOK implements HealthView.
func (h StaticHealth) TorOK(_ sim.Time, tor int) bool {
	return h.Tor == nil || h.Tor(tor)
}
