package routing

import (
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
)

// VLB is valiant load balancing / two-phase routing (§2.2): phase 1 sprays
// packets to random currently-connected intermediate ToRs; phase 2 forwards
// them on the next direct circuit to the destination. Its data traffic runs
// on the RotorLB hop-by-hop machinery (its native transport, §7.1); the
// source-route planner below serves control packets and non-rotor use.
type VLB struct {
	F *topo.Fabric
	// Failed, when non-nil, skips failed intermediates.
	Failed func(tor int) bool
}

// NewVLB builds the router.
func NewVLB(f *topo.Fabric) *VLB { return &VLB{F: f} }

// Name implements netsim.Router.
func (v *VLB) Name() string { return "vlb" }

// RotorFlow implements netsim.Router: all VLB data traffic is rotor-class.
func (v *VLB) RotorFlow(f *netsim.Flow) bool { return true }

// PlanRoute implements netsim.Router: direct circuit if available in the
// starting slice, otherwise a 2-hop path via a hash-chosen neighbor of the
// current slice graph with phase 2 waiting for the next direct circuit.
func (v *VLB) PlanRoute(p *netsim.Packet, tor int, now sim.Time, fromAbs int64, buf []netsim.PlannedHop) ([]netsim.PlannedHop, bool) {
	dst := p.DstToR
	if dst == tor {
		return nil, false
	}
	c := v.F.CyclicSlice(fromAbs)
	if v.F.Sched.SwitchFor(c, tor, dst) >= 0 && !v.failed(dst) {
		return append(buf, netsim.PlannedHop{To: dst, AbsSlice: fromAbs}), true
	}
	var hash uint64
	if p.Flow != nil {
		hash = p.Flow.Hash + uint64(p.Seq)
	}
	nbs := v.F.Sched.Neighbors(nil, c, tor)
	start := int(hash % uint64(len(nbs)))
	for i := 0; i < len(nbs); i++ {
		mid := nbs[(start+i)%len(nbs)]
		if mid == dst || v.failed(mid) {
			continue
		}
		e2 := v.F.Sched.NextDirect(mid, dst, fromAbs)
		return append(buf,
			netsim.PlannedHop{To: mid, AbsSlice: fromAbs},
			netsim.PlannedHop{To: dst, AbsSlice: e2},
		), true
	}
	// All neighbors failed or equal to dst: wait for the direct circuit.
	e := v.F.Sched.NextDirect(tor, dst, fromAbs)
	return append(buf, netsim.PlannedHop{To: dst, AbsSlice: e}), true
}

func (v *VLB) failed(tor int) bool { return v.Failed != nil && v.Failed(tor) }
