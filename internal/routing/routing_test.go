package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ucmp/internal/core"
	"ucmp/internal/failure"
	"ucmp/internal/netsim"
	"ucmp/internal/topo"
)

func fabric(t testing.TB) *topo.Fabric {
	t.Helper()
	return topo.MustFabric(topo.Scaled(), "round-robin", 1)
}

func dataPacket(f *topo.Fabric, srcToR, dstToR int, size int64) *netsim.Packet {
	fl := netsim.NewFlow(1, srcToR*f.HostsPerToR, dstToR*f.HostsPerToR, size, 0)
	return &netsim.Packet{
		Flow: fl, Type: netsim.Data, PayloadLen: 1436, WireLen: 1500,
		SrcToR: srcToR, DstToR: dstToR,
	}
}

// validRoute checks a planned route is schedulable: every hop's circuit
// exists in its planned slice, slices don't go backwards, and the route
// ends at the destination.
func validRoute(t *testing.T, f *topo.Fabric, srcToR, dstToR int, fromAbs int64, hops []netsim.PlannedHop) {
	t.Helper()
	if len(hops) == 0 {
		t.Fatal("empty route")
	}
	cur := srcToR
	prev := fromAbs
	for i, h := range hops {
		if h.AbsSlice < prev {
			t.Fatalf("hop %d slice %d before %d", i, h.AbsSlice, prev)
		}
		c := f.CyclicSlice(h.AbsSlice)
		if f.Sched.SwitchFor(c, cur, h.To) < 0 {
			t.Fatalf("hop %d: no circuit %d->%d in slice %d", i, cur, h.To, c)
		}
		cur = h.To
		prev = h.AbsSlice
	}
	if cur != dstToR {
		t.Fatalf("route ends at %d, want %d", cur, dstToR)
	}
}

func TestUCMPPlansValidRoutes(t *testing.T) {
	f := fabric(t)
	u := NewUCMP(core.BuildPathSet(f, 0.5))
	prop := func(rs, rd uint8, rf uint16, bucket uint8) bool {
		src, dst := int(rs)%f.NumToRs, int(rd)%f.NumToRs
		if src == dst {
			return true
		}
		fromAbs := int64(rf % 100)
		p := dataPacket(f, src, dst, 1<<20)
		p.Bucket = int(bucket) % u.Ager.NumBuckets()
		hops, ok := u.PlanRoute(p, src, 0, fromAbs, nil)
		if !ok {
			return false
		}
		validRoute(t, f, src, dst, fromAbs, hops)
		return true
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUCMPBucketControlsHops(t *testing.T) {
	f := fabric(t)
	u := NewUCMP(core.BuildPathSet(f, 0.5))
	// Find a pair where the group has multiple hop counts.
	for src := 0; src < f.NumToRs; src++ {
		for dst := 0; dst < f.NumToRs; dst++ {
			if src == dst {
				continue
			}
			g := u.PS.Group(0, src, dst)
			if len(g.Entries) < 2 {
				continue
			}
			pNew := dataPacket(f, src, dst, 0)
			pNew.Bucket = 0
			newHops, _ := u.PlanRoute(pNew, src, 0, 0, nil)
			pOld := dataPacket(f, src, dst, 0)
			pOld.Bucket = u.Ager.NumBuckets() - 1
			oldHops, _ := u.PlanRoute(pOld, src, 0, 0, nil)
			if len(newHops) < len(oldHops) {
				t.Fatalf("bucket 0 (new flow) got %d hops < aged bucket's %d", len(newHops), len(oldHops))
			}
			return
		}
	}
	t.Fatal("no multi-entry group found")
}

func TestUCMPSameName(t *testing.T) {
	f := fabric(t)
	u := NewUCMP(core.BuildPathSet(f, 0.5))
	if u.Name() != "ucmp" {
		t.Fatal("name")
	}
	if u.RotorFlow(netsim.NewFlow(1, 0, 17, 1<<30, 0)) {
		t.Fatal("rotor without relax")
	}
}

func TestUCMPFailureFallback(t *testing.T) {
	f := fabric(t)
	ps := core.BuildPathSet(f, 0.5)
	u := NewUCMP(ps)
	sc := failure.NewScenario(f)
	// Fail a specific intermediate-heavy ToR.
	sc.FailToRs(0.2, rand.New(rand.NewSource(3)))
	u.Health = StaticHealth{Path: sc.PathOK, Tor: sc.TorOK}
	healthy := 0
	for src := 0; src < f.NumToRs; src++ {
		if !sc.TorOK(src) {
			continue
		}
		for dst := 0; dst < f.NumToRs; dst++ {
			if src == dst || !sc.TorOK(dst) {
				continue
			}
			p := dataPacket(f, src, dst, 1<<20)
			hops, ok := u.PlanRoute(p, src, 0, 0, nil)
			if !ok {
				continue // allowed: unrecoverable pairs exist at high failure rates
			}
			healthy++
			// The plan must avoid failed intermediate ToRs.
			for _, h := range hops[:len(hops)-1] {
				if !sc.TorOK(h.To) {
					t.Fatalf("route %v uses failed ToR %d", hops, h.To)
				}
			}
		}
	}
	if healthy == 0 {
		t.Fatal("no healthy routes found at all")
	}
}

func TestVLBRoutes(t *testing.T) {
	f := fabric(t)
	v := NewVLB(f)
	if !v.RotorFlow(netsim.NewFlow(9, 0, 17, 100, 0)) {
		t.Fatal("VLB data must be rotor-class")
	}
	direct, twoHop := 0, 0
	for src := 0; src < f.NumToRs; src++ {
		for dst := 0; dst < f.NumToRs; dst++ {
			if src == dst {
				continue
			}
			for abs := int64(0); abs < int64(f.Sched.S); abs++ {
				p := dataPacket(f, src, dst, 1000)
				hops, ok := v.PlanRoute(p, src, 0, abs, nil)
				if !ok {
					t.Fatalf("VLB failed to plan %d->%d", src, dst)
				}
				validRoute(t, f, src, dst, abs, hops)
				switch len(hops) {
				case 1:
					direct++
				case 2:
					twoHop++
				default:
					t.Fatalf("VLB planned %d hops", len(hops))
				}
			}
		}
	}
	if direct == 0 || twoHop == 0 {
		t.Fatalf("VLB path mix degenerate: direct=%d twoHop=%d", direct, twoHop)
	}
}

func TestVLBPhase1Immediate(t *testing.T) {
	f := fabric(t)
	v := NewVLB(f)
	for src := 0; src < f.NumToRs; src++ {
		for dst := 0; dst < f.NumToRs; dst++ {
			if src == dst {
				continue
			}
			p := dataPacket(f, src, dst, 1000)
			hops, _ := v.PlanRoute(p, src, 0, 7, nil)
			// Phase 1 forwards immediately: the first hop is in the
			// starting slice.
			if hops[0].AbsSlice != 7 {
				t.Fatalf("VLB phase 1 not immediate: %v", hops)
			}
		}
	}
}

func TestKSPRoutesAndDiversity(t *testing.T) {
	f := fabric(t)
	k5 := NewKSP(f, 5)
	if k5.Name() != "ksp-k" || NewKSP(f, 1).Name() != "ksp-1" {
		t.Fatal("names")
	}
	if k5.RotorFlow(netsim.NewFlow(1, 0, 17, 1<<30, 0)) {
		t.Fatal("KSP never rotor")
	}
	for src := 0; src < 4; src++ {
		for dst := 8; dst < 12; dst++ {
			paths := k5.Paths(0, src, dst)
			if len(paths) == 0 {
				t.Fatalf("no KSP paths %d->%d", src, dst)
			}
			p := dataPacket(f, src, dst, 1000)
			hops, ok := k5.PlanRoute(p, src, 0, 0, nil)
			if !ok {
				t.Fatal("KSP plan failed")
			}
			validRoute(t, f, src, dst, 0, hops)
			// All hops planned in the starting slice (continuous path).
			for _, h := range hops {
				if h.AbsSlice != 0 {
					t.Fatalf("KSP hop outside starting slice: %v", hops)
				}
			}
		}
	}
}

func TestOperaRoutesOnStableGraph(t *testing.T) {
	f := topo.MustFabric(topo.Scaled(), "opera", 1)
	o := NewOpera(f, 1)
	if o.Name() != "opera-1" || NewOpera(f, 5).Name() != "opera-k" {
		t.Fatal("names")
	}
	if !o.RotorFlow(netsim.NewFlow(1, 0, 17, FlowCutoff15MB, 0)) {
		t.Fatal(">=15MB must be rotor-class")
	}
	if o.RotorFlow(netsim.NewFlow(2, 0, 17, FlowCutoff15MB-1, 0)) {
		t.Fatal("<15MB must not be rotor-class")
	}
	for src := 0; src < f.NumToRs; src++ {
		for dst := 0; dst < f.NumToRs; dst++ {
			if src == dst {
				continue
			}
			p := dataPacket(f, src, dst, 1000)
			hops, ok := o.PlanRoute(p, src, 0, 3, nil)
			if !ok {
				continue // stable subgraph may disconnect a pair transiently
			}
			// Every hop must use a circuit that is NOT about to reconfigure
			// at the next boundary (the Opera invariant).
			abs := hops[0].AbsSlice
			c := f.CyclicSlice(abs)
			next := f.CyclicSlice(abs + 1)
			cur := src
			for _, h := range hops {
				sw := f.Sched.SwitchFor(c, cur, h.To)
				if sw < 0 {
					t.Fatalf("opera hop %d->%d missing circuit in slice %d", cur, h.To, c)
				}
				if f.Sched.ReconfiguresAt(next, sw) {
					// The chosen switch reconfigures at the next boundary:
					// only acceptable if another stable switch also realizes
					// this pair in slice c.
					stable := false
					for sw2 := 0; sw2 < f.Sched.D; sw2++ {
						if sw2 != sw && f.Sched.PeerOf(c, cur, sw2) == h.To && !f.Sched.ReconfiguresAt(next, sw2) {
							stable = true
							break
						}
					}
					if !stable {
						t.Fatalf("opera hop %d->%d rides a reconfiguring circuit", cur, h.To)
					}
				}
				cur = h.To
			}
		}
	}
}

func TestHopsFromPathOffsets(t *testing.T) {
	p := &core.Path{Src: 0, Dst: 5, StartSlice: 2, Hops: []core.Hop{{To: 3, Slice: 2}, {To: 5, Slice: 4}}}
	hops := hopsFromPath(p, 12, nil) // fromAbs 12, cyclic start 2 -> offset 10
	if hops[0].AbsSlice != 12 || hops[1].AbsSlice != 14 {
		t.Fatalf("offsets wrong: %v", hops)
	}
	if hops[0].To != 3 || hops[1].To != 5 {
		t.Fatalf("targets wrong: %v", hops)
	}
}
