package routing

import (
	"encoding/binary"
	"fmt"

	"ucmp/internal/core"
	"ucmp/internal/netsim"
)

// CompiledTable is the per-ToR UCMP source-routing lookup table of §6.2
// (Fig 4): one row per (destination ToR, starting slice) x bucket range,
// whose action data is the SSRR hop list of the selected path (or several
// tied parallel paths for ECMP-style selection by flow hash). It is the
// exact artifact that would be installed into switch SRAM; Table 2's entry
// counts are its size.
//
// The layout is flat and arena-packed rather than map-plus-pointer-spine:
// the (dst, tstart) key space is a dense grid of cells, each cell owning a
// contiguous run of rows in `entries` (located by `cellStart` prefix sums,
// so lookup is O(1) computed indexing plus a short in-cell scan over bucket
// ranges). Adjacent buckets resolving to the same group entry collapse into
// one row carrying the range's first bucket — the hardware folds the bucket
// range into the match key. Action lists and hop lists are content-deduped
// spans into two shared backing arrays: tied paths that recur across rows
// (and, on rotation-symmetric fabrics, across starting slices) are stored
// once. Hop slices are kept t_start-relative, which is both what makes the
// cross-slice dedup fire and what makes symmetric and brute-force builds
// serialize byte-identically.
type CompiledTable struct {
	Tor int

	n, s, nb int // key-space dimensions: ToRs, starting slices, buckets

	cellStart []int32       // len n*s+1; rows of cell c are entries[cellStart[c]:cellStart[c+1]]
	entries   []packedEntry // match rows, grouped by cell, ascending bucketStart
	acts      []actSpan     // action lists: entries reference contiguous runs
	hops      []PackedHop   // shared hop backing array
}

// packedEntry is one match row: the first bucket of its (run-length
// collapsed) bucket range and its action list, a span into acts. Field
// order is part of the fabric-file format (codec.go): 8 bytes, no implicit
// padding, matching the file record {u16 bucketStart, u16 actN, i32
// actStart} so mmap'd regions alias directly on little-endian hosts.
type packedEntry struct {
	bucketStart uint16
	actN        uint16
	actStart    int32
}

// actSpan is one action: a hop list, a span into hops. Also a file record:
// {i32 hopStart, u16 hopN, u16 zero padding} — Go places the same 2 trailing
// padding bytes, which the codec writes as explicit zeros.
type actSpan struct {
	hopStart int32
	hopN     uint16
}

// PackedHop is one SSRR hop with its slice kept relative to the row's
// starting slice; the absolute slice is Rel + fromAbs at lookup time.
type PackedHop struct {
	To  int32
	Rel int32
}

// CompileTable materializes the lookup table for one source ToR.
func CompileTable(ps *core.PathSet, ager *core.FlowAger, tor int) *CompiledTable {
	sched := ps.F.Sched
	n, s, nb := sched.N, sched.S, ager.NumBuckets()
	t := &CompiledTable{Tor: tor, n: n, s: s, nb: nb}
	t.cellStart = make([]int32, n*s+1)
	hopIdx := make(map[string]actSpan) // hop-list content -> span into hops
	actIdx := make(map[string]int32)   // action-list content -> start into acts
	var key []byte
	for dst := 0; dst < n; dst++ {
		for ts := 0; ts < s; ts++ {
			t.cellStart[dst*s+ts] = int32(len(t.entries))
			if dst == tor {
				continue
			}
			g := ps.Group(ts, tor, dst)
			prev := -1
			for b := 0; b < nb; b++ {
				cur := entryIndexOf(g, ager.EntryForBucket(g, b))
				if cur == prev {
					// Same action as the previous bucket: the previous row's
					// bucket range extends to cover b.
					continue
				}
				prev = cur
				e := &g.Entries[cur]
				// Intern each path's hop list, then the action list itself.
				spans := make([]actSpan, len(e.Paths))
				key = key[:0]
				for i, p := range e.Paths {
					spans[i] = t.internHops(hopIdx, p, ts)
					key = binary.AppendVarint(key, int64(spans[i].hopStart))
					key = binary.AppendVarint(key, int64(spans[i].hopN))
				}
				actStart, ok := actIdx[string(key)]
				if !ok {
					actStart = int32(len(t.acts))
					t.acts = append(t.acts, spans...)
					actIdx[string(key)] = actStart
				}
				t.entries = append(t.entries, packedEntry{
					bucketStart: uint16(b),
					actStart:    actStart,
					actN:        uint16(len(spans)),
				})
			}
		}
	}
	t.cellStart[n*s] = int32(len(t.entries))
	return t
}

// internHops returns the deduped span for one path's hop list, with slices
// rebased to the row's starting slice.
func (t *CompiledTable) internHops(hopIdx map[string]actSpan, p *core.Path, ts int) actSpan {
	key := make([]byte, 8*len(p.Hops))
	for i, h := range p.Hops {
		binary.LittleEndian.PutUint32(key[8*i:], uint32(h.To))
		binary.LittleEndian.PutUint32(key[8*i+4:], uint32(h.Slice-int64(ts)))
	}
	if sp, ok := hopIdx[string(key)]; ok {
		return sp
	}
	sp := actSpan{hopStart: int32(len(t.hops)), hopN: uint16(len(p.Hops))}
	for _, h := range p.Hops {
		t.hops = append(t.hops, PackedHop{To: int32(h.To), Rel: int32(h.Slice - int64(ts))})
	}
	hopIdx[string(key)] = sp
	return sp
}

func entryIndexOf(g *core.Group, e *core.Entry) int {
	for i := range g.Entries {
		if &g.Entries[i] == e {
			return i
		}
	}
	return -1
}

// Lookup resolves a match key to its hop list, selecting among tied actions
// by hash, and anchors the slices at fromAbs.
func (t *CompiledTable) Lookup(dst, tstart, bucket int, hash uint64, fromAbs int64) ([]netsim.PlannedHop, bool) {
	return t.LookupInto(dst, tstart, bucket, hash, fromAbs, nil)
}

// LookupInto is Lookup appending into buf (a recycled zero-length backing
// slice), so steady-state planning allocates nothing. Keys outside the
// installed (dst, tstart, bucket) domain miss.
func (t *CompiledTable) LookupInto(dst, tstart, bucket int, hash uint64, fromAbs int64, buf []netsim.PlannedHop) ([]netsim.PlannedHop, bool) {
	if dst < 0 || dst >= t.n || tstart < 0 || tstart >= t.s || bucket < 0 || bucket >= t.nb {
		return nil, false
	}
	cell := dst*t.s + tstart
	lo, hi := t.cellStart[cell], t.cellStart[cell+1]
	if lo == hi {
		return nil, false // own-ToR cell: no rows installed
	}
	// The row whose bucket range covers `bucket` is the last one starting at
	// or below it; rows per cell are few (<= #hull entries), so a backward
	// scan beats a binary search.
	i := hi - 1
	for i > lo && int(t.entries[i].bucketStart) > bucket {
		i--
	}
	e := t.entries[i]
	a := t.acts[uint64(e.actStart)+hash%uint64(e.actN)]
	for _, h := range t.hops[a.hopStart : int(a.hopStart)+int(a.hopN)] {
		buf = append(buf, netsim.PlannedHop{To: int(h.To), AbsSlice: int64(h.Rel) + fromAbs})
	}
	return buf, true
}

// NumRows returns the distinct match rows (the Table 2 "#Entries/ToR"
// quantity for this ToR).
func (t *CompiledTable) NumRows() int { return len(t.entries) }

// NumNaiveRows returns the row count before bucket-range collapse: one row
// per (dst, tstart, bucket) key — the layout a switch without range
// matching would install.
func (t *CompiledTable) NumNaiveRows() int { return (t.n - 1) * t.s * t.nb }

// FootprintBytes returns the packed table's SRAM footprint: match rows,
// action spans, and the deduped hop array, at this layout's field widths.
func (t *CompiledTable) FootprintBytes() int {
	const rowBytes = 8  // bucketStart + actStart + actN
	const spanBytes = 6 // hopStart + hopN
	const hopBytes = 8  // To + Rel
	return len(t.cellStart)*4 + len(t.entries)*rowBytes + len(t.acts)*spanBytes + len(t.hops)*hopBytes
}

// Bytes serializes the table deterministically (little-endian, fixed field
// order). Two tables with identical routing behavior and layout — e.g. one
// compiled from a rotation-symmetric build and one from the brute-force
// build of the same fabric — produce identical bytes; the differential
// tests compare exactly this.
func (t *CompiledTable) Bytes() []byte {
	out := make([]byte, 0, 16+4*len(t.cellStart)+8*len(t.entries)+8*len(t.acts)+8*len(t.hops))
	u32 := func(v int) {
		out = binary.LittleEndian.AppendUint32(out, uint32(v))
	}
	u32(t.Tor)
	u32(t.n)
	u32(t.s)
	u32(t.nb)
	for _, c := range t.cellStart {
		u32(int(c))
	}
	u32(len(t.entries))
	for _, e := range t.entries {
		u32(int(e.bucketStart))
		u32(int(e.actStart))
		u32(int(e.actN))
	}
	u32(len(t.acts))
	for _, a := range t.acts {
		u32(int(a.hopStart))
		u32(int(a.hopN))
	}
	u32(len(t.hops))
	for _, h := range t.hops {
		u32(int(h.To))
		u32(int(h.Rel))
	}
	return out
}

// Validate checks every installed cell has rows covering bucket 0 onward in
// ascending order and that every action is a non-empty hop list reaching the
// cell's destination.
func (t *CompiledTable) Validate(ps *core.PathSet) error {
	for dst := 0; dst < t.n; dst++ {
		for ts := 0; ts < t.s; ts++ {
			cell := dst*t.s + ts
			lo, hi := t.cellStart[cell], t.cellStart[cell+1]
			if dst == t.Tor {
				if lo != hi {
					return fmt.Errorf("routing: rows installed for own ToR %d", t.Tor)
				}
				continue
			}
			if lo == hi {
				return fmt.Errorf("routing: no rows for dst %d ts %d", dst, ts)
			}
			prev := -1
			for i := lo; i < hi; i++ {
				e := t.entries[i]
				if int(e.bucketStart) <= prev {
					return fmt.Errorf("routing: bucket ranges out of order for dst %d ts %d", dst, ts)
				}
				prev = int(e.bucketStart)
				if e.actN == 0 {
					return fmt.Errorf("routing: empty action list for dst %d ts %d", dst, ts)
				}
				for _, a := range t.acts[e.actStart : int(e.actStart)+int(e.actN)] {
					if a.hopN == 0 || int(t.hops[int(a.hopStart)+int(a.hopN)-1].To) != dst {
						return fmt.Errorf("routing: action does not reach dst %d", dst)
					}
				}
			}
			if t.entries[lo].bucketStart != 0 {
				return fmt.Errorf("routing: first row for dst %d ts %d does not cover bucket 0", dst, ts)
			}
		}
	}
	return nil
}
