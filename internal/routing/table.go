package routing

import (
	"fmt"

	"ucmp/internal/core"
	"ucmp/internal/netsim"
)

// CompiledTable is the per-ToR UCMP source-routing lookup table of §6.2
// (Fig 4): one entry per (destination ToR, starting slice, bucket), whose
// action data is the SSRR hop list of the selected path (or several tied
// parallel paths for ECMP-style selection by flow hash). It is the exact
// artifact that would be installed into switch SRAM; Table 2's entry
// counts are its size.
type CompiledTable struct {
	Tor     int
	Entries []TableEntry
	// index maps (dst, tstart, bucket) to the entry position.
	index map[tableKey]int
}

// TableEntry is one match row.
type TableEntry struct {
	Dst    int
	TStart int
	Bucket int
	// Actions holds one hop list per tied path; the action selector picks
	// by flow hash (§6.2).
	Actions [][]core.Hop
}

type tableKey struct{ dst, tstart, bucket int }

// CompileTable materializes the lookup table for one source ToR. Adjacent
// buckets mapping to the same path are still emitted as separate rows,
// matching the hardware layout (several global buckets may map to the same
// path, §6.1).
func CompileTable(ps *core.PathSet, ager *core.FlowAger, tor int) *CompiledTable {
	sched := ps.F.Sched
	t := &CompiledTable{Tor: tor, index: make(map[tableKey]int)}
	for ts := 0; ts < sched.S; ts++ {
		for dst := 0; dst < sched.N; dst++ {
			if dst == tor {
				continue
			}
			g := ps.Group(ts, tor, dst)
			prevEntry := -1
			for b := 0; b < ager.NumBuckets(); b++ {
				e := ager.EntryForBucket(g, b)
				// Deduplicate consecutive buckets resolving to the same
				// group entry: the switch stores one row per distinct
				// action, with the bucket range folded into the match.
				cur := entryIndexOf(g, e)
				if cur == prevEntry {
					t.index[tableKey{dst, ts, b}] = len(t.Entries) - 1
					continue
				}
				prevEntry = cur
				row := TableEntry{Dst: dst, TStart: ts, Bucket: b}
				for _, p := range e.Paths {
					row.Actions = append(row.Actions, p.Hops)
				}
				t.index[tableKey{dst, ts, b}] = len(t.Entries)
				t.Entries = append(t.Entries, row)
			}
		}
	}
	return t
}

func entryIndexOf(g *core.Group, e *core.Entry) int {
	for i := range g.Entries {
		if &g.Entries[i] == e {
			return i
		}
	}
	return -1
}

// Lookup resolves a match key to its hop list, selecting among tied
// actions by hash, and anchors the slices at fromAbs.
func (t *CompiledTable) Lookup(dst, tstart, bucket int, hash uint64, fromAbs int64) ([]netsim.PlannedHop, bool) {
	i, ok := t.index[tableKey{dst, tstart, bucket}]
	if !ok {
		return nil, false
	}
	row := t.Entries[i]
	hops := row.Actions[hash%uint64(len(row.Actions))]
	offset := fromAbs - int64(tstart)
	out := make([]netsim.PlannedHop, len(hops))
	for j, h := range hops {
		out[j] = netsim.PlannedHop{To: h.To, AbsSlice: h.Slice + offset}
	}
	return out, true
}

// NumRows returns the distinct match rows (the Table 2 "#Entries/ToR"
// quantity for this ToR).
func (t *CompiledTable) NumRows() int { return len(t.Entries) }

// Validate checks every row's actions are valid paths toward the row's
// destination.
func (t *CompiledTable) Validate(ps *core.PathSet) error {
	for _, row := range t.Entries {
		if len(row.Actions) == 0 {
			return fmt.Errorf("routing: empty action list for dst %d ts %d", row.Dst, row.TStart)
		}
		for _, hops := range row.Actions {
			if len(hops) == 0 || hops[len(hops)-1].To != row.Dst {
				return fmt.Errorf("routing: action does not reach dst %d", row.Dst)
			}
		}
	}
	return nil
}
