//go:build race

package routing

// raceEnabled reports whether the race detector is compiled in. Under
// -race, sync.Pool deliberately drops Puts at random, so pooled-scratch
// zero-alloc assertions cannot hold; tests use this to relax them while
// still exercising the code path for race coverage.
const raceEnabled = true
