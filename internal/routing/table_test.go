package routing

import (
	"testing"

	"ucmp/internal/core"
)

func TestCompiledTableAgreesWithRouter(t *testing.T) {
	f := fabric(t)
	ps := core.BuildPathSet(f, 0.5)
	u := NewUCMP(ps)
	tor := 0
	tbl := CompileTable(ps, u.Ager, tor)
	if err := tbl.Validate(ps); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() == 0 {
		t.Fatal("empty table")
	}
	// Every (dst, ts, bucket) lookup must reproduce the router's plan.
	for dst := 0; dst < f.NumToRs; dst++ {
		if dst == tor {
			continue
		}
		for ts := 0; ts < f.Sched.S; ts++ {
			for b := 0; b < u.Ager.NumBuckets(); b++ {
				p := dataPacket(f, tor, dst, 1<<20)
				p.Bucket = b
				want, ok := u.PlanRoute(p, tor, 0, int64(ts), nil)
				if !ok {
					t.Fatalf("router failed %d->%d", tor, dst)
				}
				got, ok := tbl.Lookup(dst, ts, b, p.Flow.Hash, int64(ts))
				if !ok {
					t.Fatalf("table miss dst=%d ts=%d b=%d", dst, ts, b)
				}
				if len(got) != len(want) {
					t.Fatalf("hop count differs dst=%d ts=%d b=%d: %v vs %v", dst, ts, b, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("hop %d differs: %v vs %v", i, got, want)
					}
				}
			}
		}
	}
}

func TestCompiledTableSize(t *testing.T) {
	f := fabric(t)
	ps := core.BuildPathSet(f, 0.5)
	u := NewUCMP(ps)
	tbl := CompileTable(ps, u.Ager, 3)
	// Rows are bounded by (N-1) x S x buckets and at least (N-1) x S
	// (one row per group minimum).
	minRows := (f.NumToRs - 1) * f.Sched.S
	maxRows := minRows * u.Ager.NumBuckets()
	if tbl.NumRows() < minRows || tbl.NumRows() > maxRows {
		t.Fatalf("rows %d outside [%d, %d]", tbl.NumRows(), minRows, maxRows)
	}
	// Missing key.
	if _, ok := tbl.Lookup(3, 0, 0, 0, 0); ok {
		t.Fatal("lookup for own ToR should miss")
	}
}
