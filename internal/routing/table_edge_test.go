package routing

import (
	"testing"

	"ucmp/internal/core"
	"ucmp/internal/netsim"
)

// TestCompiledTableLookupEdgeCases is the table-driven pin for the match
// semantics at the edges of the key space: keys outside the installed
// (dst, tstart, bucket) domain must miss (hardware tables have no default
// action here — the caller recirculates), and every in-domain lookup,
// including ones anchored far past the first schedule cycle, must reproduce
// UCMP.PlanRoute exactly. Bucket clamping is pinned from the router side:
// PlanRoute tolerates out-of-range bucket tags by clamping to the
// newest/oldest bucket, so a clamped plan must equal the table hit at the
// corresponding edge bucket.
func TestCompiledTableLookupEdgeCases(t *testing.T) {
	f := fabric(t)
	ps := core.BuildPathSet(f, 0.5)
	u := NewUCMP(ps)
	const tor = 2
	tbl := CompileTable(ps, u.Ager, tor)
	S := f.Sched.S
	nb := u.Ager.NumBuckets()
	dst := (tor + 3) % f.NumToRs

	// plan asks the router for the reference route; every dataPacket here
	// uses the same flow (ID 1, same endpoints), so the hash is stable
	// across calls.
	plan := func(bucket int, fromAbs int64) ([]netsim.PlannedHop, uint64) {
		t.Helper()
		p := dataPacket(f, tor, dst, 1<<20)
		p.Bucket = bucket
		hops, ok := u.PlanRoute(p, tor, 0, fromAbs, nil)
		if !ok {
			t.Fatalf("router failed %d->%d bucket %d fromAbs %d", tor, dst, bucket, fromAbs)
		}
		return hops, p.Flow.Hash
	}

	// farAbs anchors past the 2^36 ns wheel horizon when slices are
	// microseconds: lookups are keyed on the cyclic slice, so distance from
	// slice 0 must not matter.
	farAbs := int64(1)<<40 + 7

	cases := []struct {
		name                string
		dst, tstart, bucket int
		fromAbs             int64
		wantOK              bool
		// pinBucket, when >= 0, selects the router plan (at fromAbs) the
		// hit must equal hop-for-hop.
		pinBucket int
	}{
		{name: "own ToR misses", dst: tor, wantOK: false, pinBucket: -1},
		{name: "dst past fabric misses", dst: f.NumToRs, wantOK: false, pinBucket: -1},
		{name: "negative dst misses", dst: -1, wantOK: false, pinBucket: -1},
		{name: "tstart past cycle misses", dst: dst, tstart: S, wantOK: false, pinBucket: -1},
		{name: "tstart past horizon misses", dst: dst, tstart: S * 100000, wantOK: false, pinBucket: -1},
		{name: "negative tstart misses", dst: dst, tstart: -1, wantOK: false, pinBucket: -1},
		{name: "bucket past ager misses", dst: dst, bucket: nb, wantOK: false, pinBucket: -1},
		{name: "negative bucket misses", dst: dst, bucket: -1, wantOK: false, pinBucket: -1},
		{name: "first key hits", dst: dst, wantOK: true, pinBucket: 0},
		{name: "last bucket hits", dst: dst, bucket: nb - 1, wantOK: true, pinBucket: nb - 1},
		{name: "anchor past horizon hits", dst: dst, tstart: int(farAbs % int64(S)), bucket: 0,
			fromAbs: farAbs, wantOK: true, pinBucket: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var hash uint64
			var want []netsim.PlannedHop
			if tc.pinBucket >= 0 {
				want, hash = plan(tc.pinBucket, tc.fromAbs)
			}
			got, ok := tbl.Lookup(tc.dst, tc.tstart, tc.bucket, hash, tc.fromAbs)
			if ok != tc.wantOK {
				t.Fatalf("Lookup(%d,%d,%d) ok=%v, want %v", tc.dst, tc.tstart, tc.bucket, ok, tc.wantOK)
			}
			if !ok {
				if got != nil {
					t.Fatalf("miss returned hops %v", got)
				}
				return
			}
			if tc.tstart != int(tc.fromAbs%int64(S)) && tc.fromAbs != 0 {
				t.Fatalf("bad case: tstart %d does not match fromAbs %d", tc.tstart, tc.fromAbs)
			}
			if len(got) != len(want) {
				t.Fatalf("hop count %d != router's %d: %v vs %v", len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("hop %d differs: %v vs %v", i, got, want)
				}
			}
		})
	}

	// Router-side clamping: out-of-range bucket tags plan like the nearest
	// edge bucket, so the table row at that edge is still the right install.
	high, hash := plan(nb+7, 0)
	edge, ok := tbl.Lookup(dst, 0, nb-1, hash, 0)
	if !ok {
		t.Fatal("edge bucket lookup missed")
	}
	assertSameHops(t, "bucket above range clamps to oldest", high, edge)
	low, hash2 := plan(-3, 0)
	edge, ok = tbl.Lookup(dst, 0, 0, hash2, 0)
	if !ok {
		t.Fatal("bucket-0 lookup missed")
	}
	assertSameHops(t, "bucket below range clamps to newest", low, edge)
}

func assertSameHops(t *testing.T, what string, a, b []netsim.PlannedHop) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %v vs %v", what, a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: hop %d differs: %v vs %v", what, i, a, b)
		}
	}
}
