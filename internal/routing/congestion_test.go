package routing

import (
	"testing"

	"ucmp/internal/core"
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
)

// symCongestionUCMP builds a congestion-aware router over a
// rotation-symmetric fabric (16 ToRs, 4 uplinks) with a scripted board.
func symCongestionUCMP(t testing.TB, backlog func(tor int, now sim.Time, hop netsim.PlannedHop) int) (*UCMP, *topo.Fabric) {
	t.Helper()
	cfg := topo.Scaled()
	cfg.Uplinks = 4
	f := topo.MustFabric(cfg, "round-robin", 1)
	ps := core.BuildPathSet(f, 0.5)
	if !ps.Symmetric() {
		t.Fatal("16x4 round-robin PathSet is not rotation-symmetric")
	}
	u := NewUCMP(ps)
	u.Backlog = backlog
	u.CongestionThreshold = 1
	return u, f
}

// evenCongested is a scripted board that congests every even-numbered peer:
// picks whose primary first hop is even must engage, and steer whenever an
// odd-first-hop candidate exists within one bucket of slack.
func evenCongested(tor int, now sim.Time, hop netsim.PlannedHop) int {
	if hop.To%2 == 0 {
		return 64
	}
	return 0
}

// TestCongestionCanonicalMatchesBrute: the congestion pick on the
// zero-alloc canonical-group path must plan exactly what the materializing
// brute build plans for the same scripted board, for every (tor, dst,
// slice, bucket) — relabel-on-emit may not change a single decision.
func TestCongestionCanonicalMatchesBrute(t *testing.T) {
	uSym, f := symCongestionUCMP(t, evenCongested)
	brute := core.BuildPathSetOpts(f, 0.5, core.BuildOptions{NoSymmetry: true})
	uRef := NewUCMP(brute)
	uRef.Backlog = evenCongested
	uRef.CongestionThreshold = 1

	steered := 0
	for tor := 0; tor < f.NumToRs; tor += 3 {
		for dst := 0; dst < f.NumToRs; dst++ {
			if dst == tor {
				continue
			}
			for ts := 0; ts < f.Sched.S; ts += 2 {
				for b := 0; b < uRef.Ager.NumBuckets(); b++ {
					plan := func(u *UCMP) ([]netsim.PlannedHop, netsim.RecoveryClass) {
						p := dataPacket(f, tor, dst, 1<<20)
						p.Bucket = b
						hops, ok := u.PlanRoute(p, tor, 0, int64(ts), nil)
						if !ok {
							t.Fatalf("plan failed %d->%d ts=%d b=%d", tor, dst, ts, b)
						}
						return hops, p.RecoveredVia
					}
					want, wantClass := plan(uRef)
					got, gotClass := plan(uSym)
					if gotClass != wantClass {
						t.Fatalf("%d->%d ts=%d b=%d: class %v vs brute %v", tor, dst, ts, b, gotClass, wantClass)
					}
					if len(got) != len(want) {
						t.Fatalf("%d->%d ts=%d b=%d: %v vs brute %v", tor, dst, ts, b, got, want)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%d->%d ts=%d b=%d: %v vs brute %v", tor, dst, ts, b, got, want)
						}
					}
					if gotClass == netsim.RecoverySteered {
						steered++
					}
					validRoute(t, f, tor, dst, int64(ts), got)
				}
			}
		}
	}
	if steered == 0 {
		t.Fatal("scripted board never steered a pick; the differential is vacuous")
	}
}

// TestCongestionPickZeroAlloc pins the tentpole's hot-path property: once
// the pooled scratch and route buffer are warm, an ENGAGED congestion pick
// on the symmetric fast path allocates nothing.
func TestCongestionPickZeroAlloc(t *testing.T) {
	// Uniformly congested: every pick engages and walks the full candidate
	// set (ties keep the primary), the worst case for the scratch.
	u, f := symCongestionUCMP(t, func(tor int, now sim.Time, hop netsim.PlannedHop) int { return 64 })
	p := dataPacket(f, 0, 5, 1<<20)
	p.Bucket = 1
	p.Route = make([]netsim.PlannedHop, 0, 8)
	allocs := testing.AllocsPerRun(200, func() {
		hops, ok := u.PlanRoute(p, 0, 0, 1, p.Route[:0])
		if !ok {
			t.Fatal("plan failed")
		}
		p.Route = hops
	})
	if raceEnabled {
		// The race detector makes sync.Pool drop Puts at random, so the
		// pooled scratch legitimately reallocates; the run above still
		// gives the engaged pick race coverage.
		t.Logf("race detector on: skipping zero-alloc assertion (measured %.2f allocs/op)", allocs)
		return
	}
	if allocs != 0 {
		t.Fatalf("engaged congestion pick allocates %.2f allocs/op, want 0", allocs)
	}
}

// BenchmarkCongestionPick measures one engaged congestion-steered plan on
// the symmetric fast path (the unit under the 10% serial-regression gate;
// run with -benchmem to see the zero-alloc property).
func BenchmarkCongestionPick(b *testing.B) {
	u, f := symCongestionUCMP(b, evenCongested)
	p := dataPacket(f, 0, 5, 1<<20)
	p.Bucket = 1
	p.Route = make([]netsim.PlannedHop, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hops, ok := u.PlanRoute(p, 0, 0, int64(i%f.Sched.S), p.Route[:0])
		if !ok {
			b.Fatal("plan failed")
		}
		p.Route = hops
	}
}
