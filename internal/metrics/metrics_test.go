package metrics

import (
	"testing"

	"ucmp/internal/netsim"
	"ucmp/internal/sim"
)

func rec(size int64, fct sim.Time) FlowRecord { return FlowRecord{Size: size, FCT: fct} }

func TestBySizeBins(t *testing.T) {
	c := &Collector{Flows: []FlowRecord{
		rec(5_000, 10*sim.Microsecond),
		rec(6_000, 30*sim.Microsecond),
		rec(500_000, 200*sim.Microsecond),
		rec(50_000_000, 5*sim.Millisecond),
	}}
	edges := []int64{1_000, 10_000, 1_000_000, 100_000_000}
	bins := c.BySize(edges)
	if len(bins) != 3 {
		t.Fatalf("%d bins, want 3", len(bins))
	}
	if bins[0].Count != 2 || bins[1].Count != 1 || bins[2].Count != 1 {
		t.Fatalf("bin counts %d/%d/%d", bins[0].Count, bins[1].Count, bins[2].Count)
	}
	if bins[0].AvgFCT != 20*sim.Microsecond {
		t.Fatalf("avg FCT %v", bins[0].AvgFCT)
	}
	if bins[0].P99FCT < bins[0].P50FCT {
		t.Fatal("p99 below p50")
	}
	if bins[0].MaxFCT != 30*sim.Microsecond {
		t.Fatalf("max FCT %v", bins[0].MaxFCT)
	}
	if bins[0].MeanMbps <= 0 {
		t.Fatal("goodput not computed")
	}
}

func TestBySizeClamping(t *testing.T) {
	c := &Collector{Flows: []FlowRecord{
		rec(1, sim.Microsecond), // below first edge
		rec(1<<40, sim.Second),  // beyond last edge
		rec(50_000, 2*sim.Microsecond),
	}}
	bins := c.BySize([]int64{1_000, 100_000, 10_000_000})
	if bins[0].Count != 2 { // tiny flow clamped into first bin
		t.Fatalf("first bin %d", bins[0].Count)
	}
	if bins[1].Count != 1 { // huge flow clamped into last bin
		t.Fatalf("last bin %d", bins[1].Count)
	}
}

func TestDefaultBins(t *testing.T) {
	edges := DefaultBins()
	if edges[0] != 1000 {
		t.Fatalf("first edge %d", edges[0])
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatal("edges not ascending")
		}
	}
	if edges[len(edges)-1] < 1_000_000_000 {
		t.Fatalf("last edge %d below 1GB", edges[len(edges)-1])
	}
}

func TestFCTCDF(t *testing.T) {
	c := &Collector{Flows: []FlowRecord{
		{Size: 1, FCT: 3, Priority: true},
		{Size: 1, FCT: 1, Priority: true},
		{Size: 1, FCT: 2, Priority: false},
	}}
	fcts, probs := c.FCTCDF(true)
	if len(fcts) != 2 || fcts[0] != 1 || fcts[1] != 3 {
		t.Fatalf("priority CDF %v", fcts)
	}
	if probs[1] != 1.0 {
		t.Fatalf("probs %v", probs)
	}
	all, _ := c.FCTCDF(false)
	if len(all) != 3 {
		t.Fatalf("full CDF %v", all)
	}
}

func TestPercentile(t *testing.T) {
	c := &Collector{}
	if c.Percentile(0.99) != 0 {
		t.Fatal("empty percentile")
	}
	for i := 1; i <= 100; i++ {
		c.Flows = append(c.Flows, rec(1, sim.Time(i)))
	}
	if p := c.Percentile(0.5); p < 49 || p > 52 {
		t.Fatalf("p50 = %v", p)
	}
	if p := c.Percentile(0.99); p < 98 || p > 100 {
		t.Fatalf("p99 = %v", p)
	}
}

func TestMeanUtil(t *testing.T) {
	c := &Collector{Samples: []netsim.Sample{
		{TorToTorUtil: 1.0}, // warmup, skipped
		{TorToTorUtil: 0.4},
		{TorToTorUtil: 0.6},
	}}
	got := c.MeanUtil(1, func(s netsim.Sample) float64 { return s.TorToTorUtil })
	if got != 0.5 {
		t.Fatalf("mean util %v, want 0.5", got)
	}
	// Skip beyond length falls back to everything.
	got = c.MeanUtil(10, func(s netsim.Sample) float64 { return s.TorToTorUtil })
	if got < 0.6 || got > 0.7 {
		t.Fatalf("fallback mean %v", got)
	}
	empty := &Collector{}
	if empty.MeanUtil(0, func(netsim.Sample) float64 { return 1 }) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestCompletionRate(t *testing.T) {
	c := &Collector{}
	if c.CompletionRate() != 1 {
		t.Fatal("untracked rate should be 1")
	}
	c.CountLaunched(4)
	c.Flows = append(c.Flows, rec(1, 1), rec(1, 2))
	if c.CompletionRate() != 0.5 {
		t.Fatalf("rate %v", c.CompletionRate())
	}
}
