package metrics

import (
	"testing"

	"ucmp/internal/netsim"
	"ucmp/internal/sim"
)

func TestRecoveryExtractsCounters(t *testing.T) {
	c := netsim.Counters{
		RecoveredSameLength: 5,
		RecoveredShorter:    3,
		RecoveredLonger:     2,
		RecoveredBackup:     1,
		RecoveryFailed:      4,
		FaultDrops:          7,
	}
	c.RerouteWait[0] = 10
	c.RerouteWait[3] = 10
	r := Recovery(c)
	if r.Recovered() != 11 || r.Total() != 15 || r.FaultDrops != 7 {
		t.Fatalf("recovered=%d total=%d faultdrops=%d", r.Recovered(), r.Total(), r.FaultDrops)
	}
	s := r.BreakdownShares()
	want := [4]float64{3.0 / 15, 5.0 / 15, 3.0 / 15, 4.0 / 15} // shorter, same, longer+backup, failed
	if s != want {
		t.Fatalf("shares %v, want %v", s, want)
	}
}

func TestRecoveryZeroIsEmpty(t *testing.T) {
	var r RecoveryStats
	if r.Total() != 0 || r.BreakdownShares() != [4]float64{} {
		t.Fatal("zero stats not empty")
	}
	if r.WaitPercentile(0.99) != 0 {
		t.Fatal("empty histogram has a percentile")
	}
	if r.WaitHistogram() != "(empty)" {
		t.Fatalf("empty histogram renders %q", r.WaitHistogram())
	}
}

func TestWaitPercentileAndHistogram(t *testing.T) {
	var r RecoveryStats
	r.Wait[0] = 90 // <1µs
	r.Wait[6] = 9  // [32,64)µs
	r.Wait[netsim.RerouteWaitBuckets-1] = 1
	if got := r.WaitPercentile(0.5); got != sim.Microsecond {
		t.Fatalf("p50 = %v, want 1µs bucket edge", got)
	}
	if got := r.WaitPercentile(0.95); got != 64*sim.Microsecond {
		t.Fatalf("p95 = %v, want 64µs bucket edge", got)
	}
	// p100 lands in the open-ended last bucket.
	if got := r.WaitPercentile(1.0); got != waitBucketHi(netsim.RerouteWaitBuckets-1) {
		t.Fatalf("p100 = %v", got)
	}
	h := r.WaitHistogram()
	want := "<1µs:90 [32,64)µs:9 >=8192µs:1"
	if h != want {
		t.Fatalf("histogram %q, want %q", h, want)
	}
}
