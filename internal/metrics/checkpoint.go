// Collector checkpointing: the "metrics" section stores the accumulated
// flow-completion records, fabric samples, and the launched count. The
// serial sampling tick is a tagged engine event replayed through
// SamplingRestorer; the sharded tick is a coordinator global event that
// checkpoints cannot capture, so ResumeSamplingSharded re-derives it from
// the sample count (ticks fire at every, 2*every, ...).
package metrics

import (
	"fmt"

	"ucmp/internal/checkpoint"
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
)

// Snapshot writes the collector's accumulated records.
func (c *Collector) Snapshot(w *checkpoint.Writer) {
	enc := w.Section("metrics")
	enc.U64(uint64(c.launched))
	enc.Len(len(c.Flows))
	for _, fr := range c.Flows {
		enc.I64(fr.Size)
		enc.I64(int64(fr.FCT))
		enc.Bool(fr.Rotor)
		enc.Bool(fr.Priority)
	}
	enc.Len(len(c.Samples))
	for _, s := range c.Samples {
		enc.I64(int64(s.At))
		enc.F64(s.TorToHostUtil)
		enc.F64(s.HostToTorUtil)
		enc.F64(s.TorToTorUtil)
		enc.F64(s.JainQueueIndex)
		enc.F64(s.JainLoadIndex)
	}
}

// RestoreState refills the collector from the "metrics" section.
func (c *Collector) RestoreState(f *checkpoint.File) error {
	dec, err := f.Section("metrics")
	if err != nil {
		return err
	}
	c.launched = int(dec.U64())
	nf := dec.Len()
	c.Flows = c.Flows[:0]
	for i := 0; i < nf; i++ {
		var fr FlowRecord
		fr.Size = dec.I64()
		fr.FCT = sim.Time(dec.I64())
		fr.Rotor = dec.Bool()
		fr.Priority = dec.Bool()
		c.Flows = append(c.Flows, fr)
	}
	ns := dec.Len()
	c.Samples = c.Samples[:0]
	for i := 0; i < ns; i++ {
		var s netsim.Sample
		s.At = sim.Time(dec.I64())
		s.TorToHostUtil = dec.F64()
		s.HostToTorUtil = dec.F64()
		s.TorToTorUtil = dec.F64()
		s.JainQueueIndex = dec.F64()
		s.JainLoadIndex = dec.F64()
		c.Samples = append(c.Samples, s)
	}
	return dec.Err()
}

// SamplingRestorer returns the netsim.RestoreExt handler for the serial
// sampling tick: it rebuilds the tick closure over this collector and
// re-schedules the checkpoint's pending occurrence. every and until must
// match the sampling parameters of the checkpointed run.
func (c *Collector) SamplingRestorer(n *netsim.Network, every, until sim.Time) netsim.RestoreExt {
	return func(eng *sim.Engine, at sim.Time, tag sim.EventTag, timer, armed bool, deadline sim.Time) error {
		if tag.Kind != checkpoint.KindSample || timer {
			return fmt.Errorf("checkpoint: metrics cannot restore event kind %d (timer=%v)", tag.Kind, timer)
		}
		if eng != n.Eng {
			return fmt.Errorf("checkpoint: sampling tick on a non-serial engine")
		}
		eng.AtTag(at, tag, c.serialTick(n, every, until))
		return nil
	}
}

// ResumeSamplingSharded re-arms the sharded sampling chain after a restore.
// Global events live on the coordinator, outside any domain engine, so they
// are absent from checkpoints; the next tick is (len(Samples)+1)*every —
// which also handles a sample due exactly at the checkpoint instant that
// had not yet run (the derived time equals the restored global now).
func (c *Collector) ResumeSamplingSharded(n *netsim.Network, sh *sim.ShardedEngine, every, until sim.Time) {
	next := sim.Time(len(c.Samples)+1) * every
	if next > until {
		return
	}
	sh.Global(next, c.shardedTick(n, sh, every, until))
}
