package metrics

import (
	"fmt"
	"strings"

	"ucmp/internal/netsim"
	"ucmp/internal/sim"
)

// RecoveryStats summarizes the §5.3 online-recovery outcome of a run under
// fault injection: per-class counts of data-packet route plans that left
// the wanted path, the fault-drop count, and the time-to-reroute histogram.
type RecoveryStats struct {
	SameLength int64
	Shorter    int64
	Longer     int64
	Backup     int64
	Failed     int64 // no healthy alternative: the packet was dropped
	FaultDrops int64 // packets dropped at (or parked in) a dead ToR

	// Wait is the time-to-reroute histogram (netsim.Counters.RerouteWait):
	// bucket 0 counts sub-microsecond waits, bucket i waits in
	// [2^(i-1), 2^i) µs, the last bucket open-ended.
	Wait [netsim.RerouteWaitBuckets]int64
}

// Recovery extracts the recovery view from a run's counters.
func Recovery(c netsim.Counters) RecoveryStats {
	return RecoveryStats{
		SameLength: c.RecoveredSameLength,
		Shorter:    c.RecoveredShorter,
		Longer:     c.RecoveredLonger,
		Backup:     c.RecoveredBackup,
		Failed:     c.RecoveryFailed,
		FaultDrops: c.FaultDrops,
		Wait:       c.RerouteWait,
	}
}

// Recovered is the number of plans resolved onto a healthy alternative.
func (r RecoveryStats) Recovered() int64 {
	return r.SameLength + r.Shorter + r.Longer + r.Backup
}

// Total is every plan that had to leave the wanted path, failed included.
func (r RecoveryStats) Total() int64 { return r.Recovered() + r.Failed }

// BreakdownShares maps the online counts onto failure.Recovery's four
// classes — shorter, same-length, longer, unrecoverable, in that index
// order — as fractions of Total, for side-by-side comparison with an
// offline failure.Classify breakdown. Backup recoveries count as longer
// (the 2-hop fallback of §5.3).
func (r RecoveryStats) BreakdownShares() [4]float64 {
	var s [4]float64
	total := float64(r.Total())
	if total == 0 {
		return s
	}
	s[0] = float64(r.Shorter) / total
	s[1] = float64(r.SameLength) / total
	s[2] = float64(r.Longer+r.Backup) / total
	s[3] = float64(r.Failed) / total
	return s
}

// WaitPercentile returns an upper bound on the p-quantile time-to-reroute
// (the upper edge of the histogram bucket containing it), or 0 when the
// histogram is empty. p is in [0, 1].
func (r RecoveryStats) WaitPercentile(p float64) sim.Time {
	var total int64
	for _, c := range r.Wait {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := int64(p * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i, c := range r.Wait {
		seen += c
		if seen > rank {
			return waitBucketHi(i)
		}
	}
	return waitBucketHi(len(r.Wait) - 1)
}

// waitBucketHi is the exclusive upper edge of histogram bucket i.
func waitBucketHi(i int) sim.Time {
	return sim.Time(int64(1)<<uint(i)) * sim.Microsecond
}

// WaitHistogram renders the non-empty histogram buckets compactly, e.g.
// "<1µs:12 [1,2)µs:3 [512,1024)µs:7".
func (r RecoveryStats) WaitHistogram() string {
	var b strings.Builder
	for i, c := range r.Wait {
		if c == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		switch {
		case i == 0:
			fmt.Fprintf(&b, "<1µs:%d", c)
		case i == len(r.Wait)-1:
			fmt.Fprintf(&b, ">=%dµs:%d", int64(1)<<uint(i-1), c)
		default:
			fmt.Fprintf(&b, "[%d,%d)µs:%d", int64(1)<<uint(i-1), int64(1)<<uint(i), c)
		}
	}
	if b.Len() == 0 {
		return "(empty)"
	}
	return b.String()
}
