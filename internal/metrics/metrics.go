// Package metrics collects and aggregates the measurements the paper
// reports: flow completion times by flow-size bin (Fig 6a/b, 8, 9, 10b,
// 11b, 12d, 13), bandwidth efficiency (Fig 6c/d, 11a), link-utilization
// time series (Fig 7, 10a, 17), and the Jain load-balance metric (Fig 15).
package metrics

import (
	"math"
	"sort"

	"ucmp/internal/checkpoint"
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
)

// FlowRecord is the completion record of one flow.
type FlowRecord struct {
	Size     int64
	FCT      sim.Time
	Rotor    bool
	Priority bool
}

// Collector accumulates flow completions and fabric samples.
type Collector struct {
	Flows   []FlowRecord
	Samples []netsim.Sample

	launched int
}

// Hook registers the collector on a network's completion callback.
func (c *Collector) Hook(n *netsim.Network) {
	n.OnFlowDone = func(f *netsim.Flow) {
		if f.Child {
			return // MPTCP stripes report through their parent
		}
		c.Flows = append(c.Flows, FlowRecord{Size: f.Size, FCT: f.FCT(), Rotor: f.RotorClass, Priority: f.Priority})
	}
}

// CountLaunched tells the collector how many flows were started, enabling
// CompletionRate.
func (c *Collector) CountLaunched(n int) { c.launched += n }

// CompletionRate returns completed/launched, or 1 when untracked.
func (c *Collector) CompletionRate() float64 {
	if c.launched == 0 {
		return 1
	}
	return float64(len(c.Flows)) / float64(c.launched)
}

// StartSampling arms periodic fabric sampling until the horizon.
func (c *Collector) StartSampling(n *netsim.Network, every, until sim.Time) {
	tick := c.serialTick(n, every, until)
	n.Eng.AtTag(n.Eng.Now()+every, sim.EventTag{Kind: checkpoint.KindSample}, tick)
}

// serialTick builds the serial sampling closure. It carries no loop state of
// its own (the previous sample is read back from Samples), so a checkpoint
// restore can rebuild it and replay the pending tick event verbatim.
func (c *Collector) serialTick(n *netsim.Network, every, until sim.Time) func() {
	var tick func()
	tick = func() {
		var prev *netsim.Sample
		if len(c.Samples) > 0 {
			prev = &c.Samples[len(c.Samples)-1]
		}
		c.Samples = append(c.Samples, n.TakeSample(prev))
		if next := n.Eng.Now() + every; next <= until {
			n.Eng.AtTag(next, sim.EventTag{Kind: checkpoint.KindSample}, tick)
		}
	}
	return tick
}

// StartSamplingSharded arms periodic fabric sampling on a sharded engine.
// Samples run as global events: every domain is parked at a window barrier
// strictly before the sample time, so the walk over ports and queues sees a
// consistent fabric snapshot without synchronization. Cumulative counters
// lag by up to one window (they sit in per-domain shards until
// FinalizeSharded), so sharded samples are byte-rate-accurate but not
// counter-exact; the per-port byte meters it reads are exact.
func (c *Collector) StartSamplingSharded(n *netsim.Network, sh *sim.ShardedEngine, every, until sim.Time) {
	sh.Global(every, c.shardedTick(n, sh, every, until))
}

// shardedTick builds the sharded sampling closure; like serialTick it keeps
// no private loop state, so ResumeSamplingSharded can re-arm the chain.
func (c *Collector) shardedTick(n *netsim.Network, sh *sim.ShardedEngine, every, until sim.Time) func() {
	var tick func()
	tick = func() {
		var prev *netsim.Sample
		if len(c.Samples) > 0 {
			prev = &c.Samples[len(c.Samples)-1]
		}
		c.Samples = append(c.Samples, n.TakeSample(prev))
		if next := sh.GlobalNow() + every; next <= until {
			sh.Global(next, tick)
		}
	}
	return tick
}

// BinStat aggregates FCTs of flows within one size bin.
type BinStat struct {
	Lo, Hi   int64 // [Lo, Hi)
	Count    int
	AvgFCT   sim.Time
	P50FCT   sim.Time
	P99FCT   sim.Time
	MaxFCT   sim.Time
	MeanMbps float64 // goodput Size*8/FCT averaged per flow
}

// DefaultBins returns log-spaced size bin edges from 1 KB to 1 GB (two bins
// per decade), matching the x-axis of Fig 6.
func DefaultBins() []int64 {
	var edges []int64
	for exp := 3.0; exp <= 9.01; exp += 0.5 {
		edges = append(edges, int64(math.Round(math.Pow(10, exp))))
	}
	return edges
}

// BySize groups flow records into the given bins (edges ascending). Flows
// below the first or at/above the last edge are clamped into the outer
// bins.
func (c *Collector) BySize(edges []int64) []BinStat {
	bins := make([][]FlowRecord, len(edges)-1)
	for _, fr := range c.Flows {
		i := sort.Search(len(edges), func(i int) bool { return edges[i] > fr.Size }) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(bins) {
			i = len(bins) - 1
		}
		bins[i] = append(bins[i], fr)
	}
	out := make([]BinStat, 0, len(bins))
	for i, b := range bins {
		st := BinStat{Lo: edges[i], Hi: edges[i+1], Count: len(b)}
		if len(b) > 0 {
			fcts := make([]sim.Time, len(b))
			var sum sim.Time
			var mbps float64
			for j, fr := range b {
				fcts[j] = fr.FCT
				sum += fr.FCT
				if fr.FCT > 0 {
					mbps += float64(fr.Size) * 8 / fr.FCT.Seconds() / 1e6
				}
			}
			sort.Slice(fcts, func(a, z int) bool { return fcts[a] < fcts[z] })
			st.AvgFCT = sum / sim.Time(len(b))
			st.P50FCT = fcts[len(fcts)/2]
			st.P99FCT = fcts[(len(fcts)*99)/100]
			st.MaxFCT = fcts[len(fcts)-1]
			st.MeanMbps = mbps / float64(len(b))
		}
		out = append(out, st)
	}
	return out
}

// FCTCDF returns the (sorted FCT, cumulative probability) curve over all
// recorded flows, optionally restricted to priority (foreground) flows —
// the Fig 13 testbed plot.
func (c *Collector) FCTCDF(priorityOnly bool) (fcts []sim.Time, probs []float64) {
	for _, fr := range c.Flows {
		if priorityOnly && !fr.Priority {
			continue
		}
		fcts = append(fcts, fr.FCT)
	}
	sort.Slice(fcts, func(i, j int) bool { return fcts[i] < fcts[j] })
	probs = make([]float64, len(fcts))
	for i := range fcts {
		probs[i] = float64(i+1) / float64(len(fcts))
	}
	return fcts, probs
}

// Percentile returns the p-quantile (0..1) of recorded FCTs.
func (c *Collector) Percentile(p float64) sim.Time {
	if len(c.Flows) == 0 {
		return 0
	}
	fcts := make([]sim.Time, len(c.Flows))
	for i, fr := range c.Flows {
		fcts[i] = fr.FCT
	}
	sort.Slice(fcts, func(i, j int) bool { return fcts[i] < fcts[j] })
	idx := int(p * float64(len(fcts)-1))
	return fcts[idx]
}

// MeanUtil averages a selector over the collected samples, skipping the
// warmup prefix.
func (c *Collector) MeanUtil(skip int, sel func(netsim.Sample) float64) float64 {
	if skip >= len(c.Samples) {
		skip = 0
	}
	sum, n := 0.0, 0
	for _, s := range c.Samples[skip:] {
		sum += sel(s)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
