// Package analysis computes the offline path characteristics of §7.2:
// UCMP group sizes and per-cycle path diversity, edge-disjointness, and
// hop-count distributions of UCMP versus the KSP/Opera baselines (Fig 5,
// Fig 16).
package analysis

import (
	"sort"

	"ucmp/internal/core"
	"ucmp/internal/topo"
)

// PathStats summarizes a PathSet (Fig 5a).
type PathStats struct {
	// GroupSizes histograms the number of paths per UCMP group.
	GroupSizes map[int]int
	// MeanGroupSize is the paper's "3.2 UCMP paths on average".
	MeanGroupSize float64
	// MultiPathShare is the fraction of groups with more than one path
	// (the paper's 94.4% "provides multi-paths").
	MultiPathShare float64
	// EdgeDisjointShare is the fraction of paths sharing no ToR-pair edge
	// with any other path of their group (93.2% in the paper).
	EdgeDisjointShare float64
	// PathsPerCycle histograms, per ToR pair, the number of unique paths
	// across all starting slices of a cycle.
	PathsPerCycle map[int]int
	// MeanPathsPerCycle is the paper's "average of 47.9 paths over time".
	MeanPathsPerCycle float64
	// HopHist histograms path hop counts over all groups and slices.
	HopHist map[int]int
	// MeanHops is the byte-free average hop count over all UCMP paths
	// (2.32 in the paper).
	MeanHops float64
}

// Analyze computes PathStats for a built PathSet.
func Analyze(ps *core.PathSet) PathStats {
	st := PathStats{
		GroupSizes:    make(map[int]int),
		PathsPerCycle: make(map[int]int),
		HopHist:       make(map[int]int),
	}
	sched := ps.F.Sched
	var groups, multi, pathsTotal, disjoint int
	var sizeSum int
	var hopSum int

	type pairKey struct{ src, dst int }
	unique := make(map[pairKey]map[string]struct{})

	for ts := 0; ts < sched.S; ts++ {
		for src := 0; src < sched.N; src++ {
			for dst := 0; dst < sched.N; dst++ {
				if src == dst {
					continue
				}
				g := ps.Group(ts, src, dst)
				n := g.NumPaths()
				st.GroupSizes[n]++
				groups++
				sizeSum += n
				if n > 1 {
					multi++
				}
				paths := g.AllPaths()
				edgeSets := make([]map[[2]int]struct{}, len(paths))
				for i, p := range paths {
					es := make(map[[2]int]struct{}, p.HopCount())
					for _, e := range p.Edges() {
						es[e] = struct{}{}
					}
					edgeSets[i] = es
					st.HopHist[p.HopCount()]++
					hopSum += p.HopCount()
					pathsTotal++

					key := pairKey{src, dst}
					m, ok := unique[key]
					if !ok {
						m = make(map[string]struct{})
						unique[key] = m
					}
					m[signature(p)] = struct{}{}
				}
				for i := range paths {
					shared := false
					for j := range paths {
						if i == j {
							continue
						}
						for e := range edgeSets[i] {
							if _, hit := edgeSets[j][e]; hit {
								shared = true
								break
							}
						}
						if shared {
							break
						}
					}
					if !shared {
						disjoint++
					}
				}
			}
		}
	}
	var cycleSum int
	for _, m := range unique {
		st.PathsPerCycle[len(m)]++
		cycleSum += len(m)
	}
	if groups > 0 {
		st.MeanGroupSize = float64(sizeSum) / float64(groups)
		st.MultiPathShare = float64(multi) / float64(groups)
	}
	if pathsTotal > 0 {
		st.EdgeDisjointShare = float64(disjoint) / float64(pathsTotal)
		st.MeanHops = float64(hopSum) / float64(pathsTotal)
	}
	if len(unique) > 0 {
		st.MeanPathsPerCycle = float64(cycleSum) / float64(len(unique))
	}
	return st
}

// signature renders the node sequence of a path (slices excluded: the same
// trajectory counted once per cycle).
func signature(p *core.Path) string {
	b := make([]byte, 0, 2*len(p.Hops)+2)
	b = append(b, byte(p.Src), byte(p.Src>>8))
	for _, h := range p.Hops {
		b = append(b, byte(h.To), byte(h.To>>8))
	}
	return string(b)
}

// HopDist is a normalized hop-count distribution (Fig 5b's stacked bars).
type HopDist struct {
	Name string
	// Share[h] is the fraction of paths with h hops; OverflowShare covers
	// hops beyond the last index.
	Share map[int]float64
	Mean  float64
}

// NewHopDist normalizes a histogram.
func NewHopDist(name string, hist map[int]int) HopDist {
	total, sum := 0, 0
	for h, c := range hist {
		total += c
		sum += h * c
	}
	d := HopDist{Name: name, Share: make(map[int]float64)}
	if total == 0 {
		return d
	}
	for h, c := range hist {
		d.Share[h] = float64(c) / float64(total)
	}
	d.Mean = float64(sum) / float64(total)
	return d
}

// BaselinePathTable abstracts KSP/Opera path tables for hop counting.
type BaselinePathTable interface {
	Paths(slice, src, dst int) [][]int
}

// BaselineHops histograms hop counts of a baseline's paths across all
// slices and pairs (Fig 5b).
func BaselineHops(name string, t BaselinePathTable, slices, n int) HopDist {
	hist := make(map[int]int)
	for sl := 0; sl < slices; sl++ {
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				for _, nodes := range t.Paths(sl, src, dst) {
					hist[len(nodes)-1]++
				}
			}
		}
	}
	return NewHopDist(name, hist)
}

// SortedKeys returns the histogram keys in ascending order (stable output
// for the harness).
func SortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// LatencyStats characterizes the Eqn. 1 latencies of UCMP paths: the
// per-hop-count latency distribution across every group of the PathSet.
// The paper's Fig 2 path space predicts latency strictly decreasing with
// hop count within each group; these aggregates show how much waiting each
// hop-count level carries fabric-wide.
type LatencyStats struct {
	// MeanLatency[h] is the mean latency (slices) of kept h-hop paths.
	MeanLatency map[int]float64
	// MaxLatency[h] is the maximum.
	MaxLatency map[int]int64
	// GlobalMeanLatency is the byte-free mean over all paths.
	GlobalMeanLatency float64
}

// Latencies computes LatencyStats for a PathSet.
func Latencies(ps *core.PathSet) LatencyStats {
	sums := make(map[int]float64)
	counts := make(map[int]int)
	maxes := make(map[int]int64)
	var total float64
	var n int
	sched := ps.F.Sched
	for ts := 0; ts < sched.S; ts++ {
		for src := 0; src < sched.N; src++ {
			for dst := 0; dst < sched.N; dst++ {
				if src == dst {
					continue
				}
				for _, e := range ps.Group(ts, src, dst).Entries {
					lat := e.LatencySlices
					h := e.HopCount
					sums[h] += float64(lat) * float64(len(e.Paths))
					counts[h] += len(e.Paths)
					if lat > maxes[h] {
						maxes[h] = lat
					}
					total += float64(lat) * float64(len(e.Paths))
					n += len(e.Paths)
				}
			}
		}
	}
	st := LatencyStats{MeanLatency: make(map[int]float64), MaxLatency: maxes}
	for h, s := range sums {
		st.MeanLatency[h] = s / float64(counts[h])
	}
	if n > 0 {
		st.GlobalMeanLatency = total / float64(n)
	}
	return st
}

// ScheduleStats summarizes a circuit schedule's per-slice graphs: degree,
// diameter, and pairwise direct-circuit coverage.
type ScheduleStats struct {
	Slices        int
	MaxDiameter   int
	MinDiameter   int
	MeanWait      float64 // mean slices until the next direct circuit
	CoveragePairs int     // pairs with at least one direct circuit per cycle
	TotalPairs    int
}

// Schedule computes ScheduleStats.
func Schedule(s *topo.Schedule) ScheduleStats {
	st := ScheduleStats{Slices: s.S, MinDiameter: 1 << 30}
	for sl := 0; sl < s.S; sl++ {
		d := s.SliceGraph(sl).Diameter()
		if d < 0 {
			d = s.N
		}
		if d > st.MaxDiameter {
			st.MaxDiameter = d
		}
		if d < st.MinDiameter {
			st.MinDiameter = d
		}
	}
	var waitSum float64
	var waits int
	for i := 0; i < s.N; i++ {
		for j := 0; j < s.N; j++ {
			if i == j {
				continue
			}
			st.TotalPairs++
			if len(s.DirectSlices(i, j)) > 0 {
				st.CoveragePairs++
			}
			for from := int64(0); from < int64(s.S); from++ {
				waitSum += float64(s.WaitSlices(i, j, from))
				waits++
			}
		}
	}
	if waits > 0 {
		st.MeanWait = waitSum / float64(waits)
	}
	return st
}
