package analysis

import (
	"testing"

	"ucmp/internal/core"
	"ucmp/internal/topo"
)

func pathSet(t testing.TB) *core.PathSet {
	t.Helper()
	f := topo.MustFabric(topo.Scaled(), "round-robin", 1)
	return core.BuildPathSet(f, 0.5)
}

func TestAnalyzeInvariants(t *testing.T) {
	ps := pathSet(t)
	st := Analyze(ps)
	sched := ps.F.Sched

	groups := 0
	for _, c := range st.GroupSizes {
		groups += c
	}
	wantGroups := sched.S * sched.N * (sched.N - 1)
	if groups != wantGroups {
		t.Fatalf("histogram covers %d groups, want %d", groups, wantGroups)
	}
	if st.MeanGroupSize < 1 {
		t.Fatalf("mean group size %v < 1", st.MeanGroupSize)
	}
	if st.MultiPathShare < 0 || st.MultiPathShare > 1 {
		t.Fatalf("multipath share %v", st.MultiPathShare)
	}
	if st.EdgeDisjointShare <= 0 || st.EdgeDisjointShare > 1 {
		t.Fatalf("edge-disjoint share %v", st.EdgeDisjointShare)
	}
	// The cyclewise unique-path count is at least the mean group size: new
	// slices contribute new paths.
	if st.MeanPathsPerCycle < st.MeanGroupSize {
		t.Fatalf("paths/cycle %v below paths/group %v", st.MeanPathsPerCycle, st.MeanGroupSize)
	}
	// UCMP's headline: low mean hop count (2.32 at paper scale; scaled
	// fabrics sit in the same band).
	if st.MeanHops < 1 || st.MeanHops > 3.5 {
		t.Fatalf("mean hops %v outside plausible band", st.MeanHops)
	}
	// Hop histogram has no zero-hop paths and covers everything.
	if st.HopHist[0] != 0 {
		t.Fatal("zero-hop paths recorded")
	}
}

// Single-path groups (direct-circuit slices) must exist and be counted.
func TestAnalyzeSingletons(t *testing.T) {
	ps := pathSet(t)
	st := Analyze(ps)
	if st.GroupSizes[1] == 0 {
		t.Fatal("no singleton groups; direct-circuit slices missing")
	}
	share := float64(st.GroupSizes[1]) / float64(ps.F.Sched.S*ps.F.Sched.N*(ps.F.Sched.N-1))
	gs, _ := ps.SingleSliceShare()
	if diff := share - gs; diff > 0.001 || diff < -0.001 {
		t.Fatalf("singleton share mismatch: analysis %v vs pathset %v", share, gs)
	}
}

func TestNewHopDist(t *testing.T) {
	d := NewHopDist("x", map[int]int{1: 2, 2: 2})
	if d.Mean != 1.5 {
		t.Fatalf("mean %v", d.Mean)
	}
	if d.Share[1] != 0.5 || d.Share[2] != 0.5 {
		t.Fatalf("shares %v", d.Share)
	}
	empty := NewHopDist("e", nil)
	if empty.Mean != 0 || len(empty.Share) != 0 {
		t.Fatal("empty histogram mishandled")
	}
}

func TestSortedKeys(t *testing.T) {
	keys := SortedKeys(map[int]int{3: 1, 1: 1, 2: 1})
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 3 {
		t.Fatalf("keys %v", keys)
	}
}

type fakeTable struct{}

func (fakeTable) Paths(slice, src, dst int) [][]int {
	return [][]int{{src, 99, dst}} // always 2 hops
}

func TestBaselineHops(t *testing.T) {
	d := BaselineHops("fake", fakeTable{}, 2, 4)
	if d.Mean != 2 {
		t.Fatalf("mean %v, want 2", d.Mean)
	}
	if d.Share[2] != 1 {
		t.Fatalf("share %v", d.Share)
	}
}

func TestLatencies(t *testing.T) {
	ps := pathSet(t)
	st := Latencies(ps)
	if st.GlobalMeanLatency < 1 {
		t.Fatalf("global mean latency %v < 1 slice", st.GlobalMeanLatency)
	}
	// Property 3 aggregate: mean latency decreases (weakly) with hop count
	// over the kept paths.
	prev := 1e18
	for h := 1; h <= 8; h++ {
		m, ok := st.MeanLatency[h]
		if !ok {
			continue
		}
		if m > prev {
			t.Fatalf("mean latency increased with hops: %d-hop %v after %v", h, m, prev)
		}
		prev = m
		if int64(m) > st.MaxLatency[h] {
			t.Fatalf("mean above max for %d hops", h)
		}
	}
}

func TestScheduleStats(t *testing.T) {
	ps := pathSet(t)
	st := Schedule(ps.F.Sched)
	if st.CoveragePairs != st.TotalPairs {
		t.Fatalf("coverage %d/%d: schedule misses pairs", st.CoveragePairs, st.TotalPairs)
	}
	if st.MeanWait <= 0 || st.MeanWait >= float64(st.Slices) {
		t.Fatalf("mean wait %v outside (0, S)", st.MeanWait)
	}
	if st.MinDiameter < 1 || st.MaxDiameter < st.MinDiameter {
		t.Fatalf("diameters %d..%d", st.MinDiameter, st.MaxDiameter)
	}
}
