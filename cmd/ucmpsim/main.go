// Command ucmpsim runs one packet-level RDCN simulation: a routing scheme
// paired with a transport over a Poisson workload, printing FCT statistics,
// bandwidth efficiency, link utilization, and rerouting counters.
//
// Examples:
//
//	ucmpsim -routing ucmp -transport dctcp -workload websearch -load 0.4
//	ucmpsim -routing opera1 -transport ndp -tors 32 -duration 10ms
//	ucmpsim -routing vlb -workload datamining -relax
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ucmp/internal/harness"
	"ucmp/internal/netsim"
	"ucmp/internal/sim"
	"ucmp/internal/topo"
	"ucmp/internal/traceio"
	"ucmp/internal/transport"
)

func main() {
	var (
		routingF   = flag.String("routing", "ucmp", "routing scheme: ucmp|vlb|ksp1|ksp5|opera1|opera5")
		transportF = flag.String("transport", "dctcp", "transport: dctcp|ndp|tcp")
		workloadF  = flag.String("workload", "websearch", "workload: websearch|datamining")
		loadF      = flag.Float64("load", 0.4, "target host-link load")
		alphaF     = flag.Float64("alpha", 0.5, "UCMP weight factor")
		relaxF     = flag.Bool("relax", false, "enable UCMP latency relaxation for long flows")
		torsF      = flag.Int("tors", 16, "number of ToRs (even)")
		uplinksF   = flag.Int("uplinks", 3, "uplinks (circuit switches) per ToR")
		hostsF     = flag.Int("hosts", 2, "hosts per ToR")
		bpsF       = flag.Float64("gbps", 40, "link bandwidth in Gbps")
		sliceF     = flag.Duration("slice", 50*time.Microsecond, "time slice duration")
		reconfF    = flag.Duration("reconf", 10*time.Nanosecond, "reconfiguration delay")
		durationF  = flag.Duration("duration", 4*time.Millisecond, "traffic generation window")
		horizonF   = flag.Duration("horizon", 0, "simulation horizon (0 = 4x duration)")
		seedF      = flag.Int64("seed", 1, "workload seed")
		clipF      = flag.Int64("maxflow", 64<<20, "clip flow sizes to this many bytes (0 = off)")
		failF      = flag.Float64("faillinks", 0, "fraction of uplink cables failed from the start (router-visible)")
		rtTorsF    = flag.Float64("failtors", 0, "fraction of ToRs failed at runtime (-failat)")
		rtLinksF   = flag.Float64("faillinks-rt", 0, "fraction of uplink cables failed at runtime (-failat)")
		rtSwF      = flag.Float64("failswitches", 0, "fraction of circuit switches failed at runtime (-failat)")
		failAtF    = flag.Duration("failat", time.Millisecond, "when runtime failures strike")
		repairAtF  = flag.Duration("repairat", -1, "when runtime failures repair (<0 = never)")
		paper      = flag.Bool("paper", false, "use the paper's 108-ToR/100Gbps configuration")
		flowsF     = flag.String("flows", "", "CSV flow trace to replay instead of the Poisson workload")
		fctOutF    = flag.String("fctout", "", "write per-flow results to this CSV file")
		cacheF     = flag.String("fabric-cache", "", "directory for the warm-fabric cache: the compiled UCMP fabric is mmap-loaded from it when present and saved into it after a cold build")
		ckptDirF   = flag.String("checkpoint-dir", "", "directory for crash-recovery checkpoints; with -checkpoint-every, the full simulation state is snapshotted there periodically")
		ckptEvF    = flag.Duration("checkpoint-every", 0, "simulated-time interval between checkpoints (0 = off)")
		resumeF    = flag.Bool("resume", false, "resume from the checkpoint in -checkpoint-dir if one matches this configuration; falls back to a clean cold run otherwise")
	)
	flag.Parse()

	cfg := harness.SimConfig{
		Routing:      harness.RoutingKind(*routingF),
		Transport:    transport.Kind(*transportF),
		Workload:     *workloadF,
		Load:         *loadF,
		Alpha:        *alphaF,
		Relax:        *relaxF,
		Duration:     sim.Time(durationF.Nanoseconds()),
		Horizon:      sim.Time(horizonF.Nanoseconds()),
		Seed:         *seedF,
		MaxFlowSize:  *clipF,
		LinkFailFrac: *failF,
		SampleEvery:  500 * sim.Microsecond,

		FabricCacheDir: *cacheF,

		CheckpointDir:   *ckptDirF,
		CheckpointEvery: sim.Time(ckptEvF.Nanoseconds()),
		Resume:          *resumeF,
	}
	if *paper {
		cfg.Topo = topo.PaperDefault()
	} else {
		cfg.Topo = topo.Config{
			NumToRs:       *torsF,
			Uplinks:       *uplinksF,
			HostsPerToR:   *hostsF,
			LinkBps:       int64(*bpsF * 1e9),
			PropDelay:     500 * sim.Nanosecond,
			SliceDuration: sim.Time(sliceF.Nanoseconds()),
			ReconfDelay:   sim.Time(reconfF.Nanoseconds()),
			MTU:           1500,
		}
	}

	if *rtTorsF > 0 || *rtLinksF > 0 || *rtSwF > 0 {
		repair := sim.Time(repairAtF.Nanoseconds())
		if *repairAtF < 0 {
			repair = -1
		}
		tl, err := harness.BuildFailureTimeline(cfg, *rtTorsF, *rtLinksF, *rtSwF,
			sim.Time(failAtF.Nanoseconds()), repair)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ucmpsim:", err)
			os.Exit(1)
		}
		cfg.Failures = tl
	}

	if *flowsF != "" {
		fh, err := os.Open(*flowsF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ucmpsim:", err)
			os.Exit(1)
		}
		flows, err := traceio.ReadFlows(fh)
		fh.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ucmpsim:", err)
			os.Exit(1)
		}
		cfg.Flows = flows
	}

	start := time.Now()
	res, err := harness.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucmpsim:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	if res.ResumeNote != "" {
		fmt.Fprintf(os.Stderr, "ucmpsim: checkpoint: %s\n", res.ResumeNote)
	}
	fmt.Printf("ucmpsim: %s + %s on %s (%d ToRs, %d hosts, load %.0f%%)\n",
		*routingF, *transportF, *workloadF, cfg.Topo.NumToRs, cfg.Topo.NumHosts(), *loadF*100)
	fmt.Printf("flows: %d launched, %.1f%% completed  (wall %.1fs)\n",
		res.Launched, res.CompletionRate*100, elapsed.Seconds())
	fmt.Printf("bandwidth efficiency: %.3f   rerouted packets: %.2f%%   drops: %d\n",
		res.Efficiency, res.ReroutedFrac*100, res.Counters.DroppedPackets)
	fmt.Printf("recirculation causes: expired=%d late=%d queue-full=%d\n",
		res.Counters.ExpiredInCalendar, res.Counters.LateArrivals, res.Counters.CalendarFull)
	if rec := res.Recovery; rec.Total() > 0 || rec.FaultDrops > 0 {
		fmt.Printf("online recovery: same-length=%d shorter=%d longer=%d backup=%d failed=%d fault-drops=%d\n",
			rec.SameLength, rec.Shorter, rec.Longer, rec.Backup, rec.Failed, rec.FaultDrops)
		fmt.Printf("time to reroute: p50=%s p99=%s   histogram: %s\n",
			rec.WaitPercentile(0.50), rec.WaitPercentile(0.99), rec.WaitHistogram())
	}
	fmt.Printf("mean ToR-to-host util: %.3f   mean ToR-to-ToR util: %.3f\n",
		res.Collector.MeanUtil(1, func(s netsim.Sample) float64 { return s.TorToHostUtil }),
		res.Collector.MeanUtil(1, func(s netsim.Sample) float64 { return s.TorToTorUtil }))
	if *fctOutF != "" {
		if err := writeFCTs(*fctOutF, res); err != nil {
			fmt.Fprintln(os.Stderr, "ucmpsim:", err)
			os.Exit(1)
		}
		fmt.Printf("per-flow results written to %s\n", *fctOutF)
	}
	fmt.Println("\nFCT by flow size bin:")
	fmt.Printf("%-22s %-8s %-12s %-12s %-12s\n", "size bin", "flows", "avg FCT", "p50", "p99")
	for _, b := range res.Bins() {
		if b.Count == 0 {
			continue
		}
		fmt.Printf("[%9d,%9d) %-8d %-12s %-12s %-12s\n", b.Lo, b.Hi, b.Count, b.AvgFCT, b.P50FCT, b.P99FCT)
	}
}

// writeFCTs dumps the run's per-flow results to a CSV file.
func writeFCTs(path string, res *harness.Result) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	return traceio.WriteFCTs(fh, res.Flows)
}
