// Command ucmpbench regenerates any table or figure of the paper by id.
//
//	ucmpbench -exp all            # everything (scaled configuration)
//	ucmpbench -exp fig6a,fig6c    # FCT + efficiency for web search
//	ucmpbench -exp table3 -full   # offline analyses at paper scale
//	ucmpbench -exp fig9 -parallel # sweep points run concurrently
//
// Simulation-based figures run on a scaled-down fabric by default so the
// full sweep finishes in minutes; -full switches the offline analyses to
// the paper's 108-ToR fabric and lengthens the simulations. -parallel runs
// an exhibit's independent schemes/sweep points concurrently (bounded by
// -workers, default GOMAXPROCS); reports are identical to the serial order.
// Each exhibit's wall-clock time and simulation event throughput print to
// stderr.
//
// Profiling: -cpuprofile and -memprofile write pprof files covering the
// selected exhibits, for chasing simulator hot spots; -trace captures a
// runtime execution trace (shard workers are labeled shard-worker=<i>, so
// `go tool trace` shows barrier/merge phases per lookahead domain):
//
//	ucmpbench -exp fig6a -cpuprofile cpu.out -memprofile mem.out
//	ucmpbench -exp fig6a -shards 8 -trace trace.out
//	go tool pprof cpu.out
//
// -shards N (N > 1) runs each simulation on the conservative-PDES sharded
// engine with N workers when the configuration supports it (see
// harness.Shardable); unsupported configurations fall back to the serial
// engine with identical output. -gomaxprocs 1,4,8 sweeps the Go scheduler
// width, running the selected exhibits once per value with a stderr banner
// per point — combined with -shards this produces the scaling comparison
// for one exhibit in a single invocation:
//
//	ucmpbench -exp fig6a -shards 8 -gomaxprocs 1,2,4,8
//
// The offline build performance tracked in results/BENCH_seed.json is
// regenerated with `make bench` (see that file for the recorded baseline);
// the online simulator numbers in results/BENCH_pr2.json come from the
// netsim benchmarks (`make bench` runs both).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"ucmp/internal/core"
	"ucmp/internal/harness"
	"ucmp/internal/sim"
	"ucmp/internal/testbed"
	"ucmp/internal/topo"
	"ucmp/internal/transport"
)

var allExps = []string{
	"table1", "table2", "table3",
	"fig5a", "fig5b", "fig6a", "fig6b", "fig6c", "fig6d",
	"fig7", "fig8", "fig9", "fig10", "fig11",
	"fig12", "fig12d", "fig13", "fig14", "fig15", "fig16", "fig17",
	"ablation", "extension", "sweep", "failsweep",
	"scale",
}

// heavyExps are excluded from -exp all: the 1024-ToR scaling sweep builds
// gigabyte-class fabrics and is requested explicitly (`-exp scale`).
var heavyExps = map[string]bool{"scale": true}

func main() {
	var (
		expF      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		fullF     = flag.Bool("full", false, "paper-scale offline analyses and longer simulations")
		seedF     = flag.Int64("seed", 1, "seed")
		parallelF = flag.Bool("parallel", false, "run independent schemes/sweep points of an exhibit concurrently")
		workersF  = flag.Int("workers", 0, "bound on the -parallel worker pool (0 = GOMAXPROCS)")
		cpuProfF  = flag.String("cpuprofile", "", "write a CPU profile covering the selected exhibits to this file")
		memProfF  = flag.String("memprofile", "", "write a heap profile taken after the selected exhibits to this file")
		traceF    = flag.String("trace", "", "write a runtime execution trace covering the selected exhibits to this file")
		shardsF   = flag.Int("shards", 0, "run simulations on the sharded engine with this many workers (0/1 = serial)")
		schedF    = flag.Bool("schedstats", false, "report per-exhibit scheduler internals (pending high-water, cascades, cancels) on stderr")
		procsF    = flag.String("gomaxprocs", "", "comma-separated GOMAXPROCS values to sweep; exhibits run once per value (empty = current setting)")
		scaleNsF  = flag.String("scale-ns", "", "comma-separated fabric sizes for -exp scale (empty = 108,256,512,1024)")
		benchFmtF = flag.Bool("benchfmt", false, "emit -exp scale results as `go test -bench` lines on stdout (for cmd/benchjson); the human report moves to stderr")
		cacheF    = flag.String("fabric-cache", "", "directory for the warm-fabric cache: compiled UCMP fabrics are mmap-loaded from it when present and saved into it after cold builds")
		ckptDirF  = flag.String("checkpoint-dir", "", "directory for crash-recovery checkpoints: simulations snapshot there every -checkpoint-every of simulated time, and sweeps record completed trials in a sweep book")
		ckptEvF   = flag.Duration("checkpoint-every", 0, "simulated-time interval between checkpoints (0 = off)")
		resumeF   = flag.Bool("resume", false, "resume simulations and sweeps from -checkpoint-dir where checkpoints match; anything unmatched falls back to a clean cold run")
	)
	flag.Parse()
	harness.Parallel = *parallelF
	harness.Workers = *workersF
	harness.CollectSchedStats = *schedF

	if *cpuProfF != "" {
		f, err := os.Create(*cpuProfF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ucmpbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ucmpbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *traceF != "" {
		f, err := os.Create(*traceF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ucmpbench: -trace: %v\n", err)
			os.Exit(1)
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "ucmpbench: -trace: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}
	if *memProfF != "" {
		defer func() {
			f, err := os.Create(*memProfF)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ucmpbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ucmpbench: -memprofile: %v\n", err)
			}
		}()
	}

	want := map[string]bool{}
	if *expF == "all" {
		for _, e := range allExps {
			if !heavyExps[e] {
				want[e] = true
			}
		}
	} else {
		for _, e := range strings.Split(*expF, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}

	// -gomaxprocs sweeps the scheduler width: the selected exhibits run once
	// per value, so one invocation produces the serial-vs-parallel scaling
	// comparison (typically combined with -shards N).
	procs := []int{0} // 0: leave GOMAXPROCS alone
	if *procsF != "" {
		procs = procs[:0]
		for _, s := range strings.Split(*procsF, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "ucmpbench: -gomaxprocs: bad value %q\n", s)
				os.Exit(1)
			}
			procs = append(procs, n)
		}
	}

	r := runner{
		full: *fullF, seed: *seedF, shards: *shardsF, benchFmt: *benchFmtF, cacheDir: *cacheF,
		ckptDir: *ckptDirF, ckptEvery: sim.Time(ckptEvF.Nanoseconds()), resume: *resumeF,
	}
	if *scaleNsF != "" {
		for _, s := range strings.Split(*scaleNsF, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n < 2 {
				fmt.Fprintf(os.Stderr, "ucmpbench: -scale-ns: bad value %q\n", s)
				os.Exit(1)
			}
			r.scaleNs = append(r.scaleNs, n)
		}
	}
	for _, p := range procs {
		if p > 0 {
			runtime.GOMAXPROCS(p)
		}
		if len(procs) > 1 || p > 0 {
			fmt.Fprintf(os.Stderr, "=== GOMAXPROCS=%d shards=%d cpus=%d ===\n",
				runtime.GOMAXPROCS(0), *shardsF, runtime.NumCPU())
		}
		for _, e := range allExps {
			if !want[e] {
				continue
			}
			start := time.Now()
			harness.TakeEvents()
			if err := r.run(e); err != nil {
				fmt.Fprintf(os.Stderr, "ucmpbench %s: %v\n", e, err)
				os.Exit(1)
			}
			wall := time.Since(start).Seconds()
			if events := harness.TakeEvents(); events > 0 {
				fmt.Fprintf(os.Stderr, "(%s took %.1fs, %d sim events, %.2fM events/s)\n",
					e, wall, events, float64(events)/wall/1e6)
			} else {
				fmt.Fprintf(os.Stderr, "(%s took %.1fs)\n", e, wall)
			}
			for _, note := range harness.TakeShardNotes() {
				fmt.Fprintf(os.Stderr, "(%s shards: %s)\n", e, note)
			}
			if *schedF {
				s := harness.TakeSchedStats()
				fmt.Fprintf(os.Stderr, "(%s sched: pending-hwm %d, cascades %d, overflow %d, cancels %d, dead-pops %d, chases %d)\n",
					e, s.PendingHighWater, s.Cascades, s.OverflowPushes, s.Cancels, s.DeadPops, s.Chases)
				if sh := harness.TakeShardStats(); sh.Windows > 0 {
					fmt.Fprintf(os.Stderr, "(%s shards: windows %d, barriers %d, extensions %d, cross-events %d, merge-batches %d, serial-merges %d, mailbox-hwm %d, steals %d)\n",
						e, sh.Windows, sh.Barriers, sh.Extensions, sh.CrossEvents, sh.MergeBatches, sh.SerialMerges, sh.MailboxHighWater, sh.Steals)
				}
			}
			fmt.Fprintln(os.Stderr)
		}
	}
}

type runner struct {
	full      bool
	seed      int64
	shards    int
	benchFmt  bool
	cacheDir  string
	ckptDir   string
	ckptEvery sim.Time
	resume    bool
	scaleNs   []int

	ps *core.PathSet
}

// analysisConfig is the fabric used for offline path analyses.
func (r *runner) analysisConfig() topo.Config {
	if r.full {
		return topo.PaperDefault()
	}
	cfg := topo.Scaled()
	cfg.NumToRs, cfg.Uplinks = 32, 4
	return cfg
}

func (r *runner) pathSet() *core.PathSet {
	if r.ps == nil {
		fab := topo.MustFabric(r.analysisConfig(), "round-robin", 1)
		r.ps = core.BuildPathSet(fab, 0.5)
	}
	return r.ps
}

// simBase is the base packet-simulation configuration.
func (r *runner) simBase() harness.SimConfig {
	cfg := harness.ScaledConfig(harness.UCMP, transport.DCTCP, "websearch")
	cfg.Seed = r.seed
	cfg.Shards = r.shards
	cfg.FabricCacheDir = r.cacheDir
	cfg.CheckpointDir = r.ckptDir
	cfg.CheckpointEvery = r.ckptEvery
	cfg.Resume = r.resume
	if r.full {
		cfg.Duration = 20 * sim.Millisecond
		cfg.Horizon = 80 * sim.Millisecond
	}
	return cfg
}

func (r *runner) run(exp string) error {
	switch exp {
	case "table1":
		fmt.Println(harness.Table1())
	case "table2":
		scales := harness.Table2Scales
		if !r.full {
			scales = scales[:2]
		}
		rep, _ := harness.Table2(scales)
		fmt.Println(rep)
	case "table3":
		rows := harness.Table3Scales
		if !r.full {
			rows = []harness.Table3Row{{SliceUs: 1, N: 108, D: 6}, {SliceUs: 1, N: 324, D: 6}, {SliceUs: 5, N: 1200, D: 12}}
		}
		fmt.Println(harness.Table3(rows))
	case "scale":
		rep, pts, err := harness.ScaleSweep(harness.ScaleConfig{Ns: r.scaleNs, Seed: r.seed, CacheDir: r.cacheDir})
		if err != nil {
			return err
		}
		if r.benchFmt {
			for _, l := range harness.BenchLines(pts) {
				fmt.Println(l)
			}
			fmt.Fprintln(os.Stderr, rep)
		} else {
			fmt.Println(rep)
		}
	case "fig5a":
		rep, _ := harness.Fig5a(r.pathSet())
		fmt.Println(rep)
	case "fig5b":
		stride := 1
		if r.full {
			stride = 3
		}
		rep, _ := harness.Fig5b(r.pathSet(), stride)
		fmt.Println(rep)
	case "fig6a", "fig6c":
		rep, results, err := harness.Fig6FCT(r.simBase(), "websearch", harness.Fig6Schemes(false))
		if err != nil {
			return err
		}
		if exp == "fig6a" {
			fmt.Println(rep)
		} else {
			fmt.Println(harness.Fig6Efficiency(results, "websearch"))
		}
	case "fig6b", "fig6d":
		rep, results, err := harness.Fig6FCT(r.simBase(), "datamining", harness.Fig6Schemes(true))
		if err != nil {
			return err
		}
		if exp == "fig6b" {
			fmt.Println(rep)
		} else {
			fmt.Println(harness.Fig6Efficiency(results, "datamining"))
		}
	case "fig7":
		rep, _, err := harness.Fig7LinkUtil(r.simBase(), "websearch", harness.Fig6Schemes(false))
		if err != nil {
			return err
		}
		fmt.Println(rep)
	case "fig17":
		rep, _, err := harness.Fig7LinkUtil(r.simBase(), "datamining", harness.Fig6Schemes(true))
		if err != nil {
			return err
		}
		fmt.Println(rep)
	case "fig8":
		rep, _, err := harness.Fig8Bucketing(r.simBase())
		if err != nil {
			return err
		}
		fmt.Println(rep)
	case "fig9":
		rep, _, err := harness.Fig9Reconf(r.simBase(), []sim.Time{10 * sim.Nanosecond, 1 * sim.Microsecond, 10 * sim.Microsecond})
		if err != nil {
			return err
		}
		fmt.Println(rep)
	case "fig10":
		rep, _, err := harness.Fig10Alpha(r.simBase(), []float64{0.3, 0.5, 0.7})
		if err != nil {
			return err
		}
		fmt.Println(rep)
	case "fig11":
		rep, _, err := harness.Fig11Slice(r.simBase(), []sim.Time{10 * sim.Microsecond, 50 * sim.Microsecond, 300 * sim.Microsecond})
		if err != nil {
			return err
		}
		fmt.Println(rep)
	case "fig12":
		rep, _ := harness.Fig12abc(r.pathSet(), r.seed)
		fmt.Println(rep)
	case "fig12d":
		rep, _, err := harness.Fig12d(r.simBase(), []float64{0, 0.01, 0.03, 0.05})
		if err != nil {
			return err
		}
		fmt.Println(rep)
	case "fig13":
		rep, _, err := testbed.RunAll(testbed.Options{Seed: r.seed})
		if err != nil {
			return err
		}
		fmt.Println(rep)
	case "fig14":
		rep, _ := harness.Fig14()
		fmt.Println(rep)
	case "fig15":
		rep, _, err := harness.Fig15LoadBalance(r.simBase(), harness.Fig6Schemes(false))
		if err != nil {
			return err
		}
		fmt.Println(rep)
	case "fig16":
		rep, _ := harness.Fig16(r.analysisConfig(), 7)
		fmt.Println(rep)
	case "ablation":
		rep, _, err := harness.AblationPolicy(r.simBase())
		if err != nil {
			return err
		}
		fmt.Println(rep)
		rep2, _, err := harness.AblationParallel(r.simBase())
		if err != nil {
			return err
		}
		fmt.Println(rep2)
		fmt.Println(harness.AblationSchedule(108, 6))
	case "extension":
		rep, _, err := harness.ExtensionCongestion(r.simBase())
		if err != nil {
			return err
		}
		fmt.Println(rep)
		rep2, _, err := harness.ExtensionAlphaController(r.simBase(), 0.06)
		if err != nil {
			return err
		}
		fmt.Println(rep2)
		rep3, _, err := harness.ExtensionMPTCP(r.simBase())
		if err != nil {
			return err
		}
		fmt.Println(rep3)
	case "failsweep":
		rep, _, err := harness.FailureSweep(r.simBase(), []float64{0, 0.02, 0.05, 0.1})
		if err != nil {
			return err
		}
		fmt.Println(rep)
	case "sweep":
		trials := harness.SweepLoad(r.simBase(),
			[]harness.RoutingKind{harness.UCMP, harness.VLB, harness.KSP5},
			[]float64{0.2, 0.4, 0.6})
		results, err := harness.RunTrials(trials)
		if err != nil {
			return err
		}
		fmt.Println("sweep: scheme x load trial matrix (harness.RunTrials; -parallel fans trials out)")
		fmt.Print(harness.SummarizeTrials(trials, results))
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
