// Command benchjson converts `go test -bench` output on stdin into the
// record format tracked under results/BENCH_*.json, so refreshed numbers
// can be committed without hand-editing:
//
//	make -s bench-netsim > results/BENCH_new.json
//
// The raw `go test` lines are echoed to stderr as they stream through, so
// piping does not hide the benchmark run. Standard ns/op, B/op and
// allocs/op columns map to fixed fields; any custom metrics (events/s,
// buckets, ...) land in the per-benchmark "metrics" object.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type record struct {
	Benchmark   string             `json:"benchmark"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Environment string   `json:"environment"`
	Method      string   `json:"method"`
	Benchmarks  []record `json:"benchmarks"`
}

// procSuffix is the -GOMAXPROCS suffix `go test` appends to benchmark names.
var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	method := flag.String("method", "go test -bench via make bench (see Makefile)",
		"provenance string recorded in the output")
	flag.Parse()

	rep := report{Method: *method}
	var env []string
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			env = append(env, strings.TrimSpace(line))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	rep.Environment = strings.Join(env, ", ")
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// parseBench decodes one result line: a name, an iteration count, then
// "value unit" pairs (ns/op, then -benchmem and ReportMetric columns).
func parseBench(line string) (record, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return record{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Benchmark: procSuffix.ReplaceAllString(f[0], ""), Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return record{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
