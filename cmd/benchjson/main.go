// Command benchjson converts `go test -bench` output on stdin into the
// record format tracked under results/BENCH_*.json, so refreshed numbers
// can be committed without hand-editing:
//
//	make -s bench-netsim > results/BENCH_new.json
//
// The raw `go test` lines are echoed to stderr as they stream through, so
// piping does not hide the benchmark run. Standard ns/op, B/op and
// allocs/op columns map to fixed fields; any custom metrics (events/s,
// buckets, ...) land in the per-benchmark "metrics" object.
//
// With -compare OLD.json, a per-benchmark comparison against a previously
// committed BENCH_*.json prints to stderr (stdout stays pure JSON). Both
// the benchjson record format and the hand-merged before/after framing of
// results/BENCH_pr2.json are understood; in the latter, the section whose
// name contains "after" is the baseline.
//
// -maxregress F (with -compare) turns the comparison into a gate: the exit
// status is non-zero when any benchmark present in the baseline regressed
// by more than the fraction F — events/s when both sides report it, ns/op
// otherwise. CI uses `-compare results/BENCH_pr3.json -maxregress 0.10`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

type record struct {
	Benchmark   string             `json:"benchmark"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	GoMaxProcs  int                `json:"gomaxprocs,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Environment string   `json:"environment"`
	NumCPU      int      `json:"num_cpu,omitempty"`
	Method      string   `json:"method"`
	Benchmarks  []record `json:"benchmarks"`
}

// procSuffix is the -GOMAXPROCS suffix `go test` appends to benchmark names.
// The suffix is stripped for the benchmark key (so a run at a different
// GOMAXPROCS still matches its baseline entry) and recorded separately in
// the per-benchmark "gomaxprocs" field.
var procSuffix = regexp.MustCompile(`-(\d+)$`)

func main() {
	method := flag.String("method", "go test -bench via make bench (see Makefile)",
		"provenance string recorded in the output")
	compare := flag.String("compare", "",
		"path to a previously committed BENCH_*.json; a comparison prints to stderr")
	maxRegress := flag.Float64("maxregress", 0,
		"with -compare: exit non-zero when any benchmark regressed by more than this fraction")
	flag.Parse()

	rep := report{Method: *method}
	var env []string
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			// Concatenated runs (make bench-pr6 feeds two `go test`
			// invocations through one pipe) repeat the header block; keep
			// each line once.
			if l := strings.TrimSpace(line); !contains(env, l) {
				env = append(env, l)
			}
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	rep.Environment = strings.Join(env, ", ")
	rep.NumCPU = runtime.NumCPU()
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(out))

	if *compare != "" {
		regressed, err := printComparison(*compare, rep.Benchmarks, *maxRegress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -compare: %v\n", err)
			os.Exit(1)
		}
		if len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: regression gate failed (>%.0f%%): %s\n",
				*maxRegress*100, strings.Join(regressed, ", "))
			os.Exit(1)
		}
	}
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// oldBench is the per-benchmark shape shared by the benchjson record format
// and the hand-merged sections of results/BENCH_pr2.json.
type oldBench struct {
	NsPerOp     float64            `json:"ns_per_op"`
	EventsPerS  float64            `json:"events_per_s"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics"`
}

// loadBaseline reads a committed BENCH_*.json in either format and returns
// benchmark name -> numbers.
func loadBaseline(path string) (map[string]oldBench, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// Format 1: the benchjson report format.
	var rep struct {
		Benchmarks []struct {
			Benchmark string `json:"benchmark"`
			oldBench
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &rep); err == nil && len(rep.Benchmarks) > 0 {
		out := map[string]oldBench{}
		for _, b := range rep.Benchmarks {
			ob := b.oldBench
			if v, ok := ob.Metrics["events/s"]; ok && ob.EventsPerS == 0 {
				ob.EventsPerS = v
			}
			out[b.Benchmark] = ob
		}
		return out, nil
	}
	// Format 2: hand-merged sections keyed by framing name, each mapping
	// benchmark names to number objects. Prefer an "after" section.
	var sections map[string]json.RawMessage
	if err := json.Unmarshal(raw, &sections); err != nil {
		return nil, err
	}
	best := map[string]oldBench{}
	bestIsAfter := false
	for name, sec := range sections {
		var benches map[string]json.RawMessage
		if err := json.Unmarshal(sec, &benches); err != nil {
			continue
		}
		found := map[string]oldBench{}
		for bn, rawB := range benches {
			var ob oldBench
			if !strings.HasPrefix(bn, "Benchmark") {
				continue // framing keys like "commit"
			}
			if err := json.Unmarshal(rawB, &ob); err != nil || ob.NsPerOp <= 0 {
				continue
			}
			found[bn] = ob
		}
		if len(found) == 0 {
			continue
		}
		isAfter := strings.Contains(name, "after")
		if len(best) == 0 || (isAfter && !bestIsAfter) {
			best, bestIsAfter = found, isAfter
		}
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("no benchmark numbers found in %s", path)
	}
	return best, nil
}

// printComparison renders old-vs-new per benchmark to stderr. When
// maxRegress > 0 it returns the benchmarks whose speed ratio (events/s when
// both sides have it, ns/op otherwise) fell below 1-maxRegress.
func printComparison(path string, fresh []record, maxRegress float64) ([]string, error) {
	base, err := loadBaseline(path)
	if err != nil {
		return nil, err
	}
	var regressed []string
	fmt.Fprintf(os.Stderr, "\ncomparison vs %s:\n", path)
	for _, r := range fresh {
		old, ok := base[r.Benchmark]
		if !ok {
			fmt.Fprintf(os.Stderr, "  %-24s (not in baseline)\n", r.Benchmark)
			continue
		}
		ratio := old.NsPerOp / r.NsPerOp
		fmt.Fprintf(os.Stderr, "  %-24s ns/op %.0f -> %.0f (%.2fx)",
			r.Benchmark, old.NsPerOp, r.NsPerOp, ratio)
		if ev, ok := r.Metrics["events/s"]; ok && old.EventsPerS > 0 {
			ratio = ev / old.EventsPerS
			fmt.Fprintf(os.Stderr, ", events/s %.0f -> %.0f (%.2fx)",
				old.EventsPerS, ev, ratio)
		}
		fmt.Fprintf(os.Stderr, ", allocs/op %d -> %d\n", old.AllocsPerOp, r.AllocsPerOp)
		if maxRegress > 0 && ratio < 1-maxRegress {
			regressed = append(regressed, fmt.Sprintf("%s %.2fx", r.Benchmark, ratio))
		}
	}
	return regressed, nil
}

// parseBench decodes one result line: a name, an iteration count, then
// "value unit" pairs (ns/op, then -benchmem and ReportMetric columns).
func parseBench(line string) (record, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return record{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Benchmark: f[0], Iterations: iters}
	if m := procSuffix.FindStringSubmatch(f[0]); m != nil {
		r.Benchmark = f[0][:len(f[0])-len(m[0])]
		r.GoMaxProcs, _ = strconv.Atoi(m[1])
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return record{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
