// Command ucmppaths runs the offline analyses that need no packet
// simulation: UCMP path characteristics (Fig 5a/5b, Fig 16), failure
// recovery breakdowns (Fig 12a-c), switch resources (Table 2), h_max
// bounds (Table 3), and the balls-into-bins probabilities (Fig 14).
//
// By default it uses the paper's 108-ToR fabric; -tors/-uplinks scale it.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ucmp/internal/analysis"
	"ucmp/internal/core"
	"ucmp/internal/harness"
	"ucmp/internal/topo"
)

func main() {
	var (
		torsF    = flag.Int("tors", 108, "number of ToRs (even)")
		uplinksF = flag.Int("uplinks", 6, "uplinks per ToR")
		alphaF   = flag.Float64("alpha", 0.5, "UCMP weight factor")
		expF     = flag.String("exp", "fig5a,fig5b,fig12abc,fig14,table2,table3,fig16,sched", "comma-separated experiments")
		sampleF  = flag.Int("sample", 1, "baseline slice sampling stride for fig5b")
	)
	flag.Parse()

	cfg := topo.PaperDefault()
	cfg.NumToRs = *torsF
	cfg.Uplinks = *uplinksF

	want := map[string]bool{}
	for _, e := range splitComma(*expF) {
		want[e] = true
	}

	var ps *core.PathSet
	buildPS := func() *core.PathSet {
		if ps == nil {
			start := time.Now()
			fab := topo.MustFabric(cfg, "round-robin", 1)
			ps = core.BuildPathSet(fab, *alphaF)
			fmt.Fprintf(os.Stderr, "(path set for %d ToRs built in %.1fs)\n", cfg.NumToRs, time.Since(start).Seconds())
		}
		return ps
	}

	if want["fig5a"] {
		rep, _ := harness.Fig5a(buildPS())
		fmt.Println(rep)
	}
	if want["fig5b"] {
		rep, _ := harness.Fig5b(buildPS(), *sampleF)
		fmt.Println(rep)
	}
	if want["fig12abc"] {
		rep, _ := harness.Fig12abc(buildPS(), 1)
		fmt.Println(rep)
	}
	if want["fig14"] {
		rep, _ := harness.Fig14()
		fmt.Println(rep)
	}
	if want["fig16"] {
		rep, _ := harness.Fig16(cfg, 7)
		fmt.Println(rep)
	}
	if want["table2"] {
		rep, _ := harness.Table2(harness.Table2Scales)
		fmt.Println(rep)
	}
	if want["table3"] {
		fmt.Println(harness.Table3(harness.Table3Scales))
	}
	if want["sched"] {
		fab := topo.MustFabric(cfg, "round-robin", 1)
		st := analysis.Schedule(fab.Sched)
		fmt.Printf("== schedule statistics (%d ToRs, %d switches, %s) ==\n", cfg.NumToRs, cfg.Uplinks, fab.Sched.Kind)
		fmt.Printf("slices/cycle: %d   cycle: %v\n", st.Slices, fab.CycleDuration())
		fmt.Printf("slice-graph diameter: %d..%d\n", st.MinDiameter, st.MaxDiameter)
		fmt.Printf("direct-circuit coverage: %d/%d pairs\n", st.CoveragePairs, st.TotalPairs)
		fmt.Printf("mean wait for a direct circuit: %.2f slices\n", st.MeanWait)
		lat := analysis.Latencies(buildPS())
		fmt.Printf("mean Eqn-1 latency over all UCMP paths: %.2f slices\n", lat.GlobalMeanLatency)
		for h := 1; h <= 16; h++ {
			if m, ok := lat.MeanLatency[h]; ok {
				fmt.Printf("  %2d-hop paths: mean %.2f, max %d slices\n", h, m, lat.MaxLatency[h])
			}
		}
	}
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
